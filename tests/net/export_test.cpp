#include "net/export.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

TEST(Export, DotContainsAllPlannedComponents) {
  const auto p = tiny_problem(2);
  auto t = dual_homed_topology(p);
  t.upgrade_switch(5);  // B, for a second color
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph tssdn {"), std::string::npos);
  for (NodeId es = 0; es < 4; ++es) {
    EXPECT_NE(dot.find("label=\"es" + std::to_string(es) + "\""), std::string::npos);
  }
  EXPECT_NE(dot.find("sw4\\nASIL-A"), std::string::npos);
  EXPECT_NE(dot.find("sw5\\nASIL-B"), std::string::npos);
  EXPECT_NE(dot.find("n4 -- n5"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n4"), std::string::npos);
  // Unplanned switch 6 is not drawn.
  EXPECT_EQ(dot.find("sw6"), std::string::npos);
}

TEST(Export, DotEdgeLabelsCarryLinkAsil) {
  const auto p = tiny_problem(1);
  auto t = dual_homed_topology(p);
  t.upgrade_switch(4);  // B: ES links to 4 become B, 4-5 link stays A
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("n0 -- n4 [label=\"B\"]"), std::string::npos);
  EXPECT_NE(dot.find("n4 -- n5 [label=\"A\"]"), std::string::npos);
}

TEST(Export, DotUnusedConnectionsOptIn) {
  const auto p = tiny_problem(1);
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  t.add_link(0, 4);
  EXPECT_EQ(to_dot(t).find("style=dashed"), std::string::npos);
  DotOptions options;
  options.include_unused_connections = true;
  const std::string dot = to_dot(t, options);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Unused link between two drawn nodes appears; links to unplanned switch
  // 6 do not.
  EXPECT_NE(dot.find("n4 -- n5 [style=dashed"), std::string::npos);
  EXPECT_EQ(dot.find("n6"), std::string::npos);
}

TEST(Export, DotGraphNameConfigurable) {
  const auto p = tiny_problem(1);
  const Topology t(p);
  DotOptions options;
  options.graph_name = "my_vehicle";
  EXPECT_NE(to_dot(t, options).find("graph my_vehicle {"), std::string::npos);
}

TEST(Export, SummaryBreaksDownEquationOneCost) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);  // 2 A switches deg 5 (10 each), 9 A links
  const std::string text = summary(t);
  EXPECT_NE(text.find("sw4  ASIL-A  5 ports  cost 10"), std::string::npos);
  EXPECT_NE(text.find("ASIL-A  x9  cost 9"), std::string::npos);
  EXPECT_NE(text.find("= 29"), std::string::npos);  // 10 + 10 + 9
}

TEST(Export, SummaryOfEmptyTopology) {
  const auto p = tiny_problem(1);
  const Topology t(p);
  const std::string text = summary(t);
  EXPECT_NE(text.find("= 0"), std::string::npos);
}

}  // namespace
}  // namespace nptsn
