#include "net/problem.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

TEST(Problem, TinyProblemIsValid) {
  const auto p = tiny_problem();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.num_nodes(), 7);
  EXPECT_EQ(p.num_switches(), 3);
  EXPECT_EQ(p.connections.num_edges(), 15);
}

TEST(Problem, NodeClassification) {
  const auto p = tiny_problem();
  EXPECT_TRUE(p.is_end_station(0));
  EXPECT_TRUE(p.is_end_station(3));
  EXPECT_FALSE(p.is_end_station(4));
  EXPECT_FALSE(p.is_end_station(-1));
  EXPECT_TRUE(p.is_switch(4));
  EXPECT_TRUE(p.is_switch(6));
  EXPECT_FALSE(p.is_switch(0));
}

TEST(Problem, IdLists) {
  const auto p = tiny_problem();
  EXPECT_EQ(p.end_station_ids(), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(p.switch_ids(), (std::vector<NodeId>{4, 5, 6}));
}

TEST(Problem, FramesPerBase) {
  auto p = tiny_problem();
  FlowSpec f = p.flows[0];
  EXPECT_EQ(p.frames_per_base(f), 1);
  f.period_us = 250.0;
  EXPECT_EQ(p.frames_per_base(f), 2);
  f.period_us = 100.0;
  EXPECT_EQ(p.frames_per_base(f), 5);
  f.period_us = 300.0;  // does not divide 500
  EXPECT_THROW(p.frames_per_base(f), std::invalid_argument);
}

TEST(Problem, RejectsFlowBetweenNonStations) {
  auto p = tiny_problem();
  p.flows[0].destination = 5;  // a switch
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsSelfFlow) {
  auto p = tiny_problem();
  p.flows[0].destination = p.flows[0].source;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsDeadlineBeyondPeriod) {
  auto p = tiny_problem();
  p.flows[0].deadline_us = 600.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsNonPositiveFrame) {
  auto p = tiny_problem();
  p.flows[0].frame_bytes = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsEmptyFlows) {
  auto p = tiny_problem();
  p.flows.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsBadReliabilityGoal) {
  auto p = tiny_problem();
  p.reliability_goal = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.reliability_goal = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsDirectStationToStationLink) {
  auto p = tiny_problem();
  p.connections.add_edge(0, 1, 1.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsProblemWithoutSwitches) {
  PlanningProblem p;
  p.connections = Graph(2);
  p.num_end_stations = 2;
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsNonDividingFlowPeriod) {
  auto p = tiny_problem();
  p.flows[0].period_us = 333.0;  // base period 500 us is not a multiple
  p.flows[0].deadline_us = 333.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsEmptyGraph) {
  PlanningProblem p;
  p.connections = Graph(0);
  p.num_end_stations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsNonPositiveEsDegree) {
  auto p = tiny_problem();
  p.max_es_degree = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsNonPositiveBasePeriod) {
  auto p = tiny_problem();
  p.tsn.base_period_us = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, RejectsZeroSlots) {
  auto p = tiny_problem();
  p.tsn.slots_per_base = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, MaxSwitchDegreeComesFromLibrary) {
  const auto p = tiny_problem();
  EXPECT_EQ(p.max_switch_degree(), 8);
}

// --- typed validation-error hardening ---------------------------------------
// Every validate() clause throws ValidationError (a std::invalid_argument
// subtype), so degenerate generated instances are rejected with a typed
// error — never an assert, a hang, or a silently bogus plan.

TEST(Problem, ValidationFailuresAreTyped) {
  auto p = tiny_problem();
  p.flows[0].destination = p.flows[0].source;
  EXPECT_THROW(p.validate(), ValidationError);
}

TEST(Problem, RejectsNonFiniteBasePeriod) {
  auto p = tiny_problem();
  p.tsn.base_period_us = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), ValidationError);
  p.tsn.base_period_us = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), ValidationError);
}

TEST(Problem, RejectsNonFiniteFlowPeriod) {
  auto p = tiny_problem();
  p.flows[0].period_us = std::numeric_limits<double>::quiet_NaN();
  p.flows[0].deadline_us = 1.0;
  EXPECT_THROW(p.validate(), ValidationError);
}

TEST(Problem, RejectsNonFiniteDeadline) {
  auto p = tiny_problem();
  p.flows[0].deadline_us = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), ValidationError);
}

TEST(Problem, RejectsNonFiniteReliabilityGoal) {
  auto p = tiny_problem();
  p.reliability_goal = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), ValidationError);
}

TEST(Problem, RejectsOverflowingFrameCount) {
  // An extreme base period over a tiny flow period would overflow the
  // frames-per-base rounding; the ratio guard must fire before std::lround.
  auto p = tiny_problem();
  p.tsn.base_period_us = 1e12;
  p.flows[0].period_us = 1e-6;
  p.flows[0].deadline_us = 1e-6;
  EXPECT_THROW(p.validate(), ValidationError);
  EXPECT_THROW(p.frames_per_base(p.flows[0]), ValidationError);
}

TEST(Problem, RejectsNonFiniteEdgeLength) {
  auto p = tiny_problem();
  const Edge first = p.connections.edges().front();
  p.connections.remove_edge(first.u, first.v);
  p.connections.add_edge(first.u, first.v, std::numeric_limits<double>::infinity());
  EXPECT_THROW(p.validate(), ValidationError);
}

}  // namespace
}  // namespace nptsn
