#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

TEST(Topology, StartsEmpty) {
  const auto p = tiny_problem();
  Topology t(p);
  EXPECT_TRUE(t.selected_switches().empty());
  EXPECT_EQ(t.graph().num_edges(), 0);
  EXPECT_DOUBLE_EQ(t.cost(), 0.0);
}

TEST(Topology, AddSwitchStartsAtAsilA) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  EXPECT_TRUE(t.has_switch(4));
  EXPECT_EQ(t.switch_asil(4), Asil::A);
  EXPECT_EQ(t.selected_switches(), (std::vector<NodeId>{4}));
}

TEST(Topology, UpgradeClimbsToD) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  t.upgrade_switch(4);
  EXPECT_EQ(t.switch_asil(4), Asil::B);
  t.upgrade_switch(4);
  t.upgrade_switch(4);
  EXPECT_EQ(t.switch_asil(4), Asil::D);
  EXPECT_THROW(t.upgrade_switch(4), std::invalid_argument);
}

TEST(Topology, SwitchOperationsValidated) {
  const auto p = tiny_problem();
  Topology t(p);
  EXPECT_THROW(t.add_switch(0), std::invalid_argument);     // an end station
  EXPECT_THROW(t.upgrade_switch(4), std::invalid_argument); // absent
  EXPECT_THROW(t.switch_asil(4), std::invalid_argument);
  t.add_switch(4);
  EXPECT_THROW(t.add_switch(4), std::invalid_argument);  // already present
}

TEST(Topology, LinkRequiresPlannedSwitchEndpoint) {
  const auto p = tiny_problem();
  Topology t(p);
  EXPECT_THROW(t.add_link(0, 4), std::invalid_argument);
  t.add_switch(4);
  t.add_link(0, 4);
  EXPECT_TRUE(t.has_link(0, 4));
  t.add_link(0, 4);  // idempotent
  EXPECT_EQ(t.graph().num_edges(), 1);
}

TEST(Topology, LinkMustBeInGc) {
  auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  // 0-1 is not an optional link (ES-ES).
  EXPECT_THROW(t.add_link(0, 1), std::invalid_argument);
}

TEST(Topology, EndStationDegreeCapEnforced) {
  const auto p = tiny_problem();  // max_es_degree = 2
  Topology t(p);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  t.add_link(0, 4);
  t.add_link(0, 5);
  EXPECT_THROW(t.add_link(0, 6), std::invalid_argument);
}

TEST(Topology, SwitchDegreeCapEnforced) {
  // Build a problem with one switch and many stations to saturate 8 ports.
  PlanningProblem p;
  const int es = 10;
  Graph g(es + 1);
  for (NodeId u = 0; u < es; ++u) g.add_edge(u, es, 1.0);
  p.connections = std::move(g);
  p.num_end_stations = es;
  p.flows.push_back({0, 1, 500.0, 64, 500.0});

  Topology t(p);
  t.add_switch(es);
  for (NodeId u = 0; u < 8; ++u) t.add_link(u, es);
  EXPECT_THROW(t.add_link(8, es), std::invalid_argument);
}

TEST(Topology, NodeAsilTreatsStationsAsD) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  EXPECT_EQ(t.node_asil(0), Asil::D);
  EXPECT_EQ(t.node_asil(4), Asil::A);
}

TEST(Topology, LinkAsilIsMinimumOfEndpoints) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  t.upgrade_switch(5);  // B
  t.add_link(0, 4);     // ES(D) - A  -> A
  t.add_link(4, 5);     // A - B     -> A
  t.add_link(0, 5);     // ES(D) - B -> B
  EXPECT_EQ(t.link_asil(0, 4), Asil::A);
  EXPECT_EQ(t.link_asil(4, 5), Asil::A);
  EXPECT_EQ(t.link_asil(0, 5), Asil::B);
  EXPECT_THROW(t.link_asil(1, 4), std::invalid_argument);  // not planned
}

TEST(Topology, CostMatchesEquationOne) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);       // degree will be 3 -> 4-port ASIL-A = 8
  t.add_switch(5);       // degree will be 2, upgraded to B -> 12
  t.upgrade_switch(5);
  t.add_link(0, 4);      // A link, length 1 -> 1
  t.add_link(1, 4);      // 1
  t.add_link(4, 5);      // min(A,B)=A -> 1
  t.add_link(2, 5);      // min(D,B)=B -> 2
  EXPECT_DOUBLE_EQ(t.cost(), 8.0 + 12.0 + 1.0 + 1.0 + 1.0 + 2.0);
}

TEST(Topology, CostUsesSixPortModelAboveFourPorts) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  for (NodeId u = 0; u < 4; ++u) t.add_link(u, 4);
  t.add_switch(5);
  t.add_link(4, 5);  // switch 4 now has degree 5 -> 6-port A = 10
  EXPECT_DOUBLE_EQ(t.cost(), 10.0 + 8.0 + 4.0 * 1.0 + 1.0);
}

TEST(Topology, AddPathAddsAllLinksAndSwitchesMustExist) {
  const auto p = tiny_problem();
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  t.add_path({0, 4, 5, 2});
  EXPECT_TRUE(t.has_link(0, 4));
  EXPECT_TRUE(t.has_link(4, 5));
  EXPECT_TRUE(t.has_link(5, 2));
}

TEST(Topology, PathRespectsDegreesDetectsViolations) {
  const auto p = tiny_problem();
  Topology t(p);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  t.add_link(0, 4);
  t.add_link(0, 5);
  // Station 0 is full: any path ending with a NEW link at 0 violates.
  EXPECT_FALSE(t.path_respects_degrees({0, 6, 1}));
  // A path re-using the existing 0-4 link is fine.
  EXPECT_TRUE(t.path_respects_degrees({0, 4, 1}));
  // A path with a non-Gc link is invalid.
  EXPECT_FALSE(t.path_respects_degrees({0, 1}));
}

TEST(Topology, PathCountsRepeatedNodeDegreesCorrectly) {
  // A path visiting a node twice would double its degree demand; the check
  // must aggregate per node (path 1-4-5-6-2 puts 2 new links on 5... ).
  const auto p = tiny_problem();
  Topology t(p);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  // Saturate station 1 to one remaining port.
  t.add_link(1, 6);
  EXPECT_TRUE(t.path_respects_degrees({1, 4, 5}));
  t.add_link(1, 4);
  EXPECT_FALSE(t.path_respects_degrees({1, 5, 6}));
}

TEST(Topology, ResidualRemovesFailedComponents) {
  const auto p = tiny_problem();
  auto t = dual_homed_topology(p);
  FailureScenario scenario;
  scenario.failed_switches = {4};
  const Graph residual = t.residual(scenario);
  EXPECT_FALSE(residual.is_active(4));
  EXPECT_FALSE(residual.has_edge(0, 4));
  EXPECT_TRUE(residual.has_edge(0, 5));

  FailureScenario link_failure;
  link_failure.failed_links = {EdgeKey{0, 5}};
  const Graph residual2 = t.residual(link_failure);
  EXPECT_FALSE(residual2.has_edge(0, 5));
  EXPECT_TRUE(residual2.has_edge(1, 5));
}

TEST(Topology, ResidualRejectsUnplannedSwitch) {
  const auto p = tiny_problem();
  auto t = star_topology(p);
  FailureScenario scenario;
  scenario.failed_switches = {5};  // never planned
  EXPECT_THROW(t.residual(scenario), std::invalid_argument);
}

// The graph fingerprint keys the verification engine's memo: it must track
// exactly the residual-graph-relevant state (nodes + links) and nothing
// else — in particular, ASIL upgrades must not move it.
TEST(Topology, FingerprintIgnoresAsilUpgrades) {
  const auto p = tiny_problem();
  auto t = dual_homed_topology(p);
  const auto before = t.graph_fingerprint();
  t.upgrade_switch(4);
  t.upgrade_switch(5);
  EXPECT_EQ(t.graph_fingerprint(), before);
}

TEST(Topology, FingerprintChangesOnGraphMutation) {
  const auto p = tiny_problem();
  Topology t(p);
  const auto empty = t.graph_fingerprint();
  t.add_switch(4);
  // An isolated switch leaves the link set — and every residual graph the
  // NBF can see — unchanged, so the memo key deliberately ignores it.
  EXPECT_EQ(t.graph_fingerprint(), empty);
  t.add_link(0, 4);
  EXPECT_NE(t.graph_fingerprint(), empty);
}

TEST(Topology, FingerprintIsConstructionOrderIndependent) {
  const auto p = tiny_problem();
  Topology a(p);
  a.add_switch(4);
  a.add_switch(5);
  a.add_switch(6);
  a.add_link(4, 5);
  a.add_link(4, 6);
  a.add_link(0, 4);
  Topology b(p);
  b.add_switch(6);
  b.add_switch(5);
  b.add_switch(4);
  b.add_link(0, 4);
  b.add_link(4, 6);
  b.add_link(4, 5);
  EXPECT_EQ(a.graph_fingerprint(), b.graph_fingerprint());
}

// The incrementally maintained fingerprint must always agree with a
// from-scratch recomputation over the current edge set.
TEST(Topology, FingerprintMatchesRecompute) {
  const auto p = tiny_problem();
  Topology t(p);
  EXPECT_EQ(t.graph_fingerprint(), graph_fp_of(t.graph()));
  t.add_switch(4);
  t.add_switch(5);
  t.add_link(0, 4);
  t.add_link(4, 5);
  t.add_link(1, 5);
  EXPECT_EQ(t.graph_fingerprint(), graph_fp_of(t.graph()));
  EXPECT_EQ(t.graph_fingerprint().edges, 3u);
}

// residual_fingerprint must equal the fingerprint of the actually
// materialized residual graph, for switch, end-station, multi-node, and
// link failures (the commutative-subtraction shortcut must not double- or
// under-count edges between failed nodes).
TEST(Topology, ResidualFingerprintMatchesResidualGraph) {
  const auto p = tiny_problem();
  const auto t = dual_homed_topology(p);

  std::vector<FailureScenario> scenarios;
  FailureScenario s;
  scenarios.push_back(s);  // empty: residual == Gt
  s.failed_switches = {4};
  scenarios.push_back(s);
  s.failed_switches = {4, 5};  // adjacent failed pair: shared link (4,5)
  scenarios.push_back(s);
  s.failed_switches = {0};  // end station (flow-level variant)
  scenarios.push_back(s);
  s.failed_switches = {0, 4};
  scenarios.push_back(s);
  s.failed_switches = {5};
  s.failed_links.emplace_back(0, 4);  // explicit link failure on top
  scenarios.push_back(s);

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(t.residual_fingerprint(scenarios[i]), graph_fp_of(t.residual(scenarios[i])))
        << "scenario " << i;
  }
}

TEST(Topology, CopyIsIndependent) {
  const auto p = tiny_problem();
  auto t = star_topology(p);
  Topology copy = t;
  copy.add_switch(5);
  copy.add_link(4, 5);
  EXPECT_FALSE(t.has_switch(5));
  EXPECT_FALSE(t.has_link(4, 5));
}

}  // namespace
}  // namespace nptsn
