#include "net/component_library.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

// Table I of the paper.
TEST(ComponentLibrary, TableISwitchCosts) {
  const auto lib = ComponentLibrary::standard();
  // 4-port column.
  EXPECT_DOUBLE_EQ(lib.switch_cost(4, Asil::A), 8.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(4, Asil::B), 12.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(4, Asil::C), 18.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(4, Asil::D), 27.0);
  // 6-port column.
  EXPECT_DOUBLE_EQ(lib.switch_cost(6, Asil::A), 10.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(6, Asil::B), 15.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(6, Asil::C), 22.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(6, Asil::D), 33.0);
  // 8-port column.
  EXPECT_DOUBLE_EQ(lib.switch_cost(8, Asil::A), 16.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(8, Asil::B), 24.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(8, Asil::C), 36.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(8, Asil::D), 54.0);
}

TEST(ComponentLibrary, CheapestSufficientModelSelected) {
  const auto lib = ComponentLibrary::standard();
  EXPECT_DOUBLE_EQ(lib.switch_cost(0, Asil::A), 8.0);  // unconnected -> smallest
  EXPECT_DOUBLE_EQ(lib.switch_cost(3, Asil::A), 8.0);
  EXPECT_DOUBLE_EQ(lib.switch_cost(5, Asil::A), 10.0);  // needs the 6-port
  EXPECT_DOUBLE_EQ(lib.switch_cost(7, Asil::B), 24.0);  // needs the 8-port
}

TEST(ComponentLibrary, DegreeBeyondLargestModelThrows) {
  const auto lib = ComponentLibrary::standard();
  EXPECT_THROW(lib.switch_cost(9, Asil::A), std::invalid_argument);
  EXPECT_THROW(lib.switch_cost(-1, Asil::A), std::invalid_argument);
}

TEST(ComponentLibrary, TableILinkCosts) {
  const auto lib = ComponentLibrary::standard();
  EXPECT_DOUBLE_EQ(lib.link_cost(Asil::A, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(lib.link_cost(Asil::B, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(lib.link_cost(Asil::C, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lib.link_cost(Asil::D, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(lib.link_cost(Asil::B, 2.5), 5.0);  // scales with length
}

TEST(ComponentLibrary, LinkCostRejectsNonPositiveLength) {
  const auto lib = ComponentLibrary::standard();
  EXPECT_THROW(lib.link_cost(Asil::A, 0.0), std::invalid_argument);
}

TEST(ComponentLibrary, FailureProbabilitiesNearTableValues) {
  const auto lib = ComponentLibrary::standard();
  EXPECT_NEAR(lib.failure_prob(Asil::A), 1e-3, 1e-6);
  EXPECT_NEAR(lib.failure_prob(Asil::B), 1e-4, 1e-8);
  EXPECT_NEAR(lib.failure_prob(Asil::C), 1e-5, 1e-10);
  EXPECT_NEAR(lib.failure_prob(Asil::D), 1e-6, 1e-12);
}

// The safe-fault boundary the paper's Section VI-A relies on: R = 1e-6 is
// "the minimum value that allows an ASIL-D device to function without a
// backup", i.e. a single ASIL-D failure falls strictly below R, while single
// A/B/C failures stay above it.
TEST(ComponentLibrary, AsilDSingleFailureIsASafeFaultAtPaperR) {
  const auto lib = ComponentLibrary::standard();
  const double r = 1e-6;
  EXPECT_LT(lib.failure_prob(Asil::D), r);
  EXPECT_GE(lib.failure_prob(Asil::C), r);
  EXPECT_GE(lib.failure_prob(Asil::B), r);
  EXPECT_GE(lib.failure_prob(Asil::A), r);
}

// ASIL decomposition: two ASIL-B components failing together are a safe
// fault (1e-8 << R), the property the TRH baseline's FRER design relies on.
TEST(ComponentLibrary, DualAsilBFailureIsSafe) {
  const auto lib = ComponentLibrary::standard();
  const double dual_b = lib.failure_prob(Asil::B) * lib.failure_prob(Asil::B);
  EXPECT_LT(dual_b, 1e-6);
}

TEST(ComponentLibrary, DualAsilAFailureIsSafeUnderExponentialModel) {
  // 1 - exp(-1e-3) squared lands just below 1e-6: dual-A faults are safe at
  // the paper's R, which is why predominantly-ASIL-A solutions exist.
  const auto lib = ComponentLibrary::standard();
  const double dual_a = lib.failure_prob(Asil::A) * lib.failure_prob(Asil::A);
  EXPECT_LT(dual_a, 1e-6);
  EXPECT_GT(dual_a, 0.99e-6);
}

TEST(ComponentLibrary, MaxSwitchDegreeIsEight) {
  EXPECT_EQ(ComponentLibrary::standard().max_switch_degree(), 8);
}

TEST(ComponentLibrary, CustomLibraryValidation) {
  const std::array<double, 4> link = {1, 2, 4, 8};
  const std::array<double, 4> prob = {1e-3, 1e-4, 1e-5, 1e-6};
  EXPECT_THROW(ComponentLibrary({}, link, prob), std::invalid_argument);
  EXPECT_THROW(ComponentLibrary({{4, {1, 2, 3, 4}}, {4, {1, 2, 3, 4}}}, link, prob),
               std::invalid_argument);  // non-increasing ports
  EXPECT_THROW(ComponentLibrary({{4, {0, 2, 3, 4}}}, link, prob),
               std::invalid_argument);  // non-positive cost
  EXPECT_THROW(ComponentLibrary({{4, {1, 2, 3, 4}}}, link, {0.5, 0.5, 0.5, 1.5}),
               std::invalid_argument);  // probability out of range
}

TEST(ComponentLibrary, CostMonotoneInAsil) {
  const auto lib = ComponentLibrary::standard();
  for (int deg : {2, 5, 8}) {
    for (std::size_t i = 1; i < kAllAsil.size(); ++i) {
      EXPECT_GT(lib.switch_cost(deg, kAllAsil[i]), lib.switch_cost(deg, kAllAsil[i - 1]));
    }
  }
}

TEST(ComponentLibrary, FailureProbMonotoneDecreasingInAsil) {
  const auto lib = ComponentLibrary::standard();
  for (std::size_t i = 1; i < kAllAsil.size(); ++i) {
    EXPECT_LT(lib.failure_prob(kAllAsil[i]), lib.failure_prob(kAllAsil[i - 1]));
  }
}

}  // namespace
}  // namespace nptsn
