#include "net/failure.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

TEST(FailureScenario, EmptyByDefault) {
  FailureScenario s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(FailureScenario::none().empty());
}

TEST(FailureScenario, NormalizeSortsAndDedupes) {
  FailureScenario s;
  s.failed_switches = {6, 4, 6, 5};
  s.failed_links = {EdgeKey{2, 1}, EdgeKey{0, 3}, EdgeKey{1, 2}};
  s.normalize();
  EXPECT_EQ(s.failed_switches, (std::vector<NodeId>{4, 5, 6}));
  ASSERT_EQ(s.failed_links.size(), 2u);
  EXPECT_EQ(s.failed_links[0], EdgeKey(0, 3));
  EXPECT_EQ(s.failed_links[1], EdgeKey(1, 2));
}

TEST(FailureScenario, OfSwitchesNormalizes) {
  const auto s = FailureScenario::of_switches({5, 4, 5});
  EXPECT_EQ(s.failed_switches, (std::vector<NodeId>{4, 5}));
  EXPECT_TRUE(s.failed_links.empty());
}

TEST(FailureScenario, SubsetTest) {
  const auto small = FailureScenario::of_switches({4});
  const auto big = FailureScenario::of_switches({4, 5});
  const auto other = FailureScenario::of_switches({6});
  EXPECT_TRUE(small.switches_subset_of(big));
  EXPECT_TRUE(small.switches_subset_of(small));
  EXPECT_FALSE(big.switches_subset_of(small));
  EXPECT_FALSE(other.switches_subset_of(big));
  EXPECT_TRUE(FailureScenario::none().switches_subset_of(small));
}

TEST(FailureProbability, EmptyScenarioIsCertain) {
  const auto p = tiny_problem();
  const auto t = dual_homed_topology(p);
  EXPECT_DOUBLE_EQ(failure_probability(t, FailureScenario::none()), 1.0);
}

TEST(FailureProbability, ProductOfComponentProbabilities) {
  const auto p = tiny_problem();
  auto t = dual_homed_topology(p, Asil::A);
  t.upgrade_switch(5);  // switch 5 -> B

  const double pa = p.library.failure_prob(Asil::A);
  const double pb = p.library.failure_prob(Asil::B);

  EXPECT_DOUBLE_EQ(failure_probability(t, FailureScenario::of_switches({4})), pa);
  EXPECT_DOUBLE_EQ(failure_probability(t, FailureScenario::of_switches({5})), pb);
  EXPECT_DOUBLE_EQ(failure_probability(t, FailureScenario::of_switches({4, 5})), pa * pb);

  FailureScenario mixed;
  mixed.failed_switches = {4};
  mixed.failed_links = {EdgeKey{0, 5}};  // ES(D)-B link -> B probability
  EXPECT_DOUBLE_EQ(failure_probability(t, mixed), pa * pb);
}

TEST(FailureProbability, LinkProbabilityUsesDerivedAsil) {
  const auto p = tiny_problem();
  const auto t = dual_homed_topology(p, Asil::C);
  FailureScenario s;
  s.failed_links = {EdgeKey{4, 5}};  // C-C link
  EXPECT_DOUBLE_EQ(failure_probability(t, s), p.library.failure_prob(Asil::C));
}

TEST(FailureProbability, HigherAsilLowersScenarioProbability) {
  const auto p = tiny_problem();
  const auto low = dual_homed_topology(p, Asil::A);
  const auto high = dual_homed_topology(p, Asil::D);
  const auto scenario = FailureScenario::of_switches({4, 5});
  EXPECT_GT(failure_probability(low, scenario), failure_probability(high, scenario));
}

}  // namespace
}  // namespace nptsn
