#include "net/asil.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Asil, NextLevelClimbsOneStep) {
  EXPECT_EQ(next_level(Asil::A), Asil::B);
  EXPECT_EQ(next_level(Asil::B), Asil::C);
  EXPECT_EQ(next_level(Asil::C), Asil::D);
}

TEST(Asil, NextLevelRejectsD) { EXPECT_THROW(next_level(Asil::D), std::invalid_argument); }

TEST(Asil, OrderingHelpers) {
  EXPECT_TRUE(lower_than(Asil::A, Asil::B));
  EXPECT_TRUE(lower_than(Asil::C, Asil::D));
  EXPECT_FALSE(lower_than(Asil::D, Asil::D));
  EXPECT_FALSE(lower_than(Asil::B, Asil::A));
}

TEST(Asil, MinLevel) {
  EXPECT_EQ(min_level(Asil::A, Asil::D), Asil::A);
  EXPECT_EQ(min_level(Asil::D, Asil::B), Asil::B);
  EXPECT_EQ(min_level(Asil::C, Asil::C), Asil::C);
}

TEST(Asil, ToString) {
  EXPECT_EQ(to_string(Asil::A), "A");
  EXPECT_EQ(to_string(Asil::B), "B");
  EXPECT_EQ(to_string(Asil::C), "C");
  EXPECT_EQ(to_string(Asil::D), "D");
}

TEST(Asil, AllLevelsEnumeration) {
  ASSERT_EQ(kAllAsil.size(), 4u);
  EXPECT_EQ(kAllAsil.front(), Asil::A);
  EXPECT_EQ(kAllAsil.back(), Asil::D);
}

}  // namespace
}  // namespace nptsn
