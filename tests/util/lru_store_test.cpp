#include "util/lru_store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace nptsn {
namespace {

// Small fixed overhead so byte math in the tests stays readable.
constexpr std::size_t kOverhead = 10;

TEST(LruStore, PutGetRoundTrip) {
  LruStore<int, std::string> store(1024, kOverhead);
  EXPECT_EQ(store.get(1), nullptr);
  store.put(1, "one", 3);
  store.put(2, "two", 3);
  ASSERT_NE(store.get(1), nullptr);
  EXPECT_EQ(*store.get(1), "one");
  EXPECT_EQ(*store.get(2), "two");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.bytes(), 2 * (3 + kOverhead));
  EXPECT_EQ(store.hits(), 3u);
  EXPECT_EQ(store.misses(), 1u);
}

TEST(LruStore, OverwriteReplacesValueAndCost) {
  LruStore<int, std::string> store(1024, kOverhead);
  store.put(1, "short", 5);
  store.put(1, "a much longer value", 19);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.bytes(), 19 + kOverhead);
  EXPECT_EQ(*store.get(1), "a much longer value");
}

TEST(LruStore, EvictsLeastRecentlyUsedUnderByteCap) {
  // Budget fits exactly three entries of cost 20.
  LruStore<int, std::string> store(3 * (20 + kOverhead), kOverhead);
  store.put(1, "a", 20);
  store.put(2, "b", 20);
  store.put(3, "c", 20);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(store.get(1), nullptr);
  store.put(4, "d", 20);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.get(2), nullptr);  // evicted
  EXPECT_NE(store.get(1), nullptr);
  EXPECT_NE(store.get(3), nullptr);
  EXPECT_NE(store.get(4), nullptr);
  EXPECT_LE(store.bytes(), store.max_bytes());
}

TEST(LruStore, PutRefreshesRecencyToo) {
  LruStore<int, int> store(3 * (8 + kOverhead), kOverhead);
  store.put(1, 10, 8);
  store.put(2, 20, 8);
  store.put(3, 30, 8);
  store.put(1, 11, 8);  // overwrite refreshes 1; 2 is now LRU
  store.put(4, 40, 8);
  EXPECT_EQ(store.get(2), nullptr);
  EXPECT_EQ(*store.get(1), 11);
}

TEST(LruStore, EvictsManyForOneLargeEntry) {
  LruStore<int, std::string> store(100, 0);
  store.put(1, "a", 30);
  store.put(2, "b", 30);
  store.put(3, "c", 30);
  // Cost 90 forces out everything older.
  store.put(4, "big", 90);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.evictions(), 3u);
  EXPECT_NE(store.get(4), nullptr);
}

TEST(LruStore, RejectsEntriesLargerThanTheWholeBudget) {
  LruStore<int, std::string> store(100, kOverhead);
  store.put(1, "resident", 50);
  store.put(2, "oversized", 95);  // 95 + 10 > 100
  EXPECT_EQ(store.rejected(), 1u);
  EXPECT_EQ(store.get(2), nullptr);
  // The resident entry was not disturbed to make room for a lost cause.
  EXPECT_NE(store.get(1), nullptr);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(LruStore, TransparentLookupWithBorrowedKey) {
  LruStore<std::string, int, std::less<>> store(1024, kOverhead);
  store.put("alpha", 1, 8);
  const std::string_view borrowed = "alpha";
  ASSERT_NE(store.get(borrowed), nullptr);
  EXPECT_EQ(*store.get(borrowed), 1);
  EXPECT_EQ(store.get(std::string_view("beta")), nullptr);
}

TEST(LruStore, ValueAddressStableAcrossOtherInsertsAndGets) {
  LruStore<int, std::string> store(1 << 20, kOverhead);
  store.put(1, "stable", 6);
  const std::string* address = store.get(1);
  for (int k = 2; k < 64; ++k) store.put(k, "filler", 6);
  store.get(7);
  EXPECT_EQ(store.get(1), address);
  EXPECT_EQ(*address, "stable");
}

TEST(LruStore, ClearResetsContentsButKeepsCounters) {
  LruStore<int, int> store(1024, kOverhead);
  store.put(1, 10, 4);
  store.get(1);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.get(1), nullptr);
}

}  // namespace
}  // namespace nptsn
