#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Combinatorics, VisitsAllSubsetsInLexOrder) {
  std::vector<std::vector<int>> seen;
  for_each_combination(4, 2, [&](const std::vector<int>& idx) {
    seen.push_back(idx);
    return true;
  });
  const std::vector<std::vector<int>> expected = {{0, 1}, {0, 2}, {0, 3},
                                                  {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(seen, expected);
}

TEST(Combinatorics, ZeroKVisitsEmptySetOnce) {
  int visits = 0;
  for_each_combination(5, 0, [&](const std::vector<int>& idx) {
    EXPECT_TRUE(idx.empty());
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Combinatorics, KGreaterThanNVisitsNothing) {
  int visits = 0;
  const bool completed = for_each_combination(2, 3, [&](const std::vector<int>&) {
    ++visits;
    return true;
  });
  EXPECT_TRUE(completed);
  EXPECT_EQ(visits, 0);
}

TEST(Combinatorics, FullSubset) {
  int visits = 0;
  for_each_combination(3, 3, [&](const std::vector<int>& idx) {
    EXPECT_EQ(idx, (std::vector<int>{0, 1, 2}));
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Combinatorics, EarlyStopReportsFalse) {
  int visits = 0;
  const bool completed = for_each_combination(5, 2, [&](const std::vector<int>&) {
    ++visits;
    return visits < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 3);
}

TEST(Combinatorics, CountMatchesBinomial) {
  for (int n = 0; n <= 8; ++n) {
    for (int k = 0; k <= n; ++k) {
      std::uint64_t count = 0;
      for_each_combination(n, k, [&](const std::vector<int>&) {
        ++count;
        return true;
      });
      EXPECT_EQ(count, binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Combinatorics, BinomialKnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(15, 2), 105u);  // the ORION dual-switch count
  EXPECT_EQ(binomial(52, 5), 2598960u);
  EXPECT_EQ(binomial(3, 7), 0u);
}

TEST(Combinatorics, BinomialRejectsNegative) {
  EXPECT_THROW(binomial(-1, 0), std::invalid_argument);
  EXPECT_THROW(binomial(3, -2), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
