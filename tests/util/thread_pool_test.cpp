#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace nptsn {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](int) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<long> partial(100, 0);
  pool.parallel_for(100, [&](int i) {
    long s = 0;
    for (int j = 0; j <= i; ++j) s += j;
    partial[static_cast<std::size_t>(i)] = s;
  });
  long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * (i + 1) / 2;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](int i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ConcurrentThrowsFromAllWorkersPropagateOne) {
  // Force the throws to be genuinely concurrent: every task spins at a
  // barrier until all four have arrived, then all throw at once. Exactly one
  // exception must surface and the pool must not deadlock or double-free.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](int i) {
                                   ++arrived;
                                   while (arrived.load() < 4) std::this_thread::yield();
                                   throw std::runtime_error("worker " + std::to_string(i));
                                 }),
               std::runtime_error);

  // And the pool stays fully usable afterwards.
  std::atomic<int> runs{0};
  pool.parallel_for(16, [&](int) { ++runs; });
  EXPECT_EQ(runs.load(), 16);
  EXPECT_THROW(pool.parallel_for(2, [](int) { throw std::runtime_error("again"); }),
               std::runtime_error);
  runs = 0;
  pool.parallel_for(8, [&](int) { ++runs; });
  EXPECT_EQ(runs.load(), 8);
}

TEST(ThreadPool, ConcurrentThrowsPropagateLowestIndexDeterministically) {
  // Several tasks throw in the same parallel_for; which exception surfaces
  // must not depend on thread scheduling. The contract: every task runs to
  // completion (or to its throw), and the lowest-index exception wins. The
  // barrier forces all four tasks to be in flight simultaneously so a
  // first-past-the-post implementation would flake here.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> arrived{0};
    try {
      pool.parallel_for(4, [&](int i) {
        ++arrived;
        while (arrived.load() < 4) std::this_thread::yield();
        if (i >= 1) throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected a propagated exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

TEST(ThreadPool, SurvivesExceptionAndRunsAgain) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](int) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> runs{0};
  pool.parallel_for(4, [&](int) { ++runs; });
  EXPECT_EQ(runs.load(), 4);
}

TEST(ThreadPool, SingleThreadPoolStillParallelFor) {
  ThreadPool pool(1);
  std::atomic<int> runs{0};
  pool.parallel_for(10, [&](int) { ++runs; });
  EXPECT_EQ(runs.load(), 10);
}

TEST(ThreadPool, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SizeReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

}  // namespace
}  // namespace nptsn
