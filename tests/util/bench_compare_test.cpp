#include "util/bench_compare.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace nptsn {
namespace {

// A miniature bench document in the shared micro-bench schema.
const char* kBaseline = R"({
  "bench": "micro_demo",
  "mode": "fast",
  "reps": 3,
  "gemm": [
    {"name": "affine", "m": 4096, "k": 37, "n": 32, "seconds_fast": 0.004, "speedup": 4.0}
  ],
  "scenarios": [
    {"name": "ADS", "seconds_reference": 0.02, "speedup_epoch_forward": 3.5,
     "overhead_percent": 1.0, "latency_p50_ratio": 0.95, "latency_p99_ratio": 0.88},
    {"name": "ORION", "speedup_epoch_forward": 2.1, "overhead_percent": -4.0}
  ]
})";

std::string with(const std::string& doc, const std::string& from, const std::string& to) {
  std::string out = doc;
  const std::size_t at = out.find(from);
  EXPECT_NE(at, std::string::npos);
  out.replace(at, from.size(), to);
  return out;
}

TEST(JsonParser, RoundTripsBenchDocument) {
  const JsonValue doc = parse_json(kBaseline);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("bench")->string(), "micro_demo");
  EXPECT_DOUBLE_EQ(doc.find("reps")->number(), 3.0);
  const auto& scenarios = doc.find("scenarios")->array();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[1].find("name")->string(), "ORION");
  EXPECT_DOUBLE_EQ(scenarios[1].find("overhead_percent")->number(), -4.0);
}

TEST(JsonParser, ParsesScientificNotationAndEscapes) {
  const JsonValue doc = parse_json(R"({"v": 1.89e-15, "s": "a\n\"b\"", "t": true})");
  EXPECT_DOUBLE_EQ(doc.find("v")->number(), 1.89e-15);
  EXPECT_EQ(doc.find("s")->string(), "a\n\"b\"");
  EXPECT_TRUE(doc.find("t")->boolean());
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1"), std::runtime_error);          // truncated
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1e}"), std::runtime_error);
}

TEST(TrackedMetrics, ExtractsOnlyNormalizedRatios) {
  const auto metrics = tracked_metrics(parse_json(kBaseline));
  // speedup*, overhead_percent, and latency_* are tracked; raw seconds and
  // counts are not.
  ASSERT_EQ(metrics.size(), 7u);
  EXPECT_DOUBLE_EQ(metrics.at("gemm/affine/speedup"), 4.0);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ADS/speedup_epoch_forward"), 3.5);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ORION/speedup_epoch_forward"), 2.1);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ADS/overhead_percent"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ORION/overhead_percent"), -4.0);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ADS/latency_p50_ratio"), 0.95);
  EXPECT_DOUBLE_EQ(metrics.at("scenarios/ADS/latency_p99_ratio"), 0.88);
  EXPECT_EQ(metrics.count("scenarios/ADS/seconds_reference"), 0u);
  EXPECT_EQ(metrics.count("gemm/affine/m"), 0u);
}

TEST(BenchCompare, IdenticalRunPasses) {
  const JsonValue baseline = parse_json(kBaseline);
  const JsonValue fresh = parse_json(kBaseline);
  const BenchComparison cmp = compare_bench_results(baseline, fresh, 1.3);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.compared, 7);
  EXPECT_TRUE(cmp.regressions.empty());
  EXPECT_TRUE(cmp.missing.empty());
}

TEST(BenchCompare, FlagsInjectedSpeedupRegression) {
  const JsonValue baseline = parse_json(kBaseline);
  // ORION epoch-forward speedup drops 2.1 -> 1.5: normalized time rises by
  // 2.1/1.5 = 1.4x, past the 1.3 gate.
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"speedup_epoch_forward\": 2.1", "\"speedup_epoch_forward\": 1.5"));
  const BenchComparison cmp = compare_bench_results(baseline, fresh, 1.3);
  ASSERT_EQ(cmp.regressions.size(), 1u);
  EXPECT_EQ(cmp.regressions[0].metric, "scenarios/ORION/speedup_epoch_forward");
  EXPECT_DOUBLE_EQ(cmp.regressions[0].baseline, 2.1);
  EXPECT_DOUBLE_EQ(cmp.regressions[0].fresh, 1.5);
  EXPECT_NEAR(cmp.regressions[0].slowdown, 1.4, 1e-12);
}

TEST(BenchCompare, FlagsInjectedOverheadRegression) {
  const JsonValue baseline = parse_json(kBaseline);
  // ADS overhead 1% -> 40%: normalized time 1.40/1.01 = 1.386x > 1.3.
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"overhead_percent\": 1.0", "\"overhead_percent\": 40.0"));
  const BenchComparison cmp = compare_bench_results(baseline, fresh, 1.3);
  ASSERT_EQ(cmp.regressions.size(), 1u);
  EXPECT_EQ(cmp.regressions[0].metric, "scenarios/ADS/overhead_percent");
}

TEST(BenchCompare, FlagsInjectedLatencyP99Regression) {
  const JsonValue baseline = parse_json(kBaseline);
  // latency_* metrics ARE normalized times (lower is better): p99 rising
  // 0.88 -> 1.20 is a 1.36x slowdown, past the 1.3 gate.
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"latency_p99_ratio\": 0.88", "\"latency_p99_ratio\": 1.20"));
  const BenchComparison cmp = compare_bench_results(baseline, fresh, 1.3);
  ASSERT_EQ(cmp.regressions.size(), 1u);
  EXPECT_EQ(cmp.regressions[0].metric, "scenarios/ADS/latency_p99_ratio");
  EXPECT_DOUBLE_EQ(cmp.regressions[0].baseline, 0.88);
  EXPECT_DOUBLE_EQ(cmp.regressions[0].fresh, 1.20);
  EXPECT_NEAR(cmp.regressions[0].slowdown, 1.20 / 0.88, 1e-12);
}

TEST(BenchCompare, LatencyImprovementNeverFails) {
  const JsonValue baseline = parse_json(kBaseline);
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"latency_p50_ratio\": 0.95", "\"latency_p50_ratio\": 0.40"));
  EXPECT_TRUE(compare_bench_results(baseline, fresh, 1.3).ok());
}

TEST(BenchCompare, ToleratesSlowdownInsideThreshold) {
  const JsonValue baseline = parse_json(kBaseline);
  // 2.1 -> 1.7 is a 1.235x slowdown, inside the 1.3 gate.
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"speedup_epoch_forward\": 2.1", "\"speedup_epoch_forward\": 1.7"));
  EXPECT_TRUE(compare_bench_results(baseline, fresh, 1.3).ok());
}

TEST(BenchCompare, ImprovementNeverFails) {
  const JsonValue baseline = parse_json(kBaseline);
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"speedup_epoch_forward\": 2.1", "\"speedup_epoch_forward\": 9.0"));
  EXPECT_TRUE(compare_bench_results(baseline, fresh, 1.3).ok());
}

TEST(BenchCompare, MissingTrackedMetricFails) {
  const JsonValue baseline = parse_json(kBaseline);
  // The fresh run silently dropped the ORION scenario's speedup metric.
  const JsonValue fresh = parse_json(
      with(kBaseline, "\"speedup_epoch_forward\": 2.1, ", ""));
  const BenchComparison cmp = compare_bench_results(baseline, fresh, 1.3);
  EXPECT_FALSE(cmp.ok());
  ASSERT_EQ(cmp.missing.size(), 1u);
  EXPECT_EQ(cmp.missing[0], "scenarios/ORION/speedup_epoch_forward");
}

TEST(BenchCompare, PairsScenariosByNameNotOrder) {
  const JsonValue baseline = parse_json(kBaseline);
  const JsonValue fresh = parse_json(R"({
    "scenarios": [
      {"name": "ORION", "speedup_epoch_forward": 2.1, "overhead_percent": -4.0},
      {"name": "ADS", "speedup_epoch_forward": 3.5, "overhead_percent": 1.0,
       "latency_p50_ratio": 0.95, "latency_p99_ratio": 0.88}
    ],
    "gemm": [
      {"name": "affine", "speedup": 4.0}
    ]
  })");
  EXPECT_TRUE(compare_bench_results(baseline, fresh, 1.3).ok());
}

TEST(BenchCompare, RejectsNonsenseThresholdAndValues) {
  const JsonValue baseline = parse_json(kBaseline);
  EXPECT_THROW(compare_bench_results(baseline, baseline, 0.5), std::invalid_argument);
  const JsonValue bad = parse_json(R"({"speedup": -2.0})");
  EXPECT_THROW(compare_bench_results(bad, bad, 1.3), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
