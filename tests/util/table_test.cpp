#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nptsn {
namespace {

TEST(Table, PrintsHeaderRowsAndCsv) {
  Table t({"flows", "cost"});
  t.add_row({"10", "146"});
  t.add_row({"20", "212"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("flows"), std::string::npos);
  EXPECT_NE(out.find("146"), std::string::npos);
  EXPECT_NE(out.find("# csv: flows,cost"), std::string::npos);
  EXPECT_NE(out.find("# csv: 20,212"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PercentFormatsFraction) {
  EXPECT_EQ(Table::percent(0.5), "50%");
  EXPECT_EQ(Table::percent(1.0), "100%");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, ColumnsAligned) {
  Table t({"x", "yyyy"});
  t.add_row({"longvalue", "1"});
  std::ostringstream os;
  t.print(os);
  // Header line must be padded to the widest cell.
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_GE(header.size(), std::string("longvalue  yyyy").size());
}

}  // namespace
}  // namespace nptsn
