#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "testing/fault_injector.hpp"

namespace nptsn {
namespace {

using nptsn::testing::FaultTrigger;
using nptsn::testing::InjectedFault;
using nptsn::testing::ScopedCheckpointWriteFault;
using nptsn::testing::corrupt_file_byte;
using nptsn::testing::truncate_file;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nptsn_ckpt_" + name;
}

void remove_all(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(ByteIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.str("hello checkpoint");
  w.str("");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.str(), "hello checkpoint");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIo, NanRoundTripsBitExactly) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.data());
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(ByteIo, BlobRoundTripAndNesting) {
  ByteWriter inner;
  inner.u64(7);
  inner.str("nested");

  ByteWriter outer;
  outer.u8(1);
  outer.blob(inner.data());
  outer.u8(2);

  ByteReader r(outer.data());
  EXPECT_EQ(r.u8(), 1);
  const auto bytes = r.blob();
  EXPECT_EQ(r.u8(), 2);
  ByteReader nested(bytes);
  EXPECT_EQ(nested.u64(), 7u);
  EXPECT_EQ(nested.str(), "nested");
  nested.expect_exhausted("nested blob");
}

TEST(ByteIo, UnderflowThrows) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_THROW(r.u8(), CheckpointError);
}

TEST(ByteIo, TruncatedStringThrows) {
  ByteWriter w;
  w.u64(100);  // claims 100 bytes follow
  w.raw("abc", 3);
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), CheckpointError);
}

TEST(ByteIo, ExpectExhaustedFlagsTrailingBytes) {
  ByteWriter w;
  w.u64(1);
  w.u8(9);
  ByteReader r(w.data());
  r.u64();
  EXPECT_THROW(r.expect_exhausted("test section"), CheckpointError);
}

TEST(Checksum, Fnv1a64MatchesReferenceVectors) {
  // Offset basis for the empty input, and the well-known value for "a".
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  const std::string path = temp_path("roundtrip");
  remove_all(path);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  save_checkpoint_file(path, 42, payload);
  EXPECT_EQ(load_checkpoint_file(path, 42), payload);
  remove_all(path);
}

TEST(CheckpointFile, EmptyPayloadRoundTrips) {
  const std::string path = temp_path("empty");
  remove_all(path);
  save_checkpoint_file(path, 1, {});
  EXPECT_TRUE(load_checkpoint_file(path, 1).empty());
  remove_all(path);
}

TEST(CheckpointFile, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint_file(temp_path("does_not_exist"), 1), CheckpointError);
}

TEST(CheckpointFile, VersionMismatchIsRefused) {
  const std::string path = temp_path("version");
  remove_all(path);
  save_checkpoint_file(path, 1, {1, 2, 3});
  EXPECT_THROW(load_checkpoint_file(path, 2), CheckpointError);
  remove_all(path);
}

TEST(CheckpointFile, CorruptPayloadIsRefusedByChecksum) {
  const std::string path = temp_path("corrupt");
  remove_all(path);
  save_checkpoint_file(path, 1, {10, 20, 30, 40});
  corrupt_file_byte(path, 34);  // inside the payload (header is 32 bytes)
  EXPECT_THROW(load_checkpoint_file(path, 1), CheckpointError);
  remove_all(path);
}

TEST(CheckpointFile, TruncatedFileIsRefused) {
  const std::string path = temp_path("truncated");
  remove_all(path);
  save_checkpoint_file(path, 1, std::vector<std::uint8_t>(64, 7));
  truncate_file(path, 48);  // torn write: payload cut short
  EXPECT_THROW(load_checkpoint_file(path, 1), CheckpointError);
  truncate_file(path, 10);  // even the header is incomplete
  EXPECT_THROW(load_checkpoint_file(path, 1), CheckpointError);
  remove_all(path);
}

TEST(CheckpointFile, SaveRotatesPreviousGeneration) {
  const std::string path = temp_path("rotate");
  remove_all(path);
  save_checkpoint_file(path, 1, {1});
  save_checkpoint_file(path, 1, {2});
  EXPECT_EQ(load_checkpoint_file(path, 1), (std::vector<std::uint8_t>{2}));
  EXPECT_EQ(load_checkpoint_file(path + ".1", 1), (std::vector<std::uint8_t>{1}));
  remove_all(path);
}

TEST(CheckpointFile, FallbackLoadsPreviousWhenNewestIsTorn) {
  const std::string path = temp_path("fallback");
  remove_all(path);
  save_checkpoint_file(path, 1, {1});
  save_checkpoint_file(path, 1, {2});
  corrupt_file_byte(path, 32);  // the single payload byte

  std::string error;
  const auto loaded = load_checkpoint_with_fallback(path, 1, &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(loaded->source_path, path + ".1");
  remove_all(path);
}

TEST(CheckpointFile, FallbackReportsWhenNothingValidates) {
  const std::string path = temp_path("nothing");
  remove_all(path);
  std::string error;
  EXPECT_FALSE(load_checkpoint_with_fallback(path, 1, &error).has_value());
  EXPECT_FALSE(error.empty());

  save_checkpoint_file(path, 1, {1});
  save_checkpoint_file(path, 1, {2});
  corrupt_file_byte(path, 32);
  corrupt_file_byte(path + ".1", 32);
  error.clear();
  EXPECT_FALSE(load_checkpoint_with_fallback(path, 1, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos);
  remove_all(path);
}

TEST(CheckpointFile, CrashAfterTmpWriteLeavesLiveCheckpointIntact) {
  const std::string path = temp_path("crash_tmp");
  remove_all(path);
  save_checkpoint_file(path, 1, {1});
  {
    auto trigger = std::make_shared<FaultTrigger>(1);
    ScopedCheckpointWriteFault fault(CheckpointWriteStage::kAfterTmpWrite, trigger);
    EXPECT_THROW(save_checkpoint_file(path, 1, {2}), InjectedFault);
  }
  // The "crash" hit before any rename: the live file is still generation 1.
  EXPECT_EQ(load_checkpoint_file(path, 1), (std::vector<std::uint8_t>{1}));
  // And the writer recovers on the next attempt.
  save_checkpoint_file(path, 1, {3});
  EXPECT_EQ(load_checkpoint_file(path, 1), (std::vector<std::uint8_t>{3}));
  remove_all(path);
}

TEST(CheckpointFile, CrashAfterTmpWriteLeavesCompleteSyncedTmpFile) {
  const std::string path = temp_path("crash_tmp_complete");
  remove_all(path);
  save_checkpoint_file(path, 1, {1});
  {
    auto trigger = std::make_shared<FaultTrigger>(1);
    ScopedCheckpointWriteFault fault(CheckpointWriteStage::kAfterTmpWrite, trigger);
    EXPECT_THROW(save_checkpoint_file(path, 1, {2, 3, 4}), InjectedFault);
  }
  // The crash hit after the tmp write + file fsync + parent-directory fsync:
  // whatever survives at <path>.tmp must be the COMPLETE new generation, not
  // a torn prefix — write-then-publish means the tmp is all-or-nothing.
  EXPECT_EQ(load_checkpoint_file(path + ".tmp", 1),
            (std::vector<std::uint8_t>{2, 3, 4}));
  // And the live checkpoint is still the old generation, untouched.
  EXPECT_EQ(load_checkpoint_file(path, 1), (std::vector<std::uint8_t>{1}));
  remove_all(path);
}

TEST(CheckpointFile, CrashAfterRotateStillResumesViaFallback) {
  const std::string path = temp_path("crash_rotate");
  remove_all(path);
  save_checkpoint_file(path, 1, {1});
  {
    auto trigger = std::make_shared<FaultTrigger>(1);
    ScopedCheckpointWriteFault fault(CheckpointWriteStage::kAfterRotate, trigger);
    EXPECT_THROW(save_checkpoint_file(path, 1, {2}), InjectedFault);
  }
  // Worst case: the old file was already rotated away, the new one never
  // became live. The fallback path still finds generation 1 under .1.
  std::string error;
  const auto loaded = load_checkpoint_with_fallback(path, 1, &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, (std::vector<std::uint8_t>{1}));
  remove_all(path);
}

}  // namespace
}  // namespace nptsn
