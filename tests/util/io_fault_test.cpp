// Unit tests for the injectable I/O layer (util/io.hpp): site matching and
// hit scheduling, errno faults, EINTR storms, short writes, the NPTSN_IO_FAULT
// grammar, and the transient/persistent errno classification the degraded-mode
// machinery is built on.
#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace nptsn {
namespace {

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { io::disarm_io_faults(); }
  void TearDown() override {
    io::disarm_io_faults();
    ::unsetenv("NPTSN_IO_FAULT");
  }

  // A real scratch file, so the wrappers' pass-through path is exercised too.
  int open_scratch() {
    path_ = ::testing::TempDir() + "nptsn_io_fault_scratch";
    std::filesystem::remove(path_);
    const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    EXPECT_GE(fd, 0);
    return fd;
  }

  std::string path_;
};

const std::uint8_t kPayload[] = {1, 2, 3, 4, 5, 6, 7, 8};

TEST_F(IoFaultTest, DisarmedCallsPassThrough) {
  const int fd = open_scratch();
  EXPECT_EQ(io::write_all("t.write", fd, kPayload, sizeof(kPayload)), 0);
  EXPECT_EQ(io::fsync("t.fsync", fd), 0);
  EXPECT_EQ(io::close("t.close", fd), 0);
  EXPECT_EQ(io::io_faults_injected(), 0);
  EXPECT_EQ(std::filesystem::file_size(path_), sizeof(kPayload));
}

TEST_F(IoFaultTest, ErrnoFaultFiresAtScheduledHitThenClears) {
  io::arm_io_fault({"t.write", ENOSPC, /*at_hit=*/2, /*count=*/1});
  const int fd = open_scratch();
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), 4);  // hit 1: before at_hit
  errno = 0;
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), 4);  // count exhausted
  EXPECT_EQ(io::io_faults_injected(), 1);
  ::close(fd);
}

TEST_F(IoFaultTest, PrefixPatternMatchesSiteFamily) {
  io::arm_io_fault({"journal.*", EIO, 1, /*count=*/-1});
  const int fd = open_scratch();
  EXPECT_EQ(io::write("journal.append.write", fd, kPayload, 4), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(io::fsync("journal.append.fsync", fd), -1);
  EXPECT_EQ(io::write("checkpoint.write", fd, kPayload, 4), 4);  // different family
  ::close(fd);
}

TEST_F(IoFaultTest, ShortWriteConsumesHalfAndWriteAllLoopsOverIt) {
  io::arm_io_fault({"t.write", /*error=*/0, 1, /*count=*/3});  // 3 short writes
  const int fd = open_scratch();
  // A raw short write reports the truncated count; it is NOT an error.
  const ssize_t n = io::write("t.write", fd, kPayload, sizeof(kPayload));
  EXPECT_EQ(n, static_cast<ssize_t>(sizeof(kPayload) / 2));
  // write_all absorbs the remaining short writes and lands every byte.
  EXPECT_EQ(io::write_all("t.write", fd, kPayload + n,
                          sizeof(kPayload) - static_cast<std::size_t>(n)),
            0);
  EXPECT_EQ(io::close("t.close", fd), 0);
  EXPECT_EQ(std::filesystem::file_size(path_), sizeof(kPayload));
  EXPECT_EQ(io::io_faults_injected(), 3);
}

TEST_F(IoFaultTest, ShortWriteSpecIsSkippedForNonWriteCalls) {
  io::arm_io_fault({"t.fsync", /*error=*/0, 1, /*count=*/-1});
  const int fd = open_scratch();
  EXPECT_EQ(io::fsync("t.fsync", fd), 0);  // short write needs a write call
  ::close(fd);
}

TEST_F(IoFaultTest, WriteAllAbsorbsAnEintrStorm) {
  io::arm_io_fault({"t.write", EINTR, 1, /*count=*/16});
  const int fd = open_scratch();
  EXPECT_EQ(io::write_all("t.write", fd, kPayload, sizeof(kPayload)), 0);
  EXPECT_EQ(io::io_faults_injected(), 16);
  EXPECT_EQ(io::close("t.close", fd), 0);
  EXPECT_EQ(std::filesystem::file_size(path_), sizeof(kPayload));
}

TEST_F(IoFaultTest, WriteAllReportsNonEintrErrno) {
  io::arm_io_fault({"t.write", ENOSPC, 1, /*count=*/-1});
  const int fd = open_scratch();
  EXPECT_EQ(io::write_all("t.write", fd, kPayload, sizeof(kPayload)), ENOSPC);
  ::close(fd);
}

TEST_F(IoFaultTest, InjectedCloseFailureStillClosesTheDescriptor) {
  io::arm_io_fault({"t.close", EIO, 1, 1});
  const int fd = open_scratch();
  errno = 0;
  EXPECT_EQ(io::close("t.close", fd), -1);
  EXPECT_EQ(errno, EIO);
  // The fd must really be gone — the fault layer must not leak descriptors
  // through the very paths it stresses.
  EXPECT_EQ(::write(fd, kPayload, 1), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST_F(IoFaultTest, OpenRenameUnlinkFaultsFire) {
  io::arm_io_fault({"t.open", EMFILE, 1, 1});
  io::arm_io_fault({"t.rename", EIO, 1, 1});
  io::arm_io_fault({"t.unlink", EIO, 1, 1});
  const std::string path = ::testing::TempDir() + "nptsn_io_fault_ops";
  EXPECT_EQ(io::open("t.open", path.c_str(), O_WRONLY | O_CREAT, 0644), -1);
  EXPECT_EQ(errno, EMFILE);
  EXPECT_EQ(io::rename("t.rename", path.c_str(), (path + ".x").c_str()), -1);
  EXPECT_EQ(io::unlink("t.unlink", path.c_str()), -1);
}

TEST_F(IoFaultTest, ClassificationSeparatesTransientFromPersistent) {
  using io::IoErrorClass;
  EXPECT_EQ(io::classify_io_errno(ENOSPC), IoErrorClass::kPersistent);
  EXPECT_EQ(io::classify_io_errno(EROFS), IoErrorClass::kPersistent);
  EXPECT_EQ(io::classify_io_errno(EDQUOT), IoErrorClass::kPersistent);
  EXPECT_EQ(io::classify_io_errno(EBADF), IoErrorClass::kPersistent);
  EXPECT_EQ(io::classify_io_errno(EINTR), IoErrorClass::kTransient);
  EXPECT_EQ(io::classify_io_errno(EIO), IoErrorClass::kTransient);
  EXPECT_EQ(io::classify_io_errno(EMFILE), IoErrorClass::kTransient);
  EXPECT_EQ(io::classify_io_errno(EAGAIN), IoErrorClass::kTransient);
  EXPECT_STREQ(io::to_string(IoErrorClass::kTransient), "transient");
  EXPECT_STREQ(io::to_string(IoErrorClass::kPersistent), "persistent");
}

TEST_F(IoFaultTest, EnvGrammarArmsSchedules) {
  ::setenv("NPTSN_IO_FAULT", "t.write:ENOSPC@3x-1;t.fsync:SHORT;garbage", 1);
  EXPECT_EQ(io::arm_io_faults_from_env(), 2);  // the garbage spec is skipped
  const int fd = open_scratch();
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), 4);
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), 4);
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), -1);  // @3 onward, forever
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), -1);
  ::close(fd);
}

TEST_F(IoFaultTest, EnvGrammarAcceptsNumericErrno) {
  ::setenv("NPTSN_IO_FAULT", ("t.write:" + std::to_string(EIO)).c_str(), 1);
  EXPECT_EQ(io::arm_io_faults_from_env(), 1);
  const int fd = open_scratch();
  EXPECT_EQ(io::write("t.write", fd, kPayload, 4), -1);
  EXPECT_EQ(errno, EIO);
  ::close(fd);
}

TEST_F(IoFaultTest, KnownSitesCoverJournalCheckpointAndProbe) {
  const std::vector<std::string>& sites = io::known_io_sites();
  const auto has = [&](const char* site) {
    return std::find(sites.begin(), sites.end(), site) != sites.end();
  };
  EXPECT_TRUE(has("journal.append.write"));
  EXPECT_TRUE(has("journal.append.fsync"));
  EXPECT_TRUE(has("journal.compact.rename"));
  EXPECT_TRUE(has("checkpoint.fsync"));
  EXPECT_TRUE(has("journal.probe.fsync"));
}

}  // namespace
}  // namespace nptsn
