#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace nptsn {
namespace {

TEST(DeadlineTest, UnlimitedTokenNeverFires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(deadline.tick());
  }
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.reason(), "");
  EXPECT_EQ(deadline.ticks(), 10'000);
  EXPECT_NO_THROW(deadline.poll());
}

TEST(DeadlineTest, TickBudgetFiresOnExactlyTheBudgetedTick) {
  Deadline deadline(/*wall_seconds=*/0.0, /*max_ticks=*/10);
  EXPECT_FALSE(deadline.unlimited());
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(deadline.tick()) << "tick " << i;
    EXPECT_EQ(deadline.reason(), "");
  }
  EXPECT_TRUE(deadline.tick());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.reason(), "deadline: tick budget of 10 work units exceeded");
}

TEST(DeadlineTest, PollThrowsTypedExceptionWithReason) {
  Deadline deadline(0.0, 3);
  deadline.poll();
  deadline.poll();
  try {
    deadline.poll();
    FAIL() << "third poll should have fired the 3-tick budget";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.reason(), "deadline: tick budget of 3 work units exceeded");
    EXPECT_STREQ(e.what(), e.reason().c_str());
  }
  // Monotone: the token stays expired and keeps throwing.
  EXPECT_THROW(deadline.poll(), DeadlineExceeded);
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, AlreadyExpiredWallBudgetFiresOnFirstPoll) {
  // An (effectively) zero wall budget must fire on the very first tick, not
  // after kClockStride of them — the stride check starts at t == 1.
  Deadline deadline(/*wall_seconds=*/1e-9, /*max_ticks=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.tick());
  EXPECT_EQ(deadline.reason(), "deadline: wall-clock budget of " +
                                   std::to_string(1e-9) + " s exceeded");
}

TEST(DeadlineTest, ExpiredConsultsClockWithoutCountingWork) {
  Deadline deadline(1e-9, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.ticks(), 0);  // expired() is not a unit of work
}

TEST(DeadlineTest, FirstReasonIsStableAcrossLaterExpiryPaths) {
  Deadline deadline(/*wall_seconds=*/1e-9, /*max_ticks=*/1);
  // The tick budget fires first (checked before the wall clock)...
  EXPECT_TRUE(deadline.tick());
  const std::string reason = deadline.reason();
  EXPECT_EQ(reason, "deadline: tick budget of 1 work units exceeded");
  // ...and the wall budget expiring afterwards cannot rewrite it.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.reason(), reason);
}

TEST(DeadlineTest, PauseSuspendsAnExpiredToken) {
  Deadline deadline(0.0, 2);
  deadline.poll();
  EXPECT_THROW(deadline.poll(), DeadlineExceeded);
  {
    Deadline::Pause pause(&deadline);
    // The snapshot-restore path re-runs analysis that polls this very token;
    // while paused, nothing fires and nothing throws.
    EXPECT_FALSE(deadline.expired());
    EXPECT_FALSE(deadline.tick());
    EXPECT_NO_THROW(deadline.poll());
    // The recorded reason survives the suspension (diagnostics still work).
    EXPECT_NE(deadline.reason(), "");
  }
  // Resumes firing once the pause is gone.
  EXPECT_TRUE(deadline.expired());
  EXPECT_THROW(deadline.poll(), DeadlineExceeded);
}

TEST(DeadlineTest, PauseNestsAndToleratesNull) {
  Deadline deadline(0.0, 1);
  EXPECT_TRUE(deadline.tick());
  {
    Deadline::Pause outer(&deadline);
    {
      Deadline::Pause inner(&deadline);
      EXPECT_FALSE(deadline.expired());
    }
    EXPECT_FALSE(deadline.expired());  // outer pause still holds
  }
  EXPECT_TRUE(deadline.expired());
  Deadline::Pause noop(nullptr);  // must not crash
}

TEST(DeadlineTest, ConcurrentPollsFireExactlyOnceWithOneReason) {
  Deadline deadline(0.0, 1'000);
  std::atomic<int> throws{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1'000; ++i) {
        try {
          deadline.poll();
        } catch (const DeadlineExceeded& e) {
          EXPECT_EQ(e.reason(), "deadline: tick budget of 1000 work units exceeded");
          throws.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 4000 polls against a 1000-tick budget: the budget fired, every poll past
  // it threw, and all of them saw the same reason.
  EXPECT_GE(throws.load(), 3'000);
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, RejectsNegativeBudgets) {
  EXPECT_THROW(Deadline(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(Deadline(0.0, -1), std::invalid_argument);
}

TEST(DeadlineTest, CancelRacedAgainstPollersFiresOnceWithOneReason) {
  // The service's shutdown path: rollout workers poll a shared token while
  // another thread cancels it. Run under TSan this doubles as a data-race
  // check on the cancel/poll handoff.
  for (int round = 0; round < 20; ++round) {
    const auto deadline = Deadline::after(/*wall_seconds=*/0.0, /*max_ticks=*/0);
    std::atomic<bool> go{false};
    std::atomic<int> throws{0};

    std::vector<std::thread> pollers;
    for (int t = 0; t < 3; ++t) {
      pollers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < 2'000; ++i) {
          try {
            deadline->poll();
          } catch (const DeadlineExceeded& e) {
            EXPECT_EQ(e.reason(), "cancelled: chaos shutdown");
            throws.fetch_add(1);
            break;
          }
        }
      });
    }
    std::thread canceller([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      deadline->cancel("cancelled: chaos shutdown");
    });

    go.store(true, std::memory_order_release);
    for (auto& thread : pollers) thread.join();
    canceller.join();

    EXPECT_TRUE(deadline->cancelled());
    EXPECT_TRUE(deadline->expired());
    EXPECT_EQ(deadline->reason(), "cancelled: chaos shutdown");
  }
}

TEST(DeadlineTest, ConcurrentCancelsAgainstTickExpiryKeepExactlyOneReason) {
  // Worst case for reason stability: a tick budget about to fire naturally
  // while two cancellers race it (and each other). Whoever wins, the token
  // must report one reason forever — mixed or torn reasons mean the
  // response's stopped_reason could disagree with the journal's record.
  for (int round = 0; round < 20; ++round) {
    const auto deadline = Deadline::after(/*wall_seconds=*/0.0, /*max_ticks=*/64);
    std::atomic<bool> go{false};

    std::thread ticker([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 200 && !deadline->tick(); ++i) {
      }
    });
    std::vector<std::thread> cancellers;
    for (int t = 0; t < 2; ++t) {
      cancellers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        deadline->cancel("cancelled: canceller " + std::to_string(t));
      });
    }

    go.store(true, std::memory_order_release);
    ticker.join();
    for (auto& thread : cancellers) thread.join();

    const std::string first = deadline->reason();
    EXPECT_FALSE(first.empty());
    EXPECT_TRUE(first == "cancelled: canceller 0" || first == "cancelled: canceller 1" ||
                first.rfind("deadline:", 0) == 0)
        << first;
    // Stable from every angle, no matter how many more events arrive.
    deadline->cancel("cancelled: too late");
    for (int i = 0; i < 100; ++i) deadline->tick();
    EXPECT_EQ(deadline->reason(), first);
    EXPECT_EQ(deadline->cancelled(), first.rfind("cancelled:", 0) == 0);
  }
}

}  // namespace
}  // namespace nptsn
