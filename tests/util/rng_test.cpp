#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace nptsn {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 45u);  // not stuck
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::array<int, 4> counts{};
  for (int i = 0; i < 4000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform: expected 1000 each
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformRealInHalfOpenUnitInterval) {
  Rng rng(3);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::ranges::sort(shuffled);
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickReturnsMemberAndCoversAll) {
  Rng rng(9);
  const std::vector<int> v = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(9);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, SampleWeightedFollowsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) ++counts[static_cast<std::size_t>(rng.sample_weighted(weights))];
  EXPECT_EQ(counts[1], 0);  // zero weight never sampled
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, SampleWeightedRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_weighted({}), std::invalid_argument);
  EXPECT_THROW(rng.sample_weighted({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.sample_weighted({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, StateRoundTripRestoresExactStreamPosition) {
  Rng original(17);
  for (int i = 0; i < 13; ++i) original.next_u64();  // advance mid-stream

  const Rng::State saved = original.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(original.next_u64());

  Rng restored(1);  // arbitrary different seed; set_state overwrites it
  restored.set_state(saved);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(restored.next_u64(), expected[static_cast<std::size_t>(i)]);

  // All derived distributions continue identically too.
  Rng a(17), b(1);
  a.next_u64();
  b.set_state(a.state());
  EXPECT_DOUBLE_EQ(b.uniform(), a.uniform());
  EXPECT_DOUBLE_EQ(b.normal(), a.normal());
  EXPECT_EQ(b.uniform_int(0, 1000), a.uniform_int(0, 1000));
}

TEST(Rng, RejectsAllZeroState) {
  Rng rng(3);
  EXPECT_THROW(rng.set_state(Rng::State{0, 0, 0, 0}), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(21);
  Rng b(21);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace nptsn
