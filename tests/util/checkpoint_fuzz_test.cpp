// Deserialization fuzzing: truncated, bit-flipped, and fully random inputs
// fed into every checkpoint-format loader (framed files, topologies, trainer
// state, reliability certificates). The contract under attack: a loader
// either succeeds or throws CheckpointError — never UB, unbounded
// allocation, or a hang. ASan/UBSan in CI turn any violation into a failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/certificate.hpp"
#include "net/topology.hpp"
#include "rl/trainer.hpp"
#include "testing/corridor_env.hpp"
#include "testing/test_problems.hpp"
#include "tsn/recovery.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using nptsn::testing::CorridorEnv;
using nptsn::testing::corridor_net_config;
using nptsn::testing::corridor_trainer_config;
using nptsn::testing::dual_homed_topology;
using nptsn::testing::tiny_problem;

// Runs `load` on truncations, seeded single-bit flips, and random buffers
// derived from `valid`. The loader must accept or throw CheckpointError.
template <typename Load>
void fuzz_loader(const std::vector<std::uint8_t>& valid, Load load,
                 std::uint64_t seed, int flip_trials, int random_trials) {
  ASSERT_FALSE(valid.empty());

  auto must_be_checkpoint_error_or_ok = [&](const std::vector<std::uint8_t>& bytes,
                                            const char* what) {
    try {
      load(bytes);
    } catch (const CheckpointError&) {
      // the only acceptable failure mode
    } catch (const std::exception& e) {
      FAIL() << what << ": escaped with " << e.what();
    }
  };

  // Truncation at every prefix length (strided when the payload is large so
  // the quadratic cost stays bounded).
  const std::size_t stride = valid.size() > 4096 ? valid.size() / 1024 : 1;
  for (std::size_t len = 0; len < valid.size(); len += stride) {
    const std::vector<std::uint8_t> truncated(
        valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      load(truncated);
      FAIL() << "truncation to " << len << " bytes was accepted";
    } catch (const CheckpointError&) {
    }
  }

  Rng rng(seed);
  for (int trial = 0; trial < flip_trials; ++trial) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t pos = static_cast<std::size_t>(rng.next_u64() % mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    must_be_checkpoint_error_or_ok(mutated, "bit flip");
  }

  for (int trial = 0; trial < random_trials; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_u64() % (valid.size() * 2 + 1));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next_u64());
    must_be_checkpoint_error_or_ok(garbage, "random buffer");
  }
}

TEST(CheckpointFuzz, FramedFileLoaderRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "fuzz_framed.bin";
  ByteWriter payload;
  payload.str("fuzz payload");
  for (int i = 0; i < 64; ++i) payload.i64(i * 7);
  save_checkpoint_file(path, 3, payload.data());

  // Slurp the framed file so the fuzzer can attack the on-disk bytes.
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> framed(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(framed.data(), 1, framed.size(), f), framed.size());
  std::fclose(f);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  const std::string scratch = ::testing::TempDir() + "fuzz_framed_scratch.bin";
  fuzz_loader(
      framed,
      [&](const std::vector<std::uint8_t>& bytes) {
        FILE* out = std::fopen(scratch.c_str(), "wb");
        ASSERT_NE(out, nullptr);
        if (!bytes.empty()) {
          ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
        }
        std::fclose(out);
        (void)load_checkpoint_file(scratch, 3);
      },
      /*seed=*/11, /*flip_trials=*/400, /*random_trials=*/100);
  std::remove(scratch.c_str());

  // The framed format is checksummed, so unlike the raw byte-level loaders
  // below, EVERY bit flip must be rejected, not merely survived.
  Rng rng(12);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> mutated = framed;
    const std::size_t pos = static_cast<std::size_t>(rng.next_u64() % mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    FILE* out = std::fopen(scratch.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(mutated.data(), 1, mutated.size(), out), mutated.size());
    std::fclose(out);
    EXPECT_THROW((void)load_checkpoint_file(scratch, 3), CheckpointError)
        << "flipped bit at byte " << pos << " was accepted";
  }
  std::remove(scratch.c_str());
}

TEST(CheckpointFuzz, TopologyLoaderRejectsCorruptBytes) {
  const auto problem = tiny_problem();
  const Topology topology = dual_homed_topology(problem, Asil::B);
  ByteWriter writer;
  save_topology(topology, writer);

  fuzz_loader(
      writer.data(),
      [&](const std::vector<std::uint8_t>& bytes) {
        ByteReader in(bytes);
        (void)load_topology(problem, in);
        in.expect_exhausted("topology");
      },
      /*seed=*/21, /*flip_trials=*/2000, /*random_trials=*/500);
}

TEST(CheckpointFuzz, TopologyLoaderRangeChecksIdsAndLevels) {
  const auto problem = tiny_problem();

  // A switch id beyond the node range.
  {
    ByteWriter w;
    w.u32(1);
    w.i64(problem.num_nodes());
    w.u8(0);
    w.u32(0);
    ByteReader in(w.data());
    EXPECT_THROW((void)load_topology(problem, in), CheckpointError);
  }
  // A negative link endpoint.
  {
    ByteWriter w;
    w.u32(0);
    w.u32(1);
    w.i64(-1);
    w.i64(4);
    ByteReader in(w.data());
    EXPECT_THROW((void)load_topology(problem, in), CheckpointError);
  }
  // An ASIL level beyond the library.
  {
    ByteWriter w;
    w.u32(1);
    w.i64(4);
    w.u8(200);
    w.u32(0);
    ByteReader in(w.data());
    EXPECT_THROW((void)load_topology(problem, in), CheckpointError);
  }
  // A count larger than the remaining payload could ever satisfy (must be
  // rejected before any allocation or loop).
  {
    ByteWriter w;
    w.u32(0xffffffffu);
    ByteReader in(w.data());
    EXPECT_THROW((void)load_topology(problem, in), CheckpointError);
  }
}

TEST(CheckpointFuzz, TrainerStateLoaderRejectsCorruptBytes) {
  Rng rng(7);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 1;
  config.steps_per_epoch = 32;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  trainer.train();
  const std::vector<std::uint8_t> valid = trainer.save_state();

  fuzz_loader(
      valid,
      [&](const std::vector<std::uint8_t>& bytes) { trainer.load_state(bytes); },
      /*seed=*/31, /*flip_trials=*/600, /*random_trials=*/200);

  // The trainer must still be usable after every rejected load: a final
  // honest round trip proves no partial state was torn in.
  trainer.load_state(valid);
  EXPECT_EQ(trainer.save_state(), valid);
}

TEST(CheckpointFuzz, CertificateLoaderRejectsCorruptBytes) {
  const auto problem = tiny_problem();
  const auto built = build_certificate(dual_homed_topology(problem), HeuristicRecovery());
  ASSERT_TRUE(built.ok);
  ByteWriter writer;
  save_certificate(built.certificate, writer);

  fuzz_loader(
      writer.data(),
      [&](const std::vector<std::uint8_t>& bytes) {
        ByteReader in(bytes);
        (void)load_certificate(in);
        in.expect_exhausted("certificate");
      },
      /*seed=*/41, /*flip_trials=*/2000, /*random_trials=*/500);
}

}  // namespace
}  // namespace nptsn
