#include "scenarios/generator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "tsn/scheduler.hpp"

namespace nptsn {
namespace {

// The by-construction contract, pinned over a parameter grid: everything that
// passes validate_params() generates a problem that passes validate() AND
// satisfies the scheduler's timing preconditions for every flow.
TEST(GeneratorTest, GridSweepGeneratesValidSchedulableInstances) {
  int generated = 0;
  for (int zones : {1, 2, 4}) {
    for (int stations : {2, 3}) {
      for (int switches : {1, 2}) {
        for (int backbone : {0, 2}) {
          for (int variant = 0; variant < kNumLibraryVariants; ++variant) {
            GeneratorParams params;
            params.zones = zones;
            params.stations_per_zone = stations;
            params.switches_per_zone = switches;
            params.backbone_switches = backbone;
            params.library_variant = variant;
            params.flow_count = 6;
            const PlanningProblem problem = generate(params, 42);
            EXPECT_NO_THROW(problem.validate());
            EXPECT_EQ(problem.num_end_stations, zones * stations);
            for (const FlowSpec& flow : problem.flows) {
              // FlowTiming::of throws if the period does not span a whole
              // number of slots — the crash a bad divisor cap would cause.
              EXPECT_NO_THROW(FlowTiming::of(problem, flow));
            }
            ++generated;
          }
        }
      }
    }
  }
  EXPECT_EQ(generated, 3 * 2 * 2 * 2 * kNumLibraryVariants);
}

TEST(GeneratorTest, SameSeedAndParamsAreByteIdentical) {
  GeneratorParams params;
  params.zones = 3;
  params.switches_per_zone = 2;
  params.cross_link_prob = 0.5;
  const auto bytes_a = problem_bytes(generate(params, 7));
  const auto bytes_b = problem_bytes(generate(params, 7));
  EXPECT_EQ(bytes_a, bytes_b);
  // A different seed (or any param) moves the image.
  EXPECT_NE(bytes_a, problem_bytes(generate(params, 8)));
  params.flow_count += 1;
  EXPECT_NE(bytes_a, problem_bytes(generate(params, 7)));
}

TEST(GeneratorTest, DeterministicAcrossThreads) {
  GeneratorParams params;
  params.zones = 4;
  params.backbone_switches = 2;
  params.cross_link_prob = 0.4;
  const auto reference = problem_bytes(generate(params, 99));
  std::vector<std::vector<std::uint8_t>> images(8);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < images.size(); ++i) {
    threads.emplace_back(
        [&params, &images, i] { images[i] = problem_bytes(generate(params, 99)); });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& image : images) EXPECT_EQ(image, reference);
}

TEST(GeneratorTest, DegenerateParamsThrowTypedErrors) {
  const auto expect_rejected = [](GeneratorParams params) {
    EXPECT_THROW(validate_params(params), ValidationError);
    EXPECT_THROW(generate(params, 1), ValidationError);
  };
  GeneratorParams p;
  p.zones = 0;
  expect_rejected(p);
  p = {};
  p.zones = 1;
  p.stations_per_zone = 1;  // a single end station cannot carry a flow
  expect_rejected(p);
  p = {};
  p.cross_link_prob = 1.5;
  expect_rejected(p);
  p = {};
  p.base_period_us = 0.0;
  expect_rejected(p);
  p = {};
  p.base_period_us = std::numeric_limits<double>::infinity();
  expect_rejected(p);
  p = {};
  p.length_scale = -1.0;
  expect_rejected(p);
  p = {};
  p.flow_count = 0;
  expect_rejected(p);
  p = {};
  p.max_period_divisor_log2 = 64;  // would underflow periods if allowed
  expect_rejected(p);
  p = {};
  p.library_variant = kNumLibraryVariants;
  expect_rejected(p);
  p = {};
  p.reliability_goal = 0.0;
  expect_rejected(p);
}

TEST(GeneratorTest, IndivisibleSlotCountCapsPeriodDivisors) {
  GeneratorParams params;
  params.slots_per_base = 25;  // odd: no power of two beyond 2^0 divides it
  params.max_period_divisor_log2 = 3;
  const PlanningProblem problem = generate(params, 5);
  for (const FlowSpec& flow : problem.flows) {
    EXPECT_EQ(flow.period_us, params.base_period_us);
    EXPECT_NO_THROW(FlowTiming::of(problem, flow));
  }
}

TEST(GeneratorTest, LibraryVariantsAreValidAndOrdered) {
  const ComponentLibrary standard = library_variant(0);
  const ComponentLibrary premium = library_variant(1);
  const ComponentLibrary budget = library_variant(2);
  const ComponentLibrary extended = library_variant(3);
  for (int level = 0; level < kNumAsilLevels; ++level) {
    const Asil asil = static_cast<Asil>(level);
    EXPECT_GT(premium.link_cost(asil, 1.0), standard.link_cost(asil, 1.0));
    EXPECT_LT(premium.failure_prob(asil), standard.failure_prob(asil));
    EXPECT_LT(budget.link_cost(asil, 1.0), standard.link_cost(asil, 1.0));
    EXPECT_GT(budget.failure_prob(asil), standard.failure_prob(asil));
    EXPECT_LT(budget.failure_prob(asil), 1.0);
  }
  EXPECT_EQ(extended.models().size(), standard.models().size() + 1);
  EXPECT_THROW(library_variant(-1), ValidationError);
  EXPECT_THROW(library_variant(kNumLibraryVariants), ValidationError);
}

TEST(GeneratorTest, ParamsRoundTripThroughBytes) {
  GeneratorParams params;
  params.zones = 5;
  params.stations_per_zone = 2;
  params.switches_per_zone = 3;
  params.backbone_switches = 1;
  params.cross_link_prob = 0.125;
  params.length_scale = 2.5;
  params.flow_count = 17;
  params.base_period_us = 250.0;
  params.slots_per_base = 16;
  params.max_period_divisor_log2 = 3;
  params.reliability_goal = 1e-7;
  params.max_es_degree = 3;
  params.library_variant = 2;

  ByteWriter out;
  save_params(params, out);
  ByteReader in(out.data());
  const GeneratorParams loaded = load_params(in);
  in.expect_exhausted("generator params");

  // Round-tripping and regenerating must land on the identical instance.
  EXPECT_EQ(problem_bytes(generate(params, 3)), problem_bytes(generate(loaded, 3)));
}

TEST(GeneratorTest, NoBackboneTopologyStaysConnectedForFlows) {
  GeneratorParams params;
  params.zones = 5;
  params.backbone_switches = 0;
  params.cross_link_prob = 0.0;  // ring only — the mandatory skeleton
  params.flow_count = 10;
  const PlanningProblem problem = generate(params, 11);
  EXPECT_NO_THROW(problem.validate());
}

}  // namespace
}  // namespace nptsn
