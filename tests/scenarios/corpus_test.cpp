#include "scenarios/corpus.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "core/planner.hpp"
#include "scenarios/stress_search.hpp"
#include "tsn/recovery.hpp"

namespace nptsn {
namespace {

CorpusEntry sample_entry() {
  GeneratorParams params;
  params.zones = 3;
  params.switches_per_zone = 2;
  params.flow_count = 5;
  CorpusEntry entry;
  entry.params = params;
  entry.seed = 21;
  entry.tick_budget = 777;
  entry.kind = OffenderKind::kAuditReject;
  entry.score = 1e6 + 3;
  entry.detail = "sample offender";
  entry.problem_bytes = problem_bytes(generate(params, entry.seed));
  return entry;
}

void expect_equal(const CorpusEntry& a, const CorpusEntry& b) {
  EXPECT_EQ(a.generator_version, b.generator_version);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.tick_budget, b.tick_budget);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.problem_bytes, b.problem_bytes);
}

TEST(CorpusTest, EntryRoundTripsBitExactly) {
  const CorpusEntry entry = sample_entry();

  ByteWriter out;
  save_corpus_entry(entry, out);
  ByteReader in(out.data());
  const CorpusEntry loaded = load_corpus_entry(in);
  in.expect_exhausted("corpus entry");
  expect_equal(entry, loaded);

  // Canonical layout: re-serializing the loaded entry reproduces the bytes.
  ByteWriter again;
  save_corpus_entry(loaded, again);
  EXPECT_EQ(out.data(), again.data());
}

TEST(CorpusTest, FileRoundTripAndCorruptionDetection) {
  const CorpusEntry entry = sample_entry();
  const std::string path = testing::TempDir() + "/roundtrip.corpus";
  save_corpus_entry_file(path, entry);
  expect_equal(entry, load_corpus_entry_file(path));

  // One flipped payload byte must fail the checkpoint frame's checksum.
  {
    std::ifstream in_stream(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in_stream)),
                            std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream out_stream(path, std::ios::binary | std::ios::trunc);
    out_stream.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_corpus_entry_file(path), CheckpointError);
}

TEST(CorpusTest, LoaderRejectsBadKindAndBudget) {
  CorpusEntry entry = sample_entry();
  entry.tick_budget = 0;
  ByteWriter out;
  save_corpus_entry(entry, out);
  ByteReader in(out.data());
  EXPECT_THROW(load_corpus_entry(in), CheckpointError);

  CorpusEntry bad_kind = sample_entry();
  ByteWriter out2;
  out2.u32(bad_kind.generator_version);
  save_params(bad_kind.params, out2);
  out2.u64(bad_kind.seed);
  out2.i64(bad_kind.tick_budget);
  out2.u8(99);  // out-of-range offender kind
  out2.f64(bad_kind.score);
  out2.str(bad_kind.detail);
  out2.blob(bad_kind.problem_bytes);
  ByteReader in2(out2.data());
  EXPECT_THROW(load_corpus_entry(in2), CheckpointError);
}

TEST(CorpusTest, FileNameIsFingerprintDerived) {
  const CorpusEntry entry = sample_entry();
  const std::string name = corpus_file_name(entry);
  EXPECT_EQ(name.rfind("stress_audit-reject_", 0), 0u);
  EXPECT_EQ(name.substr(name.size() - 7), ".corpus");
  EXPECT_EQ(name, corpus_file_name(entry));  // stable
}

TEST(CorpusTest, ListingMissingDirectoryIsEmpty) {
  EXPECT_TRUE(list_corpus_files(testing::TempDir() + "/no-such-dir").empty());
}

// --- the committed regression corpus -----------------------------------------

TEST(CorpusTest, CommittedCorpusIsPopulatedAndDistinct) {
  const auto files = list_corpus_files(NPTSN_CORPUS_DIR);
  ASSERT_GE(files.size(), 10u) << "the committed corpus shrank below its floor";
  std::set<std::uint64_t> fingerprints;
  for (const std::string& file : files) {
    const CorpusEntry entry = load_corpus_entry_file(file);
    const PlanningProblem problem = entry.problem();
    EXPECT_NO_THROW(problem.validate()) << file;
    EXPECT_GT(entry.tick_budget, 0) << file;
    EXPECT_FALSE(entry.detail.empty()) << file;
    fingerprints.insert(problem_fingerprint(problem));
  }
  EXPECT_EQ(fingerprints.size(), files.size()) << "corpus entries must be distinct";
}

TEST(CorpusTest, CommittedCorpusProvenanceRegenerates) {
  // Version-matched provenance cross-check: while the generator mapping is
  // unchanged, (params, seed) must regenerate the stored bytes exactly. If
  // generate() legitimately changes, bump kGeneratorVersion — entries from
  // older versions are replay-only.
  for (const std::string& file : list_corpus_files(NPTSN_CORPUS_DIR)) {
    const CorpusEntry entry = load_corpus_entry_file(file);
    if (entry.generator_version != kGeneratorVersion) continue;
    EXPECT_EQ(problem_bytes(generate(entry.params, entry.seed)), entry.problem_bytes)
        << file << ": generate() drifted without a kGeneratorVersion bump";
  }
}

TEST(CorpusTest, CommittedCorpusReplaysInsideTheEnvelope) {
  // The acceptance bar for the hardened envelope: every committed offender —
  // instances FOUND BY searching for planner failure — runs to clean
  // termination, spends at most 2x its recorded tick budget, and explains
  // itself via stopped_reason whenever it was truncated.
  const auto files = list_corpus_files(NPTSN_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  const HeuristicRecovery nbf;
  for (const std::string& file : files) {
    const CorpusEntry entry = load_corpus_entry_file(file);
    const PlanningProblem problem = entry.problem();

    NptsnConfig config;
    config.epochs = 2;
    config.steps_per_epoch = 48;
    config.mlp_hidden = {32, 32};
    config.path_actions = 4;
    config.num_workers = 1;
    config.nn_threads = 1;
    config.verification_threads = 1;
    config.seed = entry.seed;
    config.audit_mode = AuditMode::kFinal;
    config.health_checks = true;
    config.deadline = Deadline::after(/*wall_seconds=*/0.0, entry.tick_budget);

    PlanningResult result;
    EXPECT_NO_THROW(result = plan(problem, nbf, config)) << file;
    EXPECT_LE(config.deadline->ticks(), 2 * entry.tick_budget) << file;
    if (config.deadline->expired()) {
      EXPECT_FALSE(result.stopped_reason.empty())
          << file << ": truncated runs must say why they stopped";
    }
  }
}

}  // namespace
}  // namespace nptsn
