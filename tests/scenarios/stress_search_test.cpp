#include "scenarios/stress_search.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "analysis/certificate.hpp"

namespace nptsn {
namespace {

// Small but real search budget: a few probes with a tick budget tight enough
// that the searcher actually classifies offenders (the committed corpus was
// generated the same way at a larger scale).
StressConfig small_config() {
  StressConfig config;
  config.seed = 7;
  config.restarts = 1;
  config.rounds = 2;
  config.top_k = 8;
  config.plan_tick_budget = 400;
  return config;
}

TEST(StressSearchTest, FixedSeedReproducesTheOffenderSet) {
  const StressConfig config = small_config();
  const StressResult first = stress_search(config);
  const StressResult second = stress_search(config);

  EXPECT_EQ(first.probes, second.probes);
  EXPECT_EQ(first.offender_probes, second.offender_probes);
  ASSERT_EQ(first.offenders.size(), second.offenders.size());
  for (std::size_t i = 0; i < first.offenders.size(); ++i) {
    const CorpusEntry& a = first.offenders[i];
    const CorpusEntry& b = second.offenders[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.problem_bytes, b.problem_bytes);  // byte-identical instances
  }
}

TEST(StressSearchTest, OffendersAreDistinctRankedAndSelfContained) {
  const StressResult result = stress_search(small_config());
  std::set<std::uint64_t> fingerprints;
  double previous = std::numeric_limits<double>::infinity();
  for (const CorpusEntry& entry : result.offenders) {
    EXPECT_LE(entry.score, previous) << "offenders must be sorted hardest first";
    previous = entry.score;
    EXPECT_EQ(entry.generator_version, kGeneratorVersion);
    EXPECT_EQ(entry.tick_budget, small_config().plan_tick_budget);
    const PlanningProblem problem = entry.problem();
    EXPECT_NO_THROW(problem.validate());
    fingerprints.insert(problem_fingerprint(problem));
    // Self-contained: the stored bytes and the provenance agree.
    EXPECT_EQ(problem_bytes(generate(entry.params, entry.seed)), entry.problem_bytes);
  }
  EXPECT_EQ(fingerprints.size(), result.offenders.size());
}

TEST(StressSearchTest, ProbeClassifiesTimeoutsDeterministically) {
  StressConfig config = small_config();
  config.plan_tick_budget = 50;  // far below any real planning run
  GeneratorParams params;       // the default 4-zone architecture
  const StressProbe probe = stress_probe(params, 3, config);
  EXPECT_TRUE(probe.offender);
  EXPECT_EQ(probe.kind, OffenderKind::kTimeout);
  EXPECT_EQ(probe.detail.rfind("deadline:", 0), 0u) << probe.detail;

  const StressProbe again = stress_probe(params, 3, config);
  EXPECT_EQ(again.score, probe.score);
  EXPECT_EQ(again.detail, probe.detail);
}

TEST(StressSearchTest, RejectsDegenerateConfigs) {
  StressConfig config;
  config.restarts = 0;
  EXPECT_THROW(stress_search(config), std::invalid_argument);
  config = {};
  config.plan_tick_budget = 0;
  EXPECT_THROW(stress_search(config), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
