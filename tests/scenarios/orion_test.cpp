#include "scenarios/orion.hpp"

#include <gtest/gtest.h>

#include "graph/paths.hpp"

namespace nptsn {
namespace {

TEST(Orion, DimensionsMatchPaper) {
  const auto s = make_orion();
  EXPECT_EQ(s.name, "ORION");
  EXPECT_EQ(s.problem.num_end_stations, 31);
  EXPECT_EQ(s.problem.num_switches(), 15);
  EXPECT_EQ(s.problem.num_nodes(), 46);
}

TEST(Orion, TsnAndReliabilityParameters) {
  const auto s = make_orion();
  EXPECT_DOUBLE_EQ(s.problem.tsn.base_period_us, 500.0);
  EXPECT_EQ(s.problem.tsn.slots_per_base, 20);
  EXPECT_DOUBLE_EQ(s.problem.reliability_goal, 1e-6);
  EXPECT_EQ(s.problem.max_es_degree, 2);
}

TEST(Orion, ReferenceTopologySingleHomesEveryStation) {
  const auto s = make_orion();
  Graph reference(s.problem.num_nodes());
  for (const auto& e : s.original_links) reference.add_edge(e.u, e.v, e.length);
  for (NodeId es = 0; es < 31; ++es) {
    EXPECT_EQ(reference.degree(es), 1) << "station " << es;
  }
}

TEST(Orion, ReferenceSwitchMeshIsBiconnectedForSwitches) {
  // Removing any single switch must keep the remaining switches connected
  // (the redundancy the mesh provides for re-routing).
  const auto s = make_orion();
  for (NodeId removed = 31; removed < 46; ++removed) {
    Graph g(s.problem.num_nodes());
    for (const auto& e : s.original_links) g.add_edge(e.u, e.v, e.length);
    g.remove_node(removed);
    for (NodeId a = 31; a < 46; ++a) {
      if (a == removed) continue;
      for (NodeId b = a + 1; b < 46; ++b) {
        if (b == removed) continue;
        EXPECT_TRUE(connected(g, a, b)) << "switches disconnected by removing " << removed;
      }
    }
  }
}

TEST(Orion, ReferenceRespectsDegreeConstraints) {
  const auto s = make_orion();
  Graph reference(s.problem.num_nodes());
  for (const auto& e : s.original_links) reference.add_edge(e.u, e.v, e.length);
  for (NodeId v = 31; v < 46; ++v) {
    EXPECT_LE(reference.degree(v), s.problem.max_switch_degree());
  }
}

TEST(Orion, ConnectionGraphFollowsThreeHopRule) {
  const auto s = make_orion();
  Graph reference(s.problem.num_nodes());
  for (const auto& e : s.original_links) reference.add_edge(e.u, e.v, e.length);
  for (NodeId u = 0; u < 46; ++u) {
    for (NodeId v = u + 1; v < 46; ++v) {
      const bool both_es = s.problem.is_end_station(u) && s.problem.is_end_station(v);
      const int hops = hop_distance(reference, u, v);
      const bool expected = !both_es && hops >= 1 && hops <= 3;
      EXPECT_EQ(s.problem.connections.has_edge(u, v), expected)
          << "pair (" << u << ", " << v << ") hops=" << hops;
    }
  }
}

TEST(Orion, OptionalLinkCountInPaperBallpark) {
  // The paper derives 189 optional links from its exact ORION wiring; our
  // reconstruction must land in the same regime (a sparse fraction of the
  // 31*15 + C(15,2) = 570 possible pairs). The ring mesh yields exactly 200.
  const auto s = make_orion();
  EXPECT_EQ(s.problem.connections.num_edges(), 200);
}

TEST(Orion, OriginalLinksAreOptionalLinks) {
  const auto s = make_orion();
  for (const auto& e : s.original_links) {
    EXPECT_TRUE(s.problem.connections.has_edge(e.u, e.v));
  }
}

TEST(Orion, AllOptionalLinksUnitLength) {
  const auto s = make_orion();
  for (const auto& e : s.problem.connections.edges()) {
    EXPECT_DOUBLE_EQ(e.length, 1.0);
  }
}

TEST(Orion, RandomFlowsAreValid) {
  const auto s = make_orion();
  Rng rng(5);
  for (const int n : {10, 20, 30, 40, 50}) {
    auto p = with_flows(s, random_flows(s.problem, n, rng));
    EXPECT_EQ(static_cast<int>(p.flows.size()), n);
    EXPECT_NO_THROW(p.validate());
    for (const auto& f : p.flows) {
      EXPECT_DOUBLE_EQ(f.period_us, 500.0);
      EXPECT_DOUBLE_EQ(f.deadline_us, 500.0);
    }
  }
}

TEST(Orion, RandomFlowsDeterministicPerSeed) {
  const auto s = make_orion();
  Rng rng1(7);
  Rng rng2(7);
  const auto a = random_flows(s.problem, 20, rng1);
  const auto b = random_flows(s.problem, 20, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].destination, b[i].destination);
  }
}

}  // namespace
}  // namespace nptsn
