#include "scenarios/ads.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Ads, DimensionsMatchPaper) {
  const auto s = make_ads();
  EXPECT_EQ(s.name, "ADS");
  EXPECT_EQ(s.problem.num_end_stations, 12);
  EXPECT_EQ(s.problem.num_switches(), 4);
  // "there are 54 optional links in Ec"
  EXPECT_EQ(s.problem.connections.num_edges(), 54);
}

TEST(Ads, ConnectionGraphIsCompleteExceptStationPairs) {
  const auto s = make_ads();
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = u + 1; v < 16; ++v) {
      const bool both_es = u < 12 && v < 12;
      EXPECT_EQ(s.problem.connections.has_edge(u, v), !both_es);
    }
  }
}

TEST(Ads, NoReferenceTopology) {
  const auto s = make_ads();
  EXPECT_TRUE(s.original_links.empty());
}

TEST(Ads, TwelveApplicationFlows) {
  const auto flows = ads_flows();
  EXPECT_EQ(flows.size(), 12u);
  for (const auto& f : flows) {
    EXPECT_NE(f.source, f.destination);
    EXPECT_LT(f.source, 12);
    EXPECT_LT(f.destination, 12);
    EXPECT_DOUBLE_EQ(f.period_us, 500.0);
  }
}

TEST(Ads, ProblemWithFlowsValidates) {
  const auto s = make_ads();
  const auto p = with_flows(s, ads_flows());
  EXPECT_NO_THROW(p.validate());
}

TEST(Ads, SensorsFeedThePipeline) {
  // Structural property of the generated application flows: the perception
  // ECU consumes at least camera, lidar, and radar data.
  const auto flows = ads_flows();
  int into_perception = 0;
  for (const auto& f : flows) {
    if (f.destination == kPerceptionEcu) ++into_perception;
  }
  EXPECT_GE(into_perception, 3);
}

TEST(Ads, ControlChainPresent) {
  const auto flows = ads_flows();
  bool planning_to_control = false;
  bool control_to_actuator = false;
  for (const auto& f : flows) {
    planning_to_control |= f.source == kPlanningEcu && f.destination == kControlEcu;
    control_to_actuator |= f.source == kControlEcu && f.destination == kActuatorEcu;
  }
  EXPECT_TRUE(planning_to_control);
  EXPECT_TRUE(control_to_actuator);
}

}  // namespace
}  // namespace nptsn
