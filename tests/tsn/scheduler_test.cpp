#include "tsn/scheduler.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

FlowTiming unit_timing(int deadline_slots = 20) {
  FlowTiming t;
  t.repetitions = 1;
  t.period_slots = 20;
  t.deadline_slots = deadline_slots;
  return t;
}

TEST(FlowTiming, DerivedFromProblemAndFlow) {
  const auto p = tiny_problem();
  FlowSpec flow = p.flows[0];  // period 500, deadline 500, 20 slots
  const auto t = FlowTiming::of(p, flow);
  EXPECT_EQ(t.repetitions, 1);
  EXPECT_EQ(t.period_slots, 20);
  EXPECT_EQ(t.deadline_slots, 20);
}

TEST(FlowTiming, FasterFlowGetsStrideAndTighterWindow) {
  const auto p = tiny_problem();
  FlowSpec flow = p.flows[0];
  flow.period_us = 125.0;  // 4 frames per base period
  flow.deadline_us = 125.0;
  const auto t = FlowTiming::of(p, flow);
  EXPECT_EQ(t.repetitions, 4);
  EXPECT_EQ(t.period_slots, 5);
  EXPECT_EQ(t.deadline_slots, 5);
}

TEST(FlowTiming, DeadlineTruncatedToSlots) {
  const auto p = tiny_problem();
  FlowSpec flow = p.flows[0];
  flow.deadline_us = 110.0;  // 4.4 slots -> 4
  const auto t = FlowTiming::of(p, flow);
  EXPECT_EQ(t.deadline_slots, 4);
}

TEST(FlowTiming, SubSlotDeadlineRejected) {
  const auto p = tiny_problem();
  FlowSpec flow = p.flows[0];
  flow.deadline_us = 10.0;  // below the 25us slot
  EXPECT_THROW(FlowTiming::of(p, flow), std::invalid_argument);
}

TEST(Scheduler, AssignsStrictlyIncreasingSlots) {
  SlotTable table(20);
  const auto slots = schedule_on_path(table, {0, 1, 2, 3}, unit_timing());
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(table.is_free(0, 1, 0));
  EXPECT_FALSE(table.is_free(1, 2, 1));
  EXPECT_FALSE(table.is_free(2, 3, 2));
}

TEST(Scheduler, SkipsOccupiedSlots) {
  SlotTable table(20);
  table.reserve(0, 1, 0);
  table.reserve(1, 2, 1);
  const auto slots = schedule_on_path(table, {0, 1, 2}, unit_timing());
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{1, 2}));
}

TEST(Scheduler, FailsWhenDeadlineTooTight) {
  SlotTable table(20);
  // 3 hops but only 2 slots of deadline.
  EXPECT_FALSE(schedule_on_path(table, {0, 1, 2, 3}, unit_timing(2)).has_value());
}

TEST(Scheduler, FailureLeavesTableUntouched) {
  SlotTable table(20);
  table.reserve(1, 2, 19);  // forces the second hop past the deadline window
  for (int s = 0; s < 19; ++s) table.reserve(1, 2, s);
  const auto slots = schedule_on_path(table, {0, 1, 2}, unit_timing());
  EXPECT_FALSE(slots.has_value());
  // The first hop's tentative reservation must have been rolled back.
  EXPECT_TRUE(table.is_free(0, 1, 0));
  EXPECT_EQ(table.occupancy(0, 1), 0);
}

TEST(Scheduler, CapacityPerLinkIsSlotsPerBase) {
  SlotTable table(4);
  FlowTiming t;
  t.repetitions = 1;
  t.period_slots = 4;
  t.deadline_slots = 4;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(schedule_on_path(table, {0, 1}, t).has_value());
  }
  EXPECT_FALSE(schedule_on_path(table, {0, 1}, t).has_value());
}

TEST(Scheduler, RepetitionsReserveAllFrames) {
  SlotTable table(20);
  FlowTiming t;
  t.repetitions = 4;
  t.period_slots = 5;
  t.deadline_slots = 5;
  const auto slots = schedule_on_path(table, {0, 1, 2}, t);
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{0, 1}));
  // All four repetitions must be blocked on both hops.
  for (const int rep : {0, 5, 10, 15}) EXPECT_FALSE(table.is_free(0, 1, rep));
  for (const int rep : {1, 6, 11, 16}) EXPECT_FALSE(table.is_free(1, 2, rep));
}

TEST(Scheduler, PeriodWindowLimitsPathLength) {
  SlotTable table(20);
  FlowTiming t;
  t.repetitions = 4;
  t.period_slots = 5;
  t.deadline_slots = 5;
  // A 6-hop path cannot fit into a 5-slot period window.
  EXPECT_FALSE(schedule_on_path(table, {0, 1, 2, 3, 4, 5, 6}, t).has_value());
}

TEST(Scheduler, UnscheduleReleasesEverything) {
  SlotTable table(20);
  const auto slots = schedule_on_path(table, {3, 2, 1}, unit_timing());
  ASSERT_TRUE(slots.has_value());
  FlowAssignment assignment{{3, 2, 1}, *slots};
  unschedule(table, assignment, unit_timing());
  EXPECT_EQ(table.occupancy(3, 2), 0);
  EXPECT_EQ(table.occupancy(2, 1), 0);
}

TEST(Scheduler, SingleNodePathRejected) {
  SlotTable table(20);
  EXPECT_THROW(schedule_on_path(table, {0}, unit_timing()), std::invalid_argument);
}

TEST(Scheduler, TwoFlowsShareLinkDifferentSlots) {
  SlotTable table(20);
  const auto s1 = schedule_on_path(table, {0, 1, 2}, unit_timing());
  const auto s2 = schedule_on_path(table, {0, 1, 2}, unit_timing());
  ASSERT_TRUE(s1 && s2);
  EXPECT_NE((*s1)[0], (*s2)[0]);
  EXPECT_NE((*s1)[1], (*s2)[1]);
}

}  // namespace
}  // namespace nptsn
