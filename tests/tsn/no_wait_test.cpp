// The no-wait TT forwarding discipline (slots are consecutive along the
// path), the default of the heuristic recovery NBF.
#include <gtest/gtest.h>

#include "tsn/scheduler.hpp"

namespace nptsn {
namespace {

FlowTiming timing(int deadline = 20, int reps = 1, int period = 20) {
  FlowTiming t;
  t.repetitions = reps;
  t.period_slots = period;
  t.deadline_slots = deadline;
  return t;
}

TEST(NoWait, SlotsAreConsecutive) {
  SlotTable table(20);
  const auto slots = schedule_on_path(table, {0, 1, 2, 3}, timing(), TtDiscipline::kNoWait);
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{0, 1, 2}));
}

TEST(NoWait, ChainShiftsPastConflicts) {
  SlotTable table(20);
  table.reserve(1, 2, 1);  // blocks the chain starting at 0
  const auto slots = schedule_on_path(table, {0, 1, 2}, timing(), TtDiscipline::kNoWait);
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{1, 2}));
}

TEST(NoWait, WholeChainOrNothing) {
  SlotTable table(20);
  // Block slot s+1 on the second hop for every start s (all slots busy).
  for (int s = 0; s < 20; ++s) table.reserve(1, 2, s);
  const auto slots = schedule_on_path(table, {0, 1, 2}, timing(), TtDiscipline::kNoWait);
  EXPECT_FALSE(slots.has_value());
  // No partial reservation must remain on the first hop.
  EXPECT_EQ(table.occupancy(0, 1), 0);
}

TEST(NoWait, DeadlineBoundsTheChainEnd) {
  SlotTable table(20);
  table.reserve(0, 1, 0);
  table.reserve(0, 1, 1);
  // 3 hops, deadline 4: viable starts are 0 and 1, both blocked on hop one.
  const auto slots = schedule_on_path(table, {0, 1, 2, 3}, timing(4), TtDiscipline::kNoWait);
  EXPECT_FALSE(slots.has_value());
  // Deadline 5 admits start 2.
  const auto ok = schedule_on_path(table, {0, 1, 2, 3}, timing(5), TtDiscipline::kNoWait);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, (std::vector<int>{2, 3, 4}));
}

TEST(NoWait, StricterThanStoreAndForward) {
  // Store-and-forward tolerates a mid-path conflict by waiting; no-wait must
  // shift the entire chain. With the deadline at exactly hops, there is no
  // room to shift and only store-and-forward... also fails (slots strictly
  // increase), but with a larger deadline the two disciplines diverge in
  // capacity: saturate hop two except one late slot.
  SlotTable no_wait(20);
  SlotTable store(20);
  for (int s = 0; s < 19; ++s) {
    no_wait.reserve(1, 2, s);
    store.reserve(1, 2, s);
  }
  // Only slot 19 is free on hop two. Store-and-forward waits for it;
  // no-wait needs start 18 with hop one free at 18 — also fine. Now block
  // hop one at slot 18 only:
  no_wait.reserve(0, 1, 18);
  store.reserve(0, 1, 18);
  EXPECT_FALSE(
      schedule_on_path(no_wait, {0, 1, 2}, timing(), TtDiscipline::kNoWait).has_value());
  EXPECT_TRUE(schedule_on_path(store, {0, 1, 2}, timing(), TtDiscipline::kStoreAndForward)
                  .has_value());
}

TEST(NoWait, RepetitionsReserveEveryPeriod) {
  SlotTable table(20);
  const auto slots =
      schedule_on_path(table, {0, 1, 2}, timing(5, 4, 5), TtDiscipline::kNoWait);
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, (std::vector<int>{0, 1}));
  for (const int rep : {0, 5, 10, 15}) EXPECT_FALSE(table.is_free(0, 1, rep));
  for (const int rep : {1, 6, 11, 16}) EXPECT_FALSE(table.is_free(1, 2, rep));
}

TEST(NoWait, PerLinkCapacityReached) {
  // A 2-hop no-wait chain on a 4-slot table: starts 0..2 are feasible, so
  // exactly 3 flows fit on the same route.
  SlotTable table(4);
  const auto t = timing(4, 1, 4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(schedule_on_path(table, {0, 1, 2}, t, TtDiscipline::kNoWait).has_value())
        << "flow " << i;
  }
  EXPECT_FALSE(schedule_on_path(table, {0, 1, 2}, t, TtDiscipline::kNoWait).has_value());
}

}  // namespace
}  // namespace nptsn
