#include "tsn/frer.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

TEST(Frer, SchedulesTwoReplicasPerFlow) {
  const auto p = tiny_problem(2);  // flows 0->1 and 1->2
  FrerPlan plan = {
      {{0, 4, 1}, {0, 5, 1}},
      {{1, 4, 2}, {1, 5, 2}},
  };
  const auto result = schedule_frer(p, plan);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.first_failed_flow, -1);
  ASSERT_EQ(result.assignments.size(), 2u);
  for (const auto& replicas : result.assignments) {
    ASSERT_EQ(replicas.size(), 2u);
    for (const auto& a : replicas) EXPECT_EQ(a.slots.size(), a.path.size() - 1);
  }
}

TEST(Frer, ReplicasShareNoSlotOnSharedLinks) {
  auto p = tiny_problem(2);
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};
  // Both flows' replicas share the same two routes; slots must all differ
  // per directed link.
  FrerPlan plan = {
      {{0, 4, 1}, {0, 5, 1}},
      {{0, 4, 1}, {0, 5, 1}},
  };
  const auto result = schedule_frer(p, plan);
  ASSERT_TRUE(result.schedulable);
  SlotTable table(p.tsn.slots_per_base);
  for (const auto& replicas : result.assignments) {
    for (const auto& a : replicas) {
      for (std::size_t h = 0; h + 1 < a.path.size(); ++h) {
        ASSERT_TRUE(table.is_free(a.path[h], a.path[h + 1], a.slots[h]));
        table.reserve(a.path[h], a.path[h + 1], a.slots[h]);
      }
    }
  }
}

TEST(Frer, OverloadReportsFirstFailingFlow) {
  auto p = tiny_problem(3);
  p.tsn.slots_per_base = 2;  // a 2-hop route fits exactly one frame chain
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};
  FrerPlan plan(3);
  plan[0] = {{0, 4, 1}};
  plan[1] = {{0, 5, 1}};
  plan[2] = {{0, 4, 1}};  // the 0-4 route is already full
  const auto result = schedule_frer(p, plan);
  EXPECT_FALSE(result.schedulable);
  EXPECT_EQ(result.first_failed_flow, 2);
  EXPECT_TRUE(result.assignments.empty());
}

TEST(Frer, PlanArityValidated) {
  const auto p = tiny_problem(2);
  FrerPlan plan(1);
  EXPECT_THROW(schedule_frer(p, plan), std::invalid_argument);
}

TEST(Frer, ReplicaEndpointsValidated) {
  const auto p = tiny_problem(1);  // flow 0 -> 1
  FrerPlan plan = {{{0, 4, 2}}};   // wrong destination
  EXPECT_THROW(schedule_frer(p, plan), std::invalid_argument);
}

TEST(Frer, EmptyReplicaListRejected) {
  const auto p = tiny_problem(1);
  FrerPlan plan = {{}};
  EXPECT_THROW(schedule_frer(p, plan), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
