#include "tsn/redundant.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/failure_analyzer.hpp"
#include "testing/test_problems.hpp"
#include "tsn/simulator.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

TEST(RedundantRecovery, EstablishesDisjointInstances) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const RedundantRecovery nbf(2);
  const auto result = nbf.recover_instances(t, FailureScenario::none());
  EXPECT_TRUE(result.errors.empty());
  for (const auto& instances : result.instances) {
    ASSERT_EQ(instances.size(), 2u);
    // Interiors are node-disjoint.
    std::set<NodeId> interior(instances[0].path.begin() + 1, instances[0].path.end() - 1);
    for (std::size_t i = 1; i + 1 < instances[1].path.size(); ++i) {
      EXPECT_FALSE(interior.contains(instances[1].path[i]));
    }
  }
}

TEST(RedundantRecovery, SurvivesWithOneInstanceLeft) {
  // On the star only one route exists: a single instance is established and
  // that is NOT an error under flow-level redundancy semantics.
  const auto p = tiny_problem(2);
  const auto t = star_topology(p);
  const RedundantRecovery nbf(2);
  const auto result = nbf.recover_instances(t, FailureScenario::none());
  EXPECT_TRUE(result.errors.empty());
  for (const auto& instances : result.instances) EXPECT_EQ(instances.size(), 1u);
}

TEST(RedundantRecovery, ErrorsOnlyWhenAllInstancesFail) {
  const auto p = tiny_problem(2);
  const auto t = star_topology(p);
  const RedundantRecovery nbf(2);
  // The hub dies: zero instances -> error for every flow.
  const auto result = nbf.recover(t, FailureScenario::of_switches({4}));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(RedundantRecovery, PrimaryInstanceExposedAsFlowState) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const RedundantRecovery nbf(2);
  const auto result = nbf.recover(t, FailureScenario::none());
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < result.state.size(); ++i) {
    ASSERT_TRUE(result.state[i].has_value());
    EXPECT_EQ(result.state[i]->path.front(), p.flows[i].source);
  }
  // The primary instances together form a simulatable schedule.
  EXPECT_TRUE(simulate(t, FailureScenario::none(), result.state).ok);
}

TEST(RedundantRecovery, FlowLevelAnalysisAcceptsDualHomedNetwork) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const RedundantRecovery nbf(2);
  FailureAnalyzer::Options options;
  options.flow_level_redundancy = true;
  const auto outcome = FailureAnalyzer(nbf, options).analyze(t);
  EXPECT_TRUE(outcome.reliable);
}

TEST(RedundantRecovery, SingleReplicaDegeneratesToPlainRecovery) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const RedundantRecovery nbf(1);
  const auto result = nbf.recover(t, FailureScenario::of_switches({4}));
  EXPECT_TRUE(result.ok());
  for (const auto& a : result.state) {
    for (const NodeId v : a->path) EXPECT_NE(v, 4);
  }
}

TEST(RedundantRecovery, RejectsBadConfig) {
  EXPECT_THROW(RedundantRecovery(0), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
