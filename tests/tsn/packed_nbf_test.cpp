// Differential tests for the bitset-packed TSN fast path (DESIGN.md §16):
// the packed NBF session must be BYTE-identical to the scalar
// HeuristicRecovery ground truth — same paths, same slots, same error sets —
// for every scenario shape (switch-only, link-only, mixed, higher-order),
// both disciplines, and every path-candidate budget; and each SWAR kernel
// must agree bit-for-bit with its frozen reference member on random inputs.
#include "tsn/packed.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testing/test_problems.hpp"
#include "tsn/sim_kernels.hpp"
#include "tsn/simulator.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

// Restores the process-global kernel selection on scope exit so a failing
// test cannot leak kReference into unrelated suites.
class KernelGuard {
 public:
  explicit KernelGuard(TsnKernel kernel) : saved_(tsn_kernel()) { set_tsn_kernel(kernel); }
  ~KernelGuard() { set_tsn_kernel(saved_); }

 private:
  TsnKernel saved_;
};

void expect_identical(const NbfResult& a, const NbfResult& b, const std::string& context) {
  EXPECT_EQ(a.errors, b.errors) << context;
  ASSERT_EQ(a.state.size(), b.state.size()) << context;
  for (std::size_t i = 0; i < a.state.size(); ++i) {
    ASSERT_EQ(a.state[i].has_value(), b.state[i].has_value())
        << context << " flow " << i;
    if (a.state[i]) {
      EXPECT_EQ(a.state[i]->path, b.state[i]->path) << context << " flow " << i;
      EXPECT_EQ(a.state[i]->slots, b.state[i]->slots) << context << " flow " << i;
    }
  }
}

// Every failure scenario of order <= 2 over the topology's selected
// switches and present optional links (the exact shapes the mixed frontier
// enumerates).
std::vector<FailureScenario> scenarios_up_to_order_two(const PlanningProblem& problem,
                                                       const Topology& topology) {
  std::vector<NodeId> switches = topology.selected_switches();
  std::vector<EdgeKey> links;
  for (const Edge& e : problem.connections.edges()) {
    if (topology.has_link(e.u, e.v)) {
      links.push_back(EdgeKey{std::min(e.u, e.v), std::max(e.u, e.v)});
    }
  }
  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::none());
  for (const NodeId s : switches) scenarios.push_back(FailureScenario::of_switches({s}));
  for (const EdgeKey& l : links) {
    FailureScenario scenario;
    scenario.failed_links = {l};
    scenarios.push_back(scenario);
  }
  for (std::size_t i = 0; i < switches.size(); ++i) {
    for (std::size_t j = i + 1; j < switches.size(); ++j) {
      scenarios.push_back(FailureScenario::of_switches({switches[i], switches[j]}));
    }
  }
  for (const NodeId s : switches) {
    for (const EdgeKey& l : links) {
      FailureScenario scenario;
      scenario.failed_switches = {s};
      scenario.failed_links = {l};
      scenarios.push_back(scenario);
    }
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      FailureScenario scenario;
      scenario.failed_links = {links[i], links[j]};
      scenarios.push_back(scenario);
    }
  }
  return scenarios;
}

TEST(PackedNbf, ByteIdenticalToScalarAcrossScenarioShapes) {
  for (const int flows : {1, 3, 4}) {
    const auto problem = tiny_problem(flows);
    const Topology topologies[] = {dual_homed_topology(problem), star_topology(problem)};
    for (const Topology& t : topologies) {
      for (const TtDiscipline discipline :
           {TtDiscipline::kNoWait, TtDiscipline::kStoreAndForward}) {
        for (const int candidates : {1, 3}) {
          const HeuristicRecovery nbf(candidates, discipline);
          const auto session = nbf.stage(t);
          ASSERT_NE(session, nullptr) << "tiny instances are inside the packed envelope";
          for (const auto& scenario : scenarios_up_to_order_two(problem, t)) {
            const std::string context =
                "flows " + std::to_string(flows) + " candidates " +
                std::to_string(candidates) + " scenario order " +
                std::to_string(scenario.order());
            expect_identical(session->recover(scenario), nbf.recover(t, scenario),
                             context);
          }
        }
      }
    }
  }
}

TEST(PackedNbf, ByteIdenticalUnderTightSlotTables) {
  // 2-slot base period: capacity exhaustion and the Yen alternative-path
  // fallback both fire; the packed path must reproduce them exactly.
  auto problem = tiny_problem(2);
  problem.tsn.slots_per_base = 2;
  for (auto& f : problem.flows) f = {0, 1, 500.0, 64, 500.0};
  const auto t = dual_homed_topology(problem);
  for (const int candidates : {1, 3}) {
    const HeuristicRecovery nbf(candidates);
    const auto session = nbf.stage(t);
    ASSERT_NE(session, nullptr);
    for (const auto& scenario : scenarios_up_to_order_two(problem, t)) {
      expect_identical(session->recover(scenario), nbf.recover(t, scenario),
                       "tight table, candidates " + std::to_string(candidates));
    }
  }
}

TEST(PackedNbf, StageRespectsEnvelopeAndKernelSelection) {
  const auto problem = tiny_problem(2);
  const auto t = dual_homed_topology(problem);
  const HeuristicRecovery nbf;
  EXPECT_NE(nbf.stage(t), nullptr);

  {
    // kReference freezes the scalar path: no packed session is built.
    KernelGuard guard(TsnKernel::kReference);
    EXPECT_EQ(nbf.stage(t), nullptr);
  }

  // slots_per_base beyond the single-word envelope: scalar fallback.
  auto wide = problem;
  wide.tsn.slots_per_base = 65;
  const auto wide_t = dual_homed_topology(wide);
  EXPECT_EQ(nbf.stage(wide_t), nullptr);
}

TEST(PackedNbf, SimulatorReportsMatchAcrossKernels) {
  const auto problem = tiny_problem(4);
  const auto t = dual_homed_topology(problem);
  const HeuristicRecovery nbf;
  for (const auto& scenario : scenarios_up_to_order_two(problem, t)) {
    const NbfResult recovered = nbf.recover(t, scenario);
    SimulationReport fast;
    SimulationReport reference;
    {
      KernelGuard guard(TsnKernel::kFast);
      fast = simulate(t, scenario, recovered.state);
    }
    {
      KernelGuard guard(TsnKernel::kReference);
      reference = simulate(t, scenario, recovered.state);
    }
    EXPECT_EQ(fast.ok, reference.ok);
    EXPECT_EQ(fast.frames_injected, reference.frames_injected);
    EXPECT_EQ(fast.frames_delivered, reference.frames_delivered);
    EXPECT_EQ(fast.frames_dropped, reference.frames_dropped);
    EXPECT_EQ(fast.frames_late, reference.frames_late);
    EXPECT_EQ(fast.collisions, reference.collisions);
    EXPECT_EQ(fast.worst_latency_slots, reference.worst_latency_slots);
    EXPECT_EQ(fast.violations, reference.violations);
  }
}

// --- SWAR kernel-pair differentials on random inputs ----------------------

TEST(SimKernelPairs, FoldOccupancyMatchesReference) {
  Rng rng(11);
  for (int trial = 0; trial < 20000; ++trial) {
    const int stride = rng.uniform_int(1, 16);
    const int repetitions = rng.uniform_int(1, 64 / stride);
    const std::uint64_t row =
        (rng.next_u64() ^ (rng.next_u64() << 1)) & tsk::low_mask(stride * repetitions);
    EXPECT_EQ(tsk::fold_occupancy_fast(row, stride, repetitions),
              tsk::fold_occupancy_reference(row, stride, repetitions))
        << "stride " << stride << " reps " << repetitions << " row " << row;
  }
}

TEST(SimKernelPairs, NowaitStartMatchesReference) {
  Rng rng(13);
  for (int trial = 0; trial < 20000; ++trial) {
    const int hops = rng.uniform_int(1, 6);
    const int deadline_slots = rng.uniform_int(hops, 64);
    std::vector<std::uint64_t> folds(static_cast<std::size_t>(hops));
    for (auto& fold : folds) {
      // Bias towards dense occupancy so "no feasible start" happens too.
      fold = rng.next_u64() | rng.next_u64();
      if (rng.uniform() < 0.3) fold = rng.next_u64() & rng.next_u64();
    }
    EXPECT_EQ(tsk::nowait_start_fast(folds.data(), hops, deadline_slots),
              tsk::nowait_start_reference(folds.data(), hops, deadline_slots))
        << "hops " << hops << " deadline " << deadline_slots;
  }
}

TEST(SimKernelPairs, EarliestFreeMatchesReference) {
  Rng rng(17);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t fold = rng.uniform() < 0.5 ? rng.next_u64() | rng.next_u64()
                                                   : rng.next_u64() & rng.next_u64();
    const int deadline_slots = rng.uniform_int(0, 64);
    const int from = rng.uniform_int(0, 64);
    EXPECT_EQ(tsk::earliest_free_fast(fold, from, deadline_slots),
              tsk::earliest_free_reference(fold, from, deadline_slots))
        << "fold " << fold << " from " << from << " deadline " << deadline_slots;
  }
}

TEST(SimKernelPairs, ReachMatchesReferenceOnRandomGraphs) {
  Rng rng(19);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = rng.uniform_int(2, 130);  // crosses the 64-bit word boundary
    const int words = tsk::words_for(n);
    std::vector<std::vector<std::uint64_t>> adjacency(
        static_cast<std::size_t>(n), std::vector<std::uint64_t>(static_cast<std::size_t>(words), 0));
    const double density = rng.uniform() * 0.2;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.uniform() < density) {
          tsk::set_bit(adjacency[static_cast<std::size_t>(u)].data(), v);
          tsk::set_bit(adjacency[static_cast<std::size_t>(v)].data(), u);
        }
      }
    }
    std::vector<const std::uint64_t*> rows(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) rows[static_cast<std::size_t>(u)] = adjacency[static_cast<std::size_t>(u)].data();
    std::vector<std::uint64_t> alive(static_cast<std::size_t>(words), 0);
    std::vector<std::uint64_t> transit(static_cast<std::size_t>(words), 0);
    for (int v = 0; v < n; ++v) {
      if (rng.uniform() < 0.85) tsk::set_bit(alive.data(), v);
      if (rng.uniform() < 0.6) tsk::set_bit(transit.data(), v);
    }
    std::vector<std::uint64_t> visited(static_cast<std::size_t>(words));
    std::vector<std::uint64_t> frontier(static_cast<std::size_t>(words));
    std::vector<std::uint64_t> next(static_cast<std::size_t>(words));
    for (int probe = 0; probe < 16; ++probe) {
      const int src = rng.uniform_int(0, n - 1);
      const int dst = rng.uniform_int(0, n - 1);
      if (!tsk::test_bit(alive.data(), src)) continue;
      const bool fast = tsk::reach_fast(rows.data(), words, alive.data(), transit.data(),
                                        src, dst, visited.data(), frontier.data(),
                                        next.data());
      const bool reference = tsk::reach_reference(rows.data(), words, alive.data(),
                                                  transit.data(), src, dst, visited.data(),
                                                  frontier.data(), next.data());
      EXPECT_EQ(fast, reference) << "n " << n << " src " << src << " dst " << dst;
    }
  }
}

}  // namespace
}  // namespace nptsn
