#include "tsn/stateful.hpp"

#include <gtest/gtest.h>

#include "analysis/failure_analyzer.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

TEST(IncrementalRecovery, InitialStatePlacesEverything) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery nbf;
  const auto initial = nbf.initial_state(t);
  EXPECT_TRUE(initial.ok());
  for (const auto& a : initial.state) EXPECT_TRUE(a.has_value());
}

TEST(IncrementalRecovery, UndisruptedFlowsKeepTheirAssignment) {
  const auto p = tiny_problem(4);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery nbf;
  const auto initial = nbf.initial_state(t);
  ASSERT_TRUE(initial.ok());

  const auto scenario = FailureScenario::of_switches({4});
  const auto recovered = nbf.recover(t, scenario, initial.state);
  ASSERT_TRUE(recovered.ok());
  const Graph residual = t.residual(scenario);
  for (std::size_t i = 0; i < initial.state.size(); ++i) {
    if (assignment_survives(*initial.state[i], residual)) {
      // Untouched flow: path AND slots identical (no reconfiguration).
      EXPECT_EQ(recovered.state[i]->path, initial.state[i]->path);
      EXPECT_EQ(recovered.state[i]->slots, initial.state[i]->slots);
    } else {
      // Disrupted flow: re-routed away from the failed switch.
      for (const NodeId v : recovered.state[i]->path) EXPECT_NE(v, 4);
    }
  }
}

TEST(IncrementalRecovery, RecoveryDependsOnTheStartingState) {
  // The same failure recovered from two different flow states can keep
  // different assignments — the statefulness the paper's verification
  // complexity argument is about.
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery nbf;
  const auto initial = nbf.initial_state(t);

  const auto scenario = FailureScenario::of_switches({5});
  const auto from_initial = nbf.recover(t, scenario, initial.state);
  const auto from_empty = nbf.recover(t, scenario, FlowState(p.flows.size()));
  EXPECT_TRUE(from_initial.ok());
  EXPECT_TRUE(from_empty.ok());
  // Both are valid recoveries; determinism per starting state holds.
  const auto again = nbf.recover(t, scenario, initial.state);
  for (std::size_t i = 0; i < again.state.size(); ++i) {
    EXPECT_EQ(again.state[i]->path, from_initial.state[i]->path);
  }
}

TEST(IncrementalRecovery, RejectsArityMismatch) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery nbf;
  EXPECT_THROW(nbf.recover(t, FailureScenario::none(), FlowState(1)),
               std::invalid_argument);
}

TEST(StatelessAdapter, EmptyFailureReturnsInitialState) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery inner;
  const StatelessAdapter adapter(inner);
  const auto via_adapter = adapter.recover(t, FailureScenario::none());
  const auto direct = inner.initial_state(t);
  ASSERT_EQ(via_adapter.state.size(), direct.state.size());
  for (std::size_t i = 0; i < direct.state.size(); ++i) {
    EXPECT_EQ(via_adapter.state[i]->path, direct.state[i]->path);
  }
}

TEST(StatelessAdapter, IsStateless) {
  // Recovering failure B after failure A equals recovering B directly: the
  // adapter always restarts from FI0, erasing the failure history.
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery inner;
  const StatelessAdapter adapter(inner);

  const auto b_direct = adapter.recover(t, FailureScenario::of_switches({5}));
  // Simulate a history: first A, then B — the adapter's output for B must
  // not depend on having previously computed A.
  (void)adapter.recover(t, FailureScenario::of_switches({4}));
  const auto b_after_a = adapter.recover(t, FailureScenario::of_switches({5}));
  ASSERT_EQ(b_direct.state.size(), b_after_a.state.size());
  for (std::size_t i = 0; i < b_direct.state.size(); ++i) {
    EXPECT_EQ(b_direct.state[i]->path, b_after_a.state[i]->path);
    EXPECT_EQ(b_direct.state[i]->slots, b_after_a.state[i]->slots);
  }
}

TEST(StatelessAdapter, AgreesWithStatefulOnSinglePointFailures) {
  // Section II-B: statelessization "does not impact the recovery of
  // single-point failures" — recovery from FI0 is exactly what the stateful
  // mechanism would do, since FI0 is the pre-failure state.
  const auto p = tiny_problem(4);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery inner;
  const StatelessAdapter adapter(inner);
  const auto initial = inner.initial_state(t);

  for (const NodeId failed : {4, 5}) {
    const auto scenario = FailureScenario::of_switches({failed});
    const auto stateless = adapter.recover(t, scenario);
    const auto stateful = inner.recover(t, scenario, initial.state);
    EXPECT_EQ(stateless.errors, stateful.errors);
    for (std::size_t i = 0; i < stateless.state.size(); ++i) {
      EXPECT_EQ(stateless.state[i]->path, stateful.state[i]->path);
      EXPECT_EQ(stateless.state[i]->slots, stateful.state[i]->slots);
    }
  }
}

TEST(StatelessAdapter, WorksWithTheFailureAnalyzer) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const IncrementalRecovery inner;
  const StatelessAdapter adapter(inner);
  const auto outcome = FailureAnalyzer(adapter).analyze(t);
  EXPECT_TRUE(outcome.reliable);
}

TEST(AssignmentSurvives, ChecksEveryLink) {
  const auto p = tiny_problem(1);
  const auto t = dual_homed_topology(p);
  FlowAssignment a{{0, 4, 1}, {0, 1}};
  EXPECT_TRUE(assignment_survives(a, t.residual(FailureScenario::none())));
  EXPECT_FALSE(assignment_survives(a, t.residual(FailureScenario::of_switches({4}))));
  FailureScenario link_failure;
  link_failure.failed_links = {EdgeKey{4, 1}};
  EXPECT_FALSE(assignment_survives(a, t.residual(link_failure)));
}

TEST(IncrementalRecovery, RejectsBadConfig) {
  EXPECT_THROW(IncrementalRecovery(0), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
