// Parameterized property sweeps over the TT scheduler: for every (slot
// count, hop count, repetitions, discipline) combination, whatever the
// scheduler returns must satisfy the TAS invariants, and its capacity must
// match the combinatorial bound.
#include <gtest/gtest.h>

#include <tuple>

#include "tsn/scheduler.hpp"

namespace nptsn {
namespace {

using Params = std::tuple<int /*slots*/, int /*hops*/, int /*reps*/, TtDiscipline>;

class SchedulerSweep : public ::testing::TestWithParam<Params> {};

TEST_P(SchedulerSweep, AssignmentsSatisfyTasInvariants) {
  const auto [slots, hops, reps, discipline] = GetParam();
  if (slots % reps != 0) GTEST_SKIP();
  FlowTiming timing;
  timing.repetitions = reps;
  timing.period_slots = slots / reps;
  timing.deadline_slots = timing.period_slots;
  if (timing.deadline_slots < hops) GTEST_SKIP();  // cannot possibly fit

  SlotTable table(slots);
  Path path;
  for (int i = 0; i <= hops; ++i) path.push_back(i);

  int placed = 0;
  while (true) {
    const auto result = schedule_on_path(table, path, timing, discipline);
    if (!result) break;
    ++placed;
    ASSERT_EQ(result->size(), static_cast<std::size_t>(hops));
    for (std::size_t h = 0; h < result->size(); ++h) {
      // Slots strictly increase along the path and stay in the window.
      EXPECT_GE((*result)[h], 0);
      EXPECT_LT((*result)[h], timing.deadline_slots);
      if (h > 0) EXPECT_GT((*result)[h], (*result)[h - 1]);
      if (discipline == TtDiscipline::kNoWait && h > 0) {
        EXPECT_EQ((*result)[h], (*result)[h - 1] + 1);
      }
    }
    ASSERT_LT(placed, slots + 1) << "scheduler overfilled a link";
  }

  // Capacity bounds: each hop's directed link has period_slots usable slots;
  // a flow chain consumes one per hop.
  // A chain's first-hop slot is at most window - hops (slots strictly
  // increase and the last must fit), so at most window - hops + 1 identical
  // chains share a route — and the greedy earliest-slot assignment achieves
  // that bound under both disciplines.
  const int window = timing.deadline_slots;
  EXPECT_EQ(placed, window - hops + 1);

  // Occupancy accounting: placed chains x repetitions per link.
  for (int h = 0; h < hops; ++h) {
    EXPECT_EQ(table.occupancy(path[static_cast<std::size_t>(h)],
                              path[static_cast<std::size_t>(h) + 1]),
              placed * reps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerSweep,
    ::testing::Combine(::testing::Values(4, 8, 20), ::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(TtDiscipline::kNoWait,
                                         TtDiscipline::kStoreAndForward)));

}  // namespace
}  // namespace nptsn
