#include "tsn/simulator.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"
#include "tsn/recovery.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

TEST(Simulator, DeliversAValidFlowState) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const auto initial = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(initial.ok());
  const auto report = simulate(t, FailureScenario::none(), initial.state);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.frames_injected, 3);
  EXPECT_EQ(report.frames_delivered, 3);
  EXPECT_EQ(report.frames_dropped, 0);
  EXPECT_EQ(report.collisions, 0);
  EXPECT_GE(report.worst_latency_slots, 2);  // 2-hop paths
}

TEST(Simulator, DropsFramesOnFailedComponents) {
  // Execute the INTACT schedule under a failure it was not recovered for:
  // frames routed through the dead switch must be silently lost.
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const auto initial = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(initial.ok());
  const auto scenario = FailureScenario::of_switches({4});
  const auto report = simulate(t, scenario, initial.state);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(report.frames_dropped, 0);
  EXPECT_EQ(report.frames_delivered + report.frames_dropped, report.frames_injected);
}

TEST(Simulator, RecoveredStateSurvivesTheFailureItWasRecoveredFor) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;
  const auto scenario = FailureScenario::of_switches({4});
  const auto recovered = nbf.recover(t, scenario);
  ASSERT_TRUE(recovered.ok());
  const auto report = simulate(t, scenario, recovered.state);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
}

TEST(Simulator, DetectsCollisions) {
  // Two flows on the same route with IDENTICAL slots: the simulator must
  // flag the contention a correct scheduler would have prevented.
  auto p = tiny_problem(2);
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};
  const auto t = star_topology(p);
  FlowState state(2);
  state[0] = FlowAssignment{{0, 4, 1}, {0, 1}};
  state[1] = FlowAssignment{{0, 4, 1}, {0, 1}};  // same slots: collision
  const auto report = simulate(t, FailureScenario::none(), state);
  EXPECT_FALSE(report.ok);
  // The losing frame is dropped at the first contended hop, so exactly one
  // collision is recorded and the survivor still delivers.
  EXPECT_EQ(report.collisions, 1);
  EXPECT_EQ(report.frames_dropped, 1);
  EXPECT_EQ(report.frames_delivered, 1);
}

TEST(Simulator, DetectsDeadlineViolations) {
  auto p = tiny_problem(1);
  p.flows[0].deadline_us = 50.0;  // 2 slots at 25us/slot
  const auto t = star_topology(p);
  FlowState state(1);
  // Delivered at slot 5 -> latency 6 slots > 2-slot deadline.
  state[0] = FlowAssignment{{0, 4, 1}, {4, 5}};
  const auto report = simulate(t, FailureScenario::none(), state);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.frames_late, 1);
  EXPECT_EQ(report.worst_latency_slots, 6);
}

TEST(Simulator, FlagsMalformedAssignments) {
  const auto p = tiny_problem(1);
  const auto t = star_topology(p);
  FlowState state(1);
  state[0] = FlowAssignment{{0, 4, 1}, {0}};  // slot arity mismatch
  EXPECT_FALSE(simulate(t, FailureScenario::none(), state).ok);

  state[0] = FlowAssignment{{0, 4, 2}, {0, 1}};  // wrong destination (flow is 0->1)
  EXPECT_FALSE(simulate(t, FailureScenario::none(), state).ok);

  state[0] = FlowAssignment{{0, 4, 1}, {5, 3}};  // non-causal slots
  EXPECT_FALSE(simulate(t, FailureScenario::none(), state).ok);

  state[0] = FlowAssignment{{0, 4, 1}, {0, 99}};  // slot out of range
  EXPECT_FALSE(simulate(t, FailureScenario::none(), state).ok);
}

TEST(Simulator, PeriodicFlowsInjectAllRepetitions) {
  auto p = tiny_problem(1);
  p.flows[0].period_us = 125.0;  // 4 frames per base period
  p.flows[0].deadline_us = 125.0;
  const auto t = star_topology(p);
  const auto initial = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(initial.ok());
  const auto report = simulate(t, FailureScenario::none(), initial.state);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.frames_injected, 4);
  EXPECT_EQ(report.frames_delivered, 4);
}

TEST(Simulator, SkipsUnplacedFlows) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  FlowState state(2);  // nothing placed
  const auto report = simulate(t, FailureScenario::none(), state);
  EXPECT_EQ(report.frames_injected, 0);
  EXPECT_TRUE(report.ok);  // vacuously: nothing to deliver, nothing violated
}

// Property: every recovery output that claims success passes simulation
// under its own failure scenario, across randomized flows and failures.
class RecoverySimulationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySimulationProperty, RecoveredStatesAlwaysSimulateCleanly) {
  Rng rng(GetParam());
  auto p = tiny_problem(0);
  const int flows = rng.uniform_int(1, 8);
  for (int i = 0; i < flows; ++i) {
    FlowSpec f;
    f.source = rng.uniform_int(0, 3);
    do {
      f.destination = rng.uniform_int(0, 3);
    } while (f.destination == f.source);
    const int reps[] = {1, 2, 4};
    const int r = reps[rng.uniform_int(0, 2)];
    f.period_us = 500.0 / r;
    f.deadline_us = f.period_us;
    f.frame_bytes = 1500;
    p.flows.push_back(f);
  }
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;

  for (const auto& scenario :
       {FailureScenario::none(), FailureScenario::of_switches({4}),
        FailureScenario::of_switches({5})}) {
    const auto result = nbf.recover(t, scenario);
    if (!result.ok()) continue;  // reported failure: nothing to validate
    const auto report = simulate(t, scenario, result.state);
    EXPECT_TRUE(report.ok) << "seed " << GetParam() << ": "
                           << (report.violations.empty() ? "?" : report.violations.front());
    EXPECT_EQ(report.frames_delivered, report.frames_injected);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, RecoverySimulationProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace nptsn
