#include "tsn/recovery.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

TEST(HeuristicRecovery, InitialStatePlacesAllFlows) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;
  const auto result = nbf.initial_state(t);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.state.size(), 3u);
  for (const auto& assignment : result.state) {
    ASSERT_TRUE(assignment.has_value());
    EXPECT_GE(assignment->path.size(), 2u);
    EXPECT_EQ(assignment->slots.size(), assignment->path.size() - 1);
  }
}

TEST(HeuristicRecovery, AssignmentsMatchFlowEndpoints) {
  const auto p = tiny_problem(4);
  const auto t = dual_homed_topology(p);
  const auto result = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < p.flows.size(); ++i) {
    EXPECT_EQ(result.state[i]->path.front(), p.flows[i].source);
    EXPECT_EQ(result.state[i]->path.back(), p.flows[i].destination);
  }
}

TEST(HeuristicRecovery, IsDeterministic) {
  const auto p = tiny_problem(4);
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;
  const auto scenario = FailureScenario::of_switches({4});
  const auto a = nbf.recover(t, scenario);
  const auto b = nbf.recover(t, scenario);
  EXPECT_EQ(a.errors, b.errors);
  ASSERT_EQ(a.state.size(), b.state.size());
  for (std::size_t i = 0; i < a.state.size(); ++i) {
    ASSERT_EQ(a.state[i].has_value(), b.state[i].has_value());
    if (a.state[i]) {
      EXPECT_EQ(a.state[i]->path, b.state[i]->path);
      EXPECT_EQ(a.state[i]->slots, b.state[i]->slots);
    }
  }
}

TEST(HeuristicRecovery, ReroutesAroundFailedSwitch) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;
  const auto result = nbf.recover(t, FailureScenario::of_switches({4}));
  EXPECT_TRUE(result.ok());
  for (const auto& assignment : result.state) {
    ASSERT_TRUE(assignment.has_value());
    for (const NodeId v : assignment->path) EXPECT_NE(v, 4);
  }
}

TEST(HeuristicRecovery, StarTopologyCannotSurviveItsHub) {
  const auto p = tiny_problem(2);
  const auto t = star_topology(p);
  const auto result = HeuristicRecovery().recover(t, FailureScenario::of_switches({4}));
  EXPECT_FALSE(result.ok());
  // Every flow is unrecoverable.
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(HeuristicRecovery, ErrorsAreSortedUniqueSourceDestinationPairs) {
  auto p = tiny_problem(1);
  p.flows.clear();
  // Two identical flows plus one distinct: duplicates collapse in ER.
  p.flows.push_back({2, 3, 500.0, 64, 500.0});
  p.flows.push_back({2, 3, 500.0, 64, 500.0});
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  const auto t = star_topology(p);
  const auto result = HeuristicRecovery().recover(t, FailureScenario::of_switches({4}));
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(result.errors[1], (std::pair<NodeId, NodeId>{2, 3}));
}

TEST(HeuristicRecovery, LinkFailureForcesDetour) {
  const auto p = tiny_problem(1);  // flow 0 -> 1
  const auto t = dual_homed_topology(p);
  FailureScenario scenario;
  scenario.failed_links = {EdgeKey{0, 4}};
  const auto result = HeuristicRecovery().recover(t, scenario);
  ASSERT_TRUE(result.ok());
  // Source 0 must leave through switch 5 now.
  EXPECT_EQ(result.state[0]->path[1], 5);
}

TEST(HeuristicRecovery, NeverRelaysThroughEndStations) {
  // Flows 2 -> 3 while stations 0, 1 are also dual-homed: no path may use
  // another end station as an intermediate hop.
  auto p = tiny_problem(1);
  p.flows[0] = {2, 3, 500.0, 64, 500.0};
  const auto t = dual_homed_topology(p);
  const auto result = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(result.ok());
  const auto& path = result.state[0]->path;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(p.is_switch(path[i])) << "end station " << path[i] << " relayed a flow";
  }
}

TEST(HeuristicRecovery, EmptyTopologyFailsEverything) {
  const auto p = tiny_problem(2);
  const Topology t(p);
  const auto result = HeuristicRecovery().initial_state(t);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors.size(), 2u);
  for (const auto& assignment : result.state) EXPECT_FALSE(assignment.has_value());
}

TEST(HeuristicRecovery, CapacityExhaustionReportsErrors) {
  // 2-slot base period: a 2-hop route carries exactly one flow (slots 0, 1);
  // the second flow on the same route must fail.
  auto p = tiny_problem(2);
  p.tsn.slots_per_base = 2;
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};
  const auto t = star_topology(p);
  const auto result = HeuristicRecovery().initial_state(t);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 1u);  // deduplicated pair
  EXPECT_TRUE(result.state[0].has_value());
  EXPECT_FALSE(result.state[1].has_value());
}

TEST(HeuristicRecovery, AlternativePathUsedWhenShortestIsFull) {
  // Both flows 0 -> 1; a 2-slot base period fits one flow per 2-hop route;
  // the dual-homed net has a second route, so with path_candidates >= 2 both
  // flows fit.
  auto p = tiny_problem(2);
  p.tsn.slots_per_base = 2;
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};
  const auto t = dual_homed_topology(p);
  const auto multi = HeuristicRecovery(/*path_candidates=*/3).initial_state(t);
  EXPECT_TRUE(multi.ok());
  // With a single candidate the second flow cannot move off the full route.
  const auto single = HeuristicRecovery(/*path_candidates=*/1).initial_state(t);
  EXPECT_FALSE(single.ok());
}

TEST(HeuristicRecovery, StatelessnessEmptyFailureEqualsInitialState) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p);
  const HeuristicRecovery nbf;
  const auto initial = nbf.initial_state(t);
  const auto empty = nbf.recover(t, FailureScenario::none());
  ASSERT_EQ(initial.state.size(), empty.state.size());
  for (std::size_t i = 0; i < initial.state.size(); ++i) {
    EXPECT_EQ(initial.state[i]->path, empty.state[i]->path);
    EXPECT_EQ(initial.state[i]->slots, empty.state[i]->slots);
  }
}

TEST(HeuristicRecovery, RejectsNonPositiveCandidates) {
  EXPECT_THROW(HeuristicRecovery(0), std::invalid_argument);
}

TEST(HeuristicRecovery, ScheduleIsConflictFree) {
  // Re-validate the returned flow state: replaying every assignment into a
  // fresh slot table must never collide (schedule feasibility invariant).
  const auto p = tiny_problem(4);
  const auto t = dual_homed_topology(p);
  const auto result = HeuristicRecovery().initial_state(t);
  ASSERT_TRUE(result.ok());
  SlotTable table(p.tsn.slots_per_base);
  for (std::size_t i = 0; i < result.state.size(); ++i) {
    const auto& a = *result.state[i];
    const auto timing = FlowTiming::of(p, p.flows[i]);
    for (std::size_t h = 0; h + 1 < a.path.size(); ++h) {
      ASSERT_TRUE(table.is_free(a.path[h], a.path[h + 1], a.slots[h], timing.repetitions,
                                timing.period_slots));
      table.reserve(a.path[h], a.path[h + 1], a.slots[h], timing.repetitions,
                    timing.period_slots);
    }
    // Slots strictly increase along the path (store-and-forward order).
    for (std::size_t h = 1; h < a.slots.size(); ++h) EXPECT_GT(a.slots[h], a.slots[h - 1]);
  }
}

}  // namespace
}  // namespace nptsn
