#include "tsn/slot_table.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(SlotTable, FreshTableIsFree) {
  SlotTable t(20);
  EXPECT_EQ(t.slots_per_base(), 20);
  EXPECT_TRUE(t.is_free(0, 1, 0));
  EXPECT_TRUE(t.is_free(0, 1, 19));
  EXPECT_EQ(t.occupancy(0, 1), 0);
}

TEST(SlotTable, ReserveBlocksSlot) {
  SlotTable t(20);
  t.reserve(0, 1, 5);
  EXPECT_FALSE(t.is_free(0, 1, 5));
  EXPECT_TRUE(t.is_free(0, 1, 4));
  EXPECT_TRUE(t.is_free(0, 1, 6));
  EXPECT_EQ(t.occupancy(0, 1), 1);
}

TEST(SlotTable, DirectionsAreIndependent) {
  SlotTable t(20);
  t.reserve(0, 1, 5);
  EXPECT_TRUE(t.is_free(1, 0, 5));
  t.reserve(1, 0, 5);
  EXPECT_EQ(t.occupancy(0, 1), 1);
  EXPECT_EQ(t.occupancy(1, 0), 1);
}

TEST(SlotTable, DoubleReserveThrows) {
  SlotTable t(20);
  t.reserve(0, 1, 5);
  EXPECT_THROW(t.reserve(0, 1, 5), std::invalid_argument);
}

TEST(SlotTable, ReleaseFreesSlot) {
  SlotTable t(20);
  t.reserve(0, 1, 5);
  t.release(0, 1, 5);
  EXPECT_TRUE(t.is_free(0, 1, 5));
  EXPECT_EQ(t.occupancy(0, 1), 0);
}

TEST(SlotTable, ReleaseUnreservedThrows) {
  SlotTable t(20);
  EXPECT_THROW(t.release(0, 1, 3), std::invalid_argument);
}

TEST(SlotTable, RepetitionsReserveStridedSlots) {
  SlotTable t(20);
  // 4 frames per base, stride 5: slots 2, 7, 12, 17.
  t.reserve(0, 1, 2, /*repetitions=*/4, /*stride=*/5);
  for (const int s : {2, 7, 12, 17}) EXPECT_FALSE(t.is_free(0, 1, s));
  for (const int s : {0, 1, 3, 6, 8}) EXPECT_TRUE(t.is_free(0, 1, s));
  EXPECT_EQ(t.occupancy(0, 1), 4);
  t.release(0, 1, 2, 4, 5);
  EXPECT_EQ(t.occupancy(0, 1), 0);
}

TEST(SlotTable, IsFreeChecksAllRepetitions) {
  SlotTable t(20);
  t.reserve(0, 1, 12);
  EXPECT_FALSE(t.is_free(0, 1, 2, 4, 5));  // repetition 2 collides at 12
  EXPECT_TRUE(t.is_free(0, 1, 3, 4, 5));
}

TEST(SlotTable, SlotRangeValidated) {
  SlotTable t(10);
  EXPECT_THROW(t.reserve(0, 1, 10), std::invalid_argument);
  EXPECT_THROW(t.is_free(0, 1, -1), std::invalid_argument);
}

TEST(SlotTable, RejectsNonPositiveSlotCount) {
  EXPECT_THROW(SlotTable(0), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
