// End-to-end integration: NPTSN plans small networks, the results verify
// against the exhaustive analyzer, and the method ordering of Fig. 4 holds
// on a miniature instance.
#include <gtest/gtest.h>

#include "analysis/exhaustive.hpp"
#include "baselines/neuroplan.hpp"
#include "baselines/original.hpp"
#include "baselines/trh.hpp"
#include "analysis/auditor.hpp"
#include "core/planner.hpp"
#include "scenarios/ads.hpp"
#include "testing/lying_nbf.hpp"
#include "testing/test_problems.hpp"
#include "tsn/stateful.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

NptsnConfig fast_config(std::uint64_t seed = 1) {
  NptsnConfig c;
  c.epochs = 4;
  c.steps_per_epoch = 96;
  c.mlp_hidden = {32, 32};
  c.path_actions = 6;
  c.train_actor_iters = 8;
  c.train_critic_iters = 8;
  c.seed = seed;
  return c;
}

TEST(EndToEnd, NptsnSolvesTinyProblem) {
  const auto p = tiny_problem(3);
  const HeuristicRecovery nbf;
  const auto result = plan(p, nbf, fast_config());
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.solutions_found, 0);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_DOUBLE_EQ(result.best->cost(), result.best_cost);
  EXPECT_EQ(result.history.size(), 4u);

  // Independent verification of the claimed solution.
  const auto outcome = FailureAnalyzer(nbf).analyze(*result.best);
  EXPECT_TRUE(outcome.reliable);
  const auto exhaustive = analyze_exhaustive(*result.best, nbf);
  EXPECT_TRUE(exhaustive.reliable);
}

TEST(EndToEnd, BestSolutionRespectsAllConstraints) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  const auto result = plan(p, nbf, fast_config(2));
  ASSERT_TRUE(result.feasible);
  const Topology& best = *result.best;
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    const int max_degree =
        p.is_switch(v) ? p.max_switch_degree() : p.max_es_degree;
    EXPECT_LE(best.graph().degree(v), max_degree);
  }
  for (const auto& e : best.graph().edges()) {
    EXPECT_TRUE(p.connections.has_edge(e.u, e.v));
    // Link ASIL rule: minimum of adjacent node levels.
    EXPECT_EQ(best.link_asil(e.u, e.v),
              min_level(best.node_asil(e.u), best.node_asil(e.v)));
  }
}

TEST(EndToEnd, DeterministicGivenSeed) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  const auto a = plan(p, nbf, fast_config(3));
  const auto b = plan(p, nbf, fast_config(3));
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].mean_episode_reward, b.history[i].mean_episode_reward);
  }
}

TEST(EndToEnd, ParallelWorkersProduceSolutions) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  auto config = fast_config(4);
  config.num_workers = 2;
  const auto result = plan(p, nbf, config);
  EXPECT_TRUE(result.feasible);
}

TEST(EndToEnd, AsilHistogramMatchesBestTopology) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  const auto result = plan(p, nbf, fast_config(5));
  ASSERT_TRUE(result.feasible);
  const auto histogram = switch_asil_histogram(*result.best);
  int total = 0;
  for (const int c : histogram) total += c;
  EXPECT_EQ(total, static_cast<int>(result.best->selected_switches().size()));
}

TEST(EndToEnd, MiniatureFigure4Ordering) {
  // On the ADS scenario with the real application flows: NPTSN and the
  // baselines reproduce the paper's cost ordering — the all-D "original"
  // style design costs the most; NPTSN (mostly low ASIL + sparse topology)
  // costs the least among valid solutions it finds.
  const auto s = make_ads();
  const auto p = with_flows(s, ads_flows());
  const HeuristicRecovery nbf;

  auto config = fast_config(6);
  config.epochs = 6;
  config.steps_per_epoch = 128;
  const auto nptsn_result = plan(p, nbf, config);
  ASSERT_TRUE(nptsn_result.feasible);

  // All-D dual-homed manual design as the "original" stand-in (ADS has no
  // published wiring): stations split across two switch pairs (respecting
  // the 8-port limit), pairs cross-linked.
  std::vector<Edge> manual;
  for (NodeId es = 0; es < 12; ++es) {
    const NodeId a = es < 6 ? 12 : 14;
    const NodeId b = es < 6 ? 13 : 15;
    manual.push_back({es, a, 1.0});
    manual.push_back({es, b, 1.0});
  }
  manual.push_back({12, 14, 1.0});
  manual.push_back({12, 15, 1.0});
  manual.push_back({13, 14, 1.0});
  manual.push_back({13, 15, 1.0});
  const auto original = evaluate_original(p, manual, nbf, Asil::D);
  ASSERT_TRUE(original.valid);

  const auto trh = run_trh(p);

  EXPECT_LT(nptsn_result.best_cost, original.cost);
  if (trh.valid) {
    EXPECT_LT(nptsn_result.best_cost, trh.cost * 1.5)
        << "NPTSN should be competitive with TRH";
    EXPECT_LT(trh.cost, original.cost);
  }
}

TEST(EndToEnd, GatEncoderPlansSuccessfully) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  auto config = fast_config(8);
  config.use_gat_encoder = true;
  const auto result = plan(p, nbf, config);
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(FailureAnalyzer(nbf).analyze(*result.best).reliable);
}

TEST(EndToEnd, StatelessAdapterDrivesThePlanner) {
  // The planner is NBF-generic: plan against the statelessized incremental
  // mechanism and verify with the plain heuristic one.
  const auto p = tiny_problem(2);
  const IncrementalRecovery inner;
  const StatelessAdapter nbf(inner);
  const auto result = plan(p, nbf, fast_config(9));
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(FailureAnalyzer(nbf).analyze(*result.best).reliable);
}

// --- certified planning ------------------------------------------------------

TEST(EndToEnd, FinalAuditIsVerdictPreservingOnHonestRuns) {
  // Audits consume no environment RNG and change no rewards, so an honest
  // run must land on the identical best plan with auditing on — plus a
  // certificate that independently re-audits clean.
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;

  const auto off = plan(p, nbf, fast_config(11));
  auto audited_config = fast_config(11);
  audited_config.audit_mode = AuditMode::kFinal;
  const auto audited = plan(p, nbf, audited_config);

  ASSERT_TRUE(off.feasible);
  ASSERT_TRUE(audited.feasible);
  EXPECT_DOUBLE_EQ(audited.best_cost, off.best_cost);
  EXPECT_EQ(audited.solutions_found, off.solutions_found);

  EXPECT_FALSE(off.certificate.has_value());
  ASSERT_TRUE(audited.certificate.has_value());
  EXPECT_EQ(audited.audits_run, 1);
  EXPECT_EQ(audited.audits_rejected, 0);
  EXPECT_TRUE(audited.audit_failures.empty());
  EXPECT_EQ(audited.certificate->claimed_cost, audited.best_cost);
  EXPECT_TRUE(audit_certificate(p, *audited.certificate).ok);
}

TEST(EndToEnd, EverySolutionModeIsVerdictPreservingOnHonestRuns) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;

  const auto off = plan(p, nbf, fast_config(12));
  auto audited_config = fast_config(12);
  audited_config.audit_mode = AuditMode::kEverySolution;
  const auto audited = plan(p, nbf, audited_config);

  ASSERT_TRUE(off.feasible);
  ASSERT_TRUE(audited.feasible);
  EXPECT_DOUBLE_EQ(audited.best_cost, off.best_cost);
  EXPECT_EQ(audited.solutions_found, off.solutions_found);
  // One audit per accepted solution during training plus the final audit.
  EXPECT_EQ(audited.audits_run, audited.solutions_found + 1);
  EXPECT_EQ(audited.audits_rejected, 0);
}

TEST(EndToEnd, LyingNbfIsRejectedGracefullyByTheFinalAudit) {
  // A recovery mechanism that swallows its own error set fools the analyzer
  // into "reliable" verdicts; the final audit must reject the plan — result
  // infeasible with diagnostics, never a crash and never a certificate.
  const auto p = tiny_problem(2);
  const HeuristicRecovery honest;
  const testing::LyingNbf liar(honest);

  auto config = fast_config(13);
  config.audit_mode = AuditMode::kFinal;
  const auto result = plan(p, liar, config);

  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_FALSE(result.certificate.has_value());
  EXPECT_GT(result.audits_rejected, 0);
  ASSERT_FALSE(result.audit_failures.empty());
  EXPECT_NE(result.audit_failures.front().find("final audit"), std::string::npos);
}

TEST(EndToEnd, EverySolutionModeRejectsLyingSolutionsDuringTraining) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery honest;
  const testing::LyingNbf liar(honest);

  auto config = fast_config(14);
  config.audit_mode = AuditMode::kEverySolution;
  const auto result = plan(p, liar, config);

  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.solutions_found, 0) << "no lying solution may be recorded";
  EXPECT_GT(result.audits_run, 0);
  EXPECT_GT(result.audits_rejected, 0);
  EXPECT_FALSE(result.audit_failures.empty());
  std::int64_t epoch_audits = 0;
  std::int64_t epoch_rejections = 0;
  for (const EpochStats& stats : result.history) {
    epoch_audits += stats.audits_run;
    epoch_rejections += stats.audits_rejected;
  }
  EXPECT_GT(epoch_audits, 0) << "audit counters must surface in epoch stats";
  EXPECT_EQ(epoch_rejections, epoch_audits) << "every lying solution is rejected";
}

TEST(EndToEnd, FinalCertificateIsWrittenToDisk) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  const std::string path = ::testing::TempDir() + "e2e_certificate.bin";
  auto config = fast_config(15);
  config.audit_mode = AuditMode::kFinal;
  config.certificate_path = path;

  const auto result = plan(p, nbf, config);
  ASSERT_TRUE(result.feasible);
  const ReliabilityCertificate loaded = load_certificate_file(path);
  EXPECT_EQ(loaded.problem_fp, problem_fingerprint(p));
  EXPECT_EQ(loaded.claimed_cost, result.best_cost);
  EXPECT_TRUE(audit_certificate(p, loaded).ok);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(EndToEnd, SolutionSurvivesEverySingleSwitchFailure) {
  const auto p = tiny_problem(3);
  const HeuristicRecovery nbf;
  const auto result = plan(p, nbf, fast_config(7));
  ASSERT_TRUE(result.feasible);
  const Topology& best = *result.best;
  for (const NodeId v : best.selected_switches()) {
    if (best.switch_asil(v) == Asil::D) continue;  // safe fault
    const auto recovered = nbf.recover(best, FailureScenario::of_switches({v}));
    EXPECT_TRUE(recovered.ok()) << "switch " << v << " failure not recoverable";
  }
}

}  // namespace
}  // namespace nptsn
