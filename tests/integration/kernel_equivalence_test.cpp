// Trainer-level equivalence of the two GEMM kernel families: a short ADS run
// under the fast kernels must make the SAME decisions as one under the
// reference kernels — identical action sequences (observable as bit-identical
// per-epoch episode rewards), identical final topology — with only the losses
// allowed to drift inside the FMA contraction envelope. Plus: kill-and-resume
// under the fast family stays byte-identical to an uninterrupted fast run.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/planner.hpp"
#include "nn/matrix.hpp"
#include "scenarios/ads.hpp"
#include "testing/corridor_env.hpp"
#include "tsn/stateful.hpp"

namespace nptsn {
namespace {

using testing::CorridorEnv;
using testing::corridor_net_config;
using testing::corridor_trainer_config;

class KernelGuard {
 public:
  KernelGuard() : kernel_(nn_kernel()), threads_(nn_kernel_threads()) {}
  ~KernelGuard() {
    set_nn_kernel(kernel_);
    set_nn_kernel_threads(threads_);
  }

 private:
  NnKernel kernel_;
  int threads_;
};

NptsnConfig short_ads_config(NnKernel kernel) {
  NptsnConfig c;
  c.epochs = 2;
  c.steps_per_epoch = 48;
  c.mlp_hidden = {32, 32};
  c.path_actions = 6;
  c.train_actor_iters = 6;
  c.train_critic_iters = 6;
  c.seed = 7;
  c.nn_kernel = kernel;
  return c;
}

void expect_same_topology(const Topology& a, const Topology& b) {
  EXPECT_EQ(a.cost(), b.cost());
  auto ea = a.graph().edges();
  auto eb = b.graph().edges();
  ASSERT_EQ(ea.size(), eb.size());
  auto key = [](const Edge& e) { return std::make_pair(std::min(e.u, e.v), std::max(e.u, e.v)); };
  auto by_key = [&](const Edge& x, const Edge& y) { return key(x) < key(y); };
  std::sort(ea.begin(), ea.end(), by_key);
  std::sort(eb.begin(), eb.end(), by_key);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(key(ea[i]), key(eb[i])) << "edge " << i;
  }
  ASSERT_EQ(a.graph().num_nodes(), b.graph().num_nodes());
  for (NodeId v = 0; v < a.graph().num_nodes(); ++v) {
    EXPECT_EQ(a.node_asil(v), b.node_asil(v)) << "node " << static_cast<int>(v);
  }
}

TEST(KernelEquivalence, ShortAdsRunMatchesAcrossKernelFamilies) {
  KernelGuard guard;
  const auto p = with_flows(make_ads(), ads_flows());
  const HeuristicRecovery nbf;
  const auto fast = plan(p, nbf, short_ads_config(NnKernel::kFast));
  const auto reference = plan(p, nbf, short_ads_config(NnKernel::kReference));

  // Same action sequences => the environment pays out bit-identical rewards
  // and both runs discover the same solutions.
  ASSERT_EQ(fast.history.size(), reference.history.size());
  for (std::size_t i = 0; i < fast.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast.history[i].mean_episode_reward,
                     reference.history[i].mean_episode_reward)
        << "epoch " << i;
    EXPECT_EQ(fast.history[i].episodes_finished, reference.history[i].episodes_finished);
    // Losses are computed BY the kernels, so they carry the FMA contraction
    // difference — close, not bitwise.
    EXPECT_NEAR(fast.history[i].actor_loss, reference.history[i].actor_loss, 1e-6);
    EXPECT_NEAR(fast.history[i].critic_loss, reference.history[i].critic_loss, 1e-6);
  }
  EXPECT_EQ(fast.feasible, reference.feasible);
  EXPECT_EQ(fast.solutions_found, reference.solutions_found);
  ASSERT_EQ(fast.best.has_value(), reference.best.has_value());
  if (fast.best.has_value()) expect_same_topology(*fast.best, *reference.best);
}

TEST(KernelEquivalence, KillAndResumeUnderFastKernelsIsByteIdentical) {
  KernelGuard guard;
  set_nn_kernel(NnKernel::kFast);

  auto make_trainer = [](ActorCritic& net, int epochs) {
    auto config = corridor_trainer_config();
    config.epochs = epochs;
    return std::make_unique<Trainer>(
        net, [] { return std::make_unique<CorridorEnv>(); }, config);
  };

  // Uninterrupted fast run.
  Rng rng_ref(17);
  ActorCritic net_ref(corridor_net_config(), rng_ref);
  auto reference = make_trainer(net_ref, 5);
  const auto ref_history = reference->train();
  ASSERT_EQ(ref_history.size(), 5u);
  const std::vector<std::uint8_t> ref_state = reference->save_state();

  // Same run killed after 3 epochs and resumed in a fresh trainer.
  Rng rng_a(17);
  ActorCritic net_a(corridor_net_config(), rng_a);
  auto first = make_trainer(net_a, 3);
  first->train();
  const auto snapshot = first->save_state();
  first.reset();

  Rng rng_b(4444);  // different init; load_state overwrites everything
  ActorCritic net_b(corridor_net_config(), rng_b);
  auto second = make_trainer(net_b, 5);
  second->load_state(snapshot);
  const auto tail = second->train();
  ASSERT_EQ(tail.size(), 2u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_DOUBLE_EQ(tail[i].mean_episode_reward, ref_history[i + 3].mean_episode_reward);
    EXPECT_DOUBLE_EQ(tail[i].actor_loss, ref_history[i + 3].actor_loss);
    EXPECT_DOUBLE_EQ(tail[i].critic_loss, ref_history[i + 3].critic_loss);
  }

  // The strongest form of the claim: the serialized end state (weights, Adam
  // moments, RNG streams, epoch counter) is byte-identical.
  const std::vector<std::uint8_t> resumed_state = second->save_state();
  ASSERT_EQ(resumed_state.size(), ref_state.size());
  EXPECT_TRUE(resumed_state == ref_state);
}

}  // namespace
}  // namespace nptsn
