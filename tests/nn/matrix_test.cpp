#include "nn/matrix.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FALSE(m.empty());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m.at(i, j), 1.5);
  }
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0);
}

TEST(Matrix, FromInitializerList) {
  const auto m = Matrix::from({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 6.0);
}

TEST(Matrix, FromRejectsRaggedRows) {
  EXPECT_THROW(Matrix::from({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IndexBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, -1), std::invalid_argument);
}

TEST(Matrix, SumAndMaxAbs) {
  const auto m = Matrix::from({{1.0, -4.0}, {2.0, 0.5}});
  EXPECT_DOUBLE_EQ(m.sum(), -0.5);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(Matrix().max_abs(), 0.0);
}

TEST(Matrix, MatmulKnownResult) {
  const auto a = Matrix::from({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = Matrix::from({{5.0, 6.0}, {7.0, 8.0}});
  const auto c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MatmulRectangular) {
  const auto a = Matrix::from({{1.0, 0.0, 2.0}});         // 1x3
  const auto b = Matrix::from({{1.0}, {1.0}, {1.0}});     // 3x1
  const auto c = matmul(a, b);
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 1);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 3.0);
}

TEST(Matrix, MatmulShapeChecked) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, MatmulSparseSkipIsCorrect) {
  // The zero-skip fast path must not change results.
  const auto a = Matrix::from({{0.0, 2.0}, {0.0, 0.0}});
  const auto b = Matrix::from({{9.0, 9.0}, {1.0, 2.0}});
  const auto c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 0.0);
}

TEST(Matrix, Transpose) {
  const auto m = Matrix::from({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
}

TEST(Matrix, ElementwiseOps) {
  const auto a = Matrix::from({{1.0, 2.0}});
  const auto b = Matrix::from({{3.0, 5.0}});
  EXPECT_DOUBLE_EQ(add(a, b).at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(sub(a, b).at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(scale(a, 3.0).at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(hadamard(a, b).at(0, 1), 10.0);
}

TEST(Matrix, ElementwiseShapeChecked) {
  EXPECT_THROW(add(Matrix(1, 2), Matrix(2, 1)), std::invalid_argument);
  EXPECT_THROW(hadamard(Matrix(1, 2), Matrix(1, 3)), std::invalid_argument);
}

TEST(Matrix, RowBroadcast) {
  const auto a = Matrix::from({{1.0, 2.0}, {3.0, 4.0}});
  const auto row = Matrix::from({{10.0, 20.0}});
  const auto r = add_row_broadcast(a, row);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 24.0);
  EXPECT_THROW(add_row_broadcast(a, Matrix(1, 3)), std::invalid_argument);
  EXPECT_THROW(add_row_broadcast(a, Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, AccumulateInPlace) {
  auto a = Matrix::from({{1.0, 1.0}});
  accumulate(a, Matrix::from({{2.0, 3.0}}));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
  EXPECT_THROW(accumulate(a, Matrix(2, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
