// Differential tests between the two GEMM kernel families (DESIGN.md §11).
//
// The reference family is the bit-frozen ground truth: naive loops, pure
// mul+add. The fast family (register-blocked, cache-tiled, explicit FMA) must
// stay within 1e-12 of it on every shape — including the degenerate ones the
// tiled path is most likely to get wrong (1x1, single rows/columns, empty
// dimensions, sizes that are not multiples of the register tile) — and must
// be BIT-identical to itself run-to-run and across thread counts.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

// Restores the process-global kernel switches on scope exit so test order
// cannot leak a kernel selection into unrelated tests.
class KernelGuard {
 public:
  KernelGuard() : kernel_(nn_kernel()), threads_(nn_kernel_threads()) {}
  ~KernelGuard() {
    set_nn_kernel(kernel_);
    set_nn_kernel_threads(threads_);
  }

 private:
  NnKernel kernel_;
  int threads_;
};

Matrix random_matrix(int rows, int cols, double density, Rng& rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    if (rng.uniform() < density) m.data()[i] = rng.uniform(-2.0, 2.0);
  }
  return m;
}

void expect_within(const Matrix& fast, const Matrix& ref, double tol,
                   const char* what) {
  ASSERT_TRUE(fast.same_shape(ref)) << what;
  for (int i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], ref.data()[i], tol)
        << what << " at flat index " << i;
  }
}

void expect_identical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (int i = 0; i < a.size(); ++i) {
    // Exact double equality on purpose: the determinism contract is bitwise.
    EXPECT_EQ(a.data()[i], b.data()[i]) << what << " at flat index " << i;
  }
}

struct Shape {
  int m, k, n;
};

// Degenerate and non-tile-multiple shapes, then randomized rectangles.
std::vector<Shape> test_shapes(Rng& rng) {
  std::vector<Shape> shapes = {
      {1, 1, 1},              // single element
      {1, 1, 17},             // 1 x N row
      {1, 9, 1},              // inner-product only
      {7, 1, 5},              // rank-one update
      {0, 5, 4}, {5, 0, 4}, {5, 4, 0},  // empty dimensions
      {4, 8, 8},              // exact register tile
      {5, 7, 9},              // off-by-one past the tile everywhere
      {13, 17, 11},           // nothing divides the tile sizes
      {3, 33, 31},            // row remainder smaller than the microkernel
      {46, 86, 92},           // ORION encoder layer-1 shape
  };
  for (int i = 0; i < 24; ++i) {
    shapes.push_back({rng.uniform_int(1, 40), rng.uniform_int(1, 40),
                      rng.uniform_int(1, 40)});
  }
  return shapes;
}

constexpr double kTol = 1e-12;
constexpr double kDensities[] = {0.0, 0.15, 0.6, 1.0};

TEST(KernelDifferential, MatmulFamiliesAgreeOnAllShapes) {
  KernelGuard guard;
  Rng rng(20240806);
  for (const Shape& s : test_shapes(rng)) {
    for (const double density : kDensities) {
      const Matrix a = random_matrix(s.m, s.k, density, rng);
      const Matrix b = random_matrix(s.k, s.n, density, rng);
      set_nn_kernel(NnKernel::kReference);
      const Matrix ref = matmul(a, b);
      set_nn_kernel(NnKernel::kFast);
      const Matrix fast = matmul(a, b);
      expect_within(fast, ref, kTol, "matmul");
    }
  }
}

TEST(KernelDifferential, TransposedFamiliesAgreeOnAllShapes) {
  KernelGuard guard;
  Rng rng(77001);
  for (const Shape& s : test_shapes(rng)) {
    for (const double density : kDensities) {
      // matmul_transposed: a (m x k) * b^T with b stored n x k.
      const Matrix a = random_matrix(s.m, s.k, density, rng);
      const Matrix bt = random_matrix(s.n, s.k, density, rng);
      // matmul_transposed_a: a^T * c with a stored k x m.
      const Matrix a_tn = random_matrix(s.k, s.m, density, rng);
      const Matrix c = random_matrix(s.k, s.n, density, rng);
      set_nn_kernel(NnKernel::kReference);
      const Matrix ref_nt = matmul_transposed(a, bt);
      const Matrix ref_tn = matmul_transposed_a(a_tn, c);
      set_nn_kernel(NnKernel::kFast);
      expect_within(matmul_transposed(a, bt), ref_nt, kTol, "matmul_transposed");
      expect_within(matmul_transposed_a(a_tn, c), ref_tn, kTol, "matmul_transposed_a");
    }
  }
}

TEST(KernelDifferential, AffineEpiloguesAgreeOnAllShapes) {
  KernelGuard guard;
  Rng rng(31337);
  const Epilogue acts[] = {Epilogue::kNone, Epilogue::kRelu, Epilogue::kTanh};
  for (const Shape& s : test_shapes(rng)) {
    const Matrix x = random_matrix(s.m, s.k, 0.4, rng);
    const Matrix w = random_matrix(s.k, s.n, 0.8, rng);
    const Matrix bias = random_matrix(1, s.n, 1.0, rng);
    for (const Epilogue act : acts) {
      for (const Matrix* pbias : {static_cast<const Matrix*>(nullptr), &bias}) {
        set_nn_kernel(NnKernel::kReference);
        const Matrix ref = affine(x, w, pbias, act);
        set_nn_kernel(NnKernel::kFast);
        expect_within(affine(x, w, pbias, act), ref, kTol, "affine");
      }
    }
    set_nn_kernel(NnKernel::kReference);
    const Matrix p = random_matrix(s.m, s.m, 0.3, rng);
    const Matrix z = random_matrix(s.m, s.n, 0.7, rng);
    const Matrix ref = matmul_epilogue(p, z, Epilogue::kRelu);
    set_nn_kernel(NnKernel::kFast);
    expect_within(matmul_epilogue(p, z, Epilogue::kRelu), ref, kTol,
                  "matmul_epilogue");
  }
}

TEST(KernelDifferential, BlockDiagonalFamiliesAgree) {
  KernelGuard guard;
  Rng rng(555);
  for (const int n : {1, 3, 16, 46}) {
    for (const int batch : {1, 2, 7}) {
      std::vector<Matrix> blocks;
      for (int g = 0; g < batch; ++g) {
        // Adjacency-like sparsity: mostly zero with a guaranteed diagonal.
        Matrix a = random_matrix(n, n, 0.15, rng);
        for (int i = 0; i < n; ++i) a.at(i, i) = rng.uniform(0.1, 1.0);
        blocks.push_back(std::move(a));
      }
      const BlockAdjacency adj(std::move(blocks));
      const int f = rng.uniform_int(1, 24);
      const int out = rng.uniform_int(1, 24);
      const Matrix h = random_matrix(batch * n, f, 0.5, rng);
      const Matrix delta = random_matrix(batch * n, f, 0.9, rng);
      const Matrix w = random_matrix(f, out, 1.0, rng);
      const Matrix bias = random_matrix(1, out, 1.0, rng);

      set_nn_kernel(NnKernel::kReference);
      const Matrix ref_prop = block_diag_matmul(adj, h, Epilogue::kRelu);
      const Matrix ref_tn = block_diag_matmul_tn(adj, delta);
      const Matrix ref_gcn = block_diag_gcn(adj, h, w, bias);
      set_nn_kernel(NnKernel::kFast);
      expect_within(block_diag_matmul(adj, h, Epilogue::kRelu), ref_prop, kTol,
                    "block_diag_matmul");
      expect_within(block_diag_matmul_tn(adj, delta), ref_tn, kTol,
                    "block_diag_matmul_tn");
      expect_within(block_diag_gcn(adj, h, w, bias), ref_gcn, kTol,
                    "block_diag_gcn");
    }
  }
}

TEST(KernelDifferential, CsrIndexMatchesDenseBlocks) {
  Rng rng(99);
  std::vector<Matrix> blocks;
  for (int g = 0; g < 3; ++g) blocks.push_back(random_matrix(9, 9, 0.3, rng));
  const std::vector<Matrix> dense = blocks;  // keep a copy to diff against
  const BlockAdjacency adj(std::move(blocks));
  ASSERT_EQ(adj.count(), 3);
  ASSERT_EQ(adj.block_size(), 9);
  for (int g = 0; g < adj.count(); ++g) {
    Matrix rebuilt(9, 9);
    for (int r = 0; r < 9; ++r) {
      int prev_col = -1;
      for (std::size_t t = adj.row_begin(g, r); t < adj.row_end(g, r); ++t) {
        const int c = adj.csr_cols()[t];
        EXPECT_GT(c, prev_col) << "CSR columns must ascend within a row";
        prev_col = c;
        EXPECT_NE(adj.csr_vals()[t], 0.0);
        rebuilt.at(r, c) = adj.csr_vals()[t];
      }
    }
    expect_identical(rebuilt, dense[static_cast<std::size_t>(g)], "csr rebuild");
  }
}

TEST(KernelDifferential, FastKernelsAreBitIdenticalAcrossThreadCounts) {
  KernelGuard guard;
  Rng rng(4242);
  set_nn_kernel(NnKernel::kFast);
  // Big enough that the parallel path actually partitions rows.
  const Matrix a = random_matrix(97, 53, 0.5, rng);
  const Matrix b = random_matrix(53, 61, 0.5, rng);
  const Matrix bias = random_matrix(1, 61, 1.0, rng);
  set_nn_kernel_threads(1);
  const Matrix serial = affine(a, b, &bias, Epilogue::kTanh);
  const Matrix serial_mm = matmul(a, b);
  for (const int threads : {2, 3, 5, 8}) {
    set_nn_kernel_threads(threads);
    expect_identical(affine(a, b, &bias, Epilogue::kTanh), serial,
                     "affine across thread counts");
    expect_identical(matmul(a, b), serial_mm, "matmul across thread counts");
  }
}

TEST(KernelDifferential, FastKernelsAreBitIdenticalRunToRun) {
  KernelGuard guard;
  Rng rng(808);
  set_nn_kernel(NnKernel::kFast);
  const Matrix x = random_matrix(37, 29, 0.4, rng);
  const Matrix w = random_matrix(29, 31, 0.9, rng);
  const Matrix bias = random_matrix(1, 31, 1.0, rng);
  const Matrix first = affine(x, w, &bias, Epilogue::kRelu);
  for (int rep = 0; rep < 3; ++rep) {
    expect_identical(affine(x, w, &bias, Epilogue::kRelu), first, "run-to-run");
  }
}

}  // namespace
}  // namespace nptsn
