#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nptsn {
namespace {

TEST(Linear, ShapesAndParameterCount) {
  Rng rng(1);
  Linear layer(5, 3, rng);
  EXPECT_EQ(layer.in_features(), 5);
  EXPECT_EQ(layer.out_features(), 3);
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].rows(), 5);
  EXPECT_EQ(params[0].cols(), 3);
  EXPECT_EQ(params[1].rows(), 1);
  EXPECT_EQ(params[1].cols(), 3);
}

TEST(Linear, ForwardComputesAffineMap) {
  Rng rng(2);
  Linear layer(2, 2, rng);
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  // Overwrite weights for a known map: y = x W + b.
  params[0].mutable_value() = Matrix::from({{1.0, 2.0}, {3.0, 4.0}});
  params[1].mutable_value() = Matrix::from({{0.5, -0.5}});
  const Tensor y = layer.forward(Tensor::constant(Matrix::from({{1.0, 1.0}})));
  EXPECT_DOUBLE_EQ(y.value().at(0, 0), 4.5);
  EXPECT_DOUBLE_EQ(y.value().at(0, 1), 5.5);
}

TEST(Linear, ForwardBatchesOverRows) {
  Rng rng(3);
  Linear layer(3, 4, rng);
  const Tensor y = layer.forward(Tensor::constant(Matrix(7, 3, 0.5)));
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 4);
  // All rows identical since all inputs identical.
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(y.value().at(0, j), y.value().at(6, j));
}

TEST(Linear, InputWidthChecked) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor::constant(Matrix(1, 4))), std::invalid_argument);
}

TEST(Linear, InitializationBoundedAndNonDegenerate) {
  Rng rng(5);
  Linear layer(64, 64, rng);
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  const double bound = std::sqrt(6.0 / 128.0);
  EXPECT_LE(params[0].value().max_abs(), bound + 1e-12);
  EXPECT_GT(params[0].value().max_abs(), 0.0);
  EXPECT_DOUBLE_EQ(params[1].value().max_abs(), 0.0);  // zero bias init
}

TEST(NormalizedAdjacency, SelfLoopsAndSymmetricNormalization) {
  // Path graph 0-1-2.
  Matrix a(3, 3);
  a.at(0, 1) = a.at(1, 0) = 1.0;
  a.at(1, 2) = a.at(2, 1) = 1.0;
  const Matrix n = normalized_adjacency(a);
  // Degrees with self loops: d0 = 2, d1 = 3, d2 = 2.
  EXPECT_NEAR(n.at(0, 0), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(n.at(1, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(n.at(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(n.at(0, 1), n.at(1, 0), 1e-15);  // symmetric
  EXPECT_DOUBLE_EQ(n.at(0, 2), 0.0);            // no edge
}

TEST(NormalizedAdjacency, IsolatedNodeBecomesSelfLoopOne) {
  const Matrix n = normalized_adjacency(Matrix(2, 2));
  EXPECT_DOUBLE_EQ(n.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(n.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(n.at(0, 1), 0.0);
}

TEST(NormalizedAdjacency, RejectsBadInput) {
  EXPECT_THROW(normalized_adjacency(Matrix(2, 3)), std::invalid_argument);
  Matrix weighted(2, 2);
  weighted.at(0, 1) = weighted.at(1, 0) = 2.0;
  EXPECT_THROW(normalized_adjacency(weighted), std::invalid_argument);
}

TEST(GcnLayer, PropagatesThroughAHat) {
  Rng rng(6);
  GcnLayer layer(2, 2, rng);
  const Matrix a_hat = normalized_adjacency([] {
    Matrix a(2, 2);
    a.at(0, 1) = a.at(1, 0) = 1.0;
    return a;
  }());
  const Tensor h = Tensor::constant(Matrix::from({{1.0, 0.0}, {0.0, 1.0}}));
  const Tensor out = layer.forward(Tensor::constant(a_hat), h);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
  // ReLU output is non-negative.
  for (int i = 0; i < out.value().size(); ++i) EXPECT_GE(out.value().data()[i], 0.0);
}

TEST(GcnLayer, ShapeMismatchChecked) {
  Rng rng(7);
  GcnLayer layer(2, 2, rng);
  const Tensor a_hat = Tensor::constant(Matrix(3, 3));
  const Tensor h = Tensor::constant(Matrix(2, 2));
  EXPECT_THROW(layer.forward(a_hat, h), std::invalid_argument);
}

TEST(GatLayer, ShapesAndNonNegativity) {
  Rng rng(20);
  GatLayer layer(3, 4, rng);
  Matrix neighborhood(2, 2);
  neighborhood.at(0, 0) = neighborhood.at(1, 1) = 1.0;
  neighborhood.at(0, 1) = neighborhood.at(1, 0) = 1.0;
  const Tensor out = layer.forward(neighborhood, Tensor::constant(Matrix(2, 3, 0.5)));
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 4);
  for (int i = 0; i < out.value().size(); ++i) EXPECT_GE(out.value().data()[i], 0.0);
}

TEST(GatLayer, IsolatedNodeAttendsOnlyItself) {
  // With a diagonal neighborhood, attention collapses to the identity and
  // the layer reduces to relu(W h + b) per node.
  Rng rng(21);
  GatLayer layer(2, 2, rng);
  Matrix diag(2, 2);
  diag.at(0, 0) = diag.at(1, 1) = 1.0;
  const Matrix h = Matrix::from({{1.0, 0.0}, {0.0, 1.0}});
  const Tensor out = layer.forward(diag, Tensor::constant(h));
  // Compare against the layer's own linear map + relu.
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  const Matrix expected = matmul(h, params[0].value());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double linear = expected.at(i, j) + params[1].value().at(0, j);
      EXPECT_NEAR(out.value().at(i, j), std::max(0.0, linear), 1e-12);
    }
  }
}

TEST(GatLayer, GradientsFlowToAttentionParameters) {
  Rng rng(22);
  GatLayer layer(2, 3, rng);
  Matrix neighborhood(3, 3, 1.0);  // fully connected
  const Tensor out =
      layer.forward(neighborhood, Tensor::constant(Matrix::from({{1.0, 2.0}, {0.5, -1.0}, {2.0, 0.0}})));
  sum_all(out).backward();
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  ASSERT_EQ(params.size(), 4u);  // W, b, attn_src, attn_dst
  for (auto& p : params) EXPECT_FALSE(p.grad().empty());
}

TEST(GatLayer, ShapeMismatchChecked) {
  Rng rng(23);
  GatLayer layer(2, 2, rng);
  EXPECT_THROW(layer.forward(Matrix(3, 3, 1.0), Tensor::constant(Matrix(2, 2))),
               std::invalid_argument);
}

TEST(Mlp, HiddenLayersAndOutputShape) {
  Rng rng(8);
  Mlp mlp(4, {8, 8}, 3, rng);
  const Tensor y = mlp.forward(Tensor::constant(Matrix(1, 4, 0.1)));
  EXPECT_EQ(y.rows(), 1);
  EXPECT_EQ(y.cols(), 3);
  std::vector<Tensor> params;
  mlp.collect_parameters(params);
  EXPECT_EQ(params.size(), 6u);  // 3 layers x (W, b)
}

TEST(Mlp, NoHiddenLayersIsLinear) {
  Rng rng(9);
  Mlp mlp(3, {}, 2, rng);
  std::vector<Tensor> params;
  mlp.collect_parameters(params);
  EXPECT_EQ(params.size(), 2u);
}

TEST(Mlp, OutputIsUnboundedLinearHead) {
  // tanh hidden layers saturate at +-1, but the linear head can exceed it.
  Rng rng(10);
  Mlp mlp(1, {4}, 1, rng);
  std::vector<Tensor> params;
  mlp.collect_parameters(params);
  params[0].mutable_value() = Matrix(1, 4, 5.0);   // saturate every tanh unit
  params[2].mutable_value() = Matrix(4, 1, 10.0);  // large head weights
  const Tensor y = mlp.forward(Tensor::constant(Matrix(1, 1, 100.0)));
  EXPECT_GT(std::abs(y.value().at(0, 0)), 1.0);
}

TEST(Mlp, GradientsFlowToAllParameters) {
  Rng rng(11);
  Mlp mlp(3, {5}, 2, rng);
  const Tensor loss = sum_all(mlp.forward(Tensor::constant(Matrix(1, 3, 1.0))));
  loss.backward();
  std::vector<Tensor> params;
  mlp.collect_parameters(params);
  for (auto& p : params) {
    EXPECT_FALSE(p.grad().empty());
    EXPECT_GT(p.grad().max_abs(), 0.0);
  }
}

}  // namespace
}  // namespace nptsn
