// Gradient correctness: every differentiable op is checked against central
// finite differences, plus graph-structure behaviors (accumulation, reuse,
// constants, masking).
#include "nn/autograd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "util/rng.hpp"

namespace nptsn {
namespace {

Matrix random_matrix(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0, 1.0);
  return m;
}

// Central-difference gradient of scalar_fn at `point`, compared entrywise
// with the autograd gradient.
void check_gradient(const Matrix& point,
                    const std::function<Tensor(const Tensor&)>& scalar_fn,
                    double tolerance = 1e-6) {
  Tensor x = Tensor::parameter(point);
  Tensor loss = scalar_fn(x);
  loss.backward();
  const Matrix analytic = x.grad();

  const double eps = 1e-6;
  for (int i = 0; i < point.size(); ++i) {
    Matrix plus = point;
    plus.data()[i] += eps;
    Matrix minus = point;
    minus.data()[i] -= eps;
    const double f_plus = scalar_fn(Tensor::parameter(plus)).item();
    const double f_minus = scalar_fn(Tensor::parameter(minus)).item();
    const double numeric = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tolerance) << "entry " << i;
  }
}

TEST(Autograd, TensorBasics) {
  Tensor t = Tensor::constant(Matrix::from({{1.0, 2.0}}));
  EXPECT_TRUE(t.defined());
  EXPECT_FALSE(t.requires_grad());
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 2);

  Tensor p = Tensor::parameter(Matrix(1, 1, 3.0));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_DOUBLE_EQ(p.item(), 3.0);

  Tensor empty;
  EXPECT_FALSE(empty.defined());
  EXPECT_THROW(empty.value(), std::invalid_argument);
}

TEST(Autograd, ItemRequiresScalar) {
  Tensor t = Tensor::constant(Matrix(2, 2));
  EXPECT_THROW(t.item(), std::invalid_argument);
}

TEST(Autograd, BackwardRequiresScalarWithGrad) {
  Tensor c = Tensor::constant(Matrix(1, 1, 2.0));
  EXPECT_THROW(c.backward(), std::invalid_argument);  // no parameters involved
  Tensor p = Tensor::parameter(Matrix(2, 2));
  EXPECT_THROW(p.backward(), std::invalid_argument);  // not a scalar
}

TEST(Autograd, SimpleChainGradient) {
  // loss = sum(3 * x) -> dloss/dx = 3.
  Tensor x = Tensor::parameter(Matrix::from({{1.0, -2.0}}));
  Tensor loss = sum_all(scale(x, 3.0));
  loss.backward();
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(x.grad().at(0, 1), 3.0);
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls) {
  Tensor x = Tensor::parameter(Matrix(1, 1, 1.0));
  sum_all(scale(x, 2.0)).backward();
  sum_all(scale(x, 2.0)).backward();
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 4.0);
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 0.0);
}

TEST(Autograd, ReusedTensorGetsSummedGradient) {
  // loss = sum(x + x) -> dloss/dx = 2.
  Tensor x = Tensor::parameter(Matrix(1, 3, 1.0));
  sum_all(add(x, x)).backward();
  for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(x.grad().at(0, j), 2.0);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Tensor x = Tensor::parameter(Matrix(1, 2, 1.0));
  Tensor c = Tensor::constant(Matrix(1, 2, 5.0));
  sum_all(hadamard(x, c)).backward();
  EXPECT_TRUE(c.grad().empty() || c.grad().max_abs() == 0.0);
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 5.0);
}

TEST(AutogradGradCheck, Matmul) {
  Rng rng(1);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  // Gradient w.r.t. the left operand.
  check_gradient(a, [&](const Tensor& x) {
    return sum_all(matmul(x, Tensor::constant(b)));
  });
  // Gradient w.r.t. the right operand.
  check_gradient(b, [&](const Tensor& x) {
    return sum_all(matmul(Tensor::constant(a), x));
  });
}

TEST(AutogradGradCheck, AddSubScaleHadamard) {
  Rng rng(2);
  const Matrix a = random_matrix(2, 3, rng);
  const Matrix b = random_matrix(2, 3, rng);
  check_gradient(a, [&](const Tensor& x) {
    return sum_all(hadamard(add(x, Tensor::constant(b)),
                            sub(x, scale(Tensor::constant(b), 0.5))));
  });
}

TEST(AutogradGradCheck, RowBroadcastBias) {
  Rng rng(3);
  const Matrix a = random_matrix(3, 2, rng);
  const Matrix bias = random_matrix(1, 2, rng);
  check_gradient(bias, [&](const Tensor& x) {
    return sum_all(add_row_broadcast(Tensor::constant(a), x));
  });
  check_gradient(a, [&](const Tensor& x) {
    return sum_all(add_row_broadcast(x, Tensor::constant(bias)));
  });
}

TEST(AutogradGradCheck, Relu) {
  // Stay away from the kink at 0 for finite differences.
  const Matrix a = Matrix::from({{0.5, -0.7, 1.2, -0.1}});
  check_gradient(a, [](const Tensor& x) { return sum_all(relu(x)); });
}

TEST(AutogradGradCheck, TanhExp) {
  Rng rng(4);
  const Matrix a = random_matrix(2, 2, rng);
  check_gradient(a, [](const Tensor& x) { return sum_all(tanh_op(x)); });
  check_gradient(a, [](const Tensor& x) { return sum_all(exp_op(x)); }, 1e-5);
}

TEST(AutogradGradCheck, MeanRowsAndSelect) {
  Rng rng(5);
  const Matrix a = random_matrix(4, 3, rng);
  check_gradient(a, [](const Tensor& x) { return select(mean_rows(x), 0, 1); });
}

TEST(AutogradGradCheck, ConcatCols) {
  Rng rng(6);
  const Matrix a = random_matrix(2, 3, rng);
  const Matrix b = random_matrix(2, 2, rng);
  check_gradient(a, [&](const Tensor& x) {
    return sum_all(tanh_op(concat_cols(x, Tensor::constant(b))));
  });
  check_gradient(b, [&](const Tensor& x) {
    return sum_all(tanh_op(concat_cols(Tensor::constant(a), x)));
  });
}

TEST(AutogradGradCheck, ClampInteriorAndExterior) {
  // Interior entries differentiate to 1, clamped entries to 0; keep values
  // away from the clamp boundaries for the finite difference.
  const Matrix a = Matrix::from({{0.5, 2.0, -2.0, 0.9}});
  check_gradient(a, [](const Tensor& x) { return sum_all(clamp(x, -1.0, 1.0)); });
}

TEST(AutogradGradCheck, Min2RoutesGradient) {
  const Matrix a = Matrix::from({{0.5, 2.0}});
  const Matrix b = Matrix::from({{1.0, 1.0}});
  check_gradient(a, [&](const Tensor& x) {
    return sum_all(min2(x, Tensor::constant(b)));
  });
  check_gradient(b, [&](const Tensor& x) {
    return sum_all(min2(Tensor::constant(a), x));
  });
}

TEST(AutogradGradCheck, Average) {
  Rng rng(7);
  const Matrix a = random_matrix(1, 3, rng);
  check_gradient(a, [](const Tensor& x) {
    // average of {x, 2x}: gradient 1.5 per entry.
    return sum_all(average({x, scale(x, 2.0)}));
  });
}

TEST(AutogradGradCheck, MaskedLogSoftmax) {
  Rng rng(8);
  const Matrix logits = random_matrix(1, 5, rng);
  const std::vector<std::uint8_t> mask = {1, 0, 1, 1, 0};
  // Check the gradient of one selected unmasked log-prob.
  check_gradient(logits, [&](const Tensor& x) {
    return select(masked_log_softmax_row(x, mask), 0, 2);
  });
}

TEST(Autograd, MaskedLogSoftmaxValues) {
  const Tensor logits = Tensor::constant(Matrix::from({{1.0, 100.0, 1.0}}));
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  const Tensor logp = masked_log_softmax_row(logits, mask);
  // Masked entry ignored: the two unmasked logits are equal -> log(1/2).
  EXPECT_NEAR(logp.value().at(0, 0), std::log(0.5), 1e-12);
  EXPECT_NEAR(logp.value().at(0, 2), std::log(0.5), 1e-12);
  EXPECT_LT(logp.value().at(0, 1), -1e20);  // effectively -inf
}

TEST(Autograd, MaskedLogSoftmaxNumericallyStable) {
  const Tensor logits = Tensor::constant(Matrix::from({{1000.0, 999.0}}));
  const std::vector<std::uint8_t> mask = {1, 1};
  const Tensor logp = masked_log_softmax_row(logits, mask);
  EXPECT_TRUE(std::isfinite(logp.value().at(0, 0)));
  EXPECT_NEAR(std::exp(logp.value().at(0, 0)) + std::exp(logp.value().at(0, 1)), 1.0,
              1e-9);
}

TEST(Autograd, MaskedLogSoftmaxAllMaskedThrows) {
  const Tensor logits = Tensor::constant(Matrix(1, 3));
  EXPECT_THROW(masked_log_softmax_row(logits, {0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(masked_log_softmax_row(logits, {1, 1}), std::invalid_argument);
}

TEST(AutogradGradCheck, Transpose) {
  Rng rng(9);
  const Matrix a = random_matrix(2, 4, rng);
  check_gradient(a, [](const Tensor& x) {
    return sum_all(tanh_op(transpose_op(x)));
  });
}

TEST(AutogradGradCheck, LeakyRelu) {
  const Matrix a = Matrix::from({{0.5, -0.7, 1.2, -0.1}});
  check_gradient(a, [](const Tensor& x) { return sum_all(leaky_relu(x, 0.2)); });
}

TEST(Autograd, LeakyReluValues) {
  const Tensor y = leaky_relu(Tensor::constant(Matrix::from({{2.0, -2.0}})), 0.1);
  EXPECT_DOUBLE_EQ(y.value().at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(y.value().at(0, 1), -0.2);
}

TEST(AutogradGradCheck, MaskedSoftmaxRows) {
  Rng rng(10);
  const Matrix scores = random_matrix(3, 3, rng);
  Matrix mask(3, 3);
  mask.at(0, 0) = mask.at(0, 1) = 1.0;
  mask.at(1, 1) = mask.at(1, 2) = 1.0;
  mask.at(2, 0) = mask.at(2, 1) = mask.at(2, 2) = 1.0;
  check_gradient(scores, [&](const Tensor& x) {
    // A non-uniform reduction so every entry's gradient is exercised.
    const Tensor probs = masked_softmax_rows(x, mask);
    return sum_all(hadamard(probs, Tensor::constant(Matrix::from(
                                       {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}}))));
  });
}

TEST(Autograd, MaskedSoftmaxRowsValues) {
  Matrix mask(2, 2);
  mask.at(0, 0) = mask.at(0, 1) = 1.0;
  mask.at(1, 1) = 1.0;
  const Tensor probs =
      masked_softmax_rows(Tensor::constant(Matrix::from({{1.0, 1.0}, {5.0, -3.0}})), mask);
  EXPECT_NEAR(probs.value().at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(probs.value().at(0, 1), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(probs.value().at(1, 0), 0.0);  // masked despite logit 5
  EXPECT_NEAR(probs.value().at(1, 1), 1.0, 1e-12);
}

TEST(Autograd, MaskedSoftmaxRowsRejectsEmptyRow) {
  const Tensor scores = Tensor::constant(Matrix(2, 2));
  EXPECT_THROW(masked_softmax_rows(scores, Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(masked_softmax_rows(scores, Matrix(3, 3)), std::invalid_argument);
}

TEST(Autograd, DiamondGraphGradient) {
  // loss = sum((x*2) ⊙ (x*3)) = sum(6 x^2) -> grad = 12 x.
  Tensor x = Tensor::parameter(Matrix::from({{1.0, -2.0}}));
  Tensor loss = sum_all(hadamard(scale(x, 2.0), scale(x, 3.0)));
  loss.backward();
  EXPECT_NEAR(x.grad().at(0, 0), 12.0, 1e-12);
  EXPECT_NEAR(x.grad().at(0, 1), -24.0, 1e-12);
}

TEST(Autograd, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::parameter(Matrix(1, 1, 1.0));
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = scale(y, 1.0);
  sum_all(y).backward();
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 1.0);
}

}  // namespace
}  // namespace nptsn
