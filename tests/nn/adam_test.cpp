#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nptsn {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With a constant gradient, the bias-corrected first Adam step is exactly
  // -lr * g / (|g| + eps) ~ -lr * sign(g).
  Tensor p = Tensor::parameter(Matrix(1, 2, 1.0));
  Adam opt({p}, {.learning_rate = 0.1});
  p.mutable_grad() = Matrix::from({{2.0, -0.5}});
  opt.step();
  EXPECT_NEAR(p.value().at(0, 0), 1.0 - 0.1, 1e-6);
  EXPECT_NEAR(p.value().at(0, 1), 1.0 + 0.1, 1e-6);
}

TEST(Adam, ZeroGradClearsAccumulatedGradients) {
  Tensor p = Tensor::parameter(Matrix(1, 1, 0.0));
  Adam opt({p}, {});
  sum_all(scale(p, 3.0)).backward();
  EXPECT_DOUBLE_EQ(p.grad().at(0, 0), 3.0);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad().at(0, 0), 0.0);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = sum((x - target)^2), minimized at target.
  Tensor x = Tensor::parameter(Matrix(1, 3, 0.0));
  const Matrix target = Matrix::from({{1.0, -2.0, 0.5}});
  Adam opt({x}, {.learning_rate = 0.05});
  for (int iter = 0; iter < 500; ++iter) {
    opt.zero_grad();
    Tensor err = sub(x, Tensor::constant(target));
    sum_all(hadamard(err, err)).backward();
    opt.step();
  }
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(x.value().at(0, j), target.at(0, j), 1e-3);
}

TEST(Adam, AdaptsPerParameterScale) {
  // Two coordinates with very different gradient scales should both make
  // progress (the whole point of Adam vs. SGD).
  Tensor x = Tensor::parameter(Matrix(1, 2, 0.0));
  Adam opt({x}, {.learning_rate = 0.05});
  for (int iter = 0; iter < 400; ++iter) {
    opt.zero_grad();
    Tensor err = sub(x, Tensor::constant(Matrix::from({{100.0, 0.01}})));
    sum_all(hadamard(err, err)).backward();
    opt.step();
  }
  EXPECT_GT(x.value().at(0, 0), 10.0);          // moving toward 100
  EXPECT_NEAR(x.value().at(0, 1), 0.01, 5e-3);  // small target reached
}

TEST(Adam, MultipleParameterTensors) {
  Tensor a = Tensor::parameter(Matrix(1, 1, 5.0));
  Tensor b = Tensor::parameter(Matrix(1, 1, -5.0));
  Adam opt({a, b}, {.learning_rate = 0.1});
  for (int iter = 0; iter < 300; ++iter) {
    opt.zero_grad();
    Tensor loss = add(hadamard(a, a), hadamard(b, b));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(a.value().at(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(b.value().at(0, 0), 0.0, 1e-2);
}

TEST(Adam, RejectsBadConstruction) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
  Tensor c = Tensor::constant(Matrix(1, 1));
  EXPECT_THROW(Adam({c}, {}), std::invalid_argument);  // not a parameter
  Tensor p = Tensor::parameter(Matrix(1, 1));
  EXPECT_THROW(Adam({p}, {.learning_rate = 0.0}), std::invalid_argument);
}

TEST(Adam, StepWithZeroGradientKeepsValues) {
  Tensor p = Tensor::parameter(Matrix(1, 2, 3.0));
  Adam opt({p}, {});
  opt.zero_grad();
  opt.step();
  EXPECT_NEAR(p.value().at(0, 0), 3.0, 1e-9);
}

}  // namespace
}  // namespace nptsn
