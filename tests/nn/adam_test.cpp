#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nptsn {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With a constant gradient, the bias-corrected first Adam step is exactly
  // -lr * g / (|g| + eps) ~ -lr * sign(g).
  Tensor p = Tensor::parameter(Matrix(1, 2, 1.0));
  Adam opt({p}, {.learning_rate = 0.1});
  p.mutable_grad() = Matrix::from({{2.0, -0.5}});
  opt.step();
  EXPECT_NEAR(p.value().at(0, 0), 1.0 - 0.1, 1e-6);
  EXPECT_NEAR(p.value().at(0, 1), 1.0 + 0.1, 1e-6);
}

TEST(Adam, ZeroGradClearsAccumulatedGradients) {
  Tensor p = Tensor::parameter(Matrix(1, 1, 0.0));
  Adam opt({p}, {});
  sum_all(scale(p, 3.0)).backward();
  EXPECT_DOUBLE_EQ(p.grad().at(0, 0), 3.0);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad().at(0, 0), 0.0);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = sum((x - target)^2), minimized at target.
  Tensor x = Tensor::parameter(Matrix(1, 3, 0.0));
  const Matrix target = Matrix::from({{1.0, -2.0, 0.5}});
  Adam opt({x}, {.learning_rate = 0.05});
  for (int iter = 0; iter < 500; ++iter) {
    opt.zero_grad();
    Tensor err = sub(x, Tensor::constant(target));
    sum_all(hadamard(err, err)).backward();
    opt.step();
  }
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(x.value().at(0, j), target.at(0, j), 1e-3);
}

TEST(Adam, AdaptsPerParameterScale) {
  // Two coordinates with very different gradient scales should both make
  // progress (the whole point of Adam vs. SGD).
  Tensor x = Tensor::parameter(Matrix(1, 2, 0.0));
  Adam opt({x}, {.learning_rate = 0.05});
  for (int iter = 0; iter < 400; ++iter) {
    opt.zero_grad();
    Tensor err = sub(x, Tensor::constant(Matrix::from({{100.0, 0.01}})));
    sum_all(hadamard(err, err)).backward();
    opt.step();
  }
  EXPECT_GT(x.value().at(0, 0), 10.0);          // moving toward 100
  EXPECT_NEAR(x.value().at(0, 1), 0.01, 5e-3);  // small target reached
}

TEST(Adam, MultipleParameterTensors) {
  Tensor a = Tensor::parameter(Matrix(1, 1, 5.0));
  Tensor b = Tensor::parameter(Matrix(1, 1, -5.0));
  Adam opt({a, b}, {.learning_rate = 0.1});
  for (int iter = 0; iter < 300; ++iter) {
    opt.zero_grad();
    Tensor loss = add(hadamard(a, a), hadamard(b, b));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(a.value().at(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(b.value().at(0, 0), 0.0, 1e-2);
}

TEST(Adam, RejectsBadConstruction) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
  Tensor c = Tensor::constant(Matrix(1, 1));
  EXPECT_THROW(Adam({c}, {}), std::invalid_argument);  // not a parameter
  Tensor p = Tensor::parameter(Matrix(1, 1));
  EXPECT_THROW(Adam({p}, {.learning_rate = 0.0}), std::invalid_argument);
}

TEST(Adam, StateExportImportKeepsNextStepBitIdentical) {
  auto make = [](std::vector<Tensor>* params) {
    params->clear();
    params->push_back(Tensor::parameter(Matrix(2, 2, 1.5)));
    params->push_back(Tensor::parameter(Matrix(1, 4, -0.5)));
    return Adam(*params, {.learning_rate = 5e-2});
  };
  auto apply_gradient = [](Adam& opt, std::vector<Tensor>& params, double g) {
    opt.zero_grad();
    for (auto& p : params) p.mutable_grad() = Matrix(p.rows(), p.cols(), g);
    opt.step();
  };

  std::vector<Tensor> params_a;
  Adam a = make(&params_a);
  apply_gradient(a, params_a, 0.4);
  apply_gradient(a, params_a, -0.2);  // biased moments, step_count = 2

  // A fresh optimizer over identical parameter VALUES but zero state...
  std::vector<Tensor> params_b;
  Adam b = make(&params_b);
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    params_b[i].mutable_value() = params_a[i].value();
  }
  // ...diverges on the next step without the state, and matches with it.
  b.import_state(a.export_state());
  apply_gradient(a, params_a, 0.7);
  apply_gradient(b, params_b, 0.7);
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    const Matrix& va = params_a[i].value();
    const Matrix& vb = params_b[i].value();
    ASSERT_TRUE(vb.same_shape(va));
    for (int k = 0; k < va.size(); ++k) EXPECT_DOUBLE_EQ(vb.data()[k], va.data()[k]);
  }
}

TEST(Adam, ImportStateValidatesShapesAndCounts) {
  std::vector<Tensor> params = {Tensor::parameter(Matrix(2, 2, 1.0))};
  Adam opt(params, {});

  Adam::State wrong_count;  // no moment matrices at all
  EXPECT_THROW(opt.import_state(wrong_count), std::invalid_argument);

  Adam::State wrong_shape;
  wrong_shape.m = {Matrix(3, 2)};
  wrong_shape.v = {Matrix(3, 2)};
  EXPECT_THROW(opt.import_state(wrong_shape), std::invalid_argument);

  Adam::State negative = opt.export_state();
  negative.step_count = -1;
  EXPECT_THROW(opt.import_state(negative), std::invalid_argument);
}

TEST(Adam, StepWithZeroGradientKeepsValues) {
  Tensor p = Tensor::parameter(Matrix(1, 2, 3.0));
  Adam opt({p}, {});
  opt.zero_grad();
  opt.step();
  EXPECT_NEAR(p.value().at(0, 0), 3.0, 1e-9);
}

}  // namespace
}  // namespace nptsn
