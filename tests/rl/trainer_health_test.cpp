// Self-healing trainer: numeric sentinels, divergence rollback, and worker
// quarantine, driven through the fault-injection harness. The two invariants
// everything here leans on:
//   1. honest runs are bit-identical with the supervisor on or off, and
//   2. a rollback restores the exact bytes of the last-good epoch boundary.
#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "testing/corridor_env.hpp"
#include "testing/fault_injector.hpp"

namespace nptsn {
namespace {

using testing::CorridorEnv;
using testing::corridor_net_config;
using testing::corridor_trainer_config;
using nptsn::testing::FaultTrigger;
using nptsn::testing::FaultyEnv;
using nptsn::testing::ScopedNumericFault;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nptsn_health_" + name;
}

void remove_all(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}

TrainerConfig health_config(int workers = 1) {
  auto c = corridor_trainer_config();
  c.epochs = 4;
  c.num_workers = workers;
  c.health.enabled = true;
  c.health.max_rollbacks = 2;
  return c;
}

// The core blob of the v2 checkpoint payload (blob(core) + blob(health)):
// the complete training state, independent of what the ledger recorded.
std::vector<std::uint8_t> core_bytes(const Trainer& trainer) {
  const auto state = trainer.save_state();  // keep alive: the reader borrows it
  ByteReader in(state);
  return in.blob();
}

// A corridor environment that reports an all-masked action row from the
// trigger's action_mask() call on, until the next reset — the SOAG dead-end
// shape the quarantine path must absorb.
class MaskedAfterEnv final : public Environment {
 public:
  explicit MaskedAfterEnv(std::shared_ptr<FaultTrigger> trigger)
      : trigger_(std::move(trigger)) {}

  int num_actions() const override { return inner_.num_actions(); }
  Observation observe() const override { return inner_.observe(); }

  const std::vector<std::uint8_t>& action_mask() const override {
    if (!masked_ && trigger_ && trigger_->fire()) masked_ = true;
    return masked_ ? zero_mask_ : inner_.action_mask();
  }

  StepResult step(int action) override { return inner_.step(action); }

  void reset() override {
    masked_ = false;
    inner_.reset();
  }

  bool snapshot_supported() const override { return true; }
  void save_snapshot(ByteWriter& out) const override { inner_.save_snapshot(out); }
  void load_snapshot(ByteReader& in) override {
    masked_ = false;
    inner_.load_snapshot(in);
  }

 private:
  CorridorEnv inner_;
  std::shared_ptr<FaultTrigger> trigger_;
  mutable bool masked_ = false;
  std::vector<std::uint8_t> zero_mask_ = {0, 0};
};

// --- honest runs -------------------------------------------------------------

class SupervisorBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(SupervisorBitIdentity, HonestRunIdenticalSupervisorOnOff) {
  const int workers = GetParam();
  auto run = [workers](bool enabled) {
    Rng rng(21);
    ActorCritic net(corridor_net_config(), rng);
    auto config = health_config(workers);
    config.health.enabled = enabled;
    // Arm every heuristic with thresholds an honest run stays inside, so the
    // full sentinel sweep executes and still changes nothing.
    config.health.max_grad_norm = 1e6;
    config.health.max_approx_kl = 1e6;
    config.health.min_mean_entropy = 1e-9;
    config.health.max_critic_loss = 1e9;
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    const auto history = trainer.train();
    return std::make_pair(trainer.save_state(), history);
  };
  const auto [off_state, off_history] = run(false);
  const auto [on_state, on_history] = run(true);

  // The whole checkpoint payload matches byte for byte: same weights, same
  // optimizer moments, same RNG streams, and an equally empty health section.
  EXPECT_EQ(off_state, on_state);
  ASSERT_EQ(off_history.size(), on_history.size());
  for (std::size_t i = 0; i < off_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(off_history[i].actor_loss, on_history[i].actor_loss);
    EXPECT_DOUBLE_EQ(off_history[i].mean_episode_reward,
                     on_history[i].mean_episode_reward);
    EXPECT_EQ(off_history[i].rollbacks, 0);
    EXPECT_EQ(off_history[i].quarantined_workers, 0);
  }
  // The supervisor reports entropy; the plain run leaves it zero.
  EXPECT_DOUBLE_EQ(off_history[0].mean_entropy, 0.0);
  EXPECT_GT(on_history[0].mean_entropy, 0.0);
}

TEST_P(SupervisorBitIdentity, RollbackRestoresLastGoodStateExactly) {
  const int workers = GetParam();
  // Reference: an honest 2-epoch run with the supervisor on.
  std::vector<std::uint8_t> reference;
  {
    Rng rng(22);
    ActorCritic net(corridor_net_config(), rng);
    auto config = health_config(workers);
    config.epochs = 2;
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    trainer.train();
    reference = core_bytes(trainer);
  }

  // Faulted: same seed, but the 3rd epoch boundary poisons a weight and the
  // rollback budget is zero, so train() must stop with exactly the state the
  // end of epoch 1 had — bit for bit, for any worker count.
  Rng rng(22);
  ActorCritic net(corridor_net_config(), rng);
  auto config = health_config(workers);
  config.health.max_rollbacks = 0;
  auto trigger = std::make_shared<FaultTrigger>(3);
  ScopedNumericFault fault(ScopedNumericFault::Target::kWeights, trigger);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();

  EXPECT_EQ(history.size(), 2u);
  EXPECT_EQ(trainer.next_epoch(), 2);
  EXPECT_NE(trainer.stopped_reason().find("diverged: non_finite_parameter"),
            std::string::npos);
  EXPECT_EQ(trainer.ledger().count(AnomalyCode::kNonFiniteParameter), 1);
  EXPECT_EQ(core_bytes(trainer), reference);
}

INSTANTIATE_TEST_SUITE_P(Workers, SupervisorBitIdentity, ::testing::Values(1, 2, 4));

// --- transient numeric faults ------------------------------------------------

struct NumericFaultCase {
  ScopedNumericFault::Target target;
  AnomalyCode expected;
  const char* name;
};

class TransientNumericFault : public ::testing::TestWithParam<NumericFaultCase> {};

TEST_P(TransientNumericFault, RollsBackAndCompletesTheRun) {
  const auto& param = GetParam();
  Rng rng(23);
  ActorCritic net(corridor_net_config(), rng);
  const auto config = health_config(2);
  auto trigger = std::make_shared<FaultTrigger>(2);  // 2nd epoch boundary, once
  ScopedNumericFault fault(param.target, trigger);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();

  // One rollback absorbed the fault; the run still completed every epoch.
  EXPECT_TRUE(trainer.stopped_reason().empty()) << trainer.stopped_reason();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(trainer.total_rollbacks(), 1);
  EXPECT_EQ(trainer.ledger().count(param.expected), 1);
  EXPECT_EQ(trainer.ledger().entries()[0].epoch, 1);
  EXPECT_EQ(history[1].rollbacks, 1);  // the retried epoch reports its cost
  EXPECT_EQ(history[0].rollbacks, 0);
  // The healed network is finite end to end.
  EXPECT_FALSE(find_non_finite_value(net.all_parameters()).first);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, TransientNumericFault,
    ::testing::Values(
        NumericFaultCase{ScopedNumericFault::Target::kWeights,
                         AnomalyCode::kNonFiniteParameter, "weights"},
        NumericFaultCase{ScopedNumericFault::Target::kGradients,
                         AnomalyCode::kNonFiniteGradient, "gradients"},
        NumericFaultCase{ScopedNumericFault::Target::kAdamMoments,
                         AnomalyCode::kNonFiniteAdamMoment, "adam_moments"}),
    [](const ::testing::TestParamInfo<NumericFaultCase>& info) {
      return info.param.name;
    });

TEST(TrainerHealth, FaultedRunIsDeterministic) {
  // Same seed + same injected fault = same rollback, same perturbed retry,
  // same final bytes. The self-healing path is as reproducible as training.
  auto run = [] {
    Rng rng(24);
    ActorCritic net(corridor_net_config(), rng);
    auto trigger = std::make_shared<FaultTrigger>(2);
    ScopedNumericFault fault(ScopedNumericFault::Target::kWeights, trigger);
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                    health_config(2));
    trainer.train();
    return trainer.save_state();
  };
  EXPECT_EQ(run(), run());
}

// --- persistent faults -------------------------------------------------------

TEST(TrainerHealth, PersistentFaultExhaustsRollbacksAndStopsDiverged) {
  Rng rng(25);
  ActorCritic net(corridor_net_config(), rng);
  const auto config = health_config(1);  // max_rollbacks = 2
  auto trigger =
      std::make_shared<FaultTrigger>(1, FaultTrigger::Repeat::kAlways);
  ScopedNumericFault fault(ScopedNumericFault::Target::kWeights, trigger);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto initial = core_bytes(trainer);
  const auto history = trainer.train();

  // Initial attempt + 2 rollback retries all tripped, then a graceful stop.
  EXPECT_TRUE(history.empty());
  EXPECT_EQ(trainer.total_rollbacks(), 2);
  EXPECT_EQ(trainer.ledger().count(AnomalyCode::kNonFiniteParameter), 3);
  EXPECT_NE(trainer.stopped_reason().find("diverged: non_finite_parameter"),
            std::string::npos);
  EXPECT_NE(trainer.stopped_reason().find("after 2 rollbacks"), std::string::npos);
  // The final restore leaves the untouched last-good (here: initial) state.
  EXPECT_EQ(core_bytes(trainer), initial);
}

TEST(TrainerHealth, DivergenceHeuristicStopsTheRun) {
  Rng rng(26);
  ActorCritic net(corridor_net_config(), rng);
  auto config = health_config(1);
  config.health.max_rollbacks = 1;
  // An impossible entropy floor (the 2-action corridor tops out at ln 2):
  // every epoch is "diverged policy" by definition.
  config.health.min_mean_entropy = 10.0;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();

  EXPECT_TRUE(history.empty());
  EXPECT_EQ(trainer.ledger().count(AnomalyCode::kEntropyCollapse), 2);
  EXPECT_NE(trainer.stopped_reason().find("diverged: entropy_collapse"),
            std::string::npos);
}

// --- worker quarantine -------------------------------------------------------

TEST(TrainerHealth, ThrowingWorkerIsQuarantinedAndTheEpochCompletes) {
  Rng rng(27);
  ActorCritic net(corridor_net_config(), rng);
  const auto config = health_config(2);  // 64 steps per worker
  auto trigger = std::make_shared<FaultTrigger>(100);  // mid-epoch-0 step
  Trainer trainer(
      net,
      [&] {
        return std::make_unique<FaultyEnv>(std::make_unique<CorridorEnv>(), trigger);
      },
      config);
  const auto history = trainer.train();

  // The faulted worker's partial rollout was discarded; the epoch went
  // through with the surviving worker's half of the batch, and training
  // carried on at full strength afterwards.
  ASSERT_EQ(history.size(), 4u);
  EXPECT_TRUE(trainer.stopped_reason().empty()) << trainer.stopped_reason();
  EXPECT_EQ(history[0].steps, 64);
  EXPECT_EQ(history[0].quarantined_workers, 1);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i].steps, 128);
    EXPECT_EQ(history[i].quarantined_workers, 0);
  }
  EXPECT_EQ(trainer.total_quarantined(), 1);
  ASSERT_EQ(trainer.ledger().count(AnomalyCode::kWorkerException), 1);
  const Anomaly& incident = trainer.ledger().entries()[0];
  EXPECT_EQ(incident.epoch, 0);
  EXPECT_TRUE(incident.worker == 0 || incident.worker == 1);
  EXPECT_NE(incident.detail.find("injected environment fault"), std::string::npos);
}

TEST(TrainerHealth, AllActionsMaskedIsQuarantinedNotFatal) {
  Rng rng(28);
  ActorCritic net(corridor_net_config(), rng);
  const auto config = health_config(2);
  auto trigger = std::make_shared<FaultTrigger>(90);
  Trainer trainer(
      net, [&] { return std::make_unique<MaskedAfterEnv>(trigger); }, config);
  const auto history = trainer.train();

  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(trainer.ledger().count(AnomalyCode::kAllActionsMasked), 1);
  EXPECT_EQ(trainer.total_quarantined(), 1);
  EXPECT_TRUE(trainer.stopped_reason().empty()) << trainer.stopped_reason();
}

TEST(TrainerHealth, WithoutSupervisorWorkerFaultStillPropagates) {
  // The quarantine is opt-in: supervisor off preserves the historical
  // fail-fast contract (modulo max_epoch_retries, tested elsewhere).
  Rng rng(29);
  ActorCritic net(corridor_net_config(), rng);
  auto config = health_config(1);
  config.health.enabled = false;
  auto trigger = std::make_shared<FaultTrigger>(10);
  Trainer trainer(
      net,
      [&] {
        return std::make_unique<FaultyEnv>(std::make_unique<CorridorEnv>(), trigger);
      },
      config);
  EXPECT_THROW(trainer.train(), nptsn::testing::InjectedFault);
}

// --- persistence -------------------------------------------------------------

TEST(TrainerHealth, LedgerAndCountersSurviveCheckpointResume) {
  const auto path = temp_path("ledger_resume.ckpt");
  remove_all(path);
  auto config = health_config(1);
  config.checkpoint_path = path;

  {
    Rng rng(30);
    ActorCritic net(corridor_net_config(), rng);
    auto trigger = std::make_shared<FaultTrigger>(2);
    ScopedNumericFault fault(ScopedNumericFault::Target::kWeights, trigger);
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    trainer.train();
    EXPECT_EQ(trainer.total_rollbacks(), 1);
    EXPECT_EQ(trainer.ledger().total(), 1);
  }

  // A fresh process resumes from the file: the incident history comes back.
  Rng rng(31);
  ActorCritic net(corridor_net_config(), rng);
  Trainer resumed(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  resumed.train();  // nothing left to do; resume happens inside train()
  EXPECT_EQ(resumed.next_epoch(), 4);
  EXPECT_EQ(resumed.total_rollbacks(), 1);
  ASSERT_EQ(resumed.ledger().total(), 1);
  EXPECT_EQ(resumed.ledger().entries()[0].code, AnomalyCode::kNonFiniteParameter);
  remove_all(path);
}

}  // namespace
}  // namespace nptsn
