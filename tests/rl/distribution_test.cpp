#include "rl/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace nptsn {
namespace {

TEST(MaskedProbabilities, SoftmaxOverUnmaskedOnly) {
  const Matrix logits = Matrix::from({{0.0, 0.0, 100.0}});
  const auto probs = masked_probabilities(logits, {1, 1, 0});
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(probs[2], 0.0);  // masked despite the huge logit
}

TEST(MaskedProbabilities, SumsToOne) {
  const Matrix logits = Matrix::from({{1.0, -2.0, 0.3, 4.0}});
  const auto probs = masked_probabilities(logits, {1, 0, 1, 1});
  double sum = 0.0;
  for (const double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MaskedProbabilities, StableUnderLargeLogits) {
  const Matrix logits = Matrix::from({{1000.0, 999.0}});
  const auto probs = masked_probabilities(logits, {1, 1});
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_GT(probs[0], probs[1]);
}

TEST(MaskedProbabilities, AllMaskedThrows) {
  const Matrix logits = Matrix::from({{1.0, 2.0}});
  EXPECT_THROW(masked_probabilities(logits, {0, 0}), std::invalid_argument);
}

TEST(MaskedProbabilities, AllMaskedThrowsTypedRecoverableError) {
  // The trainer's worker-quarantine path depends on catching this exact type
  // (and it must stay an invalid_argument for supervisor-less callers).
  const Matrix logits = Matrix::from({{1.0, 2.0}});
  try {
    masked_probabilities(logits, {0, 0});
    FAIL() << "expected MaskedDistributionError";
  } catch (const MaskedDistributionError& e) {
    EXPECT_NE(std::string(e.what()).find("all actions are masked"),
              std::string::npos);
  }
}

TEST(MaskedProbabilities, NonFiniteLogitsUnderMaskThrowTyped) {
  const Matrix logits =
      Matrix::from({{std::numeric_limits<double>::quiet_NaN(), 2.0}});
  // NaN under the mask poisons the softmax; a masked-out NaN does not.
  EXPECT_THROW(masked_probabilities(logits, {1, 1}), MaskedDistributionError);
  const auto probs = masked_probabilities(logits, {0, 1});
  EXPECT_DOUBLE_EQ(probs[1], 1.0);
}

TEST(ArgmaxMasked, AllMaskedThrowsTypedError) {
  const Matrix logits = Matrix::from({{1.0, 2.0}});
  EXPECT_THROW(argmax_masked(logits, {0, 0}), MaskedDistributionError);
}

TEST(EntropyOf, MatchesEntropyMasked) {
  const Matrix logits = Matrix::from({{0.2, -1.0, 2.0}});
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  EXPECT_DOUBLE_EQ(entropy_of(masked_probabilities(logits, mask)),
                   entropy_masked(logits, mask));
}

TEST(MaskedProbabilities, MaskSizeChecked) {
  const Matrix logits = Matrix::from({{1.0, 2.0}});
  EXPECT_THROW(masked_probabilities(logits, {1}), std::invalid_argument);
}

TEST(SampleMasked, NeverPicksMaskedAction) {
  Rng rng(1);
  const Matrix logits = Matrix::from({{5.0, 5.0, 5.0, 5.0}});
  const std::vector<std::uint8_t> mask = {0, 1, 0, 1};
  for (int i = 0; i < 500; ++i) {
    const auto s = sample_masked(logits, mask, rng);
    EXPECT_TRUE(s.action == 1 || s.action == 3);
    EXPECT_NEAR(s.log_prob, std::log(0.5), 1e-12);
  }
}

TEST(SampleMasked, FrequenciesFollowLogits) {
  Rng rng(2);
  // exp(0) : exp(log 3) = 1 : 3.
  const Matrix logits = Matrix::from({{0.0, std::log(3.0)}});
  int count1 = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    if (sample_masked(logits, {1, 1}, rng).action == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(SampleMasked, LogProbMatchesDistribution) {
  Rng rng(3);
  const Matrix logits = Matrix::from({{0.2, -1.0, 2.0}});
  const std::vector<std::uint8_t> mask = {1, 1, 1};
  const auto probs = masked_probabilities(logits, mask);
  for (int i = 0; i < 50; ++i) {
    const auto s = sample_masked(logits, mask, rng);
    EXPECT_NEAR(s.log_prob, std::log(probs[static_cast<std::size_t>(s.action)]), 1e-12);
  }
}

TEST(ArgmaxMasked, PicksLargestUnmasked) {
  const Matrix logits = Matrix::from({{1.0, 9.0, 3.0}});
  EXPECT_EQ(argmax_masked(logits, {1, 1, 1}), 1);
  EXPECT_EQ(argmax_masked(logits, {1, 0, 1}), 2);
  EXPECT_EQ(argmax_masked(logits, {1, 0, 0}), 0);
}

TEST(ArgmaxMasked, TieBreaksTowardLowestIndex) {
  const Matrix logits = Matrix::from({{2.0, 2.0, 2.0}});
  EXPECT_EQ(argmax_masked(logits, {1, 1, 1}), 0);
  EXPECT_EQ(argmax_masked(logits, {0, 1, 1}), 1);
}

TEST(EntropyMasked, UniformMaximizesEntropy) {
  const Matrix uniform = Matrix::from({{1.0, 1.0, 1.0, 1.0}});
  EXPECT_NEAR(entropy_masked(uniform, {1, 1, 1, 1}), std::log(4.0), 1e-12);
  // Masking two actions reduces the support.
  EXPECT_NEAR(entropy_masked(uniform, {1, 1, 0, 0}), std::log(2.0), 1e-12);
}

TEST(EntropyMasked, DeterministicDistributionHasZeroEntropy) {
  const Matrix peaked = Matrix::from({{100.0, 0.0}});
  EXPECT_NEAR(entropy_masked(peaked, {1, 1}), 0.0, 1e-9);
  EXPECT_NEAR(entropy_masked(peaked, {1, 0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace nptsn
