#include "rl/buffer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nptsn {
namespace {

StepRecord step_with(double reward, double value) {
  StepRecord s;
  s.reward = reward;
  s.value = value;
  s.action = 0;
  s.mask = {1};
  return s;
}

TEST(Buffer, GaeMatchesHandComputation) {
  // gamma = 0.5, lambda = 0.5 for easy arithmetic; terminal path.
  TrajectoryBuffer buffer(0.5, 0.5);
  buffer.store(step_with(/*reward=*/1.0, /*value=*/0.0));
  buffer.store(step_with(2.0, 1.0));
  buffer.finish_path(0.0);
  const auto batch = buffer.take();

  // delta_1 = 2 + 0.5*0 - 1 = 1;   A_1 = 1
  // delta_0 = 1 + 0.5*1 - 0 = 1.5; A_0 = 1.5 + 0.25*1 = 1.75
  // Raw advantages {1.75, 1}; normalized: mean 1.375, std 0.375.
  ASSERT_EQ(batch.advantages.size(), 2u);
  EXPECT_NEAR(batch.advantages[0], 1.0, 1e-12);
  EXPECT_NEAR(batch.advantages[1], -1.0, 1e-12);

  // Returns (rewards-to-go, gamma 0.5): r1 = 2; r0 = 1 + 0.5*2 = 2.
  EXPECT_NEAR(batch.returns[0], 2.0, 1e-12);
  EXPECT_NEAR(batch.returns[1], 2.0, 1e-12);
}

TEST(Buffer, BootstrapValueEntersTail) {
  TrajectoryBuffer buffer(1.0, 1.0);
  buffer.store(step_with(1.0, 0.0));
  buffer.finish_path(/*last_value=*/10.0);  // cut-off path
  const auto batch = buffer.take();
  // Return = 1 + 10, advantage (pre-normalization) = 11 - 0 = 11.
  EXPECT_NEAR(batch.returns[0], 11.0, 1e-12);
  // Single-element batch normalizes to 0 (mean removed, unit-std guard).
  EXPECT_NEAR(batch.advantages[0], 0.0, 1e-12);
}

TEST(Buffer, MultiplePathsIndependent) {
  TrajectoryBuffer buffer(0.9, 1.0);
  buffer.store(step_with(1.0, 0.0));
  buffer.finish_path(0.0);
  buffer.store(step_with(5.0, 0.0));
  buffer.finish_path(0.0);
  const auto batch = buffer.take();
  ASSERT_EQ(batch.steps.size(), 2u);
  // Returns do not leak across the path boundary.
  EXPECT_NEAR(batch.returns[0], 1.0, 1e-12);
  EXPECT_NEAR(batch.returns[1], 5.0, 1e-12);
}

TEST(Buffer, AdvantagesNormalizedToZeroMeanUnitStd) {
  TrajectoryBuffer buffer(0.99, 0.95);
  for (int i = 0; i < 10; ++i) {
    buffer.store(step_with(static_cast<double>(i % 4), 0.5));
    if (i % 3 == 2) buffer.finish_path(0.0);
  }
  buffer.finish_path(0.25);
  const auto batch = buffer.take();
  double mean = 0.0;
  for (const double a : batch.advantages) mean += a;
  mean /= static_cast<double>(batch.advantages.size());
  double var = 0.0;
  for (const double a : batch.advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(batch.advantages.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(std::sqrt(var), 1.0, 1e-9);
}

TEST(Buffer, TakeRequiresClosedPaths) {
  TrajectoryBuffer buffer(0.99, 0.95);
  buffer.store(step_with(1.0, 0.0));
  EXPECT_TRUE(buffer.has_open_path());
  EXPECT_THROW(buffer.take(), std::invalid_argument);
  buffer.finish_path(0.0);
  EXPECT_FALSE(buffer.has_open_path());
  EXPECT_NO_THROW(buffer.take());
}

TEST(Buffer, TakeClearsState) {
  TrajectoryBuffer buffer(0.99, 0.95);
  buffer.store(step_with(1.0, 0.0));
  buffer.finish_path(0.0);
  (void)buffer.take();
  EXPECT_EQ(buffer.size(), 0u);
  buffer.store(step_with(2.0, 0.0));
  buffer.finish_path(0.0);
  const auto batch = buffer.take();
  EXPECT_EQ(batch.steps.size(), 1u);
}

TEST(Buffer, FinishEmptyPathIsNoOp) {
  TrajectoryBuffer buffer(0.99, 0.95);
  buffer.finish_path(0.0);
  buffer.store(step_with(1.0, 0.0));
  buffer.finish_path(0.0);
  buffer.finish_path(0.0);  // double finish: second is a no-op
  const auto batch = buffer.take();
  EXPECT_EQ(batch.steps.size(), 1u);
}

TEST(Buffer, AbsorbMergesWorkerBuffers) {
  TrajectoryBuffer a(0.5, 1.0);
  a.store(step_with(1.0, 0.0));
  a.finish_path(0.0);
  TrajectoryBuffer b(0.5, 1.0);
  b.store(step_with(3.0, 0.0));
  b.store(step_with(4.0, 0.0));
  b.finish_path(0.0);

  a.absorb(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  const auto batch = a.take();
  // Worker b's returns preserved: r = 3 + 0.5*4 = 5, then 4.
  EXPECT_NEAR(batch.returns[1], 5.0, 1e-12);
  EXPECT_NEAR(batch.returns[2], 4.0, 1e-12);
}

TEST(Buffer, AbsorbRejectsOpenPath) {
  TrajectoryBuffer a(0.9, 0.9);
  TrajectoryBuffer b(0.9, 0.9);
  b.store(step_with(1.0, 0.0));
  EXPECT_THROW(a.absorb(std::move(b)), std::invalid_argument);
}

TEST(Buffer, ConstructorValidatesHyperparameters) {
  EXPECT_THROW(TrajectoryBuffer(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(TrajectoryBuffer(1.1, 0.5), std::invalid_argument);
  EXPECT_THROW(TrajectoryBuffer(0.9, -0.1), std::invalid_argument);
  EXPECT_THROW(TrajectoryBuffer(0.9, 1.5), std::invalid_argument);
}

TEST(Buffer, TakeWithOpenPathThrows) {
  TrajectoryBuffer buffer(0.9, 0.9);
  buffer.store(step_with(1.0, 0.0));
  ASSERT_TRUE(buffer.has_open_path());
  EXPECT_THROW(buffer.take(), std::invalid_argument);
  // The buffer is still intact: closing the path makes take() work.
  buffer.finish_path(0.0);
  EXPECT_EQ(buffer.take().steps.size(), 1u);
}

TEST(Buffer, AbsorbEmptyBufferIsNoOp) {
  TrajectoryBuffer a(0.9, 0.9);
  a.store(step_with(1.0, 0.0));
  a.finish_path(0.0);
  TrajectoryBuffer empty(0.9, 0.9);
  a.absorb(std::move(empty));
  const auto batch = a.take();
  EXPECT_EQ(batch.steps.size(), 1u);
  EXPECT_EQ(batch.advantages.size(), 1u);
  EXPECT_EQ(batch.returns.size(), 1u);
}

TEST(Buffer, FinishPathOnZeroLengthPathIsNoOp) {
  TrajectoryBuffer buffer(0.9, 0.9);
  buffer.finish_path(0.0);  // nothing stored at all
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.has_open_path());

  buffer.store(step_with(2.0, 0.5));
  buffer.finish_path(0.0);
  const auto returns_once = buffer.take().returns;
  ASSERT_EQ(returns_once.size(), 1u);

  // Double finish (e.g. an env reset right after an episode end) must not
  // add a phantom path or disturb the stored ones.
  buffer.store(step_with(2.0, 0.5));
  buffer.finish_path(0.0);
  buffer.finish_path(0.0);
  const auto batch = buffer.take();
  ASSERT_EQ(batch.returns.size(), 1u);
  EXPECT_NEAR(batch.returns[0], returns_once[0], 1e-12);
}

TEST(Buffer, ConstantAdvantageNormalizesToZeroWithStdGuard) {
  TrajectoryBuffer buffer(1.0, 1.0);
  // Two identical single-step paths -> identical raw advantages.
  for (int i = 0; i < 2; ++i) {
    buffer.store(step_with(1.0, 0.0));
    buffer.finish_path(0.0);
  }
  const auto batch = buffer.take();
  for (const double a : batch.advantages) EXPECT_NEAR(a, 0.0, 1e-12);
}

}  // namespace
}  // namespace nptsn
