#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "testing/corridor_env.hpp"

namespace nptsn {
namespace {

using testing::CorridorEnv;
using testing::corridor_net_config;
using testing::corridor_trainer_config;

TEST(Trainer, LearnsTheCorridor) {
  Rng rng(1);
  ActorCritic net(corridor_net_config(), rng);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                  corridor_trainer_config());
  const auto history = trainer.train();
  ASSERT_EQ(history.size(), 12u);
  // The mean episode return must approach the optimum of 0.8.
  EXPECT_GT(history.back().mean_episode_reward, 0.5);
  // And improve substantially over the first epoch.
  EXPECT_GT(history.back().mean_episode_reward,
            history.front().mean_episode_reward);
}

TEST(Trainer, EpochStatsPopulated) {
  Rng rng(2);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 2;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  int callbacks = 0;
  const auto history = trainer.train([&](const EpochStats& stats) {
    EXPECT_EQ(stats.epoch, callbacks);
    EXPECT_EQ(stats.steps, 128);
    EXPECT_GT(stats.episodes_finished, 0);
    ++callbacks;
  });
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(history.size(), 2u);
}

TEST(Trainer, DeterministicAcrossRuns) {
  auto run = [] {
    Rng rng(7);
    ActorCritic net(corridor_net_config(), rng);
    auto config = corridor_trainer_config();
    config.epochs = 3;
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    return trainer.train();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_episode_reward, b[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(a[i].actor_loss, b[i].actor_loss);
  }
}

TEST(Trainer, MultipleWorkersCollectFullBatch) {
  Rng rng(4);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 2;
  config.num_workers = 4;
  config.steps_per_epoch = 128;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();
  for (const auto& stats : history) EXPECT_EQ(stats.steps, 128);
}

TEST(Trainer, MultipleWorkersStillLearn) {
  Rng rng(5);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.num_workers = 2;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();
  EXPECT_GT(history.back().mean_episode_reward, 0.4);
}

TEST(Trainer, ValidatesConfiguration) {
  Rng rng(6);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 0;
  EXPECT_THROW(
      Trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config),
      std::invalid_argument);
  config = corridor_trainer_config();
  config.num_workers = 0;
  EXPECT_THROW(
      Trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config),
      std::invalid_argument);
}

TEST(Trainer, RejectsActionCountMismatch) {
  auto c = corridor_net_config();
  c.num_actions = 3;  // env has 2
  Rng rng(7);
  ActorCritic net(c, rng);
  EXPECT_THROW(Trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                       corridor_trainer_config()),
               std::invalid_argument);
}

TEST(Trainer, RejectsNullEnvironment) {
  Rng rng(8);
  ActorCritic net(corridor_net_config(), rng);
  EXPECT_THROW(Trainer(net, [] { return std::unique_ptr<Environment>(); },
                       corridor_trainer_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
