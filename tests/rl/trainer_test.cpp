#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace nptsn {
namespace {

// A 5-position corridor: the agent starts at 0 and must reach 4. Action 0 =
// left, action 1 = right. Reward -0.05 per step, +1.0 on arrival. Optimal
// return = 4 * (-0.05) + 1 = 0.8.
class CorridorEnv final : public Environment {
 public:
  static constexpr int kGoal = 4;

  CorridorEnv() { rebuild(); }

  int num_actions() const override { return 2; }

  Observation observe() const override { return obs_; }

  const std::vector<std::uint8_t>& action_mask() const override { return mask_; }

  StepResult step(int action) override {
    position_ += action == 1 ? 1 : -1;
    if (position_ < 0) position_ = 0;
    StepResult result;
    result.reward = -0.05;
    if (position_ == kGoal) {
      result.reward += 1.0;
      result.episode_end = true;
    } else if (++steps_ >= 32) {
      result.episode_end = true;  // give up
    }
    rebuild();
    return result;
  }

  void reset() override {
    position_ = 0;
    steps_ = 0;
    rebuild();
  }

 private:
  void rebuild() {
    obs_.a_hat = Matrix(kGoal + 1, kGoal + 1);
    for (int i = 0; i <= kGoal; ++i) obs_.a_hat.at(i, i) = 1.0;
    obs_.features = Matrix(kGoal + 1, 1);
    obs_.features.at(position_, 0) = 1.0;
    obs_.params = Matrix(1, 0);
  }

  int position_ = 0;
  int steps_ = 0;
  Observation obs_;
  std::vector<std::uint8_t> mask_ = {1, 1};
};

ActorCritic::Config corridor_net_config() {
  ActorCritic::Config c;
  c.num_nodes = 5;
  c.feature_dim = 1;
  c.param_dim = 0;
  c.num_actions = 2;
  c.gcn_layers = 0;
  c.embedding_dim = 4;
  c.actor_hidden = {16};
  c.critic_hidden = {16};
  return c;
}

TrainerConfig corridor_trainer_config() {
  TrainerConfig c;
  c.epochs = 12;
  c.steps_per_epoch = 128;
  c.actor_lr = 1e-2;
  c.critic_lr = 1e-2;
  c.ppo.train_actor_iters = 10;
  c.ppo.train_critic_iters = 10;
  c.seed = 3;
  return c;
}

TEST(Trainer, LearnsTheCorridor) {
  Rng rng(1);
  ActorCritic net(corridor_net_config(), rng);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                  corridor_trainer_config());
  const auto history = trainer.train();
  ASSERT_EQ(history.size(), 12u);
  // The mean episode return must approach the optimum of 0.8.
  EXPECT_GT(history.back().mean_episode_reward, 0.5);
  // And improve substantially over the first epoch.
  EXPECT_GT(history.back().mean_episode_reward,
            history.front().mean_episode_reward);
}

TEST(Trainer, EpochStatsPopulated) {
  Rng rng(2);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 2;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  int callbacks = 0;
  const auto history = trainer.train([&](const EpochStats& stats) {
    EXPECT_EQ(stats.epoch, callbacks);
    EXPECT_EQ(stats.steps, 128);
    EXPECT_GT(stats.episodes_finished, 0);
    ++callbacks;
  });
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(history.size(), 2u);
}

TEST(Trainer, DeterministicAcrossRuns) {
  auto run = [] {
    Rng rng(7);
    ActorCritic net(corridor_net_config(), rng);
    auto config = corridor_trainer_config();
    config.epochs = 3;
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    return trainer.train();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_episode_reward, b[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(a[i].actor_loss, b[i].actor_loss);
  }
}

TEST(Trainer, MultipleWorkersCollectFullBatch) {
  Rng rng(4);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 2;
  config.num_workers = 4;
  config.steps_per_epoch = 128;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();
  for (const auto& stats : history) EXPECT_EQ(stats.steps, 128);
}

TEST(Trainer, MultipleWorkersStillLearn) {
  Rng rng(5);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.num_workers = 2;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();
  EXPECT_GT(history.back().mean_episode_reward, 0.4);
}

TEST(Trainer, ValidatesConfiguration) {
  Rng rng(6);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 0;
  EXPECT_THROW(
      Trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config),
      std::invalid_argument);
  config = corridor_trainer_config();
  config.num_workers = 0;
  EXPECT_THROW(
      Trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config),
      std::invalid_argument);
}

TEST(Trainer, RejectsActionCountMismatch) {
  auto c = corridor_net_config();
  c.num_actions = 3;  // env has 2
  Rng rng(7);
  ActorCritic net(c, rng);
  EXPECT_THROW(Trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                       corridor_trainer_config()),
               std::invalid_argument);
}

TEST(Trainer, RejectsNullEnvironment) {
  Rng rng(8);
  ActorCritic net(corridor_net_config(), rng);
  EXPECT_THROW(Trainer(net, [] { return std::unique_ptr<Environment>(); },
                       corridor_trainer_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
