#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rl/distribution.hpp"

namespace nptsn {
namespace {

// A tiny single-state setup: one node, constant observation, 3 actions.
ActorCritic::Config bandit_config() {
  ActorCritic::Config c;
  c.num_nodes = 1;
  c.feature_dim = 1;
  c.param_dim = 0;
  c.num_actions = 3;
  c.gcn_layers = 0;
  c.embedding_dim = 1;
  c.actor_hidden = {16};
  c.critic_hidden = {16};
  return c;
}

Observation bandit_obs() {
  Observation obs;
  obs.a_hat = Matrix(1, 1, 1.0);
  obs.features = Matrix(1, 1, 1.0);
  obs.params = Matrix(1, 0);
  return obs;
}

// Builds a batch where `good_action` carries positive advantage and the
// others negative, as if sampled uniformly.
Batch contrived_batch(const ActorCritic& net, int good_action, int steps) {
  Batch batch;
  const Observation obs = bandit_obs();
  const auto out = net.forward(obs);
  for (int i = 0; i < steps; ++i) {
    StepRecord s;
    s.obs = obs;
    s.mask = {1, 1, 1};
    s.action = i % 3;
    const auto probs = masked_probabilities(out.logits.value(), s.mask);
    s.log_prob = std::log(probs[static_cast<std::size_t>(s.action)]);
    s.value = out.value.item();
    s.reward = s.action == good_action ? 1.0 : -1.0;
    batch.steps.push_back(std::move(s));
    batch.advantages.push_back(batch.steps.back().reward);
    batch.returns.push_back(batch.steps.back().reward);
  }
  return batch;
}

TEST(Ppo, ActorShiftsProbabilityTowardAdvantage) {
  Rng rng(1);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-2});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-2});

  const auto before =
      masked_probabilities(net.forward(bandit_obs()).logits.value(), {1, 1, 1});

  PpoConfig config;
  config.train_actor_iters = 20;
  config.train_critic_iters = 5;
  config.target_kl = 100.0;  // disable early stop for this test
  const Batch batch = contrived_batch(net, /*good_action=*/2, 30);
  const auto stats = ppo_update(net, actor_opt, critic_opt, batch, config);

  const auto after =
      masked_probabilities(net.forward(bandit_obs()).logits.value(), {1, 1, 1});
  EXPECT_GT(after[2], before[2]);
  EXPECT_LT(after[0], before[0]);
  EXPECT_EQ(stats.actor_iters_run, 20);
}

TEST(Ppo, CriticRegressesTowardReturns) {
  Rng rng(2);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-3});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 5e-2});

  Batch batch = contrived_batch(net, 1, 12);
  for (auto& r : batch.returns) r = 7.0;  // constant target

  PpoConfig config;
  config.train_actor_iters = 1;
  config.train_critic_iters = 200;
  ppo_update(net, actor_opt, critic_opt, batch, config);
  EXPECT_NEAR(net.forward(bandit_obs()).value.item(), 7.0, 0.5);
}

TEST(Ppo, KlEarlyStoppingLimitsActorIterations) {
  Rng rng(3);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 5e-2});  // big steps
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});

  PpoConfig config;
  config.train_actor_iters = 80;
  config.train_critic_iters = 1;
  config.target_kl = 1e-4;  // very tight
  const Batch batch = contrived_batch(net, 0, 30);
  const auto stats = ppo_update(net, actor_opt, critic_opt, batch, config);
  EXPECT_LT(stats.actor_iters_run, 80);
}

TEST(Ppo, ClippingBoundsTheUpdate) {
  // With and without clipping (ratio bounds), a single huge-advantage batch
  // must move the policy less when the clip is tight.
  auto run = [](double clip) {
    Rng rng(4);
    ActorCritic net(bandit_config(), rng);
    Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-2});
    Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});
    PpoConfig config;
    config.clip_ratio = clip;
    config.train_actor_iters = 40;
    config.train_critic_iters = 1;
    config.target_kl = 1e9;
    Batch batch;
    const Observation obs = bandit_obs();
    const auto out = net.forward(obs);
    for (int i = 0; i < 10; ++i) {
      StepRecord s;
      s.obs = obs;
      s.mask = {1, 1, 1};
      s.action = 2;
      const auto probs = masked_probabilities(out.logits.value(), s.mask);
      s.log_prob = std::log(probs[2]);
      s.value = 0.0;
      s.reward = 100.0;
      batch.steps.push_back(std::move(s));
      batch.advantages.push_back(100.0);
      batch.returns.push_back(100.0);
    }
    ppo_update(net, actor_opt, critic_opt, batch, config);
    return masked_probabilities(net.forward(obs).logits.value(), {1, 1, 1})[2];
  };
  const double tight = run(0.05);
  const double loose = run(10.0);
  EXPECT_LT(tight, loose);
}

TEST(Ppo, EmptyBatchRejected) {
  Rng rng(5);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-3});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});
  EXPECT_THROW(ppo_update(net, actor_opt, critic_opt, Batch{}, PpoConfig{}),
               std::invalid_argument);
}

TEST(Ppo, BatchArityValidated) {
  Rng rng(6);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-3});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});
  Batch batch = contrived_batch(net, 0, 3);
  batch.advantages.pop_back();
  EXPECT_THROW(ppo_update(net, actor_opt, critic_opt, batch, PpoConfig{}),
               std::invalid_argument);
}

TEST(Ppo, MaskedActionsStayMaskedAfterUpdate) {
  // Updating on a batch whose masks exclude action 0 must not make the
  // distribution assign it probability at sampling time (mask re-applied).
  Rng rng(7);
  ActorCritic net(bandit_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-2});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});

  Batch batch;
  const Observation obs = bandit_obs();
  const auto out = net.forward(obs);
  for (int i = 0; i < 10; ++i) {
    const int action = 1 + (i % 2);
    StepRecord s;
    s.obs = obs;
    s.mask = {0, 1, 1};
    s.action = action;
    const auto probs = masked_probabilities(out.logits.value(), s.mask);
    s.log_prob = std::log(probs[static_cast<std::size_t>(action)]);
    s.value = 0.0;
    s.reward = 1.0;
    batch.steps.push_back(std::move(s));
    batch.advantages.push_back(action == 1 ? 1.0 : -1.0);
    batch.returns.push_back(1.0);
  }
  PpoConfig config;
  config.train_actor_iters = 10;
  config.train_critic_iters = 1;
  EXPECT_NO_THROW(ppo_update(net, actor_opt, critic_opt, batch, config));
  const auto probs =
      masked_probabilities(net.forward(obs).logits.value(), {0, 1, 1});
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
}

}  // namespace
}  // namespace nptsn
