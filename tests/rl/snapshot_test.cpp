// Checkpoint/resume of the Trainer: state round trips, kill-and-resume
// determinism, mid-epoch crash recovery, run budgets, and torn-checkpoint
// fallback — the trainer-level half of the fault-injection harness.
#include "rl/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>

#include "rl/trainer.hpp"
#include "testing/corridor_env.hpp"
#include "testing/fault_injector.hpp"

namespace nptsn {
namespace {

using nptsn::testing::CorridorEnv;
using nptsn::testing::FaultTrigger;
using nptsn::testing::FaultyEnv;
using nptsn::testing::InjectedFault;
using nptsn::testing::corridor_net_config;
using nptsn::testing::corridor_trainer_config;
using nptsn::testing::corrupt_file_byte;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nptsn_trainer_" + name;
}

void remove_all(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}

void expect_same_stats(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.episodes_finished, b.episodes_finished);
  EXPECT_DOUBLE_EQ(a.mean_episode_reward, b.mean_episode_reward);
  EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
  EXPECT_DOUBLE_EQ(a.critic_loss, b.critic_loss);
  EXPECT_DOUBLE_EQ(a.approx_kl, b.approx_kl);
}

TEST(Snapshot, MatrixRoundTrip) {
  Matrix m(3, 2);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = 0.25 * i - 1.0;
  ByteWriter w;
  write_matrix(w, m);
  ByteReader r(w.data());
  const Matrix back = read_matrix(r);
  ASSERT_TRUE(back.same_shape(m));
  for (int i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(back.data()[i], m.data()[i]);
}

TEST(Snapshot, MatrixShapeMismatchIsRefused) {
  ByteWriter w;
  write_matrix(w, Matrix(2, 2, 1.0));
  ByteReader r(w.data());
  EXPECT_THROW(read_matrix_like(r, Matrix(3, 2)), CheckpointError);
}

TEST(Snapshot, MatrixWithAbsurdDimensionsIsRefused) {
  ByteWriter w;
  w.u32(1u << 30);  // claims a billion rows
  w.u32(1u << 30);
  ByteReader r(w.data());
  EXPECT_THROW(read_matrix(r), CheckpointError);
}

TEST(Snapshot, RngStreamRoundTrip) {
  Rng original(1234);
  for (int i = 0; i < 17; ++i) original.next_u64();  // advance the stream

  ByteWriter w;
  write_rng(w, original);
  ByteReader r(w.data());
  Rng restored = read_rng(r);
  r.expect_exhausted("rng");

  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.next_u64(), original.next_u64());
  }
}

TEST(Snapshot, AllZeroRngStateIsRefused) {
  ByteWriter w;
  for (int i = 0; i < 4; ++i) w.u64(0);
  ByteReader r(w.data());
  EXPECT_THROW(read_rng(r), CheckpointError);
}

TEST(Snapshot, AdamStateRoundTripKeepsNextStepIdentical) {
  auto make = [](std::vector<Tensor>* params) {
    params->clear();
    params->push_back(Tensor::parameter(Matrix(2, 3, 0.5)));
    params->push_back(Tensor::parameter(Matrix(1, 3, -0.25)));
    return Adam(*params, {.learning_rate = 1e-2});
  };
  auto train_step = [](Adam& opt, std::vector<Tensor>& params, double g) {
    opt.zero_grad();
    for (auto& p : params) p.mutable_grad() = Matrix(p.rows(), p.cols(), g);
    opt.step();
  };

  std::vector<Tensor> params_a;
  Adam a = make(&params_a);
  train_step(a, params_a, 0.3);  // non-trivial moments + step count

  ByteWriter w;
  write_adam_state(w, a.export_state());
  std::vector<Tensor> params_b;
  Adam b = make(&params_b);
  train_step(b, params_b, 0.3);  // same values, but state arrives via bytes
  ByteReader r(w.data());
  b.import_state(read_adam_state(r, b));
  r.expect_exhausted("adam");

  train_step(a, params_a, -0.7);
  train_step(b, params_b, -0.7);
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    const Matrix& va = params_a[i].value();
    const Matrix& vb = params_b[i].value();
    for (int k = 0; k < va.size(); ++k) EXPECT_DOUBLE_EQ(vb.data()[k], va.data()[k]);
  }
}

TEST(Snapshot, AdamStateShapeMismatchIsRefused) {
  std::vector<Tensor> params = {Tensor::parameter(Matrix(2, 2, 1.0))};
  Adam opt(params, {});
  ByteWriter w;
  Adam::State wrong;
  wrong.m = {Matrix(3, 2)};
  wrong.v = {Matrix(3, 2)};
  write_adam_state(w, wrong);
  ByteReader r(w.data());
  EXPECT_THROW(read_adam_state(r, opt), CheckpointError);
}

TEST(Snapshot, NetworkParametersRoundTrip) {
  Rng rng_a(1), rng_b(2);
  ActorCritic a(corridor_net_config(), rng_a);
  ActorCritic b(corridor_net_config(), rng_b);  // different init

  ByteWriter w;
  write_parameters(w, a);
  ByteReader r(w.data());
  read_parameters(r, b);
  r.expect_exhausted("parameters");

  CorridorEnv env;
  const auto out_a = a.forward(env.observe());
  const auto out_b = b.forward(env.observe());
  EXPECT_DOUBLE_EQ(out_a.value.item(), out_b.value.item());
  for (int c = 0; c < out_a.logits.cols(); ++c) {
    EXPECT_DOUBLE_EQ(out_a.logits.value().at(0, c), out_b.logits.value().at(0, c));
  }
}

TEST(Snapshot, MismatchedArchitectureIsRefusedWithoutMutation) {
  Rng rng_a(1), rng_b(2);
  ActorCritic a(corridor_net_config(), rng_a);
  auto other_config = corridor_net_config();
  other_config.actor_hidden = {8};  // different layer shapes
  ActorCritic b(other_config, rng_b);

  CorridorEnv env;
  const double before = b.forward(env.observe()).value.item();

  ByteWriter w;
  write_parameters(w, a);
  ByteReader r(w.data());
  EXPECT_THROW(read_parameters(r, b), CheckpointError);
  EXPECT_DOUBLE_EQ(b.forward(env.observe()).value.item(), before);
}

TEST(Snapshot, TrainerStateRoundTripResumesDeterministically) {
  // Reference: one uninterrupted 6-epoch run.
  auto make_trainer = [](ActorCritic& net, int epochs) {
    auto config = corridor_trainer_config();
    config.epochs = epochs;
    return std::make_unique<Trainer>(
        net, [] { return std::make_unique<CorridorEnv>(); }, config);
  };

  Rng rng_ref(11);
  ActorCritic net_ref(corridor_net_config(), rng_ref);
  const auto reference = make_trainer(net_ref, 6)->train();
  ASSERT_EQ(reference.size(), 6u);

  // Interrupted: run 3 epochs, serialize, restore into a FRESH trainer and
  // network, run the remaining 3.
  Rng rng_a(11);
  ActorCritic net_a(corridor_net_config(), rng_a);
  auto first = make_trainer(net_a, 3);
  const auto head = first->train();
  ASSERT_EQ(head.size(), 3u);
  const auto state = first->save_state();
  first.reset();

  Rng rng_b(99);  // deliberately different init; load_state overwrites it
  ActorCritic net_b(corridor_net_config(), rng_b);
  auto second = make_trainer(net_b, 6);
  second->load_state(state);
  EXPECT_EQ(second->next_epoch(), 3);
  const auto tail = second->train();
  ASSERT_EQ(tail.size(), 3u);

  for (int i = 0; i < 3; ++i) {
    expect_same_stats(head[static_cast<std::size_t>(i)], reference[static_cast<std::size_t>(i)]);
    expect_same_stats(tail[static_cast<std::size_t>(i)],
                      reference[static_cast<std::size_t>(i + 3)]);
  }
  EXPECT_TRUE(second->stopped_reason().empty());
}

TEST(Snapshot, CheckpointFileResumeMatchesUninterruptedRun) {
  const std::string path = temp_path("resume");
  remove_all(path);

  auto run = [&](std::uint64_t net_seed, int epochs, bool checkpoint) {
    Rng rng(net_seed);
    ActorCritic net(corridor_net_config(), rng);
    auto config = corridor_trainer_config();
    config.epochs = epochs;
    config.num_workers = 2;
    if (checkpoint) config.checkpoint_path = path;
    Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
    return trainer.train();
  };

  const auto reference = run(21, 6, false);

  // "Kill" after 4 epochs (the process exits; only the checkpoint survives),
  // then resume from the file in a brand-new trainer.
  const auto head = run(21, 4, true);
  ASSERT_EQ(head.size(), 4u);
  const auto tail = run(21, 6, true);
  ASSERT_EQ(tail.size(), 2u) << "resume must not repeat completed epochs";

  for (int i = 0; i < 4; ++i) {
    expect_same_stats(head[static_cast<std::size_t>(i)], reference[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 2; ++i) {
    expect_same_stats(tail[static_cast<std::size_t>(i)],
                      reference[static_cast<std::size_t>(i + 4)]);
  }
  remove_all(path);
}

TEST(Snapshot, TornCheckpointFallsBackToPreviousGeneration) {
  const std::string path = temp_path("torn");
  remove_all(path);

  auto make = [&](std::uint64_t net_seed, int epochs) {
    auto config = corridor_trainer_config();
    config.epochs = epochs;
    config.checkpoint_path = path;
    Rng rng(net_seed);
    auto net = std::make_unique<ActorCritic>(corridor_net_config(), rng);
    auto trainer = std::make_unique<Trainer>(
        *net, [] { return std::make_unique<CorridorEnv>(); }, config);
    return std::make_pair(std::move(net), std::move(trainer));
  };

  auto [net_ref, ref_trainer] = make(31, 6);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  const auto reference = ref_trainer->train();

  remove_all(path);
  auto [net_a, first] = make(31, 4);
  const auto head = first->train();
  ASSERT_EQ(head.size(), 4u);

  // Tear the newest checkpoint (epoch 4); the previous generation holds
  // epoch 3. Resume must reject the torn file via checksum and fall back.
  corrupt_file_byte(path, 40);
  auto [net_b, second] = make(31, 6);
  const auto tail = second->train();
  ASSERT_EQ(tail.size(), 3u) << "fallback resumes from epoch 3, not 4";
  for (int i = 0; i < 3; ++i) {
    expect_same_stats(tail[static_cast<std::size_t>(i)],
                      reference[static_cast<std::size_t>(i + 3)]);
  }
  remove_all(path);
}

TEST(Snapshot, LoadStateRejectsMismatchedWorkerCountAndRollout) {
  Rng rng(5);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto state = trainer.save_state();

  auto config2 = config;
  config2.num_workers = 2;
  Rng rng2(5);
  ActorCritic net2(corridor_net_config(), rng2);
  Trainer other(net2, [] { return std::make_unique<CorridorEnv>(); }, config2);
  EXPECT_THROW(other.load_state(state), CheckpointError);

  auto config3 = config;
  config3.steps_per_epoch = 64;
  Rng rng3(5);
  ActorCritic net3(corridor_net_config(), rng3);
  Trainer third(net3, [] { return std::make_unique<CorridorEnv>(); }, config3);
  EXPECT_THROW(third.load_state(state), CheckpointError);
}

TEST(Snapshot, TruncatedStateIsRejected) {
  Rng rng(6);
  ActorCritic net(corridor_net_config(), rng);
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); },
                  corridor_trainer_config());
  auto state = trainer.save_state();
  state.resize(state.size() / 2);
  EXPECT_THROW(trainer.load_state(state), CheckpointError);
}

TEST(FaultInjection, WorkerExceptionPropagatesWithoutRetries) {
  Rng rng(7);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 4;
  config.num_workers = 4;
  auto trigger = std::make_shared<FaultTrigger>(200);  // mid-epoch 1..2
  Trainer trainer(
      net,
      [&] {
        return std::make_unique<FaultyEnv>(std::make_unique<CorridorEnv>(), trigger);
      },
      config);
  EXPECT_THROW(trainer.train(), InjectedFault);
  EXPECT_TRUE(trigger->fired());
}

TEST(FaultInjection, TransientFaultIsRetriedAndMatchesCleanRun) {
  auto run = [](std::int64_t fault_at_step, int retries) {
    Rng rng(8);
    ActorCritic net(corridor_net_config(), rng);
    auto config = corridor_trainer_config();
    config.epochs = 5;
    config.num_workers = 2;
    config.max_epoch_retries = retries;
    auto trigger = std::make_shared<FaultTrigger>(fault_at_step);
    Trainer trainer(
        net,
        [&] {
          return std::make_unique<FaultyEnv>(std::make_unique<CorridorEnv>(), trigger);
        },
        config);
    return trainer.train();
  };

  const auto clean = run(0, 0);
  // The fault fires once mid-epoch 2..3; the trainer rolls back to the last
  // epoch boundary and retries, reproducing the clean run exactly.
  const auto recovered = run(300, 1);
  ASSERT_EQ(recovered.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    expect_same_stats(recovered[i], clean[i]);
  }
}

// Throws at EVERY step once the shared counter passes fail_from — a
// permanent fault that survives rollback (the counter is deliberately
// outside the snapshot, like a broken disk would be).
class PermanentFaultEnv final : public Environment {
 public:
  PermanentFaultEnv(std::shared_ptr<std::atomic<std::int64_t>> calls,
                    std::int64_t fail_from)
      : calls_(std::move(calls)), fail_from_(fail_from) {}

  int num_actions() const override { return inner_.num_actions(); }
  Observation observe() const override { return inner_.observe(); }
  const std::vector<std::uint8_t>& action_mask() const override {
    return inner_.action_mask();
  }
  StepResult step(int action) override {
    if (calls_->fetch_add(1) + 1 >= fail_from_) {
      throw InjectedFault("permanent environment fault");
    }
    return inner_.step(action);
  }
  void reset() override { inner_.reset(); }
  bool snapshot_supported() const override { return true; }
  void save_snapshot(ByteWriter& out) const override { inner_.save_snapshot(out); }
  void load_snapshot(ByteReader& in) override { inner_.load_snapshot(in); }

 private:
  CorridorEnv inner_;
  std::shared_ptr<std::atomic<std::int64_t>> calls_;
  std::int64_t fail_from_;
};

TEST(FaultInjection, RetriesExhaustedRethrows) {
  Rng rng(9);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 4;
  config.max_epoch_retries = 2;
  auto calls = std::make_shared<std::atomic<std::int64_t>>(0);
  Trainer trainer(
      net, [&] { return std::make_unique<PermanentFaultEnv>(calls, 150); }, config);
  // Epoch 0 completes (128 steps); epoch 1 faults at step 150 and keeps
  // faulting on both retries, so the third failure surfaces.
  EXPECT_THROW(trainer.train(), InjectedFault);
  EXPECT_EQ(trainer.next_epoch(), 1);
}

TEST(RunBudget, StepBudgetStopsCleanlyWithReason) {
  Rng rng(10);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 12;
  config.max_total_steps = 2 * config.steps_per_epoch;
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto history = trainer.train();
  EXPECT_EQ(history.size(), 2u);
  EXPECT_NE(trainer.stopped_reason().find("step budget"), std::string::npos)
      << "reason: " << trainer.stopped_reason();
}

TEST(RunBudget, WallClockBudgetStopsAfterSlowEpoch) {
  Rng rng(11);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 12;
  config.max_wall_seconds = 0.05;
  // A straggler worker: stalls 120 ms once during epoch 0, pushing the
  // elapsed time past the budget at the next epoch boundary.
  auto trigger = std::make_shared<FaultTrigger>(10);
  Trainer trainer(
      net,
      [&] {
        return std::make_unique<FaultyEnv>(std::make_unique<CorridorEnv>(), trigger,
                                           FaultyEnv::Mode::kStall,
                                           std::chrono::milliseconds(120));
      },
      config);
  const auto history = trainer.train();
  ASSERT_GE(history.size(), 1u);
  EXPECT_LT(history.size(), 12u);
  EXPECT_NE(trainer.stopped_reason().find("wall-clock"), std::string::npos);
}

TEST(RunBudget, ExhaustedStepBudgetRunsNoEpochs) {
  Rng rng(12);
  ActorCritic net(corridor_net_config(), rng);
  auto config = corridor_trainer_config();
  config.epochs = 12;
  config.max_total_steps = 1;  // less than one epoch
  Trainer trainer(net, [] { return std::make_unique<CorridorEnv>(); }, config);
  const auto first = trainer.train();
  EXPECT_EQ(first.size(), 1u);  // budget is checked at epoch boundaries
  const auto second = trainer.train();
  EXPECT_TRUE(second.empty());
  EXPECT_FALSE(trainer.stopped_reason().empty());
}

}  // namespace
}  // namespace nptsn
