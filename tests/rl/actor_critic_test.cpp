#include "rl/actor_critic.hpp"

#include <gtest/gtest.h>

#include "nn/layers.hpp"

namespace nptsn {
namespace {

ActorCritic::Config small_config() {
  ActorCritic::Config c;
  c.num_nodes = 3;
  c.feature_dim = 4;
  c.param_dim = 2;
  c.num_actions = 5;
  c.gcn_layers = 2;
  c.embedding_dim = 6;
  c.actor_hidden = {8, 8};
  c.critic_hidden = {8, 8};
  return c;
}

Observation small_obs() {
  Observation obs;
  obs.a_hat = normalized_adjacency([] {
    Matrix a(3, 3);
    a.at(0, 1) = a.at(1, 0) = 1.0;
    return a;
  }());
  obs.features = Matrix(3, 4, 0.5);
  obs.params = Matrix(1, 2, 0.1);
  return obs;
}

TEST(ActorCritic, ForwardShapes) {
  Rng rng(1);
  ActorCritic net(small_config(), rng);
  const auto out = net.forward(small_obs());
  EXPECT_EQ(out.logits.rows(), 1);
  EXPECT_EQ(out.logits.cols(), 5);
  EXPECT_EQ(out.value.rows(), 1);
  EXPECT_EQ(out.value.cols(), 1);
}

TEST(ActorCritic, HeadSpecificForwardsMatchCombined) {
  Rng rng(2);
  ActorCritic net(small_config(), rng);
  const auto obs = small_obs();
  const auto out = net.forward(obs);
  const auto logits = net.forward_logits(obs);
  const auto value = net.forward_value(obs);
  for (int j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(out.logits.value().at(0, j), logits.value().at(0, j));
  }
  EXPECT_DOUBLE_EQ(out.value.item(), value.item());
}

TEST(ActorCritic, DefaultEmbeddingIsTwiceNumNodes) {
  auto c = small_config();
  c.embedding_dim = 0;
  Rng rng(3);
  ActorCritic net(c, rng);
  EXPECT_EQ(net.config().embedding_dim, 6);  // 2 * 3 nodes
}

TEST(ActorCritic, GcnZeroPoolsRawFeatures) {
  auto c = small_config();
  c.gcn_layers = 0;
  Rng rng(4);
  ActorCritic net(c, rng);
  const auto out = net.forward(small_obs());
  EXPECT_EQ(out.logits.cols(), 5);
  // Without GCN layers there are fewer parameters.
  Rng rng2(4);
  ActorCritic with_gcn(small_config(), rng2);
  EXPECT_LT(net.all_parameters().size(), with_gcn.all_parameters().size());
}

TEST(ActorCritic, ParameterPartitionSharesGcn) {
  Rng rng(5);
  ActorCritic net(small_config(), rng);
  const auto actor = net.actor_parameters();
  const auto critic = net.critic_parameters();
  const auto all = net.all_parameters();
  // 2 GCN layers (W, b each) = 4 shared tensors.
  EXPECT_EQ(actor.size(), 4u + 6u);   // + 3 MLP layers x 2
  EXPECT_EQ(critic.size(), 4u + 6u);
  EXPECT_EQ(all.size(), 4u + 6u + 6u);
  // The first four tensors are the SAME graph nodes in both sets.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(actor[i].node().get(), critic[i].node().get());
  }
  // Heads are disjoint.
  for (std::size_t i = 4; i < actor.size(); ++i) {
    EXPECT_NE(actor[i].node().get(), critic[i].node().get());
  }
}

TEST(ActorCritic, GradientsReachSharedAndHeadParameters) {
  Rng rng(6);
  ActorCritic net(small_config(), rng);
  const auto out = net.forward(small_obs());
  sum_all(out.logits).backward();
  for (auto& p : net.actor_parameters()) {
    EXPECT_FALSE(p.grad().empty());
  }
  // Critic head untouched by the actor loss.
  const auto critic = net.critic_parameters();
  for (std::size_t i = 4; i < critic.size(); ++i) {
    EXPECT_TRUE(critic[i].grad().empty() || critic[i].grad().max_abs() == 0.0);
  }
}

TEST(ActorCritic, CopyParametersProducesIdenticalOutputs) {
  Rng rng1(7);
  Rng rng2(8);
  ActorCritic a(small_config(), rng1);
  ActorCritic b(small_config(), rng2);
  const auto obs = small_obs();
  EXPECT_NE(a.forward(obs).value.item(), b.forward(obs).value.item());
  b.copy_parameters_from(a);
  const auto oa = a.forward(obs);
  const auto ob = b.forward(obs);
  EXPECT_DOUBLE_EQ(oa.value.item(), ob.value.item());
  for (int j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(oa.logits.value().at(0, j), ob.logits.value().at(0, j));
  }
}

TEST(ActorCritic, ObservationShapeValidated) {
  Rng rng(9);
  ActorCritic net(small_config(), rng);
  auto obs = small_obs();
  obs.features = Matrix(3, 5);  // wrong feature dim
  EXPECT_THROW(net.forward(obs), std::invalid_argument);
  obs = small_obs();
  obs.a_hat = Matrix(2, 2);
  EXPECT_THROW(net.forward(obs), std::invalid_argument);
  obs = small_obs();
  obs.params = Matrix(1, 3);
  EXPECT_THROW(net.forward(obs), std::invalid_argument);
}

TEST(ActorCritic, ConfigValidated) {
  Rng rng(10);
  auto c = small_config();
  c.num_actions = 0;
  EXPECT_THROW(ActorCritic(c, rng), std::invalid_argument);
  c = small_config();
  c.gcn_layers = -1;
  EXPECT_THROW(ActorCritic(c, rng), std::invalid_argument);
}

TEST(ActorCritic, GatEncoderForwardAndTraining) {
  auto c = small_config();
  c.encoder = GraphEncoder::kGat;
  Rng rng(12);
  ActorCritic net(c, rng);
  const auto out = net.forward(small_obs());
  EXPECT_EQ(out.logits.cols(), 5);
  sum_all(out.logits).backward();
  // Every actor-side parameter (GAT included) receives gradient signal.
  for (auto& p : net.actor_parameters()) EXPECT_FALSE(p.grad().empty());
}

TEST(ActorCritic, GatAndGcnHaveDifferentParameterCounts) {
  Rng rng1(13);
  Rng rng2(13);
  auto gcn_cfg = small_config();
  auto gat_cfg = small_config();
  gat_cfg.encoder = GraphEncoder::kGat;
  ActorCritic gcn_net(gcn_cfg, rng1);
  ActorCritic gat_net(gat_cfg, rng2);
  // GAT adds two attention vectors per layer on top of each Linear.
  EXPECT_EQ(gat_net.all_parameters().size(), gcn_net.all_parameters().size() + 2 * 2);
}

TEST(ActorCritic, DeterministicGivenSeed) {
  Rng rng1(11);
  Rng rng2(11);
  ActorCritic a(small_config(), rng1);
  ActorCritic b(small_config(), rng2);
  const auto obs = small_obs();
  EXPECT_DOUBLE_EQ(a.forward(obs).value.item(), b.forward(obs).value.item());
}

}  // namespace
}  // namespace nptsn
