// Property test: the buffer's GAE(lambda) recursion against the direct
// summation definition A_t = sum_l (gamma*lambda)^l * delta_{t+l}, and
// rewards-to-go against brute-force discounting, on random trajectories.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/buffer.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

class GaeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaeProperty, RecursionMatchesDirectSummation) {
  Rng rng(GetParam());
  const double gamma = rng.uniform(0.8, 1.0);
  const double lambda = rng.uniform(0.0, 1.0);
  const int length = rng.uniform_int(1, 12);
  const bool terminal = rng.uniform() < 0.5;
  const double last_value = terminal ? 0.0 : rng.uniform(-2.0, 2.0);

  std::vector<double> rewards(static_cast<std::size_t>(length));
  std::vector<double> values(static_cast<std::size_t>(length));
  TrajectoryBuffer buffer(gamma, lambda);
  for (int t = 0; t < length; ++t) {
    rewards[static_cast<std::size_t>(t)] = rng.uniform(-1.0, 1.0);
    values[static_cast<std::size_t>(t)] = rng.uniform(-1.0, 1.0);
    StepRecord s;
    s.reward = rewards[static_cast<std::size_t>(t)];
    s.value = values[static_cast<std::size_t>(t)];
    s.action = 0;
    s.mask = {1};
    buffer.store(std::move(s));
  }
  buffer.finish_path(last_value);
  const auto batch = buffer.take();

  // Direct definitions.
  std::vector<double> deltas(static_cast<std::size_t>(length));
  for (int t = 0; t < length; ++t) {
    const double next_value =
        t + 1 < length ? values[static_cast<std::size_t>(t + 1)] : last_value;
    deltas[static_cast<std::size_t>(t)] =
        rewards[static_cast<std::size_t>(t)] + gamma * next_value -
        values[static_cast<std::size_t>(t)];
  }
  std::vector<double> advantages(static_cast<std::size_t>(length));
  std::vector<double> returns(static_cast<std::size_t>(length));
  for (int t = 0; t < length; ++t) {
    double adv = 0.0;
    for (int l = t; l < length; ++l) {
      adv += std::pow(gamma * lambda, l - t) * deltas[static_cast<std::size_t>(l)];
    }
    advantages[static_cast<std::size_t>(t)] = adv;
    double ret = std::pow(gamma, length - t) * last_value;
    for (int l = t; l < length; ++l) {
      ret += std::pow(gamma, l - t) * rewards[static_cast<std::size_t>(l)];
    }
    returns[static_cast<std::size_t>(t)] = ret;
  }

  // Undo the batch normalization to compare raw advantages.
  double mean = 0.0;
  for (const double a : advantages) mean += a;
  mean /= length;
  double var = 0.0;
  for (const double a : advantages) var += (a - mean) * (a - mean);
  var /= length;
  const double denom = std::sqrt(var) > 1e-12 ? std::sqrt(var) : 1.0;

  for (int t = 0; t < length; ++t) {
    EXPECT_NEAR(batch.advantages[static_cast<std::size_t>(t)],
                (advantages[static_cast<std::size_t>(t)] - mean) / denom, 1e-9)
        << "seed " << GetParam() << " t=" << t;
    EXPECT_NEAR(batch.returns[static_cast<std::size_t>(t)],
                returns[static_cast<std::size_t>(t)], 1e-9)
        << "seed " << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrajectories, GaeProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace nptsn
