#include "rl/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "rl/ppo.hpp"
#include "testing/corridor_env.hpp"

namespace nptsn {
namespace {

using testing::corridor_net_config;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(AnomalyCode, StableNames) {
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteLogits), "non_finite_logits");
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteValue), "non_finite_value");
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteLoss), "non_finite_loss");
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteParameter), "non_finite_parameter");
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteGradient), "non_finite_gradient");
  EXPECT_STREQ(to_string(AnomalyCode::kNonFiniteAdamMoment), "non_finite_adam_moment");
  EXPECT_STREQ(to_string(AnomalyCode::kGradientExplosion), "gradient_explosion");
  EXPECT_STREQ(to_string(AnomalyCode::kKlBlowup), "kl_blowup");
  EXPECT_STREQ(to_string(AnomalyCode::kEntropyCollapse), "entropy_collapse");
  EXPECT_STREQ(to_string(AnomalyCode::kValueLossExplosion), "value_loss_explosion");
  EXPECT_STREQ(to_string(AnomalyCode::kWorkerException), "worker_exception");
  EXPECT_STREQ(to_string(AnomalyCode::kAllActionsMasked), "all_actions_masked");
  EXPECT_STREQ(to_string(AnomalyCode::kEmptyEpoch), "empty_epoch");
}

TEST(AnomalyLedger, AddCountTotal) {
  AnomalyLedger ledger;
  EXPECT_TRUE(ledger.empty());
  ledger.add({AnomalyCode::kKlBlowup, 3, -1, 0.7, "kl"});
  ledger.add({AnomalyCode::kWorkerException, 4, 1, 0.0, "env"});
  ledger.add({AnomalyCode::kWorkerException, 5, 0, 0.0, "env again"});
  EXPECT_FALSE(ledger.empty());
  EXPECT_EQ(ledger.total(), 3);
  EXPECT_EQ(ledger.count(AnomalyCode::kWorkerException), 2);
  EXPECT_EQ(ledger.count(AnomalyCode::kKlBlowup), 1);
  EXPECT_EQ(ledger.count(AnomalyCode::kEmptyEpoch), 0);
  EXPECT_EQ(ledger.entries()[0].epoch, 3);
  EXPECT_EQ(ledger.entries()[1].worker, 1);
}

TEST(AnomalyLedger, CapsEntriesButKeepsCounting) {
  AnomalyLedger ledger;
  for (std::size_t i = 0; i < AnomalyLedger::kMaxEntries + 10; ++i) {
    ledger.add({AnomalyCode::kWorkerException, static_cast<int>(i), 0, 0.0, ""});
  }
  EXPECT_EQ(ledger.entries().size(), AnomalyLedger::kMaxEntries);
  EXPECT_EQ(ledger.total(),
            static_cast<std::int64_t>(AnomalyLedger::kMaxEntries) + 10);
}

TEST(AnomalyLedger, TruncatesOversizedDetail) {
  AnomalyLedger ledger;
  ledger.add({AnomalyCode::kWorkerException, 0, 0, 0.0,
              std::string(AnomalyLedger::kMaxDetailBytes + 100, 'x')});
  EXPECT_EQ(ledger.entries()[0].detail.size(), AnomalyLedger::kMaxDetailBytes);
}

TEST(AnomalyLedger, SaveLoadRoundTripsExactly) {
  AnomalyLedger ledger;
  ledger.add({AnomalyCode::kNonFiniteLoss, 7, -1, kNan, "actor loss"});
  ledger.add({AnomalyCode::kGradientExplosion, 8, -1, 123.5, "grad norm"});
  ledger.add({AnomalyCode::kAllActionsMasked, 9, 2, 0.0, ""});
  ByteWriter out;
  ledger.save(out);
  ByteReader in(out.data());
  const AnomalyLedger restored = AnomalyLedger::load(in);
  in.expect_exhausted("ledger");
  ASSERT_EQ(restored.entries().size(), 3u);
  EXPECT_EQ(restored.entries()[0].code, AnomalyCode::kNonFiniteLoss);
  EXPECT_EQ(restored.entries()[0].epoch, 7);
  EXPECT_TRUE(std::isnan(restored.entries()[0].value));  // NaN survives f64
  EXPECT_EQ(restored.entries()[0].detail, "actor loss");
  EXPECT_DOUBLE_EQ(restored.entries()[1].value, 123.5);
  EXPECT_EQ(restored.entries()[2].worker, 2);
  EXPECT_EQ(restored.total(), 3);
}

TEST(AnomalyLedger, LoadRejectsUnknownCode) {
  ByteWriter out;
  out.i64(0);   // dropped
  out.u32(1);   // one entry
  out.u8(200);  // not a valid AnomalyCode
  out.i64(0);
  out.i64(0);
  out.f64(0.0);
  out.str("");
  ByteReader in(out.data());
  EXPECT_THROW(AnomalyLedger::load(in), CheckpointError);
}

TEST(AnomalyLedger, LoadRejectsNegativeDroppedCounter) {
  ByteWriter out;
  out.i64(-1);
  out.u32(0);
  ByteReader in(out.data());
  EXPECT_THROW(AnomalyLedger::load(in), CheckpointError);
}

TEST(NumericAnomalyError, CarriesTheAnomaly) {
  const NumericAnomalyError error(
      Anomaly{AnomalyCode::kKlBlowup, 4, 2, 0.9, "kl over limit"});
  EXPECT_EQ(error.anomaly().code, AnomalyCode::kKlBlowup);
  EXPECT_EQ(error.anomaly().epoch, 4);
  EXPECT_EQ(error.anomaly().worker, 2);
  EXPECT_NE(std::string(error.what()).find("kl_blowup"), std::string::npos);
}

// Fixture with a small healthy network and matching optimizers, so each test
// can poison exactly one thing and assert the sweep trips the right code.
class CheckEpochHealth : public ::testing::Test {
 protected:
  CheckEpochHealth()
      : rng_(11),
        net_(corridor_net_config(), rng_),
        actor_opt_(net_.actor_parameters(), {.learning_rate = 1e-3}),
        critic_opt_(net_.critic_parameters(), {.learning_rate = 1e-3}) {}

  std::optional<Anomaly> check() {
    return check_epoch_health(net_, actor_opt_, critic_opt_, input_, config_);
  }

  Rng rng_;
  ActorCritic net_;
  Adam actor_opt_;
  Adam critic_opt_;
  EpochHealthInput input_;
  HealthConfig config_{.enabled = true};
};

TEST_F(CheckEpochHealth, HealthyStatePasses) { EXPECT_FALSE(check().has_value()); }

TEST_F(CheckEpochHealth, TripsOnNonFiniteLoss) {
  input_.actor_loss = kNan;
  auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteLoss);

  input_.actor_loss = 0.0;
  input_.critic_loss = kInf;
  a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteLoss);

  input_.critic_loss = 0.0;
  input_.approx_kl = kNan;
  a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteLoss);
}

TEST_F(CheckEpochHealth, TripsOnNonFiniteParameter) {
  auto params = net_.all_parameters();
  params.front().mutable_value().at(0, 0) = kNan;
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteParameter);
  EXPECT_TRUE(std::isnan(a->value));
}

TEST_F(CheckEpochHealth, TripsOnNonFiniteGradient) {
  auto params = net_.all_parameters();
  params.front().mutable_grad().at(0, 0) = kInf;
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteGradient);
}

TEST_F(CheckEpochHealth, TripsOnGradientExplosion) {
  config_.max_grad_norm = 1.0;
  EXPECT_FALSE(check().has_value());  // zero gradients are under any ceiling
  auto params = net_.all_parameters();
  params.front().mutable_grad().at(0, 0) = 50.0;
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kGradientExplosion);
  EXPECT_GE(a->value, 50.0);
}

TEST_F(CheckEpochHealth, GradientNormUnlimitedByDefault) {
  auto params = net_.all_parameters();
  params.front().mutable_grad().at(0, 0) = 1e12;  // huge but finite
  EXPECT_FALSE(check().has_value());
}

TEST_F(CheckEpochHealth, TripsOnNonFiniteAdamMoment) {
  Adam::State state = actor_opt_.export_state();
  state.v.front().at(0, 0) = kNan;
  actor_opt_.import_state(state);
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kNonFiniteAdamMoment);
}

TEST_F(CheckEpochHealth, TripsOnKlBlowup) {
  config_.max_approx_kl = 0.5;
  input_.approx_kl = -0.8;  // magnitude matters, not sign
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kKlBlowup);
  input_.approx_kl = 0.4;
  EXPECT_FALSE(check().has_value());
}

TEST_F(CheckEpochHealth, TripsOnEntropyCollapse) {
  config_.min_mean_entropy = 0.1;
  input_.mean_entropy = 0.01;
  input_.entropy_steps = 0;
  EXPECT_FALSE(check().has_value());  // no entropy sample: floor not armed
  input_.entropy_steps = 64;
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kEntropyCollapse);
}

TEST_F(CheckEpochHealth, TripsOnValueLossExplosion) {
  config_.max_critic_loss = 10.0;
  input_.critic_loss = 25.0;
  const auto a = check();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->code, AnomalyCode::kValueLossExplosion);
}

TEST_F(CheckEpochHealth, HeuristicsDisarmedAtZeroThreshold) {
  input_.approx_kl = 100.0;
  input_.mean_entropy = 1e-9;
  input_.entropy_steps = 64;
  input_.critic_loss = 1e9;
  EXPECT_FALSE(check().has_value());
}

TEST(PpoCheckNumerics, AbortsOnPoisonedBatch) {
  Rng rng(13);
  ActorCritic net(corridor_net_config(), rng);
  Adam actor_opt(net.actor_parameters(), {.learning_rate = 1e-3});
  Adam critic_opt(net.critic_parameters(), {.learning_rate = 1e-3});

  // A batch whose advantage is NaN makes the very first actor loss NaN.
  testing::CorridorEnv env;
  Batch batch;
  StepRecord record;
  record.obs = env.observe();
  record.mask = env.action_mask();
  record.action = 1;
  record.log_prob = -0.7;
  batch.steps = {record};
  batch.advantages = {kNan};
  batch.returns = {0.5};

  PpoConfig config;
  config.train_actor_iters = 3;
  config.train_critic_iters = 0;
  config.check_numerics = true;
  try {
    ppo_update(net, actor_opt, critic_opt, batch, config);
    FAIL() << "expected NumericAnomalyError";
  } catch (const NumericAnomalyError& e) {
    EXPECT_EQ(e.anomaly().code, AnomalyCode::kNonFiniteLoss);
    // The abort fired before any step(): the weights stayed finite.
    EXPECT_FALSE(find_non_finite_value(net.all_parameters()).first);
    EXPECT_EQ(actor_opt.step_count(), 0);
  }
}

}  // namespace
}  // namespace nptsn
