// Property tests: the optimized failure analyzer (Algorithm 3 — switch-only
// scenarios, superset pruning) must agree with an exhaustive analyzer that
// enumerates every mixed link/switch failure with probability >= R and no
// pruning. This validates the paper's Eq. 6 reduction on randomized
// topologies.
#include <gtest/gtest.h>

#include "analysis/exhaustive.hpp"
#include "analysis/failure_analyzer.hpp"
#include "testing/test_problems.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

// Builds a random monotone topology over the tiny problem.
Topology random_topology(const PlanningProblem& problem, Rng& rng) {
  Topology t(problem);
  // Plan a random subset of switches at random levels.
  for (const NodeId s : problem.switch_ids()) {
    if (rng.uniform() < 0.8) {
      t.add_switch(s);
      const int upgrades = rng.uniform_int(0, 3);
      for (int i = 0; i < upgrades; ++i) t.upgrade_switch(s);
    }
  }
  // Add random feasible links.
  for (const auto& edge : problem.connections.edges()) {
    const bool endpoints_exist =
        (!problem.is_switch(edge.u) || t.has_switch(edge.u)) &&
        (!problem.is_switch(edge.v) || t.has_switch(edge.v));
    if (!endpoints_exist || rng.uniform() < 0.35) continue;
    const auto max_deg = [&](NodeId v) {
      return problem.is_switch(v) ? problem.max_switch_degree() : problem.max_es_degree;
    };
    if (t.degree(edge.u) < max_deg(edge.u) && t.degree(edge.v) < max_deg(edge.v)) {
      t.add_link(edge.u, edge.v);
    }
  }
  return t;
}

class AnalyzerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerEquivalence, MatchesExhaustiveVerdict) {
  Rng rng(GetParam());
  auto problem = tiny_problem(3);
  // Random goal across the interesting range (single-A .. dual-B orders).
  const double goals[] = {1e-6, 1e-7, 1e-8};
  problem.reliability_goal = goals[rng.uniform_int(0, 2)];

  const Topology t = random_topology(problem, rng);
  const HeuristicRecovery nbf;

  const auto fast = FailureAnalyzer(nbf).analyze(t);
  const auto slow = analyze_exhaustive(t, nbf, /*max_order=*/3);

  EXPECT_EQ(fast.reliable, slow.reliable)
      << "seed " << GetParam() << ": Algorithm 3 disagrees with the exhaustive check";
  // Pruning must never INCREASE work beyond the exhaustive enumeration.
  if (fast.reliable) {
    EXPECT_LE(fast.nbf_calls, slow.nbf_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, AnalyzerEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(AnalyzerEquivalence, KnownReliableAndUnreliableAgree) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  {
    const auto t = dual_homed_topology(p, Asil::A);
    EXPECT_TRUE(FailureAnalyzer(nbf).analyze(t).reliable);
    EXPECT_TRUE(analyze_exhaustive(t, nbf).reliable);
  }
  {
    const auto t = star_topology(p, Asil::A);
    EXPECT_FALSE(FailureAnalyzer(nbf).analyze(t).reliable);
    EXPECT_FALSE(analyze_exhaustive(t, nbf).reliable);
  }
}

// Eq. 6 direction checked explicitly: if a topology survives the switch
// projection of a mixed failure, it survives the mixed failure itself.
TEST(AnalyzerEquivalence, SwitchProjectionDominatesMixedFailures) {
  Rng rng(4242);
  const auto p = tiny_problem(3);
  const HeuristicRecovery nbf;
  for (int trial = 0; trial < 20; ++trial) {
    const Topology t = random_topology(p, rng);
    const auto edges = t.graph().edges();
    if (edges.empty()) continue;
    // Build a random mixed failure from planned components.
    FailureScenario mixed;
    for (const auto& e : edges) {
      if (rng.uniform() < 0.2) mixed.failed_links.push_back(EdgeKey{e.u, e.v});
    }
    for (const NodeId s : t.selected_switches()) {
      if (rng.uniform() < 0.2) mixed.failed_switches.push_back(s);
    }
    mixed.normalize();

    // Project: each failed link maps to its lowest-ASIL endpoint; ties
    // prefer the switch (end stations never appear in Gf).
    FailureScenario projected;
    projected.failed_switches = mixed.failed_switches;
    for (const auto& link : mixed.failed_links) {
      NodeId lowest = link.b;
      if (lower_than(t.node_asil(link.a), t.node_asil(link.b)) ||
          (t.node_asil(link.a) == t.node_asil(link.b) && p.is_switch(link.a))) {
        lowest = link.a;
      }
      if (p.is_switch(lowest)) projected.failed_switches.push_back(lowest);
    }
    projected.normalize();

    // (1) The projection's residual is a subgraph of the mixed residual.
    const Graph mixed_residual = t.residual(mixed);
    const Graph projected_residual = t.residual(projected);
    for (const auto& e : projected_residual.edges()) {
      EXPECT_TRUE(mixed_residual.has_edge(e.u, e.v))
          << "trial " << trial << ": projection kept a link the mixed failure removed";
    }
    // (2) The projection is at least as probable (link ASIL = min rule).
    EXPECT_GE(failure_probability(t, projected) + 1e-18, failure_probability(t, mixed));
    // (3) Deployability: the flow state recovered for the projection only
    // uses links alive under the mixed failure, so the controller can apply
    // it verbatim — the run-time argument behind checking switches only.
    const auto recovered = nbf.recover(t, projected);
    if (recovered.ok()) {
      for (const auto& assignment : recovered.state) {
        ASSERT_TRUE(assignment.has_value());
        for (std::size_t h = 0; h + 1 < assignment->path.size(); ++h) {
          EXPECT_TRUE(mixed_residual.has_edge(assignment->path[h], assignment->path[h + 1]));
        }
      }
    }
  }
}

}  // namespace
}  // namespace nptsn
