// Independent-auditor tests: clean audits on honest certificates, the
// adversarial mutation suite (every forged certificate must be caught with
// the right taxonomy code, across seeds), lying recovery mechanisms, and the
// wall-clock guard on the exhaustive completeness sweep.
#include "analysis/auditor.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "analysis/failure_analyzer.hpp"
#include "testing/lying_nbf.hpp"
#include "testing/test_problems.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::LyingNbf;
using testing::SlowNbf;
using testing::StaleStateNbf;
using testing::star_topology;
using testing::tiny_problem;

// The problem lives behind a unique_ptr so its address stays stable: the
// Topology (and through it the certificate build) holds a pointer to it.
struct Fixture {
  std::unique_ptr<PlanningProblem> problem;
  Topology topology;
  ReliabilityCertificate certificate;
};

// Seeded honest fixtures: varying flow sets and switch ASIL plans, each with
// a freshly built (and baseline-clean) certificate.
Fixture make_fixture(int seed) {
  auto problem = std::make_unique<PlanningProblem>(tiny_problem(2 + seed % 3));
  Topology topology = dual_homed_topology(*problem, Asil::A);
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  // Up to ASIL-C: a single-switch failure must stay above R so the frontier
  // keeps all three scenarios across seeds.
  const int upgrades = static_cast<int>(rng.next_u64() % 3);
  for (int i = 0; i < upgrades; ++i) topology.upgrade_switch(4);

  const auto built = build_certificate(topology, HeuristicRecovery());
  EXPECT_TRUE(built.ok);
  return Fixture{std::move(problem), std::move(topology), built.certificate};
}

TEST(Auditor, HonestCertificateAuditsClean) {
  for (int seed = 0; seed < 3; ++seed) {
    const Fixture fixture = make_fixture(seed);
    const AuditReport report = audit_certificate(*fixture.problem, fixture.certificate);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.summary();
    EXPECT_GE(report.scenarios_replayed, 3);
    EXPECT_GE(report.scenarios_enumerated, 3);
    EXPECT_FALSE(report.exhaustive_fallback);
  }
}

TEST(Auditor, AuditAgainstDifferentProblemIsProblemMismatch) {
  const Fixture fixture = make_fixture(0);
  // Same flow count (so the structural gates pass) but a different R: the
  // problem fingerprint must reject the pairing.
  PlanningProblem other = tiny_problem(2);
  other.reliability_goal = 1e-5;
  const AuditReport report = audit_certificate(other, fixture.certificate);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has(AuditCode::kProblemMismatch)) << report.summary();
}

// --- the adversarial certificate mutator suite ------------------------------
// Every mutation kind must be rejected with its expected taxonomy code on
// every seed — zero forged certificates escape.

struct Mutation {
  const char* name;
  AuditCode expected;
  std::function<void(Fixture&)> apply;
};

std::vector<Mutation> mutations() {
  return {
      {"drop_link", AuditCode::kTopologyMismatch,
       [](Fixture& f) {
         f.certificate.links.pop_back();
         f.certificate.link_levels.pop_back();
       }},
      {"tamper_link_asil", AuditCode::kAsilInconsistency,
       [](Fixture& f) {
         std::uint8_t& level = f.certificate.link_levels.front();
         level = level > 0 ? static_cast<std::uint8_t>(level - 1)
                           : static_cast<std::uint8_t>(level + 1);
       }},
      {"delete_scenario", AuditCode::kMissingScenario,
       [](Fixture& f) {
         // Remove a non-empty scenario's proof; the re-enumeration must
         // notice the hole in the frontier.
         f.certificate.proofs.erase(f.certificate.proofs.begin() + 1);
       }},
      {"corrupt_slot", AuditCode::kScheduleViolation,
       [](Fixture& f) {
         for (auto& proof : f.certificate.proofs) {
           for (auto& assignment : proof.state) {
             if (assignment && !assignment->slots.empty()) {
               assignment->slots.front() = f.problem->tsn.slots_per_base * 100;
               return;
             }
           }
         }
       }},
      {"tamper_cost", AuditCode::kCostMismatch,
       [](Fixture& f) { f.certificate.claimed_cost -= 1.0; }},
      {"tamper_probability", AuditCode::kProbabilityMismatch,
       [](Fixture& f) { f.certificate.proofs.back().probability *= 0.5; }},
      {"tamper_problem_fp", AuditCode::kProblemMismatch,
       [](Fixture& f) { f.certificate.problem_fp ^= 0x1; }},
      {"tamper_topology_fp", AuditCode::kTopologyMismatch,
       [](Fixture& f) { f.certificate.topology_fp.a ^= 0x1; }},
      {"unplace_flow", AuditCode::kUnplacedFlow,
       [](Fixture& f) { f.certificate.proofs.back().state.front().reset(); }},
      {"stale_state_swap", AuditCode::kDeadComponentUse,
       [](Fixture& f) {
         // Give some failed-switch scenario the pre-failure FI0 state of a
         // flow that transits exactly that switch: the replay must route
         // frames through the dead component.
         const auto& fi0 = f.certificate.proofs.front().state;
         const NodeId transit = fi0.front()->path[1];
         for (auto& proof : f.certificate.proofs) {
           if (proof.scenario.failed_switches == std::vector<NodeId>{transit}) {
             proof.state = fi0;
             return;
           }
         }
         FAIL() << "no single-failure proof for transit switch " << transit;
       }},
      {"spurious_scenario", AuditCode::kSpuriousScenario,
       [](Fixture& f) {
         // Append a safe fault (both switches, probability < R) with an
         // honestly recomputed probability and a plausible state.
         ScenarioProof extra;
         extra.scenario.failed_switches = {4, 5};
         extra.probability = failure_probability(f.topology, extra.scenario);
         extra.state = f.certificate.proofs.front().state;
         f.certificate.proofs.push_back(std::move(extra));
       }},
  };
}

TEST(AuditorMutations, EveryMutationCaughtWithCorrectTaxonomyAcrossSeeds) {
  for (const Mutation& mutation : mutations()) {
    for (int seed = 0; seed < 3; ++seed) {
      Fixture fixture = make_fixture(seed);
      ASSERT_TRUE(audit_certificate(*fixture.problem, fixture.certificate).ok)
          << mutation.name << " seed " << seed << ": baseline not clean";
      mutation.apply(fixture);
      const AuditReport report = audit_certificate(*fixture.problem, fixture.certificate);
      EXPECT_FALSE(report.ok) << mutation.name << " seed " << seed << " escaped";
      EXPECT_TRUE(report.has(mutation.expected))
          << mutation.name << " seed " << seed << " produced: " << report.summary();
    }
  }
}

TEST(AuditorMutations, SerializedMutantsAreAlsoCaught) {
  // The same forgery shipped through the binary format (mutate -> save ->
  // load -> audit): serialization must not launder a forged certificate.
  for (int seed = 0; seed < 3; ++seed) {
    Fixture fixture = make_fixture(seed);
    fixture.certificate.claimed_cost -= 1.0;
    ByteWriter out;
    save_certificate(fixture.certificate, out);
    ByteReader in(out.data());
    const ReliabilityCertificate reloaded = load_certificate(in);
    const AuditReport report = audit_certificate(*fixture.problem, reloaded);
    EXPECT_FALSE(report.ok);
    EXPECT_TRUE(report.has(AuditCode::kCostMismatch));
  }
}

// --- lying recovery mechanisms ----------------------------------------------

TEST(AuditorLyingNbf, SwallowedErrorsAreCaughtAsUnplacedFlows) {
  for (int seed = 0; seed < 3; ++seed) {
    const auto problem = tiny_problem(2 + seed);
    const auto topology = star_topology(problem, Asil::A);  // single point of failure
    const HeuristicRecovery honest;
    const LyingNbf liar(honest);

    // The analyzer, fed by the liar, wrongly reports the star reliable.
    ASSERT_TRUE(FailureAnalyzer(liar).analyze(topology).reliable);
    const auto built = build_certificate(topology, liar);
    ASSERT_TRUE(built.ok);

    const AuditReport report = audit_certificate(problem, built.certificate);
    EXPECT_FALSE(report.ok) << "seed " << seed;
    EXPECT_TRUE(report.has(AuditCode::kUnplacedFlow)) << report.summary();
  }
}

TEST(AuditorLyingNbf, StaleStatesAreCaughtAsDeadComponentUse) {
  for (int seed = 0; seed < 3; ++seed) {
    const auto problem = tiny_problem(2 + seed);
    const auto topology = dual_homed_topology(problem, Asil::A);
    const HeuristicRecovery honest;
    const StaleStateNbf stale(honest);

    ASSERT_TRUE(FailureAnalyzer(stale).analyze(topology).reliable);
    const auto built = build_certificate(topology, stale);
    ASSERT_TRUE(built.ok);

    const AuditReport report = audit_certificate(problem, built.certificate);
    EXPECT_FALSE(report.ok) << "seed " << seed;
    EXPECT_TRUE(report.has(AuditCode::kDeadComponentUse)) << report.summary();
  }
}

// --- auditor independence and the wall-clock guard ---------------------------

TEST(AuditorGuard, AuditMakesNoNbfCallsAndIgnoresNbfLatency) {
  const auto problem = tiny_problem();
  const auto topology = dual_homed_topology(problem, Asil::A);
  const HeuristicRecovery honest;
  const SlowNbf slow(honest, std::chrono::milliseconds(50));

  const auto built = build_certificate(topology, slow);
  ASSERT_TRUE(built.ok);
  const std::int64_t calls_after_build = slow.calls();
  ASSERT_GT(calls_after_build, 0);
  ASSERT_GT(built.wall_seconds, 0.1);  // the builder DOES pay the NBF latency

  const AuditReport report = audit_certificate(problem, built.certificate);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(slow.calls(), calls_after_build);  // the audit never calls the NBF
  EXPECT_LT(report.wall_seconds, built.wall_seconds);
}

TEST(AuditorGuard, ExhaustedBudgetFallsBackWithNote) {
  const auto problem = tiny_problem();
  const auto built = build_certificate(dual_homed_topology(problem, Asil::A),
                                       HeuristicRecovery());
  ASSERT_TRUE(built.ok);

  AuditOptions options;
  options.exhaustive_budget_seconds = 0.0;  // guard fires immediately
  const AuditReport report = audit_certificate(problem, built.certificate, options);
  // Degraded coverage is still a clean audit on an honest certificate...
  EXPECT_TRUE(report.ok) << report.summary();
  // ...but the fallback is visible, never silent.
  EXPECT_TRUE(report.exhaustive_fallback);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.front().find("abandoned"), std::string::npos);
}

TEST(AuditorGuard, ScenarioLimitSkipsSweepWithNote) {
  const auto problem = tiny_problem();
  const auto built = build_certificate(dual_homed_topology(problem, Asil::A),
                                       HeuristicRecovery());
  ASSERT_TRUE(built.ok);

  AuditOptions options;
  options.exhaustive_scenario_limit = 1;
  const AuditReport report = audit_certificate(problem, built.certificate, options);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.exhaustive_fallback);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.front().find("skipped"), std::string::npos);
}

TEST(AuditorReport, SummaryNamesTheTaxonomyCodes)
{
  Fixture fixture = make_fixture(0);
  fixture.certificate.claimed_cost += 5.0;
  const AuditReport report = audit_certificate(*fixture.problem, fixture.certificate);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("cost_mismatch"), std::string::npos);
}

}  // namespace
}  // namespace nptsn
