#include "analysis/failure_analyzer.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

TEST(FailureAnalyzer, DualHomedAsilAIsReliableAtPaperR) {
  const auto p = tiny_problem(3);
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_TRUE(outcome.reliable);
  EXPECT_TRUE(outcome.counterexample.empty());
  EXPECT_TRUE(outcome.errors.empty());
}

TEST(FailureAnalyzer, StarWithAsilAIsUnreliable) {
  const auto p = tiny_problem(2);
  const auto t = star_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_FALSE(outcome.reliable);
  EXPECT_EQ(outcome.counterexample.failed_switches, (std::vector<NodeId>{4}));
  EXPECT_FALSE(outcome.errors.empty());
}

TEST(FailureAnalyzer, StarWithAsilDIsReliable) {
  // A single ASIL-D failure sits just below R = 1e-6: a safe fault. This is
  // the paper's "ASIL-D device functions without a backup" property that
  // makes the all-D original topology valid.
  const auto p = tiny_problem(2);
  const auto t = star_topology(p, Asil::D);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_TRUE(outcome.reliable);
  EXPECT_EQ(outcome.max_order, 0);  // no non-safe switch combination exists
}

TEST(FailureAnalyzer, EmptyTopologyFailsAtOrderZero) {
  const auto p = tiny_problem(2);
  const Topology t(p);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_FALSE(outcome.reliable);
  EXPECT_TRUE(outcome.counterexample.empty());  // fails with NO failure
  EXPECT_EQ(outcome.errors.size(), 2u);
}

TEST(FailureAnalyzer, MaxOrderGrowsWithLooserGoal) {
  auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  {
    const auto t = dual_homed_topology(p, Asil::A);
    EXPECT_EQ(FailureAnalyzer(nbf).analyze(t).max_order, 1);
  }
  p.reliability_goal = 1e-7;  // now dual-A failures are non-safe
  {
    const auto t = dual_homed_topology(p, Asil::A);
    const auto outcome = FailureAnalyzer(nbf).analyze(t);
    EXPECT_EQ(outcome.max_order, 2);
    // Both switches failing kills everything: unreliable.
    EXPECT_FALSE(outcome.reliable);
    EXPECT_EQ(outcome.counterexample.failed_switches, (std::vector<NodeId>{4, 5}));
  }
}

TEST(FailureAnalyzer, HighestOrderCheckedFirst) {
  // With R = 1e-7 the first scenario checked is the dual failure {4, 5};
  // since it is non-recoverable the analyzer returns after ONE NBF call.
  auto p = tiny_problem(2);
  p.reliability_goal = 1e-7;
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_FALSE(outcome.reliable);
  EXPECT_EQ(outcome.nbf_calls, 1);
}

TEST(FailureAnalyzer, SupersetPruningSkipsSubsets) {
  // maxord = 1 on the reliable dual-homed net: the two single-switch
  // scenarios are checked and survive; the empty scenario (order 0) is a
  // subset of a survived scenario and must be pruned without an NBF call.
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  ASSERT_TRUE(outcome.reliable);
  EXPECT_EQ(outcome.max_order, 1);
  EXPECT_EQ(outcome.nbf_calls, 2);
  EXPECT_EQ(outcome.scenarios_pruned, 1);
}

TEST(FailureAnalyzer, ProbabilitySkipCounts) {
  // Mixed ASIL: with R = 1e-6, a dual failure of (A, B) has probability
  // ~1e-7 < R and is skipped as a safe fault without an NBF call.
  auto p = tiny_problem(2);
  p.reliability_goal = 1e-8;  // maxord 2 for A/B mix
  auto t = dual_homed_topology(p, Asil::A);
  t.upgrade_switch(5);  // B
  t.upgrade_switch(5);  // C
  t.upgrade_switch(5);  // D: dual (A, D) ~ 1e-9 < R -> skipped
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  EXPECT_EQ(outcome.max_order, 1);  // top-2 product ~1e-9 < 1e-8
  EXPECT_EQ(outcome.scenarios_skipped, 0);
}

TEST(FailureAnalyzer, ReliabilityDependsOnSchedulability) {
  // Connectivity survives the failure, but the residual capacity cannot
  // carry all flows: the analyzer must catch the schedulability violation
  // (the paper's core argument against connectivity-only planning).
  auto p = tiny_problem(4);
  p.tsn.slots_per_base = 2;  // very tight capacity
  for (auto& f : p.flows) f = {0, 1, 500.0, 64, 500.0};  // 4 identical flows
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  // With both switches alive the two routes carry 2 flows; 4 don't fit, so
  // even the empty failure fails -> unreliable despite full connectivity.
  EXPECT_FALSE(outcome.reliable);
}

TEST(FailureAnalyzer, FlowLevelRedundancyChecksEndStations) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  FailureAnalyzer::Options options;
  options.flow_level_redundancy = true;
  const auto outcome = FailureAnalyzer(nbf, options).analyze(t);
  // End stations count as ASIL-D here, so their single failures are safe
  // faults; non-D switches are still checked and survivable.
  EXPECT_TRUE(outcome.reliable);
}

TEST(FailureAnalyzer, CounterexampleIsActionableForSoag) {
  // The returned scenario + errors must identify a concrete repair target.
  const auto p = tiny_problem(2);
  auto t = star_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  ASSERT_FALSE(outcome.reliable);
  for (const auto& [s, d] : outcome.errors) {
    EXPECT_TRUE(p.is_end_station(s));
    EXPECT_TRUE(p.is_end_station(d));
  }
}

TEST(FailureAnalyzer, NbfCallCountBoundedByCombinations) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  const auto outcome = FailureAnalyzer(nbf).analyze(t);
  // maxord 1, two switches: at most 2 singles + 1 empty = 3 NBF calls.
  EXPECT_LE(outcome.nbf_calls, 3);
  EXPECT_GE(outcome.nbf_calls, 2);
}

}  // namespace
}  // namespace nptsn
