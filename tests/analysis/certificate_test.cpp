// Reliability-certificate tests: builder-vs-analyzer consistency, frontier
// coverage, superset flow-state reuse, serialization round trips, and
// loader robustness against corrupt bytes.
#include "analysis/certificate.hpp"

#include <gtest/gtest.h>

#include "analysis/failure_analyzer.hpp"
#include "testing/test_problems.hpp"
#include "tsn/recovery.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

void expect_certificates_equal(const ReliabilityCertificate& a,
                               const ReliabilityCertificate& b) {
  EXPECT_EQ(a.problem_fp, b.problem_fp);
  EXPECT_EQ(a.switch_ids, b.switch_ids);
  EXPECT_EQ(a.switch_levels, b.switch_levels);
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.link_levels, b.link_levels);
  EXPECT_EQ(a.topology_fp, b.topology_fp);
  EXPECT_EQ(a.reliability_goal, b.reliability_goal);
  EXPECT_EQ(a.claimed_cost, b.claimed_cost);
  EXPECT_EQ(a.max_order, b.max_order);
  EXPECT_EQ(a.flow_level_redundancy, b.flow_level_redundancy);
  ASSERT_EQ(a.proofs.size(), b.proofs.size());
  for (std::size_t i = 0; i < a.proofs.size(); ++i) {
    EXPECT_EQ(a.proofs[i].scenario.failed_switches, b.proofs[i].scenario.failed_switches);
    EXPECT_EQ(a.proofs[i].scenario.failed_links, b.proofs[i].scenario.failed_links);
    EXPECT_EQ(a.proofs[i].probability, b.proofs[i].probability);
    ASSERT_EQ(a.proofs[i].state.size(), b.proofs[i].state.size());
    for (std::size_t f = 0; f < a.proofs[i].state.size(); ++f) {
      const auto& sa = a.proofs[i].state[f];
      const auto& sb = b.proofs[i].state[f];
      ASSERT_EQ(sa.has_value(), sb.has_value());
      if (sa) {
        EXPECT_EQ(sa->path, sb->path);
        EXPECT_EQ(sa->slots, sb->slots);
      }
    }
  }
}

TEST(CertificateBuild, SucceedsOnReliableTopologyAndCoversFrontier) {
  const auto problem = tiny_problem();
  const auto topology = dual_homed_topology(problem, Asil::A);
  const HeuristicRecovery nbf;

  const auto built = build_certificate(topology, nbf);
  ASSERT_TRUE(built.ok);
  const ReliabilityCertificate& cert = built.certificate;

  EXPECT_EQ(cert.problem_fp, problem_fingerprint(problem));
  EXPECT_EQ(cert.topology_fp, topology.graph_fingerprint());
  EXPECT_EQ(cert.reliability_goal, problem.reliability_goal);
  EXPECT_EQ(cert.claimed_cost, topology.cost());
  EXPECT_EQ(cert.switch_ids, (std::vector<NodeId>{4, 5}));
  EXPECT_EQ(cert.links.size(), topology.graph().edges().size());

  // maxord 1 for two ASIL-A switches at R = 1e-6: the frontier is the empty
  // scenario plus each single-switch failure.
  EXPECT_EQ(cert.max_order, 1);
  ASSERT_EQ(cert.proofs.size(), 3u);
  EXPECT_TRUE(cert.proofs[0].scenario.empty());
  EXPECT_EQ(cert.proofs[1].scenario.failed_switches, (std::vector<NodeId>{4}));
  EXPECT_EQ(cert.proofs[2].scenario.failed_switches, (std::vector<NodeId>{5}));
  EXPECT_EQ(cert.proofs[0].probability, 1.0);
  for (const ScenarioProof& proof : cert.proofs) {
    EXPECT_EQ(proof.probability, failure_probability(topology, proof.scenario));
    ASSERT_EQ(proof.state.size(), problem.flows.size());
    for (const auto& assignment : proof.state) EXPECT_TRUE(assignment.has_value());
  }
}

TEST(CertificateBuild, FailsOnSinglePointOfFailureWithAnalyzerCounterexample) {
  const auto problem = tiny_problem();
  const auto topology = star_topology(problem, Asil::A);
  const HeuristicRecovery nbf;

  const auto analysis = FailureAnalyzer(nbf).analyze(topology);
  ASSERT_FALSE(analysis.reliable);

  const auto built = build_certificate(topology, nbf);
  EXPECT_FALSE(built.ok);
  EXPECT_EQ(built.counterexample.failed_switches, analysis.counterexample.failed_switches);
  EXPECT_EQ(built.errors, analysis.errors);
}

TEST(CertificateBuild, AgreesWithAnalyzerAcrossUpgradeLevels) {
  const auto problem = tiny_problem(3);
  const HeuristicRecovery nbf;
  for (const Asil level : kAllAsil) {
    const auto dual = dual_homed_topology(problem, level);
    EXPECT_EQ(build_certificate(dual, nbf).ok, FailureAnalyzer(nbf).analyze(dual).reliable);
    const auto star = star_topology(problem, level);
    EXPECT_EQ(build_certificate(star, nbf).ok, FailureAnalyzer(nbf).analyze(star).reliable);
  }
}

// Fails (claims unrecoverable flows) exactly on the empty scenario;
// delegates everything else. The greedy NBF verdict is not monotone, so the
// builder must prove such a subset via an already-proven superset's state.
class EmptyFailNbf final : public StatelessNbf {
 public:
  explicit EmptyFailNbf(const StatelessNbf& inner) : inner_(&inner) {}
  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    if (scenario.empty()) {
      NbfResult result;
      result.errors.push_back({0, 1});
      return result;
    }
    return inner_->recover(topology, scenario);
  }

 private:
  const StatelessNbf* inner_;
};

TEST(CertificateBuild, ReusesProvenSupersetStateForFailedSubset) {
  const auto problem = tiny_problem();
  const auto topology = dual_homed_topology(problem, Asil::A);
  const HeuristicRecovery heuristic;
  const EmptyFailNbf nbf(heuristic);

  // The pruning analyzer never evaluates the empty scenario (it is a subset
  // of the proven singles), so it still reports reliable.
  ASSERT_TRUE(FailureAnalyzer(nbf).analyze(topology).reliable);

  const auto built = build_certificate(topology, nbf);
  ASSERT_TRUE(built.ok);
  EXPECT_EQ(built.superset_reuses, 1);
  ASSERT_EQ(built.certificate.proofs.size(), 3u);
  // The empty scenario's proof carries the {4}-failure state (the first
  // proven superset in enumeration order): routes avoid switch 4 entirely.
  ASSERT_TRUE(built.certificate.proofs[0].scenario.empty());
  for (const auto& assignment : built.certificate.proofs[0].state) {
    ASSERT_TRUE(assignment.has_value());
    for (const NodeId hop : assignment->path) EXPECT_NE(hop, 4);
  }
}

TEST(CertificateSerialization, FileRoundTripIsExact) {
  const auto problem = tiny_problem(3);
  const auto topology = dual_homed_topology(problem, Asil::B);
  const auto built = build_certificate(topology, HeuristicRecovery());
  ASSERT_TRUE(built.ok);

  const std::string path = ::testing::TempDir() + "certificate_roundtrip.bin";
  save_certificate_file(path, built.certificate);
  const ReliabilityCertificate loaded = load_certificate_file(path);
  expect_certificates_equal(built.certificate, loaded);
  std::remove(path.c_str());
}

TEST(CertificateSerialization, ProblemFingerprintSeparatesProblems) {
  const auto base = tiny_problem();
  const std::uint64_t fp = problem_fingerprint(base);
  EXPECT_EQ(fp, problem_fingerprint(tiny_problem()));  // deterministic

  auto more_flows = tiny_problem(3);
  EXPECT_NE(fp, problem_fingerprint(more_flows));

  auto other_goal = tiny_problem();
  other_goal.reliability_goal = 1e-5;
  EXPECT_NE(fp, problem_fingerprint(other_goal));

  auto other_period = tiny_problem();
  other_period.tsn.slots_per_base = 40;
  EXPECT_NE(fp, problem_fingerprint(other_period));

  auto other_degree = tiny_problem();
  other_degree.max_es_degree = 3;
  EXPECT_NE(fp, problem_fingerprint(other_degree));
}

TEST(CertificateSerialization, LoaderRejectsCorruptBytesWithCheckpointError) {
  const auto problem = tiny_problem();
  const auto built = build_certificate(dual_homed_topology(problem), HeuristicRecovery());
  ASSERT_TRUE(built.ok);
  ByteWriter writer;
  save_certificate(built.certificate, writer);
  const std::vector<std::uint8_t> valid = writer.data();

  auto try_load = [](const std::vector<std::uint8_t>& bytes) {
    ByteReader in(bytes);
    ReliabilityCertificate cert = load_certificate(in);
    in.expect_exhausted("certificate");
    return cert;
  };

  // Truncation at every prefix length: CheckpointError or nothing.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(try_load(truncated), CheckpointError) << "prefix length " << len;
  }

  // Deterministic bit flips over the whole buffer: either the loader still
  // accepts the value-level change or it throws CheckpointError — never
  // anything else (ASan/UBSan in CI turn UB into a failure here).
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t pos = static_cast<std::size_t>(rng.next_u64() % mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    try {
      (void)try_load(mutated);
    } catch (const CheckpointError&) {
      // expected failure mode
    }
  }
}

}  // namespace
}  // namespace nptsn
