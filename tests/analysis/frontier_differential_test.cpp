// Randomized differential suite for the higher-order failure frontiers
// (frontier floor + mixed link/switch scenarios): across generated zonal
// instances and growth trajectories, every engine configuration — thread
// counts, incremental reuse, shared caches, packed vs scalar NBF — must
// return BYTE-identical verdicts, counterexamples, ErrorSets, and logical
// counters to the sequential reference analyzer at every (min_order,
// include_links) setting; and a min_order=2 mixed certificate must audit
// clean, survive serialization, and reject tampering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/auditor.hpp"
#include "analysis/certificate.hpp"
#include "analysis/engine_cache.hpp"
#include "analysis/failure_analyzer.hpp"
#include "analysis/verification_engine.hpp"
#include "scenarios/generator.hpp"
#include "testing/test_problems.hpp"
#include "tsn/sim_kernels.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

std::vector<std::uint8_t> outcome_bytes(const AnalysisOutcome& outcome) {
  ByteWriter w;
  w.u8(outcome.reliable ? 1 : 0);
  for (const NodeId v : outcome.counterexample.failed_switches) w.i64(v);
  for (const EdgeKey& e : outcome.counterexample.failed_links) {
    w.i64(e.a);
    w.i64(e.b);
  }
  for (const auto& [source, destination] : outcome.errors) {
    w.i64(source);
    w.i64(destination);
  }
  w.i64(outcome.nbf_calls);
  w.i64(outcome.scenarios_pruned);
  w.i64(outcome.scenarios_skipped);
  w.i64(outcome.max_order);
  return w.data();
}

void expect_equivalent(const AnalysisOutcome& engine, const AnalysisOutcome& seq,
                       const std::string& context) {
  EXPECT_EQ(engine.reliable, seq.reliable) << context;
  EXPECT_EQ(engine.counterexample.failed_switches, seq.counterexample.failed_switches)
      << context;
  EXPECT_EQ(engine.counterexample.failed_links, seq.counterexample.failed_links)
      << context;
  EXPECT_EQ(engine.errors, seq.errors) << context;
  EXPECT_EQ(engine.nbf_calls, seq.nbf_calls) << context;
  EXPECT_EQ(engine.scenarios_pruned, seq.scenarios_pruned) << context;
  EXPECT_EQ(engine.scenarios_skipped, seq.scenarios_skipped) << context;
  EXPECT_EQ(engine.max_order, seq.max_order) << context;
  EXPECT_EQ(outcome_bytes(engine), outcome_bytes(seq)) << context;
}

// A monotone growth trajectory: random switch additions/upgrades and random
// feasible link additions, one mutation per step (mirrors SOAG actions).
std::vector<Topology> random_trajectory(const PlanningProblem& problem, Rng& rng,
                                        int steps) {
  std::vector<Topology> states;
  Topology t(problem);
  states.push_back(t);
  const auto edges = problem.connections.edges();
  for (int step = 0; step < steps; ++step) {
    bool mutated = false;
    if (rng.uniform() < 0.45) {
      const auto switches = problem.switch_ids();
      const NodeId s = switches[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(switches.size()) - 1))];
      if (!t.has_switch(s)) {
        t.add_switch(s);
        mutated = true;
      } else if (t.switch_asil(s) != Asil::D) {
        t.upgrade_switch(s);
        mutated = true;
      }
    } else {
      for (int attempt = 0; attempt < 8 && !mutated; ++attempt) {
        const auto& e = edges[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(edges.size()) - 1))];
        const bool endpoints_exist = (!problem.is_switch(e.u) || t.has_switch(e.u)) &&
                                     (!problem.is_switch(e.v) || t.has_switch(e.v));
        if (!endpoints_exist || t.has_link(e.u, e.v)) continue;
        const auto max_deg = [&](NodeId v) {
          return problem.is_switch(v) ? problem.max_switch_degree() : problem.max_es_degree;
        };
        if (t.degree(e.u) < max_deg(e.u) && t.degree(e.v) < max_deg(e.v)) {
          t.add_link(e.u, e.v);
          mutated = true;
        }
      }
    }
    if (mutated) states.push_back(t);
  }
  return states;
}

// A small generated zonal instance (2 zones, full inter-zone switch mesh) —
// the procedural family the stress/corpus machinery runs on, distinct from
// the hand-built tiny_problem.
PlanningProblem small_zonal(std::uint64_t seed) {
  GeneratorParams params;
  params.zones = 2;
  params.stations_per_zone = 2;
  params.switches_per_zone = 1;
  params.backbone_switches = 1;
  params.flow_count = 3;
  return generate(params, seed);
}

class FrontierDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontierDifferential, EngineMatchesSequentialAcrossOrdersThreadsCaches) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Alternate between the hand-built dense instance and a generated zonal
  // one; randomize the frontier shape per seed so the suite sweeps the
  // (min_order, include_links, flr, pruning) grid across seeds.
  const PlanningProblem problem = (seed % 2 == 0) ? small_zonal(seed) : tiny_problem(3);
  const int min_order = rng.uniform_int(0, 3);
  const bool include_links = rng.uniform() < 0.5;
  const bool flow_level = rng.uniform() < 0.2;
  const bool pruning = rng.uniform() < 0.8;

  const HeuristicRecovery nbf;
  FailureAnalyzer::Options seq_options;
  seq_options.min_order = min_order;
  seq_options.include_links = include_links;
  seq_options.flow_level_redundancy = flow_level;
  seq_options.use_superset_pruning = pruning;
  const FailureAnalyzer sequential(nbf, seq_options);

  const auto states = random_trajectory(problem, rng, 8);

  struct Variant {
    const char* name;
    int threads;
    bool incremental;
    bool shared_cache;
    bool packed;
  };
  const Variant variants[] = {
      {"serial", 1, true, false, true},
      {"serial-scalar-nbf", 1, true, false, false},
      {"2t", 2, true, false, true},
      {"4t-cold", 4, false, false, true},
      {"2t-shared-cache", 2, true, true, true},
  };

  for (const Variant& variant : variants) {
    VerificationEngine::Options options;
    options.min_order = min_order;
    options.include_links = include_links;
    options.flow_level_redundancy = flow_level;
    options.use_superset_pruning = pruning;
    options.incremental = variant.incremental;
    options.num_threads = variant.threads;
    options.chunk_size = 4;  // small rounds: exercise the work-stealing loop
    options.packed_nbf = variant.packed;
    if (variant.shared_cache) {
      options.staging = make_engine_staging(problem);
      options.shared_cache = std::make_shared<EngineSharedCache>();
    }
    VerificationEngine engine(nbf, options);

    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto seq = sequential.analyze(states[i]);
      const auto eng = engine.analyze(states[i]);
      expect_equivalent(eng, seq,
                        "seed " + std::to_string(seed) + " variant " + variant.name +
                            " step " + std::to_string(i) + " minord " +
                            std::to_string(min_order) + (include_links ? " links" : ""));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFrontiers, FrontierDifferential,
                         ::testing::Range<std::uint64_t>(1, 13));

// The scalar kReference kernel family must reproduce the packed kFast
// analysis byte-for-byte — the whole-pipeline form of the kernel-pair
// contract (sim_kernels.hpp: integer decisions, no FP divergence).
TEST(FrontierDifferential, KernelFamiliesAgreeOnFullAnalyses) {
  const auto problem = tiny_problem(3);
  const HeuristicRecovery nbf;
  FailureAnalyzer::Options options;
  options.min_order = 2;
  options.include_links = true;
  const FailureAnalyzer analyzer(nbf, options);

  Rng rng(5);
  const auto states = random_trajectory(problem, rng, 8);
  for (std::size_t i = 0; i < states.size(); ++i) {
    set_tsn_kernel(TsnKernel::kFast);
    const auto fast = analyzer.analyze(states[i]);
    set_tsn_kernel(TsnKernel::kReference);
    const auto reference = analyzer.analyze(states[i]);
    set_tsn_kernel(TsnKernel::kFast);
    expect_equivalent(fast, reference, "kernel family step " + std::to_string(i));
  }
}

// A triple-homed full-mesh plan on a 3-switch instance: survives every
// switch/link failure scenario up to order 2, so a min_order=2 mixed
// certificate exists for it.
Topology triple_mesh_topology(const PlanningProblem& problem) {
  Topology t(problem);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  for (NodeId u = 0; u < 4; ++u) {
    for (const NodeId s : {4, 5, 6}) t.add_link(u, s);
  }
  t.add_link(4, 5);
  t.add_link(4, 6);
  t.add_link(5, 6);
  return t;
}

PlanningProblem triple_mesh_problem() {
  auto problem = tiny_problem(3);
  problem.max_es_degree = 3;
  return problem;
}

// A reliable plan enumerates the FULL frontier (no early counterexample
// exit), so this is where the skip/prune/projection bookkeeping gets its
// deepest coverage: every engine variant must match the sequential analyzer
// on the triple-homed mesh at every frontier shape.
TEST(FrontierDifferential, ReliableTripleMeshFullEnumerationMatches) {
  const auto problem = triple_mesh_problem();
  const auto t = triple_mesh_topology(problem);
  const HeuristicRecovery nbf;

  for (const int min_order : {0, 1, 2, 3}) {
    for (const bool include_links : {false, true}) {
      FailureAnalyzer::Options seq_options;
      seq_options.min_order = min_order;
      seq_options.include_links = include_links;
      const FailureAnalyzer sequential(nbf, seq_options);
      const auto seq = sequential.analyze(t);
      if (min_order == 2) {
        EXPECT_TRUE(seq.reliable) << "triple mesh survives every order-2 scenario";
        EXPECT_GE(seq.max_order, 2);
      } else if (min_order == 3) {
        // The floor now forces the all-three-switches scenario, which no
        // plan on this instance can survive: a genuine order-3
        // counterexample, not a probability-frontier artifact.
        EXPECT_FALSE(seq.reliable);
        EXPECT_EQ(seq.counterexample.order(), 3);
      }

      for (const int threads : {1, 2, 4}) {
        VerificationEngine::Options options;
        options.min_order = min_order;
        options.include_links = include_links;
        options.num_threads = threads;
        options.chunk_size = 4;
        VerificationEngine engine(nbf, options);
        expect_equivalent(engine.analyze(t), seq,
                          "mesh minord " + std::to_string(min_order) +
                              (include_links ? " links" : "") + " threads " +
                              std::to_string(threads));
      }
    }
  }
}

TEST(FrontierCertificate, MinOrderTwoMixedCertificateAuditsCleanAndRoundTrips) {
  const auto problem = triple_mesh_problem();
  const auto t = triple_mesh_topology(problem);
  const HeuristicRecovery nbf;

  CertificateOptions options;
  options.min_order = 2;
  options.include_links = true;
  const CertificateBuildResult built = build_certificate(t, nbf, options);
  ASSERT_TRUE(built.ok) << "triple-homed mesh must survive every order-2 scenario";
  EXPECT_EQ(built.certificate.min_order, 2);
  EXPECT_TRUE(built.certificate.include_links);
  EXPECT_GE(built.certificate.max_order, 2);
  // The frontier floor certifies mixed and double failures: more proofs than
  // the order-<=1 switch-only frontier (3 switches + empty) could hold.
  EXPECT_GT(built.certificate.proofs.size(), 4u);

  const AuditReport report = audit_certificate(problem, built.certificate);
  EXPECT_TRUE(report.ok) << report.summary();

  // Serialization round-trip preserves the audit verdict.
  ByteWriter out;
  save_certificate(built.certificate, out);
  const auto bytes = out.data();
  ByteReader in(bytes);
  const ReliabilityCertificate loaded = load_certificate(in);
  EXPECT_EQ(loaded.min_order, 2);
  EXPECT_TRUE(loaded.include_links);
  EXPECT_TRUE(audit_certificate(problem, loaded).ok);
}

TEST(FrontierCertificate, TamperedMixedCertificateIsRejected) {
  const auto problem = triple_mesh_problem();
  const auto t = triple_mesh_topology(problem);
  const HeuristicRecovery nbf;
  CertificateOptions options;
  options.min_order = 2;
  options.include_links = true;
  const CertificateBuildResult built = build_certificate(t, nbf, options);
  ASSERT_TRUE(built.ok);

  // Dropping any proof breaks completeness: the auditor re-enumerates the
  // mixed frontier independently and misses the deleted scenario.
  for (std::size_t victim : {std::size_t{0}, built.certificate.proofs.size() / 2,
                             built.certificate.proofs.size() - 1}) {
    ReliabilityCertificate tampered = built.certificate;
    tampered.proofs.erase(tampered.proofs.begin() + static_cast<std::ptrdiff_t>(victim));
    EXPECT_FALSE(audit_certificate(problem, tampered).ok)
        << "deleted proof " << victim << " must fail the audit";
  }

  // Understating the floor is a maxord/frontier mismatch, not a pass.
  {
    ReliabilityCertificate tampered = built.certificate;
    tampered.min_order = 0;
    EXPECT_FALSE(audit_certificate(problem, tampered).ok);
  }

  // A switch-only certificate claiming mixed proofs is structurally
  // malformed.
  {
    ReliabilityCertificate tampered = built.certificate;
    tampered.include_links = false;
    EXPECT_FALSE(audit_certificate(problem, tampered).ok);
  }
}

TEST(FrontierCertificate, DualHomedPlanCannotCertifyMinOrderTwo) {
  // Dual-homed end stations die when both their switches fail: the build
  // must fail with an order-2 counterexample instead of emitting a bogus
  // certificate.
  const auto problem = tiny_problem(3);
  const auto t = dual_homed_topology(problem, Asil::D);
  const HeuristicRecovery nbf;
  CertificateOptions options;
  options.min_order = 2;
  const CertificateBuildResult built = build_certificate(t, nbf, options);
  ASSERT_FALSE(built.ok);
  EXPECT_EQ(built.counterexample.order(), 2);
  EXPECT_FALSE(built.errors.empty());
}

}  // namespace
}  // namespace nptsn
