// Differential tests: the verification engine must return the identical
// verdict, identical FIRST counterexample, identical ErrorSet, and identical
// logical instrumentation counters (nbf_calls / pruned / skipped / maxord)
// as the sequential FailureAnalyzer — for every thread count, with and
// without incremental reuse, with and without superset pruning, with and
// without flow-level redundancy, cold or warm caches, across whole monotone
// growth trajectories and across episode resets.
#include "analysis/verification_engine.hpp"

#include <gtest/gtest.h>

#include "core/soag.hpp"
#include "scenarios/ads.hpp"
#include "scenarios/orion.hpp"
#include "scenarios/scenario.hpp"
#include "testing/lying_nbf.hpp"
#include "testing/test_problems.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

void expect_equivalent(const AnalysisOutcome& engine, const AnalysisOutcome& seq,
                       const std::string& context) {
  EXPECT_EQ(engine.reliable, seq.reliable) << context;
  EXPECT_EQ(engine.counterexample.failed_switches, seq.counterexample.failed_switches)
      << context;
  EXPECT_EQ(engine.counterexample.failed_links, seq.counterexample.failed_links) << context;
  EXPECT_EQ(engine.errors, seq.errors) << context;
  EXPECT_EQ(engine.nbf_calls, seq.nbf_calls) << context;
  EXPECT_EQ(engine.scenarios_pruned, seq.scenarios_pruned) << context;
  EXPECT_EQ(engine.scenarios_skipped, seq.scenarios_skipped) << context;
  EXPECT_EQ(engine.max_order, seq.max_order) << context;
}

// A monotone growth trajectory: random switch additions/upgrades and random
// feasible link additions, one mutation per step (mirrors SOAG actions).
std::vector<Topology> random_trajectory(const PlanningProblem& problem, Rng& rng,
                                        int steps) {
  std::vector<Topology> states;
  Topology t(problem);
  states.push_back(t);
  const auto edges = problem.connections.edges();
  for (int step = 0; step < steps; ++step) {
    const double roll = rng.uniform();
    bool mutated = false;
    if (roll < 0.45) {
      // Add or upgrade a random switch.
      const auto switches = problem.switch_ids();
      const NodeId s = switches[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(switches.size()) - 1))];
      if (!t.has_switch(s)) {
        t.add_switch(s);
        mutated = true;
      } else if (t.switch_asil(s) != Asil::D) {
        t.upgrade_switch(s);
        mutated = true;
      }
    } else {
      // Add a random feasible link.
      for (int attempt = 0; attempt < 8 && !mutated; ++attempt) {
        const auto& e = edges[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(edges.size()) - 1))];
        const bool endpoints_exist =
            (!problem.is_switch(e.u) || t.has_switch(e.u)) &&
            (!problem.is_switch(e.v) || t.has_switch(e.v));
        if (!endpoints_exist || t.has_link(e.u, e.v)) continue;
        const auto max_deg = [&](NodeId v) {
          return problem.is_switch(v) ? problem.max_switch_degree() : problem.max_es_degree;
        };
        if (t.degree(e.u) < max_deg(e.u) && t.degree(e.v) < max_deg(e.v)) {
          t.add_link(e.u, e.v);
          mutated = true;
        }
      }
    }
    if (mutated) states.push_back(t);
  }
  return states;
}

struct EngineVariant {
  const char* name;
  bool incremental;
  int threads;
};

constexpr EngineVariant kVariants[] = {
    {"incremental-serial", true, 1},
    {"incremental-2t", true, 2},
    {"incremental-4t", true, 4},
    {"parallel-only-3t", false, 3},
    {"cold-serial", false, 1},
};

class EngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineDifferential, MatchesSequentialAcrossGrowthTrajectory) {
  Rng rng(GetParam());
  auto problem = tiny_problem(3);
  const double goals[] = {1e-6, 1e-7, 1e-8};
  problem.reliability_goal = goals[rng.uniform_int(0, 2)];
  const bool flow_level = rng.uniform() < 0.3;
  const bool pruning = rng.uniform() < 0.8;

  const HeuristicRecovery nbf;
  FailureAnalyzer::Options seq_options;
  seq_options.flow_level_redundancy = flow_level;
  seq_options.use_superset_pruning = pruning;
  const FailureAnalyzer sequential(nbf, seq_options);

  const auto states = random_trajectory(problem, rng, 14);

  for (const auto& variant : kVariants) {
    VerificationEngine::Options options;
    options.flow_level_redundancy = flow_level;
    options.use_superset_pruning = pruning;
    options.incremental = variant.incremental;
    options.num_threads = variant.threads;
    options.chunk_size = 4;  // small waves: exercise multi-wave orders
    VerificationEngine engine(nbf, options);

    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto seq = sequential.analyze(states[i]);
      const auto eng = engine.analyze(states[i]);
      expect_equivalent(eng, seq,
                        std::string("seed ") + std::to_string(GetParam()) + " variant " +
                            variant.name + " step " + std::to_string(i) +
                            (flow_level ? " flr" : "") + (pruning ? "" : " no-prune"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrajectories, EngineDifferential,
                         ::testing::Range<std::uint64_t>(1, 26));

// Warm caches must not change outcomes: analyzing the same topology twice
// gives identical results, with the second pass served without NBF work.
TEST(VerificationEngine, WarmReanalysisIsExactAndFullyCached) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine engine(nbf);

  const auto t = dual_homed_topology(problem, Asil::B);
  const auto seq = sequential.analyze(t);
  const auto cold = engine.analyze(t);
  const auto warm = engine.analyze(t);
  expect_equivalent(cold, seq, "cold");
  expect_equivalent(warm, seq, "warm");
  EXPECT_GT(cold.nbf_executed, 0);
  EXPECT_EQ(warm.nbf_executed, 0) << "second pass must be served from the caches";
  EXPECT_EQ(warm.memo_hits + warm.residual_reuses, warm.nbf_calls);
}

// Re-analyses of a previously seen (link set, switch plan) pair are served
// from the outcome cache: one entry per distinct design, nothing executed.
TEST(VerificationEngine, OutcomeCacheServesRepeatedDesigns) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  VerificationEngine engine(nbf);

  Topology t = dual_homed_topology(problem, Asil::A);
  (void)engine.analyze(t);
  EXPECT_EQ(engine.outcome_entries(), 1u);
  (void)engine.analyze(t);
  EXPECT_EQ(engine.outcome_entries(), 1u) << "repeat design must not add an entry";

  // An ASIL upgrade is a different plan on the same graph: new entry, but the
  // verdict memo still covers every NBF call.
  t.upgrade_switch(4);
  const auto upgraded = engine.analyze(t);
  EXPECT_EQ(engine.outcome_entries(), 2u);
  EXPECT_EQ(upgraded.nbf_executed, 0);

  const auto cached = engine.analyze(t);
  EXPECT_EQ(engine.outcome_entries(), 2u);
  EXPECT_EQ(cached.nbf_executed, 0);
  EXPECT_EQ(cached.reliable, upgraded.reliable);
  EXPECT_EQ(cached.nbf_calls, upgraded.nbf_calls);
  EXPECT_EQ(cached.scenarios_pruned, upgraded.scenarios_pruned);
  EXPECT_EQ(cached.scenarios_skipped, upgraded.scenarios_skipped);
  EXPECT_EQ(cached.max_order, upgraded.max_order);
  EXPECT_EQ(cached.memo_hits, cached.nbf_calls) << "cache hit reports pure reuse";

  engine.clear();
  EXPECT_EQ(engine.outcome_entries(), 0u);
}

// ASIL upgrades leave the graph untouched: the memo carries every verdict
// over and only the probability frontier is recomputed.
TEST(VerificationEngine, AsilUpgradeReusesMemoizedVerdicts) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine engine(nbf);

  Topology t = dual_homed_topology(problem, Asil::A);
  const auto fp_before = t.graph_fingerprint();
  (void)engine.analyze(t);
  t.upgrade_switch(4);
  EXPECT_EQ(t.graph_fingerprint(), fp_before) << "upgrades must not move the fingerprint";

  const auto seq = sequential.analyze(t);
  const auto eng = engine.analyze(t);
  expect_equivalent(eng, seq, "post-upgrade");
  EXPECT_EQ(eng.nbf_executed, 0) << "same graph: all verdicts must come from reuse";
}

// A failing verdict is memoized too: re-analysis after an ASIL upgrade finds
// the same counterexample without executing the NBF.
TEST(VerificationEngine, MemoizedCounterexampleCarriesErrorSet) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine engine(nbf);

  Topology t = star_topology(problem, Asil::A);
  const auto first = engine.analyze(t);
  ASSERT_FALSE(first.reliable);
  ASSERT_FALSE(first.errors.empty());

  t.upgrade_switch(4);  // still a single point of failure, same graph
  const auto seq = sequential.analyze(t);
  const auto eng = engine.analyze(t);
  if (!seq.reliable) {
    expect_equivalent(eng, seq, "memoized failure");
    EXPECT_EQ(eng.nbf_executed, 0);
    EXPECT_FALSE(eng.errors.empty());
  }
}

// An episode reset shrinks the graph; the memo (keyed on exact residuals)
// needs no invalidation and the post-reset analyses must still match the
// sequential analyzer exactly.
TEST(VerificationEngine, EpisodeResetStaysExact) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine engine(nbf);

  (void)engine.analyze(dual_homed_topology(problem, Asil::A));
  EXPECT_GT(engine.memo_entries(), 0u);

  // Fresh episode: empty topology is NOT a supergraph of the dual-homed one.
  const Topology fresh(problem);
  const auto seq = sequential.analyze(fresh);
  const auto eng = engine.analyze(fresh);
  expect_equivalent(eng, seq, "post-reset");

  const Topology star = star_topology(problem, Asil::A);
  expect_equivalent(engine.analyze(star), sequential.analyze(star), "post-reset star");
}

// Cross-step reuse under graph growth: a new link incident to a failed
// switch leaves that scenario's residual unchanged, so its verdict replays
// from the memo of the smaller topology — exact by NBF purity, no
// monotonicity assumption involved.
TEST(VerificationEngine, ResidualReuseAcrossGraphGrowth) {
  const auto problem = tiny_problem(2);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine engine(nbf);

  Topology t = dual_homed_topology(problem, Asil::A);
  (void)engine.analyze(t);

  // Grow: a third switch linked to switch 4. Scenarios failing 4 keep their
  // residual; everything else is re-evaluated.
  t.add_switch(6);
  t.add_link(4, 6);
  const auto seq = sequential.analyze(t);
  const auto eng = engine.analyze(t);
  expect_equivalent(eng, seq, "grown");
  EXPECT_GT(eng.residual_reuses, 0) << "scenarios failing switch 4 must replay";
  EXPECT_LT(eng.nbf_executed, eng.nbf_calls);
  EXPECT_EQ(eng.nbf_executed + eng.memo_hits + eng.residual_reuses, eng.nbf_calls);
}

// A deterministic, pure — but deliberately NON-monotone — NBF: its verdict
// flips with the parity of the residual edge count, the way a greedy
// heuristic's verdict can flip when a link is added. StatelessNbf only
// promises determinism and purity, so the engine must stay differential-
// equivalent for this NBF too. This is the regression test for the former
// survivable-seed carry-over, which assumed verdict monotonicity under
// graph growth and returned stale ok-verdicts here.
class ParityNbf final : public StatelessNbf {
 public:
  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    NbfResult result;
    const Graph residual = topology.residual(scenario);
    if (residual.num_edges() % 2 == 1) result.errors.emplace_back(0, 1);
    return result;
  }
};

TEST_P(EngineDifferential, MatchesSequentialUnderNonMonotoneNbf) {
  Rng rng(GetParam());
  auto problem = tiny_problem(3);
  const bool pruning = rng.uniform() < 0.5;

  const ParityNbf nbf;
  FailureAnalyzer::Options seq_options;
  seq_options.use_superset_pruning = pruning;
  const FailureAnalyzer sequential(nbf, seq_options);

  const auto states = random_trajectory(problem, rng, 14);

  for (const auto& variant : kVariants) {
    VerificationEngine::Options options;
    options.use_superset_pruning = pruning;
    options.incremental = variant.incremental;
    options.num_threads = variant.threads;
    options.chunk_size = 4;
    VerificationEngine engine(nbf, options);

    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto seq = sequential.analyze(states[i]);
      const auto eng = engine.analyze(states[i]);
      expect_equivalent(eng, seq,
                        std::string("parity seed ") + std::to_string(GetParam()) +
                            " variant " + variant.name + " step " + std::to_string(i) +
                            (pruning ? "" : " no-prune"));
    }
  }
}

// A tiny memo bound forces wholesale eviction; correctness must not depend
// on what the memo managed to retain.
TEST(VerificationEngine, MemoEvictionNeverChangesOutcomes) {
  const auto problem = tiny_problem(3);
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine::Options options;
  options.max_memo_entries = 2;
  VerificationEngine engine(nbf, options);

  Rng rng(99);
  const auto states = random_trajectory(problem, rng, 12);
  for (std::size_t i = 0; i < states.size(); ++i) {
    expect_equivalent(engine.analyze(states[i]), sequential.analyze(states[i]),
                      "eviction step " + std::to_string(i));
    EXPECT_LE(engine.memo_entries(), 2u + 64u);  // bound is enforced between analyses
  }
}

// SOAG-driven planning trajectories on the real design scenarios: the exact
// workload the engine replaces in the environment hot loop.
void expect_equivalent_on_scenario(const Scenario& scenario, std::vector<FlowSpec> flows,
                                   int steps, int threads) {
  const auto problem = with_flows(scenario, std::move(flows));
  const HeuristicRecovery nbf;
  const FailureAnalyzer sequential(nbf);
  VerificationEngine::Options options;
  options.num_threads = threads;
  VerificationEngine engine(nbf, options);

  const Soag soag(problem, /*k=*/4);
  Rng rng(7);
  Topology t(problem);
  for (int step = 0; step < steps; ++step) {
    const auto seq = sequential.analyze(t);
    const auto eng = engine.analyze(t);
    expect_equivalent(eng, seq, scenario.name + " step " + std::to_string(step));
    if (seq.reliable) break;

    const auto actions = soag.generate(t, seq.counterexample, seq.errors, rng);
    std::vector<int> valid;
    for (int a = 0; a < static_cast<int>(actions.mask.size()); ++a) {
      if (actions.mask[static_cast<std::size_t>(a)]) valid.push_back(a);
    }
    if (valid.empty()) break;
    const Action& chosen =
        actions.actions[static_cast<std::size_t>(rng.pick(valid))];
    if (chosen.kind == Action::Kind::kSwitchUpgrade) {
      if (t.has_switch(chosen.switch_id)) {
        t.upgrade_switch(chosen.switch_id);
      } else {
        t.add_switch(chosen.switch_id);
      }
    } else {
      t.add_path(chosen.path);
    }
  }
}

// Audit-triggering failure modes: when the NBF misbehaves (swallows its
// error set, reports stale states, flips verdicts non-monotonically, or
// swallows only PART of the error set), the certified-planning audit is what
// catches the lie downstream — but only if the engine hands the planner the
// exact same counterexample and ErrorSet the sequential analyzer would have.
// Serializing both sides makes the comparison literal: byte-for-byte.
class TruncatedErrorNbf final : public StatelessNbf {
 public:
  explicit TruncatedErrorNbf(const StatelessNbf& inner) : inner_(&inner) {}
  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    NbfResult result = inner_->recover(topology, scenario);
    if (!result.errors.empty()) result.errors.erase(result.errors.begin());
    return result;
  }

 private:
  const StatelessNbf* inner_;
};

std::vector<std::uint8_t> outcome_bytes(const AnalysisOutcome& outcome) {
  ByteWriter w;
  w.u8(outcome.reliable ? 1 : 0);
  for (const NodeId v : outcome.counterexample.failed_switches) w.i64(v);
  for (const EdgeKey& e : outcome.counterexample.failed_links) {
    w.i64(e.a);
    w.i64(e.b);
  }
  for (const auto& [source, destination] : outcome.errors) {
    w.i64(source);
    w.i64(destination);
  }
  return w.data();
}

TEST(VerificationEngine, ErrorSetByteMatchesSequentialUnderAdversarialNbfs) {
  const auto problem = tiny_problem(3);
  const HeuristicRecovery honest;
  const testing::LyingNbf liar(honest);
  const testing::StaleStateNbf stale(honest);
  const TruncatedErrorNbf truncating(honest);
  const ParityNbf parity;

  struct Case {
    const char* name;
    const StatelessNbf* nbf;
  };
  const Case cases[] = {{"honest", &honest},
                        {"lying", &liar},
                        {"stale-state", &stale},
                        {"truncated-errors", &truncating},
                        {"parity", &parity}};
  const Topology topologies[] = {star_topology(problem, Asil::A),
                                 dual_homed_topology(problem, Asil::A)};

  for (const Case& c : cases) {
    const FailureAnalyzer sequential(*c.nbf);
    for (const Topology& t : topologies) {
      for (const int threads : {1, 3}) {
        VerificationEngine::Options options;
        options.num_threads = threads;
        VerificationEngine engine(*c.nbf, options);
        const auto seq = sequential.analyze(t);
        const auto eng = engine.analyze(t);
        const std::string context =
            std::string(c.name) + " threads " + std::to_string(threads);
        expect_equivalent(eng, seq, context);
        EXPECT_EQ(outcome_bytes(eng), outcome_bytes(seq)) << context;
      }
    }
  }
}

TEST(VerificationEngine, MatchesSequentialOnAdsPlanningTrajectory) {
  auto scenario = make_ads();
  expect_equivalent_on_scenario(scenario, ads_flows(), /*steps=*/12, /*threads=*/2);
}

TEST(VerificationEngine, MatchesSequentialOnOrionPlanningTrajectory) {
  auto scenario = make_orion();
  Rng rng(13);
  auto flows = random_flows(scenario.problem, /*count=*/4, rng);
  expect_equivalent_on_scenario(scenario, std::move(flows), /*steps=*/8, /*threads=*/2);
}

}  // namespace
}  // namespace nptsn
