// Disabling Algorithm 3's superset pruning must never change a verdict —
// only the amount of work. Randomized check across topologies and goals.
#include <gtest/gtest.h>

#include "analysis/failure_analyzer.hpp"
#include "testing/test_problems.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::star_topology;
using testing::tiny_problem;

class PruningAblation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruningAblation, VerdictInvariantUnderPruningToggle) {
  Rng rng(GetParam());
  auto problem = tiny_problem(rng.uniform_int(1, 4));
  const double goals[] = {1e-6, 1e-7, 1e-8};
  problem.reliability_goal = goals[rng.uniform_int(0, 2)];

  // Random monotone topology.
  Topology t(problem);
  for (const NodeId s : problem.switch_ids()) {
    if (rng.uniform() < 0.8) {
      t.add_switch(s);
      for (int u = rng.uniform_int(0, 3); u > 0; --u) t.upgrade_switch(s);
    }
  }
  for (const auto& edge : problem.connections.edges()) {
    const bool ok = (!problem.is_switch(edge.u) || t.has_switch(edge.u)) &&
                    (!problem.is_switch(edge.v) || t.has_switch(edge.v));
    if (!ok || rng.uniform() < 0.3) continue;
    const auto cap = [&](NodeId v) {
      return problem.is_switch(v) ? problem.max_switch_degree() : problem.max_es_degree;
    };
    if (t.degree(edge.u) < cap(edge.u) && t.degree(edge.v) < cap(edge.v)) {
      t.add_link(edge.u, edge.v);
    }
  }

  const HeuristicRecovery nbf;
  const auto with_pruning = FailureAnalyzer(nbf).analyze(t);
  FailureAnalyzer::Options options;
  options.use_superset_pruning = false;
  const auto without_pruning = FailureAnalyzer(nbf, options).analyze(t);

  EXPECT_EQ(with_pruning.reliable, without_pruning.reliable) << "seed " << GetParam();
  EXPECT_LE(with_pruning.nbf_calls, without_pruning.nbf_calls);
  EXPECT_EQ(without_pruning.scenarios_pruned, 0);
  if (!with_pruning.reliable) {
    // Both find the same first counterexample (same enumeration order).
    EXPECT_EQ(with_pruning.counterexample.failed_switches,
              without_pruning.counterexample.failed_switches);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, PruningAblation,
                         ::testing::Range<std::uint64_t>(100, 125));

TEST(PruningAblation, KnownCounts) {
  const auto p = tiny_problem(2);
  const auto t = dual_homed_topology(p, Asil::A);
  const HeuristicRecovery nbf;
  FailureAnalyzer::Options off;
  off.use_superset_pruning = false;
  // With pruning: 2 singles checked, empty pruned. Without: all 3 run.
  EXPECT_EQ(FailureAnalyzer(nbf).analyze(t).nbf_calls, 2);
  EXPECT_EQ(FailureAnalyzer(nbf, off).analyze(t).nbf_calls, 3);
}

}  // namespace
}  // namespace nptsn
