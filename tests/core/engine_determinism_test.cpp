// The verification engine is a pure acceleration layer: its caches are
// derived state that never leaks into checkpoints or trajectories. These
// tests pin that contract — engine on/off, warm/cold, serial/parallel must
// all produce byte-identical snapshots and bit-identical training runs, so
// PR 1's kill-and-resume guarantee survives the engine unchanged.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/planner.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;

NptsnConfig small_config() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 3;
  c.steps_per_epoch = 48;
  c.train_actor_iters = 5;
  c.train_critic_iters = 5;
  c.seed = 21;
  return c;
}

// Drives an env along the first-valid-action trajectory for `steps` steps,
// returning the rewards (any divergence between engine configs would show
// up in the rewards, masks, or the analysis verdict driving episode ends).
std::vector<double> drive(PlanningEnv& env, int steps) {
  std::vector<double> rewards;
  for (int i = 0; i < steps; ++i) {
    const auto& mask = env.action_mask();
    int action = -1;
    for (int a = 0; a < static_cast<int>(mask.size()); ++a) {
      if (mask[static_cast<std::size_t>(a)]) {
        action = a;
        break;
      }
    }
    if (action < 0) break;
    const auto result = env.step(action);
    rewards.push_back(result.reward);
    if (result.episode_end) env.reset();
  }
  return rewards;
}

// Engine on vs off: identical rewards, masks, nbf_calls, and — critically —
// byte-identical snapshots. The engine's caches are derived state and must
// not be serialized.
TEST(EngineDeterminism, SnapshotBytesIdenticalEngineOnAndOff) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;

  auto config_on = small_config();
  config_on.use_verification_engine = true;
  auto config_off = small_config();
  config_off.use_verification_engine = false;

  SolutionRecorder rec_on, rec_off;
  PlanningEnv env_on(problem, nbf, config_on, rec_on, Rng(3));
  PlanningEnv env_off(problem, nbf, config_off, rec_off, Rng(3));

  for (int round = 0; round < 3; ++round) {
    const auto rewards_on = drive(env_on, 5);
    const auto rewards_off = drive(env_off, 5);
    ASSERT_EQ(rewards_on.size(), rewards_off.size());
    for (std::size_t i = 0; i < rewards_on.size(); ++i) {
      EXPECT_DOUBLE_EQ(rewards_on[i], rewards_off[i]);
    }
    EXPECT_EQ(env_on.action_mask(), env_off.action_mask());
    EXPECT_EQ(env_on.nbf_calls(), env_off.nbf_calls())
        << "the engine must report the sequential analyzer's logical call count";

    ByteWriter snap_on, snap_off;
    env_on.save_snapshot(snap_on);
    env_off.save_snapshot(snap_off);
    EXPECT_EQ(snap_on.data(), snap_off.data())
        << "round " << round << ": engine cache state leaked into the snapshot";
  }

  // The engine saved real work while reporting identical logical counters.
  const auto stats_on = env_on.stats();
  EXPECT_EQ(stats_on.verify_calls, env_on.nbf_calls());
  EXPECT_LT(stats_on.verify_executed, stats_on.verify_calls);
  EXPECT_GT(stats_on.verify_memo_hits + stats_on.verify_residual_reuses, 0);
  const auto stats_off = env_off.stats();
  EXPECT_EQ(stats_off.verify_executed, stats_off.verify_calls);
  EXPECT_EQ(stats_off.verify_memo_hits, 0);
  EXPECT_EQ(stats_off.verify_residual_reuses, 0);
}

// A snapshot taken from a warm-engine env restores into a COLD-engine env
// (fresh process after a crash) and continues bit-identically: rewards,
// masks, nbf_calls, and the next snapshot's bytes.
TEST(EngineDeterminism, ColdCacheResumeContinuesBitIdentically) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const auto config = small_config();

  SolutionRecorder rec_a;
  PlanningEnv warm(problem, nbf, config, rec_a, Rng(17));
  (void)drive(warm, 7);  // warm up the memo and outcome cache

  ByteWriter snap;
  warm.save_snapshot(snap);

  SolutionRecorder rec_b;
  PlanningEnv cold(problem, nbf, config, rec_b, Rng(404));
  ByteReader r(snap.data());
  cold.load_snapshot(r);
  r.expect_exhausted("env snapshot");

  EXPECT_EQ(cold.nbf_calls(), warm.nbf_calls());
  for (int i = 0; i < 6; ++i) {
    const auto& mask = warm.action_mask();
    ASSERT_EQ(cold.action_mask(), mask);
    int action = -1;
    for (int a = 0; a < static_cast<int>(mask.size()); ++a) {
      if (mask[static_cast<std::size_t>(a)]) {
        action = a;
        break;
      }
    }
    ASSERT_GE(action, 0);
    const auto rw = warm.step(action);
    const auto rc = cold.step(action);
    EXPECT_DOUBLE_EQ(rc.reward, rw.reward);
    EXPECT_EQ(rc.episode_end, rw.episode_end);
    EXPECT_EQ(cold.nbf_calls(), warm.nbf_calls());
    if (rw.episode_end) {
      warm.reset();
      cold.reset();
    }
  }
  ByteWriter snap_w, snap_c;
  warm.save_snapshot(snap_w);
  cold.save_snapshot(snap_c);
  EXPECT_EQ(snap_c.data(), snap_w.data());
}

// Full training runs with the engine on and off produce identical epoch
// histories and identical best solutions.
TEST(EngineDeterminism, PlanWithAndWithoutEngineMatches) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;

  auto config = small_config();
  config.use_verification_engine = false;
  const auto reference = plan(problem, nbf, config);
  config.use_verification_engine = true;
  const auto accelerated = plan(problem, nbf, config);

  ASSERT_EQ(accelerated.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    const auto& a = accelerated.history[i];
    const auto& b = reference.history[i];
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.episodes_finished, b.episodes_finished);
    EXPECT_DOUBLE_EQ(a.mean_episode_reward, b.mean_episode_reward);
    EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
    EXPECT_DOUBLE_EQ(a.critic_loss, b.critic_loss);
    EXPECT_EQ(a.verify_nbf_calls, b.verify_nbf_calls)
        << "logical verification counters must not depend on the engine";
  }
  EXPECT_EQ(accelerated.feasible, reference.feasible);
  EXPECT_EQ(accelerated.solutions_found, reference.solutions_found);
  if (reference.feasible) {
    EXPECT_DOUBLE_EQ(accelerated.best_cost, reference.best_cost);
  }
}

// Kill-and-resume with the engine enabled: the resumed process starts with
// empty caches, yet reproduces the uninterrupted run's statistics exactly.
TEST(EngineDeterminism, KillAndResumeWithEngineMatchesUninterrupted) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const std::string path = ::testing::TempDir() + "nptsn_engine_resume";
  for (const char* suffix : {"", ".1", ".tmp"}) {
    std::remove((path + suffix).c_str());
  }

  auto config = small_config();
  config.use_verification_engine = true;
  const auto reference = plan(problem, nbf, config);
  ASSERT_EQ(reference.history.size(), 3u);

  config.checkpoint_path = path;
  config.epochs = 1;
  (void)plan(problem, nbf, config);  // killed after one epoch
  config.epochs = 3;
  const auto resumed = plan(problem, nbf, config);  // cold caches here
  ASSERT_EQ(resumed.history.size(), 2u);

  for (int i = 0; i < 2; ++i) {
    const auto& a = resumed.history[static_cast<std::size_t>(i)];
    const auto& b = reference.history[static_cast<std::size_t>(i + 1)];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.episodes_finished, b.episodes_finished);
    EXPECT_DOUBLE_EQ(a.mean_episode_reward, b.mean_episode_reward);
    EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
    EXPECT_DOUBLE_EQ(a.critic_loss, b.critic_loss);
    EXPECT_EQ(a.verify_nbf_calls, b.verify_nbf_calls);
  }
  EXPECT_EQ(resumed.feasible, reference.feasible);
  if (reference.feasible) {
    EXPECT_DOUBLE_EQ(resumed.best_cost, reference.best_cost);
  }
  for (const char* suffix : {"", ".1", ".tmp"}) {
    std::remove((path + suffix).c_str());
  }
}

}  // namespace
}  // namespace nptsn
