// End-to-end crash resilience of plan(): environment snapshots, checkpoint
// resume across plan() calls, run budgets with graceful degradation, and
// recovery from an injected NBF fault mid-training.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "analysis/failure_analyzer.hpp"
#include "testing/fault_injector.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::FaultTrigger;
using nptsn::testing::FaultyNbf;
using nptsn::testing::tiny_problem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nptsn_plan_" + name;
}

void remove_all(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}

// Small enough to train in milliseconds, big enough to find solutions.
NptsnConfig resilience_config() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 4;
  c.steps_per_epoch = 48;
  c.train_actor_iters = 5;
  c.train_critic_iters = 5;
  c.seed = 7;
  return c;
}

void expect_same_stats(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.episodes_finished, b.episodes_finished);
  EXPECT_DOUBLE_EQ(a.mean_episode_reward, b.mean_episode_reward);
  EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
  EXPECT_DOUBLE_EQ(a.critic_loss, b.critic_loss);
}

TEST(PlanningEnvSnapshot, RoundTripReproducesActionSpaceAndStream) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const auto config = resilience_config();

  SolutionRecorder recorder_a;
  PlanningEnv original(problem, nbf, config, recorder_a, Rng(5));
  // Walk a few steps so the snapshot holds a non-trivial topology.
  for (int i = 0; i < 3; ++i) {
    const auto& mask = original.action_mask();
    for (int a = 0; a < static_cast<int>(mask.size()); ++a) {
      if (mask[static_cast<std::size_t>(a)]) {
        original.step(a);
        break;
      }
    }
  }

  ByteWriter w;
  original.save_snapshot(w);

  SolutionRecorder recorder_b;
  PlanningEnv restored(problem, nbf, config, recorder_b, Rng(999));
  ByteReader r(w.data());
  restored.load_snapshot(r);
  r.expect_exhausted("planning env snapshot");

  EXPECT_DOUBLE_EQ(restored.topology().cost(), original.topology().cost());
  EXPECT_EQ(restored.action_mask(), original.action_mask());
  EXPECT_EQ(restored.nbf_calls(), original.nbf_calls());
  const auto obs_a = original.observe();
  const auto obs_b = restored.observe();
  ASSERT_TRUE(obs_b.features.same_shape(obs_a.features));
  for (int i = 0; i < obs_a.features.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs_b.features.data()[i], obs_a.features.data()[i]);
  }

  // The restored env must continue bit-identically: same actions, same
  // rewards, same evolving action masks (the SOAG consumed the same RNG).
  for (int i = 0; i < 4; ++i) {
    const auto& mask = original.action_mask();
    int action = -1;
    for (int a = 0; a < static_cast<int>(mask.size()); ++a) {
      if (mask[static_cast<std::size_t>(a)]) {
        action = a;
        break;
      }
    }
    ASSERT_GE(action, 0);
    const auto ra = original.step(action);
    const auto rb = restored.step(action);
    EXPECT_DOUBLE_EQ(rb.reward, ra.reward);
    EXPECT_EQ(rb.episode_end, ra.episode_end);
    EXPECT_EQ(restored.action_mask(), original.action_mask());
  }
}

TEST(PlanResilience, KillAndResumeMatchesUninterruptedRun) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const std::string path = temp_path("resume");
  remove_all(path);

  auto config = resilience_config();
  const auto reference = plan(problem, nbf, config);
  ASSERT_EQ(reference.history.size(), 4u);
  EXPECT_TRUE(reference.stopped_reason.empty());
  EXPECT_EQ(reference.epochs_completed, 4);

  // "Kill" after 2 epochs: the first plan() call exits, only the checkpoint
  // file carries state into the second call.
  config.checkpoint_path = path;
  config.epochs = 2;
  const auto head = plan(problem, nbf, config);
  ASSERT_EQ(head.history.size(), 2u);
  config.epochs = 4;
  const auto tail = plan(problem, nbf, config);
  ASSERT_EQ(tail.history.size(), 2u) << "resume must not repeat epochs";
  EXPECT_EQ(tail.epochs_completed, 4);

  for (int i = 0; i < 2; ++i) {
    expect_same_stats(head.history[static_cast<std::size_t>(i)],
                      reference.history[static_cast<std::size_t>(i)]);
    expect_same_stats(tail.history[static_cast<std::size_t>(i)],
                      reference.history[static_cast<std::size_t>(i + 2)]);
  }

  // The best verified solution survives the crash: the resumed run reports
  // exactly what the uninterrupted run would have.
  EXPECT_EQ(tail.feasible, reference.feasible);
  EXPECT_EQ(tail.solutions_found, reference.solutions_found);
  if (reference.feasible) {
    EXPECT_DOUBLE_EQ(tail.best_cost, reference.best_cost);
  }
  remove_all(path);
}

TEST(PlanResilience, StepBudgetStopsCleanlyWithVerifiedBestOnly) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = resilience_config();
  config.epochs = 8;
  config.max_total_steps = config.steps_per_epoch;  // budget = one epoch

  const auto result = plan(problem, nbf, config);
  EXPECT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.epochs_completed, 1);
  EXPECT_NE(result.stopped_reason.find("step budget"), std::string::npos)
      << "reason: " << result.stopped_reason;

  // Graceful degradation: feasible only with a fully verified topology.
  EXPECT_EQ(result.feasible, result.best.has_value());
  if (result.best) {
    const FailureAnalyzer analyzer(nbf);
    EXPECT_TRUE(analyzer.analyze(*result.best).reliable);
    EXPECT_DOUBLE_EQ(result.best_cost, result.best->cost());
  }
}

TEST(PlanResilience, ExhaustedWallClockBudgetDegradesGracefully) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = resilience_config();
  config.max_wall_seconds = 1e-9;  // already exhausted at the first boundary

  const auto result = plan(problem, nbf, config);
  EXPECT_TRUE(result.history.empty());
  EXPECT_EQ(result.epochs_completed, 0);
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.stopped_reason.find("wall-clock"), std::string::npos);
}

TEST(PlanResilience, TransientNbfFaultIsRetriedAndMatchesCleanRun) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = resilience_config();
  config.epochs = 3;

  const auto clean = plan(problem, nbf, config);
  ASSERT_EQ(clean.history.size(), 3u);

  // Crash inside the failure analyzer partway through training; one retry
  // rolls back to the epoch boundary and reproduces the clean run exactly.
  // The trigger counts NBF calls actually executed — the verification engine
  // services most of the logical calls from its caches, so the trigger sits
  // well below the sequential-analyzer call count.
  auto trigger = std::make_shared<FaultTrigger>(30);
  FaultyNbf faulty(nbf, trigger);
  config.max_epoch_retries = 1;
  const auto recovered = plan(problem, faulty, config);
  EXPECT_TRUE(trigger->fired()) << "fault never fired; pick an earlier call";

  ASSERT_EQ(recovered.history.size(), clean.history.size());
  for (std::size_t i = 0; i < clean.history.size(); ++i) {
    expect_same_stats(recovered.history[i], clean.history[i]);
  }
  EXPECT_EQ(recovered.feasible, clean.feasible);
  EXPECT_EQ(recovered.solutions_found, clean.solutions_found);
  if (clean.feasible) {
    EXPECT_DOUBLE_EQ(recovered.best_cost, clean.best_cost);
  }
}

TEST(PlanResilience, NbfFaultWithoutRetriesPropagates) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = resilience_config();
  config.epochs = 3;

  auto trigger = std::make_shared<FaultTrigger>(30);
  FaultyNbf faulty(nbf, trigger);
  EXPECT_THROW(plan(problem, faulty, config), nptsn::testing::InjectedFault);
}

}  // namespace
}  // namespace nptsn
