// The hardened execution envelope around plan(): a cooperative Deadline token
// threaded through the environment's analysis, the verification engine, the
// trainer's rollout workers, and the final audit. Truncation is always clean —
// typed, explained via stopped_reason, and consistent with the rollback
// machinery — and an unlimited token is observationally invisible.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "analysis/auditor.hpp"
#include "analysis/exhaustive.hpp"
#include "analysis/failure_analyzer.hpp"
#include "scenarios/generator.hpp"
#include "testing/test_problems.hpp"
#include "tsn/recovery.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;

NptsnConfig envelope_config() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 3;
  c.steps_per_epoch = 48;
  c.train_actor_iters = 5;
  c.train_critic_iters = 5;
  c.num_workers = 1;
  c.nn_threads = 1;
  c.verification_threads = 1;
  c.seed = 7;
  return c;
}

TEST(DeadlineEnvelopeTest, TinyTickBudgetTruncatesCleanlyWithReason) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  NptsnConfig config = envelope_config();
  config.deadline = Deadline::after(/*wall_seconds=*/0.0, /*max_ticks=*/40);

  PlanningResult result;
  EXPECT_NO_THROW(result = plan(problem, nbf, config));
  EXPECT_EQ(result.stopped_reason.rfind("deadline:", 0), 0u)
      << "stopped_reason: " << result.stopped_reason;
  // The cooperative contract: once the budget fires, remaining work is only
  // the bounded unwind (no runaway accounting past the budget).
  EXPECT_LE(config.deadline->ticks(), 2 * 40);
  EXPECT_TRUE(config.deadline->expired());
}

TEST(DeadlineEnvelopeTest, UnlimitedTokenIsObservationallyInvisible) {
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;

  NptsnConfig without = envelope_config();
  const PlanningResult baseline = plan(problem, nbf, without);

  NptsnConfig with = envelope_config();
  with.deadline = std::make_shared<Deadline>();  // both budgets disabled
  const PlanningResult tracked = plan(problem, nbf, with);

  EXPECT_EQ(baseline.feasible, tracked.feasible);
  EXPECT_EQ(baseline.solutions_found, tracked.solutions_found);
  EXPECT_EQ(baseline.epochs_completed, tracked.epochs_completed);
  EXPECT_EQ(baseline.stopped_reason, tracked.stopped_reason);
  if (baseline.feasible) {
    EXPECT_DOUBLE_EQ(baseline.best_cost, tracked.best_cost);
  }
  ASSERT_EQ(baseline.history.size(), tracked.history.size());
  for (std::size_t i = 0; i < baseline.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseline.history[i].mean_episode_reward,
                     tracked.history[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(baseline.history[i].actor_loss, tracked.history[i].actor_loss);
  }
  // The token did count the run's cooperative work.
  EXPECT_GT(with.deadline->ticks(), 0);
}

TEST(DeadlineEnvelopeTest, TruncatedRunCanStillBeFeasible) {
  // A budget that allows at least one full epoch: training stops early but
  // any solution already found stays — a budget shortens the search, it never
  // weakens the reliability guarantee of what was found.
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  NptsnConfig config = envelope_config();
  config.epochs = 50;
  config.deadline = Deadline::after(0.0, 2'000);

  PlanningResult result;
  EXPECT_NO_THROW(result = plan(problem, nbf, config));
  EXPECT_FALSE(result.stopped_reason.empty());
  EXPECT_LT(result.epochs_completed, 50);
  if (result.feasible) {
    ASSERT_TRUE(result.best.has_value());
    EXPECT_GT(result.best_cost, 0.0);
  }
}

TEST(DeadlineEnvelopeTest, GeneratedInstancesHonorTheEnvelopeToo) {
  // Same contract on a procedurally generated zonal instance (the corpus
  // replay path in miniature).
  GeneratorParams params;
  params.zones = 3;
  params.flow_count = 6;
  const PlanningProblem problem = generate(params, 13);
  HeuristicRecovery nbf;
  NptsnConfig config = envelope_config();
  config.deadline = Deadline::after(0.0, 300);

  PlanningResult result;
  EXPECT_NO_THROW(result = plan(problem, nbf, config));
  EXPECT_LE(config.deadline->ticks(), 2 * 300);
  if (config.deadline->expired()) {
    EXPECT_FALSE(result.stopped_reason.empty());
  }
}

TEST(DeadlineEnvelopeTest, AnalysisLayersThrowTypedOnPreExpiredToken) {
  const auto problem = tiny_problem(2);
  const Deadline expired(0.0, 1);
  expired.tick();  // fire the budget before handing the token out
  ASSERT_TRUE(expired.expired());

  HeuristicRecovery nbf;
  FailureAnalyzer::Options analyzer_options;
  analyzer_options.deadline = &expired;
  const FailureAnalyzer analyzer(nbf, analyzer_options);
  const Topology topology = nptsn::testing::dual_homed_topology(problem);
  EXPECT_THROW(analyzer.analyze(topology), DeadlineExceeded);
  EXPECT_THROW(analyze_exhaustive(topology, nbf, 2, &expired), DeadlineExceeded);
}

}  // namespace
}  // namespace nptsn
