#include "core/observation_encoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/soag.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

constexpr int kK = 4;

ActionSpace space_for(const PlanningProblem& p, const Topology& t, std::uint64_t seed,
                      const ErrorSet& errors) {
  Rng rng(seed);
  return Soag(p, kK).generate(t, FailureScenario::none(), errors, rng);
}

TEST(Encoder, FeatureAndParamDimensions) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  // 1 (switch) + |Vc| (links) + |Ves| (flows) + K (actions).
  EXPECT_EQ(encoder.feature_dim(), 1 + 7 + 4 + kK);
  // 2 per flow + slot count.
  EXPECT_EQ(encoder.param_dim(), 2 * 2 + 1);
}

TEST(Encoder, ShapesMatchDeclaredDims) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  const Topology t(p);
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  EXPECT_EQ(obs.a_hat.rows(), 7);
  EXPECT_EQ(obs.a_hat.cols(), 7);
  EXPECT_EQ(obs.features.rows(), 7);
  EXPECT_EQ(obs.features.cols(), encoder.feature_dim());
  EXPECT_EQ(obs.params.rows(), 1);
  EXPECT_EQ(obs.params.cols(), encoder.param_dim());
}

TEST(Encoder, EmptyTopologyAdjacencyIsIdentityNormalized) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  const Topology t(p);
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(obs.a_hat.at(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Encoder, SwitchFeatureHoldsScaledCost) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  auto t = dual_homed_topology(p);  // switches 4, 5 at A, degree 5 each
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  // Degree 5 -> 6-port ASIL-A cost 10, scaled by 0.01.
  EXPECT_NEAR(obs.features.at(4, 0), 0.10, 1e-12);
  EXPECT_NEAR(obs.features.at(5, 0), 0.10, 1e-12);
  // End stations and unplanned switches carry zero.
  EXPECT_DOUBLE_EQ(obs.features.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs.features.at(6, 0), 0.0);
}

TEST(Encoder, LinkFeatureBlockSymmetricScaledCosts) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  const auto t = dual_homed_topology(p);  // all links ASIL-A, unit length
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  // Link (0, 4): ASIL-A cost 1 scaled to 0.01; symmetric entries.
  EXPECT_NEAR(obs.features.at(0, 1 + 4), 0.01, 1e-12);
  EXPECT_NEAR(obs.features.at(4, 1 + 0), 0.01, 1e-12);
  // Absent link (0, 6).
  EXPECT_DOUBLE_EQ(obs.features.at(0, 1 + 6), 0.0);
}

TEST(Encoder, FlowBlockCountsFlowsBothDirections) {
  auto p = tiny_problem(0);
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  p.flows.push_back({2, 0, 500.0, 64, 500.0});
  const ObservationEncoder encoder(p, kK);
  const Topology t(p);
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  const int base = 1 + 7;
  EXPECT_NEAR(obs.features.at(0, base + 1), 0.2, 1e-12);  // two 0<->1 flows
  EXPECT_NEAR(obs.features.at(1, base + 0), 0.2, 1e-12);
  EXPECT_NEAR(obs.features.at(2, base + 0), 0.1, 1e-12);
  EXPECT_NEAR(obs.features.at(0, base + 2), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(obs.features.at(3, base + 0), 0.0);
  // Switch rows stay zero in the flow block.
  EXPECT_DOUBLE_EQ(obs.features.at(4, base + 0), 0.0);
}

TEST(Encoder, DynamicActionBlockMarksTraversedNodes) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  Topology t(p);
  t.add_switch(4);
  const auto space = space_for(p, t, 2, {{0, 2}});
  const auto obs = encoder.encode(t, space);
  const int base = 1 + 7 + 4;
  for (int slot = 0; slot < kK; ++slot) {
    const auto& path = space.actions[static_cast<std::size_t>(3 + slot)].path;
    for (int v = 0; v < 7; ++v) {
      const bool on_path = std::find(path.begin(), path.end(), v) != path.end();
      EXPECT_DOUBLE_EQ(obs.features.at(v, base + slot), on_path ? 1.0 : 0.0);
    }
  }
}

TEST(Encoder, ParamsCarryFlowTimingAndSlots) {
  auto p = tiny_problem(0);
  p.flows.push_back({0, 1, 250.0, 750, 250.0});
  p.flows.push_back({1, 2, 500.0, 1500, 500.0});
  const ObservationEncoder encoder(p, kK);
  const Topology t(p);
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  EXPECT_NEAR(obs.params.at(0, 0), 0.5, 1e-12);   // 250/500
  EXPECT_NEAR(obs.params.at(0, 1), 0.5, 1e-12);   // 750/1500
  EXPECT_NEAR(obs.params.at(0, 2), 1.0, 1e-12);   // 500/500
  EXPECT_NEAR(obs.params.at(0, 3), 1.0, 1e-12);   // 1500/1500
  EXPECT_NEAR(obs.params.at(0, 4), 0.2, 1e-12);   // 20 slots / 100
}

TEST(Encoder, ActionArityChecked) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  const Topology t(p);
  ActionSpace wrong;
  wrong.actions.resize(3);  // missing the K path slots
  wrong.mask.assign(3, 0);
  EXPECT_THROW(encoder.encode(t, wrong), std::invalid_argument);
}

TEST(Encoder, AdjacencyReflectsTopologyLinks) {
  const auto p = tiny_problem(2);
  const ObservationEncoder encoder(p, kK);
  const auto t = dual_homed_topology(p);
  const auto obs = encoder.encode(t, space_for(p, t, 1, {{0, 1}}));
  // Connected nodes have positive normalized entries.
  EXPECT_GT(obs.a_hat.at(0, 4), 0.0);
  EXPECT_GT(obs.a_hat.at(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(obs.a_hat.at(0, 6), 0.0);
}

}  // namespace
}  // namespace nptsn
