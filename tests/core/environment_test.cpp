#include "core/environment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

NptsnConfig small_config() {
  NptsnConfig c;
  c.path_actions = 4;
  return c;
}

struct EnvFixture {
  PlanningProblem problem = tiny_problem(2);
  HeuristicRecovery nbf;
  NptsnConfig config = small_config();
  SolutionRecorder recorder;
  PlanningEnv env{problem, nbf, config, recorder, Rng(1)};
};

// Picks the first valid action of the given kind, -1 if none.
int first_valid(const PlanningEnv& env, Action::Kind kind, int num_switches) {
  const auto& mask = env.action_mask();
  for (int i = 0; i < static_cast<int>(mask.size()); ++i) {
    const bool is_switch_slot = i < num_switches;
    if (mask[static_cast<std::size_t>(i)] &&
        ((kind == Action::Kind::kSwitchUpgrade) == is_switch_slot)) {
      return i;
    }
  }
  return -1;
}

TEST(SolutionRecorder, KeepsCheapestSolution) {
  const auto p = tiny_problem(2);
  SolutionRecorder recorder;
  EXPECT_FALSE(recorder.has_solution());
  EXPECT_TRUE(std::isinf(recorder.best_cost()));

  auto expensive = dual_homed_topology(p, Asil::D);
  auto cheap = dual_homed_topology(p, Asil::A);
  recorder.record(expensive);
  EXPECT_DOUBLE_EQ(recorder.best_cost(), expensive.cost());
  recorder.record(cheap);
  EXPECT_DOUBLE_EQ(recorder.best_cost(), cheap.cost());
  recorder.record(expensive);  // worse again: ignored
  EXPECT_DOUBLE_EQ(recorder.best_cost(), cheap.cost());
  EXPECT_EQ(recorder.solutions_found(), 3);
  ASSERT_TRUE(recorder.best().has_value());
  EXPECT_DOUBLE_EQ(recorder.best()->cost(), cheap.cost());
}

TEST(PlanningEnv, StartsWithEmptyTopologyAndFailedAnalysis) {
  EnvFixture f;
  EXPECT_TRUE(f.env.topology().selected_switches().empty());
  EXPECT_FALSE(f.env.last_analysis().reliable);
  // The empty TSSDN fails with no failure injected at all.
  EXPECT_TRUE(f.env.last_analysis().counterexample.empty());
  EXPECT_FALSE(f.env.last_analysis().errors.empty());
}

TEST(PlanningEnv, NumActionsMatchesSoag) {
  EnvFixture f;
  EXPECT_EQ(f.env.num_actions(), 3 + 4);
}

TEST(PlanningEnv, SwitchAddGivesCostProportionalNegativeReward) {
  EnvFixture f;
  const int a = first_valid(f.env, Action::Kind::kSwitchUpgrade, 3);
  ASSERT_GE(a, 0);
  const auto result = f.env.step(a);
  // Adding an unconnected ASIL-A switch costs 8 -> reward -8/1000.
  EXPECT_NEAR(result.reward, -8.0 / 1000.0, 1e-12);
  EXPECT_FALSE(result.episode_end);
  EXPECT_EQ(f.env.topology().selected_switches().size(), 1u);
}

TEST(PlanningEnv, MaskedActionRejected) {
  EnvFixture f;
  // Path slots are masked at episode start (no switches planned).
  EXPECT_THROW(f.env.step(3 + 1), std::invalid_argument);
  EXPECT_THROW(f.env.step(-1), std::invalid_argument);
  EXPECT_THROW(f.env.step(99), std::invalid_argument);
}

TEST(PlanningEnv, EpisodeEndsWhenReliable) {
  // Drive the env manually to a known solution: add switches 4 and 5, then
  // follow path actions until the analyzer signs off.
  EnvFixture f;
  f.env.step(0);  // add switch 4
  f.env.step(1);  // add switch 5

  bool done = false;
  for (int guard = 0; guard < 64 && !done; ++guard) {
    const int path_action = first_valid(f.env, Action::Kind::kAddPath, 3);
    const int any_action =
        path_action >= 0 ? path_action : first_valid(f.env, Action::Kind::kSwitchUpgrade, 3);
    ASSERT_GE(any_action, 0) << "environment dead-ended unexpectedly";
    done = f.env.step(any_action).episode_end;
  }
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.env.last_analysis().reliable);
  EXPECT_TRUE(f.recorder.has_solution());
  EXPECT_GT(f.recorder.best_cost(), 0.0);
}

TEST(PlanningEnv, ResetClearsTopology) {
  EnvFixture f;
  f.env.step(0);
  EXPECT_FALSE(f.env.topology().selected_switches().empty());
  f.env.reset();
  EXPECT_TRUE(f.env.topology().selected_switches().empty());
  EXPECT_FALSE(f.env.last_analysis().reliable);
}

TEST(PlanningEnv, ObservationMatchesEncoderShapes) {
  EnvFixture f;
  const auto obs = f.env.observe();
  const ObservationEncoder encoder(f.problem, f.config.path_actions);
  EXPECT_EQ(obs.features.cols(), encoder.feature_dim());
  EXPECT_EQ(obs.params.cols(), encoder.param_dim());
  EXPECT_EQ(obs.a_hat.rows(), f.problem.num_nodes());
}

TEST(PlanningEnv, RewardsAccumulateToNegativeScaledCost) {
  // Following any successful episode, the sum of rewards equals minus the
  // final cost divided by the reward scale (no penalty on success).
  EnvFixture f;
  double reward_sum = 0.0;
  f.env.reset();
  bool done = false;
  reward_sum += f.env.step(0).reward;
  reward_sum += f.env.step(1).reward;
  for (int guard = 0; guard < 64 && !done; ++guard) {
    int a = first_valid(f.env, Action::Kind::kAddPath, 3);
    if (a < 0) a = first_valid(f.env, Action::Kind::kSwitchUpgrade, 3);
    ASSERT_GE(a, 0);
    const auto result = f.env.step(a);
    reward_sum += result.reward;
    done = result.episode_end;
  }
  ASSERT_TRUE(done);
  EXPECT_NEAR(reward_sum, -f.env.topology().cost() / f.config.reward_scale, 1e-9);
}

TEST(PlanningEnv, NbfCallCounterAdvances) {
  EnvFixture f;
  const auto calls_before = f.env.nbf_calls();
  f.env.step(0);
  EXPECT_GT(f.env.nbf_calls(), calls_before);
}

TEST(PlanningEnv, PathActionExtendsTopology) {
  // With a single planned switch the counterexample is that switch's own
  // failure, and Alg. 1 removes failed nodes from the path search graph —
  // so path actions only appear once a second switch exists.
  EnvFixture f;
  f.env.step(0);  // switch 4
  EXPECT_EQ(first_valid(f.env, Action::Kind::kAddPath, 3), -1);
  f.env.step(1);  // switch 5
  const int a = first_valid(f.env, Action::Kind::kAddPath, 3);
  ASSERT_GE(a, 0);
  const int links_before = f.env.topology().graph().num_edges();
  f.env.step(a);
  EXPECT_GT(f.env.topology().graph().num_edges(), links_before);
}

}  // namespace
}  // namespace nptsn
