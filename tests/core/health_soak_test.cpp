// Soak tests for the self-healing runtime at the plan() level: injected NBF
// faults and NaN gradients inside a real planning run, supervisor-on/off
// checkpoint bit-identity, and the anomaly ledger surviving kill-and-resume.
// CI runs these under ASan/UBSan in the soak job.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/failure_analyzer.hpp"
#include "testing/fault_injector.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::FaultTrigger;
using nptsn::testing::FaultyNbf;
using nptsn::testing::ScopedNumericFault;
using nptsn::testing::tiny_problem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nptsn_soak_" + name;
}

void remove_all(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

NptsnConfig soak_config() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 4;
  c.steps_per_epoch = 48;
  c.train_actor_iters = 5;
  c.train_critic_iters = 5;
  c.seed = 7;
  c.health_checks = true;
  c.max_rollbacks = 2;
  return c;
}

TEST(HealthSoak, InjectedFaultsStillProduceAPlanWithFullLedger) {
  // The ISSUE-4 acceptance scenario: one run, two different injected faults.
  // An NBF crash mid-rollout quarantines a worker; a NaN poked into the
  // gradients at an epoch boundary forces a rollback. The run must complete
  // every epoch anyway, and both incidents must be in the result's ledger.
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = soak_config();
  config.num_workers = 2;  // the epoch completes from the surviving worker

  auto nbf_trigger = std::make_shared<FaultTrigger>(30);
  FaultyNbf faulty(nbf, nbf_trigger);
  auto grad_trigger = std::make_shared<FaultTrigger>(2);  // 2nd epoch boundary
  ScopedNumericFault grad_fault(ScopedNumericFault::Target::kGradients, grad_trigger);

  const auto result = plan(problem, faulty, config);
  EXPECT_TRUE(nbf_trigger->fired()) << "NBF fault never fired; lower the trigger";
  EXPECT_TRUE(grad_trigger->fired());

  EXPECT_EQ(result.history.size(), 4u);
  EXPECT_TRUE(result.stopped_reason.empty()) << result.stopped_reason;
  EXPECT_FALSE(result.anomalies.empty());
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_GE(result.quarantined_worker_epochs, 1);
  EXPECT_EQ(result.anomalies_total,
            static_cast<std::int64_t>(result.anomalies.size()));
  std::int64_t worker_faults = 0;
  std::int64_t grad_faults = 0;
  for (const Anomaly& a : result.anomalies) {
    if (a.code == AnomalyCode::kWorkerException) ++worker_faults;
    if (a.code == AnomalyCode::kNonFiniteGradient) ++grad_faults;
  }
  EXPECT_GE(worker_faults, 1);
  EXPECT_EQ(grad_faults, 1);

  // Feasibility with a genuinely verified plan, faults notwithstanding.
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.best.has_value());
  const FailureAnalyzer analyzer(nbf);
  EXPECT_TRUE(analyzer.analyze(*result.best).reliable);
}

TEST(HealthSoak, HonestCheckpointsBitIdenticalSupervisorOnOff) {
  // With no faults, the supervisor must be invisible down to the checkpoint
  // bytes on disk: same payload, same checksum, same file.
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const auto path_off = temp_path("honest_off");
  const auto path_on = temp_path("honest_on");
  remove_all(path_off);
  remove_all(path_on);

  auto config = soak_config();
  config.health_checks = false;
  config.checkpoint_path = path_off;
  const auto off = plan(problem, nbf, config);

  config.health_checks = true;
  // Armed-but-quiet heuristics: the whole sentinel sweep runs every epoch.
  config.max_grad_norm = 1e9;
  config.max_approx_kl = 1e6;
  config.min_mean_entropy = 1e-12;
  config.max_critic_loss = 1e12;
  config.checkpoint_path = path_on;
  const auto on = plan(problem, nbf, config);

  EXPECT_TRUE(on.anomalies.empty());
  EXPECT_EQ(on.rollbacks, 0);
  EXPECT_EQ(on.quarantined_worker_epochs, 0);
  ASSERT_EQ(off.history.size(), on.history.size());
  for (std::size_t i = 0; i < off.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(off.history[i].actor_loss, on.history[i].actor_loss);
    EXPECT_DOUBLE_EQ(off.history[i].critic_loss, on.history[i].critic_loss);
  }
  const std::string bytes_off = file_bytes(path_off);
  const std::string bytes_on = file_bytes(path_on);
  ASSERT_FALSE(bytes_off.empty());
  EXPECT_EQ(bytes_off, bytes_on);
  remove_all(path_off);
  remove_all(path_on);
}

TEST(HealthSoak, LedgerRoundTripsThroughKillAndResume) {
  // A rollback happens, the process "dies" at epoch 2, a new plan() call
  // resumes from the checkpoint: the incident history must come back with it
  // and the remaining epochs must run clean.
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  const auto path = temp_path("ledger_resume");
  remove_all(path);
  auto config = soak_config();
  config.checkpoint_path = path;

  config.epochs = 2;
  {
    auto trigger = std::make_shared<FaultTrigger>(1);  // first epoch boundary
    ScopedNumericFault fault(ScopedNumericFault::Target::kGradients, trigger);
    const auto head = plan(problem, nbf, config);
    EXPECT_EQ(head.history.size(), 2u);
    EXPECT_EQ(head.rollbacks, 1);
    ASSERT_EQ(head.anomalies.size(), 1u);
    EXPECT_EQ(head.anomalies[0].code, AnomalyCode::kNonFiniteGradient);
    EXPECT_EQ(head.history[0].rollbacks, 1);
  }

  config.epochs = 4;
  const auto tail = plan(problem, nbf, config);
  EXPECT_EQ(tail.history.size(), 2u) << "resume must not repeat epochs";
  EXPECT_EQ(tail.epochs_completed, 4);
  // The ledger from before the "crash" round-tripped through the file.
  EXPECT_EQ(tail.rollbacks, 1);
  ASSERT_EQ(tail.anomalies.size(), 1u);
  EXPECT_EQ(tail.anomalies[0].code, AnomalyCode::kNonFiniteGradient);
  EXPECT_EQ(tail.anomalies[0].epoch, 0);
  // The resumed epochs themselves ran clean.
  for (const EpochStats& stats : tail.history) {
    EXPECT_EQ(stats.rollbacks, 0);
    EXPECT_EQ(stats.quarantined_workers, 0);
  }
  remove_all(path);
}

TEST(HealthSoak, PersistentEnvironmentFaultDegradesGracefully) {
  // Every NBF call fails from some point on: all workers die, every retry
  // produces an empty epoch, and after max_rollbacks the run stops with a
  // "diverged" reason instead of crashing — still reporting what it had.
  const auto problem = tiny_problem(2);
  HeuristicRecovery nbf;
  auto config = soak_config();
  config.max_rollbacks = 1;

  auto trigger = std::make_shared<FaultTrigger>(30, FaultTrigger::Repeat::kAlways);
  FaultyNbf faulty(nbf, trigger);
  const auto result = plan(problem, faulty, config);

  EXPECT_NE(result.stopped_reason.find("diverged"), std::string::npos)
      << result.stopped_reason;
  EXPECT_FALSE(result.anomalies.empty());
  EXPECT_EQ(result.rollbacks, 1);
  // feasible only if a verified solution was found before the faults began;
  // either way the call returned instead of throwing.
  EXPECT_EQ(result.feasible, result.best.has_value());
}

}  // namespace
}  // namespace nptsn
