// Table II of the paper: NPTSN default RL parameters.
#include "core/config.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Config, TableIIDefaults) {
  const NptsnConfig c;
  EXPECT_EQ(c.gcn_layers, 2);
  EXPECT_EQ(c.mlp_hidden, (std::vector<int>{256, 256}));
  EXPECT_EQ(c.embedding_dim, 0);  // 0 == the paper's 2 x |Vc| default
  EXPECT_EQ(c.path_actions, 16);  // K
  EXPECT_EQ(c.epochs, 256);       // maxepoch
  EXPECT_EQ(c.steps_per_epoch, 2048);  // maxstep
  EXPECT_DOUBLE_EQ(c.reward_scale, 1e3);
  EXPECT_DOUBLE_EQ(c.clip_ratio, 0.2);
  EXPECT_DOUBLE_EQ(c.actor_lr, 3e-4);
  EXPECT_DOUBLE_EQ(c.critic_lr, 1e-3);
  EXPECT_DOUBLE_EQ(c.gae_lambda, 0.97);
  EXPECT_DOUBLE_EQ(c.discount_factor, 0.99);
}

TEST(Config, SpinningUpTrainingDefaults) {
  const NptsnConfig c;
  EXPECT_EQ(c.train_actor_iters, 80);
  EXPECT_EQ(c.train_critic_iters, 80);
  EXPECT_DOUBLE_EQ(c.target_kl, 0.01);
}

}  // namespace
}  // namespace nptsn
