#include "core/soag.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::dual_homed_topology;
using testing::tiny_problem;

ErrorSet all_pairs_errors() { return {{0, 1}, {1, 2}}; }

TEST(Soag, ActionArityIsStatic) {
  const auto p = tiny_problem();
  const Soag soag(p, /*k=*/4);
  EXPECT_EQ(soag.num_actions(), 3 + 4);  // |Vc_sw| + K

  Rng rng(1);
  const Topology t(p);
  const auto space = soag.generate(t, FailureScenario::none(), all_pairs_errors(), rng);
  EXPECT_EQ(space.size(), 7);
  EXPECT_EQ(space.mask.size(), 7u);
}

TEST(Soag, EmptyTopologyOffersOnlySwitchAdds) {
  // No switches planned yet: path actions cannot traverse anything (paths
  // may only use already-added switches), so only switch actions are valid.
  const auto p = tiny_problem();
  const Soag soag(p, 4);
  Rng rng(1);
  const Topology t(p);
  const auto space = soag.generate(t, FailureScenario::none(), all_pairs_errors(), rng);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(space.actions[static_cast<std::size_t>(i)].kind,
              Action::Kind::kSwitchUpgrade);
    EXPECT_EQ(space.mask[static_cast<std::size_t>(i)], 1);
  }
  for (int i = 3; i < 7; ++i) {
    EXPECT_EQ(space.actions[static_cast<std::size_t>(i)].kind, Action::Kind::kAddPath);
    EXPECT_EQ(space.mask[static_cast<std::size_t>(i)], 0);
  }
}

TEST(Soag, SwitchUpgradesTargetTheFailureOnly) {
  // Survival-oriented pruning: upgrading a planned switch is only offered
  // when that switch participates in the counterexample failure; adding an
  // absent switch is always offered.
  const auto p = tiny_problem();
  const Soag soag(p, 2);
  Rng rng(1);
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  const auto failure = FailureScenario::of_switches({4});
  const auto space = soag.generate(t, failure, all_pairs_errors(), rng);
  EXPECT_EQ(space.mask[0], 1);  // switch 4: failing, upgradable
  EXPECT_EQ(space.mask[1], 0);  // switch 5: planned but uninvolved
  EXPECT_EQ(space.mask[2], 1);  // switch 6: can always be added
}

TEST(Soag, SwitchUpgradeMaskedAtAsilD) {
  const auto p = tiny_problem();
  const Soag soag(p, 2);
  Rng rng(1);
  Topology t(p);
  t.add_switch(4);
  for (int i = 0; i < 3; ++i) t.upgrade_switch(4);  // now D
  const auto failure = FailureScenario::of_switches({4});
  const auto space = soag.generate(t, failure, all_pairs_errors(), rng);
  EXPECT_EQ(space.mask[0], 0);  // D cannot be upgraded even when failing
  EXPECT_EQ(space.mask[1], 1);  // absent switches still addable
  EXPECT_EQ(space.mask[2], 1);
}

TEST(Soag, PathActionsConnectAnErrorPair) {
  const auto p = tiny_problem();
  const Soag soag(p, 4);
  Rng rng(2);
  Topology t(p);
  t.add_switch(4);
  const ErrorSet errors = {{0, 2}};
  const auto space = soag.generate(t, FailureScenario::none(), errors, rng);
  bool found_valid_path = false;
  for (int i = 3; i < space.size(); ++i) {
    const auto& a = space.actions[static_cast<std::size_t>(i)];
    if (space.mask[static_cast<std::size_t>(i)]) {
      found_valid_path = true;
      EXPECT_EQ(a.path.front(), 0);
      EXPECT_EQ(a.path.back(), 2);
    }
  }
  EXPECT_TRUE(found_valid_path);
}

TEST(Soag, PathsOnlyTraversePlannedSwitches) {
  const auto p = tiny_problem();
  const Soag soag(p, 8);
  Rng rng(3);
  Topology t(p);
  t.add_switch(5);  // only switch 5 exists
  const ErrorSet errors = {{0, 3}};
  const auto space = soag.generate(t, FailureScenario::none(), errors, rng);
  for (int i = 3; i < space.size(); ++i) {
    const auto& path = space.actions[static_cast<std::size_t>(i)].path;
    for (const NodeId v : path) {
      if (p.is_switch(v)) EXPECT_EQ(v, 5);
    }
  }
}

TEST(Soag, FailedSwitchesExcludedFromPaths) {
  const auto p = tiny_problem();
  const Soag soag(p, 8);
  Rng rng(4);
  Topology t(p);
  t.add_switch(4);
  t.add_switch(5);
  FailureScenario failure = FailureScenario::of_switches({4});
  const auto space = soag.generate(t, failure, {{0, 1}}, rng);
  for (int i = 3; i < space.size(); ++i) {
    for (const NodeId v : space.actions[static_cast<std::size_t>(i)].path) {
      EXPECT_NE(v, 4) << "path traverses the failed switch";
    }
  }
}

TEST(Soag, FailedLinksExcludedFromPaths) {
  const auto p = tiny_problem();
  const Soag soag(p, 8);
  Rng rng(5);
  Topology t(p);
  t.add_switch(4);
  FailureScenario failure;
  failure.failed_links = {EdgeKey{0, 4}};
  const auto space = soag.generate(t, failure, {{0, 1}}, rng);
  for (int i = 3; i < space.size(); ++i) {
    const auto& path = space.actions[static_cast<std::size_t>(i)].path;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      EXPECT_FALSE(EdgeKey(path[h], path[h + 1]) == EdgeKey(0, 4));
    }
  }
}

TEST(Soag, DegreeViolatingPathsMasked) {
  const auto p = tiny_problem();
  const Soag soag(p, 8);
  Rng rng(6);
  Topology t(p);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  // Saturate station 0's two ports.
  t.add_link(0, 4);
  t.add_link(0, 5);
  const auto space = soag.generate(t, FailureScenario::none(), {{0, 3}}, rng);
  for (int i = 3; i < space.size(); ++i) {
    if (!space.mask[static_cast<std::size_t>(i)]) continue;
    // Any valid path must leave station 0 through an existing link.
    const auto& path = space.actions[static_cast<std::size_t>(i)].path;
    EXPECT_TRUE(path[1] == 4 || path[1] == 5);
  }
}

TEST(Soag, NoErrorsMeansNoPathActions) {
  const auto p = tiny_problem();
  const Soag soag(p, 4);
  Rng rng(7);
  Topology t(p);
  t.add_switch(4);
  const auto space = soag.generate(t, FailureScenario::none(), {}, rng);
  for (int i = 3; i < space.size(); ++i) {
    EXPECT_EQ(space.mask[static_cast<std::size_t>(i)], 0);
    EXPECT_TRUE(space.actions[static_cast<std::size_t>(i)].path.empty());
  }
}

TEST(Soag, RedundantPathsMaskedAsNoOps) {
  // Once the dual-homed net exists, re-adding one of its exact paths would
  // change nothing; such paths must be masked out.
  const auto p = tiny_problem();
  const auto t = dual_homed_topology(p);
  const Soag soag(p, 8);
  Rng rng(8);
  const auto space = soag.generate(t, FailureScenario::none(), {{0, 1}}, rng);
  for (int i = 3; i < space.size(); ++i) {
    if (!space.mask[static_cast<std::size_t>(i)]) continue;
    const auto& path = space.actions[static_cast<std::size_t>(i)].path;
    bool adds_new_link = false;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (!t.has_link(path[h], path[h + 1])) adds_new_link = true;
    }
    EXPECT_TRUE(adds_new_link);
  }
}

TEST(Soag, ErrorPairSelectionIsSeedDependent) {
  const auto p = tiny_problem();
  const Soag soag(p, 4);
  Topology t(p);
  for (const NodeId s : {4, 5, 6}) t.add_switch(s);
  const ErrorSet errors = {{0, 1}, {2, 3}};
  std::set<NodeId> sources_seen;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto space = soag.generate(t, FailureScenario::none(), errors, rng);
    for (int i = 3; i < space.size(); ++i) {
      const auto& path = space.actions[static_cast<std::size_t>(i)].path;
      if (!path.empty()) sources_seen.insert(path.front());
    }
  }
  // Over several seeds both error pairs get targeted (Alg. 1 line 1).
  EXPECT_EQ(sources_seen.size(), 2u);
}

TEST(Soag, RejectsNonPositiveK) {
  const auto p = tiny_problem();
  EXPECT_THROW(Soag(p, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
