// Out-of-process chaos-kill harness (DESIGN.md §14): run the REAL
// nptsn_serve daemon, SIGKILL it at randomized journal/execution crash
// points (and once from the outside, mid-burst), restart it over the same
// journal, and audit the durability contract — zero lost acknowledged
// requests, zero double-answers, every request terminal after the re-run.
//
// The daemon binary path is compiled in as NPTSN_SERVE_BIN. Iteration count
// defaults low for local ctest; CI raises it via NPTSN_CHAOS_ITERS.
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/problem.hpp"
#include "service/crash_point.hpp"
#include "service/journal.hpp"
#include "testing/fault_injector.hpp"
#include "testing/test_problems.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

using nptsn::testing::corrupt_file_byte;
using nptsn::testing::tiny_problem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nptsn_chaos_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct RunResult {
  bool exited = false;   // normal exit (vs killed by a signal)
  int exit_code = -1;    // valid when exited
  int term_signal = 0;   // valid when !exited
  std::string output;    // combined stdout+stderr
};

// fork/exec the serve daemon, optionally with NPTSN_CRASH_POINT and/or
// NPTSN_IO_FAULT planted, and optionally signalling it from outside after
// `signal_after_ms` (SIGKILL for the chaos kills; SIGUSR1 for the stats dump).
RunResult run_serve(const std::vector<std::string>& args, const std::string& crash_point,
                    int signal_after_ms = 0, int signal_to_send = SIGKILL,
                    const std::string& io_fault = "") {
  static int run_counter = 0;
  const std::string out_path =
      ::testing::TempDir() + "nptsn_chaos_out_" + std::to_string(run_counter++) + ".log";

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    if (crash_point.empty()) {
      ::unsetenv("NPTSN_CRASH_POINT");
    } else {
      ::setenv("NPTSN_CRASH_POINT", crash_point.c_str(), 1);
    }
    if (io_fault.empty()) {
      ::unsetenv("NPTSN_IO_FAULT");
    } else {
      ::setenv("NPTSN_IO_FAULT", io_fault.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(NPTSN_SERVE_BIN));
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(NPTSN_SERVE_BIN, argv.data());
    ::_exit(127);
  }

  if (signal_after_ms > 0) {
    ::usleep(static_cast<useconds_t>(signal_after_ms) * 1000);
    ::kill(pid, signal_to_send);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);

  RunResult result;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  std::ifstream in(out_path);
  result.output.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  std::remove(out_path.c_str());
  return result;
}

std::vector<std::string> serve_args(const std::string& journal_dir) {
  // Tiny budgets: the contract under test is durability, not plan quality.
  return {"--journal", journal_dir, "--epochs", "1",       "--steps",    "16",
          "--seed",    "7",         "gen:11:4:2", "gen:12:4:2"};
}

int occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

// Audits the journal after the recovery run: every request terminal (has a
// persisted answer), none live, and each answered exactly once in `output`.
void audit_journal(const std::string& dir, std::size_t expect_requests,
                   const std::string& output) {
  RequestJournal journal({dir});
  auto recovered = journal.take_recovered();
  ASSERT_EQ(recovered.size(), expect_requests) << "requests lost or duplicated";
  for (const auto& item : recovered) {
    EXPECT_TRUE(item.replay.has_value())
        << item.request.id << " is still live after a completed recovery run";
    // One result line per id: recovered-or-fresh, never both (no double
    // answer, no re-execution of an already-answered request).
    EXPECT_EQ(occurrences(output, "] " + item.request.id + ":"), 1) << output;
  }
}

TEST(ChaosKill, RandomizedCrashPointsLoseNoAcknowledgedRequest) {
  int iterations = 6;
  if (const char* env = std::getenv("NPTSN_CHAOS_ITERS")) {
    iterations = std::atoi(env);
    ASSERT_GT(iterations, 0);
  }
  const auto& points = known_crash_points();
  Rng rng(0xC4A05);
  int kills = 0;

  for (int iter = 0; iter < iterations; ++iter) {
    const std::string dir = fresh_dir("points_" + std::to_string(iter));
    const std::string point =
        points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(points.size()) - 1))];
    const int at_hit = rng.uniform_int(1, 3);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + point + "@" +
                 std::to_string(at_hit));

    const RunResult crashed =
        run_serve(serve_args(dir), point + "@" + std::to_string(at_hit));
    if (!crashed.exited) {
      // The planted point fired: the daemon died by SIGKILL mid-flight.
      EXPECT_EQ(crashed.term_signal, SIGKILL) << crashed.output;
      ++kills;
    } else {
      // The point never fired this run (e.g. compaction points below the
      // threshold): the run must then have completed normally.
      EXPECT_TRUE(crashed.exit_code == 0 || crashed.exit_code == 1) << crashed.output;
    }

    // "Restart with the same command line" — the documented recovery story.
    const RunResult recovered = run_serve(serve_args(dir), "");
    ASSERT_TRUE(recovered.exited) << "recovery run died";
    EXPECT_TRUE(recovered.exit_code == 0 || recovered.exit_code == 1)
        << "exit " << recovered.exit_code << "\n"
        << recovered.output;
    audit_journal(dir, 2, recovered.output);
    std::filesystem::remove_all(dir);
  }
  // The deterministic point sequence must actually exercise the kill path.
  EXPECT_GE(kills, 1);
}

TEST(ChaosKill, ExternalSigkillMidBurstRecoversEveryRequest) {
  const std::string dir = fresh_dir("midburst");
  // A burst big enough that an external kill lands mid-run.
  const std::vector<std::string> args = {"--journal", dir,          "--epochs",
                                         "4",         "--steps",    "64",
                                         "--seed",    "7",          "gen:11:4:2",
                                         "gen:12:4:2", "gen:13:4:2", "gen:14:4:2"};

  const RunResult killed = run_serve(args, "", /*signal_after_ms=*/300);
  if (!killed.exited) {
    EXPECT_EQ(killed.term_signal, SIGKILL);
  }
  // (If the machine was fast enough to finish in 300ms, the re-run below
  // still must replay everything — the audit holds either way.)

  const RunResult recovered = run_serve(args, "");
  ASSERT_TRUE(recovered.exited) << "recovery run died";
  EXPECT_TRUE(recovered.exit_code == 0 || recovered.exit_code == 1)
      << "exit " << recovered.exit_code << "\n"
      << recovered.output;
  audit_journal(dir, 4, recovered.output);
  std::filesystem::remove_all(dir);
}

// Environmental-fault composition (DESIGN.md §15): the REAL daemon runs with
// an I/O fault schedule armed from NPTSN_IO_FAULT — the same grammar the CI
// fault-soak job uses. The contract: the process NEVER dies of storage
// trouble (it degrades, sheds, or retries), and a heal run over the same
// journal converges to every request answered exactly once.
TEST(ChaosKill, EnvironmentalFaultsNeverKillTheDaemon) {
  const std::vector<std::string> faults = {
      "journal.append.fsync:EIO@1x2",       // transient hiccup: retried through
      "journal.append.write:EINTR@1x32",    // signal storm: absorbed
      "journal.append.write:SHORT@1x8",     // partial writes: looped over
      "journal.append.fsync:ENOSPC@2x-1",   // disk fills mid-burst: degrade
      "journal.*:ENOSPC@3x-1",              // disk fills anywhere: degrade
  };
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::string dir = fresh_dir("iofault_" + std::to_string(i));
    SCOPED_TRACE(faults[i]);

    const RunResult faulted = run_serve(serve_args(dir), "", 0, SIGKILL, faults[i]);
    // The whole point: a sick disk is an operational state, not a crash.
    ASSERT_TRUE(faulted.exited) << "daemon died of signal " << faulted.term_signal
                                << " under " << faults[i] << "\n"
                                << faulted.output;
    EXPECT_TRUE(faulted.exit_code == 0 || faulted.exit_code == 1)
        << "exit " << faulted.exit_code << "\n"
        << faulted.output;
    EXPECT_NE(faulted.output.find("fault(s) armed from NPTSN_IO_FAULT"),
              std::string::npos)
        << faulted.output;

    // Heal and restart with the same command line: shed requests run fresh,
    // surviving ones replay — either way, two answers, each exactly once.
    const RunResult healed = run_serve(serve_args(dir), "");
    ASSERT_TRUE(healed.exited) << "heal run died";
    EXPECT_TRUE(healed.exit_code == 0 || healed.exit_code == 1)
        << "exit " << healed.exit_code << "\n"
        << healed.output;
    audit_journal(dir, 2, healed.output);
    std::filesystem::remove_all(dir);
  }
}

// Satellite: SIGUSR1 makes the running daemon dump its operational stats —
// shard health, fault counters, journal segments — without disturbing the
// burst in flight.
TEST(ChaosKill, SigUsr1DumpsStatsWithoutDisruption) {
  const std::string dir = fresh_dir("sigusr1");
  const std::vector<std::string> args = {"--journal", dir,          "--epochs",
                                         "4",         "--steps",    "64",
                                         "--seed",    "7",          "gen:11:4:2",
                                         "gen:12:4:2", "gen:13:4:2", "gen:14:4:2"};

  const RunResult result = run_serve(args, "", /*signal_after_ms=*/100, SIGUSR1);
  ASSERT_TRUE(result.exited) << "daemon died of signal " << result.term_signal;
  EXPECT_TRUE(result.exit_code == 0 || result.exit_code == 1)
      << "exit " << result.exit_code << "\n"
      << result.output;
  EXPECT_NE(result.output.find("=== nptsn_serve stats ==="), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("=== end stats ==="), std::string::npos);
  EXPECT_NE(result.output.find("journal:"), std::string::npos);
  // The burst itself was not disturbed: all four requests answered once.
  audit_journal(dir, 4, result.output);
  std::filesystem::remove_all(dir);
}

// Satellite: the pending-request recovery path tolerates on-disk damage —
// one corrupt pending file is skipped with a warning, the rest of the
// backlog still runs.
TEST(ChaosKill, PendingDirSkipsCorruptFilesAndRunsTheRest) {
  const std::string dir = fresh_dir("pending");
  const auto write_pending = [&](const std::string& id) {
    PlanningRequest request;
    request.id = id;
    request.problem_bytes = problem_bytes(tiny_problem());
    ByteWriter out;  // mirror of nptsn_serve's pending-request payload (v2)
    out.str(request.id);
    out.str(request.label);
    out.i64(request.priority);
    out.i64(request.epochs);
    out.i64(request.steps_per_epoch);
    out.u64(request.seed);
    out.i64(request.max_attempts);
    out.blob(request.problem_bytes);
    const std::string path = dir + "/pending-" + id + ".req";
    save_checkpoint_file(path, /*kPendingRequestVersion=*/2, out.data());
    return path;
  };
  write_pending("survivor");
  corrupt_file_byte(write_pending("damaged"), 40);  // inside the payload

  const RunResult result = run_serve(
      {"--epochs", "1", "--steps", "16", "pending-dir:" + dir}, "");
  ASSERT_TRUE(result.exited);
  // Not a usage (2) or I/O (3) error: the damage was contained.
  EXPECT_TRUE(result.exit_code == 0 || result.exit_code == 1) << result.output;
  EXPECT_NE(result.output.find("skipping corrupt pending file"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("pending-damaged.req"), std::string::npos);
  EXPECT_EQ(occurrences(result.output, "] survivor:"), 1) << result.output;
  EXPECT_EQ(occurrences(result.output, "] damaged:"), 0) << result.output;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nptsn
