// Liveness watchdog tests: a session that never polls its cooperative
// Deadline is first force-cancelled, then — still not returning — declared
// wedged: its shard is quarantined, queued work reroutes to healthy shards,
// and the service keeps answering. When the wedged session finally returns,
// the shard is un-quarantined and rejoins the rotation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "net/problem.hpp"
#include "service/crash_point.hpp"
#include "service/service.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;

NptsnConfig small_session() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 2;
  c.steps_per_epoch = 32;
  c.train_actor_iters = 3;
  c.train_critic_iters = 3;
  c.seed = 21;
  return c;
}

PlanningRequest tiny_request(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.problem_bytes = problem_bytes(tiny_problem());
  return request;
}

// A worker parked here simulates wedged session code: it holds its thread
// inside the session and never looks at the Deadline token.
struct WorkerGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  std::atomic<int> parked{0};

  void park() {
    std::unique_lock lock(mutex);
    parked.fetch_add(1);
    cv.wait(lock, [&] { return released; });
  }
  void release() {
    {
      std::lock_guard lock(mutex);
      released = true;
    }
    cv.notify_all();
  }
};

bool wait_for(const std::function<bool()>& done, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

TEST(Watchdog, DisabledByDefaultAndInert) {
  ServiceConfig config;
  config.session = small_session();
  ASSERT_EQ(config.watchdog_grace, 0.0);  // off unless explicitly enabled

  PlannerService service(config);
  const PlanningResponse response = service.submit(tiny_request("plain")).get();
  ASSERT_TRUE(response.status == ResponseStatus::kPlanned ||
              response.status == ResponseStatus::kInfeasible);
  service.shutdown(PlannerService::Shutdown::kDrain);

  const auto counters = service.counters();
  EXPECT_EQ(counters.watchdog_cancels, 0);
  EXPECT_EQ(counters.wedged, 0);
  EXPECT_EQ(counters.rerouted, 0);
}

TEST(Watchdog, WedgedSessionQuarantinesItsShardAndBacklogReroutes) {
  ServiceConfig config;
  config.session = small_session();
  config.shards = 2;
  config.workers_per_shard = 1;
  config.session_wall_seconds = 0.05;
  config.watchdog_grace = 1.0;        // cancel at ~0.05s, wedge at ~0.1s
  config.watchdog_poll_seconds = 0.005;

  PlannerService service(config);
  WorkerGate gate;
  // Park exactly the FIRST session right after it starts: the hook fires only
  // on the armed crossing, so later sessions run normally.
  arm_crash_point("service.start.after_journal", 1);
  set_crash_point_hook([&gate](const char*) { gate.park(); });
  // Pass or fail, un-park the worker and disarm before the service (declared
  // above, destroyed after) joins its threads.
  struct Cleanup {
    WorkerGate& gate;
    ~Cleanup() {
      disarm_crash_points();
      set_crash_point_hook(nullptr);
      gate.release();
    }
  } cleanup{gate};

  // "stuck" wedges one shard's only worker...
  auto stuck = service.submit(tiny_request("stuck"));
  ASSERT_TRUE(wait_for([&] { return gate.parked.load() == 1; }, 5.0));

  // ...and "queued" — same problem bytes, same fingerprint — lands on that
  // same shard's queue behind it.
  auto queued = service.submit(tiny_request("queued"));

  // Phase 1: the watchdog force-cancels the overrunning session. Phase 2: it
  // is STILL parked a full window later, so the shard is quarantined and its
  // backlog moves to the healthy shard.
  ASSERT_TRUE(wait_for(
      [&] {
        const auto stats = service.stats();
        for (const auto& shard : stats.shards) {
          if (shard.quarantined) return true;
        }
        return false;
      },
      10.0));
  {
    const auto counters = service.counters();
    EXPECT_GE(counters.watchdog_cancels, 1);
    EXPECT_EQ(counters.wedged, 1);
  }

  // The rerouted request completes on the healthy shard while the wedged one
  // is still holding its worker hostage.
  const PlanningResponse moved = queued.get();
  ASSERT_TRUE(moved.status == ResponseStatus::kPlanned ||
              moved.status == ResponseStatus::kInfeasible)
      << to_string(moved.status) << ": " << moved.error;
  EXPECT_GE(service.counters().rerouted, 1);
  {
    const auto stats = service.stats();
    int quarantined = 0, wedged_sessions = 0;
    for (const auto& shard : stats.shards) {
      quarantined += shard.quarantined ? 1 : 0;
      wedged_sessions += shard.wedged_sessions;
    }
    EXPECT_EQ(quarantined, 1);
    EXPECT_EQ(wedged_sessions, 1);
  }

  // The wedged session finally returns (with its force-cancelled deadline):
  // it answers kCancelled, the shard un-quarantines and rejoins the rotation.
  gate.release();
  EXPECT_EQ(stuck.get().status, ResponseStatus::kCancelled);
  ASSERT_TRUE(wait_for(
      [&] {
        if (service.counters().unwedged != 1) return false;
        for (const auto& shard : service.stats().shards) {
          if (shard.quarantined) return false;
        }
        return true;
      },
      10.0));

  const PlanningResponse after = service.submit(tiny_request("after")).get();
  ASSERT_TRUE(after.status == ResponseStatus::kPlanned ||
              after.status == ResponseStatus::kInfeasible);
  service.shutdown(PlannerService::Shutdown::kDrain);
}

}  // namespace
}  // namespace nptsn
