// Degraded-mode durability under injected environmental faults (DESIGN.md
// §15): transient errors retry with backoff, persistent errors flip the
// journal into DEGRADED instead of throwing, in-flight answers go out flagged
// non-durable, a healed disk re-arms through the probe and reconciles every
// entry that mutated while degraded, and an ENOSPC mid-compaction leaves a
// journal whose overlapping segments merge idempotently. Plus a seeded
// (site x errno) soak over every journal I/O site.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/problem.hpp"
#include "service/crash_point.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"
#include "testing/test_problems.hpp"
#include "util/io.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nptsn_degraded_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Every test leaves the process-global fault machinery clean, pass or fail.
class DegradedMode : public ::testing::Test {
 protected:
  void SetUp() override {
    io::disarm_io_faults();
    disarm_crash_points();
  }
  void TearDown() override {
    io::disarm_io_faults();
    disarm_crash_points();
    set_crash_point_hook(nullptr);
  }
};

RequestJournal::Config fast_journal(const std::string& dir) {
  RequestJournal::Config config;
  config.dir = dir;
  config.io_retry_base_seconds = 0.0001;  // keep backoff sleeps invisible
  return config;
}

PlanningRequest request_named(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.label = "label-" + id;
  request.max_attempts = 2;
  request.problem_bytes.assign(16, static_cast<std::uint8_t>(id.back()));
  return request;
}

ProblemFp fp_of(const PlanningRequest& request) {
  return problem_fingerprint128(request.problem_bytes);
}

PlanningResponse done_response(const std::string& id) {
  PlanningResponse response;
  response.id = id;
  response.label = "label-" + id;
  response.status = ResponseStatus::kPlanned;
  response.feasible = true;
  response.best_cost = 12.5;
  response.topology_bytes = {9, 8, 7};
  response.epochs_completed = 2;
  return response;
}

// --- journal-level -----------------------------------------------------------

TEST_F(DegradedMode, PersistentFaultDegradesAndShedsUnacknowledged) {
  const std::string dir = fresh_dir("persistent");
  RequestJournal journal(fast_journal(dir));
  io::arm_io_fault({"journal.append.fsync", ENOSPC, 1, /*count=*/-1});

  const PlanningRequest request = request_named("a");
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDegraded);
  EXPECT_FALSE(journal.durable());
  EXPECT_FALSE(journal.degraded_reason().empty());

  RequestJournal::Stats stats = journal.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.degraded_entered, 1);
  // The shed request was NOT entered: nothing for a later re-arm to resurrect.
  EXPECT_EQ(stats.live, 0);

  // Once degraded, further appends shed immediately without touching the disk.
  const PlanningRequest next = request_named("b");
  EXPECT_EQ(journal.append_accepted(next, fp_of(next)), AppendOutcome::kDegraded);

  // Heal the disk: the probe re-arms and durable appends resume.
  io::disarm_io_faults();
  EXPECT_TRUE(journal.try_rearm());
  EXPECT_TRUE(journal.durable());
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
  EXPECT_EQ(journal.stats().live, 1);
  EXPECT_GE(journal.stats().rearms, 1);
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, TransientFaultRetriesThenLandsTheRecordWhole) {
  const std::string dir = fresh_dir("transient");
  RequestJournal journal(fast_journal(dir));
  // Two EIO hiccups on the durability barrier, then the storm passes.
  io::arm_io_fault({"journal.append.fsync", EIO, 1, /*count=*/2});

  const PlanningRequest request = request_named("a");
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
  EXPECT_TRUE(journal.durable());

  const RequestJournal::Stats stats = journal.stats();
  EXPECT_EQ(stats.io_retries, 2);
  // Each failed append may have torn the tail: the damaged segment is sealed
  // and the record re-lands whole in a fresh one.
  EXPECT_EQ(stats.segments_abandoned, 2);
  EXPECT_EQ(stats.live, 1);
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, ExhaustedTransientRetryBudgetDegrades) {
  const std::string dir = fresh_dir("exhausted");
  RequestJournal::Config config = fast_journal(dir);
  config.io_retry_attempts = 2;
  RequestJournal journal(config);
  io::arm_io_fault({"journal.append.fsync", EIO, 1, /*count=*/-1});  // never heals

  const PlanningRequest request = request_named("a");
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDegraded);
  EXPECT_FALSE(journal.durable());
  EXPECT_EQ(journal.stats().io_retries, 2);  // the full budget, no more
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, EintrStormIsAbsorbedWithoutRetryAccounting) {
  const std::string dir = fresh_dir("eintr");
  RequestJournal journal(fast_journal(dir));
  io::arm_io_fault({"journal.append.write", EINTR, 1, /*count=*/16});

  const PlanningRequest request = request_named("a");
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
  // write_all retries EINTR in place: no abandoned segments, no backoff.
  const RequestJournal::Stats stats = journal.stats();
  EXPECT_EQ(stats.io_retries, 0);
  EXPECT_EQ(stats.segments_abandoned, 0);
  EXPECT_EQ(io::io_faults_injected(), 16);
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, ShortWritesAreLoopedOverAndTheJournalScansClean) {
  const std::string dir = fresh_dir("short");
  const PlanningRequest request = request_named("a");
  {
    RequestJournal journal(fast_journal(dir));
    io::arm_io_fault({"journal.append.write", /*error=*/0, 1, /*count=*/6});
    EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
    EXPECT_EQ(journal.append_started("a", 1), AppendOutcome::kDurable);
    EXPECT_EQ(journal.append_terminal(done_response("a"), 1), AppendOutcome::kDurable);
    EXPECT_GE(io::io_faults_injected(), 6);
  }
  io::disarm_io_faults();

  const JournalScan scan = scan_journal(dir);
  EXPECT_TRUE(scan.warnings.empty()) << scan.warnings.front();
  RequestJournal reopened(fast_journal(dir));
  const auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  ASSERT_TRUE(recovered[0].replay.has_value());
  EXPECT_EQ(recovered[0].replay->best_cost, 12.5);
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, DegradedTerminalIsReconciledOnRearmAndReplaysAfterRestart) {
  const std::string dir = fresh_dir("reconcile");
  const PlanningRequest request = request_named("a");
  {
    RequestJournal journal(fast_journal(dir));
    EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
    EXPECT_EQ(journal.append_started("a", 1), AppendOutcome::kDurable);

    // The disk fills exactly between the accept and the terminal.
    io::arm_io_fault({"journal.append.fsync", ENOSPC, 1, /*count=*/-1});
    EXPECT_EQ(journal.append_terminal(done_response("a"), 1), AppendOutcome::kDegraded);
    EXPECT_FALSE(journal.durable());

    // Heal; the re-arm probe re-journals the terminal that only lived in
    // memory while degraded.
    io::disarm_io_faults();
    EXPECT_TRUE(journal.try_rearm());
    const RequestJournal::Stats stats = journal.stats();
    EXPECT_EQ(stats.rearms, 1);
    EXPECT_GE(stats.reconciled, 1);
    EXPECT_FALSE(stats.degraded);
  }

  // Restart: the reconciliation records overlap the pre-fault segments; the
  // merge must converge to ONE request with its persisted answer.
  RequestJournal reopened(fast_journal(dir));
  const auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "a");
  ASSERT_TRUE(recovered[0].replay.has_value());
  EXPECT_EQ(recovered[0].replay->status, ResponseStatus::kPlanned);
  EXPECT_EQ(recovered[0].replay->topology_bytes, (std::vector<std::uint8_t>{9, 8, 7}));
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, FailedProbeKeepsTheJournalDegraded) {
  const std::string dir = fresh_dir("probe");
  RequestJournal journal(fast_journal(dir));
  io::arm_io_fault({"journal.append.fsync", ENOSPC, 1, /*count=*/-1});
  const PlanningRequest request = request_named("a");
  EXPECT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDegraded);

  // The write fault heals but the probe's own fsync fails once: the journal
  // must stay degraded rather than declare victory on a sick disk.
  io::disarm_io_faults();
  io::arm_io_fault({"journal.probe.fsync", EIO, 1, /*count=*/1});
  EXPECT_FALSE(journal.try_rearm());
  EXPECT_FALSE(journal.durable());
  // Next probe (fault exhausted) succeeds.
  EXPECT_TRUE(journal.try_rearm());
  EXPECT_TRUE(journal.durable());
  std::filesystem::remove_all(dir);
}

// Satellite (c): ENOSPC mid-compaction. The abandoned snapshot tmp must never
// be scanned as a segment, the pre-compaction segments must stay intact, and
// a restart over the overlapping state must merge to one entry per request.
TEST_F(DegradedMode, EnospcMidCompactionLeavesAMergeConsistentJournal) {
  const std::string dir = fresh_dir("compact");
  RequestJournal::Config config = fast_journal(dir);
  config.compact_min_delivered = 1;  // compact eagerly
  {
    RequestJournal journal(config);
    for (const std::string id : {"a", "b"}) {
      const PlanningRequest request = request_named(id);
      ASSERT_EQ(journal.append_accepted(request, fp_of(request)), AppendOutcome::kDurable);
      ASSERT_EQ(journal.append_started(id, 1), AppendOutcome::kDurable);
      ASSERT_EQ(journal.append_terminal(done_response(id), 1), AppendOutcome::kDurable);
    }

    // The disk fills while the compaction snapshot is being fsynced.
    io::arm_io_fault({"journal.compact.fsync", ENOSPC, 1, /*count=*/1});
    journal.acknowledge_delivered("a");  // crosses compact_min_delivered
    EXPECT_FALSE(journal.durable());     // ENOSPC is persistent: degraded
    EXPECT_EQ(journal.stats().compactions, 0);

    // The failed snapshot left no tmp file behind and no segment was lost.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(entry.path().extension(), ".seg") << entry.path();
    }
    io::disarm_io_faults();
    EXPECT_TRUE(journal.try_rearm());
    EXPECT_TRUE(journal.durable());
  }

  // All pre-fault records are still there and merge idempotently.
  const JournalScan scan = scan_journal(dir);
  EXPECT_TRUE(scan.warnings.empty()) << scan.warnings.front();
  RequestJournal reopened(config);
  const auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 2u);
  for (const auto& item : recovered) {
    ASSERT_TRUE(item.replay.has_value()) << item.request.id;
    EXPECT_EQ(item.replay->status, ResponseStatus::kPlanned);
  }
  std::filesystem::remove_all(dir);
}

// Seeded (site x errno) soak over every journal I/O site. The invariants —
// the same ones the CI fault-soak job asserts around the real daemon:
//   1. no fault injection ever throws or aborts;
//   2. a request whose accept was acknowledged kDurable is recoverable with
//      its answer after heal + re-arm + restart;
//   3. a request shed with kDegraded leaves no trace to resurrect.
TEST_F(DegradedMode, SiteByErrnoSoakNeverAbortsAndNeverLosesAcknowledgedWork) {
  const int kErrnos[] = {ENOSPC, EIO, EINTR, EMFILE, /*SHORT=*/0};
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  // deterministic at_hit sequence
  int combos = 0;

  for (const std::string& site : io::known_io_sites()) {
    if (site.rfind("journal.", 0) != 0) continue;
    for (const int error : kErrnos) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const int at_hit = 1 + static_cast<int>(seed >> 61);  // 1..8
      const std::string tag = site + ":" + std::to_string(error);
      const std::string dir =
          fresh_dir("soak_" + std::to_string(combos++));

      RequestJournal::Config config = fast_journal(dir);
      config.compact_min_delivered = 1;  // exercise the compact sites too
      std::vector<std::string> durable_ids;
      {
        io::arm_io_fault({site, error, at_hit, /*count=*/2});
        RequestJournal journal(config);
        for (const std::string id : {"r0", "r1", "r2"}) {
          const PlanningRequest request = request_named(id);
          if (journal.append_accepted(request, fp_of(request)) ==
              AppendOutcome::kDurable) {
            durable_ids.push_back(id);
          }
          journal.append_started(id, 1);
          journal.append_terminal(done_response(id), 1);
        }
        // Deliver r0's answer: crossing compact_min_delivered exercises the
        // compaction sites under the armed fault.
        journal.acknowledge_delivered("r0");
        io::disarm_io_faults();
        EXPECT_TRUE(journal.try_rearm()) << tag;
        EXPECT_TRUE(journal.durable()) << tag;
      }

      // Heal + restart. r1/r2 were never delivered, so if their accept was
      // acknowledged durable they MUST recover, exactly once, answer intact.
      // r0 was delivered: it may legitimately be compacted away, but it must
      // never recover without its answer or more than once.
      RequestJournal reopened(config);
      const auto recovered = reopened.take_recovered();
      for (const auto& item : recovered) {
        const bool acknowledged =
            std::find(durable_ids.begin(), durable_ids.end(), item.request.id) !=
            durable_ids.end();
        EXPECT_TRUE(acknowledged) << tag << " resurrected " << item.request.id;
      }
      for (const std::string& id : durable_ids) {
        int copies = 0;
        for (const auto& item : recovered) {
          if (item.request.id != id) continue;
          ++copies;
          EXPECT_TRUE(item.replay.has_value()) << tag << " lost answer of " << id;
        }
        EXPECT_LE(copies, 1) << tag << " duplicated " << id;
        if (id != "r0") EXPECT_EQ(copies, 1) << tag << " lost " << id;
      }
      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_GE(combos, 50);  // 13 journal sites x 5 fault kinds
}

// --- service-level -----------------------------------------------------------

NptsnConfig small_session() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 2;
  c.steps_per_epoch = 32;
  c.train_actor_iters = 3;
  c.train_critic_iters = 3;
  c.seed = 21;
  return c;
}

ServiceConfig small_service(const std::string& journal_dir) {
  ServiceConfig config;
  config.session = small_session();
  config.journal_dir = journal_dir;
  config.retry_base_seconds = 0.001;
  config.retry_max_seconds = 0.01;
  config.durability_probe_seconds = 0.01;  // heal fast in tests
  return config;
}

PlanningRequest tiny_request(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.problem_bytes = problem_bytes(tiny_problem());
  return request;
}

bool wait_until_durable(const PlannerService& service, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (service.stats().durable) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return service.stats().durable;
}

TEST_F(DegradedMode, ServiceShedsWhileDegradedAndHealsThroughTheProbe) {
  const std::string dir = fresh_dir("svc_shed");
  PlannerService service(small_service(dir));

  const PlanningResponse healthy = service.submit(tiny_request("before")).get();
  ASSERT_TRUE(healthy.status == ResponseStatus::kPlanned ||
              healthy.status == ResponseStatus::kInfeasible);
  EXPECT_TRUE(healthy.durable);

  // Disk fills: admission sheds un-acknowledged instead of lying about
  // durability, and the process stays up.
  io::arm_io_fault({"journal.append.fsync", ENOSPC, 1, /*count=*/-1});
  const PlanningResponse shed = service.submit(tiny_request("shed")).get();
  EXPECT_EQ(shed.status, ResponseStatus::kDegraded);
  EXPECT_FALSE(shed.durable);
  EXPECT_NE(shed.error.find("degraded"), std::string::npos);
  EXPECT_FALSE(service.stats().durable);
  EXPECT_EQ(service.counters().degraded, 1);

  // Disk heals: the background probe re-arms without any operator action.
  io::disarm_io_faults();
  ASSERT_TRUE(wait_until_durable(service, 5.0));
  EXPECT_GE(service.counters().rearmed, 1);

  const PlanningResponse after = service.submit(tiny_request("after")).get();
  ASSERT_TRUE(after.status == ResponseStatus::kPlanned ||
              after.status == ResponseStatus::kInfeasible);
  EXPECT_TRUE(after.durable);
  service.shutdown(PlannerService::Shutdown::kDrain);

  // The shed request left nothing to resurrect.
  RequestJournal reopened({dir});
  for (const auto& item : reopened.take_recovered()) {
    EXPECT_NE(item.request.id, "shed");
  }
  std::filesystem::remove_all(dir);
}

TEST_F(DegradedMode, InFlightAnswerIsDeliveredNonDurableThenReplaysAfterHeal) {
  const std::string dir = fresh_dir("svc_nondurable");
  PlanningResponse first;
  {
    PlannerService service(small_service(dir));
    // Fill the disk exactly between the session finishing and its terminal
    // record: the accept is already durable, the answer is not.
    arm_crash_point("service.terminal.before_journal", 1);
    set_crash_point_hook([](const char*) {
      io::arm_io_fault({"journal.append.fsync", ENOSPC, 1, /*count=*/-1});
    });

    first = service.submit(tiny_request("job")).get();
    ASSERT_TRUE(first.status == ResponseStatus::kPlanned ||
                first.status == ResponseStatus::kInfeasible);
    // The session is never held hostage to a sick disk: the answer goes out,
    // honestly flagged.
    EXPECT_FALSE(first.durable);
    EXPECT_EQ(service.counters().non_durable, 1);

    // Heal; the probe reconciles the in-memory terminal onto disk.
    disarm_crash_points();
    set_crash_point_hook(nullptr);
    io::disarm_io_faults();
    ASSERT_TRUE(wait_until_durable(service, 5.0));
    service.shutdown(PlannerService::Shutdown::kDrain);
  }

  // Restart: the reconciled terminal replays — the request is NOT re-executed
  // and the answer matches what the caller was already given.
  PlannerService restarted(small_service(dir));
  auto recovered = restarted.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered[0].replayed);
  const PlanningResponse replay = recovered[0].response.get();
  EXPECT_EQ(replay.status, first.status);
  EXPECT_DOUBLE_EQ(replay.best_cost, first.best_cost);
  EXPECT_EQ(replay.topology_bytes, first.topology_bytes);
  EXPECT_EQ(restarted.counters().replayed, 1);
  restarted.shutdown(PlannerService::Shutdown::kDrain);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nptsn
