// Concurrency, eviction, and exactness tests for the cross-problem cache
// layer: EngineSharedCache (NBF verdicts + whole outcomes),
// AdjacencyStageCache (staged GCN adjacency forms), and PolicyStore
// (warm-start weights). The stress tests run under TSan in CI's sanitizer
// matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/engine_cache.hpp"
#include "nn/stage_cache.hpp"
#include "rl/warm_start.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

ProblemFp fp(std::uint64_t a, std::uint64_t b) {
  ProblemFp result;
  result.a = a;
  result.b = b;
  return result;
}

GraphFp graph_fp(std::uint64_t a, std::uint64_t b, std::uint32_t edges) {
  GraphFp result;
  result.a = a;
  result.b = b;
  result.edges = edges;
  return result;
}

// --- EngineSharedCache ------------------------------------------------------

TEST(EngineSharedCache, VerdictRoundTripAndBindingIsolation) {
  EngineSharedCache cache;
  const EngineSharedCache::Binding binding{fp(1, 2), /*salt=*/7};
  const GraphFp rfp = graph_fp(10, 20, 5);
  const std::vector<NodeId> failed = {3, 8};
  const std::vector<EdgeKey> no_links;

  NbfVerdict out;
  EXPECT_FALSE(cache.lookup_verdict(binding, rfp, failed, no_links, &out));

  NbfVerdict verdict;
  verdict.ok = false;
  verdict.errors = {{3, 8}, {3, 9}};
  verdict.origin = graph_fp(99, 98, 12);
  cache.publish_verdict(binding, rfp, failed, no_links, verdict);

  ASSERT_TRUE(cache.lookup_verdict(binding, rfp, failed, no_links, &out));
  EXPECT_EQ(out.ok, verdict.ok);
  EXPECT_EQ(out.errors, verdict.errors);
  EXPECT_EQ(out.origin.a, verdict.origin.a);

  // A different salt (analysis options / NBF construction) must never see
  // the entry — that is the cache-key soundness boundary.
  const EngineSharedCache::Binding other_salt{fp(1, 2), /*salt=*/8};
  EXPECT_FALSE(cache.lookup_verdict(other_salt, rfp, failed, no_links, &out));
  // Same for a different problem fingerprint and a different failed set.
  const EngineSharedCache::Binding other_problem{fp(1, 3), /*salt=*/7};
  EXPECT_FALSE(cache.lookup_verdict(other_problem, rfp, failed, no_links, &out));
  EXPECT_FALSE(cache.lookup_verdict(binding, rfp, {3}, no_links, &out));
  // Mixed-frontier keys: the same switch set with a failed link is a
  // DIFFERENT NBF input and must never alias the switch-only entry.
  EXPECT_FALSE(cache.lookup_verdict(binding, rfp, failed, {EdgeKey{1, 2}}, &out));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.verdict_hits, 1u);
  EXPECT_EQ(stats.verdict_misses, 5u);
  EXPECT_GE(stats.entries, 1u);
}

TEST(EngineSharedCache, OutcomeRoundTrip) {
  EngineSharedCache cache;
  const EngineSharedCache::Binding binding{fp(5, 6), 0};
  const GraphFp topo = graph_fp(1, 2, 9);
  const std::vector<signed char> plan = {1, 0, -1, 1};

  AnalysisOutcome out;
  EXPECT_FALSE(cache.lookup_outcome(binding, topo, plan, &out));

  AnalysisOutcome outcome;
  outcome.reliable = true;
  outcome.nbf_calls = 123;
  outcome.scenarios_pruned = 4;
  outcome.max_order = 2;
  cache.publish_outcome(binding, topo, plan, outcome);

  ASSERT_TRUE(cache.lookup_outcome(binding, topo, plan, &out));
  EXPECT_TRUE(out.reliable);
  EXPECT_EQ(out.nbf_calls, 123);
  EXPECT_EQ(out.scenarios_pruned, 4);
  EXPECT_EQ(out.max_order, 2);

  // A different switch plan on the same topology is a different key.
  EXPECT_FALSE(cache.lookup_outcome(binding, topo, {1, 0, -1, 0}, &out));
}

TEST(EngineSharedCache, EvictsUnderTinyByteBudget) {
  EngineSharedCache::Config config;
  config.shards = 1;
  config.verdict_bytes_per_shard = 1 << 10;  // a handful of entries at most
  config.outcome_bytes_per_shard = 1 << 10;
  EngineSharedCache cache(config);

  const EngineSharedCache::Binding binding{fp(1, 1), 0};
  NbfVerdict verdict;
  verdict.ok = true;
  for (std::uint64_t i = 0; i < 200; ++i) {
    cache.publish_verdict(binding, graph_fp(i, i, 1), {static_cast<NodeId>(i)}, {}, verdict);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.verdict_evictions, 0u);
  EXPECT_LE(stats.bytes, config.verdict_bytes_per_shard + config.outcome_bytes_per_shard);
  // The most recent publishes survive; ancient ones were evicted.
  NbfVerdict out;
  EXPECT_TRUE(cache.lookup_verdict(binding, graph_fp(199, 199, 1), {199}, {}, &out));
  EXPECT_FALSE(cache.lookup_verdict(binding, graph_fp(0, 0, 1), {0}, {}, &out));
}

TEST(EngineSharedCache, ClearEmptiesEveryShard) {
  EngineSharedCache cache;
  const EngineSharedCache::Binding binding{fp(2, 2), 0};
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.publish_verdict(binding, graph_fp(i, i, 1), {1}, {}, NbfVerdict{});
  }
  EXPECT_GT(cache.stats().entries, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// Many sessions hammering overlapping keys concurrently: publishes race
// benignly (identical pure-function results), lookups must either miss or
// return a fully formed verdict. TSan-clean is the point of this test.
TEST(EngineSharedCacheStress, ConcurrentPublishLookupIsRaceFree) {
  EngineSharedCache::Config config;
  config.shards = 2;
  config.verdict_bytes_per_shard = 64 << 10;  // force eviction churn too
  config.outcome_bytes_per_shard = 64 << 10;
  EngineSharedCache cache(config);

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &hits, t] {
      const EngineSharedCache::Binding binding{fp(7, 7), 0};
      for (int i = 0; i < kIters; ++i) {
        // 64 overlapping keys shared by all threads.
        const std::uint64_t k = static_cast<std::uint64_t>((i * 13 + t * 5) % 64);
        const GraphFp rfp = graph_fp(k, k ^ 0xabcddcba, 3);
        const std::vector<NodeId> failed = {static_cast<NodeId>(k % 7)};
        const std::vector<EdgeKey> no_links;
        NbfVerdict verdict;
        verdict.ok = (k % 2) == 0;
        if (k % 2 == 0) verdict.errors = {{1, 2}};
        NbfVerdict out;
        if (cache.lookup_verdict(binding, rfp, failed, no_links, &out)) {
          // A hit is an exact replay of the (deterministic) published value.
          ASSERT_EQ(out.ok, verdict.ok);
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.publish_verdict(binding, rfp, failed, no_links, verdict);
        }
        AnalysisOutcome outcome;
        outcome.reliable = verdict.ok;
        outcome.nbf_calls = static_cast<std::int64_t>(k);
        AnalysisOutcome outcome_out;
        const std::vector<signed char> plan = {static_cast<signed char>(k % 3)};
        if (cache.lookup_outcome(binding, rfp, plan, &outcome_out)) {
          ASSERT_EQ(outcome_out.nbf_calls, outcome.nbf_calls);
        } else {
          cache.publish_outcome(binding, rfp, plan, outcome);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(hits.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.verdict_hits + stats.verdict_misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- AdjacencyStageCache ----------------------------------------------------

std::vector<Matrix> make_blocks(double seed, int count = 2, int dim = 4) {
  std::vector<Matrix> blocks;
  for (int b = 0; b < count; ++b) {
    Matrix block(dim, dim);
    for (int r = 0; r < dim; ++r) {
      for (int c = 0; c < dim; ++c) {
        block.at(r, c) = seed + b * 100.0 + r * 10.0 + c;
      }
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

TEST(AdjacencyStageCache, IdenticalBlocksHitAndShareTheStagedForm) {
  AdjacencyStageCache cache;
  const auto first = cache.stage(make_blocks(1.0));
  const auto second = cache.stage(make_blocks(1.0));
  ASSERT_NE(first, nullptr);
  // A verified hit hands back the SAME staged object.
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.collisions, 0u);
}

TEST(AdjacencyStageCache, DifferentContentMisses) {
  AdjacencyStageCache cache;
  const auto first = cache.stage(make_blocks(1.0));
  const auto second = cache.stage(make_blocks(2.0));
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(AdjacencyStageCache, EvictionKeepsHandedOutFormsAlive) {
  // A budget small enough that a few staged forms evict each other.
  AdjacencyStageCache cache(/*max_bytes=*/2048);
  const auto keeper = cache.stage(make_blocks(0.0));
  for (int i = 1; i < 32; ++i) cache.stage(make_blocks(static_cast<double>(i)));
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 2048u);
  // The evicted-but-retained staged form is still fully usable.
  ASSERT_NE(keeper, nullptr);
  EXPECT_GT(keeper->blocks().size(), 0u);
}

TEST(AdjacencyStageCacheStress, ConcurrentStagingIsRaceFree) {
  AdjacencyStageCache cache;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < 100; ++i) {
        // 8 overlapping contents across all threads.
        const auto staged = cache.stage(make_blocks(static_cast<double>(i % 8)));
        ASSERT_NE(staged, nullptr);
        ASSERT_EQ(staged->blocks().size(), 2u);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads) * 100);
  EXPECT_GT(stats.hits, 0u);
}

// --- PolicyStore ------------------------------------------------------------

ActorCritic::Config tiny_net_config() {
  ActorCritic::Config config;
  config.num_nodes = 3;
  config.feature_dim = 2;
  config.param_dim = 2;
  config.num_actions = 4;
  config.gcn_layers = 1;
  config.embedding_dim = 4;
  config.actor_hidden = {8};
  config.critic_hidden = {8};
  return config;
}

bool same_parameters(const ActorCritic& a, const ActorCritic& b) {
  const auto pa = a.all_parameters();
  const auto pb = b.all_parameters();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const Matrix& ma = pa[i].value();
    const Matrix& mb = pb[i].value();
    if (!ma.same_shape(mb)) return false;
    for (int k = 0; k < ma.size(); ++k) {
      if (ma.data()[k] != mb.data()[k]) return false;
    }
  }
  return true;
}

TEST(PolicyStore, WarmStartCopiesBestSameSignatureWeights) {
  PolicyStore store;
  Rng rng_a(1), rng_b(2);
  ActorCritic teacher(tiny_net_config(), rng_a);
  ActorCritic student(tiny_net_config(), rng_b);
  ASSERT_FALSE(same_parameters(teacher, student));

  EXPECT_FALSE(store.warm_start(student));  // empty store: miss
  store.publish(teacher, /*cost=*/10.0);
  EXPECT_TRUE(store.warm_start(student));
  EXPECT_TRUE(same_parameters(teacher, student));
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  // Two misses: the empty-store warm_start, and publish's resident check.
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.published, 1u);
}

TEST(PolicyStore, BestCostWins) {
  PolicyStore store;
  Rng rng_a(1), rng_b(2), rng_c(3);
  ActorCritic good(tiny_net_config(), rng_a);
  ActorCritic worse(tiny_net_config(), rng_b);
  ActorCritic better(tiny_net_config(), rng_c);

  store.publish(good, 10.0);
  store.publish(worse, 12.0);  // beaten by the resident entry
  EXPECT_EQ(store.stats().declined, 1u);

  ActorCritic probe(tiny_net_config(), rng_b);
  ASSERT_TRUE(store.warm_start(probe));
  EXPECT_TRUE(same_parameters(probe, good));

  store.publish(better, 8.0);  // strictly better: replaces
  EXPECT_EQ(store.stats().published, 2u);
  ASSERT_TRUE(store.warm_start(probe));
  EXPECT_TRUE(same_parameters(probe, better));
}

TEST(PolicyStore, SignatureSeparatesArchitectures) {
  PolicyStore store;
  Rng rng_a(1), rng_b(2);
  ActorCritic teacher(tiny_net_config(), rng_a);
  store.publish(teacher, 1.0);

  // Same everything except one hidden width: different signature, no hit.
  ActorCritic::Config other = tiny_net_config();
  other.actor_hidden = {16};
  ActorCritic student(other, rng_b);
  EXPECT_NE(PolicyStore::signature(tiny_net_config()), PolicyStore::signature(other));
  EXPECT_FALSE(store.warm_start(student));
}

TEST(PolicyStoreStress, ConcurrentPublishAndWarmStart) {
  PolicyStore store;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      ActorCritic net(tiny_net_config(), rng);
      for (int i = 0; i < 50; ++i) {
        store.publish(net, /*cost=*/static_cast<double>(100 - i + t));
        store.warm_start(net);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Exactly one architecture signature: one resident entry, best cost kept.
  EXPECT_EQ(store.stats().entries, 1u);
  EXPECT_GT(store.stats().hits, 0u);
}

}  // namespace
}  // namespace nptsn
