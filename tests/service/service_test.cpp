// End-to-end tests for the planner service: sessions complete with correct
// statuses, faults stay isolated to their own session, the shared cache layer
// is bit-identity-preserving (the differential test the cache contract
// demands), and a cancelling shutdown resolves every admitted request.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "net/problem.hpp"
#include "service/service.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;

NptsnConfig small_session() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 2;
  c.steps_per_epoch = 32;
  c.train_actor_iters = 3;
  c.train_critic_iters = 3;
  c.seed = 21;
  return c;
}

ServiceConfig small_service() {
  ServiceConfig config;
  config.session = small_session();
  return config;
}

PlanningRequest tiny_request(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.problem_bytes = problem_bytes(tiny_problem());
  return request;
}

TEST(PlannerService, RunsASessionEndToEnd) {
  PlannerService service(small_service());
  auto future = service.submit(tiny_request("a"));
  const PlanningResponse response = future.get();
  EXPECT_EQ(response.id, "a");
  // A tiny training budget may or may not find a verified plan; either way
  // the session must complete, not fault.
  ASSERT_TRUE(response.status == ResponseStatus::kPlanned ||
              response.status == ResponseStatus::kInfeasible)
      << to_string(response.status) << ": " << response.error;
  EXPECT_EQ(response.feasible, response.status == ResponseStatus::kPlanned);
  EXPECT_EQ(response.feasible, !response.topology_bytes.empty());
  EXPECT_EQ(response.epochs_completed, 2);
  EXPECT_GE(response.shard, 0);
  EXPECT_GE(response.plan_seconds, 0.0);
  service.shutdown(PlannerService::Shutdown::kDrain);
  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.planned + counters.infeasible, 1);
  EXPECT_EQ(counters.faulted, 0);
}

TEST(PlannerService, ValidatesRequestsAtTheDoor) {
  PlannerService service(small_service());
  PlanningRequest no_id = tiny_request("");
  EXPECT_THROW((void)service.submit(std::move(no_id)), ValidationError);
  PlanningRequest no_bytes;
  no_bytes.id = "b";
  EXPECT_THROW((void)service.submit(std::move(no_bytes)), ValidationError);
  service.shutdown(PlannerService::Shutdown::kDrain);
  EXPECT_THROW((void)service.submit(tiny_request("late")), std::runtime_error);
  EXPECT_EQ(service.counters().submitted, 0);
}

TEST(PlannerService, FaultsStayInsideTheirSession) {
  PlannerService service(small_service());

  PlanningRequest garbage;
  garbage.id = "garbage";
  garbage.problem_bytes = {0xde, 0xad, 0xbe, 0xef};
  auto bad = service.submit(std::move(garbage));
  auto good = service.submit(tiny_request("good"));

  const PlanningResponse bad_response = bad.get();
  EXPECT_EQ(bad_response.status, ResponseStatus::kFaulted);
  EXPECT_FALSE(bad_response.error.empty());

  // The fault was absorbed at the worker boundary: the next session on the
  // same worker completes normally.
  const PlanningResponse good_response = good.get();
  EXPECT_TRUE(good_response.status == ResponseStatus::kPlanned ||
              good_response.status == ResponseStatus::kInfeasible);

  service.shutdown(PlannerService::Shutdown::kDrain);
  const auto counters = service.counters();
  EXPECT_EQ(counters.faulted, 1);
  EXPECT_EQ(counters.submitted, 2);
}

// The cache layer's core contract, tested differentially: an identical
// request stream through a shared-cache service and a cache-free service
// produces bit-identical per-session results. Repeats of one problem make
// the second session a pure cache consumer in the shared run.
TEST(PlannerService, SharedCachesPreserveBitIdenticalResults) {
  const auto run = [](bool shared) {
    ServiceConfig config = small_service();
    config.shared_caches = shared;
    PlannerService service(config);
    std::vector<std::future<PlanningResponse>> futures;
    for (int rep = 0; rep < 3; ++rep) {
      futures.push_back(service.submit(tiny_request("r" + std::to_string(rep))));
    }
    std::vector<PlanningResponse> responses;
    for (auto& future : futures) responses.push_back(future.get());
    service.shutdown(PlannerService::Shutdown::kDrain);
    return responses;
  };

  const std::vector<PlanningResponse> off = run(false);
  const std::vector<PlanningResponse> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  std::int64_t shared_hits = 0;
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].status, on[i].status) << off[i].id;
    EXPECT_EQ(off[i].feasible, on[i].feasible) << off[i].id;
    EXPECT_EQ(off[i].best_cost, on[i].best_cost) << off[i].id;
    EXPECT_EQ(off[i].topology_bytes, on[i].topology_bytes) << off[i].id;
    EXPECT_EQ(off[i].certificate_bytes, on[i].certificate_bytes) << off[i].id;
    EXPECT_EQ(off[i].epochs_completed, on[i].epochs_completed) << off[i].id;
    EXPECT_EQ(off[i].verify_shared_hits, 0) << "cache-off session saw shared hits";
    shared_hits += on[i].verify_shared_hits;
  }
  // The shared run actually shared: repeat sessions served verification from
  // the cross-problem cache.
  EXPECT_GT(shared_hits, 0);
}

TEST(PlannerService, RoutesSameProblemToSameShard) {
  ServiceConfig config = small_service();
  config.shards = 3;
  PlannerService service(config);
  auto a = service.submit(tiny_request("a"));
  auto b = service.submit(tiny_request("b"));
  const PlanningResponse ra = a.get();
  const PlanningResponse rb = b.get();
  EXPECT_EQ(ra.shard, rb.shard);  // identical bytes, identical shard
  service.shutdown(PlannerService::Shutdown::kDrain);
}

TEST(PlannerService, CancellingShutdownResolvesEveryAdmittedRequest) {
  ServiceConfig config = small_service();
  config.session.epochs = 4;  // keep the single worker busy for a while
  PlannerService service(config);

  std::vector<std::future<PlanningResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(tiny_request("c" + std::to_string(i))));
  }
  service.shutdown(PlannerService::Shutdown::kCancel);

  int cancelled = 0;
  for (auto& future : futures) {
    const PlanningResponse response = future.get();  // nothing may hang
    if (response.status == ResponseStatus::kCancelled) ++cancelled;
  }
  // With one worker and six queued sessions, a cancelling shutdown must
  // cancel most of the backlog; the untouched part is handed back.
  EXPECT_GT(cancelled, 0);
  const auto backlog = service.unprocessed();
  EXPECT_LE(static_cast<int>(backlog.size()), cancelled);
  for (const PlanningRequest& request : backlog) {
    EXPECT_FALSE(request.id.empty());
    EXPECT_FALSE(request.problem_bytes.empty());
  }
  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 6);
  EXPECT_EQ(counters.cancelled, cancelled);
}

TEST(PlannerService, ShutdownIsIdempotentAndDestructorSafe) {
  PlannerService service(small_service());
  auto future = service.submit(tiny_request("x"));
  service.shutdown(PlannerService::Shutdown::kDrain);
  service.shutdown(PlannerService::Shutdown::kDrain);
  service.shutdown(PlannerService::Shutdown::kCancel);
  EXPECT_NO_THROW((void)future.get());
  // Destructor runs another shutdown on scope exit — must be a no-op.
}

}  // namespace
}  // namespace nptsn
