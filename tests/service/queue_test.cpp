#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace nptsn {
namespace {

TEST(BoundedPriorityQueue, PopsHighestPriorityFirstFifoWithinClass) {
  BoundedPriorityQueue<std::string> queue(8);
  EXPECT_TRUE(queue.push("low-1", 0));
  EXPECT_TRUE(queue.push("high", 5));
  EXPECT_TRUE(queue.push("low-2", 0));
  EXPECT_TRUE(queue.push("mid", 3));
  EXPECT_EQ(queue.pop().value(), "high");
  EXPECT_EQ(queue.pop().value(), "mid");
  EXPECT_EQ(queue.pop().value(), "low-1");  // FIFO among equals
  EXPECT_EQ(queue.pop().value(), "low-2");
}

TEST(BoundedPriorityQueue, NegativePrioritiesSortBelowDefault) {
  BoundedPriorityQueue<int> queue(4);
  queue.push(1, -2);
  queue.push(2, 0);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 1);
}

TEST(BoundedPriorityQueue, PushBlocksUntilCapacityFrees) {
  BoundedPriorityQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1, 0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2, 0));  // blocks: queue is full
    pushed.store(true);
  });
  // The producer must be parked, not completed (give it a moment to block).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedPriorityQueue, CloseWakesBlockedProducerWithFalse) {
  BoundedPriorityQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1, 0));
  std::thread producer([&] { EXPECT_FALSE(queue.push(2, 0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
}

TEST(BoundedPriorityQueue, CloseDrainsThenSignalsEnd) {
  BoundedPriorityQueue<int> queue(4);
  queue.push(1, 0);
  queue.push(2, 0);
  queue.close();
  EXPECT_FALSE(queue.push(3, 0));
  // Consumers drain what was admitted, then see nullopt.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedPriorityQueue, CloseWakesBlockedConsumer) {
  BoundedPriorityQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

TEST(BoundedPriorityQueue, DrainRemainingReturnsBacklogInPopOrder) {
  BoundedPriorityQueue<std::string> queue(8);
  queue.push("b", 0);
  queue.push("a", 9);
  queue.push("c", 0);
  queue.close();
  const std::vector<std::string> rest = queue.drain_remaining();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], "a");
  EXPECT_EQ(rest[1], "b");
  EXPECT_EQ(rest[2], "c");
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.pop().has_value());
}

// MPMC stress: every produced item is consumed exactly once, bounded
// capacity throughout, clean shutdown. Run under TSan in CI.
TEST(BoundedPriorityQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  BoundedPriorityQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i, i % 5));
      }
    });
  }

  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "item consumed twice";
      }
    });
  }

  for (auto& thread : producers) thread.join();
  queue.close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(BoundedPriorityQueue, TryPushShedsOnFullWithoutConsumingItem) {
  BoundedPriorityQueue<std::string> queue(1);
  std::string first = "first";
  ASSERT_EQ(queue.try_push(first, 0), PushResult::kPushed);

  std::string second = "second";
  EXPECT_EQ(queue.try_push(second, 0), PushResult::kFull);
  // A shed item stays with the caller, byte for byte.
  EXPECT_EQ(second, "second");

  // Once a slot frees the same item goes through.
  EXPECT_EQ(queue.pop().value(), "first");
  EXPECT_EQ(queue.try_push(second, 0), PushResult::kPushed);
  EXPECT_EQ(queue.pop().value(), "second");
}

TEST(BoundedPriorityQueue, TryPushReportsClosedWithoutConsumingItem) {
  BoundedPriorityQueue<std::string> queue(4);
  queue.close();
  std::string item = "kept";
  EXPECT_EQ(queue.try_push(item, 0), PushResult::kClosed);
  EXPECT_EQ(item, "kept");
}

TEST(BoundedPriorityQueue, PushForTimesOutOnPersistentlyFullQueue) {
  BoundedPriorityQueue<int> queue(1);
  int first = 1;
  ASSERT_EQ(queue.try_push(first, 0), PushResult::kPushed);
  int second = 2;
  EXPECT_EQ(queue.push_for(second, 0, std::chrono::milliseconds(20)),
            PushResult::kFull);
}

TEST(BoundedPriorityQueue, PushForSucceedsWhenConsumerFreesSlotInTime) {
  BoundedPriorityQueue<int> queue(1);
  int first = 1;
  ASSERT_EQ(queue.try_push(first, 0), PushResult::kPushed);

  std::thread consumer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(queue.pop().value(), 1);
  });
  int second = 2;
  EXPECT_EQ(queue.push_for(second, 0, std::chrono::seconds(30)), PushResult::kPushed);
  consumer.join();
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedPriorityQueue, CloseWakesPushForWaiterWithClosed) {
  BoundedPriorityQueue<int> queue(1);
  int first = 1;
  ASSERT_EQ(queue.try_push(first, 0), PushResult::kPushed);

  std::atomic<bool> waiting{false};
  PushResult result = PushResult::kPushed;
  std::thread producer([&] {
    int second = 2;
    waiting.store(true);
    // Far longer than the test: only close() may end this wait.
    result = queue.push_for(second, 0, std::chrono::seconds(300));
    EXPECT_EQ(second, 2);  // not consumed on kClosed
  });
  while (!waiting.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_EQ(result, PushResult::kClosed);
  // The item admitted before close still drains.
  EXPECT_EQ(queue.pop().value(), 1);
}

}  // namespace
}  // namespace nptsn
