// Unit tests for the write-ahead request journal: framing and scan-back,
// torn-tail and bit-flip tolerance, recovery merge semantics (dedup,
// attempts accounting, replay), and snapshot compaction — including a crash
// between compaction publish and cleanup, which must leave a
// merge-consistent, scannable journal.
#include "service/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/problem.hpp"
#include "service/crash_point.hpp"
#include "testing/fault_injector.hpp"

namespace nptsn {
namespace {

using nptsn::testing::corrupt_file_byte;
using nptsn::testing::truncate_file;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nptsn_journal_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PlanningRequest request_named(const std::string& id, std::size_t payload = 16) {
  PlanningRequest request;
  request.id = id;
  request.label = "label-" + id;
  request.priority = 3;
  request.epochs = 2;
  request.steps_per_epoch = 32;
  request.seed = 7;
  request.max_attempts = 2;
  request.problem_bytes.assign(payload, static_cast<std::uint8_t>(id.back()));
  return request;
}

ProblemFp fp_of(const PlanningRequest& request) {
  return problem_fingerprint128(request.problem_bytes);
}

PlanningResponse done_response(const std::string& id) {
  PlanningResponse response;
  response.id = id;
  response.label = "label-" + id;
  response.status = ResponseStatus::kPlanned;
  response.feasible = true;
  response.best_cost = 12.5;
  response.topology_bytes = {9, 8, 7};
  response.certificate_bytes = {6, 5};
  response.epochs_completed = 2;
  return response;
}

TEST(RequestJournal, AppendedRecordsScanBackInOrder) {
  const std::string dir = fresh_dir("roundtrip");
  const PlanningRequest request = request_named("a");
  {
    RequestJournal journal({dir});
    journal.append_accepted(request, fp_of(request));
    journal.append_started("a", 1);
    journal.append_retry("a", 1, "nbf fault", 0.25);
    journal.append_started("a", 2);
    journal.append_terminal(done_response("a"), 2);
  }

  const JournalScan scan = scan_journal(dir);
  EXPECT_TRUE(scan.warnings.empty());
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[0].type, JournalRecordType::kAccepted);
  EXPECT_EQ(scan.records[0].request.label, "label-a");
  EXPECT_EQ(scan.records[0].request.priority, 3);
  EXPECT_EQ(scan.records[0].request.max_attempts, 2);
  EXPECT_EQ(scan.records[0].request.problem_bytes, request.problem_bytes);
  EXPECT_EQ(scan.records[0].fp, fp_of(request));
  EXPECT_EQ(scan.records[1].type, JournalRecordType::kStarted);
  EXPECT_EQ(scan.records[1].attempt, 1);
  EXPECT_EQ(scan.records[2].type, JournalRecordType::kRetry);
  EXPECT_EQ(scan.records[2].error, "nbf fault");
  EXPECT_DOUBLE_EQ(scan.records[2].backoff_seconds, 0.25);
  EXPECT_EQ(scan.records[3].attempt, 2);
  EXPECT_EQ(scan.records[4].type, JournalRecordType::kDone);
  EXPECT_EQ(scan.records[4].response.topology_bytes, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(scan.records[4].digest, response_digest(scan.records[4].response));
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, MissingDirectoryScansEmptyAndIsCreatedOnOpen) {
  const std::string dir = fresh_dir("fresh");
  EXPECT_TRUE(scan_journal(dir).records.empty());
  RequestJournal journal({dir});
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_TRUE(journal.take_recovered().empty());
  EXPECT_TRUE(journal.recovery_warnings().empty());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, RecoveryMergesLiveAndTerminalStatePerRequest) {
  const std::string dir = fresh_dir("merge");
  const PlanningRequest live = request_named("live");
  const PlanningRequest finished = request_named("done");
  {
    RequestJournal journal({dir});
    journal.append_accepted(live, fp_of(live));
    journal.append_started("live", 1);
    journal.append_retry("live", 1, "fault", 0.1);
    journal.append_accepted(finished, fp_of(finished));
    journal.append_started("done", 1);
    journal.append_terminal(done_response("done"), 1);
  }

  RequestJournal reopened({dir});
  auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 2u);
  // map order: "done" < "live"
  EXPECT_EQ(recovered[0].request.id, "done");
  ASSERT_TRUE(recovered[0].replay.has_value());
  EXPECT_EQ(recovered[0].replay->status, ResponseStatus::kPlanned);
  EXPECT_DOUBLE_EQ(recovered[0].replay->best_cost, 12.5);
  EXPECT_EQ(recovered[1].request.id, "live");
  EXPECT_FALSE(recovered[1].replay.has_value());
  EXPECT_TRUE(recovered[1].started);
  // One observed kRetry = one consumed attempt; the crash itself costs none.
  EXPECT_EQ(recovered[1].attempts_used, 1);
  EXPECT_EQ(recovered[1].request.problem_bytes, live.problem_bytes);
  // Second take is empty (the service consumed them).
  EXPECT_TRUE(reopened.take_recovered().empty());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, TornTailIsDroppedWithWarningNeverARefusal) {
  const std::string dir = fresh_dir("torn");
  const PlanningRequest a = request_named("a");
  const PlanningRequest b = request_named("b", 64);
  {
    RequestJournal journal({dir});
    journal.append_accepted(a, fp_of(a));
    journal.append_terminal(done_response("a"), 1);
    journal.append_accepted(b, fp_of(b));
  }
  // Tear the last record: keep all but its final 10 bytes (a crash mid-append).
  const JournalScan before = scan_journal(dir);
  ASSERT_EQ(before.segments.size(), 1u);
  const auto size = std::filesystem::file_size(before.segments[0]);
  truncate_file(before.segments[0], static_cast<std::size_t>(size) - 10);

  RequestJournal reopened({dir});
  EXPECT_FALSE(reopened.recovery_warnings().empty());
  auto recovered = reopened.take_recovered();
  // "a" survives whole (terminal, replayable); torn "b" is gone — lost before
  // its accept record was durable, i.e. before the caller was acknowledged.
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "a");
  EXPECT_TRUE(recovered[0].replay.has_value());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, BitFlippedRecordDropsRestOfSegmentWithWarning) {
  const std::string dir = fresh_dir("bitflip");
  const PlanningRequest a = request_named("a");
  {
    RequestJournal journal({dir});
    journal.append_accepted(a, fp_of(a));
    journal.append_started("a", 1);
  }
  const JournalScan before = scan_journal(dir);
  ASSERT_EQ(before.records.size(), 2u);
  corrupt_file_byte(before.segments[0], 20);  // inside the first record's payload

  const JournalScan after = scan_journal(dir);
  EXPECT_TRUE(after.records.empty());
  ASSERT_FALSE(after.warnings.empty());
  EXPECT_NE(after.warnings[0].find("checksum"), std::string::npos);
  // The journal still opens (warn-and-continue, not refuse-to-start).
  RequestJournal reopened({dir});
  EXPECT_TRUE(reopened.take_recovered().empty());
  EXPECT_FALSE(reopened.recovery_warnings().empty());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, OverloadedShedIsNeverResurrected) {
  const std::string dir = fresh_dir("overload");
  const PlanningRequest shed = request_named("shed");
  {
    RequestJournal journal({dir});
    journal.append_accepted(shed, fp_of(shed));
    PlanningResponse response;
    response.id = "shed";
    response.status = ResponseStatus::kOverloaded;
    journal.append_terminal(response, 0);
  }
  RequestJournal reopened({dir});
  EXPECT_TRUE(reopened.take_recovered().empty());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, CompactionDropsDeliveredHistoryAndKeepsLiveState) {
  const std::string dir = fresh_dir("compact");
  RequestJournal::Config config{dir};
  config.compact_min_delivered = 2;
  const PlanningRequest live = request_named("live");
  {
    RequestJournal journal(config);
    for (int i = 0; i < 2; ++i) {
      const std::string id = "done-" + std::to_string(i);
      PlanningRequest request = request_named(id);
      journal.append_accepted(request, fp_of(request));
      journal.append_terminal(done_response(id), 1);
    }
    journal.append_accepted(live, fp_of(live));
    journal.append_retry("live", 1, "fault", 0.1);
    // Delivering the second terminal crosses the threshold and compacts.
    journal.acknowledge_delivered("done-0");
    journal.acknowledge_delivered("done-1");
    EXPECT_GE(journal.stats().compactions, 1);
  }

  RequestJournal reopened(config);
  auto recovered = reopened.take_recovered();
  // Delivered terminals are gone; the live request survived compaction with
  // its payload and attempts intact.
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "live");
  EXPECT_EQ(recovered[0].attempts_used, 1);
  EXPECT_EQ(recovered[0].request.problem_bytes, live.problem_bytes);
  EXPECT_EQ(recovered[0].request.max_attempts, 2);
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, CrashBetweenCompactPublishAndCleanupMergesConsistently) {
  const std::string dir = fresh_dir("compact_crash");
  RequestJournal::Config config{dir};
  config.compact_min_delivered = 1;
  const PlanningRequest live = request_named("live");

  struct CompactCrash {};
  set_crash_point_hook([](const char*) { throw CompactCrash{}; });
  arm_crash_point("journal.compact.after_publish");
  {
    RequestJournal journal(config);
    PlanningRequest request = request_named("done");
    journal.append_accepted(request, fp_of(request));
    journal.append_terminal(done_response("done"), 1);
    journal.append_accepted(live, fp_of(live));
    // The snapshot publishes, then the "process dies" before old segments
    // are unlinked: both the snapshot and the history are left on disk.
    EXPECT_THROW(journal.acknowledge_delivered("done"), CompactCrash);
  }
  disarm_crash_points();
  set_crash_point_hook(nullptr);

  // Overlapping segments (history + snapshot) must merge to one consistent
  // state per request: recovery is idempotent, nothing duplicates or vanishes.
  RequestJournal reopened(config);
  auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].request.id, "done");
  EXPECT_TRUE(recovered[0].replay.has_value());
  EXPECT_EQ(recovered[1].request.id, "live");
  EXPECT_FALSE(recovered[1].replay.has_value());
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, SegmentsRotateAtTheConfiguredSize) {
  const std::string dir = fresh_dir("rotate");
  RequestJournal::Config config{dir};
  config.segment_bytes = 1024;
  config.compact_min_delivered = 1000;  // keep compaction out of this test
  {
    RequestJournal journal(config);
    for (int i = 0; i < 8; ++i) {
      const PlanningRequest request = request_named("r" + std::to_string(i), 256);
      journal.append_accepted(request, fp_of(request));
    }
    EXPECT_GE(journal.stats().rotations, 1);
    EXPECT_EQ(journal.stats().appends, 8);
    EXPECT_EQ(journal.stats().live, 8);
  }
  EXPECT_GE(scan_journal(dir).segments.size(), 2u);
  RequestJournal reopened(config);
  EXPECT_EQ(reopened.take_recovered().size(), 8u);
  std::filesystem::remove_all(dir);
}

TEST(RequestJournal, ResponseDigestCoversAnswerDefiningBytes) {
  PlanningResponse a = done_response("x");
  PlanningResponse b = a;
  EXPECT_EQ(response_digest(a), response_digest(b));
  b.topology_bytes[0] ^= 1;
  EXPECT_NE(response_digest(a), response_digest(b));
  PlanningResponse c = a;
  c.status = ResponseStatus::kInfeasible;
  EXPECT_NE(response_digest(a), response_digest(c));
  // Non-answer metadata (timing) does not perturb the digest.
  PlanningResponse d = a;
  d.plan_seconds = 99.0;
  d.queue_seconds = 42.0;
  EXPECT_EQ(response_digest(a), response_digest(d));
}

}  // namespace
}  // namespace nptsn
