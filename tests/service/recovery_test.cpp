// Service-level durability tests: retry with deterministic backoff,
// backpressure shedding, and restart recovery over a real journal —
// finished requests replay their persisted answer, unfinished ones
// re-execute, and a torn journal tail degrades to a warning.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "net/problem.hpp"
#include "service/crash_point.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"
#include "testing/fault_injector.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using nptsn::testing::tiny_problem;
using nptsn::testing::truncate_file;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nptsn_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

NptsnConfig small_session() {
  NptsnConfig c;
  c.path_actions = 4;
  c.gcn_layers = 1;
  c.mlp_hidden = {16};
  c.embedding_dim = 8;
  c.epochs = 2;
  c.steps_per_epoch = 32;
  c.train_actor_iters = 3;
  c.train_critic_iters = 3;
  c.seed = 21;
  return c;
}

ServiceConfig small_service(const std::string& journal_dir) {
  ServiceConfig config;
  config.session = small_session();
  config.journal_dir = journal_dir;
  // Keep retry spacing far below session runtime so tests stay fast.
  config.retry_base_seconds = 0.001;
  config.retry_max_seconds = 0.01;
  return config;
}

PlanningRequest tiny_request(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.problem_bytes = problem_bytes(tiny_problem());
  return request;
}

PlanningRequest garbage_request(const std::string& id) {
  PlanningRequest request;
  request.id = id;
  request.problem_bytes = {1, 2, 3};  // faults every attempt, deterministically
  return request;
}

TEST(ServiceRecovery, RetryConsumesMaxAttemptsThenFaults) {
  const std::string dir = fresh_dir("retry");
  ServiceConfig config = small_service(dir);
  PlanningRequest request = garbage_request("doomed");
  request.max_attempts = 3;

  PlannerService service(config);
  const PlanningResponse response = service.submit(std::move(request)).get();
  EXPECT_EQ(response.status, ResponseStatus::kFaulted);
  EXPECT_EQ(response.attempt, 3);  // the answer comes from the LAST attempt
  service.shutdown(PlannerService::Shutdown::kDrain);

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.faulted, 1);
  EXPECT_EQ(counters.retried, 2);  // attempts 2 and 3 were re-scheduled

  // The journal saw the full attempt history and one terminal.
  const JournalScan scan = scan_journal(dir);
  int started = 0, retries = 0, terminals = 0;
  for (const auto& record : scan.records) {
    if (record.type == JournalRecordType::kStarted) ++started;
    if (record.type == JournalRecordType::kRetry) ++retries;
    if (record.type == JournalRecordType::kFaulted) ++terminals;
  }
  EXPECT_EQ(started, 3);
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(terminals, 1);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRecovery, BackoffIsDeterministicAcrossSameSeedRuns) {
  const auto backoffs_of = [](const std::string& dir) {
    ServiceConfig config = small_service(dir);
    config.retry_seed = 1234;
    PlanningRequest request = garbage_request("doomed");
    request.max_attempts = 4;
    PlannerService service(config);
    (void)service.submit(std::move(request)).get();
    service.shutdown(PlannerService::Shutdown::kDrain);
    std::vector<double> backoffs;
    for (const auto& record : scan_journal(dir).records) {
      if (record.type == JournalRecordType::kRetry) backoffs.push_back(record.backoff_seconds);
    }
    return backoffs;
  };

  const std::string dir_a = fresh_dir("backoff_a");
  const std::string dir_b = fresh_dir("backoff_b");
  const std::vector<double> a = backoffs_of(dir_a);
  const std::vector<double> b = backoffs_of(dir_b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);  // same seed, same jitter sequence, bit for bit
  for (const double backoff : a) {
    EXPECT_GT(backoff, 0.0);
    EXPECT_LE(backoff, 0.01 * 1.25);  // retry_max * (1 + jitter)
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(ServiceRecovery, TrySubmitShedsWithOverloadedAndIsNeverResurrected) {
  const std::string dir = fresh_dir("overload");
  ServiceConfig config = small_service(dir);
  config.shards = 1;
  config.workers_per_shard = 1;
  config.queue_capacity = 1;

  // Park the single worker at the start of its first session so the queue
  // stays provably full while we shed.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  set_crash_point_hook([&](const char*) {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
  });
  arm_crash_point("service.start.after_journal", 1);

  PlannerService service(config);
  auto running = service.submit(tiny_request("running"));   // worker parks on it
  auto queued = service.submit(tiny_request("queued"));     // fills the only slot
  // Wait until the worker is actually parked (the queue slot is free again
  // once "running" is popped, so "queued" occupying it means we are parked).
  auto shed = service.try_submit(tiny_request("shed"));
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const PlanningResponse shed_response = shed.get();
  EXPECT_EQ(shed_response.status, ResponseStatus::kOverloaded);
  EXPECT_NE(shed_response.error.find("overloaded"), std::string::npos);

  auto timed = service.submit_within(tiny_request("timed"), 0.02);
  EXPECT_EQ(timed.get().status, ResponseStatus::kOverloaded);

  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  (void)running.get();
  (void)queued.get();
  service.shutdown(PlannerService::Shutdown::kDrain);
  disarm_crash_points();
  set_crash_point_hook(nullptr);

  EXPECT_EQ(service.counters().overloaded, 2);

  // A shed request was answered kOverloaded and journaled as such: a restart
  // must not resurrect it (it was never acknowledged as accepted-for-work).
  RequestJournal reopened({dir});
  for (const auto& item : reopened.take_recovered()) {
    EXPECT_NE(item.request.id, "shed");
    EXPECT_NE(item.request.id, "timed");
  }
  std::filesystem::remove_all(dir);
}

TEST(ServiceRecovery, FinishedRequestReplaysAcrossRestartWithoutReExecution) {
  const std::string dir = fresh_dir("replay");
  PlanningResponse first;
  {
    PlannerService service(small_service(dir));
    first = service.submit(tiny_request("job")).get();
    service.shutdown(PlannerService::Shutdown::kDrain);
  }
  ASSERT_TRUE(first.status == ResponseStatus::kPlanned ||
              first.status == ResponseStatus::kInfeasible);

  PlannerService restarted(small_service(dir));
  auto recovered = restarted.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "job");
  EXPECT_TRUE(recovered[0].replayed);
  const PlanningResponse replay = recovered[0].response.get();
  EXPECT_TRUE(replay.replayed);
  EXPECT_EQ(replay.status, first.status);
  EXPECT_EQ(replay.feasible, first.feasible);
  EXPECT_DOUBLE_EQ(replay.best_cost, first.best_cost);
  EXPECT_EQ(replay.topology_bytes, first.topology_bytes);
  EXPECT_EQ(restarted.counters().replayed, 1);
  EXPECT_EQ(restarted.counters().recovered, 0);
  // The answer replays by id even if the caller resubmits: dedup is the
  // caller's job via take_recovered, but nothing re-executed here.
  restarted.shutdown(PlannerService::Shutdown::kDrain);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRecovery, UnfinishedRequestReExecutesWithAttemptsPreserved) {
  const std::string dir = fresh_dir("unfinished");
  {
    // Simulate a process that journaled accept + start + one retry and then
    // died: no terminal record ever made it to disk.
    RequestJournal journal({dir});
    PlanningRequest request = tiny_request("halfway");
    request.max_attempts = 3;
    journal.append_accepted(request, problem_fingerprint128(request.problem_bytes));
    journal.append_started("halfway", 1);
    journal.append_retry("halfway", 1, "simulated fault", 0.001);
  }

  PlannerService service(small_service(dir));
  auto recovered = service.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "halfway");
  EXPECT_FALSE(recovered[0].replayed);
  const PlanningResponse response = recovered[0].response.get();
  EXPECT_TRUE(response.status == ResponseStatus::kPlanned ||
              response.status == ResponseStatus::kInfeasible)
      << to_string(response.status) << ": " << response.error;
  // One attempt was consumed before the crash; the recovered run is attempt 2.
  EXPECT_EQ(response.attempt, 2);
  EXPECT_FALSE(response.replayed);
  EXPECT_EQ(service.counters().recovered, 1);
  service.shutdown(PlannerService::Shutdown::kDrain);

  // Now the journal holds a terminal: a second restart replays, not re-runs.
  PlannerService again(small_service(dir));
  auto replayed = again.take_recovered();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(replayed[0].replayed);
  EXPECT_EQ(replayed[0].response.get().status, response.status);
  again.shutdown(PlannerService::Shutdown::kDrain);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRecovery, CancelledWorkIsRecoveredNotLost) {
  const std::string dir = fresh_dir("cancel");
  ResponseStatus first_status;
  {
    PlannerService service(small_service(dir));
    auto future = service.submit(tiny_request("interrupted"));
    service.shutdown(PlannerService::Shutdown::kCancel);
    first_status = future.get().status;
  }

  // Whatever the race resolved to, nothing is lost: a cancelled session is
  // never journaled terminal, so it recovers live; a session that beat the
  // cancel to its terminal record replays.
  PlannerService restarted(small_service(dir));
  auto recovered = restarted.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].request.id, "interrupted");
  if (first_status == ResponseStatus::kCancelled) {
    EXPECT_FALSE(recovered[0].replayed);
    const PlanningResponse rerun = recovered[0].response.get();
    EXPECT_TRUE(rerun.status == ResponseStatus::kPlanned ||
                rerun.status == ResponseStatus::kInfeasible)
        << to_string(rerun.status) << ": " << rerun.error;
  } else {
    EXPECT_TRUE(recovered[0].replayed);
  }
  restarted.shutdown(PlannerService::Shutdown::kDrain);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRecovery, TornJournalTailWarnsButServiceStarts) {
  const std::string dir = fresh_dir("torn");
  {
    RequestJournal journal({dir});
    PlanningRequest request = tiny_request("whole");
    journal.append_accepted(request, problem_fingerprint128(request.problem_bytes));
  }
  const JournalScan scan = scan_journal(dir);
  ASSERT_EQ(scan.segments.size(), 1u);
  const auto size = std::filesystem::file_size(scan.segments[0]);
  truncate_file(scan.segments[0], static_cast<std::size_t>(size) - 7);

  PlannerService service(small_service(dir));
  EXPECT_FALSE(service.recovery_warnings().empty());
  // The torn accept never became durable, so its request is (correctly) gone;
  // the service itself is healthy and admits new work.
  EXPECT_TRUE(service.take_recovered().empty());
  const PlanningResponse response = service.submit(tiny_request("fresh")).get();
  EXPECT_TRUE(response.status == ResponseStatus::kPlanned ||
              response.status == ResponseStatus::kInfeasible);
  service.shutdown(PlannerService::Shutdown::kDrain);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nptsn
