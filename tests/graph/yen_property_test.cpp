// Property test: Yen's algorithm against brute-force enumeration of ALL
// simple paths on random small graphs — the returned list must be exactly
// the k cheapest simple paths (as a length multiset).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/yen.hpp"
#include "util/rng.hpp"

namespace nptsn {
namespace {

void all_simple_paths(const Graph& g, NodeId current, NodeId target,
                      std::vector<char>& visited, Path& prefix,
                      std::vector<Path>& out) {
  if (current == target) {
    out.push_back(prefix);
    return;
  }
  for (const auto& [next, len] : g.neighbors(current)) {
    (void)len;
    if (visited[static_cast<std::size_t>(next)]) continue;
    visited[static_cast<std::size_t>(next)] = 1;
    prefix.push_back(next);
    all_simple_paths(g, next, target, visited, prefix, out);
    prefix.pop_back();
    visited[static_cast<std::size_t>(next)] = 0;
  }
}

std::vector<Path> brute_force_paths(const Graph& g, NodeId s, NodeId t) {
  std::vector<Path> out;
  if (!g.is_active(s) || !g.is_active(t)) return out;
  std::vector<char> visited(static_cast<std::size_t>(g.num_nodes()), 0);
  visited[static_cast<std::size_t>(s)] = 1;
  Path prefix = {s};
  all_simple_paths(g, s, t, visited, prefix, out);
  return out;
}

class YenVersusBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YenVersusBruteForce, ReturnsTheKCheapestSimplePaths) {
  Rng rng(GetParam());
  const int n = rng.uniform_int(4, 7);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.uniform() < 0.55) g.add_edge(u, v, rng.uniform(0.5, 3.0));
    }
  }
  const NodeId s = 0;
  const NodeId t = n - 1;
  const int k = rng.uniform_int(1, 12);

  auto reference = brute_force_paths(g, s, t);
  std::ranges::sort(reference, [&](const Path& a, const Path& b) {
    return path_length(g, a) < path_length(g, b);
  });
  const auto yen = k_shortest_paths(g, s, t, k);

  // Count: min(k, total simple paths).
  ASSERT_EQ(yen.size(), std::min<std::size_t>(static_cast<std::size_t>(k), reference.size()))
      << "seed " << GetParam();
  // Lengths must match the brute-force top-k exactly (paths themselves may
  // tie-break differently at equal length).
  for (std::size_t i = 0; i < yen.size(); ++i) {
    EXPECT_NEAR(path_length(g, yen[i]), path_length(g, reference[i]), 1e-9)
        << "seed " << GetParam() << " rank " << i;
  }
  // All returned paths are distinct and simple.
  for (std::size_t i = 0; i < yen.size(); ++i) {
    for (std::size_t j = i + 1; j < yen.size(); ++j) EXPECT_NE(yen[i], yen[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, YenVersusBruteForce,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace nptsn
