#include "graph/paths.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

// 0 - 1 - 2
//  \     /
//   - 3 -      with lengths: 0-1=1, 1-2=1, 0-3=1, 3-2=3
Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 2, 3.0);
  return g;
}

TEST(ShortestPath, FindsCheapestPath) {
  const Graph g = diamond();
  const auto path = shortest_path(g, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 1, 2}));
  EXPECT_DOUBLE_EQ(path_length(g, *path), 2.0);
}

TEST(ShortestPath, WeightBeatsHopCount) {
  Graph g(4);
  g.add_edge(0, 1, 10.0);  // direct but expensive
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 1, 1.0);
  const auto path = shortest_path(g, 0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 2, 3, 1}));
}

TEST(ShortestPath, SourceEqualsTarget) {
  const Graph g = diamond();
  const auto path = shortest_path(g, 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{1}));
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(shortest_path(g, 0, 3).has_value());
}

TEST(ShortestPath, InactiveEndpointReturnsNullopt) {
  Graph g = diamond();
  g.remove_node(2);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(ShortestPath, DeterministicTieBreakTowardLowerIds) {
  // Two equal-cost routes 0-1-3 and 0-2-3; the lower-id route must win on
  // every call (reproducibility requirement).
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  for (int i = 0; i < 5; ++i) {
    const auto path = shortest_path(g, 0, 3);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (Path{0, 1, 3}));
  }
}

TEST(ShortestPath, TransitFilterBlocksRelay) {
  // 0 - 1 - 2 where 1 is non-transit: no path 0 -> 2, but 0 -> 1 stays fine.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  TransitFilter filter = {1, 0, 1};
  EXPECT_FALSE(shortest_path(g, 0, 2, &filter).has_value());
  const auto to_blocked = shortest_path(g, 0, 1, &filter);
  ASSERT_TRUE(to_blocked.has_value());
  EXPECT_EQ(*to_blocked, (Path{0, 1}));
}

TEST(ShortestPath, TransitFilterForcesDetour) {
  // Cheap route through blocked node 1, detour through 3 must be taken.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 5.0);
  g.add_edge(3, 2, 5.0);
  TransitFilter filter = {1, 0, 1, 1};
  const auto path = shortest_path(g, 0, 2, &filter);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 3, 2}));
}

TEST(ShortestPath, TransitFilterSizeChecked) {
  const Graph g = diamond();
  TransitFilter bad = {1, 1};
  EXPECT_THROW(shortest_path(g, 0, 2, &bad), std::invalid_argument);
}

TEST(HopDistance, CountsHopsIgnoringWeights) {
  const Graph g = diamond();
  EXPECT_EQ(hop_distance(g, 0, 0), 0);
  EXPECT_EQ(hop_distance(g, 0, 1), 1);
  EXPECT_EQ(hop_distance(g, 0, 2), 2);  // via 1 or 3, both 2 hops
  EXPECT_EQ(hop_distance(g, 1, 3), 2);
}

TEST(HopDistance, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(hop_distance(g, 0, 2), -1);
}

TEST(Connected, MatchesReachability) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(connected(g, 0, 1));
  EXPECT_FALSE(connected(g, 0, 2));
  EXPECT_TRUE(connected(g, 3, 2));
}

TEST(PathLength, SumsEdgeLengths) {
  const Graph g = diamond();
  EXPECT_DOUBLE_EQ(path_length(g, {0, 3, 2}), 4.0);
  EXPECT_DOUBLE_EQ(path_length(g, {0}), 0.0);
}

TEST(PathLength, MissingEdgeThrows) {
  const Graph g = diamond();
  EXPECT_THROW(path_length(g, {0, 2}), std::invalid_argument);
}

TEST(DisjointPaths, FindsTwoNodeDisjointRoutes) {
  const Graph g = diamond();
  const auto paths = disjoint_paths(g, 0, 2, 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (Path{0, 1, 2}));
  EXPECT_EQ(paths[1], (Path{0, 3, 2}));
}

TEST(DisjointPaths, StopsWhenExhausted) {
  const Graph g = diamond();
  const auto paths = disjoint_paths(g, 0, 2, 5);
  EXPECT_EQ(paths.size(), 2u);  // only two disjoint routes exist
}

TEST(DisjointPaths, DirectEdgeCountsAsOnePath) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  const auto paths = disjoint_paths(g, 0, 1, 3);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (Path{0, 1}));
  EXPECT_EQ(paths[1], (Path{0, 2, 1}));
}

TEST(DisjointPaths, RespectsTransitFilter) {
  const Graph g = diamond();
  TransitFilter filter = {1, 0, 1, 1};  // node 1 cannot relay
  const auto paths = disjoint_paths(g, 0, 2, 2, &filter);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Path{0, 3, 2}));
}

}  // namespace
}  // namespace nptsn
