#include "graph/yen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace nptsn {
namespace {

Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 2, 3.0);
  return g;
}

TEST(Yen, FirstPathIsTheShortest) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 2, 3);
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0], *shortest_path(g, 0, 2));
}

TEST(Yen, ReturnsPathsInNondecreasingLengthOrder) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 2, 5);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(path_length(g, paths[i - 1]), path_length(g, paths[i]));
  }
}

TEST(Yen, DiamondHasExactlyTwoSimplePaths) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 2, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (Path{0, 1, 2}));
  EXPECT_EQ(paths[1], (Path{0, 3, 2}));
}

TEST(Yen, ClassicTextbookExample) {
  // Yen's original example shape: grid-ish graph with known top-3.
  Graph g(6);
  g.add_edge(0, 1, 3.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(2, 4, 3.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(3, 5, 1.0);
  g.add_edge(4, 5, 2.0);
  const auto paths = k_shortest_paths(g, 0, 5, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (Path{0, 2, 3, 5}));  // length 5
  EXPECT_DOUBLE_EQ(path_length(g, paths[0]), 5.0);
  EXPECT_DOUBLE_EQ(path_length(g, paths[1]), 7.0);
  EXPECT_DOUBLE_EQ(path_length(g, paths[2]), 7.0);
}

TEST(Yen, PathsAreLooplessAndUnique) {
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) g.add_edge(u, v, 1.0 + u + v);
  }
  const auto paths = k_shortest_paths(g, 0, 5, 20);
  std::set<Path> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
  for (const auto& p : paths) {
    std::set<NodeId> nodes(p.begin(), p.end());
    EXPECT_EQ(nodes.size(), p.size()) << "path has a loop";
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 5);
  }
}

TEST(Yen, KZeroReturnsEmpty) {
  const Graph g = diamond();
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, 0).empty());
}

TEST(Yen, UnreachableReturnsEmpty) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 4).empty());
}

TEST(Yen, RespectsTransitFilter) {
  const Graph g = diamond();
  TransitFilter filter = {1, 0, 1, 1};  // node 1 cannot relay
  const auto paths = k_shortest_paths(g, 0, 2, 5, &filter);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Path{0, 3, 2}));
}

TEST(Yen, CompleteGraphPathCountMatchesTheory) {
  // K5: number of simple 0->4 paths = sum over k of P(3, k) = 1+3+6+6 = 16.
  Graph g(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v, 1.0);
  }
  const auto paths = k_shortest_paths(g, 0, 4, 100);
  EXPECT_EQ(paths.size(), 16u);
}

TEST(Yen, RandomGraphsOrderedAndDeterministic) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g(8);
    for (NodeId u = 0; u < 8; ++u) {
      for (NodeId v = u + 1; v < 8; ++v) {
        if (rng.uniform() < 0.5) g.add_edge(u, v, rng.uniform(0.5, 4.0));
      }
    }
    const auto a = k_shortest_paths(g, 0, 7, 8);
    const auto b = k_shortest_paths(g, 0, 7, 8);
    EXPECT_EQ(a, b);  // deterministic
    for (std::size_t i = 1; i < a.size(); ++i) {
      EXPECT_LE(path_length(g, a[i - 1]), path_length(g, a[i]) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace nptsn
