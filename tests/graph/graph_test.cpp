#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace nptsn {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.is_active(v));
    EXPECT_EQ(g.degree(v), 0);
  }
}

TEST(Graph, AddEdgeIsSymmetric) {
  Graph g(3);
  g.add_edge(0, 2, 4.5);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_DOUBLE_EQ(g.length(0, 2), 4.5);
  EXPECT_DOUBLE_EQ(g.length(2, 0), 4.5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, AddEdgeIdempotentKeepsOriginalLength) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 0, 9.0);  // ignored
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.length(0, 1), 2.0);
}

TEST(Graph, RejectsSelfLoopsAndBadLengths) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeNodes) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.degree(-1), std::invalid_argument);
  EXPECT_THROW(g.has_edge(0, 5), std::invalid_argument);
}

TEST(Graph, LengthOfMissingEdgeThrows) {
  Graph g(3);
  EXPECT_THROW(g.length(0, 1), std::invalid_argument);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_edge(1, 0);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0);
  g.remove_edge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, RemoveNodeDetachesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.remove_node(1);
  EXPECT_FALSE(g.is_active(1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 0);
  g.remove_node(1);  // idempotent
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, CannotConnectInactiveNode) {
  Graph g(3);
  g.remove_node(2);
  EXPECT_THROW(g.add_edge(0, 2), std::invalid_argument);
}

TEST(Graph, NeighborsAreOrdered) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  std::vector<NodeId> order;
  for (const auto& [v, len] : g.neighbors(2)) {
    (void)len;
    order.push_back(v);
  }
  EXPECT_EQ(order, (std::vector<NodeId>{0, 3, 4}));
}

TEST(Graph, EdgesListedOnceLexicographically) {
  Graph g(4);
  g.add_edge(3, 1, 2.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 3.0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].v, 1);
  EXPECT_EQ(edges[1].u, 0);
  EXPECT_EQ(edges[1].v, 2);
  EXPECT_EQ(edges[2].u, 1);
  EXPECT_EQ(edges[2].v, 3);
  EXPECT_DOUBLE_EQ(edges[2].length, 2.0);
}

TEST(Graph, CopyIsIndependent) {
  Graph g(3);
  g.add_edge(0, 1);
  Graph copy = g;
  copy.remove_edge(0, 1);
  copy.remove_node(2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.is_active(2));
}

TEST(EdgeKey, NormalizesOrderAndCompares) {
  EXPECT_EQ(EdgeKey(3, 1), EdgeKey(1, 3));
  EXPECT_LT(EdgeKey(0, 2), EdgeKey(1, 2));
  EXPECT_LT(EdgeKey(1, 2), EdgeKey(1, 3));
}

TEST(Graph, ZeroNodeGraphAllowed) {
  Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_TRUE(g.edges().empty());
}

}  // namespace
}  // namespace nptsn
