#include "baselines/original.hpp"

#include <gtest/gtest.h>

#include "scenarios/orion.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

TEST(OriginalBaseline, BuildsUniformTopology) {
  const auto p = tiny_problem(2);
  const std::vector<Edge> links = {{0, 4, 1.0}, {1, 4, 1.0}, {4, 5, 1.0}};
  const auto t = build_uniform_topology(p, links, Asil::C);
  EXPECT_TRUE(t.has_switch(4));
  EXPECT_TRUE(t.has_switch(5));
  EXPECT_EQ(t.switch_asil(4), Asil::C);
  EXPECT_EQ(t.switch_asil(5), Asil::C);
  EXPECT_TRUE(t.has_link(0, 4));
  EXPECT_TRUE(t.has_link(4, 5));
  EXPECT_EQ(t.link_asil(0, 4), Asil::C);
}

TEST(OriginalBaseline, TinyStarValidOnlyAtAsilD) {
  const auto p = tiny_problem(2);
  const std::vector<Edge> star = {{0, 4, 1.0}, {1, 4, 1.0}, {2, 4, 1.0}, {3, 4, 1.0}};
  const HeuristicRecovery nbf;
  EXPECT_FALSE(evaluate_original(p, star, nbf, Asil::A).valid);
  EXPECT_FALSE(evaluate_original(p, star, nbf, Asil::C).valid);
  EXPECT_TRUE(evaluate_original(p, star, nbf, Asil::D).valid);
}

TEST(OriginalBaseline, ValidatesTheProblemBeforeEvaluating) {
  auto p = tiny_problem(2);
  p.flows[0].destination = 4;  // a switch: malformed
  const std::vector<Edge> star = {{0, 4, 1.0}, {1, 4, 1.0}, {2, 4, 1.0}, {3, 4, 1.0}};
  const HeuristicRecovery nbf;
  EXPECT_THROW(evaluate_original(p, star, nbf, Asil::D), std::invalid_argument);
}

TEST(OriginalBaseline, CostReflectsUniformLevel) {
  const auto p = tiny_problem(2);
  const std::vector<Edge> star = {{0, 4, 1.0}, {1, 4, 1.0}, {2, 4, 1.0}, {3, 4, 1.0}};
  const HeuristicRecovery nbf;
  const auto result = evaluate_original(p, star, nbf, Asil::D);
  // 4-port ASIL-D switch (27) + 4 D links (8 each).
  EXPECT_DOUBLE_EQ(result.cost, 27.0 + 4 * 8.0);
}

TEST(OriginalBaseline, OrionAllDIsValidForPaperWorkloads) {
  // The paper's key baseline property: the single-homed ORION topology with
  // all ASIL-D components satisfies the reliability guarantee (single-D
  // failures are safe faults), at substantial cost.
  const auto s = make_orion();
  Rng rng(11);
  const auto p = with_flows(s, random_flows(s.problem, 10, rng));
  const HeuristicRecovery nbf;
  const auto result = evaluate_original(p, s.original_links, nbf, Asil::D);
  EXPECT_TRUE(result.valid);
  // All-D cost lands near the paper's 986 (our reconstructed wiring).
  EXPECT_GT(result.cost, 700.0);
  EXPECT_LT(result.cost, 1200.0);
}

TEST(OriginalBaseline, OrionAllAIsInvalid) {
  // With ASIL-A everywhere, any single switch failure isolates its
  // single-homed stations: the guarantee cannot hold.
  const auto s = make_orion();
  Rng rng(12);
  const auto p = with_flows(s, random_flows(s.problem, 10, rng));
  const HeuristicRecovery nbf;
  const auto result = evaluate_original(p, s.original_links, nbf, Asil::A);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.analysis.counterexample.empty());
}

TEST(OriginalBaseline, RejectsEmptyLinkList) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  EXPECT_THROW(evaluate_original(p, {}, nbf), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
