#include "baselines/trh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "scenarios/ads.hpp"
#include "scenarios/orion.hpp"
#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

TEST(Trh, ProducesTwoDisjointPathsPerFlow) {
  const auto p = tiny_problem(2);
  const auto result = run_trh(p);
  ASSERT_TRUE(result.paths_found);
  ASSERT_EQ(result.plan.size(), 2u);
  for (std::size_t f = 0; f < result.plan.size(); ++f) {
    ASSERT_EQ(result.plan[f].size(), 2u);
    const auto& first = result.plan[f][0];
    const auto& second = result.plan[f][1];
    // Node-disjoint interiors.
    std::set<NodeId> interior(first.begin() + 1, first.end() - 1);
    for (std::size_t i = 1; i + 1 < second.size(); ++i) {
      EXPECT_FALSE(interior.contains(second[i]));
    }
    EXPECT_EQ(first.front(), p.flows[f].source);
    EXPECT_EQ(second.front(), p.flows[f].source);
  }
}

TEST(Trh, AllComponentsAtConfiguredLevel) {
  const auto p = tiny_problem(2);
  const auto result = run_trh(p);
  ASSERT_TRUE(result.topology.has_value());
  for (const NodeId v : result.topology->selected_switches()) {
    EXPECT_EQ(result.topology->switch_asil(v), Asil::B);
  }
  for (const auto& e : result.topology->graph().edges()) {
    EXPECT_EQ(result.topology->link_asil(e.u, e.v), Asil::B);
  }
}

TEST(Trh, ValidImpliesScheduleExists) {
  const auto p = tiny_problem(2);
  const auto result = run_trh(p);
  ASSERT_TRUE(result.valid);
  EXPECT_TRUE(result.schedulable);
  // Cross-check: replaying the plan schedules cleanly.
  EXPECT_TRUE(schedule_frer(p, result.plan).schedulable);
}

TEST(Trh, CostReflectsAsilB) {
  const auto p = tiny_problem(2);
  const auto result = run_trh(p);
  ASSERT_TRUE(result.topology.has_value());
  EXPECT_DOUBLE_EQ(result.cost, result.topology->cost());
  EXPECT_GT(result.cost, 0.0);
}

TEST(Trh, SingleReplicaConfigSupported) {
  const auto p = tiny_problem(2);
  TrhConfig config;
  config.redundant_paths = 1;
  const auto result = run_trh(p, config);
  ASSERT_TRUE(result.paths_found);
  for (const auto& replicas : result.plan) EXPECT_EQ(replicas.size(), 1u);
}

TEST(Trh, ReusesLinksAcrossFlows) {
  // Two flows sharing a source should reuse topology rather than build
  // parallel infrastructures (the reuse weighting).
  auto p = tiny_problem(0);
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  p.flows.push_back({0, 2, 500.0, 64, 500.0});
  const auto result = run_trh(p);
  ASSERT_TRUE(result.paths_found);
  // Station 0 has only 2 ports; four replica paths leave it, so reuse is
  // forced and the degree constraint held.
  EXPECT_LE(result.topology->degree(0), 2);
}

TEST(Trh, FailsWhenDisjointPathsImpossible) {
  // One switch only: no two node-disjoint routes exist.
  PlanningProblem p;
  Graph g(3);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  p.connections = std::move(g);
  p.num_end_stations = 2;
  p.flows.push_back({0, 1, 500.0, 64, 500.0});
  const auto result = run_trh(p);
  EXPECT_FALSE(result.paths_found);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.topology.has_value());
}

TEST(Trh, DegradesWithLoadOnAds) {
  // The paper's Fig. 4(a) mechanism: TRH ignores schedulability during
  // synthesis, so as flows multiply on the small ADS fabric the FRER
  // schedule eventually fails while light loads stay valid.
  const auto s = make_ads();
  const auto light = with_flows(s, ads_flows());
  EXPECT_TRUE(run_trh(light).valid);

  auto heavy = s.problem;
  // 60 identical flows through the same pair overload any fabric.
  for (int i = 0; i < 60; ++i) heavy.flows.push_back({0, 1, 500.0, 64, 500.0});
  const auto result = run_trh(heavy);
  EXPECT_FALSE(result.valid);
}

TEST(Trh, OrionModerateLoadProducesValidPlan) {
  const auto s = make_orion();
  Rng rng(21);
  const auto p = with_flows(s, random_flows(s.problem, 10, rng));
  const auto result = run_trh(p);
  EXPECT_TRUE(result.paths_found);
  if (result.valid) {
    // When valid, TRH's all-B design must cost more than a comparable
    // mostly-A NPTSN solution would; just sanity-check the magnitude.
    EXPECT_GT(result.cost, 50.0);
  }
}

TEST(Trh, ConfigValidated) {
  const auto p = tiny_problem(2);
  TrhConfig config;
  config.redundant_paths = 0;
  EXPECT_THROW(run_trh(p, config), std::invalid_argument);
  config = TrhConfig{};
  config.path_candidates = 0;
  EXPECT_THROW(run_trh(p, config), std::invalid_argument);
}

}  // namespace
}  // namespace nptsn
