#include "baselines/neuroplan.hpp"

#include <gtest/gtest.h>

#include "testing/test_problems.hpp"

namespace nptsn {
namespace {

using testing::tiny_problem;

NptsnConfig small_config() {
  NptsnConfig c;
  c.epochs = 4;
  c.steps_per_epoch = 96;
  c.mlp_hidden = {32, 32};
  c.train_actor_iters = 8;
  c.train_critic_iters = 8;
  c.seed = 5;
  return c;
}

struct EnvFixture {
  PlanningProblem problem = tiny_problem(2);
  HeuristicRecovery nbf;
  NptsnConfig config = small_config();
  SolutionRecorder recorder;
  NeuroPlanEnv env{problem, nbf, config, recorder};
};

TEST(NeuroPlanEnv, StaticActionSpaceSize) {
  EnvFixture f;
  // 15 optional links + 3 switch upgrade actions.
  EXPECT_EQ(f.env.num_actions(), 15 + 3);
}

TEST(NeuroPlanEnv, InitialMaskAllowsLinksNotUpgrades) {
  EnvFixture f;
  const auto& mask = f.env.action_mask();
  // Every link is addable into the empty topology.
  for (int i = 0; i < 15; ++i) EXPECT_EQ(mask[static_cast<std::size_t>(i)], 1);
  // No switch planned yet: upgrades masked.
  for (int i = 15; i < 18; ++i) EXPECT_EQ(mask[static_cast<std::size_t>(i)], 0);
}

TEST(NeuroPlanEnv, AddingLinkImplicitlyPlansSwitches) {
  EnvFixture f;
  const auto result = f.env.step(0);  // first Gc link (0, 4)
  EXPECT_FALSE(result.episode_end);
  EXPECT_LT(result.reward, 0.0);  // switch + link cost
  EXPECT_TRUE(f.env.topology().has_switch(4));
  EXPECT_EQ(f.env.topology().switch_asil(4), Asil::A);
  EXPECT_TRUE(f.env.topology().has_link(0, 4));
  // Link action 0 now masked (already added), its switch upgradable.
  EXPECT_EQ(f.env.action_mask()[0], 0);
}

TEST(NeuroPlanEnv, UpgradeActionRaisesAsil) {
  EnvFixture f;
  f.env.step(0);  // plans switch 4
  // Find switch 4's upgrade slot: switches are ordered 4, 5, 6 after links.
  const int upgrade_action = 15;
  ASSERT_EQ(f.env.action_mask()[upgrade_action], 1);
  f.env.step(upgrade_action);
  EXPECT_EQ(f.env.topology().switch_asil(4), Asil::B);
}

TEST(NeuroPlanEnv, MaskedActionRejected) {
  EnvFixture f;
  EXPECT_THROW(f.env.step(16), std::invalid_argument);  // upgrade of absent switch
  f.env.step(0);
  EXPECT_THROW(f.env.step(0), std::invalid_argument);  // duplicate link
}

TEST(NeuroPlanEnv, DegreeSaturationMasksLinks) {
  EnvFixture f;
  // Station 0 connects to switches 4 and 5: its ports are full.
  // Gc edges are ordered lexicographically: (0,4) (0,5) (0,6) ...
  f.env.step(0);
  f.env.step(1);
  EXPECT_EQ(f.env.action_mask()[2], 0);  // (0, 6) would exceed max_es_degree
}

TEST(NeuroPlanEnv, ResetRestoresInitialState) {
  EnvFixture f;
  f.env.step(0);
  f.env.reset();
  EXPECT_TRUE(f.env.topology().selected_switches().empty());
  EXPECT_EQ(f.env.action_mask()[0], 1);
}

TEST(NeuroPlanEnv, ReachesSolutionAndRecords) {
  // Manually drive to the dual-homed solution: add links (0..3)-4, (0..3)-5
  // and 4-5; the analyzer should sign off along the way.
  EnvFixture f;
  bool done = false;
  // Greedy: repeatedly take the first valid link action; this saturates the
  // fabric and must eventually produce a reliable network or dead-end.
  for (int guard = 0; guard < 64 && !done; ++guard) {
    const auto& mask = f.env.action_mask();
    int action = -1;
    for (int i = 0; i < f.env.num_actions(); ++i) {
      if (mask[static_cast<std::size_t>(i)]) {
        action = i;
        break;
      }
    }
    ASSERT_GE(action, 0);
    done = f.env.step(action).episode_end;
  }
  EXPECT_TRUE(done);
}

TEST(NeuroPlan, TrainingOnTinyProblemFindsSolutions) {
  const auto p = tiny_problem(2);
  const HeuristicRecovery nbf;
  const auto result = run_neuroplan(p, nbf, small_config());
  EXPECT_EQ(result.history.size(), 4u);
  // The tiny fabric is easy enough that random exploration finds solutions.
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.solutions_found, 0);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_DOUBLE_EQ(result.best->cost(), result.best_cost);
}

}  // namespace
}  // namespace nptsn
