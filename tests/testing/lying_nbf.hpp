// Adversarial NBF wrappers for certified-planning tests: recovery mechanisms
// that lie about their own success in ways the independent auditor must
// catch, plus a deliberately slow NBF for wall-clock-guard tests.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "tsn/recovery.hpp"

namespace nptsn::testing {

// Claims every failure recovery succeeded: forwards the inner NBF's flow
// state but swallows its error set for every non-empty scenario. (The empty
// scenario — initial placement — stays honest, so planning itself proceeds
// normally; the lie is purely about surviving failures, the part only the
// audit replays independently.) The analyzer then reports "reliable" for
// networks that are not — the audit must reject them (unrecovered flows
// surface as unplaced entries in the replayed flow states).
class LyingNbf final : public StatelessNbf {
 public:
  explicit LyingNbf(const StatelessNbf& inner) : inner_(&inner) {}

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    NbfResult result = inner_->recover(topology, scenario);
    if (!scenario.empty()) result.errors.clear();
    return result;
  }

 private:
  const StatelessNbf* inner_;
};

// Ignores the failure scenario: always reports the pre-failure initial flow
// state FI0 and claims success. Replaying FI0 under a real failure routes
// frames through dead components — the audit must catch that.
class StaleStateNbf final : public StatelessNbf {
 public:
  explicit StaleStateNbf(const StatelessNbf& inner) : inner_(&inner) {}

  NbfResult recover(const Topology& topology,
                    const FailureScenario& /*scenario*/) const override {
    NbfResult result = inner_->recover(topology, FailureScenario::none());
    result.errors.clear();
    return result;
  }

 private:
  const StatelessNbf* inner_;
};

// Correct but deliberately slow; counts calls. Used to pin that the auditor
// is independent of the NBF: audits make zero recover() calls and their wall
// time does not scale with NBF latency.
class SlowNbf final : public StatelessNbf {
 public:
  SlowNbf(const StatelessNbf& inner, std::chrono::milliseconds delay)
      : inner_(&inner), delay_(delay) {}

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    ++calls_;
    std::this_thread::sleep_for(delay_);
    return inner_->recover(topology, scenario);
  }

  std::int64_t calls() const { return calls_.load(); }

 private:
  const StatelessNbf* inner_;
  std::chrono::milliseconds delay_;
  mutable std::atomic<std::int64_t> calls_{0};
};

}  // namespace nptsn::testing
