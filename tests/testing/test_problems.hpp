// Shared miniature planning problems for unit and property tests.
#pragma once

#include "net/problem.hpp"
#include "net/topology.hpp"

namespace nptsn::testing {

// 4 end stations (0..3), 3 optional switches (4..6), complete bipartite
// ES-switch plus full switch-switch connections, unit lengths.
//   Gc: 4*3 + 3 = 15 optional links.
inline PlanningProblem tiny_problem(int num_flows = 2) {
  PlanningProblem problem;
  const int es = 4;
  const int sw = 3;
  Graph g(es + sw);
  for (NodeId u = 0; u < es; ++u) {
    for (NodeId s = es; s < es + sw; ++s) g.add_edge(u, s, 1.0);
  }
  for (NodeId a = es; a < es + sw; ++a) {
    for (NodeId b = a + 1; b < es + sw; ++b) g.add_edge(a, b, 1.0);
  }
  problem.connections = std::move(g);
  problem.num_end_stations = es;
  problem.tsn.base_period_us = 500.0;
  problem.tsn.slots_per_base = 20;
  problem.reliability_goal = 1e-6;
  problem.max_es_degree = 2;
  for (int i = 0; i < num_flows; ++i) {
    FlowSpec flow;
    flow.source = i % es;
    flow.destination = (i + 1) % es;
    flow.period_us = 500.0;
    flow.deadline_us = 500.0;
    flow.frame_bytes = 1500;
    problem.flows.push_back(flow);
  }
  return problem;
}

// A dual-homed topology on tiny_problem(): every end station connects to
// switches 4 and 5, switches 4-5 linked, both at `level`. Survives any
// single switch failure (flows re-route through the other switch).
inline Topology dual_homed_topology(const PlanningProblem& problem,
                                    Asil level = Asil::A) {
  Topology t(problem);
  for (const NodeId s : {4, 5}) {
    t.add_switch(s);
    while (t.switch_asil(s) != level) t.upgrade_switch(s);
  }
  for (NodeId u = 0; u < 4; ++u) {
    t.add_link(u, 4);
    t.add_link(u, 5);
  }
  t.add_link(4, 5);
  return t;
}

// A star topology through switch 4 only: single point of failure.
inline Topology star_topology(const PlanningProblem& problem, Asil level = Asil::A) {
  Topology t(problem);
  t.add_switch(4);
  while (t.switch_asil(4) != level) t.upgrade_switch(4);
  for (NodeId u = 0; u < 4; ++u) t.add_link(u, 4);
  return t;
}

}  // namespace nptsn::testing
