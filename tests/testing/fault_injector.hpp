// Fault-injection harness for the crash-resilience tests.
//
// Adaptive-stress-testing style: recovery paths are only trustworthy if we
// deliberately drive the system into the failures they claim to handle
// (Koren & Kochenderfer). The harness wraps the three places a long planning
// run actually dies in practice:
//
//   - FaultyEnv        : decorates any Environment; throws or stalls at a
//                        configured environment step (worker crash / straggler)
//   - FaultyNbf        : decorates any StatelessNbf; throws at a configured
//                        recover() call (crash inside the NBF evaluation of
//                        the failure analyzer)
//   - ScopedCheckpointWriteFault : crashes checkpoint writes at a chosen
//                        stage via the util/checkpoint write hook, and can
//                        corrupt/truncate the resulting files to simulate
//                        torn writes
//
// Counters are atomic: the trainer runs workers on a thread pool and several
// decorated environments may hit their trigger concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "nn/adam.hpp"
#include "rl/env.hpp"
#include "rl/health.hpp"
#include "tsn/recovery.hpp"
#include "util/checkpoint.hpp"

namespace nptsn::testing {

// Thrown by injected faults so tests can tell them from genuine errors.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

// Shared trigger: fires when its call counter reaches `at_call`.
// One FaultTrigger can be shared by several decorated objects, so "the 40th
// step across all workers" is expressible. kOnce fires exactly once (a
// transient fault the recovery path should absorb); kAlways keeps firing from
// at_call on (a persistent fault that must exhaust the rollback budget).
class FaultTrigger {
 public:
  enum class Repeat { kOnce, kAlways };

  // at_call <= 0 never fires.
  explicit FaultTrigger(std::int64_t at_call = 0, Repeat repeat = Repeat::kOnce)
      : at_call_(at_call), repeat_(repeat) {}

  // Counts one call; fires on the at_call-th call (and, with kAlways, on
  // every call after it).
  bool fire() {
    if (at_call_ <= 0) return false;
    const std::int64_t call = calls_.fetch_add(1) + 1;
    return repeat_ == Repeat::kAlways ? call >= at_call_ : call == at_call_;
  }

  std::int64_t calls() const { return calls_.load(); }
  bool fired() const { return at_call_ > 0 && calls_.load() >= at_call_; }

 private:
  std::int64_t at_call_;
  Repeat repeat_;
  std::atomic<std::int64_t> calls_{0};
};

// Environment decorator: forwards everything to the wrapped environment and
// injects a fault at the trigger's step. kThrow simulates a worker crash,
// kStall a straggler (used to exercise the wall-clock budget).
class FaultyEnv final : public Environment {
 public:
  enum class Mode { kThrow, kStall };

  FaultyEnv(std::unique_ptr<Environment> inner, std::shared_ptr<FaultTrigger> trigger,
            Mode mode = Mode::kThrow,
            std::chrono::milliseconds stall = std::chrono::milliseconds(50))
      : inner_(std::move(inner)), trigger_(std::move(trigger)), mode_(mode), stall_(stall) {}

  int num_actions() const override { return inner_->num_actions(); }
  Observation observe() const override { return inner_->observe(); }
  const std::vector<std::uint8_t>& action_mask() const override {
    return inner_->action_mask();
  }

  StepResult step(int action) override {
    if (trigger_ && trigger_->fire()) {
      if (mode_ == Mode::kThrow) throw InjectedFault("injected environment fault");
      std::this_thread::sleep_for(stall_);
    }
    return inner_->step(action);
  }

  void reset() override { inner_->reset(); }

  // Snapshots delegate to the wrapped environment; the injector itself is
  // stateless apart from the (deliberately unserialized) trigger counter.
  bool snapshot_supported() const override { return inner_->snapshot_supported(); }
  void save_snapshot(ByteWriter& out) const override { inner_->save_snapshot(out); }
  void load_snapshot(ByteReader& in) override { inner_->load_snapshot(in); }

 private:
  std::unique_ptr<Environment> inner_;
  std::shared_ptr<FaultTrigger> trigger_;
  Mode mode_;
  std::chrono::milliseconds stall_;
};

// NBF decorator: throws at the trigger's recover() call — the crash point
// inside the failure analyzer's scenario enumeration.
class FaultyNbf final : public StatelessNbf {
 public:
  FaultyNbf(const StatelessNbf& inner, std::shared_ptr<FaultTrigger> trigger)
      : inner_(&inner), trigger_(std::move(trigger)) {}

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override {
    if (trigger_ && trigger_->fire()) throw InjectedFault("injected NBF fault");
    return inner_->recover(topology, scenario);
  }

 private:
  const StatelessNbf* inner_;
  std::shared_ptr<FaultTrigger> trigger_;
};

// Installs a checkpoint write hook for the lifetime of the object. The hook
// throws InjectedFault at the chosen stage, simulating a crash mid-write
// (after the tmp file exists / after the old checkpoint was rotated away).
class ScopedCheckpointWriteFault {
 public:
  ScopedCheckpointWriteFault(CheckpointWriteStage stage,
                             std::shared_ptr<FaultTrigger> trigger)
      : trigger_(std::move(trigger)) {
    set_checkpoint_write_hook([stage, trigger = trigger_](CheckpointWriteStage s,
                                                          const std::string&) {
      if (s == stage && trigger->fire()) {
        throw InjectedFault("injected checkpoint write fault");
      }
    });
  }

  ~ScopedCheckpointWriteFault() { set_checkpoint_write_hook(nullptr); }

  ScopedCheckpointWriteFault(const ScopedCheckpointWriteFault&) = delete;
  ScopedCheckpointWriteFault& operator=(const ScopedCheckpointWriteFault&) = delete;

 private:
  std::shared_ptr<FaultTrigger> trigger_;
};

// Installs a health fault hook for the lifetime of the object: at the
// trigger's epoch boundary (the hook runs right before the sentinel sweep)
// it poisons the chosen piece of training state with `value` (NaN by
// default), so tests can watch the supervisor detect it, roll back, and —
// with a kAlways trigger — exhaust the rollback budget and stop as diverged.
// Mutating through copied Tensor handles edits the shared graph nodes, i.e.
// the live network; moments go through export_state/import_state.
class ScopedNumericFault {
 public:
  enum class Target { kWeights, kGradients, kAdamMoments };

  ScopedNumericFault(Target target, std::shared_ptr<FaultTrigger> trigger,
                     double value = std::numeric_limits<double>::quiet_NaN())
      : trigger_(std::move(trigger)) {
    set_health_fault_hook([target, value, trigger = trigger_](
                              int /*epoch*/, ActorCritic& net, Adam& actor_opt,
                              Adam& /*critic_opt*/) {
      if (!trigger->fire()) return;
      switch (target) {
        case Target::kWeights: {
          auto params = net.all_parameters();
          params.front().mutable_value().at(0, 0) = value;
          break;
        }
        case Target::kGradients: {
          auto params = net.all_parameters();
          Tensor& p = params.front();
          p.mutable_grad();  // allocate if the leaf never saw a backward pass
          p.mutable_grad().at(0, 0) = value;
          break;
        }
        case Target::kAdamMoments: {
          Adam::State state = actor_opt.export_state();
          state.v.front().at(0, 0) = value;
          actor_opt.import_state(state);
          break;
        }
      }
    });
  }

  ~ScopedNumericFault() { set_health_fault_hook(nullptr); }

  ScopedNumericFault(const ScopedNumericFault&) = delete;
  ScopedNumericFault& operator=(const ScopedNumericFault&) = delete;

 private:
  std::shared_ptr<FaultTrigger> trigger_;
};

// Torn-write simulation on files: truncate to `keep_bytes`, or flip one byte
// at `offset`. Both leave a file that only a checksum can unmask.
inline void truncate_file(const std::string& path, std::size_t keep_bytes) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  if (bytes.size() > keep_bytes) bytes.resize(keep_bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

inline void corrupt_file_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

}  // namespace nptsn::testing
