// Shared miniature RL environment for trainer/resilience tests.
//
// A 5-position corridor: the agent starts at 0 and must reach 4. Action 0 =
// left, action 1 = right. Reward -0.05 per step, +1.0 on arrival. Optimal
// return = 4 * (-0.05) + 1 = 0.8. Snapshot-capable, so checkpoint/resume
// determinism can be exercised without the full planning stack.
#pragma once

#include <cstdint>
#include <vector>

#include "rl/env.hpp"
#include "rl/trainer.hpp"

namespace nptsn::testing {

class CorridorEnv final : public Environment {
 public:
  static constexpr int kGoal = 4;

  CorridorEnv() { rebuild(); }

  int num_actions() const override { return 2; }

  Observation observe() const override { return obs_; }

  const std::vector<std::uint8_t>& action_mask() const override { return mask_; }

  StepResult step(int action) override {
    position_ += action == 1 ? 1 : -1;
    if (position_ < 0) position_ = 0;
    StepResult result;
    result.reward = -0.05;
    if (position_ == kGoal) {
      result.reward += 1.0;
      result.episode_end = true;
    } else if (++steps_ >= 32) {
      result.episode_end = true;  // give up
    }
    rebuild();
    return result;
  }

  void reset() override {
    position_ = 0;
    steps_ = 0;
    rebuild();
  }

  bool snapshot_supported() const override { return true; }

  void save_snapshot(ByteWriter& out) const override {
    out.i64(position_);
    out.i64(steps_);
  }

  void load_snapshot(ByteReader& in) override {
    position_ = static_cast<int>(in.i64());
    steps_ = static_cast<int>(in.i64());
    if (position_ < 0 || position_ > kGoal || steps_ < 0) {
      throw CheckpointError("corridor snapshot out of range");
    }
    rebuild();
  }

  int position() const { return position_; }

 private:
  void rebuild() {
    obs_.a_hat = Matrix(kGoal + 1, kGoal + 1);
    for (int i = 0; i <= kGoal; ++i) obs_.a_hat.at(i, i) = 1.0;
    obs_.features = Matrix(kGoal + 1, 1);
    obs_.features.at(position_, 0) = 1.0;
    obs_.params = Matrix(1, 0);
  }

  int position_ = 0;
  int steps_ = 0;
  Observation obs_;
  std::vector<std::uint8_t> mask_ = {1, 1};
};

// The network/trainer settings every corridor test shares.
inline ActorCritic::Config corridor_net_config() {
  ActorCritic::Config c;
  c.num_nodes = 5;
  c.feature_dim = 1;
  c.param_dim = 0;
  c.num_actions = 2;
  c.gcn_layers = 0;
  c.embedding_dim = 4;
  c.actor_hidden = {16};
  c.critic_hidden = {16};
  return c;
}

inline TrainerConfig corridor_trainer_config() {
  TrainerConfig c;
  c.epochs = 12;
  c.steps_per_epoch = 128;
  c.actor_lr = 1e-2;
  c.critic_lr = 1e-2;
  c.ppo.train_actor_iters = 10;
  c.ppo.train_critic_iters = 10;
  c.seed = 3;
  return c;
}

}  // namespace nptsn::testing
