// Human-readable exports of planning inputs and results.
//
// to_dot() renders a planned TSSDN as Graphviz: end stations as boxes,
// switches as circles labeled with their ASIL, link labels carrying the
// derived link ASIL. summary() prints the Eq. 1 cost breakdown. Both are
// pure string builders — no I/O — so callers decide where output goes.
#pragma once

#include <string>

#include "net/topology.hpp"

namespace nptsn {

struct DotOptions {
  // Also draw the optional Gc links the plan did not use (dashed).
  bool include_unused_connections = false;
  std::string graph_name = "tssdn";
};

std::string to_dot(const Topology& topology, const DotOptions& options = {});

// Multi-line cost breakdown: per-switch model/ASIL/cost rows, link totals
// per ASIL, and the Eq. 1 total.
std::string summary(const Topology& topology);

}  // namespace nptsn
