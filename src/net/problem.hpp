// The network planning problem instance (Section II-C of the paper):
// the connection graph Gc, the TT flow specification FS, the TAS base period,
// the component library, the reliability goal R, and the degree constraints.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/component_library.hpp"
#include "util/checkpoint.hpp"

namespace nptsn {

// A malformed planning problem (or malformed generator/scenario parameters).
// Derives std::invalid_argument so every existing catch site keeps working;
// the distinct type lets the stress searcher and the generator tests pin
// "degenerate input X must be rejected as a validation error" without
// matching message strings, and lets tools separate "bad instance" from
// "planner bug" in their exit codes.
class ValidationError : public std::invalid_argument {
 public:
  explicit ValidationError(const std::string& what) : std::invalid_argument(what) {}
};

// Time-Aware Shaper configuration. The base period is uniformly divided into
// slots_per_base time slots (e.g. ORION: 500 us / 20 slots); one slot carries
// one TT frame on one link.
struct TsnConfig {
  double base_period_us = 500.0;
  int slots_per_base = 20;
};

// One periodic, unicast time-triggered flow. period_us must divide the base
// period; the deadline defaults to the period.
struct FlowSpec {
  NodeId source = 0;
  NodeId destination = 0;
  double period_us = 500.0;
  int frame_bytes = 64;
  double deadline_us = 500.0;
};

struct PlanningProblem {
  // Gc: nodes [0, num_end_stations) are end stations, the rest are optional
  // switches; edges are the optional links with their cable lengths.
  Graph connections{0};
  int num_end_stations = 0;
  std::vector<FlowSpec> flows;
  TsnConfig tsn;
  ComponentLibrary library = ComponentLibrary::standard();
  // R: a failure scenario with probability >= R must be survivable.
  double reliability_goal = 1e-6;
  // Max ports per end station (2 = the minimum for redundancy, Section VI).
  int max_es_degree = 2;

  int num_nodes() const { return connections.num_nodes(); }
  int num_switches() const { return num_nodes() - num_end_stations; }
  bool is_switch(NodeId v) const { return v >= num_end_stations; }
  bool is_end_station(NodeId v) const { return v >= 0 && v < num_end_stations; }
  int max_switch_degree() const { return library.max_switch_degree(); }

  std::vector<NodeId> switch_ids() const;
  std::vector<NodeId> end_station_ids() const;

  // Frames each flow emits per base period (requires divisibility; throws
  // ValidationError on non-dividing, non-finite, or overflowing periods).
  int frames_per_base(const FlowSpec& flow) const;

  // Throws ValidationError when the instance is malformed (flows not between
  // end stations, non-dividing or non-finite periods, empty graph,
  // non-finite cable lengths, ...). Every clause is a typed throw, never an
  // assert or a hang — adversarially generated instances hit all of them.
  void validate() const;
};

// --- serialization -----------------------------------------------------------
// Byte-level, canonical, and self-contained: every field that defines the
// planning question (graph with lengths, end-station count, flows, TSN
// config, component library, R, degree bound) round-trips bit-exactly, so
// the regression corpus (tests/corpus) can replay an instance without the
// generator that produced it. save(load(bytes)) == bytes for any bytes that
// load accepts.
void save_problem(const PlanningProblem& problem, ByteWriter& out);
// Bounds- and range-checked structural load: malformed or truncated input
// throws CheckpointError; the result is NOT validate()d — semantic checks
// stay the caller's explicit step (corpus replay asserts them separately).
PlanningProblem load_problem(ByteReader& in);
// Convenience round-trips over a plain byte vector.
std::vector<std::uint8_t> problem_bytes(const PlanningProblem& problem);
PlanningProblem problem_from_bytes(const std::vector<std::uint8_t>& bytes);

// --- fingerprinting ----------------------------------------------------------
// 128-bit fingerprint of the CANONICAL problem serialization. Because
// save_problem is canonical (save(load(bytes)) == bytes), two problems share a
// fingerprint exactly when their defining bytes are identical — which is the
// soundness condition the cross-problem cache layer keys on: a cached NBF
// verdict or staged adjacency may only be reused between sessions whose
// problems fingerprint identically. Two independently seeded 64-bit hashes of
// the same byte stream make accidental collision probability ~2^-128 —
// negligible next to any hardware fault rate.
struct ProblemFp {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend auto operator<=>(const ProblemFp&, const ProblemFp&) = default;
};

// (Named with the width suffix to stay distinct from the certificate
// layer's 64-bit problem_fingerprint, which predates this one and is baked
// into the certificate wire format.)
ProblemFp problem_fingerprint128(const std::vector<std::uint8_t>& canonical_bytes);
// Serializes and fingerprints (the convenience form; callers that already
// hold the canonical bytes should hash those directly).
ProblemFp problem_fingerprint128(const PlanningProblem& problem);

}  // namespace nptsn
