#include "net/failure.hpp"

#include <algorithm>

#include "net/topology.hpp"
#include "util/expect.hpp"

namespace nptsn {

void FailureScenario::normalize() {
  std::ranges::sort(failed_switches);
  failed_switches.erase(std::unique(failed_switches.begin(), failed_switches.end()),
                        failed_switches.end());
  std::ranges::sort(failed_links);
  failed_links.erase(std::unique(failed_links.begin(), failed_links.end()),
                     failed_links.end());
}

bool FailureScenario::switches_subset_of(const FailureScenario& other) const {
  return std::ranges::includes(other.failed_switches, failed_switches);
}

bool FailureScenario::subset_of(const FailureScenario& other) const {
  return std::ranges::includes(other.failed_switches, failed_switches) &&
         std::ranges::includes(other.failed_links, failed_links);
}

FailureScenario FailureScenario::of_switches(std::vector<NodeId> switches) {
  FailureScenario scenario;
  scenario.failed_switches = std::move(switches);
  scenario.normalize();
  return scenario;
}

double failure_probability(const Topology& topology, const FailureScenario& scenario) {
  const auto& lib = topology.problem().library;
  double prob = 1.0;
  for (const NodeId v : scenario.failed_switches) {
    prob *= lib.failure_prob(topology.switch_asil(v));
  }
  for (const auto& link : scenario.failed_links) {
    prob *= lib.failure_prob(topology.link_asil(link.a, link.b));
  }
  return prob;
}

}  // namespace nptsn
