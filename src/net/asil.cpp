#include "net/asil.hpp"

#include "util/expect.hpp"

namespace nptsn {

Asil next_level(Asil level) {
  NPTSN_EXPECT(level != Asil::D, "ASIL-D cannot be upgraded");
  return static_cast<Asil>(static_cast<int>(level) + 1);
}

std::string to_string(Asil level) {
  switch (level) {
    case Asil::A: return "A";
    case Asil::B: return "B";
    case Asil::C: return "C";
    case Asil::D: return "D";
  }
  NPTSN_ASSERT(false, "invalid ASIL value");
}

}  // namespace nptsn
