#include "net/export.hpp"

#include <array>
#include <sstream>

namespace nptsn {
namespace {

const char* asil_color(Asil level) {
  switch (level) {
    case Asil::A: return "palegreen";
    case Asil::B: return "khaki";
    case Asil::C: return "orange";
    case Asil::D: return "tomato";
  }
  return "white";
}

}  // namespace

std::string to_dot(const Topology& topology, const DotOptions& options) {
  const PlanningProblem& problem = topology.problem();
  std::ostringstream os;
  os << "graph " << options.graph_name << " {\n";
  os << "  layout=neato; overlap=false; splines=true;\n";

  for (NodeId v = 0; v < problem.num_end_stations; ++v) {
    os << "  n" << v << " [shape=box, label=\"es" << v << "\"];\n";
  }
  for (const NodeId v : topology.selected_switches()) {
    os << "  n" << v << " [shape=circle, style=filled, fillcolor="
       << asil_color(topology.switch_asil(v)) << ", label=\"sw" << v << "\\nASIL-"
       << to_string(topology.switch_asil(v)) << "\"];\n";
  }

  for (const auto& edge : topology.graph().edges()) {
    os << "  n" << edge.u << " -- n" << edge.v << " [label=\""
       << to_string(topology.link_asil(edge.u, edge.v)) << "\"];\n";
  }
  if (options.include_unused_connections) {
    for (const auto& edge : problem.connections.edges()) {
      if (topology.has_link(edge.u, edge.v)) continue;
      const bool endpoints_drawn =
          (!problem.is_switch(edge.u) || topology.has_switch(edge.u)) &&
          (!problem.is_switch(edge.v) || topology.has_switch(edge.v));
      if (!endpoints_drawn) continue;
      os << "  n" << edge.u << " -- n" << edge.v << " [style=dashed, color=gray];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string summary(const Topology& topology) {
  const PlanningProblem& problem = topology.problem();
  const auto& lib = problem.library;
  std::ostringstream os;

  double switch_total = 0.0;
  os << "switches:\n";
  for (const NodeId v : topology.selected_switches()) {
    const double cost = lib.switch_cost(topology.degree(v), topology.switch_asil(v));
    switch_total += cost;
    os << "  sw" << v << "  ASIL-" << to_string(topology.switch_asil(v)) << "  "
       << topology.degree(v) << " ports  cost " << cost << "\n";
  }

  std::array<double, kNumAsilLevels> link_cost_per_level{};
  std::array<int, kNumAsilLevels> link_count_per_level{};
  for (const auto& edge : topology.graph().edges()) {
    const Asil level = topology.link_asil(edge.u, edge.v);
    link_cost_per_level[static_cast<std::size_t>(level)] +=
        lib.link_cost(level, edge.length);
    ++link_count_per_level[static_cast<std::size_t>(level)];
  }
  double link_total = 0.0;
  os << "links:\n";
  for (const Asil level : kAllAsil) {
    const auto i = static_cast<std::size_t>(level);
    if (link_count_per_level[i] == 0) continue;
    link_total += link_cost_per_level[i];
    os << "  ASIL-" << to_string(level) << "  x" << link_count_per_level[i] << "  cost "
       << link_cost_per_level[i] << "\n";
  }
  os << "total: " << switch_total << " (switches) + " << link_total
     << " (links) = " << topology.cost() << "\n";
  return os.str();
}

}  // namespace nptsn
