#include "net/topology.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "util/expect.hpp"

namespace nptsn {
namespace {

// splitmix64 finalizer: a strong bijective 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Per-edge contribution: two independently keyed mixes of the normalized
// (min, max) endpoint pair. Commutative addition of these values forms the
// graph fingerprint.
GraphFp edge_fp(NodeId u, NodeId v) {
  const EdgeKey key(u, v);
  const std::uint64_t word =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.a)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.b));
  return GraphFp{mix64(word + 0x9e3779b97f4a7c15ull),
                 mix64(word ^ 0xda942042e4dd58b5ull), 1};
}

GraphFp base_fp(int num_nodes) {
  const auto n = static_cast<std::uint64_t>(num_nodes);
  return GraphFp{mix64(n ^ 0x3c6ef372fe94f82bull), mix64(n + 0xa54ff53a5f1d36f1ull), 0};
}

}  // namespace

GraphFp graph_fp_of(const Graph& g) {
  GraphFp fp = base_fp(g.num_nodes());
  for (const Edge& e : g.edges()) fp.add(edge_fp(e.u, e.v));
  return fp;
}

Topology::Topology(const PlanningProblem& problem)
    : problem_(&problem),
      gt_(problem.num_nodes()),
      switch_level_(static_cast<std::size_t>(problem.num_nodes())),
      fp_(base_fp(problem.num_nodes())) {}

bool Topology::has_switch(NodeId v) const {
  gt_.check_node(v);
  return problem_->is_switch(v) && switch_level_[static_cast<std::size_t>(v)].has_value();
}

Asil Topology::switch_asil(NodeId v) const {
  NPTSN_EXPECT(has_switch(v), "switch not part of the topology");
  return *switch_level_[static_cast<std::size_t>(v)];
}

void Topology::add_switch(NodeId v) {
  NPTSN_EXPECT(problem_->is_switch(v), "node is not an optional switch");
  NPTSN_EXPECT(!has_switch(v), "switch already added");
  switch_level_[static_cast<std::size_t>(v)] = Asil::A;
}

void Topology::upgrade_switch(NodeId v) {
  NPTSN_EXPECT(has_switch(v), "cannot upgrade an absent switch");
  auto& level = switch_level_[static_cast<std::size_t>(v)];
  level = next_level(*level);
}

std::vector<NodeId> Topology::selected_switches() const {
  std::vector<NodeId> out;
  for (NodeId v = problem_->num_end_stations; v < problem_->num_nodes(); ++v) {
    if (switch_level_[static_cast<std::size_t>(v)].has_value()) out.push_back(v);
  }
  return out;
}

int Topology::max_degree_of(NodeId v) const {
  return problem_->is_switch(v) ? problem_->max_switch_degree() : problem_->max_es_degree;
}

void Topology::add_link(NodeId u, NodeId v) {
  NPTSN_EXPECT(problem_->connections.has_edge(u, v), "link is not an optional Gc link");
  for (const NodeId w : {u, v}) {
    NPTSN_EXPECT(!problem_->is_switch(w) || has_switch(w),
                 "link endpoint switch has not been added");
  }
  if (gt_.has_edge(u, v)) return;
  for (const NodeId w : {u, v}) {
    NPTSN_EXPECT(gt_.degree(w) + 1 <= max_degree_of(w),
                 "degree constraint violated at node " + std::to_string(w));
  }
  gt_.add_edge(u, v, problem_->connections.length(u, v));
  fp_.add(edge_fp(u, v));
}

bool Topology::has_link(NodeId u, NodeId v) const { return gt_.has_edge(u, v); }

void Topology::add_path(const Path& path) {
  NPTSN_EXPECT(path.size() >= 2, "path must contain at least one link");
  NPTSN_EXPECT(path_respects_degrees(path), "path violates the degree constraints");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) add_link(path[i], path[i + 1]);
}

bool Topology::path_respects_degrees(const Path& path) const {
  // Count each node's new links (links of the path not yet in Gt).
  std::map<NodeId, int> extra;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId u = path[i];
    const NodeId v = path[i + 1];
    if (!problem_->connections.has_edge(u, v)) return false;
    if (gt_.has_edge(u, v)) continue;
    ++extra[u];
    ++extra[v];
  }
  for (const auto& [v, added] : extra) {
    if (gt_.degree(v) + added > max_degree_of(v)) return false;
  }
  return true;
}

int Topology::degree(NodeId v) const { return gt_.degree(v); }

Asil Topology::node_asil(NodeId v) const {
  // End stations require high reliability (their failures are safe faults);
  // they count as ASIL-D for the link-level derivation.
  if (problem_->is_end_station(v)) return Asil::D;
  return switch_asil(v);
}

Asil Topology::link_asil(NodeId u, NodeId v) const {
  NPTSN_EXPECT(gt_.has_edge(u, v), "link is not part of the topology");
  return min_level(node_asil(u), node_asil(v));
}

double Topology::cost() const {
  const auto& lib = problem_->library;
  double total = 0.0;
  for (const NodeId v : selected_switches()) {
    total += lib.switch_cost(gt_.degree(v), switch_asil(v));
  }
  for (const auto& edge : gt_.edges()) {
    total += lib.link_cost(link_asil(edge.u, edge.v), edge.length);
  }
  return total;
}

GraphFp Topology::residual_fingerprint(const FailureScenario& scenario) const {
  GraphFp fp = fp_;
  const auto failed = [&scenario](NodeId w) {
    return std::find(scenario.failed_switches.begin(), scenario.failed_switches.end(),
                     w) != scenario.failed_switches.end();
  };
  for (const NodeId v : scenario.failed_switches) {
    NPTSN_EXPECT(has_switch(v) || problem_->is_end_station(v),
                 "failed node is not part of the topology");
    for (const auto& [w, length] : gt_.neighbors(v)) {
      // An edge between two failed nodes is subtracted by its smaller
      // endpoint only.
      if (failed(w) && w < v) continue;
      fp.subtract(edge_fp(v, w));
    }
  }
  for (const auto& link : scenario.failed_links) {
    if (!gt_.has_edge(link.a, link.b)) continue;
    if (failed(link.a) || failed(link.b)) continue;  // gone with the node
    fp.subtract(edge_fp(link.a, link.b));
  }
  return fp;
}

Graph Topology::residual(const FailureScenario& scenario) const {
  Graph g = gt_;
  for (const NodeId v : scenario.failed_switches) {
    // End stations may appear here in the flow-level-redundancy analysis
    // variant (Section V); otherwise the node must be a planned switch.
    NPTSN_EXPECT(has_switch(v) || problem_->is_end_station(v),
                 "failed node is not part of the topology");
    g.remove_node(v);
  }
  for (const auto& link : scenario.failed_links) {
    g.remove_edge(link.a, link.b);
  }
  return g;
}

void save_topology(const Topology& topology, ByteWriter& out) {
  const auto switches = topology.selected_switches();
  out.u32(static_cast<std::uint32_t>(switches.size()));
  for (const NodeId v : switches) {
    out.i64(v);
    out.u8(static_cast<std::uint8_t>(static_cast<int>(topology.switch_asil(v))));
  }
  const auto edges = topology.graph().edges();
  out.u32(static_cast<std::uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    out.i64(e.u);
    out.i64(e.v);
  }
}

Topology load_topology(const PlanningProblem& problem, ByteReader& in) {
  Topology topology(problem);
  // Every malformed input must surface as CheckpointError: counts are
  // checked against the remaining payload before looping (a corrupt header
  // can never drive a huge loop), ids are range-checked before they reach
  // the Topology invariants, and whatever those invariants still reject
  // (duplicate switch, link outside Gc, degree bound) is converted from
  // std::invalid_argument.
  auto read_node = [&](const char* what) {
    const std::int64_t raw = in.i64();
    if (raw < 0 || raw >= problem.num_nodes()) {
      throw CheckpointError(std::string("topology: serialized ") + what +
                            " id out of range");
    }
    return static_cast<NodeId>(raw);
  };
  try {
    const std::uint32_t num_switches = in.u32();
    if (std::uint64_t{num_switches} * 9 > in.remaining()) {
      throw CheckpointError("topology: switch count exceeds the remaining payload");
    }
    for (std::uint32_t i = 0; i < num_switches; ++i) {
      const NodeId v = read_node("switch");
      const int level = in.u8();
      if (level < 0 || level >= kNumAsilLevels) {
        throw CheckpointError("serialized switch ASIL out of range");
      }
      topology.add_switch(v);  // starts at ASIL-A
      while (static_cast<int>(topology.switch_asil(v)) < level) topology.upgrade_switch(v);
    }
    const std::uint32_t num_links = in.u32();
    if (std::uint64_t{num_links} * 16 > in.remaining()) {
      throw CheckpointError("topology: link count exceeds the remaining payload");
    }
    for (std::uint32_t i = 0; i < num_links; ++i) {
      const NodeId u = read_node("link endpoint");
      const NodeId v = read_node("link endpoint");
      topology.add_link(u, v);
    }
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("topology: ") + e.what());
  }
  return topology;
}

}  // namespace nptsn
