#include "net/problem.hpp"

#include <cmath>
#include <string>

#include "util/expect.hpp"

namespace nptsn {

std::vector<NodeId> PlanningProblem::switch_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(num_switches()));
  for (NodeId v = num_end_stations; v < num_nodes(); ++v) ids.push_back(v);
  return ids;
}

std::vector<NodeId> PlanningProblem::end_station_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(num_end_stations));
  for (NodeId v = 0; v < num_end_stations; ++v) ids.push_back(v);
  return ids;
}

int PlanningProblem::frames_per_base(const FlowSpec& flow) const {
  const double ratio = tsn.base_period_us / flow.period_us;
  const int frames = static_cast<int>(std::lround(ratio));
  NPTSN_EXPECT(frames >= 1 && std::abs(ratio - frames) < 1e-9,
               "flow period must divide the base period");
  return frames;
}

void PlanningProblem::validate() const {
  NPTSN_EXPECT(num_end_stations >= 2, "need at least two end stations");
  NPTSN_EXPECT(num_nodes() > num_end_stations, "need at least one optional switch");
  NPTSN_EXPECT(tsn.base_period_us > 0.0, "base period must be positive");
  NPTSN_EXPECT(tsn.slots_per_base >= 1, "need at least one slot per base period");
  NPTSN_EXPECT(reliability_goal > 0.0 && reliability_goal < 1.0,
               "reliability goal must be in (0, 1)");
  NPTSN_EXPECT(max_es_degree >= 1, "end stations need at least one port");
  NPTSN_EXPECT(!flows.empty(), "need at least one flow");

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    const std::string tag = "flow " + std::to_string(i);
    NPTSN_EXPECT(is_end_station(f.source) && is_end_station(f.destination),
                 tag + ": endpoints must be end stations");
    NPTSN_EXPECT(f.source != f.destination, tag + ": source equals destination");
    NPTSN_EXPECT(f.period_us > 0.0, tag + ": period must be positive");
    NPTSN_EXPECT(f.frame_bytes > 0, tag + ": frame size must be positive");
    NPTSN_EXPECT(f.deadline_us > 0.0 && f.deadline_us <= f.period_us,
                 tag + ": deadline must be in (0, period]");
    (void)frames_per_base(f);  // checks divisibility
  }

  // No optional link may connect two end stations directly: every flow must
  // traverse at least one switch (a property both scenarios satisfy and the
  // action space relies on).
  for (const auto& edge : connections.edges()) {
    NPTSN_EXPECT(is_switch(edge.u) || is_switch(edge.v),
                 "direct end-station to end-station links are not allowed");
  }
}

}  // namespace nptsn
