#include "net/problem.hpp"

#include <cmath>
#include <string>

namespace nptsn {
namespace {

// validate() clauses throw the typed ValidationError (NPTSN_EXPECT throws a
// plain std::invalid_argument and is kept for call-site preconditions).
void check(bool ok, const std::string& msg) {
  if (!ok) throw ValidationError("invalid planning problem: " + msg);
}

}  // namespace

std::vector<NodeId> PlanningProblem::switch_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(num_switches()));
  for (NodeId v = num_end_stations; v < num_nodes(); ++v) ids.push_back(v);
  return ids;
}

std::vector<NodeId> PlanningProblem::end_station_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(num_end_stations));
  for (NodeId v = 0; v < num_end_stations; ++v) ids.push_back(v);
  return ids;
}

int PlanningProblem::frames_per_base(const FlowSpec& flow) const {
  check(std::isfinite(tsn.base_period_us) && tsn.base_period_us > 0.0,
        "base period must be finite and positive");
  check(std::isfinite(flow.period_us) && flow.period_us > 0.0,
        "flow period must be finite and positive");
  const double ratio = tsn.base_period_us / flow.period_us;
  // Guard std::lround against overflow before trusting the rounded value: a
  // generated base period of 1e12 over a period of 1e-6 must be rejected,
  // not wrapped into a bogus frame count.
  check(ratio < 1e9, "flow emits absurdly many frames per base period");
  const int frames = static_cast<int>(std::lround(ratio));
  check(frames >= 1 && std::abs(ratio - frames) < 1e-9,
        "flow period must divide the base period");
  return frames;
}

void PlanningProblem::validate() const {
  check(num_end_stations >= 2, "need at least two end stations");
  check(num_nodes() > num_end_stations, "need at least one optional switch");
  check(std::isfinite(tsn.base_period_us) && tsn.base_period_us > 0.0,
        "base period must be finite and positive");
  check(tsn.slots_per_base >= 1, "need at least one slot per base period");
  check(std::isfinite(reliability_goal) && reliability_goal > 0.0 &&
            reliability_goal < 1.0,
        "reliability goal must be in (0, 1)");
  check(max_es_degree >= 1, "end stations need at least one port");
  check(!flows.empty(), "need at least one flow");

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    const std::string tag = "flow " + std::to_string(i);
    check(is_end_station(f.source) && is_end_station(f.destination),
          tag + ": endpoints must be end stations");
    check(f.source != f.destination, tag + ": source equals destination");
    check(std::isfinite(f.period_us) && f.period_us > 0.0,
          tag + ": period must be finite and positive");
    check(f.frame_bytes > 0, tag + ": frame size must be positive");
    check(std::isfinite(f.deadline_us) && f.deadline_us > 0.0 &&
              f.deadline_us <= f.period_us,
          tag + ": deadline must be in (0, period]");
    (void)frames_per_base(f);  // checks divisibility and overflow
  }

  // No optional link may connect two end stations directly: every flow must
  // traverse at least one switch (a property both scenarios satisfy and the
  // action space relies on). Cable lengths feed Eq. 1 cost terms and must
  // stay finite.
  for (const auto& edge : connections.edges()) {
    check(is_switch(edge.u) || is_switch(edge.v),
          "direct end-station to end-station links are not allowed");
    check(std::isfinite(edge.length) && edge.length > 0.0,
          "link cable lengths must be finite and positive");
  }
}

void save_problem(const PlanningProblem& problem, ByteWriter& out) {
  out.i64(problem.num_nodes());
  out.i64(problem.num_end_stations);

  const auto edges = problem.connections.edges();
  out.u32(static_cast<std::uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    out.i64(e.u);
    out.i64(e.v);
    out.f64(e.length);
  }

  out.u32(static_cast<std::uint32_t>(problem.flows.size()));
  for (const FlowSpec& f : problem.flows) {
    out.i64(f.source);
    out.i64(f.destination);
    out.f64(f.period_us);
    out.i64(f.frame_bytes);
    out.f64(f.deadline_us);
  }

  out.f64(problem.tsn.base_period_us);
  out.i64(problem.tsn.slots_per_base);

  const auto& models = problem.library.models();
  out.u32(static_cast<std::uint32_t>(models.size()));
  for (const SwitchModel& m : models) {
    out.i64(m.ports);
    for (const double c : m.cost) out.f64(c);
  }
  for (int level = 0; level < kNumAsilLevels; ++level) {
    out.f64(problem.library.link_cost(static_cast<Asil>(level), 1.0));
  }
  for (int level = 0; level < kNumAsilLevels; ++level) {
    out.f64(problem.library.failure_prob(static_cast<Asil>(level)));
  }

  out.f64(problem.reliability_goal);
  out.i64(problem.max_es_degree);
}

PlanningProblem load_problem(ByteReader& in) {
  // Structural hardening mirrors load_topology: counts are compared against
  // the remaining payload before any loop so a corrupt header can never
  // drive a huge allocation, ids are range-checked, and whatever the Graph /
  // ComponentLibrary constructors still reject is converted from
  // std::invalid_argument to CheckpointError.
  try {
    const std::int64_t num_nodes = in.i64();
    const std::int64_t num_end_stations = in.i64();
    if (num_nodes < 0 || num_nodes > 1'000'000) {
      throw CheckpointError("problem: node count out of range");
    }
    if (num_end_stations < 0 || num_end_stations > num_nodes) {
      throw CheckpointError("problem: end-station count out of range");
    }

    PlanningProblem problem;
    problem.connections = Graph(static_cast<int>(num_nodes));
    problem.num_end_stations = static_cast<int>(num_end_stations);

    auto read_node = [&](const char* what) {
      const std::int64_t raw = in.i64();
      if (raw < 0 || raw >= num_nodes) {
        throw CheckpointError(std::string("problem: serialized ") + what +
                              " id out of range");
      }
      return static_cast<NodeId>(raw);
    };

    const std::uint32_t num_edges = in.u32();
    if (std::uint64_t{num_edges} * 24 > in.remaining()) {
      throw CheckpointError("problem: edge count exceeds the remaining payload");
    }
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      const NodeId u = read_node("edge endpoint");
      const NodeId v = read_node("edge endpoint");
      const double length = in.f64();
      problem.connections.add_edge(u, v, length);
    }

    const std::uint32_t num_flows = in.u32();
    if (std::uint64_t{num_flows} * 40 > in.remaining()) {
      throw CheckpointError("problem: flow count exceeds the remaining payload");
    }
    problem.flows.reserve(num_flows);
    for (std::uint32_t f = 0; f < num_flows; ++f) {
      FlowSpec flow;
      flow.source = read_node("flow source");
      flow.destination = read_node("flow destination");
      flow.period_us = in.f64();
      const std::int64_t frame_bytes = in.i64();
      if (frame_bytes < 0 || frame_bytes > (std::int64_t{1} << 31)) {
        throw CheckpointError("problem: flow frame size out of range");
      }
      flow.frame_bytes = static_cast<int>(frame_bytes);
      flow.deadline_us = in.f64();
      problem.flows.push_back(flow);
    }

    problem.tsn.base_period_us = in.f64();
    const std::int64_t slots = in.i64();
    if (slots < 0 || slots > (std::int64_t{1} << 31)) {
      throw CheckpointError("problem: slots-per-base out of range");
    }
    problem.tsn.slots_per_base = static_cast<int>(slots);

    const std::uint32_t num_models = in.u32();
    if (std::uint64_t{num_models} * (8 + 8 * kNumAsilLevels) > in.remaining()) {
      throw CheckpointError("problem: model count exceeds the remaining payload");
    }
    std::vector<SwitchModel> models;
    models.reserve(num_models);
    for (std::uint32_t m = 0; m < num_models; ++m) {
      SwitchModel model;
      const std::int64_t ports = in.i64();
      if (ports < 0 || ports > (std::int64_t{1} << 31)) {
        throw CheckpointError("problem: switch port count out of range");
      }
      model.ports = static_cast<int>(ports);
      for (double& c : model.cost) c = in.f64();
      models.push_back(model);
    }
    std::array<double, kNumAsilLevels> link_cost_per_unit{};
    for (double& c : link_cost_per_unit) c = in.f64();
    std::array<double, kNumAsilLevels> failure_prob{};
    for (double& p : failure_prob) p = in.f64();
    problem.library = ComponentLibrary(std::move(models), link_cost_per_unit, failure_prob);

    problem.reliability_goal = in.f64();
    const std::int64_t max_es_degree = in.i64();
    if (max_es_degree < 0 || max_es_degree > (std::int64_t{1} << 31)) {
      throw CheckpointError("problem: end-station degree bound out of range");
    }
    problem.max_es_degree = static_cast<int>(max_es_degree);
    return problem;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("problem: ") + e.what());
  }
}

std::vector<std::uint8_t> problem_bytes(const PlanningProblem& problem) {
  ByteWriter out;
  save_problem(problem, out);
  return out.data();
}

PlanningProblem problem_from_bytes(const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  PlanningProblem problem = load_problem(in);
  in.expect_exhausted("planning problem");
  return problem;
}

namespace {

// splitmix64 finalizer (same mixer the graph fingerprint uses).
std::uint64_t fp_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Second, structurally different 64-bit pass over the same bytes: a keyed
// multiply-xor-mix stream (splitmix64 absorption). Independent from FNV-1a,
// so a collision must defeat two unrelated hash constructions at once.
std::uint64_t absorb64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t state = 0xa54ff53a5f1d36f1ull ^ (static_cast<std::uint64_t>(size) << 1);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) word |= std::uint64_t{data[i + b]} << (8 * b);
    state = fp_mix64(state ^ word) + 0x9e3779b97f4a7c15ull;
  }
  std::uint64_t tail = 0;
  for (int b = 0; i < size; ++i, ++b) tail |= std::uint64_t{data[i]} << (8 * b);
  return fp_mix64(state ^ tail);
}

}  // namespace

ProblemFp problem_fingerprint128(const std::vector<std::uint8_t>& canonical_bytes) {
  return ProblemFp{fnv1a64(canonical_bytes.data(), canonical_bytes.size()),
                   absorb64(canonical_bytes.data(), canonical_bytes.size())};
}

ProblemFp problem_fingerprint128(const PlanningProblem& problem) {
  return problem_fingerprint128(problem_bytes(problem));
}

}  // namespace nptsn
