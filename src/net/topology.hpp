// The TSSDN under construction: Gt (a subgraph of Gc) plus the ASIL
// allocation of its switches. Link ASIL is derived as the minimum ASIL of
// the two adjacent nodes (end stations count as ASIL-D), the invariant that
// lets the failure analyzer check switch failures only (Section V).
//
// Construction is monotone, mirroring the paper's action design: switches
// are added (at ASIL-A) or upgraded, paths/links are added; nothing is ever
// removed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/paths.hpp"
#include "net/failure.hpp"
#include "net/problem.hpp"
#include "util/checkpoint.hpp"

namespace nptsn {

class Topology {
 public:
  // Starts as the empty TSSDN: all end stations, no switches, no links.
  // The problem must outlive the topology.
  explicit Topology(const PlanningProblem& problem);

  const PlanningProblem& problem() const { return *problem_; }

  // --- switches -----------------------------------------------------------
  bool has_switch(NodeId v) const;
  Asil switch_asil(NodeId v) const;  // requires has_switch(v)
  // Adds a new optional switch at ASIL-A; requires !has_switch(v).
  void add_switch(NodeId v);
  // One-level upgrade; requires has_switch(v) and level < D.
  void upgrade_switch(NodeId v);
  std::vector<NodeId> selected_switches() const;

  // --- links / paths ------------------------------------------------------
  // Adds a Gc link; both endpoints must be present (switch endpoints must
  // have been added). Idempotent. Enforces the degree constraints.
  void add_link(NodeId u, NodeId v);
  bool has_link(NodeId u, NodeId v) const;
  // Adds every link along the path (endpoints are end stations or present
  // switches). The combined result must respect the degree constraints.
  void add_path(const Path& path);

  // Degree a node would have if the path were added; used to pre-check the
  // constraints without mutating (SOAG mask computation, Alg. 1 line 9).
  bool path_respects_degrees(const Path& path) const;

  // --- derived properties ---------------------------------------------------
  int degree(NodeId v) const;
  // ASIL of a node: switch allocation, or D for end stations.
  Asil node_asil(NodeId v) const;
  // ASIL of an existing link: min of the endpoint levels.
  Asil link_asil(NodeId u, NodeId v) const;

  // Eq. 1 network cost under the problem's component library.
  double cost() const;

  // Current Gt over the full node id space (absent switches are isolated).
  const Graph& graph() const { return gt_; }

  // Order-independent 64-bit fingerprint of Gt's link set (FNV-1a over the
  // lexicographic edge list). The recovery NBF is a pure function of the
  // residual graph — it never reads the ASIL allocation — so two topologies
  // with equal fingerprints produce identical NBF results for every failure
  // scenario. The verification engine keys its cross-step verdict memo on
  // this value; ASIL-upgrade actions leave it unchanged. Cached after the
  // first call, invalidated by link additions (the hot loop fingerprints
  // every analysis).
  std::uint64_t graph_fingerprint() const;

  // Gt minus the failed components — the graph the recovery NBF routes on.
  Graph residual(const FailureScenario& scenario) const;

 private:
  const PlanningProblem* problem_;
  Graph gt_;
  std::vector<std::optional<Asil>> switch_level_;  // indexed by node id
  mutable std::optional<std::uint64_t> fingerprint_cache_;
  int max_degree_of(NodeId v) const;
};

// Checkpoint serialization. A topology is stored as its switch allocation
// plus its link set — everything else is derived from the problem, which is
// not persisted: load_topology rebuilds against the caller-supplied problem
// and throws (via the Topology invariants / CheckpointError) when the
// serialized ids do not fit it.
void save_topology(const Topology& topology, ByteWriter& out);
Topology load_topology(const PlanningProblem& problem, ByteReader& in);

}  // namespace nptsn
