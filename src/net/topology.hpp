// The TSSDN under construction: Gt (a subgraph of Gc) plus the ASIL
// allocation of its switches. Link ASIL is derived as the minimum ASIL of
// the two adjacent nodes (end stations count as ASIL-D), the invariant that
// lets the failure analyzer check switch failures only (Section V).
//
// Construction is monotone, mirroring the paper's action design: switches
// are added (at ASIL-A) or upgraded, paths/links are added; nothing is ever
// removed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/paths.hpp"
#include "net/failure.hpp"
#include "net/problem.hpp"
#include "util/checkpoint.hpp"

namespace nptsn {

// 128-bit order-independent fingerprint of a link set (plus the edge count
// as a structural cross-check). Each edge contributes two independently
// mixed 64-bit values combined by wrapping addition, so the fingerprint is
// a commutative sum: it can be maintained incrementally as links are added
// and a residual graph's fingerprint is the full graph's minus the removed
// edges' contributions. The verification engine uses it as cache identity
// for NBF verdicts on a safety-verification path — 64 bits of structured
// FNV-1a were judged too collision-prone for that (see REVIEW history);
// 2x splitmix64 plus the edge count is.
struct GraphFp {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t edges = 0;

  void add(const GraphFp& o) {
    a += o.a;
    b += o.b;
    edges += o.edges;
  }
  void subtract(const GraphFp& o) {
    a -= o.a;
    b -= o.b;
    edges -= o.edges;
  }
  friend auto operator<=>(const GraphFp&, const GraphFp&) = default;
};

// Fingerprint of a graph's current edge set, computed from scratch. The
// incremental bookkeeping in Topology must agree with this at all times
// (property-tested in tests/net/topology_test.cpp).
GraphFp graph_fp_of(const Graph& g);

class Topology {
 public:
  // Starts as the empty TSSDN: all end stations, no switches, no links.
  // The problem must outlive the topology.
  explicit Topology(const PlanningProblem& problem);

  const PlanningProblem& problem() const { return *problem_; }

  // --- switches -----------------------------------------------------------
  bool has_switch(NodeId v) const;
  Asil switch_asil(NodeId v) const;  // requires has_switch(v)
  // Adds a new optional switch at ASIL-A; requires !has_switch(v).
  void add_switch(NodeId v);
  // One-level upgrade; requires has_switch(v) and level < D.
  void upgrade_switch(NodeId v);
  std::vector<NodeId> selected_switches() const;

  // --- links / paths ------------------------------------------------------
  // Adds a Gc link; both endpoints must be present (switch endpoints must
  // have been added). Idempotent. Enforces the degree constraints.
  void add_link(NodeId u, NodeId v);
  bool has_link(NodeId u, NodeId v) const;
  // Adds every link along the path (endpoints are end stations or present
  // switches). The combined result must respect the degree constraints.
  void add_path(const Path& path);

  // Degree a node would have if the path were added; used to pre-check the
  // constraints without mutating (SOAG mask computation, Alg. 1 line 9).
  bool path_respects_degrees(const Path& path) const;

  // --- derived properties ---------------------------------------------------
  int degree(NodeId v) const;
  // ASIL of a node: switch allocation, or D for end stations.
  Asil node_asil(NodeId v) const;
  // ASIL of an existing link: min of the endpoint levels.
  Asil link_asil(NodeId u, NodeId v) const;

  // Eq. 1 network cost under the problem's component library.
  double cost() const;

  // Current Gt over the full node id space (absent switches are isolated).
  const Graph& graph() const { return gt_; }

  // Order-independent fingerprint of Gt's link set. The recovery NBF is a
  // pure function of the residual graph — it never reads the ASIL
  // allocation — so two topologies with equal fingerprints produce
  // identical NBF results for every failure scenario. ASIL-upgrade actions
  // leave it unchanged. Maintained eagerly by add_link (no lazy mutable
  // cache: concurrent reads of a shared const Topology are safe).
  GraphFp graph_fingerprint() const { return fp_; }

  // Fingerprint of residual(scenario)'s edge set: graph_fingerprint() minus
  // the contributions of every link incident to a failed node (and of the
  // explicitly failed links). O(sum of failed-node degrees). Together with
  // the failed-node set this is exact cache identity for the NBF's input —
  // the verification engine keys its cross-step verdict memo on the pair.
  GraphFp residual_fingerprint(const FailureScenario& scenario) const;

  // Gt minus the failed components — the graph the recovery NBF routes on.
  Graph residual(const FailureScenario& scenario) const;

 private:
  const PlanningProblem* problem_;
  Graph gt_;
  std::vector<std::optional<Asil>> switch_level_;  // indexed by node id
  GraphFp fp_;
  int max_degree_of(NodeId v) const;
};

// Checkpoint serialization. A topology is stored as its switch allocation
// plus its link set — everything else is derived from the problem, which is
// not persisted: load_topology rebuilds against the caller-supplied problem
// and throws (via the Topology invariants / CheckpointError) when the
// serialized ids do not fit it.
void save_topology(const Topology& topology, ByteWriter& out);
Topology load_topology(const PlanningProblem& problem, ByteReader& in);

}  // namespace nptsn
