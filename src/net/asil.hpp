// Automotive Safety Integrity Levels (ISO 26262), ordered from least (A) to
// most (D) critical. NPTSN allocates one level to every planned switch; link
// levels are derived (min of the adjacent nodes).
#pragma once

#include <array>
#include <string>

namespace nptsn {

enum class Asil : int { A = 0, B = 1, C = 2, D = 3 };

inline constexpr int kNumAsilLevels = 4;
inline constexpr std::array<Asil, kNumAsilLevels> kAllAsil = {Asil::A, Asil::B, Asil::C,
                                                              Asil::D};

// One-level upgrade (A -> B, ...). Requires level < D.
Asil next_level(Asil level);

// Ordering helper: true if a is a (strictly) lower integrity level than b.
inline bool lower_than(Asil a, Asil b) { return static_cast<int>(a) < static_cast<int>(b); }
inline Asil min_level(Asil a, Asil b) { return lower_than(a, b) ? a : b; }

std::string to_string(Asil level);

}  // namespace nptsn
