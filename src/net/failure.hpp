// Failure scenarios Gf: a set of failed (fail-silent) switches and links of
// the planned topology, plus the Eq. 2 occurrence probability.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace nptsn {

class Topology;

struct FailureScenario {
  std::vector<NodeId> failed_switches;  // kept sorted ascending
  std::vector<EdgeKey> failed_links;    // kept sorted

  bool empty() const { return failed_switches.empty() && failed_links.empty(); }
  void normalize();  // sort + dedupe

  // True if every failed switch of this scenario also fails in `other`
  // (switch-only subset test used by the analyzer's superset pruning).
  bool switches_subset_of(const FailureScenario& other) const;

  static FailureScenario none() { return {}; }
  static FailureScenario of_switches(std::vector<NodeId> switches);
};

// Eq. 2: product of the failed components' failure probabilities under the
// topology's ASIL allocation.
double failure_probability(const Topology& topology, const FailureScenario& scenario);

}  // namespace nptsn
