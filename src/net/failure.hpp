// Failure scenarios Gf: a set of failed (fail-silent) switches and links of
// the planned topology, plus the Eq. 2 occurrence probability.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace nptsn {

class Topology;

struct FailureScenario {
  std::vector<NodeId> failed_switches;  // kept sorted ascending
  std::vector<EdgeKey> failed_links;    // kept sorted

  bool empty() const { return failed_switches.empty() && failed_links.empty(); }
  void normalize();  // sort + dedupe

  // Failure order |Gf|: total number of failed components.
  int order() const {
    return static_cast<int>(failed_switches.size() + failed_links.size());
  }

  // True if every failed switch of this scenario also fails in `other`
  // (switch-only subset test used by the analyzer's superset pruning).
  bool switches_subset_of(const FailureScenario& other) const;

  // Componentwise subset test over both switches and links — the pruning
  // relation for mixed link/switch frontiers. residual(this) is a supergraph
  // of residual(other), so a flow state proven on `other` deploys verbatim
  // here (the same run-time deployability argument as switch-only pruning).
  bool subset_of(const FailureScenario& other) const;

  static FailureScenario none() { return {}; }
  static FailureScenario of_switches(std::vector<NodeId> switches);
};

// Eq. 2: product of the failed components' failure probabilities under the
// topology's ASIL allocation.
double failure_probability(const Topology& topology, const FailureScenario& scenario);

}  // namespace nptsn
