#include "net/component_library.hpp"

#include <cmath>
#include <string>

#include "util/expect.hpp"

namespace nptsn {

ComponentLibrary::ComponentLibrary(std::vector<SwitchModel> models,
                                   std::array<double, kNumAsilLevels> link_cost_per_unit,
                                   std::array<double, kNumAsilLevels> failure_prob)
    : models_(std::move(models)),
      link_cost_per_unit_(link_cost_per_unit),
      failure_prob_(failure_prob) {
  NPTSN_EXPECT(!models_.empty(), "library needs at least one switch model");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    NPTSN_EXPECT(models_[i].ports > 0, "switch must have ports");
    if (i > 0) {
      NPTSN_EXPECT(models_[i - 1].ports < models_[i].ports,
                   "switch models must have strictly increasing port counts");
    }
    for (const double c : models_[i].cost) NPTSN_EXPECT(c > 0.0, "switch cost must be positive");
  }
  for (const double c : link_cost_per_unit_) NPTSN_EXPECT(c > 0.0, "link cost must be positive");
  for (const double p : failure_prob_) {
    NPTSN_EXPECT(p > 0.0 && p < 1.0, "failure probability must be in (0, 1)");
  }
}

ComponentLibrary ComponentLibrary::standard() {
  // Table I. Switch cost grows 1.5x per ASIL level, link cost 2x; the values
  // below are the table's entries verbatim.
  std::vector<SwitchModel> models = {
      {4, {8.0, 12.0, 18.0, 27.0}},
      {6, {10.0, 15.0, 22.0, 33.0}},
      {8, {16.0, 24.0, 36.0, 54.0}},
  };
  // Failure probabilities follow the paper's derivation (Section VI-A):
  // exponential failures over 1000 working hours at the ISO 26262 rates,
  // p = 1 - exp(-rate * 1000h), rate(D) = 1e-9/h ... rate(A) = 1e-6/h.
  // The exact values sit just BELOW the rounded 1e-3..1e-6 of Table I; this
  // is what makes a single ASIL-D failure a safe fault at R = 1e-6 ("the
  // minimum value that allows an ASIL-D device to function without a
  // backup") and keeps the manually designed all-D ORION baseline valid.
  std::array<double, kNumAsilLevels> failure_prob{};
  const std::array<double, kNumAsilLevels> rate_per_hour = {1e-6, 1e-7, 1e-8, 1e-9};
  for (std::size_t i = 0; i < failure_prob.size(); ++i) {
    failure_prob[i] = 1.0 - std::exp(-rate_per_hour[i] * 1000.0);
  }
  return ComponentLibrary(std::move(models), {1.0, 2.0, 4.0, 8.0}, failure_prob);
}

double ComponentLibrary::switch_cost(int degree, Asil level) const {
  NPTSN_EXPECT(degree >= 0, "degree must be non-negative");
  for (const auto& model : models_) {
    if (model.ports >= degree) return model.cost[static_cast<std::size_t>(level)];
  }
  NPTSN_EXPECT(false, "no switch model with " + std::to_string(degree) + " ports");
}

double ComponentLibrary::link_cost(Asil level, double length) const {
  NPTSN_EXPECT(length > 0.0, "link length must be positive");
  return link_cost_per_unit_[static_cast<std::size_t>(level)] * length;
}

double ComponentLibrary::failure_prob(Asil level) const {
  return failure_prob_[static_cast<std::size_t>(level)];
}

int ComponentLibrary::max_switch_degree() const { return models_.back().ports; }

}  // namespace nptsn
