// The component library (Table I of the paper): per-ASIL switch cost as a
// function of the port count, per-ASIL link cost per unit length, and the
// per-ASIL component failure probability.
//
// The planner never picks a concrete switch model; it constrains degrees so
// that a feasible model exists and the cost function selects the cheapest
// model with enough ports (csw(deg, ASIL) in the paper).
#pragma once

#include <array>
#include <vector>

#include "net/asil.hpp"

namespace nptsn {

struct SwitchModel {
  int ports = 0;
  // Cost per ASIL level, indexed by static_cast<int>(Asil).
  std::array<double, kNumAsilLevels> cost{};
};

class ComponentLibrary {
 public:
  // models must be non-empty with strictly increasing port counts;
  // link_cost_per_unit / failure_prob indexed by ASIL level.
  ComponentLibrary(std::vector<SwitchModel> models,
                   std::array<double, kNumAsilLevels> link_cost_per_unit,
                   std::array<double, kNumAsilLevels> failure_prob);

  // The library of Table I: 4/6/8-port switches, ASIL-A costs 8/10/16,
  // +1.5x per switch ASIL level (rounded as in the paper's table), link cost
  // 1/2/4/8 per unit, failure probabilities 1e-3 .. 1e-6.
  static ComponentLibrary standard();

  // Cheapest switch with at least `degree` ports at the given level; degree 0
  // (a planned but unconnected switch) maps to the smallest model.
  double switch_cost(int degree, Asil level) const;

  double link_cost(Asil level, double length) const;
  double failure_prob(Asil level) const;

  // Largest port count available — the topology degree constraint.
  int max_switch_degree() const;

  const std::vector<SwitchModel>& models() const { return models_; }

 private:
  std::vector<SwitchModel> models_;
  std::array<double, kNumAsilLevels> link_cost_per_unit_;
  std::array<double, kNumAsilLevels> failure_prob_;
};

}  // namespace nptsn
