// Bounded, prioritized, closeable MPMC queue — the admission edge of the
// planner service (DESIGN.md §13).
//
// Semantics chosen for a long-lived daemon:
//   - bounded: push blocks when the backlog is full, so a flood of
//     submissions exerts backpressure at the edge instead of growing an
//     unbounded heap of serialized problems;
//   - prioritized: pop returns the highest-priority item, FIFO within a
//     priority class (a stable total order — two poppers never disagree on
//     who should have gotten what);
//   - closeable: close() wakes every blocked producer and consumer; pops
//     drain what was already admitted (graceful shutdown), while
//     drain_remaining() hands the undrained backlog back in pop order
//     (cancelling shutdown persists these for a later process).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/expect.hpp"

namespace nptsn {

// Outcome of the non-blocking / bounded-wait push variants. kFull means the
// item was NOT consumed (the caller still owns it and may shed or retry);
// kClosed likewise leaves the item with the caller.
enum class PushResult { kPushed, kFull, kClosed };

template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {
    NPTSN_EXPECT(capacity >= 1, "queue capacity must be positive");
  }

  // Blocks while the queue is full. False when the queue was closed (the
  // item is returned unconsumed in that case only by value semantics — the
  // caller still owns `item`'s moved-from shell; don't close-and-push).
  bool push(T item, int priority) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.emplace(Order{-priority, seq_++}, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: admits only when a slot is free right now. On kFull /
  // kClosed the item is untouched (still owned by the caller) — the admission
  // edge uses this to shed load instead of stalling the submitter.
  PushResult try_push(T& item, int priority) {
    return push_for(item, priority, std::chrono::nanoseconds{0});
  }

  // Bounded-wait push: blocks up to `timeout` for a slot. Returns kFull on
  // timeout and kClosed when the queue closed while waiting; in both cases
  // `item` is untouched. Moves from `item` only on kPushed.
  template <typename Rep, typename Period>
  PushResult push_for(T& item, int priority,
                      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return PushResult::kFull;
    }
    if (closed_) return PushResult::kClosed;
    items_.emplace(Order{-priority, seq_++}, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  // Blocks while the queue is empty and open. nullopt once closed AND
  // drained — the consumer's signal to exit its loop.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    auto first = items_.begin();
    T item = std::move(first->second);
    items_.erase(first);
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Idempotent. Blocked producers return false; consumers drain then stop.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Everything still queued, in pop order. Call after close() once the
  // consumers have stopped popping (cancel-mode shutdown).
  std::vector<T> drain_remaining() {
    std::lock_guard lock(mutex_);
    std::vector<T> remaining;
    remaining.reserve(items_.size());
    for (auto& [order, item] : items_) remaining.push_back(std::move(item));
    items_.clear();
    return remaining;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  // (-priority, admission sequence): map order = pop order.
  using Order = std::pair<int, std::uint64_t>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::map<Order, T> items_;
  std::uint64_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace nptsn
