// Request/response types of the planner service (DESIGN.md §13–14).
//
// Split out of service.hpp so the write-ahead request journal
// (service/journal.hpp) can persist and replay them without depending on the
// service runtime itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nptsn {

struct PlanningRequest {
  // Caller-assigned identity; also names the session's checkpoint file under
  // state_dir, so resubmitting the same id after a cancelling shutdown
  // RESUMES that session. Must be unique among in-flight requests and safe
  // as a file name. The journal deduplicates recovery by (id, problem
  // fingerprint), so a crashed-and-rerun submission of the same id does not
  // double-run.
  std::string id;
  std::string label;  // free-form, echoed in the response
  int priority = 0;   // higher pops sooner within a shard
  // Canonical problem serialization (net/problem.hpp save_problem bytes).
  std::vector<std::uint8_t> problem_bytes;
  // Per-request overrides of the session template; 0 inherits.
  int epochs = 0;
  int steps_per_epoch = 0;
  std::uint64_t seed = 0;
  // Per-request attempt budget for retry-on-fault/deadline (0 inherits
  // ServiceConfig::default_max_attempts). Attempt k failing retryably with
  // k < max_attempts is re-run after bounded exponential backoff.
  int max_attempts = 0;
};

enum class ResponseStatus {
  kPlanned,     // feasible plan returned (and audited clean when configured)
  kInfeasible,  // session completed without a verified solution
  kRejected,    // a solution was found but the independent audit rejected it
  kFaulted,     // the session threw (malformed problem, exhausted retries...)
  kCancelled,   // shutdown cancelled the session before/while it ran
  kOverloaded,  // admission shed the request (bounded queue full); the
                // request was NOT acknowledged and will not be recovered
  kDegraded,    // admission shed the request because the journal cannot
                // reach stable storage (disk full/offline); the request was
                // NOT acknowledged and will not be recovered. Resubmit once
                // the service reports durable again.
};
const char* to_string(ResponseStatus status);

struct PlanningResponse {
  std::string id;
  std::string label;
  ResponseStatus status = ResponseStatus::kFaulted;
  bool feasible = false;
  double best_cost = 0.0;
  std::vector<std::uint8_t> topology_bytes;     // save_topology bytes when feasible
  std::vector<std::uint8_t> certificate_bytes;  // save_certificate bytes when audited
  std::string stopped_reason;  // budget/deadline/divergence stop, when any
  std::string error;           // kFaulted: what the session threw
  int epochs_completed = 0;
  int shard = -1;              // which worker pool ran it
  int attempt = 1;             // which attempt produced this answer
  bool replayed = false;       // answered from the journal, not re-executed
  // False when the answer's terminal record could not reach stable storage
  // (journal degraded at answer time): the response is still correct, but a
  // crash before the journal re-arms may re-execute this request after
  // restart. Stays true when no journal is configured — durability was never
  // promised, so none was lost. See DESIGN.md §15.
  bool durable = true;
  double queue_seconds = 0.0;  // admission -> a worker picked it up
  double plan_seconds = 0.0;   // the plan() call itself
  // Cross-session reuse observed by this session's environments.
  std::int64_t verify_shared_hits = 0;
};

}  // namespace nptsn
