// Write-ahead request journal: crash durability for the planner service
// (DESIGN.md §14).
//
// The service's contract with a caller is made durable here, before it is
// made at all: submit() appends a kAccepted record — written and fsynced to
// the active journal segment — BEFORE the future handle is returned, so an
// acknowledged request survives SIGKILL, OOM-kill, and power loss. Every
// later state transition is journaled as it happens:
//
//   kAccepted   request admitted (full request payload; replayable)
//   kStarted    a worker began attempt N
//   kRetry      attempt N failed retryably; backoff scheduled
//   kDone       terminal: session completed (planned or infeasible), with
//               the full response payload + a result digest
//   kFaulted    terminal: attempts exhausted (or admission shed the request)
//   kRejected   terminal: the independent audit rejected the plan
//
// Record framing: each record is [magic, payload size, FNV-1a 64 checksum,
// payload] appended to a segment file; append = write + fsync. A torn tail
// (crash mid-append) or a bit-flipped record is detected by the checksum and
// DROPPED WITH A WARNING on the next scan — recovery never refuses to start
// over a damaged tail, because refusing would turn one lost record into a
// lost journal.
//
// Recovery semantics (PlannerService wires these up):
//   * at-least-once executed: every acknowledged, non-terminal request is
//     resubmitted on restart (a crash mid-attempt does not consume one of
//     the request's max_attempts — only an observed kRetry does);
//   * exactly-once answered: a kDone/kRejected record short-circuits
//     re-execution — the persisted response is REPLAYED, digest-checked,
//     and (when auditing is configured) re-audited, never recomputed;
//   * idempotent: recovery deduplicates by (request id, 128-bit canonical
//     problem fingerprint), so scanning overlapping segments — e.g. after a
//     crash between compaction publish and cleanup — converges to one state
//     per request.
//
// Segments rotate at segment_bytes; once enough terminal records have been
// delivered to their callers the journal compacts: a snapshot segment
// holding only live (and undelivered-terminal) state is written with the
// same fsync + atomic-rename discipline as util/checkpoint, then the old
// segments are unlinked. A crash anywhere in compaction leaves a scannable,
// merge-consistent journal.
//
// Environmental faults (DESIGN.md §15): every append goes through the
// injectable I/O layer (util/io.hpp). A TRANSIENT error (EINTR storm, EIO
// hiccup, fd pressure) is retried a bounded number of times with backoff; a
// failed write leaves a possibly-torn tail, so the damaged segment is
// ABANDONED (sealed where it stands — its valid prefix still scans) and the
// record re-lands whole in a fresh segment. A PERSISTENT error (ENOSPC,
// EDQUOT, EROFS) — or an exhausted retry budget — moves the journal into an
// explicit DEGRADED state instead of throwing: appends return kDegraded
// immediately, in-memory request state keeps tracking reality, and
// try_rearm() (driven by the service's durability probe) re-opens a fresh
// segment once the disk heals and writes a reconciliation snapshot of every
// entry that mutated while degraded. Reconciliation records overlap the
// pre-fault segments on disk; the recovery scan merges them idempotently, so
// fault -> heal -> restart converges to one state per request. The journal
// NEVER aborts the process over storage trouble after construction.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/problem.hpp"
#include "service/request.hpp"

namespace nptsn {

enum class JournalRecordType : std::uint8_t {
  kAccepted = 1,
  kStarted = 2,
  kRetry = 3,
  kDone = 4,
  kFaulted = 5,
  kRejected = 6,
};
const char* to_string(JournalRecordType type);

// Digest over the answer-defining bytes of a response (status, topology,
// certificate). Stored in terminal records and re-checked on replay, so a
// corrupted-but-checksum-colliding payload still cannot replay a wrong plan.
std::uint64_t response_digest(const PlanningResponse& response);

// One decoded journal record — the unit the chaos tests assert over.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kAccepted;
  std::string id;
  ProblemFp fp{0, 0};
  int attempt = 0;
  // kAccepted
  PlanningRequest request;
  int attempts_used = 0;  // non-zero only in compacted snapshots
  // kRetry
  std::string error;
  double backoff_seconds = 0.0;
  // kDone / kFaulted / kRejected
  PlanningResponse response;
  std::uint64_t digest = 0;
};

struct JournalScan {
  std::vector<JournalRecord> records;  // journal order across segments
  std::vector<std::string> segments;   // scanned files, in sequence order
  std::vector<std::string> warnings;   // torn tails, corrupt records, orphans
};

// Decodes every record in every segment under `dir`, tolerating damage (a
// corrupt or truncated record drops the rest of its segment with a warning).
// Missing directory scans as empty. Exposed for tests and offline tooling.
JournalScan scan_journal(const std::string& dir);

// What a durable append actually achieved. kDurable: the record is on stable
// storage. kDegraded: the journal is (now) degraded — the record lives only
// in memory and the caller must not promise durability for it.
enum class AppendOutcome { kDurable, kDegraded };

class RequestJournal {
 public:
  struct Config {
    std::string dir;
    // Active segment rotates once it exceeds this many bytes.
    std::size_t segment_bytes = std::size_t{4} << 20;
    // Snapshot-compact once this many delivered terminal requests accumulate.
    int compact_min_delivered = 64;
    // Transient-I/O policy: a failed append is retried up to io_retry_attempts
    // times, attempt k backing off io_retry_base_seconds * 2^(k-1), before the
    // failure is escalated to persistent and the journal degrades.
    int io_retry_attempts = 4;
    double io_retry_base_seconds = 0.002;
  };

  // What one journaled request recovered to after a restart.
  struct Recovered {
    PlanningRequest request;
    int attempts_used = 0;  // failed attempts observed before the crash
    bool started = false;   // some attempt began (at-least-once territory)
    // Set for terminal records: the answer to replay instead of re-running.
    std::optional<PlanningResponse> replay;
  };

  // Creates dir if missing, scans existing segments (tolerating torn tails),
  // and opens a fresh active segment. Throws CheckpointError only when the
  // directory itself cannot be created (a configuration error) — storage
  // faults opening the first segment start the journal DEGRADED instead.
  explicit RequestJournal(Config config);
  ~RequestJournal();
  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  // The requests the startup scan found, deduplicated and merged; each is
  // either live (resubmit) or terminal (replay). Clears on the first call.
  std::vector<Recovered> take_recovered();
  // Startup-scan damage diagnostics (empty on a clean journal).
  std::vector<std::string> recovery_warnings() const;

  // Durable appends (write + fsync before returning kDurable). All
  // thread-safe; none of them throw on storage trouble — a persistent fault
  // returns kDegraded instead (see the header comment).
  //
  // append_accepted is special: on kDegraded the request is NOT entered into
  // the journal's state at all (the service sheds it un-acknowledged), so a
  // later re-arm cannot resurrect work whose caller was told "not accepted".
  AppendOutcome append_accepted(const PlanningRequest& request, const ProblemFp& fp);
  AppendOutcome append_started(const std::string& id, int attempt);
  AppendOutcome append_retry(const std::string& id, int attempt, const std::string& error,
                             double backoff_seconds);
  AppendOutcome append_terminal(const PlanningResponse& response, int attempt);

  // The caller-visible answer for `id` was delivered (promise resolved);
  // its terminal record becomes eligible for compaction.
  void acknowledge_delivered(const std::string& id);

  // Degraded-mode surface. durable() flips false when a persistent fault (or
  // an exhausted transient-retry budget) stops appends from reaching disk.
  bool durable() const;
  std::string degraded_reason() const;
  // One probe + reconcile pass: re-opens a fresh active segment, fsyncs it,
  // and re-journals every entry that mutated while degraded (idempotent
  // against the pre-fault segments). True when the journal is durable again
  // (including when it never degraded); false keeps it degraded for the next
  // probe. Thread-safe; cheap no-op when already durable.
  bool try_rearm();

  struct Stats {
    std::int64_t appends = 0;
    std::int64_t rotations = 0;
    std::int64_t compactions = 0;
    std::int64_t live = 0;       // accepted, not yet terminal
    std::int64_t undelivered = 0;  // terminal, answer not yet delivered
    // Environmental-fault accounting.
    std::int64_t io_retries = 0;          // transient failures retried
    std::int64_t segments_abandoned = 0;  // torn tails sealed off mid-append
    std::int64_t close_errors = 0;        // deferred errors surfaced by close
    std::int64_t degraded_entered = 0;    // durability losses
    std::int64_t rearms = 0;              // successful probe + reconcile passes
    std::int64_t reconciled = 0;          // entries re-journaled by rearms
    bool degraded = false;
  };
  Stats stats() const;

  // The on-disk segment files (sealed + active) with their current sizes —
  // surfaced by the service stats dump. Unreadable entries report size 0.
  std::vector<std::pair<std::string, std::uint64_t>> segment_sizes() const;

  const std::string& dir() const { return config_.dir; }

 private:
  struct Entry {
    PlanningRequest request;
    ProblemFp fp{0, 0};
    int attempts_used = 0;
    bool started = false;
    std::optional<PlanningResponse> terminal;
    int terminal_attempt = 0;
    bool delivered = false;
    // Mutated while degraded (its records never reached disk): try_rearm
    // re-journals it and clears the flag.
    bool dirty = false;
  };

  bool open_active_segment(int* err);               // requires mutex_
  void abandon_active_segment();                    // requires mutex_
  void enter_degraded(const std::string& reason);   // requires mutex_
  AppendOutcome append_record(const std::vector<std::uint8_t>& payload);  // requires mutex_
  void maybe_compact();                             // requires mutex_
  void apply(const JournalRecord& record, std::vector<std::string>* warnings);
  std::vector<std::vector<std::uint8_t>> encode_entry_records(
      const std::string& id, const Entry& entry) const;

  Config config_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> scan_warnings_;
  bool recovered_taken_ = false;
  std::uint64_t active_seq_ = 0;
  int active_fd_ = -1;
  std::size_t active_bytes_ = 0;
  std::vector<std::pair<std::uint64_t, std::string>> sealed_segments_;
  bool degraded_ = false;
  std::string degraded_reason_;
  Stats stats_;
};

}  // namespace nptsn
