#include "service/crash_point.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <mutex>

namespace nptsn {
namespace {

// Fast-path gate: crash_point() bails on one relaxed load while disarmed.
std::atomic<bool> g_armed{false};

std::mutex g_mutex;  // guards everything below
std::string g_name;
int g_at_hit = 0;
int g_hits = 0;
std::function<void(const char*)> g_hook;

}  // namespace

void crash_point(const char* name) {
  if (!g_armed.load(std::memory_order_relaxed)) return;

  std::function<void(const char*)> hook;
  {
    std::lock_guard lock(g_mutex);
    if (g_at_hit <= 0 || g_name != name) return;
    if (++g_hits != g_at_hit) return;
    hook = g_hook;
  }
  if (hook) {
    hook(name);
    return;
  }
  // Die the hard way: no unwinding, no atexit, no buffered-stream flushing
  // beyond this diagnostic — the closest user-space stand-in for power loss.
  std::fprintf(stderr, "crash point fired: %s\n", name);
  std::fflush(stderr);
  ::raise(SIGKILL);
  std::abort();  // unreachable unless SIGKILL is somehow blocked
}

void arm_crash_point(const std::string& name, int at_hit) {
  std::lock_guard lock(g_mutex);
  g_name = name;
  g_at_hit = at_hit;
  g_hits = 0;
  g_armed.store(at_hit > 0, std::memory_order_relaxed);
}

void disarm_crash_points() {
  std::lock_guard lock(g_mutex);
  g_name.clear();
  g_at_hit = 0;
  g_hits = 0;
  g_armed.store(false, std::memory_order_relaxed);
}

bool arm_crash_point_from_env() {
  const char* spec = std::getenv("NPTSN_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return false;
  std::string name = spec;
  int at_hit = 1;
  const std::size_t at = name.rfind('@');
  if (at != std::string::npos) {
    at_hit = std::atoi(name.c_str() + at + 1);
    name.resize(at);
  }
  if (name.empty() || at_hit <= 0) return false;
  arm_crash_point(name, at_hit);
  return true;
}

void set_crash_point_hook(std::function<void(const char*)> hook) {
  std::lock_guard lock(g_mutex);
  g_hook = std::move(hook);
}

const std::vector<std::string>& known_crash_points() {
  static const std::vector<std::string> points = {
      "journal.append.before_write",   // record not yet on disk
      "journal.append.after_write",    // written but not fsynced (torn-tail risk)
      "journal.append.after_fsync",    // durable, caller not yet told
      "journal.compact.before_publish",  // snapshot tmp written, not renamed
      "journal.compact.after_publish",   // snapshot live, old segments remain
      "journal.compact.after_cleanup",   // compaction complete
      "service.accept.after_journal",  // kAccepted durable, not yet queued
      "service.start.after_journal",   // kStarted durable, session not yet run
      "service.terminal.before_journal",  // session finished, terminal not durable
      "service.answer.before_set",     // terminal durable, promise not yet set
  };
  return points;
}

}  // namespace nptsn
