// Planning-as-a-service runtime (DESIGN.md §13).
//
// A long-lived planner process: callers submit serialized PlanningProblems
// (the canonical save_problem bytes) into a bounded, prioritized queue;
// sharded worker pools run each request as a full plan-train-audit session
// under its own cooperative Deadline envelope; and one set of cross-session
// stores — the engine verdict/outcome cache, the staged-adjacency cache, and
// the warm-start policy store — is installed into every session's config, so
// warm state survives session boundaries.
//
// Fault isolation: a session is one plan() call. Every throw a session can
// produce (malformed bytes, validation errors, NBF faults that exhaust the
// trainer's retries) is caught at the worker boundary and returned as a
// kFaulted response; the worker, its shard, and the other in-flight sessions
// keep running. Nothing a request contains can take the service down.
//
// Graceful shutdown: kDrain closes admission and finishes the backlog;
// kCancel additionally fires every in-flight session's deadline token
// (Deadline::cancel), so each session unwinds through the trainer's
// clean-stop path — persisting a resumable checkpoint when a state_dir is
// configured (checkpoint_on_stop) — and the untouched backlog is handed back
// via unprocessed() for the caller to persist.
//
// Determinism: the exact shared caches never change a session's result —
// plans, certificates, and training trajectories are bit-identical with
// shared_caches on or off (differential-tested in tests/service). Warm-start
// is the documented exception and stays opt-in.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine_cache.hpp"
#include "core/config.hpp"
#include "nn/stage_cache.hpp"
#include "rl/warm_start.hpp"
#include "service/queue.hpp"
#include "util/deadline.hpp"

namespace nptsn {

struct PlanningRequest {
  // Caller-assigned identity; also names the session's checkpoint file under
  // state_dir, so resubmitting the same id after a cancelling shutdown
  // RESUMES that session. Must be unique among in-flight requests and safe
  // as a file name.
  std::string id;
  std::string label;  // free-form, echoed in the response
  int priority = 0;   // higher pops sooner within a shard
  // Canonical problem serialization (net/problem.hpp save_problem bytes).
  std::vector<std::uint8_t> problem_bytes;
  // Per-request overrides of the session template; 0 inherits.
  int epochs = 0;
  int steps_per_epoch = 0;
  std::uint64_t seed = 0;
};

enum class ResponseStatus {
  kPlanned,     // feasible plan returned (and audited clean when configured)
  kInfeasible,  // session completed without a verified solution
  kRejected,    // a solution was found but the independent audit rejected it
  kFaulted,     // the session threw (malformed problem, exhausted retries...)
  kCancelled,   // shutdown cancelled the session before/while it ran
};
const char* to_string(ResponseStatus status);

struct PlanningResponse {
  std::string id;
  std::string label;
  ResponseStatus status = ResponseStatus::kFaulted;
  bool feasible = false;
  double best_cost = 0.0;
  std::vector<std::uint8_t> topology_bytes;     // save_topology bytes when feasible
  std::vector<std::uint8_t> certificate_bytes;  // save_certificate bytes when audited
  std::string stopped_reason;  // budget/deadline/divergence stop, when any
  std::string error;           // kFaulted: what the session threw
  int epochs_completed = 0;
  int shard = -1;              // which worker pool ran it
  double queue_seconds = 0.0;  // admission -> a worker picked it up
  double plan_seconds = 0.0;   // the plan() call itself
  // Cross-session reuse observed by this session's environments.
  std::int64_t verify_shared_hits = 0;
};

struct ServiceConfig {
  // Worker topology: shards * workers_per_shard session slots. Requests are
  // routed to a shard by problem fingerprint, so repeated submissions of the
  // same problem serialize onto one shard's queue (back-to-back sessions on
  // one problem hit the caches hardest); distinct problems spread.
  int shards = 1;
  int workers_per_shard = 1;
  std::size_t queue_capacity = 64;  // per shard

  // Install the exact cross-session stores (engine cache + stage cache).
  bool shared_caches = true;
  EngineSharedCache::Config engine_cache;
  std::size_t stage_cache_bytes = std::size_t{64} << 20;
  // Opt into warm-started policy weights (NOT result-preserving; see
  // rl/warm_start.hpp). Installs the policy store and sets warm_start on
  // every session.
  bool warm_start = false;
  std::size_t policy_store_bytes = std::size_t{256} << 20;

  // Session template: every request's NptsnConfig starts from this (the
  // request may override epochs/steps/seed). The template's deadline and
  // cache/store fields are ignored — the service installs its own.
  NptsnConfig session;
  // Per-session cooperative budget (0 = unlimited). A fresh Deadline token
  // is minted per session either way, so shutdown(kCancel) can always fire.
  double session_wall_seconds = 0.0;
  std::int64_t session_max_ticks = 0;

  // When non-empty: per-session checkpoints land at <state_dir>/<id>.ckpt,
  // sessions checkpoint on early stops (checkpoint_on_stop), and a session
  // resumed under the same id continues from its persisted state. Created if
  // missing.
  std::string state_dir;
};

class PlannerService {
 public:
  explicit PlannerService(ServiceConfig config);
  // Cancelling shutdown if the caller never shut down explicitly.
  ~PlannerService();
  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  // Admits a request (blocking while the target shard's queue is full) and
  // returns the future response. Throws std::runtime_error after shutdown;
  // throws ValidationError on an empty id or empty problem bytes.
  std::future<PlanningResponse> submit(PlanningRequest request);

  enum class Shutdown { kDrain, kCancel };
  // Idempotent. kDrain: stop admitting, finish the backlog, join workers.
  // kCancel: stop admitting, fire every in-flight session's deadline, join,
  // and resolve the unstarted backlog as kCancelled (see unprocessed()).
  void shutdown(Shutdown mode);

  // Requests that were admitted but never started (only ever non-empty
  // after shutdown(kCancel)); the caller persists these for a later process.
  std::vector<PlanningRequest> unprocessed();

  struct Counters {
    std::int64_t submitted = 0;
    std::int64_t planned = 0;
    std::int64_t infeasible = 0;
    std::int64_t rejected = 0;
    std::int64_t faulted = 0;
    std::int64_t cancelled = 0;
  };
  Counters counters() const;

  // The installed cross-session stores (null when disabled) — for
  // instrumentation and tests.
  const std::shared_ptr<EngineSharedCache>& engine_cache() const { return engine_cache_; }
  const std::shared_ptr<AdjacencyStageCache>& stage_cache() const { return stage_cache_; }
  const std::shared_ptr<PolicyStore>& policy_store() const { return policy_store_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Ticket {
    PlanningRequest request;
    std::promise<PlanningResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    BoundedPriorityQueue<Ticket> queue;
    std::vector<std::thread> workers;
  };

  void worker_loop(int shard_index);
  // One full session; never throws (faults become kFaulted responses).
  PlanningResponse run_session(const PlanningRequest& request, int shard_index,
                               const std::shared_ptr<Deadline>& deadline);
  void resolve_cancelled(Ticket ticket, bool record_unprocessed);
  void count(ResponseStatus status);

  ServiceConfig config_;
  std::shared_ptr<EngineSharedCache> engine_cache_;
  std::shared_ptr<AdjacencyStageCache> stage_cache_;
  std::shared_ptr<PolicyStore> policy_store_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> cancelling_{false};
  std::atomic<bool> joined_{false};
  mutable std::mutex state_mutex_;  // guards inflight_, unprocessed_, counters_
  std::vector<std::pair<std::string, std::shared_ptr<Deadline>>> inflight_;
  std::vector<PlanningRequest> unprocessed_;
  Counters counters_;
  std::mutex shutdown_mutex_;  // serializes shutdown() callers
};

}  // namespace nptsn
