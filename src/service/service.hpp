// Planning-as-a-service runtime (DESIGN.md §13–14).
//
// A long-lived planner process: callers submit serialized PlanningProblems
// (the canonical save_problem bytes) into a bounded, prioritized queue;
// sharded worker pools run each request as a full plan-train-audit session
// under its own cooperative Deadline envelope; and one set of cross-session
// stores — the engine verdict/outcome cache, the staged-adjacency cache, and
// the warm-start policy store — is installed into every session's config, so
// warm state survives session boundaries.
//
// Fault isolation: a session is one plan() call. Every throw a session can
// produce (malformed bytes, validation errors, NBF faults that exhaust the
// trainer's retries) is caught at the worker boundary and returned as a
// kFaulted response; the worker, its shard, and the other in-flight sessions
// keep running. Nothing a request contains can take the service down.
//
// Crash durability (service/journal.hpp): with journal_dir configured every
// submit appends a fsynced kAccepted record BEFORE the future is returned,
// every attempt start / retry / terminal outcome is journaled as it happens,
// and a restarted service recovers: non-terminal requests re-execute
// (at-least-once), terminal ones replay their persisted answer without
// re-running (exactly-once answered). A torn journal tail is dropped with a
// warning, never a refusal to start.
//
// Retry: a kFaulted or deadline-expired session re-runs up to the request's
// max_attempts, spaced by bounded exponential backoff with deterministic
// (seeded) jitter; per-request checkpoints under state_dir make each retry a
// resume rather than a restart. Backpressure: try_submit / submit_within
// shed with an explicit kOverloaded response instead of blocking forever.
//
// Graceful shutdown: kDrain closes admission and finishes the backlog
// (pending retries run immediately, skipping their remaining backoff);
// kCancel additionally fires every in-flight session's deadline token
// (Deadline::cancel), so each session unwinds through the trainer's
// clean-stop path — persisting a resumable checkpoint when a state_dir is
// configured (checkpoint_on_stop) — and the untouched backlog is handed back
// via unprocessed() for the caller to persist. Cancelled sessions are never
// journaled as terminal, so a journaled service recovers them on restart.
//
// Determinism: the exact shared caches never change a session's result —
// plans, certificates, and training trajectories are bit-identical with
// shared_caches on or off (differential-tested in tests/service). Warm-start
// is the documented exception and stays opt-in.
//
// Environmental faults (DESIGN.md §15): storage trouble never takes the
// service down. When the journal exhausts its transient-retry budget or hits
// a persistent error (ENOSPC, EROFS...), it DEGRADES: in-flight sessions
// complete and answer — flagged response.durable == false — while new
// submissions are shed with kDegraded instead of being acknowledged into a
// journal that cannot hold them. A background durability probe re-arms the
// journal once the disk heals (re-journaling everything that mutated while
// degraded), after which a restart converges to exactly the answered state.
//
// Liveness: sessions are cooperative, but a request can wedge a worker in
// code that never polls its Deadline. With watchdog_grace > 0 a watchdog
// thread cancels any session that overruns session_wall_seconds by the grace
// factor; a session that STILL does not return within another grace window
// is declared wedged — its shard is quarantined (new work routes to healthy
// shards, its backlog is rerouted) until the wedged session finally returns.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine_cache.hpp"
#include "core/config.hpp"
#include "nn/stage_cache.hpp"
#include "rl/warm_start.hpp"
#include "service/journal.hpp"
#include "service/queue.hpp"
#include "service/request.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace nptsn {

struct ServiceConfig {
  // Worker topology: shards * workers_per_shard session slots. Requests are
  // routed to a shard by problem fingerprint, so repeated submissions of the
  // same problem serialize onto one shard's queue (back-to-back sessions on
  // one problem hit the caches hardest); distinct problems spread.
  int shards = 1;
  int workers_per_shard = 1;
  std::size_t queue_capacity = 64;  // per shard

  // Install the exact cross-session stores (engine cache + stage cache).
  bool shared_caches = true;
  EngineSharedCache::Config engine_cache;
  std::size_t stage_cache_bytes = std::size_t{64} << 20;
  // Opt into warm-started policy weights (NOT result-preserving; see
  // rl/warm_start.hpp). Installs the policy store and sets warm_start on
  // every session.
  bool warm_start = false;
  std::size_t policy_store_bytes = std::size_t{256} << 20;

  // Session template: every request's NptsnConfig starts from this (the
  // request may override epochs/steps/seed). The template's deadline and
  // cache/store fields are ignored — the service installs its own.
  NptsnConfig session;
  // Per-session cooperative budget (0 = unlimited). A fresh Deadline token
  // is minted per session either way, so shutdown(kCancel) can always fire.
  double session_wall_seconds = 0.0;
  std::int64_t session_max_ticks = 0;

  // When non-empty: per-session checkpoints land at <state_dir>/<id>.ckpt,
  // sessions checkpoint on early stops (checkpoint_on_stop), and a session
  // resumed under the same id continues from its persisted state. Created if
  // missing.
  std::string state_dir;

  // When non-empty: the write-ahead request journal lives here and the
  // service recovers journaled requests on construction (take_recovered()).
  std::string journal_dir;
  std::size_t journal_segment_bytes = std::size_t{4} << 20;
  int journal_compact_min_delivered = 64;
  // Transient-I/O retry policy handed to the journal (see RequestJournal::
  // Config) and the cadence of the durability probe that re-arms a degraded
  // journal once its storage heals.
  int journal_io_retry_attempts = 4;
  double journal_io_retry_base_seconds = 0.002;
  double durability_probe_seconds = 0.25;
  // Re-run the independent auditor over replayed kPlanned answers before
  // handing them out, so a recovered result is never weaker than a fresh one.
  bool audit_replays = true;

  // Retry policy for kFaulted / deadline-expired sessions. Attempt k waits
  // min(retry_max_seconds, retry_base_seconds * 2^(k-1)) scaled by a
  // deterministic jitter in [1, 1 + retry_jitter) before re-running.
  // Requests with max_attempts == 0 inherit default_max_attempts.
  int default_max_attempts = 1;
  double retry_base_seconds = 0.05;
  double retry_max_seconds = 2.0;
  double retry_jitter = 0.25;
  std::uint64_t retry_seed = 0x9e3779b97f4a7c15ull;

  // Stuck-session watchdog (0 disables; requires session_wall_seconds > 0).
  // A session still running after session_wall_seconds * watchdog_grace gets
  // its deadline token cancelled by force; one more grace window without
  // returning marks the worker wedged and quarantines its shard. Grace < 1
  // would cancel sessions that are merely slow, so values are >= 1 (enforced
  // at construction).
  double watchdog_grace = 0.0;
  double watchdog_poll_seconds = 0.02;
};

class PlannerService {
 public:
  explicit PlannerService(ServiceConfig config);
  // Cancelling shutdown if the caller never shut down explicitly.
  ~PlannerService();
  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  // Admits a request (blocking while the target shard's queue is full) and
  // returns the future response. With a journal configured the request is
  // durable before this returns. Throws std::runtime_error after shutdown;
  // throws ValidationError on an empty id or empty problem bytes.
  std::future<PlanningResponse> submit(PlanningRequest request);
  // Non-blocking admission: when the target shard's queue is full RIGHT NOW
  // the request is shed — the returned future is already resolved with
  // kOverloaded (and the journal records the shed, so the request is NOT
  // resurrected on restart).
  std::future<PlanningResponse> try_submit(PlanningRequest request);
  // Bounded-wait admission: like submit, but sheds with kOverloaded once
  // `timeout_seconds` elapse without a queue slot.
  std::future<PlanningResponse> submit_within(PlanningRequest request,
                                              double timeout_seconds);

  // What the journal recovered at construction. Replayed sessions carry a
  // ready future (the persisted, digest-checked, optionally re-audited
  // answer); live ones were resubmitted and resolve when their session runs.
  // Clears on first call. Empty without a journal.
  struct RecoveredSession {
    PlanningRequest request;
    std::future<PlanningResponse> response;
    bool replayed = false;
  };
  std::vector<RecoveredSession> take_recovered();
  // Damage diagnostics from the recovery scan (torn tails, corrupt records).
  std::vector<std::string> recovery_warnings() const;

  enum class Shutdown { kDrain, kCancel };
  // Idempotent. kDrain: stop admitting, finish the backlog (queued retries
  // run immediately), join workers. kCancel: stop admitting, fire every
  // in-flight session's deadline, join, and resolve the unstarted backlog —
  // including backoff-pending retries — as kCancelled (see unprocessed()).
  void shutdown(Shutdown mode);

  // Requests that were admitted but never started (only ever non-empty
  // after shutdown(kCancel)); the caller persists these for a later process.
  // With a journal these are also still live in the journal and recover on
  // the next construction over the same journal_dir.
  std::vector<PlanningRequest> unprocessed();

  struct Counters {
    std::int64_t submitted = 0;
    std::int64_t planned = 0;
    std::int64_t infeasible = 0;
    std::int64_t rejected = 0;
    std::int64_t faulted = 0;
    std::int64_t cancelled = 0;
    std::int64_t overloaded = 0;  // shed at admission
    std::int64_t retried = 0;     // attempts re-scheduled after a retryable failure
    std::int64_t recovered = 0;   // live requests resubmitted from the journal
    std::int64_t replayed = 0;    // terminal answers replayed from the journal
    // Environmental-fault accounting (DESIGN.md §15).
    std::int64_t degraded = 0;     // shed at admission: journal not durable
    std::int64_t non_durable = 0;  // answers delivered with durable == false
    std::int64_t rearmed = 0;      // probe passes that restored durability
    std::int64_t watchdog_cancels = 0;  // sessions force-cancelled for overrun
    std::int64_t wedged = 0;       // sessions that ignored the forced cancel
    std::int64_t unwedged = 0;     // wedged sessions that eventually returned
    std::int64_t rerouted = 0;     // queued requests moved off a quarantined shard
  };
  Counters counters() const;

  // Point-in-time operational snapshot — everything the SIGUSR1 stats dump
  // prints (tools/nptsn_serve.cpp) and the soak assertions read.
  struct ShardSnapshot {
    std::size_t queue_depth = 0;
    int wedged_sessions = 0;
    bool quarantined = false;
  };
  struct ServiceStats {
    std::vector<ShardSnapshot> shards;
    std::size_t inflight = 0;       // sessions currently running
    std::size_t retry_backlog = 0;  // retries waiting out their backoff
    Counters counters;
    bool journal_configured = false;
    bool durable = true;  // true when no journal is configured (nothing to lose)
    std::string degraded_reason;
    RequestJournal::Stats journal;  // zeroes when no journal is configured
    std::vector<std::pair<std::string, std::uint64_t>> journal_segments;
  };
  ServiceStats stats() const;

  // The installed cross-session stores (null when disabled) — for
  // instrumentation and tests.
  const std::shared_ptr<EngineSharedCache>& engine_cache() const { return engine_cache_; }
  const std::shared_ptr<AdjacencyStageCache>& stage_cache() const { return stage_cache_; }
  const std::shared_ptr<PolicyStore>& policy_store() const { return policy_store_; }
  const RequestJournal* journal() const { return journal_.get(); }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Ticket {
    PlanningRequest request;
    std::promise<PlanningResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    int attempt = 1;  // 1-based; >1 for retries and crash-recovered re-runs
  };
  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    BoundedPriorityQueue<Ticket> queue;
    std::vector<std::thread> workers;
    // Lock-free so shard_for can route around a quarantined shard without
    // taking state_mutex_; wedged_sessions is guarded by state_mutex_.
    std::atomic<bool> quarantined{false};
    int wedged_sessions = 0;
  };
  // One running session, as the watchdog sees it.
  struct Inflight {
    std::string id;
    std::shared_ptr<Deadline> deadline;
    std::chrono::steady_clock::time_point started;
    int shard_index = 0;
    bool watchdog_cancelled = false;
    std::chrono::steady_clock::time_point cancelled_at{};
    bool wedged = false;
  };
  enum class Admission { kBlock, kTry, kTimed };

  std::future<PlanningResponse> submit_impl(PlanningRequest request, Admission mode,
                                            double timeout_seconds);
  void worker_loop(int shard_index);
  // One full session; never throws (faults become kFaulted responses).
  PlanningResponse run_session(const PlanningRequest& request, int shard_index,
                               const std::shared_ptr<Deadline>& deadline);
  int shard_for(const ProblemFp& fp) const;
  int max_attempts_for(const PlanningRequest& request) const;
  bool retryable(const PlanningResponse& response) const;
  // Hands the failed attempt to the retry scheduler (or resolves it if the
  // scheduler is already stopped). ticket.attempt is the attempt that FAILED.
  void schedule_retry(Ticket ticket, int shard_index, PlanningResponse failed);
  void retry_loop();
  // Journal + deliver one terminal response (the single exit path a worker
  // uses): journal terminal -> resolve promise -> acknowledge delivery.
  void finish_ticket(Ticket ticket, PlanningResponse response);
  void replay_recovered(RequestJournal::Recovered item);
  void resubmit_recovered(RequestJournal::Recovered item);
  void resolve_cancelled(Ticket ticket, bool record_unprocessed);
  void count(ResponseStatus status);
  // Background threads: the durability probe re-arms a degraded journal; the
  // watchdog cancels/wedges overrunning sessions and reroutes quarantined
  // shards' backlogs to healthy ones.
  void probe_loop();
  void watchdog_loop();
  void reroute_shard(int shard_index);

  ServiceConfig config_;
  std::shared_ptr<EngineSharedCache> engine_cache_;
  std::shared_ptr<AdjacencyStageCache> stage_cache_;
  std::shared_ptr<PolicyStore> policy_store_;
  std::unique_ptr<RequestJournal> journal_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> cancelling_{false};
  std::atomic<bool> joined_{false};
  mutable std::mutex state_mutex_;  // guards inflight_, unprocessed_, counters_,
                                    // and Shard::wedged_sessions
  std::vector<Inflight> inflight_;
  std::vector<PlanningRequest> unprocessed_;
  Counters counters_;
  std::mutex shutdown_mutex_;  // serializes shutdown() callers

  // Shared stop signal of the probe and watchdog threads.
  std::mutex background_mutex_;
  std::condition_variable background_cv_;
  bool background_stop_ = false;
  std::thread probe_thread_;
  std::thread watchdog_thread_;

  // Retry scheduler: a dedicated thread sleeps until the earliest due ticket
  // and feeds it back into its shard's queue.
  struct PendingRetry {
    std::chrono::steady_clock::time_point due;
    Ticket ticket;
    int shard_index = 0;
  };
  mutable std::mutex retry_mutex_;  // guards retry_heap_, retry_stop_, retry_rng_
  std::condition_variable retry_cv_;
  std::vector<PendingRetry> retry_heap_;  // min-heap by due
  bool retry_stop_ = false;
  Rng retry_rng_;
  std::thread retry_thread_;

  std::vector<RecoveredSession> recovered_;  // filled at construction
};

}  // namespace nptsn
