// Crash-point injection for the chaos-kill harness (DESIGN.md §14).
//
// The durability claims of the request journal — "an acknowledged request is
// never lost, a finished request is never re-executed" — are only worth
// stating if the process actually dies at the worst possible instants and
// comes back whole. Named crash points are compiled into the journal append /
// compaction / answer paths; disarmed they cost one relaxed atomic load.
//
// Two arming modes:
//   * process mode (the chaos tests' out-of-process harness): the daemon
//     arms from the NPTSN_CRASH_POINT environment variable and the N-th hit
//     of the named point kills the process with SIGKILL — no unwinding, no
//     destructors, exactly the power-loss the journal must survive;
//   * hook mode (in-process tests): set_crash_point_hook intercepts every
//     hit, so a unit test can observe ordering or throw InjectedFault-style
//     exceptions without dying.
//
// Arming is test-only by construction: nothing in production paths sets the
// environment variable or a hook, so every NPTSN_CRASH_POINT() is inert.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace nptsn {

// Announces a named crash point. No-op unless armed (one relaxed atomic load
// on the fast path). When the armed point's hit count is reached the process
// is SIGKILLed (or the installed hook runs instead).
void crash_point(const char* name);

// Arms `name` to fire on its `at_hit`-th crossing (1-based). Replaces any
// previous arming. at_hit <= 0 disarms.
void arm_crash_point(const std::string& name, int at_hit = 1);
void disarm_crash_points();

// Reads NPTSN_CRASH_POINT ("name" or "name@hit") and arms accordingly.
// Returns true when a point was armed. The serve daemon calls this at boot so
// the chaos harness can plant crashes inside a real process.
bool arm_crash_point_from_env();

// In-process interception: when set, the hook runs on the armed point's
// firing instead of SIGKILL (it may throw). Cleared with nullptr.
void set_crash_point_hook(std::function<void(const char*)> hook);

// The compiled-in crash point names, for harnesses that randomize over them.
const std::vector<std::string>& known_crash_points();

}  // namespace nptsn
