#include "service/service.hpp"

#include <chrono>
#include <filesystem>

#include "analysis/certificate.hpp"
#include "core/planner.hpp"
#include "net/problem.hpp"
#include "net/topology.hpp"
#include "tsn/recovery.hpp"
#include "util/expect.hpp"

namespace nptsn {
namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; a leftover file is benign
}

}  // namespace

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kPlanned: return "planned";
    case ResponseStatus::kInfeasible: return "infeasible";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kFaulted: return "faulted";
    case ResponseStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

PlannerService::PlannerService(ServiceConfig config) : config_(std::move(config)) {
  NPTSN_EXPECT(config_.shards >= 1, "service needs at least one shard");
  NPTSN_EXPECT(config_.workers_per_shard >= 1, "service needs at least one worker per shard");
  NPTSN_EXPECT(config_.queue_capacity >= 1, "service queue capacity must be positive");
  NPTSN_EXPECT(config_.session_wall_seconds >= 0.0 && config_.session_max_ticks >= 0,
               "session budgets must be non-negative");

  if (config_.shared_caches) {
    engine_cache_ = std::make_shared<EngineSharedCache>(config_.engine_cache);
    stage_cache_ = std::make_shared<AdjacencyStageCache>(config_.stage_cache_bytes);
  }
  if (config_.warm_start) {
    policy_store_ = std::make_shared<PolicyStore>(config_.policy_store_bytes);
  }
  if (!config_.state_dir.empty()) {
    std::filesystem::create_directories(config_.state_dir);
  }

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
  for (int s = 0; s < config_.shards; ++s) {
    for (int w = 0; w < config_.workers_per_shard; ++w) {
      shards_[static_cast<std::size_t>(s)]->workers.emplace_back(
          [this, s] { worker_loop(s); });
    }
  }
}

PlannerService::~PlannerService() { shutdown(Shutdown::kCancel); }

std::future<PlanningResponse> PlannerService::submit(PlanningRequest request) {
  if (request.id.empty()) throw ValidationError("planning request needs an id");
  if (request.problem_bytes.empty()) {
    throw ValidationError("planning request needs serialized problem bytes");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    throw std::runtime_error("planner service is shut down");
  }

  Ticket ticket;
  ticket.request = std::move(request);
  ticket.enqueued = std::chrono::steady_clock::now();
  std::future<PlanningResponse> future = ticket.promise.get_future();

  // Route by problem fingerprint: resubmissions of the same problem land on
  // the same shard (and so behind each other), which is exactly where the
  // cross-session caches pay off; distinct problems spread across shards.
  const ProblemFp fp = problem_fingerprint128(ticket.request.problem_bytes);
  const int shard_index = static_cast<int>(fp.a % static_cast<std::uint64_t>(
                                                      shards_.size()));
  const int priority = ticket.request.priority;
  {
    std::lock_guard lock(state_mutex_);
    ++counters_.submitted;
  }
  if (!shards_[static_cast<std::size_t>(shard_index)]->queue.push(std::move(ticket),
                                                                  priority)) {
    // Closed while we were blocked on a full queue.
    throw std::runtime_error("planner service is shut down");
  }
  return future;
}

void PlannerService::worker_loop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  while (auto ticket = shard.queue.pop()) {
    if (cancelling_.load(std::memory_order_acquire)) {
      resolve_cancelled(std::move(*ticket), /*record_unprocessed=*/true);
      continue;
    }
    const auto picked = std::chrono::steady_clock::now();

    // Every session gets its own cooperative token — even with no budgets
    // configured — so a cancelling shutdown can always reach it.
    auto deadline =
        Deadline::after(config_.session_wall_seconds, config_.session_max_ticks);
    {
      std::lock_guard lock(state_mutex_);
      inflight_.emplace_back(ticket->request.id, deadline);
    }
    // Closes the pop-to-register race with shutdown(kCancel): either the
    // canceller saw our registration, or we see its flag here.
    if (cancelling_.load(std::memory_order_acquire)) {
      deadline->cancel("cancelled: service shutting down");
    }

    PlanningResponse response = run_session(ticket->request, shard_index, deadline);
    response.queue_seconds = seconds_between(ticket->enqueued, picked);

    {
      std::lock_guard lock(state_mutex_);
      std::erase_if(inflight_, [&](const auto& entry) {
        return entry.second.get() == deadline.get();
      });
    }
    count(response.status);
    ticket->promise.set_value(std::move(response));
  }
}

PlanningResponse PlannerService::run_session(const PlanningRequest& request,
                                             int shard_index,
                                             const std::shared_ptr<Deadline>& deadline) {
  PlanningResponse response;
  response.id = request.id;
  response.label = request.label;
  response.shard = shard_index;

  std::string checkpoint_path;
  const auto start = std::chrono::steady_clock::now();
  try {
    PlanningProblem problem = problem_from_bytes(request.problem_bytes);
    problem.validate();

    NptsnConfig session = config_.session;
    if (request.epochs > 0) session.epochs = request.epochs;
    if (request.steps_per_epoch > 0) session.steps_per_epoch = request.steps_per_epoch;
    if (request.seed != 0) session.seed = request.seed;
    session.deadline = deadline;
    session.engine_shared_cache = engine_cache_;
    session.stage_cache = stage_cache_;
    session.policy_store = policy_store_;
    session.warm_start = config_.warm_start && policy_store_ != nullptr;
    // All service sessions run the same default-constructed NBF below, so
    // the default salt is sound; certificates travel in-band, not as files.
    session.cache_salt = 0;
    session.certificate_path.clear();
    if (!config_.state_dir.empty()) {
      checkpoint_path = config_.state_dir + "/" + request.id + ".ckpt";
      session.checkpoint_path = checkpoint_path;
      session.checkpoint_on_stop = true;
    }

    const HeuristicRecovery nbf;
    const PlanningResult result = plan(problem, nbf, session);
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());

    response.feasible = result.feasible;
    response.best_cost = result.feasible ? result.best_cost : 0.0;
    response.stopped_reason = result.stopped_reason;
    response.epochs_completed = result.epochs_completed;
    for (const EpochStats& epoch : result.history) {
      response.verify_shared_hits += epoch.verify_shared_hits;
    }
    if (result.best) {
      ByteWriter out;
      save_topology(*result.best, out);
      response.topology_bytes = out.data();
    }
    if (result.certificate) {
      ByteWriter out;
      save_certificate(*result.certificate, out);
      response.certificate_bytes = out.data();
    }

    if (deadline->cancelled()) {
      // The session unwound through its clean-stop path mid-run; its
      // checkpoint (when configured) stays on disk for resume.
      response.status = ResponseStatus::kCancelled;
      return response;
    }
    if (result.feasible) {
      response.status = ResponseStatus::kPlanned;
    } else if (result.audits_rejected > 0) {
      response.status = ResponseStatus::kRejected;
      if (!result.audit_failures.empty()) response.error = result.audit_failures.back();
    } else {
      response.status = ResponseStatus::kInfeasible;
    }
    // A session that ran to its natural end has nothing to resume: drop its
    // checkpoint generations so a future same-id submission starts fresh.
    // (Not on budget/deadline stops — those are resumable by design.)
    if (!checkpoint_path.empty() && response.stopped_reason.empty()) {
      remove_quietly(checkpoint_path);
      remove_quietly(checkpoint_path + ".1");
    }
    return response;
  } catch (const DeadlineExceeded& e) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    // Escaped the trainer's recovery boundary (e.g. fired during the very
    // first environment construction): still a clean per-session outcome.
    response.status =
        deadline->cancelled() ? ResponseStatus::kCancelled : ResponseStatus::kFaulted;
    response.error = e.reason();
    return response;
  } catch (const std::exception& e) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    response.status = ResponseStatus::kFaulted;
    response.error = e.what();
    return response;
  } catch (...) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    response.status = ResponseStatus::kFaulted;
    response.error = "unknown fault";
    return response;
  }
}

void PlannerService::resolve_cancelled(Ticket ticket, bool record_unprocessed) {
  PlanningResponse response;
  response.id = ticket.request.id;
  response.label = ticket.request.label;
  response.status = ResponseStatus::kCancelled;
  response.error = "cancelled: service shut down before the session started";
  if (record_unprocessed) {
    std::lock_guard lock(state_mutex_);
    unprocessed_.push_back(std::move(ticket.request));
  }
  count(ResponseStatus::kCancelled);
  ticket.promise.set_value(std::move(response));
}

void PlannerService::count(ResponseStatus status) {
  std::lock_guard lock(state_mutex_);
  switch (status) {
    case ResponseStatus::kPlanned: ++counters_.planned; break;
    case ResponseStatus::kInfeasible: ++counters_.infeasible; break;
    case ResponseStatus::kRejected: ++counters_.rejected; break;
    case ResponseStatus::kFaulted: ++counters_.faulted; break;
    case ResponseStatus::kCancelled: ++counters_.cancelled; break;
  }
}

void PlannerService::shutdown(Shutdown mode) {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  accepting_.store(false, std::memory_order_release);
  if (mode == Shutdown::kCancel) {
    cancelling_.store(true, std::memory_order_release);
    std::lock_guard lock(state_mutex_);
    for (auto& [id, deadline] : inflight_) {
      deadline->cancel("cancelled: service shutting down");
    }
  }
  for (auto& shard : shards_) shard->queue.close();
  if (!joined_.exchange(true)) {
    for (auto& shard : shards_) {
      for (std::thread& worker : shard->workers) worker.join();
    }
  }
  // Anything the workers never popped (only possible in cancel mode, or for
  // producers that raced close): resolve as cancelled and keep the request.
  for (auto& shard : shards_) {
    for (Ticket& ticket : shard->queue.drain_remaining()) {
      resolve_cancelled(std::move(ticket), /*record_unprocessed=*/true);
    }
  }
}

std::vector<PlanningRequest> PlannerService::unprocessed() {
  std::lock_guard lock(state_mutex_);
  return unprocessed_;
}

PlannerService::Counters PlannerService::counters() const {
  std::lock_guard lock(state_mutex_);
  return counters_;
}

}  // namespace nptsn
