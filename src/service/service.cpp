#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>

#include "analysis/auditor.hpp"
#include "analysis/certificate.hpp"
#include "core/planner.hpp"
#include "net/problem.hpp"
#include "net/topology.hpp"
#include "service/crash_point.hpp"
#include "tsn/recovery.hpp"
#include "util/expect.hpp"

namespace nptsn {
namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; a leftover file is benign
}

}  // namespace

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kPlanned: return "planned";
    case ResponseStatus::kInfeasible: return "infeasible";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kFaulted: return "faulted";
    case ResponseStatus::kCancelled: return "cancelled";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

PlannerService::PlannerService(ServiceConfig config) : config_(std::move(config)) {
  NPTSN_EXPECT(config_.shards >= 1, "service needs at least one shard");
  NPTSN_EXPECT(config_.workers_per_shard >= 1, "service needs at least one worker per shard");
  NPTSN_EXPECT(config_.queue_capacity >= 1, "service queue capacity must be positive");
  NPTSN_EXPECT(config_.session_wall_seconds >= 0.0 && config_.session_max_ticks >= 0,
               "session budgets must be non-negative");
  NPTSN_EXPECT(config_.default_max_attempts >= 1,
               "service needs at least one attempt per request");
  NPTSN_EXPECT(config_.retry_base_seconds >= 0.0 && config_.retry_max_seconds >= 0.0 &&
                   config_.retry_jitter >= 0.0,
               "retry backoff parameters must be non-negative");
  NPTSN_EXPECT(config_.watchdog_grace == 0.0 || config_.watchdog_grace >= 1.0,
               "watchdog grace is a multiplier of the session budget: 0 (off) or >= 1");
  NPTSN_EXPECT(config_.watchdog_poll_seconds > 0.0 && config_.durability_probe_seconds > 0.0,
               "background poll cadences must be positive");

  if (config_.shared_caches) {
    engine_cache_ = std::make_shared<EngineSharedCache>(config_.engine_cache);
    stage_cache_ = std::make_shared<AdjacencyStageCache>(config_.stage_cache_bytes);
  }
  if (config_.warm_start) {
    policy_store_ = std::make_shared<PolicyStore>(config_.policy_store_bytes);
  }
  if (!config_.state_dir.empty()) {
    std::filesystem::create_directories(config_.state_dir);
  }
  if (!config_.journal_dir.empty()) {
    RequestJournal::Config journal_config;
    journal_config.dir = config_.journal_dir;
    journal_config.segment_bytes = config_.journal_segment_bytes;
    journal_config.compact_min_delivered = config_.journal_compact_min_delivered;
    journal_config.io_retry_attempts = config_.journal_io_retry_attempts;
    journal_config.io_retry_base_seconds = config_.journal_io_retry_base_seconds;
    journal_ = std::make_unique<RequestJournal>(std::move(journal_config));
  }
  retry_rng_ = Rng(config_.retry_seed);

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
  for (int s = 0; s < config_.shards; ++s) {
    for (int w = 0; w < config_.workers_per_shard; ++w) {
      shards_[static_cast<std::size_t>(s)]->workers.emplace_back(
          [this, s] { worker_loop(s); });
    }
  }
  retry_thread_ = std::thread([this] { retry_loop(); });
  if (journal_) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
  if (config_.watchdog_grace > 0.0 && config_.session_wall_seconds > 0.0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }

  // Recovery runs after the workers are up, so resubmitting more live
  // requests than one queue holds just exerts normal backpressure instead of
  // deadlocking a pre-worker blocking push.
  if (journal_) {
    for (RequestJournal::Recovered& item : journal_->take_recovered()) {
      if (item.replay) {
        replay_recovered(std::move(item));
      } else {
        resubmit_recovered(std::move(item));
      }
    }
  }
}

PlannerService::~PlannerService() { shutdown(Shutdown::kCancel); }

std::future<PlanningResponse> PlannerService::submit(PlanningRequest request) {
  return submit_impl(std::move(request), Admission::kBlock, 0.0);
}

std::future<PlanningResponse> PlannerService::try_submit(PlanningRequest request) {
  return submit_impl(std::move(request), Admission::kTry, 0.0);
}

std::future<PlanningResponse> PlannerService::submit_within(PlanningRequest request,
                                                            double timeout_seconds) {
  NPTSN_EXPECT(timeout_seconds >= 0.0, "admission timeout must be non-negative");
  return submit_impl(std::move(request), Admission::kTimed, timeout_seconds);
}

std::future<PlanningResponse> PlannerService::submit_impl(PlanningRequest request,
                                                          Admission mode,
                                                          double timeout_seconds) {
  if (request.id.empty()) throw ValidationError("planning request needs an id");
  if (request.problem_bytes.empty()) {
    throw ValidationError("planning request needs serialized problem bytes");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    throw std::runtime_error("planner service is shut down");
  }

  Ticket ticket;
  ticket.request = std::move(request);
  ticket.enqueued = std::chrono::steady_clock::now();
  std::future<PlanningResponse> future = ticket.promise.get_future();

  // Route by problem fingerprint: resubmissions of the same problem land on
  // the same shard (and so behind each other), which is exactly where the
  // cross-session caches pay off; distinct problems spread across shards.
  const ProblemFp fp = problem_fingerprint128(ticket.request.problem_bytes);
  const int shard_index = shard_for(fp);
  const int priority = ticket.request.priority;

  // Durability before acknowledgement: the accepted record is on disk before
  // any caller-visible handle exists, in every admission mode. A request shed
  // below gets a compensating terminal record, so it is not resurrected.
  if (journal_ &&
      journal_->append_accepted(ticket.request, fp) == AppendOutcome::kDegraded) {
    // The journal cannot reach stable storage: shed instead of acknowledging
    // a durability we cannot provide. The caller resubmits once the service
    // reports durable again (the probe re-arms automatically).
    PlanningResponse shed;
    shed.id = ticket.request.id;
    shed.label = ticket.request.label;
    shed.status = ResponseStatus::kDegraded;
    shed.error = "degraded: journal cannot reach stable storage (" +
                 journal_->degraded_reason() + ")";
    shed.shard = shard_index;
    shed.attempt = 0;
    shed.durable = false;
    count(ResponseStatus::kDegraded);
    ticket.promise.set_value(std::move(shed));
    return future;
  }
  crash_point("service.accept.after_journal");
  {
    std::lock_guard lock(state_mutex_);
    ++counters_.submitted;
  }

  auto& queue = shards_[static_cast<std::size_t>(shard_index)]->queue;
  if (mode == Admission::kBlock) {
    if (!queue.push(std::move(ticket), priority)) {
      // Closed while we were blocked on a full queue. With a journal the
      // accepted record stays live and recovers on the next process.
      throw std::runtime_error("planner service is shut down");
    }
    return future;
  }

  const PushResult pushed =
      mode == Admission::kTry
          ? queue.try_push(ticket, priority)
          : queue.push_for(ticket, priority, std::chrono::duration<double>(timeout_seconds));
  if (pushed == PushResult::kClosed) {
    throw std::runtime_error("planner service is shut down");
  }
  if (pushed == PushResult::kFull) {
    PlanningResponse shed;
    shed.id = ticket.request.id;
    shed.label = ticket.request.label;
    shed.status = ResponseStatus::kOverloaded;
    shed.error = "overloaded: shard " + std::to_string(shard_index) +
                 " queue full (capacity " + std::to_string(queue.capacity()) + ")";
    shed.shard = shard_index;
    shed.attempt = 0;
    // The terminal record both compensates the accepted record (no
    // resurrection on restart) and is marked delivered on replay.
    if (journal_) journal_->append_terminal(shed, 0);
    count(ResponseStatus::kOverloaded);
    ticket.promise.set_value(std::move(shed));
  }
  return future;
}

int PlannerService::shard_for(const ProblemFp& fp) const {
  const int preferred = static_cast<int>(fp.a % static_cast<std::uint64_t>(shards_.size()));
  if (!shards_[static_cast<std::size_t>(preferred)]->quarantined.load(
          std::memory_order_acquire)) {
    return preferred;
  }
  // Deterministic re-route among the healthy shards; with every shard
  // quarantined, fall back to the full ring (the queue still accepts — the
  // work just waits for an un-wedge or a shutdown).
  std::vector<int> healthy;
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    if (!shards_[static_cast<std::size_t>(s)]->quarantined.load(
            std::memory_order_acquire)) {
      healthy.push_back(s);
    }
  }
  if (healthy.empty()) return preferred;
  return healthy[fp.a % healthy.size()];
}

int PlannerService::max_attempts_for(const PlanningRequest& request) const {
  return request.max_attempts > 0 ? request.max_attempts : config_.default_max_attempts;
}

bool PlannerService::retryable(const PlanningResponse& response) const {
  if (response.status == ResponseStatus::kFaulted) return true;
  // A deadline-stopped session left a resumable checkpoint (when state_dir is
  // configured); a retry continues it under a fresh budget.
  return response.status == ResponseStatus::kInfeasible &&
         response.stopped_reason.rfind("deadline:", 0) == 0;
}

void PlannerService::worker_loop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  while (auto ticket = shard.queue.pop()) {
    if (cancelling_.load(std::memory_order_acquire)) {
      resolve_cancelled(std::move(*ticket), /*record_unprocessed=*/true);
      continue;
    }
    const auto picked = std::chrono::steady_clock::now();

    // Every session gets its own cooperative token — even with no budgets
    // configured — so a cancelling shutdown can always reach it.
    auto deadline =
        Deadline::after(config_.session_wall_seconds, config_.session_max_ticks);
    {
      std::lock_guard lock(state_mutex_);
      Inflight entry;
      entry.id = ticket->request.id;
      entry.deadline = deadline;
      entry.started = picked;
      entry.shard_index = shard_index;
      inflight_.push_back(std::move(entry));
    }
    // Closes the pop-to-register race with shutdown(kCancel): either the
    // canceller saw our registration, or we see its flag here.
    if (cancelling_.load(std::memory_order_acquire)) {
      deadline->cancel("cancelled: service shutting down");
    }

    if (journal_) journal_->append_started(ticket->request.id, ticket->attempt);
    crash_point("service.start.after_journal");

    PlanningResponse response = run_session(ticket->request, shard_index, deadline);
    response.queue_seconds = seconds_between(ticket->enqueued, picked);
    response.attempt = ticket->attempt;

    {
      std::lock_guard lock(state_mutex_);
      const auto it = std::find_if(inflight_.begin(), inflight_.end(),
                                   [&](const Inflight& entry) {
                                     return entry.deadline.get() == deadline.get();
                                   });
      if (it != inflight_.end()) {
        if (it->wedged) {
          // The wedged session finally returned: lift the quarantine once no
          // wedged sessions remain on this shard.
          Shard& self = *shards_[static_cast<std::size_t>(shard_index)];
          if (--self.wedged_sessions == 0) {
            self.quarantined.store(false, std::memory_order_release);
          }
          ++counters_.unwedged;
        }
        inflight_.erase(it);
      }
    }

    if (response.status != ResponseStatus::kCancelled && retryable(response) &&
        ticket->attempt < max_attempts_for(ticket->request) &&
        !cancelling_.load(std::memory_order_acquire)) {
      schedule_retry(std::move(*ticket), shard_index, std::move(response));
      continue;
    }
    finish_ticket(std::move(*ticket), std::move(response));
  }
}

void PlannerService::finish_ticket(Ticket ticket, PlanningResponse response) {
  const std::string id = response.id;
  // A cancelled session is deliberately NOT journaled as terminal: it stays
  // live in the journal and a restart over the same journal_dir recovers it.
  const bool journal_terminal =
      journal_ != nullptr && response.status != ResponseStatus::kCancelled;
  crash_point("service.terminal.before_journal");
  if (journal_terminal &&
      journal_->append_terminal(response, response.attempt) ==
          AppendOutcome::kDegraded) {
    // The answer still goes out — an in-flight session is never held hostage
    // to a sick disk — but flagged non-durable: a crash before the journal
    // re-arms may re-execute this request after restart.
    response.durable = false;
    std::lock_guard lock(state_mutex_);
    ++counters_.non_durable;
  }
  crash_point("service.answer.before_set");
  count(response.status);
  ticket.promise.set_value(std::move(response));
  if (journal_terminal) journal_->acknowledge_delivered(id);
}

void PlannerService::schedule_retry(Ticket ticket, int shard_index,
                                    PlanningResponse failed) {
  const int failed_attempt = ticket.attempt;
  const std::string error = failed.error.empty() ? failed.stopped_reason : failed.error;
  const auto later = [](const PendingRetry& a, const PendingRetry& b) {
    return a.due > b.due;
  };

  std::unique_lock lock(retry_mutex_);
  if (!retry_stop_) {
    double backoff =
        std::min(config_.retry_max_seconds,
                 config_.retry_base_seconds * std::ldexp(1.0, failed_attempt - 1));
    backoff *= 1.0 + config_.retry_jitter * retry_rng_.uniform();
    if (journal_) journal_->append_retry(ticket.request.id, failed_attempt, error, backoff);

    PendingRetry pending;
    pending.due = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(backoff));
    pending.ticket = std::move(ticket);
    pending.ticket.attempt = failed_attempt + 1;
    pending.shard_index = shard_index;
    retry_heap_.push_back(std::move(pending));
    std::push_heap(retry_heap_.begin(), retry_heap_.end(), later);
    lock.unlock();
    retry_cv_.notify_one();
    std::lock_guard slock(state_mutex_);
    ++counters_.retried;
    return;
  }
  lock.unlock();

  // The scheduler is already stopped (shutdown in progress).
  if (cancelling_.load(std::memory_order_acquire)) {
    resolve_cancelled(std::move(ticket), /*record_unprocessed=*/true);
    return;
  }
  // Drain-mode shutdown: no backoff to wait out — requeue immediately; if
  // the queue is already closed (or full at the tail of the drain), finalize
  // with the failed attempt's response rather than dropping the promise.
  if (journal_) journal_->append_retry(ticket.request.id, failed_attempt, error, 0.0);
  ticket.attempt = failed_attempt + 1;
  const int priority = ticket.request.priority;
  if (shards_[static_cast<std::size_t>(shard_index)]->queue.try_push(ticket, priority) ==
      PushResult::kPushed) {
    std::lock_guard slock(state_mutex_);
    ++counters_.retried;
    return;
  }
  finish_ticket(std::move(ticket), std::move(failed));
}

void PlannerService::retry_loop() {
  const auto later = [](const PendingRetry& a, const PendingRetry& b) {
    return a.due > b.due;
  };
  std::unique_lock lock(retry_mutex_);
  while (!retry_stop_) {
    if (retry_heap_.empty()) {
      retry_cv_.wait(lock);
      continue;
    }
    const auto due = retry_heap_.front().due;
    if (std::chrono::steady_clock::now() < due) {
      retry_cv_.wait_until(lock, due);
      continue;  // re-evaluate: an earlier item or stop may have arrived
    }
    std::pop_heap(retry_heap_.begin(), retry_heap_.end(), later);
    PendingRetry item = std::move(retry_heap_.back());
    retry_heap_.pop_back();
    lock.unlock();

    auto& queue = shards_[static_cast<std::size_t>(item.shard_index)]->queue;
    const int priority = item.ticket.request.priority;
    while (true) {
      const PushResult pushed =
          queue.push_for(item.ticket, priority, std::chrono::milliseconds{50});
      if (pushed == PushResult::kPushed) break;
      if (pushed == PushResult::kClosed) {
        resolve_cancelled(std::move(item.ticket), /*record_unprocessed=*/true);
        break;
      }
      // kFull: the workers are still draining the queue; keep waiting.
    }
    lock.lock();
  }
}

void PlannerService::replay_recovered(RequestJournal::Recovered item) {
  PlanningResponse response = std::move(*item.replay);
  response.replayed = true;

  // A replayed plan goes back through the independent auditor before anyone
  // sees it, so a recovered answer is never weaker than a freshly planned
  // one. (Digest integrity was already checked by the journal scan.)
  if (config_.audit_replays && response.status == ResponseStatus::kPlanned &&
      !response.certificate_bytes.empty() && !item.request.problem_bytes.empty()) {
    std::string rejection;
    try {
      PlanningProblem problem = problem_from_bytes(item.request.problem_bytes);
      problem.validate();
      ByteReader in(response.certificate_bytes);
      const ReliabilityCertificate certificate = load_certificate(in);
      const AuditReport report = audit_certificate(problem, certificate);
      if (!report.ok) rejection = "replay re-audit failed: " + report.summary();
    } catch (const std::exception& e) {
      rejection = std::string("replay re-audit faulted: ") + e.what();
    }
    if (!rejection.empty()) {
      response.status = ResponseStatus::kRejected;
      response.error = rejection;
      if (journal_->append_terminal(response, response.attempt) ==
          AppendOutcome::kDegraded) {
        response.durable = false;
      }
    }
  }

  std::promise<PlanningResponse> promise;
  RecoveredSession session;
  session.request = std::move(item.request);
  session.response = promise.get_future();
  session.replayed = true;

  const std::string id = response.id;
  count(response.status);
  promise.set_value(std::move(response));
  journal_->acknowledge_delivered(id);
  std::lock_guard lock(state_mutex_);
  ++counters_.replayed;
  recovered_.push_back(std::move(session));
}

void PlannerService::resubmit_recovered(RequestJournal::Recovered item) {
  Ticket ticket;
  ticket.request = item.request;
  ticket.enqueued = std::chrono::steady_clock::now();
  // A crash mid-attempt does not consume an attempt — only journaled kRetry
  // records do — so the re-run picks up at attempts_used + 1.
  ticket.attempt = item.attempts_used + 1;

  RecoveredSession session;
  session.request = std::move(item.request);
  session.response = ticket.promise.get_future();
  session.replayed = false;

  const ProblemFp fp = problem_fingerprint128(ticket.request.problem_bytes);
  const int shard_index = shard_for(fp);
  const int priority = ticket.request.priority;
  {
    std::lock_guard lock(state_mutex_);
    ++counters_.submitted;
    ++counters_.recovered;
    recovered_.push_back(std::move(session));
  }
  // The accepted record is already durable; workers are running, so a full
  // queue is ordinary backpressure here, not a deadlock.
  shards_[static_cast<std::size_t>(shard_index)]->queue.push(std::move(ticket), priority);
}

std::vector<PlannerService::RecoveredSession> PlannerService::take_recovered() {
  std::vector<RecoveredSession> out;
  std::lock_guard lock(state_mutex_);
  out.swap(recovered_);
  return out;
}

std::vector<std::string> PlannerService::recovery_warnings() const {
  return journal_ ? journal_->recovery_warnings() : std::vector<std::string>{};
}

PlanningResponse PlannerService::run_session(const PlanningRequest& request,
                                             int shard_index,
                                             const std::shared_ptr<Deadline>& deadline) {
  PlanningResponse response;
  response.id = request.id;
  response.label = request.label;
  response.shard = shard_index;

  std::string checkpoint_path;
  const auto start = std::chrono::steady_clock::now();
  try {
    PlanningProblem problem = problem_from_bytes(request.problem_bytes);
    problem.validate();

    NptsnConfig session = config_.session;
    if (request.epochs > 0) session.epochs = request.epochs;
    if (request.steps_per_epoch > 0) session.steps_per_epoch = request.steps_per_epoch;
    if (request.seed != 0) session.seed = request.seed;
    session.deadline = deadline;
    session.engine_shared_cache = engine_cache_;
    session.stage_cache = stage_cache_;
    session.policy_store = policy_store_;
    session.warm_start = config_.warm_start && policy_store_ != nullptr;
    // All service sessions run the same default-constructed NBF below, so
    // the default salt is sound; certificates travel in-band, not as files.
    session.cache_salt = 0;
    session.certificate_path.clear();
    if (!config_.state_dir.empty()) {
      checkpoint_path = config_.state_dir + "/" + request.id + ".ckpt";
      session.checkpoint_path = checkpoint_path;
      session.checkpoint_on_stop = true;
    }

    const HeuristicRecovery nbf;
    const PlanningResult result = plan(problem, nbf, session);
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());

    response.feasible = result.feasible;
    response.best_cost = result.feasible ? result.best_cost : 0.0;
    response.stopped_reason = result.stopped_reason;
    response.epochs_completed = result.epochs_completed;
    for (const EpochStats& epoch : result.history) {
      response.verify_shared_hits += epoch.verify_shared_hits;
    }
    if (result.best) {
      ByteWriter out;
      save_topology(*result.best, out);
      response.topology_bytes = out.data();
    }
    if (result.certificate) {
      ByteWriter out;
      save_certificate(*result.certificate, out);
      response.certificate_bytes = out.data();
    }

    if (deadline->cancelled()) {
      // The session unwound through its clean-stop path mid-run; its
      // checkpoint (when configured) stays on disk for resume.
      response.status = ResponseStatus::kCancelled;
      return response;
    }
    if (result.feasible) {
      response.status = ResponseStatus::kPlanned;
    } else if (result.audits_rejected > 0) {
      response.status = ResponseStatus::kRejected;
      if (!result.audit_failures.empty()) response.error = result.audit_failures.back();
    } else {
      response.status = ResponseStatus::kInfeasible;
    }
    // A session that ran to its natural end has nothing to resume: drop its
    // checkpoint generations so a future same-id submission starts fresh.
    // (Not on budget/deadline stops — those are resumable by design.)
    if (!checkpoint_path.empty() && response.stopped_reason.empty()) {
      remove_quietly(checkpoint_path);
      remove_quietly(checkpoint_path + ".1");
    }
    return response;
  } catch (const DeadlineExceeded& e) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    // Escaped the trainer's recovery boundary (e.g. fired during the very
    // first environment construction): still a clean per-session outcome.
    response.status =
        deadline->cancelled() ? ResponseStatus::kCancelled : ResponseStatus::kFaulted;
    response.error = e.reason();
    return response;
  } catch (const std::exception& e) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    response.status = ResponseStatus::kFaulted;
    response.error = e.what();
    return response;
  } catch (...) {
    response.plan_seconds = seconds_between(start, std::chrono::steady_clock::now());
    response.status = ResponseStatus::kFaulted;
    response.error = "unknown fault";
    return response;
  }
}

void PlannerService::resolve_cancelled(Ticket ticket, bool record_unprocessed) {
  PlanningResponse response;
  response.id = ticket.request.id;
  response.label = ticket.request.label;
  response.status = ResponseStatus::kCancelled;
  response.error = "cancelled: service shut down before the session started";
  if (record_unprocessed) {
    std::lock_guard lock(state_mutex_);
    unprocessed_.push_back(std::move(ticket.request));
  }
  count(ResponseStatus::kCancelled);
  ticket.promise.set_value(std::move(response));
}

void PlannerService::count(ResponseStatus status) {
  std::lock_guard lock(state_mutex_);
  switch (status) {
    case ResponseStatus::kPlanned: ++counters_.planned; break;
    case ResponseStatus::kInfeasible: ++counters_.infeasible; break;
    case ResponseStatus::kRejected: ++counters_.rejected; break;
    case ResponseStatus::kFaulted: ++counters_.faulted; break;
    case ResponseStatus::kCancelled: ++counters_.cancelled; break;
    case ResponseStatus::kOverloaded: ++counters_.overloaded; break;
    case ResponseStatus::kDegraded: ++counters_.degraded; break;
  }
}

void PlannerService::probe_loop() {
  std::unique_lock lock(background_mutex_);
  while (!background_stop_) {
    background_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.durability_probe_seconds));
    if (background_stop_) break;
    lock.unlock();
    if (!journal_->durable() && journal_->try_rearm()) {
      std::lock_guard slock(state_mutex_);
      ++counters_.rearmed;
    }
    lock.lock();
  }
}

void PlannerService::watchdog_loop() {
  // The budget a session may overrun before the watchdog intervenes, and the
  // further budget a cancelled session gets to unwind before it is declared
  // wedged. grace >= 1, so a healthy session's own DeadlineExceeded always
  // fires first; the watchdog only ever sees sessions that stopped polling.
  const double window = config_.session_wall_seconds * config_.watchdog_grace;
  std::unique_lock lock(background_mutex_);
  while (!background_stop_) {
    background_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.watchdog_poll_seconds));
    if (background_stop_) break;
    lock.unlock();

    const auto now = std::chrono::steady_clock::now();
    std::vector<int> to_reroute;
    {
      std::lock_guard slock(state_mutex_);
      for (Inflight& entry : inflight_) {
        if (!entry.watchdog_cancelled) {
          if (seconds_between(entry.started, now) > window) {
            entry.deadline->cancel(
                "cancelled: watchdog — session overran its deadline by the "
                "grace window");
            entry.watchdog_cancelled = true;
            entry.cancelled_at = now;
            ++counters_.watchdog_cancels;
          }
        } else if (!entry.wedged &&
                   seconds_between(entry.cancelled_at, now) > window) {
          // Cancelled and STILL running: this session is not polling its
          // deadline at all. Quarantine the shard so new work routes around
          // the stuck worker.
          entry.wedged = true;
          Shard& shard = *shards_[static_cast<std::size_t>(entry.shard_index)];
          ++shard.wedged_sessions;
          ++counters_.wedged;
          if (!shard.quarantined.exchange(true, std::memory_order_acq_rel)) {
            to_reroute.push_back(entry.shard_index);
          }
        }
      }
    }
    for (const int shard_index : to_reroute) reroute_shard(shard_index);
    lock.lock();
  }
}

void PlannerService::reroute_shard(int shard_index) {
  // Move the quarantined shard's backlog to healthy shards. drain_remaining
  // works on an open queue; anything that cannot be placed (every shard
  // quarantined, or the healthy queues full) goes back where it was — parked,
  // not lost: it runs on un-wedge or resolves as cancelled on shutdown.
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  std::int64_t moved = 0;
  for (Ticket& ticket : shard.queue.drain_remaining()) {
    const int priority = ticket.request.priority;
    const ProblemFp fp = problem_fingerprint128(ticket.request.problem_bytes);
    const int target = shard_for(fp);
    if (target != shard_index &&
        shards_[static_cast<std::size_t>(target)]->queue.try_push(ticket, priority) ==
            PushResult::kPushed) {
      ++moved;
      continue;
    }
    if (shard.queue.try_push(ticket, priority) != PushResult::kPushed) {
      // Queue closed (shutdown raced us): resolve rather than drop the promise.
      resolve_cancelled(std::move(ticket), /*record_unprocessed=*/true);
    }
  }
  if (moved > 0) {
    std::lock_guard lock(state_mutex_);
    counters_.rerouted += moved;
  }
}

void PlannerService::shutdown(Shutdown mode) {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  accepting_.store(false, std::memory_order_release);
  if (mode == Shutdown::kCancel) {
    cancelling_.store(true, std::memory_order_release);
    std::lock_guard lock(state_mutex_);
    for (Inflight& entry : inflight_) {
      entry.deadline->cancel("cancelled: service shutting down");
    }
  }

  // Stop the background probe and watchdog first: neither should observe (or
  // reroute around) the half-torn-down state below.
  {
    std::lock_guard lock(background_mutex_);
    background_stop_ = true;
  }
  background_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // Stop the retry scheduler and take over its backlog: drain mode runs the
  // pending retries immediately (their remaining backoff is forfeited);
  // cancel mode resolves them as cancelled (with a journal they stay live on
  // disk and recover on the next process).
  std::vector<PendingRetry> pending;
  {
    std::lock_guard lock(retry_mutex_);
    retry_stop_ = true;
    pending.swap(retry_heap_);
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  for (PendingRetry& item : pending) {
    if (mode == Shutdown::kCancel) {
      resolve_cancelled(std::move(item.ticket), /*record_unprocessed=*/true);
      continue;
    }
    auto& queue = shards_[static_cast<std::size_t>(item.shard_index)]->queue;
    const int priority = item.ticket.request.priority;
    while (true) {
      const PushResult pushed =
          queue.push_for(item.ticket, priority, std::chrono::milliseconds{50});
      if (pushed == PushResult::kPushed) break;
      if (pushed == PushResult::kClosed) {
        resolve_cancelled(std::move(item.ticket), /*record_unprocessed=*/true);
        break;
      }
    }
  }

  for (auto& shard : shards_) shard->queue.close();
  if (!joined_.exchange(true)) {
    for (auto& shard : shards_) {
      for (std::thread& worker : shard->workers) worker.join();
    }
  }
  // Anything the workers never popped (only possible in cancel mode, or for
  // producers that raced close): resolve as cancelled and keep the request.
  for (auto& shard : shards_) {
    for (Ticket& ticket : shard->queue.drain_remaining()) {
      resolve_cancelled(std::move(ticket), /*record_unprocessed=*/true);
    }
  }
}

std::vector<PlanningRequest> PlannerService::unprocessed() {
  std::lock_guard lock(state_mutex_);
  return unprocessed_;
}

PlannerService::Counters PlannerService::counters() const {
  std::lock_guard lock(state_mutex_);
  return counters_;
}

PlannerService::ServiceStats PlannerService::stats() const {
  ServiceStats stats;
  {
    std::lock_guard lock(state_mutex_);
    stats.counters = counters_;
    stats.inflight = inflight_.size();
    for (const auto& shard : shards_) {
      ShardSnapshot snapshot;
      snapshot.queue_depth = shard->queue.size();
      snapshot.wedged_sessions = shard->wedged_sessions;
      snapshot.quarantined = shard->quarantined.load(std::memory_order_acquire);
      stats.shards.push_back(snapshot);
    }
  }
  {
    std::lock_guard lock(retry_mutex_);
    stats.retry_backlog = retry_heap_.size();
  }
  if (journal_) {
    stats.journal_configured = true;
    stats.durable = journal_->durable();
    stats.degraded_reason = journal_->degraded_reason();
    stats.journal = journal_->stats();
    stats.journal_segments = journal_->segment_sizes();
  }
  return stats;
}

}  // namespace nptsn
