#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

#include "service/crash_point.hpp"
#include "util/checkpoint.hpp"
#include "util/expect.hpp"
#include "util/io.hpp"

namespace nptsn {
namespace {

// Per-record framing magic ("NJL1"); bumped on any layout change so an old
// binary refuses records it cannot decode instead of misreading them.
constexpr std::uint32_t kRecordMagic = 0x314C4A4Eu;
constexpr std::size_t kRecordHeader = 4 + 4 + 8;  // magic, payload size, checksum

[[noreturn]] void fail(const std::string& what) { throw CheckpointError(what); }

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.seg", static_cast<unsigned long long>(seq));
  return buf;
}

// "wal-<digits>.seg" -> seq; nullopt for anything else (tmp files, strays).
std::optional<std::uint64_t> segment_seq(const std::string& name) {
  if (name.size() <= 8 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".seg") != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

// fsync the journal directory so renames/creations within it are durable.
// Returns 0 or the errno of the failed fsync. A directory that cannot even be
// opened stays best-effort (some filesystems refuse directory fds), but a
// FAILED fsync on an opened directory is a real durability signal and is
// routed to the caller's error classification, not swallowed.
int fsync_dir(const std::string& dir) {
  const int fd = io::open("journal.dir.open", dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return 0;  // best effort: the segment files themselves are synced
  int err = 0;
  if (io::fsync("journal.dir.fsync", fd) != 0) err = errno;
  ::close(fd);
  return err;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open " + path + ": " + std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      fail("read of " + path + " failed: " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

JournalRecordType terminal_type(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kPlanned:
    case ResponseStatus::kInfeasible: return JournalRecordType::kDone;
    case ResponseStatus::kRejected: return JournalRecordType::kRejected;
    default: return JournalRecordType::kFaulted;
  }
}

std::vector<std::uint8_t> encode_record(const JournalRecord& record) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(record.type));
  out.str(record.id);
  out.u64(record.fp.a);
  out.u64(record.fp.b);
  out.i64(record.attempt);
  switch (record.type) {
    case JournalRecordType::kAccepted:
      out.str(record.request.label);
      out.i64(record.request.priority);
      out.i64(record.request.epochs);
      out.i64(record.request.steps_per_epoch);
      out.u64(record.request.seed);
      out.i64(record.request.max_attempts);
      out.i64(record.attempts_used);
      out.blob(record.request.problem_bytes);
      break;
    case JournalRecordType::kStarted:
      break;
    case JournalRecordType::kRetry:
      out.str(record.error);
      out.f64(record.backoff_seconds);
      break;
    case JournalRecordType::kDone:
    case JournalRecordType::kFaulted:
    case JournalRecordType::kRejected:
      out.u8(static_cast<std::uint8_t>(record.response.status));
      out.u8(record.response.feasible ? 1 : 0);
      out.f64(record.response.best_cost);
      out.str(record.response.stopped_reason);
      out.str(record.response.error);
      out.i64(record.response.epochs_completed);
      out.i64(record.response.verify_shared_hits);
      out.u64(record.digest);
      out.blob(record.response.topology_bytes);
      out.blob(record.response.certificate_bytes);
      break;
  }
  return out.data();
}

JournalRecord decode_record(const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  JournalRecord record;
  const std::uint8_t type = in.u8();
  if (type < 1 || type > 6) {
    fail("unknown journal record type " + std::to_string(type));
  }
  record.type = static_cast<JournalRecordType>(type);
  record.id = in.str();
  record.fp.a = in.u64();
  record.fp.b = in.u64();
  record.attempt = static_cast<int>(in.i64());
  switch (record.type) {
    case JournalRecordType::kAccepted:
      record.request.id = record.id;
      record.request.label = in.str();
      record.request.priority = static_cast<int>(in.i64());
      record.request.epochs = static_cast<int>(in.i64());
      record.request.steps_per_epoch = static_cast<int>(in.i64());
      record.request.seed = in.u64();
      record.request.max_attempts = static_cast<int>(in.i64());
      record.attempts_used = static_cast<int>(in.i64());
      record.request.problem_bytes = in.blob();
      break;
    case JournalRecordType::kStarted:
      break;
    case JournalRecordType::kRetry:
      record.error = in.str();
      record.backoff_seconds = in.f64();
      break;
    case JournalRecordType::kDone:
    case JournalRecordType::kFaulted:
    case JournalRecordType::kRejected: {
      record.response.id = record.id;
      const std::uint8_t status = in.u8();
      if (status > static_cast<std::uint8_t>(ResponseStatus::kDegraded)) {
        fail("unknown response status " + std::to_string(status));
      }
      record.response.status = static_cast<ResponseStatus>(status);
      record.response.feasible = in.u8() != 0;
      record.response.best_cost = in.f64();
      record.response.stopped_reason = in.str();
      record.response.error = in.str();
      record.response.epochs_completed = static_cast<int>(in.i64());
      record.response.verify_shared_hits = in.i64();
      record.digest = in.u64();
      record.response.topology_bytes = in.blob();
      record.response.certificate_bytes = in.blob();
      record.response.attempt = record.attempt;
      break;
    }
  }
  in.expect_exhausted("journal record");
  return record;
}

// Frames one encoded payload: header + payload, ready to append.
std::vector<std::uint8_t> frame_record(const std::vector<std::uint8_t>& payload) {
  ByteWriter out;
  out.u32(kRecordMagic);
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u64(fnv1a64(payload.data(), payload.size()));
  out.raw(payload.data(), payload.size());
  return out.data();
}

// Decodes the records of one segment buffer; damage drops the rest of the
// segment with a warning (a record after a corrupt one has no trustworthy
// alignment to resume from).
void scan_segment(const std::string& path, const std::vector<std::uint8_t>& bytes,
                  JournalScan* scan) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeader) {
      scan->warnings.push_back(path + ": torn record header at offset " +
                               std::to_string(pos) + " (" +
                               std::to_string(bytes.size() - pos) +
                               " trailing bytes dropped)");
      return;
    }
    ByteReader header(bytes.data() + pos, kRecordHeader);
    if (header.u32() != kRecordMagic) {
      scan->warnings.push_back(path + ": bad record magic at offset " +
                               std::to_string(pos) + " (rest of segment dropped)");
      return;
    }
    const std::uint32_t size = header.u32();
    const std::uint64_t checksum = header.u64();
    if (bytes.size() - pos - kRecordHeader < size) {
      scan->warnings.push_back(path + ": torn record payload at offset " +
                               std::to_string(pos) + " (rest of segment dropped)");
      return;
    }
    const std::uint8_t* payload = bytes.data() + pos + kRecordHeader;
    if (fnv1a64(payload, size) != checksum) {
      scan->warnings.push_back(path + ": record checksum mismatch at offset " +
                               std::to_string(pos) + " (rest of segment dropped)");
      return;
    }
    try {
      scan->records.push_back(decode_record(payload, size));
    } catch (const CheckpointError& e) {
      scan->warnings.push_back(path + ": undecodable record at offset " +
                               std::to_string(pos) + ": " + e.what() +
                               " (rest of segment dropped)");
      return;
    }
    pos += kRecordHeader + size;
  }
}

}  // namespace

const char* to_string(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kAccepted: return "accepted";
    case JournalRecordType::kStarted: return "started";
    case JournalRecordType::kRetry: return "retry";
    case JournalRecordType::kDone: return "done";
    case JournalRecordType::kFaulted: return "faulted";
    case JournalRecordType::kRejected: return "rejected";
  }
  return "unknown";
}

std::uint64_t response_digest(const PlanningResponse& response) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(response.feasible ? 1 : 0);
  w.f64(response.best_cost);
  w.blob(response.topology_bytes);
  w.blob(response.certificate_bytes);
  return fnv1a64(w.data().data(), w.data().size());
}

JournalScan scan_journal(const std::string& dir) {
  JournalScan scan;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return scan;

  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto seq = segment_seq(name)) {
      segments.emplace_back(*seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());

  for (const auto& [seq, path] : segments) {
    scan.segments.push_back(path);
    try {
      const std::vector<std::uint8_t> bytes = read_file(path);
      scan_segment(path, bytes, &scan);
    } catch (const CheckpointError& e) {
      scan.warnings.push_back(std::string("unreadable segment: ") + e.what());
    }
  }
  return scan;
}

RequestJournal::RequestJournal(Config config) : config_(std::move(config)) {
  NPTSN_EXPECT(!config_.dir.empty(), "journal directory must be non-empty");
  NPTSN_EXPECT(config_.segment_bytes >= 1024, "journal segments must be >= 1 KiB");
  NPTSN_EXPECT(config_.compact_min_delivered >= 1,
               "journal compaction threshold must be positive");

  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) fail("cannot create journal directory " + config_.dir + ": " + ec.message());

  const JournalScan scan = scan_journal(config_.dir);
  scan_warnings_ = scan.warnings;
  for (const JournalRecord& record : scan.records) apply(record, &scan_warnings_);

  std::uint64_t max_seq = 0;
  for (const std::string& path : scan.segments) {
    const auto seq = segment_seq(std::filesystem::path(path).filename().string());
    if (seq && *seq > max_seq) max_seq = *seq;
    sealed_segments_.emplace_back(seq.value_or(0), path);
  }
  active_seq_ = max_seq + 1;

  // A storage fault here is an environmental problem, not a configuration
  // one: start DEGRADED (the service's durability probe re-arms once the
  // disk heals) instead of refusing to boot.
  std::lock_guard lock(mutex_);
  int err = 0;
  if (!open_active_segment(&err)) {
    enter_degraded("cannot open initial journal segment: " +
                   std::string(std::strerror(err)));
  }
}

RequestJournal::~RequestJournal() {
  std::lock_guard lock(mutex_);
  if (active_fd_ >= 0) ::close(active_fd_);
  active_fd_ = -1;
}

// Opens a fresh active segment. False on failure, with the errno in *err;
// never throws. Requires mutex_.
bool RequestJournal::open_active_segment(int* err) {
  const std::string path = config_.dir + "/" + segment_name(active_seq_);
  active_fd_ = io::open("journal.segment.open", path.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (active_fd_ < 0) {
    *err = errno;
    return false;
  }
  active_bytes_ = 0;
  // Make the new directory entry durable before the first record lands in it.
  if (const int dir_err = fsync_dir(config_.dir); dir_err != 0) {
    *err = dir_err;
    ::close(active_fd_);
    active_fd_ = -1;
    return false;
  }
  return true;
}

// Seals the active segment where it stands. Used on rotation AND on a failed
// write: a mid-record failure leaves a torn tail, and appending more records
// after torn bytes would park them beyond the scanner's reach (a scan drops
// everything after damage) — so the damaged segment is never written again.
// Its valid prefix still scans. Requires mutex_.
void RequestJournal::abandon_active_segment() {
  if (active_fd_ < 0) return;
  if (io::close("journal.segment.close", active_fd_) != 0) {
    // close() can surface deferred write errors; every record we reported
    // durable was individually fsynced, so this cannot un-persist anything —
    // but it is a health signal worth counting.
    ++stats_.close_errors;
  }
  active_fd_ = -1;
  sealed_segments_.emplace_back(active_seq_, config_.dir + "/" + segment_name(active_seq_));
  ++active_seq_;
}

void RequestJournal::enter_degraded(const std::string& reason) {
  if (active_fd_ >= 0) abandon_active_segment();
  if (!degraded_) {
    degraded_ = true;
    degraded_reason_ = reason;
    ++stats_.degraded_entered;
  }
}

// One durable append under the transient/persistent fault policy. Returns
// kDurable only when the framed record is wholly on stable storage. Requires
// mutex_ (the bounded retry backoff sleeps with the lock held — worst case a
// few tens of milliseconds, which is the price of keeping append ordering).
AppendOutcome RequestJournal::append_record(const std::vector<std::uint8_t>& payload) {
  if (degraded_) return AppendOutcome::kDegraded;

  const std::vector<std::uint8_t> framed = frame_record(payload);
  int attempt = 0;
  while (true) {
    int err = 0;
    if (active_fd_ >= 0 || open_active_segment(&err)) {
      crash_point("journal.append.before_write");
      err = io::write_all("journal.append.write", active_fd_, framed.data(),
                          framed.size());
      if (err == 0) {
        crash_point("journal.append.after_write");
        if (io::fsync("journal.append.fsync", active_fd_) != 0) {
          err = errno;
        }
      }
      if (err == 0) {
        crash_point("journal.append.after_fsync");
        active_bytes_ += framed.size();
        ++stats_.appends;
        if (active_bytes_ >= config_.segment_bytes) {
          abandon_active_segment();
          ++stats_.rotations;
          maybe_compact();
          if (!degraded_ && active_fd_ < 0 && !open_active_segment(&err)) {
            // The record itself IS durable; only the next segment is in
            // trouble. Degrade now so the next append sheds cleanly.
            enter_degraded("cannot open journal segment: " +
                           std::string(std::strerror(err)));
          }
        }
        return AppendOutcome::kDurable;
      }
      // The segment may hold a torn record (or an un-fsyncable tail). Cut the
      // failed append's bytes back off first: a fully-written-but-unfsynced
      // record is a VALID frame that would otherwise scan back after restart
      // — resurrecting a request whose submitter was told "not accepted" if
      // this append degrades. Best-effort: if the truncate itself fails the
      // scan-back merge still dedups against the retried copy.
      (void)::ftruncate(active_fd_, static_cast<off_t>(active_bytes_));
      // Then seal the segment off and re-land the whole record in a fresh
      // segment on retry; its valid prefix still scans.
      abandon_active_segment();
      ++stats_.segments_abandoned;
    }

    ++attempt;
    if (io::classify_io_errno(err) == io::IoErrorClass::kPersistent ||
        attempt > config_.io_retry_attempts) {
      enter_degraded("journal append failed: " + std::string(std::strerror(err)));
      return AppendOutcome::kDegraded;
    }
    ++stats_.io_retries;
    const double backoff =
        config_.io_retry_base_seconds * std::ldexp(1.0, attempt - 1);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

// The records that reconstruct one entry from nothing — accepted (carrying
// attempts_used), started while live, terminal when present — as encoded
// payloads. Compaction snapshots and degraded-mode reconciliation both emit
// exactly this shape, which is why the recovery scan merges them identically.
std::vector<std::vector<std::uint8_t>> RequestJournal::encode_entry_records(
    const std::string& id, const Entry& entry) const {
  std::vector<std::vector<std::uint8_t>> payloads;
  JournalRecord accepted;
  accepted.type = JournalRecordType::kAccepted;
  accepted.id = id;
  accepted.fp = entry.fp;
  accepted.attempt = 0;
  accepted.request = entry.request;
  accepted.attempts_used = entry.attempts_used;
  payloads.push_back(encode_record(accepted));

  if (entry.started && !entry.terminal) {
    JournalRecord started;
    started.type = JournalRecordType::kStarted;
    started.id = id;
    started.fp = entry.fp;
    started.attempt = entry.attempts_used + 1;
    payloads.push_back(encode_record(started));
  }
  if (entry.terminal) {
    JournalRecord terminal;
    terminal.type = terminal_type(entry.terminal->status);
    terminal.id = id;
    terminal.fp = entry.fp;
    terminal.attempt = entry.terminal_attempt;
    terminal.response = *entry.terminal;
    terminal.digest = response_digest(*entry.terminal);
    payloads.push_back(encode_record(terminal));
  }
  return payloads;
}

void RequestJournal::maybe_compact() {
  if (degraded_) return;  // compaction is pure I/O; a degraded journal defers it
  int delivered = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.terminal && entry.delivered) ++delivered;
  }
  if (delivered < config_.compact_min_delivered) return;

  // Snapshot everything still needed — live requests and undelivered
  // terminals — into one fresh segment, atomically, then drop history.
  ByteWriter snapshot;
  for (const auto& [id, entry] : entries_) {
    if (entry.terminal && entry.delivered) continue;
    for (const std::vector<std::uint8_t>& payload : encode_entry_records(id, entry)) {
      const std::vector<std::uint8_t> framed = frame_record(payload);
      snapshot.raw(framed.data(), framed.size());
    }
  }

  // The active segment (if open) is superseded by the snapshot too.
  if (active_fd_ >= 0) abandon_active_segment();

  const std::uint64_t snapshot_seq = active_seq_;
  ++active_seq_;
  const std::string snapshot_path = config_.dir + "/" + segment_name(snapshot_seq);
  const std::string tmp_path = snapshot_path + ".tmp";

  // A failed compaction must never crash the process OR lose history: on any
  // fault before the publish rename is durable, the tmp file is abandoned
  // (its ".tmp" suffix keeps it invisible to the scanner), the sealed
  // segments stay exactly where they were — still merge-consistent — and a
  // persistent fault degrades the journal for the probe to heal.
  const auto compaction_failed = [&](const std::string& what, int err) {
    ::unlink(tmp_path.c_str());  // best effort; a stray .tmp is inert
    if (io::classify_io_errno(err) == io::IoErrorClass::kPersistent) {
      enter_degraded(what + ": " + std::strerror(err));
    }
    // Transient trouble: skip this compaction round; appends reopen a fresh
    // active segment lazily and a later acknowledge retries the compaction.
  };

  int err = 0;
  const int fd = io::open("journal.compact.open", tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    compaction_failed("cannot open " + tmp_path, errno);
    return;
  }
  err = io::write_all("journal.compact.write", fd, snapshot.data().data(),
                      snapshot.size());
  if (err == 0 && io::fsync("journal.compact.fsync", fd) != 0) err = errno;
  if (io::close("journal.compact.close", fd) != 0) {
    ++stats_.close_errors;
    if (err == 0) err = errno;  // deferred write error: the snapshot is suspect
  }
  if (err != 0) {
    compaction_failed("cannot write " + tmp_path, err);
    return;
  }

  crash_point("journal.compact.before_publish");
  if (io::rename("journal.compact.rename", tmp_path.c_str(),
                 snapshot_path.c_str()) != 0) {
    compaction_failed("cannot publish " + snapshot_path, errno);
    return;
  }
  if (const int dir_err = fsync_dir(config_.dir); dir_err != 0) {
    // The publish rename may not be durable: keep every old segment (the
    // snapshot is redundant with them, so correctness is preserved either
    // way) and skip the cleanup below.
    sealed_segments_.emplace_back(snapshot_seq, snapshot_path);
    if (io::classify_io_errno(dir_err) == io::IoErrorClass::kPersistent) {
      enter_degraded("cannot sync journal directory: " +
                     std::string(std::strerror(dir_err)));
    }
    return;
  }
  crash_point("journal.compact.after_publish");

  // History is now redundant: every record that matters lives in the
  // snapshot, and a crash mid-cleanup merely leaves extra segments whose
  // records the next scan merges idempotently. A failed unlink is the same
  // benign overlap, so it is not even an error — the file just lingers.
  for (const auto& [seq, path] : sealed_segments_) {
    io::unlink("journal.compact.unlink", path.c_str());
  }
  sealed_segments_.clear();
  fsync_dir(config_.dir);
  crash_point("journal.compact.after_cleanup");

  sealed_segments_.emplace_back(snapshot_seq, snapshot_path);
  std::erase_if(entries_, [](const auto& kv) {
    return kv.second.terminal && kv.second.delivered;
  });
  ++stats_.compactions;
  if (!open_active_segment(&err)) {
    enter_degraded("cannot open journal segment after compaction: " +
                   std::string(std::strerror(err)));
  }
}

void RequestJournal::apply(const JournalRecord& record, std::vector<std::string>* warnings) {
  auto it = entries_.find(record.id);
  switch (record.type) {
    case JournalRecordType::kAccepted: {
      if (it != entries_.end() && !(it->second.fp == record.fp)) {
        warnings->push_back("request '" + record.id +
                            "': conflicting problem fingerprints across records; "
                            "keeping the newest");
        it->second.terminal.reset();
      }
      Entry& entry = entries_[record.id];
      entry.request = record.request;
      entry.fp = record.fp;
      entry.attempts_used = std::max(entry.attempts_used, record.attempts_used);
      break;
    }
    case JournalRecordType::kStarted:
      if (it == entries_.end()) {
        warnings->push_back("request '" + record.id +
                            "': started record without an accepted record (dropped)");
        break;
      }
      it->second.started = true;
      break;
    case JournalRecordType::kRetry:
      if (it == entries_.end()) {
        warnings->push_back("request '" + record.id +
                            "': retry record without an accepted record (dropped)");
        break;
      }
      it->second.attempts_used = std::max(it->second.attempts_used, record.attempt);
      break;
    case JournalRecordType::kDone:
    case JournalRecordType::kFaulted:
    case JournalRecordType::kRejected: {
      if (it == entries_.end()) {
        warnings->push_back("request '" + record.id +
                            "': terminal record without an accepted record (dropped)");
        break;
      }
      if (response_digest(record.response) != record.digest) {
        warnings->push_back("request '" + record.id +
                            "': terminal record digest mismatch; result not replayed "
                            "(request stays live and re-executes)");
        break;
      }
      Entry& entry = it->second;
      entry.terminal = record.response;
      entry.terminal->label = entry.request.label;
      entry.terminal_attempt = record.attempt;
      // An overloaded/degraded shed is terminal bookkeeping only — nobody
      // holds a handle for it, so it must never be replayed as an answer.
      entry.delivered = record.response.status == ResponseStatus::kOverloaded ||
                        record.response.status == ResponseStatus::kDegraded;
      break;
    }
  }
}

std::vector<RequestJournal::Recovered> RequestJournal::take_recovered() {
  std::lock_guard lock(mutex_);
  std::vector<Recovered> recovered;
  if (recovered_taken_) return recovered;
  recovered_taken_ = true;
  for (const auto& [id, entry] : entries_) {
    if (entry.terminal && entry.delivered) continue;  // overloaded sheds
    if (!entry.terminal && entry.request.problem_bytes.empty()) {
      scan_warnings_.push_back("request '" + id +
                               "': live entry without problem bytes (dropped)");
      continue;
    }
    Recovered r;
    r.request = entry.request;
    r.attempts_used = entry.attempts_used;
    r.started = entry.started;
    if (entry.terminal) r.replay = *entry.terminal;
    recovered.push_back(std::move(r));
  }
  return recovered;
}

std::vector<std::string> RequestJournal::recovery_warnings() const {
  std::lock_guard lock(mutex_);
  return scan_warnings_;
}

AppendOutcome RequestJournal::append_accepted(const PlanningRequest& request,
                                              const ProblemFp& fp) {
  JournalRecord record;
  record.type = JournalRecordType::kAccepted;
  record.id = request.id;
  record.fp = fp;
  record.request = request;

  std::lock_guard lock(mutex_);
  const AppendOutcome outcome = append_record(encode_record(record));
  if (outcome == AppendOutcome::kDegraded) {
    // The caller is about to shed this request un-acknowledged; entering it
    // into journal state would let a later re-arm resurrect work whose
    // submitter was told "not accepted".
    return outcome;
  }
  Entry& entry = entries_[request.id];
  entry.request = request;
  entry.fp = fp;
  return outcome;
}

AppendOutcome RequestJournal::append_started(const std::string& id, int attempt) {
  JournalRecord record;
  record.type = JournalRecordType::kStarted;
  record.id = id;
  record.attempt = attempt;

  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    record.fp = it->second.fp;
    it->second.started = true;
  }
  const AppendOutcome outcome = append_record(encode_record(record));
  if (outcome == AppendOutcome::kDegraded && it != entries_.end()) {
    it->second.dirty = true;
  }
  return outcome;
}

AppendOutcome RequestJournal::append_retry(const std::string& id, int attempt,
                                           const std::string& error,
                                           double backoff_seconds) {
  JournalRecord record;
  record.type = JournalRecordType::kRetry;
  record.id = id;
  record.attempt = attempt;
  record.error = error;
  record.backoff_seconds = backoff_seconds;

  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    record.fp = it->second.fp;
    it->second.attempts_used = std::max(it->second.attempts_used, attempt);
  }
  const AppendOutcome outcome = append_record(encode_record(record));
  if (outcome == AppendOutcome::kDegraded && it != entries_.end()) {
    it->second.dirty = true;
  }
  return outcome;
}

AppendOutcome RequestJournal::append_terminal(const PlanningResponse& response,
                                              int attempt) {
  JournalRecord record;
  record.type = terminal_type(response.status);
  record.id = response.id;
  record.attempt = attempt;
  record.response = response;
  record.digest = response_digest(response);

  std::lock_guard lock(mutex_);
  const auto it = entries_.find(response.id);
  if (it != entries_.end()) {
    record.fp = it->second.fp;
    it->second.terminal = response;
    it->second.terminal_attempt = attempt;
    it->second.delivered = response.status == ResponseStatus::kOverloaded ||
                           response.status == ResponseStatus::kDegraded;
  }
  const AppendOutcome outcome = append_record(encode_record(record));
  if (outcome == AppendOutcome::kDegraded && it != entries_.end()) {
    // In-memory state keeps tracking reality while degraded; the terminal
    // record reaches disk via the re-arm reconciliation. Without it, the
    // pre-fault kAccepted record alone would re-execute this request on
    // restart — and double-answer it if the caller already got the response.
    it->second.dirty = true;
  }
  return outcome;
}

bool RequestJournal::durable() const {
  std::lock_guard lock(mutex_);
  return !degraded_;
}

std::string RequestJournal::degraded_reason() const {
  std::lock_guard lock(mutex_);
  return degraded_ ? degraded_reason_ : std::string();
}

bool RequestJournal::try_rearm() {
  std::lock_guard lock(mutex_);
  if (!degraded_) return true;

  // Probe: a fresh segment that opens and fsyncs proves the disk can take
  // durable writes again. enter_degraded() always closes the active fd, so a
  // degraded journal reaches here with active_fd_ < 0; a failed probe closes
  // it again WITHOUT sealing (the segment is empty — sealing every failed
  // probe would grow the sealed list without bound).
  int err = 0;
  if (active_fd_ < 0 && !open_active_segment(&err)) return false;
  if (io::fsync("journal.probe.fsync", active_fd_) != 0) {
    ::close(active_fd_);
    active_fd_ = -1;
    return false;
  }

  // Tentatively durable: run the reconciliation through the normal append
  // machinery (full retry discipline); any failure re-degrades and the whole
  // pass — idempotent against both pre-fault segments and a partial previous
  // reconciliation — reruns on the next probe.
  degraded_ = false;
  std::int64_t reconciled = 0;
  for (auto& [id, entry] : entries_) {
    if (!entry.dirty) continue;
    for (const std::vector<std::uint8_t>& payload : encode_entry_records(id, entry)) {
      if (append_record(payload) == AppendOutcome::kDegraded) return false;
    }
    entry.dirty = false;
    ++reconciled;
  }
  degraded_reason_.clear();
  ++stats_.rearms;
  stats_.reconciled += reconciled;
  return true;
}

void RequestJournal::acknowledge_delivered(const std::string& id) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.terminal) return;
  it->second.delivered = true;
  maybe_compact();
}

RequestJournal::Stats RequestJournal::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats = stats_;
  stats.degraded = degraded_;
  for (const auto& [id, entry] : entries_) {
    if (!entry.terminal) ++stats.live;
    else if (!entry.delivered) ++stats.undelivered;
  }
  return stats;
}

std::vector<std::pair<std::string, std::uint64_t>> RequestJournal::segment_sizes()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> sizes;
  const auto stat_size = [](const std::string& path) -> std::uint64_t {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
  };
  for (const auto& [seq, path] : sealed_segments_) {
    sizes.emplace_back(path, stat_size(path));
  }
  if (active_fd_ >= 0) {
    const std::string path = config_.dir + "/" + segment_name(active_seq_);
    sizes.emplace_back(path, stat_size(path));
  }
  return sizes;
}

}  // namespace nptsn
