// TRH baseline (Gavrilut et al., RTNS 2017 — ref [4]): topology synthesis
// for TSN with static FRER protection. Per flow, a fixed number of
// node-disjoint paths is grown over the connection graph with a
// breadth-first/shortest-path heuristic that prefers reusing already-planned
// links. All components get one uniform ASIL (B in the paper's comparison:
// two disjoint ASIL-B paths decompose the ASIL-D requirement). TRH does not
// consider schedulability during synthesis — the FRER schedule is checked
// afterwards, which is exactly why it degrades as load grows (Fig. 4(a)).
#pragma once

#include <optional>

#include "net/topology.hpp"
#include "tsn/frer.hpp"

namespace nptsn {

struct TrhConfig {
  int redundant_paths = 2;   // disjoint FRER paths per flow
  Asil level = Asil::B;      // uniform component ASIL
  int path_candidates = 8;   // shortest-path candidates tried per replica
};

struct TrhResult {
  bool valid = false;        // paths_found && schedulable
  bool paths_found = false;  // every flow got its disjoint paths
  bool schedulable = false;  // the static FRER schedule fits
  double cost = 0.0;
  std::optional<Topology> topology;  // present when paths_found
  FrerPlan plan;                     // the replica paths per flow
};

TrhResult run_trh(const PlanningProblem& problem, const TrhConfig& config = {});

}  // namespace nptsn
