#include "baselines/neuroplan.hpp"

#include "util/expect.hpp"

namespace nptsn {

NeuroPlanEnv::NeuroPlanEnv(const PlanningProblem& problem, const StatelessNbf& nbf,
                           const NptsnConfig& config, SolutionRecorder& recorder)
    : problem_(&problem),
      config_(&config),
      analyzer_(nbf,
                [&config] {
                  FailureAnalyzer::Options options;
                  options.min_order = config.min_frontier_order;
                  options.include_links = config.frontier_include_links;
                  options.deadline = config.deadline.get();
                  return options;
                }()),
      encoder_(problem, /*k=*/1),
      recorder_(&recorder),
      links_(problem.connections.edges()),
      topology_(problem) {
  problem.validate();
  if (config.use_verification_engine) {
    VerificationEngine::Options options;
    options.num_threads = config.verification_threads;
    options.min_order = config.min_frontier_order;
    options.include_links = config.frontier_include_links;
    options.deadline = config.deadline.get();
    engine_ = std::make_unique<VerificationEngine>(nbf, options);
  }
  // The encoder's dynamic-action block stays empty: NeuroPlan's actions are
  // static, so the state alone describes them (its original design).
  dummy_actions_.actions.resize(static_cast<std::size_t>(problem.num_switches()) + 1);
  dummy_actions_.actions.back().kind = Action::Kind::kAddPath;
  dummy_actions_.mask.assign(dummy_actions_.actions.size(), 0);
  refresh_mask();
}

int NeuroPlanEnv::num_actions() const {
  return static_cast<int>(links_.size()) + problem_->num_switches();
}

Observation NeuroPlanEnv::observe() const {
  return encoder_.encode(topology_, dummy_actions_);
}

const std::vector<std::uint8_t>& NeuroPlanEnv::action_mask() const { return mask_; }

bool NeuroPlanEnv::link_addable(const Edge& edge) const {
  if (topology_.has_link(edge.u, edge.v)) return false;
  for (const NodeId v : {edge.u, edge.v}) {
    const int max_degree = problem_->is_switch(v) ? problem_->max_switch_degree()
                                                  : problem_->max_es_degree;
    if (topology_.degree(v) + 1 > max_degree) return false;
  }
  return true;
}

void NeuroPlanEnv::refresh_mask() {
  mask_.assign(static_cast<std::size_t>(num_actions()), 0);
  for (std::size_t e = 0; e < links_.size(); ++e) {
    if (link_addable(links_[e])) mask_[e] = 1;
  }
  const auto switches = problem_->switch_ids();
  for (std::size_t s = 0; s < switches.size(); ++s) {
    const NodeId v = switches[s];
    if (topology_.has_switch(v) && topology_.switch_asil(v) != Asil::D) {
      mask_[links_.size() + s] = 1;
    }
  }
}

NeuroPlanEnv::StepResult NeuroPlanEnv::step(int action) {
  NPTSN_EXPECT(action >= 0 && action < num_actions(), "action index out of range");
  NPTSN_EXPECT(mask_[static_cast<std::size_t>(action)] != 0, "selected a masked action");

  const double cost_before = topology_.cost();
  if (action < static_cast<int>(links_.size())) {
    const Edge& edge = links_[static_cast<std::size_t>(action)];
    for (const NodeId v : {edge.u, edge.v}) {
      if (problem_->is_switch(v) && !topology_.has_switch(v)) topology_.add_switch(v);
    }
    topology_.add_link(edge.u, edge.v);
  } else {
    const NodeId v =
        problem_->switch_ids()[static_cast<std::size_t>(action) - links_.size()];
    topology_.upgrade_switch(v);
  }
  ++episode_steps_;

  StepResult result;
  result.reward = (cost_before - topology_.cost()) / config_->reward_scale;

  const AnalysisOutcome analysis = analyze();
  refresh_mask();
  if (analysis.reliable) {
    recorder_->record(topology_);
    result.episode_end = true;
    return result;
  }
  bool stuck = true;
  for (const auto m : mask_) {
    if (m) {
      stuck = false;
      break;
    }
  }
  if (stuck || episode_steps_ >= kMaxEpisodeSteps) {
    result.reward -= 1.0;  // same dead-end penalty as NPTSN
    result.episode_end = true;
  }
  return result;
}

AnalysisOutcome NeuroPlanEnv::analyze() {
  AnalysisOutcome outcome =
      engine_ ? engine_->analyze(topology_) : analyzer_.analyze(topology_);
  stats_.verify_calls += outcome.nbf_calls;
  stats_.verify_executed += outcome.nbf_executed;
  stats_.verify_memo_hits += outcome.memo_hits;
  stats_.verify_residual_reuses += outcome.residual_reuses;
  stats_.verify_seconds += outcome.wall_seconds;
  return outcome;
}

void NeuroPlanEnv::reset() {
  topology_ = Topology(*problem_);
  episode_steps_ = 0;
  refresh_mask();
}

NeuroPlanResult run_neuroplan(const PlanningProblem& problem, const StatelessNbf& nbf,
                              const NptsnConfig& config,
                              const Trainer::EpochCallback& on_epoch) {
  problem.validate();

  SolutionRecorder recorder;
  const ObservationEncoder encoder(problem, /*k=*/1);
  const int num_actions =
      problem.connections.num_edges() + problem.num_switches();

  ActorCritic::Config net_config;
  net_config.num_nodes = problem.num_nodes();
  net_config.feature_dim = encoder.feature_dim();
  net_config.param_dim = encoder.param_dim();
  net_config.num_actions = num_actions;
  net_config.gcn_layers = config.gcn_layers;
  net_config.embedding_dim = config.embedding_dim;
  net_config.actor_hidden = config.mlp_hidden;
  net_config.critic_hidden = config.mlp_hidden;

  Rng rng(config.seed);
  ActorCritic net(net_config, rng);

  TrainerConfig trainer_config;
  trainer_config.epochs = config.epochs;
  trainer_config.steps_per_epoch = config.steps_per_epoch;
  trainer_config.gamma = config.discount_factor;
  trainer_config.gae_lambda = config.gae_lambda;
  trainer_config.actor_lr = config.actor_lr;
  trainer_config.critic_lr = config.critic_lr;
  trainer_config.ppo.clip_ratio = config.clip_ratio;
  trainer_config.ppo.train_actor_iters = config.train_actor_iters;
  trainer_config.ppo.train_critic_iters = config.train_critic_iters;
  trainer_config.ppo.target_kl = config.target_kl;
  trainer_config.num_workers = config.num_workers;
  trainer_config.seed = rng.next_u64();
  trainer_config.max_wall_seconds = config.max_wall_seconds;
  trainer_config.max_total_steps = config.max_total_steps;
  trainer_config.deadline = config.deadline.get();

  Trainer trainer(
      net,
      [&] { return std::make_unique<NeuroPlanEnv>(problem, nbf, config, recorder); },
      trainer_config);

  NeuroPlanResult result;
  result.history = trainer.train(on_epoch);
  result.feasible = recorder.has_solution();
  result.best = recorder.best();
  result.best_cost = recorder.best_cost();
  result.solutions_found = recorder.solutions_found();
  return result;
}

}  // namespace nptsn
