#include "baselines/trh.hpp"

#include "graph/yen.hpp"
#include "util/expect.hpp"

namespace nptsn {
namespace {

// Link weight that makes shortest-path search prefer links already planned,
// the "grow the topology, reuse what exists" behavior of TRH.
constexpr double kReusedLinkWeight = 0.125;
// Extra weight per unit of endpoint degree on NEW links: spreads station
// attachments across switches instead of saturating the first two.
constexpr double kDegreePressure = 0.125;
// Ports per switch kept free for switch-to-switch links; without this the
// synthesis wedges itself (all ports consumed by stations, no fabric left).
constexpr int kReservedFabricPorts = 2;

// Gc re-weighted by current topology membership; links that can no longer
// be added are dropped from the search graph.
Graph weighted_connections(const PlanningProblem& problem, const Topology& topology) {
  Graph g(problem.num_nodes());
  auto max_degree = [&](NodeId v) {
    return problem.is_switch(v) ? problem.max_switch_degree() : problem.max_es_degree;
  };
  for (const auto& edge : problem.connections.edges()) {
    if (topology.has_link(edge.u, edge.v)) {
      g.add_edge(edge.u, edge.v, kReusedLinkWeight);
      continue;
    }
    bool addable = true;
    for (const NodeId v : {edge.u, edge.v}) {
      int limit = max_degree(v);
      // A switch keeps fabric ports free for station-to-station transit
      // unless the new link itself is a fabric (switch-switch) link.
      const bool station_link = !problem.is_switch(edge.u) || !problem.is_switch(edge.v);
      if (problem.is_switch(v) && station_link) limit -= kReservedFabricPorts;
      if (topology.degree(v) + 1 > limit) addable = false;
    }
    if (!addable) continue;
    const double pressure =
        kDegreePressure * (topology.degree(edge.u) + topology.degree(edge.v));
    g.add_edge(edge.u, edge.v, edge.length + pressure);
  }
  return g;
}

// Ensures every switch on the path is planned at `level` before linking.
void plan_path(Topology& topology, const Path& path, Asil level) {
  const PlanningProblem& problem = topology.problem();
  for (const NodeId v : path) {
    if (problem.is_switch(v) && !topology.has_switch(v)) {
      topology.add_switch(v);
      while (topology.switch_asil(v) != level) topology.upgrade_switch(v);
    }
  }
  topology.add_path(path);
}

}  // namespace

TrhResult run_trh(const PlanningProblem& problem, const TrhConfig& config) {
  problem.validate();
  NPTSN_EXPECT(config.redundant_paths >= 1, "need at least one path per flow");
  NPTSN_EXPECT(config.path_candidates >= 1, "need at least one candidate");

  TrhResult result;
  Topology topology(problem);
  result.plan.resize(problem.flows.size());

  TransitFilter can_transit(static_cast<std::size_t>(problem.num_nodes()), 1);
  for (NodeId v = 0; v < problem.num_end_stations; ++v) {
    can_transit[static_cast<std::size_t>(v)] = 0;
  }

  result.paths_found = true;
  for (std::size_t f = 0; f < problem.flows.size() && result.paths_found; ++f) {
    const FlowSpec& flow = problem.flows[f];
    // Replica paths must be node-disjoint (shared endpoints aside); removed
    // holds the interior nodes claimed by this flow's earlier replicas.
    std::vector<NodeId> removed;
    for (int r = 0; r < config.redundant_paths; ++r) {
      Graph g = weighted_connections(problem, topology);
      for (const NodeId v : removed) g.remove_node(v);

      const auto candidates = k_shortest_paths(g, flow.source, flow.destination,
                                               config.path_candidates, &can_transit);
      bool planned = false;
      for (const Path& path : candidates) {
        if (!topology.path_respects_degrees(path)) continue;
        plan_path(topology, path, config.level);
        result.plan[f].push_back(path);
        for (std::size_t i = 1; i + 1 < path.size(); ++i) removed.push_back(path[i]);
        planned = true;
        break;
      }
      if (!planned) {
        result.paths_found = false;
        break;
      }
    }
  }

  if (result.paths_found) {
    result.cost = topology.cost();
    result.schedulable = schedule_frer(problem, result.plan).schedulable;
    result.topology = std::move(topology);
  }
  result.valid = result.paths_found && result.schedulable;
  return result;
}

}  // namespace nptsn
