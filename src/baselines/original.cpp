#include "baselines/original.hpp"

#include "util/expect.hpp"

namespace nptsn {

Topology build_uniform_topology(const PlanningProblem& problem,
                                const std::vector<Edge>& links, Asil level) {
  Topology topology(problem);
  for (const auto& edge : links) {
    for (const NodeId v : {edge.u, edge.v}) {
      if (problem.is_switch(v) && !topology.has_switch(v)) {
        topology.add_switch(v);
        while (topology.switch_asil(v) != level) topology.upgrade_switch(v);
      }
    }
  }
  for (const auto& edge : links) topology.add_link(edge.u, edge.v);
  return topology;
}

OriginalResult evaluate_original(const PlanningProblem& problem,
                                 const std::vector<Edge>& links, const StatelessNbf& nbf,
                                 Asil level) {
  problem.validate();
  NPTSN_EXPECT(!links.empty(), "the original design must have links");
  const Topology topology = build_uniform_topology(problem, links, level);

  OriginalResult result;
  result.cost = topology.cost();
  result.analysis = FailureAnalyzer(nbf).analyze(topology);
  result.valid = result.analysis.reliable;
  return result;
}

}  // namespace nptsn
