// NeuroPlan-style baseline (Zhu et al., SIGCOMM 2021 — ref [16]) adapted to
// the TSSDN planning problem as in Section VI-A: the same GCN + actor-critic
// PPO agent as NPTSN, but with NeuroPlan's STATIC action space — one
// link-addition action per optional Gc link (adding a link implicitly plans
// absent endpoint switches at ASIL-A) plus one ASIL-upgrade action per
// optional switch. No SOAG: no failure-analysis-driven pruning, no path
// actions. Rewards/penalties and the failure analyzer are identical to
// NPTSN's environment, per the paper's adaptation. The ILP refinement stage
// of NeuroPlan is omitted exactly as in the paper (run-time recovery cannot
// be expressed with linear constraints).
#pragma once

#include <cstdint>
#include <optional>

#include "core/environment.hpp"
#include "rl/trainer.hpp"

namespace nptsn {

class NeuroPlanEnv final : public Environment {
 public:
  NeuroPlanEnv(const PlanningProblem& problem, const StatelessNbf& nbf,
               const NptsnConfig& config, SolutionRecorder& recorder);

  int num_actions() const override;
  Observation observe() const override;
  const std::vector<std::uint8_t>& action_mask() const override;
  StepResult step(int action) override;
  void reset() override;

  const Topology& topology() const { return topology_; }
  Stats stats() const override { return stats_; }

  // Long trajectories are NeuroPlan's documented weakness; a generous cap
  // keeps a stuck episode from absorbing a whole epoch.
  static constexpr int kMaxEpisodeSteps = 256;

 private:
  void refresh_mask();
  bool link_addable(const Edge& edge) const;
  AnalysisOutcome analyze();

  const PlanningProblem* problem_;
  const NptsnConfig* config_;
  FailureAnalyzer analyzer_;
  std::unique_ptr<VerificationEngine> engine_;  // same knob as PlanningEnv
  ObservationEncoder encoder_;
  SolutionRecorder* recorder_;
  Stats stats_;

  std::vector<Edge> links_;  // Gc edges, fixed order = action ids
  Topology topology_;
  std::vector<std::uint8_t> mask_;
  ActionSpace dummy_actions_;  // empty dynamic block for the shared encoder
  int episode_steps_ = 0;
};

struct NeuroPlanResult {
  bool feasible = false;
  double best_cost = 0.0;
  std::optional<Topology> best;
  std::int64_t solutions_found = 0;
  std::vector<EpochStats> history;
};

// Trains the NeuroPlan agent with the same hyper-parameters NPTSN uses.
NeuroPlanResult run_neuroplan(const PlanningProblem& problem, const StatelessNbf& nbf,
                              const NptsnConfig& config,
                              const Trainer::EpochCallback& on_epoch = {});

}  // namespace nptsn
