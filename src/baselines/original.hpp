// "Original" baseline (Section VI-A): a manually designed fixed topology
// with one uniform ASIL level for every component, evaluated with the same
// failure analyzer as NPTSN.
#pragma once

#include <vector>

#include "analysis/failure_analyzer.hpp"

namespace nptsn {

// Builds a Topology from a fixed link list: every switch touched by a link
// is planned and upgraded to `level`; all listed links are added.
// Every link must be part of problem.connections.
Topology build_uniform_topology(const PlanningProblem& problem,
                                const std::vector<Edge>& links, Asil level);

struct OriginalResult {
  bool valid = false;  // reliability guarantee holds under the NBF
  double cost = 0.0;
  AnalysisOutcome analysis;
};

OriginalResult evaluate_original(const PlanningProblem& problem,
                                 const std::vector<Edge>& links, const StatelessNbf& nbf,
                                 Asil level = Asil::D);

}  // namespace nptsn
