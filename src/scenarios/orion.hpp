// The ORION design scenario (Section VI-A): the network planning problem
// abstracted from the ORION crew exploration vehicle (Tamas-Selicean et al.,
// ref [30]) — 31 end stations, 15 optional switches.
//
// The exact ORION wiring is not reproduced in the paper; we reconstruct a
// reference topology with the structural properties the paper relies on
// (every end station single-homed to one switch, a redundant switch mesh,
// switch degrees within the 8-port limit). The connection graph Gc is then
// derived exactly as in the paper: an optional unit-length link exists for
// every node pair within 3 hops of the reference topology (end-station to
// end-station pairs excluded; end stations cannot relay). Base period
// 500 us / 20 slots, R = 1e-6.
#pragma once

#include "scenarios/scenario.hpp"

namespace nptsn {

inline constexpr int kOrionEndStations = 31;
inline constexpr int kOrionSwitches = 15;

Scenario make_orion();

}  // namespace nptsn
