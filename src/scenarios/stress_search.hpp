// Adaptive stress search over the generator's parameter space.
//
// Following the Adaptive Stress Testing idea (Koren & Kochenderfer): treat
// the generator parameters + instance seed as the action space of a searcher
// whose objective is PLANNER FAILURE, not planner success. Each probe
// generates an instance, runs a short budgeted plan() under a deterministic
// deadline token plus the TRH baseline for a cost reference, and scores the
// outcome:
//
//   * timeout      — plan() exhausted its tick budget (scored by verification
//                    work, Deadline::ticks());
//   * audit-reject — the independent final audit rejected the plan;
//   * anomaly      — the health supervisor logged incidents;
//   * cost-gap     — NPTSN found a plan but lost badly on Eq. 1 cost against
//                    the cheap TRH heuristic.
//
// The search itself is a seeded hill climb with restarts: perturb one
// parameter at a time (clamped to the valid space, so generation never
// throws), keep the perturbation when the score does not drop, and collect
// the top-K distinct offenders (deduplicated by problem fingerprint) across
// all restarts.
//
// Everything is deterministic by construction: probes run single-worker /
// single-threaded, budgets are pure tick counts (no wall clock anywhere in
// scoring), and the searcher's randomness is one seeded Rng — the same
// config reproduces the same offender set on any machine. Offenders persist
// into the regression corpus (scenarios/corpus) for CI replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenarios/corpus.hpp"

namespace nptsn {

struct StressConfig {
  std::uint64_t seed = 1;

  // Search shape: `restarts` independent hill climbs of `rounds` probes each.
  int restarts = 4;
  int rounds = 16;
  int top_k = 12;  // offenders kept (distinct by problem fingerprint)

  // Probe budget: a deliberately short training run — the searcher wants
  // instances that hurt even tiny runs.
  int plan_epochs = 2;
  int steps_per_epoch = 48;
  // Deterministic deadline for each probe's plan() call (cooperative work
  // units: environment steps + enumerated scenarios). No wall-clock budget —
  // scoring must not depend on machine speed.
  std::int64_t plan_tick_budget = 60'000;

  // Cost-gap threshold: relative Eq. 1 excess over a valid TRH plan before
  // an instance counts as a cost-gap offender.
  double cost_gap_threshold = 0.25;

  // Frontier shape for every probe's plan() (core/config.hpp): a floor > 0
  // re-scores the corpus against deeper failure frontiers (the nightly soak
  // replays at min_frontier_order = 2), include_links adds mixed
  // link/switch scenarios. Both default to Algorithm 3.
  int min_frontier_order = 0;
  bool frontier_include_links = false;
};

struct StressProbe {
  GeneratorParams params;
  std::uint64_t instance_seed = 0;
  double score = 0.0;           // 0 = planner did fine
  bool offender = false;
  OffenderKind kind = OffenderKind::kTimeout;  // valid when offender
  std::string detail;
};

struct StressResult {
  // Top-K offenders, hardest first (score descending, fingerprint as the
  // deterministic tiebreak). Distinct by problem fingerprint.
  std::vector<CorpusEntry> offenders;
  std::int64_t probes = 0;
  std::int64_t offender_probes = 0;
};

// Runs the search. Deterministic for a fixed config.
StressResult stress_search(const StressConfig& config);

// One probe (exposed for tests and the corpus cross-check): generates the
// instance and scores the planner against it under the deterministic budget.
StressProbe stress_probe(const GeneratorParams& params, std::uint64_t instance_seed,
                         const StressConfig& config);

}  // namespace nptsn
