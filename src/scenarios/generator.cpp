#include "scenarios/generator.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace nptsn {
namespace {

void require(bool ok, const std::string& msg) {
  if (!ok) throw ValidationError("invalid generator parameters: " + msg);
}

}  // namespace

void validate_params(const GeneratorParams& params) {
  require(params.zones >= 1, "need at least one zone");
  require(params.stations_per_zone >= 1, "need at least one end station per zone");
  require(params.zones <= 64 && params.stations_per_zone <= 64 &&
              params.switches_per_zone <= 64 && params.backbone_switches <= 64,
          "zonal dimensions are capped at 64");
  require(params.zones * params.stations_per_zone >= 2,
          "need at least two end stations in total");
  require(params.switches_per_zone >= 1, "need at least one switch per zone");
  require(params.backbone_switches >= 0, "backbone size must be non-negative");
  require(params.cross_link_prob >= 0.0 && params.cross_link_prob <= 1.0,
          "cross-link probability must be in [0, 1]");
  require(std::isfinite(params.length_scale) && params.length_scale > 0.0,
          "length scale must be finite and positive");
  require(params.flow_count >= 1, "need at least one flow");
  require(params.flow_count <= 4096, "flow count is capped at 4096");
  // Bounded so the derived flow periods (base / 2^k) can neither underflow
  // into subnormals nor trip the frames-per-base overflow guard — the
  // by-construction validity contract must hold across the whole space.
  require(std::isfinite(params.base_period_us) && params.base_period_us >= 1e-3 &&
              params.base_period_us <= 1e9,
          "base period must be in [1e-3, 1e9] microseconds");
  require(params.slots_per_base >= 1, "need at least one slot per base period");
  require(params.max_period_divisor_log2 >= 0 && params.max_period_divisor_log2 <= 20,
          "period divisor exponent must be in [0, 20]");
  require(std::isfinite(params.reliability_goal) && params.reliability_goal > 0.0 &&
              params.reliability_goal < 1.0,
          "reliability goal must be in (0, 1)");
  require(params.max_es_degree >= 1, "end stations need at least one port");
  require(params.library_variant >= 0 && params.library_variant < kNumLibraryVariants,
          "unknown library variant");
}

ComponentLibrary library_variant(int variant) {
  require(variant >= 0 && variant < kNumLibraryVariants, "unknown library variant");
  const ComponentLibrary base = ComponentLibrary::standard();
  if (variant == 0) return base;

  // Rebuild through the public accessors so variants track any future change
  // to the Table I numbers instead of hard-coding a second copy.
  std::vector<SwitchModel> models = base.models();
  std::array<double, kNumAsilLevels> link_cost{};
  std::array<double, kNumAsilLevels> failure_prob{};
  for (int level = 0; level < kNumAsilLevels; ++level) {
    link_cost[static_cast<std::size_t>(level)] =
        base.link_cost(static_cast<Asil>(level), 1.0);
    failure_prob[static_cast<std::size_t>(level)] =
        base.failure_prob(static_cast<Asil>(level));
  }

  switch (variant) {
    case 1:  // premium: an order of magnitude more reliable, twice the cost
      for (auto& m : models) {
        for (double& c : m.cost) c *= 2.0;
      }
      for (double& c : link_cost) c *= 2.0;
      for (double& p : failure_prob) p *= 0.1;
      break;
    case 2:  // budget: cheaper components, an order of magnitude less reliable
      for (auto& m : models) {
        for (double& c : m.cost) c *= 0.5;
      }
      for (double& c : link_cost) c *= 0.5;
      for (double& p : failure_prob) {
        p = std::min(p * 10.0, 0.5);  // stays inside the library's (0, 1) bound
      }
      break;
    case 3: {  // extended: one larger model continuing the cost progression
      SwitchModel big;
      big.ports = models.back().ports + 4;
      for (std::size_t level = 0; level < big.cost.size(); ++level) {
        big.cost[level] = models.back().cost[level] * 1.5;
      }
      models.push_back(big);
      break;
    }
    default:
      break;
  }
  return ComponentLibrary(std::move(models), link_cost, failure_prob);
}

PlanningProblem generate(const GeneratorParams& params, std::uint64_t seed) {
  validate_params(params);
  Rng rng(seed);

  const int num_stations = params.zones * params.stations_per_zone;
  const int num_zone_switches = params.zones * params.switches_per_zone;
  const int num_switches = num_zone_switches + params.backbone_switches;
  const int num_nodes = num_stations + num_switches;

  PlanningProblem problem;
  problem.connections = Graph(num_nodes);
  problem.num_end_stations = num_stations;
  problem.tsn.base_period_us = params.base_period_us;
  problem.tsn.slots_per_base = params.slots_per_base;
  problem.reliability_goal = params.reliability_goal;
  problem.max_es_degree = params.max_es_degree;
  problem.library = library_variant(params.library_variant);

  // Node layout: end stations [0, S) zone-major, then zone switches
  // [S, S + Z*W) zone-major, then backbone switches.
  auto station_id = [&](int zone, int s) {
    return zone * params.stations_per_zone + s;
  };
  auto zone_switch_id = [&](int zone, int w) {
    return num_stations + zone * params.switches_per_zone + w;
  };
  auto backbone_id = [&](int b) { return num_stations + num_zone_switches + b; };

  // Cable lengths: zone-internal harness runs are short, backbone runs long.
  // Drawn per link (deterministic stream order: links are emitted in a fixed
  // nested-loop order, so the byte image is a pure function of the inputs).
  auto zone_length = [&] { return params.length_scale * rng.uniform(0.5, 2.0); };
  auto trunk_length = [&] { return params.length_scale * rng.uniform(2.0, 6.0); };

  // Mandatory links: every end station to every switch of its own zone. This
  // guarantees each ES has candidate links (and, with >= 2 zone switches or a
  // backbone path, a redundant pair) and — since one endpoint is always a
  // switch — the no-ES-to-ES validate() clause holds by construction.
  for (int zone = 0; zone < params.zones; ++zone) {
    for (int s = 0; s < params.stations_per_zone; ++s) {
      for (int w = 0; w < params.switches_per_zone; ++w) {
        problem.connections.add_edge(station_id(zone, s), zone_switch_id(zone, w),
                                     zone_length());
      }
    }
  }

  // Zone-internal switch mesh (zones with several switches get redundancy
  // inside the zone).
  for (int zone = 0; zone < params.zones; ++zone) {
    for (int a = 0; a < params.switches_per_zone; ++a) {
      for (int b = a + 1; b < params.switches_per_zone; ++b) {
        problem.connections.add_edge(zone_switch_id(zone, a), zone_switch_id(zone, b),
                                     zone_length());
      }
    }
  }

  if (params.backbone_switches > 0) {
    // Every zone switch reaches every backbone switch; the backbone itself is
    // a full mesh. Gc is connected by construction.
    for (int zone = 0; zone < params.zones; ++zone) {
      for (int w = 0; w < params.switches_per_zone; ++w) {
        for (int b = 0; b < params.backbone_switches; ++b) {
          problem.connections.add_edge(zone_switch_id(zone, w), backbone_id(b),
                                       trunk_length());
        }
      }
    }
    for (int a = 0; a < params.backbone_switches; ++a) {
      for (int b = a + 1; b < params.backbone_switches; ++b) {
        problem.connections.add_edge(backbone_id(a), backbone_id(b), trunk_length());
      }
    }
    // Optional richness: end stations may reach the backbone directly.
    for (int zone = 0; zone < params.zones; ++zone) {
      for (int s = 0; s < params.stations_per_zone; ++s) {
        for (int b = 0; b < params.backbone_switches; ++b) {
          if (rng.uniform() < params.cross_link_prob) {
            problem.connections.add_edge(station_id(zone, s), backbone_id(b),
                                         trunk_length());
          }
        }
      }
    }
  } else if (params.zones > 1) {
    // No backbone: connect the zones through a zone-switch ring (mandatory,
    // keeps Gc connected) plus probabilistic cross-zone links.
    for (int zone = 0; zone < params.zones; ++zone) {
      const int next = (zone + 1) % params.zones;
      if (params.zones == 2 && zone == 1) break;  // avoid the duplicate ring edge
      problem.connections.add_edge(zone_switch_id(zone, 0), zone_switch_id(next, 0),
                                   trunk_length());
    }
    for (int a = 0; a < params.zones; ++a) {
      for (int b = a + 1; b < params.zones; ++b) {
        for (int wa = 0; wa < params.switches_per_zone; ++wa) {
          for (int wb = 0; wb < params.switches_per_zone; ++wb) {
            if (a == b || (wa == 0 && wb == 0)) continue;  // ring edge exists
            if (rng.uniform() < params.cross_link_prob) {
              problem.connections.add_edge(zone_switch_id(a, wa), zone_switch_id(b, wb),
                                           trunk_length());
            }
          }
        }
      }
    }
  }

  // Traffic: unicast TT flows between distinct end stations; periods are
  // base / 2^k (exact in floating point), deadline = period, automotive
  // frame sizes. The scheduler requires a flow's period to span a whole
  // number of slots (slots_per_base % 2^k == 0), so k is capped at the
  // largest power of two dividing slots_per_base — the by-construction
  // contract covers schedulability preconditions, not just validate().
  int divisor_cap = 0;
  while (divisor_cap < params.max_period_divisor_log2 &&
         params.slots_per_base % (1 << (divisor_cap + 1)) == 0) {
    ++divisor_cap;
  }
  static constexpr int kFrameBytes[] = {64, 256, 512, 1500};
  for (int i = 0; i < params.flow_count; ++i) {
    FlowSpec flow;
    flow.source = rng.uniform_int(0, num_stations - 1);
    do {
      flow.destination = rng.uniform_int(0, num_stations - 1);
    } while (flow.destination == flow.source);
    const int k = rng.uniform_int(0, divisor_cap);
    flow.period_us = params.base_period_us / static_cast<double>(std::int64_t{1} << k);
    flow.deadline_us = flow.period_us;
    flow.frame_bytes = kFrameBytes[rng.uniform_int(0, 3)];
    problem.flows.push_back(flow);
  }

  problem.validate();  // by-construction contract, checked every time
  return problem;
}

void save_params(const GeneratorParams& params, ByteWriter& out) {
  out.i64(params.zones);
  out.i64(params.stations_per_zone);
  out.i64(params.switches_per_zone);
  out.i64(params.backbone_switches);
  out.f64(params.cross_link_prob);
  out.f64(params.length_scale);
  out.i64(params.flow_count);
  out.f64(params.base_period_us);
  out.i64(params.slots_per_base);
  out.i64(params.max_period_divisor_log2);
  out.f64(params.reliability_goal);
  out.i64(params.max_es_degree);
  out.i64(params.library_variant);
}

GeneratorParams load_params(ByteReader& in) {
  auto read_int = [&](const char* what) {
    const std::int64_t raw = in.i64();
    if (raw < -(std::int64_t{1} << 31) || raw > (std::int64_t{1} << 31)) {
      throw CheckpointError(std::string("generator params: ") + what + " out of range");
    }
    return static_cast<int>(raw);
  };
  GeneratorParams params;
  params.zones = read_int("zones");
  params.stations_per_zone = read_int("stations per zone");
  params.switches_per_zone = read_int("switches per zone");
  params.backbone_switches = read_int("backbone switches");
  params.cross_link_prob = in.f64();
  params.length_scale = in.f64();
  params.flow_count = read_int("flow count");
  params.base_period_us = in.f64();
  params.slots_per_base = read_int("slots per base");
  params.max_period_divisor_log2 = read_int("period divisor exponent");
  params.reliability_goal = in.f64();
  params.max_es_degree = read_int("end-station degree bound");
  params.library_variant = read_int("library variant");
  return params;
}

std::string describe(const GeneratorParams& params) {
  return std::to_string(params.zones) + "z x " + std::to_string(params.stations_per_zone) +
         "es/" + std::to_string(params.switches_per_zone) + "sw + " +
         std::to_string(params.backbone_switches) + "bb, " +
         std::to_string(params.flow_count) + " flows, p=" +
         std::to_string(params.cross_link_prob) + ", lib v" +
         std::to_string(params.library_variant);
}

}  // namespace nptsn
