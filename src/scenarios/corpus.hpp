// The regression corpus: hard instances found by the stress searcher,
// persisted through the checksummed checkpoint file format and committed
// under tests/corpus/ so every future change replays them in CI.
//
// An entry is self-contained: it stores the serialized PlanningProblem bytes
// next to the generator provenance (version, params, seed), so replay never
// needs the generator that produced it — and a regenerate-and-compare
// cross-check can still verify provenance whenever the recorded generator
// version matches the current one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenarios/generator.hpp"

namespace nptsn {

// Payload version of corpus files (bumped on layout changes).
inline constexpr std::uint32_t kCorpusVersion = 1;

// Why the stress searcher kept an instance.
enum class OffenderKind : std::uint8_t {
  kTimeout = 0,      // plan() hit the deterministic tick budget
  kAuditReject = 1,  // the independent final audit rejected the plan
  kAnomaly = 2,      // the health supervisor logged incidents
  kCostGap = 3,      // NPTSN's cost lost badly against the TRH baseline
};

const char* to_string(OffenderKind kind);

struct CorpusEntry {
  std::uint32_t generator_version = kGeneratorVersion;
  GeneratorParams params;
  std::uint64_t seed = 0;
  // The deterministic plan() tick budget the offender was found under —
  // replay must use the same budget to reproduce the recorded behavior
  // (a timeout at 500 ticks is no offender at 60000).
  std::int64_t tick_budget = 0;
  OffenderKind kind = OffenderKind::kTimeout;
  double score = 0.0;   // searcher score (higher = harder), diagnostics only
  std::string detail;   // one-line provenance for logs
  // The instance itself (net/problem save_problem bytes) — replay uses this,
  // never a re-run of the generator.
  std::vector<std::uint8_t> problem_bytes;

  PlanningProblem problem() const;  // deserializes problem_bytes
};

// Byte-level (composable; exact round-trip).
void save_corpus_entry(const CorpusEntry& entry, ByteWriter& out);
CorpusEntry load_corpus_entry(ByteReader& in);

// File-level, framed/checksummed via the checkpoint format.
void save_corpus_entry_file(const std::string& path, const CorpusEntry& entry);
CorpusEntry load_corpus_entry_file(const std::string& path);

// Sorted list of "*.corpus" files directly under `dir` (empty when the
// directory does not exist). Sorted by filename so replay order — and any
// diagnostics derived from it — is machine-independent.
std::vector<std::string> list_corpus_files(const std::string& dir);

// Canonical filename for an entry: stress_<kind>_<fp16hex>.corpus, where fp
// is the problem fingerprint — distinct instances get distinct names, and
// re-running the searcher on the same seed overwrites rather than duplicates.
std::string corpus_file_name(const CorpusEntry& entry);

}  // namespace nptsn
