#include "scenarios/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "analysis/certificate.hpp"

namespace nptsn {

const char* to_string(OffenderKind kind) {
  switch (kind) {
    case OffenderKind::kTimeout:
      return "timeout";
    case OffenderKind::kAuditReject:
      return "audit-reject";
    case OffenderKind::kAnomaly:
      return "anomaly";
    case OffenderKind::kCostGap:
      return "cost-gap";
  }
  return "unknown";
}

PlanningProblem CorpusEntry::problem() const { return problem_from_bytes(problem_bytes); }

void save_corpus_entry(const CorpusEntry& entry, ByteWriter& out) {
  out.u32(entry.generator_version);
  save_params(entry.params, out);
  out.u64(entry.seed);
  out.i64(entry.tick_budget);
  out.u8(static_cast<std::uint8_t>(entry.kind));
  out.f64(entry.score);
  out.str(entry.detail);
  out.blob(entry.problem_bytes);
}

CorpusEntry load_corpus_entry(ByteReader& in) {
  CorpusEntry entry;
  entry.generator_version = in.u32();
  entry.params = load_params(in);
  entry.seed = in.u64();
  entry.tick_budget = in.i64();
  if (entry.tick_budget < 1) {
    throw CheckpointError("corpus entry: tick budget must be positive");
  }
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(OffenderKind::kCostGap)) {
    throw CheckpointError("corpus entry: unknown offender kind");
  }
  entry.kind = static_cast<OffenderKind>(kind);
  entry.score = in.f64();
  entry.detail = in.str();
  entry.problem_bytes = in.blob();
  // Structural sanity up front: a corpus file whose problem bytes do not even
  // parse is corrupt, and the loader — not the replay harness — says so.
  (void)entry.problem();
  return entry;
}

void save_corpus_entry_file(const std::string& path, const CorpusEntry& entry) {
  ByteWriter out;
  save_corpus_entry(entry, out);
  save_checkpoint_file(path, kCorpusVersion, out.data());
}

CorpusEntry load_corpus_entry_file(const std::string& path) {
  const auto payload = load_checkpoint_file(path, kCorpusVersion);
  ByteReader in(payload);
  CorpusEntry entry = load_corpus_entry(in);
  in.expect_exhausted("corpus entry");
  return entry;
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    if (!item.is_regular_file()) continue;
    if (item.path().extension() != ".corpus") continue;
    files.push_back(item.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string corpus_file_name(const CorpusEntry& entry) {
  const std::uint64_t fp = problem_fingerprint(entry.problem());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(fp));
  return std::string("stress_") + to_string(entry.kind) + "_" + hex + ".corpus";
}

}  // namespace nptsn
