#include "scenarios/stress_search.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "analysis/certificate.hpp"
#include "baselines/trh.hpp"
#include "core/planner.hpp"
#include "tsn/recovery.hpp"
#include "util/expect.hpp"

namespace nptsn {
namespace {

// Search-space bounds. Deliberately tight: the searcher's job is to find
// HARD instances inside a realistic zonal envelope, not to inflate node
// counts until anything times out (the tick budget caps work regardless).
constexpr int kMaxZones = 6;
constexpr int kMaxStationsPerZone = 5;
constexpr int kMaxSwitchesPerZone = 3;
constexpr int kMaxBackbone = 3;
constexpr int kMaxFlows = 24;

GeneratorParams clamp_params(GeneratorParams p) {
  p.zones = std::clamp(p.zones, 1, kMaxZones);
  p.stations_per_zone = std::clamp(p.stations_per_zone, 1, kMaxStationsPerZone);
  if (p.zones * p.stations_per_zone < 2) p.stations_per_zone = 2;
  p.switches_per_zone = std::clamp(p.switches_per_zone, 1, kMaxSwitchesPerZone);
  p.backbone_switches = std::clamp(p.backbone_switches, 0, kMaxBackbone);
  p.cross_link_prob = std::clamp(p.cross_link_prob, 0.0, 1.0);
  p.length_scale = std::clamp(p.length_scale, 0.25, 4.0);
  p.flow_count = std::clamp(p.flow_count, 1, kMaxFlows);
  p.slots_per_base = std::clamp(p.slots_per_base, 8, 40);
  p.max_period_divisor_log2 = std::clamp(p.max_period_divisor_log2, 0, 3);
  p.max_es_degree = std::clamp(p.max_es_degree, 1, 3);
  p.library_variant = std::clamp(p.library_variant, 0, kNumLibraryVariants - 1);
  return p;
}

GeneratorParams random_params(Rng& rng) {
  GeneratorParams p;
  p.zones = rng.uniform_int(2, kMaxZones);
  p.stations_per_zone = rng.uniform_int(1, kMaxStationsPerZone);
  p.switches_per_zone = rng.uniform_int(1, kMaxSwitchesPerZone);
  p.backbone_switches = rng.uniform_int(0, kMaxBackbone);
  p.cross_link_prob = rng.uniform(0.0, 0.8);
  p.length_scale = rng.uniform(0.5, 2.0);
  p.flow_count = rng.uniform_int(2, kMaxFlows);
  p.slots_per_base = rng.uniform_int(8, 40);
  p.max_period_divisor_log2 = rng.uniform_int(0, 3);
  p.library_variant = rng.uniform_int(0, kNumLibraryVariants - 1);
  static constexpr double kGoals[] = {1e-5, 1e-6, 1e-7};
  p.reliability_goal = kGoals[rng.uniform_int(0, 2)];
  p.max_es_degree = rng.uniform_int(1, 3);
  return clamp_params(p);
}

// One local move: perturb a single dimension, stay inside the valid space.
GeneratorParams mutate(GeneratorParams p, Rng& rng) {
  switch (rng.uniform_int(0, 11)) {
    case 0: p.zones += rng.uniform_int(0, 1) ? 1 : -1; break;
    case 1: p.stations_per_zone += rng.uniform_int(0, 1) ? 1 : -1; break;
    case 2: p.switches_per_zone += rng.uniform_int(0, 1) ? 1 : -1; break;
    case 3: p.backbone_switches += rng.uniform_int(0, 1) ? 1 : -1; break;
    case 4: p.cross_link_prob += rng.uniform(-0.2, 0.2); break;
    case 5: p.length_scale *= rng.uniform_int(0, 1) ? 1.5 : (1.0 / 1.5); break;
    case 6: p.flow_count += rng.uniform_int(1, 4) * (rng.uniform_int(0, 1) ? 1 : -1); break;
    case 7: p.slots_per_base += rng.uniform_int(2, 8) * (rng.uniform_int(0, 1) ? 1 : -1); break;
    case 8: p.max_period_divisor_log2 += rng.uniform_int(0, 1) ? 1 : -1; break;
    case 9: p.library_variant = rng.uniform_int(0, kNumLibraryVariants - 1); break;
    case 10: {
      static constexpr double kGoals[] = {1e-5, 1e-6, 1e-7};
      p.reliability_goal = kGoals[rng.uniform_int(0, 2)];
      break;
    }
    case 11: p.max_es_degree += rng.uniform_int(0, 1) ? 1 : -1; break;
    default: break;
  }
  return clamp_params(p);
}

}  // namespace

StressProbe stress_probe(const GeneratorParams& params, std::uint64_t instance_seed,
                         const StressConfig& config) {
  StressProbe probe;
  probe.params = params;
  probe.instance_seed = instance_seed;

  const PlanningProblem problem = generate(params, instance_seed);
  const HeuristicRecovery nbf;
  const TrhResult trh = run_trh(problem);

  NptsnConfig plan_config;
  // Short, deterministic, single-threaded probe: a tiny network and rollout
  // keep honest instances fast, the tick-only deadline keeps hostile ones
  // bounded, and nothing in the probe reads a wall clock — scores are a pure
  // function of (params, seed, config) on every machine.
  plan_config.epochs = config.plan_epochs;
  plan_config.steps_per_epoch = config.steps_per_epoch;
  plan_config.mlp_hidden = {32, 32};
  plan_config.path_actions = 4;
  plan_config.num_workers = 1;
  plan_config.nn_threads = 1;
  plan_config.verification_threads = 1;
  plan_config.seed = instance_seed;
  plan_config.audit_mode = AuditMode::kFinal;
  plan_config.health_checks = true;
  plan_config.min_frontier_order = config.min_frontier_order;
  plan_config.frontier_include_links = config.frontier_include_links;
  plan_config.deadline = Deadline::after(/*wall_seconds=*/0.0, config.plan_tick_budget);

  const PlanningResult result = plan(problem, nbf, plan_config);

  // Classification ladder, hardest first. A timeout trumps everything (the
  // instance defeats the envelope's budget outright); an audit rejection
  // means the planner produced an unsound verdict; supervisor anomalies mean
  // the run needed self-healing; a cost gap means NPTSN lost on its own
  // objective against a cheap heuristic.
  const bool timed_out = result.stopped_reason.rfind("deadline:", 0) == 0;
  if (timed_out) {
    probe.offender = true;
    probe.kind = OffenderKind::kTimeout;
    probe.score = 1e9 + static_cast<double>(plan_config.deadline->ticks());
    probe.detail = result.stopped_reason;
    return probe;
  }
  if (result.audits_rejected > 0) {
    probe.offender = true;
    probe.kind = OffenderKind::kAuditReject;
    probe.score = 1e6 + static_cast<double>(result.audits_rejected);
    probe.detail = result.audit_failures.empty() ? "audit rejected"
                                                 : result.audit_failures.front();
    return probe;
  }
  if (result.anomalies_total > 0) {
    probe.offender = true;
    probe.kind = OffenderKind::kAnomaly;
    probe.score = 1e4 + static_cast<double>(result.anomalies_total);
    probe.detail = std::to_string(result.anomalies_total) + " supervisor anomalies";
    return probe;
  }
  if (trh.valid) {
    if (!result.feasible) {
      probe.offender = true;
      probe.kind = OffenderKind::kCostGap;
      probe.score = 1e3;
      probe.detail = "no NPTSN solution although TRH planned the instance (TRH cost " +
                     std::to_string(trh.cost) + ")";
      return probe;
    }
    const double gap = (result.best_cost - trh.cost) / trh.cost;
    if (gap > config.cost_gap_threshold) {
      probe.offender = true;
      probe.kind = OffenderKind::kCostGap;
      probe.score = 100.0 * gap;
      probe.detail = "Eq. 1 cost " + std::to_string(result.best_cost) + " vs TRH " +
                     std::to_string(trh.cost);
      return probe;
    }
  }
  // Honest instance: score by how much verification work it forced, so the
  // hill climb still has a gradient toward expensive regions.
  probe.score = static_cast<double>(plan_config.deadline->ticks()) /
                static_cast<double>(config.plan_tick_budget);
  return probe;
}

StressResult stress_search(const StressConfig& config) {
  NPTSN_EXPECT(config.restarts >= 1, "need at least one restart");
  NPTSN_EXPECT(config.rounds >= 1, "need at least one round");
  NPTSN_EXPECT(config.top_k >= 1, "need a positive offender capacity");
  NPTSN_EXPECT(config.plan_tick_budget >= 1, "need a positive tick budget");

  StressResult result;
  Rng rng(config.seed);
  // Offenders deduplicated by problem fingerprint; the map keeps insertion
  // independent of probe order for the final ranking.
  std::map<std::uint64_t, CorpusEntry> offenders;

  auto consider = [&](const StressProbe& probe) {
    ++result.probes;
    if (!probe.offender) return;
    ++result.offender_probes;
    const PlanningProblem problem = generate(probe.params, probe.instance_seed);
    const std::uint64_t fp = problem_fingerprint(problem);
    auto it = offenders.find(fp);
    if (it != offenders.end() && it->second.score >= probe.score) return;
    CorpusEntry entry;
    entry.generator_version = kGeneratorVersion;
    entry.params = probe.params;
    entry.seed = probe.instance_seed;
    entry.tick_budget = config.plan_tick_budget;
    entry.kind = probe.kind;
    entry.score = probe.score;
    entry.detail = probe.detail;
    entry.problem_bytes = problem_bytes(problem);
    offenders[fp] = std::move(entry);
  };

  for (int restart = 0; restart < config.restarts; ++restart) {
    GeneratorParams current = random_params(rng);
    std::uint64_t current_seed = rng.next_u64();
    StressProbe current_probe = stress_probe(current, current_seed, config);
    consider(current_probe);
    for (int round = 0; round < config.rounds; ++round) {
      const GeneratorParams candidate = mutate(current, rng);
      const std::uint64_t candidate_seed = rng.next_u64();
      const StressProbe probe = stress_probe(candidate, candidate_seed, config);
      consider(probe);
      if (probe.score >= current_probe.score) {
        current = candidate;
        current_seed = candidate_seed;
        current_probe = probe;
      }
    }
  }

  result.offenders.reserve(offenders.size());
  for (auto& [fp, entry] : offenders) result.offenders.push_back(std::move(entry));
  std::sort(result.offenders.begin(), result.offenders.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.problem_bytes < b.problem_bytes;  // deterministic tiebreak
            });
  if (result.offenders.size() > static_cast<std::size_t>(config.top_k)) {
    result.offenders.resize(static_cast<std::size_t>(config.top_k));
  }
  return result;
}

}  // namespace nptsn
