#include "scenarios/orion.hpp"

#include "graph/paths.hpp"
#include "util/expect.hpp"

namespace nptsn {

Scenario make_orion() {
  Scenario scenario;
  scenario.name = "ORION";

  const int num_nodes = kOrionEndStations + kOrionSwitches;
  auto sw = [](int i) { return kOrionEndStations + i; };  // switch i's node id

  // --- reference (manually designed) topology ------------------------------
  // Switch mesh: a 15-switch ring (biconnected: any single switch failure
  // leaves the remaining fabric connected). The ring keeps the 3-hop
  // closure below sparse enough that Gc lands near the paper's 189 optional
  // links (we get 200 with this wiring).
  Graph reference(num_nodes);
  for (int i = 0; i < kOrionSwitches; ++i) {
    reference.add_edge(sw(i), sw((i + 1) % kOrionSwitches));
  }
  // Every end station is single-homed: es j attaches to switch j mod 15.
  for (int j = 0; j < kOrionEndStations; ++j) {
    reference.add_edge(j, sw(j % kOrionSwitches));
  }
  scenario.original_links = reference.edges();

  // --- connection graph Gc: all pairs within 3 hops of the reference -------
  Graph connections(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) {
      const bool both_stations = u < kOrionEndStations && v < kOrionEndStations;
      if (both_stations) continue;  // end stations never connect directly
      const int hops = hop_distance(reference, u, v);
      if (hops >= 1 && hops <= 3) connections.add_edge(u, v, 1.0);
    }
  }

  scenario.problem.connections = std::move(connections);
  scenario.problem.num_end_stations = kOrionEndStations;
  scenario.problem.tsn.base_period_us = 500.0;
  scenario.problem.tsn.slots_per_base = 20;
  scenario.problem.reliability_goal = 1e-6;
  scenario.problem.max_es_degree = 2;
  scenario.problem.library = ComponentLibrary::standard();

  // Sanity: reference links are 1-hop pairs and thus part of Gc.
  for (const auto& edge : scenario.original_links) {
    NPTSN_ASSERT(scenario.problem.connections.has_edge(edge.u, edge.v),
                 "reference link missing from Gc");
  }
  return scenario;
}

}  // namespace nptsn
