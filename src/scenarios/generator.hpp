// Seeded procedural generator for in-vehicle zonal E/E planning problems.
//
// The evaluation scenarios (ORION, ADS) are two fixed points in a much larger
// instance space; the robustness work (stress search, the regression corpus,
// the deadline envelope) needs a parameterized FAMILY of realistic instances:
// zonal architectures — end stations grouped into zones around zone switches,
// a central backbone mesh, cross-zone candidate links — with randomized
// component libraries, scaled flow sets, and harmonic base periods. Instances
// are valid BY CONSTRUCTION: for any GeneratorParams that pass
// validate_params(), generate() returns a PlanningProblem whose validate()
// succeeds (a generator test sweeps the parameter grid to pin this).
//
// Determinism is a hard contract: generate(params, seed) is a pure
// single-threaded function of its arguments built on the portable Rng, so the
// same (params, seed) produces byte-identical problems (problem_bytes) on
// every platform, run, and thread count — the property that makes corpus
// entries and stress-search offender sets reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "net/problem.hpp"
#include "util/rng.hpp"

namespace nptsn {

// Bumped whenever generate() changes the mapping (params, seed) -> problem.
// Corpus entries record the version they were generated with; replay uses the
// stored problem bytes, and the regenerate-and-compare cross-check only runs
// when the versions match.
inline constexpr std::uint32_t kGeneratorVersion = 1;

// Number of component-library variants generate() can draw from (Table I plus
// derived premium/budget/extended families).
inline constexpr int kNumLibraryVariants = 4;

struct GeneratorParams {
  // --- zonal layout -----------------------------------------------------------
  int zones = 4;               // zone count (>= 1; zones * stations >= 2)
  int stations_per_zone = 3;   // end stations per zone (>= 1)
  int switches_per_zone = 1;   // zone switches per zone (>= 1)
  int backbone_switches = 2;   // central backbone mesh size (>= 0)

  // --- candidate-link richness ------------------------------------------------
  // Probability of each optional cross-zone link (zone switch to a
  // neighboring zone's switch, end station to a backbone switch). The
  // mandatory links — every ES to every switch of its own zone, every zone
  // switch to every backbone switch (or to every other zone switch when the
  // backbone is empty) — always exist, which keeps Gc connected and ES
  // redundancy reachable.
  double cross_link_prob = 0.35;
  // Cable-length multiplier (zone-internal runs are short, backbone runs
  // long; both scale with this).
  double length_scale = 1.0;

  // --- traffic ----------------------------------------------------------------
  int flow_count = 8;             // TT flows between distinct end stations
  double base_period_us = 500.0;  // TAS base period
  int slots_per_base = 20;
  // Flow periods are base / 2^k with k uniform in [0, max_period_divisor_log2]
  // (powers of two divide the base period exactly in floating point).
  int max_period_divisor_log2 = 2;

  // --- reliability ------------------------------------------------------------
  double reliability_goal = 1e-6;
  int max_es_degree = 2;
  // Component library: 0 = Table I verbatim, 1 = premium (10x lower failure
  // probabilities, 2x cost), 2 = budget (10x higher failure probabilities,
  // half cost), 3 = extended (adds a 12-port model).
  int library_variant = 0;
};

// Throws ValidationError when the parameters describe no valid instance
// (e.g. fewer than two end stations total, a probability outside [0, 1], a
// non-finite base period). generate() calls this first.
void validate_params(const GeneratorParams& params);

// The library variant for `params.library_variant` (deterministic, not
// seed-dependent — the variant is part of the parameter space, not the noise).
ComponentLibrary library_variant(int variant);

// Generates one instance. Pure function of (params, seed): byte-identical
// output for equal inputs. The result passes PlanningProblem::validate() for
// any params that pass validate_params().
PlanningProblem generate(const GeneratorParams& params, std::uint64_t seed);

// --- serialization -----------------------------------------------------------
// Canonical byte layout for corpus entries; save(load(x)) == x.
void save_params(const GeneratorParams& params, ByteWriter& out);
GeneratorParams load_params(ByteReader& in);

// One-line description for logs and the stress CLI.
std::string describe(const GeneratorParams& params);

}  // namespace nptsn
