#include "scenarios/ads.hpp"

#include "util/expect.hpp"

namespace nptsn {

Scenario make_ads() {
  Scenario scenario;
  scenario.name = "ADS";

  const int num_nodes = kAdsEndStations + kAdsSwitches;
  Graph connections(num_nodes);
  // Complete set of connections except direct end-station pairs.
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) {
      if (u < kAdsEndStations && v < kAdsEndStations) continue;
      connections.add_edge(u, v, 1.0);
    }
  }
  NPTSN_ASSERT(connections.num_edges() == 54, "ADS must have 54 optional links");

  scenario.problem.connections = std::move(connections);
  scenario.problem.num_end_stations = kAdsEndStations;
  scenario.problem.tsn.base_period_us = 500.0;
  scenario.problem.tsn.slots_per_base = 20;
  scenario.problem.reliability_goal = 1e-6;
  scenario.problem.max_es_degree = 2;
  scenario.problem.library = ComponentLibrary::standard();
  return scenario;
}

std::vector<FlowSpec> ads_flows() {
  // Two flows per application: sensing applications feed the perception /
  // planning pipeline; planning and control distribute commands and state.
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {kFrontCamera, kPerceptionEcu}, {kFrontCamera, kHmiDisplay},   // camera app
      {kLidar, kPerceptionEcu},       {kLidar, kPlanningEcu},        // lidar app
      {kRadar, kPerceptionEcu},       {kRadar, kControlEcu},         // radar app
      {kGpsIns, kPlanningEcu},        {kGpsIns, kGateway},           // localization
      {kV2xModem, kPlanningEcu},      {kV2xModem, kGateway},         // V2X app
      {kPlanningEcu, kControlEcu},    {kControlEcu, kActuatorEcu},   // plan + control
  };
  std::vector<FlowSpec> flows;
  flows.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    FlowSpec flow;
    flow.source = src;
    flow.destination = dst;
    flow.period_us = 500.0;
    flow.deadline_us = 500.0;
    flow.frame_bytes = 1500;
    flows.push_back(flow);
  }
  NPTSN_ASSERT(flows.size() == 12, "ADS must have 12 flows");
  return flows;
}

}  // namespace nptsn
