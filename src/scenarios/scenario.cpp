#include "scenarios/scenario.hpp"

#include "util/expect.hpp"

namespace nptsn {

std::vector<FlowSpec> random_flows(const PlanningProblem& problem, int count, Rng& rng) {
  NPTSN_EXPECT(count >= 1, "need at least one flow");
  NPTSN_EXPECT(problem.num_end_stations >= 2, "need at least two end stations");
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowSpec flow;
    flow.source = rng.uniform_int(0, problem.num_end_stations - 1);
    do {
      flow.destination = rng.uniform_int(0, problem.num_end_stations - 1);
    } while (flow.destination == flow.source);
    flow.period_us = problem.tsn.base_period_us;
    flow.deadline_us = problem.tsn.base_period_us;
    flow.frame_bytes = 1500;
    flows.push_back(flow);
  }
  return flows;
}

PlanningProblem with_flows(const Scenario& scenario, std::vector<FlowSpec> flows) {
  PlanningProblem problem = scenario.problem;
  problem.flows = std::move(flows);
  problem.validate();
  return problem;
}

}  // namespace nptsn
