#include "scenarios/scenario.hpp"

#include <cmath>

namespace nptsn {

std::vector<FlowSpec> random_flows(const PlanningProblem& problem, int count, Rng& rng) {
  // Typed rejections for every degenerate input: a single end station would
  // turn the distinct-destination resample loop below into an infinite loop,
  // and a non-finite base period would propagate NaN periods into every
  // generated flow. The stress searcher feeds this function adversarial
  // parameters and relies on a clean ValidationError, never a hang.
  if (count < 1) throw ValidationError("random_flows: need at least one flow");
  if (problem.num_end_stations < 2) {
    throw ValidationError("random_flows: need at least two end stations");
  }
  if (!std::isfinite(problem.tsn.base_period_us) || problem.tsn.base_period_us <= 0.0) {
    throw ValidationError("random_flows: base period must be finite and positive");
  }
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowSpec flow;
    flow.source = rng.uniform_int(0, problem.num_end_stations - 1);
    do {
      flow.destination = rng.uniform_int(0, problem.num_end_stations - 1);
    } while (flow.destination == flow.source);
    flow.period_us = problem.tsn.base_period_us;
    flow.deadline_us = problem.tsn.base_period_us;
    flow.frame_bytes = 1500;
    flows.push_back(flow);
  }
  return flows;
}

PlanningProblem with_flows(const Scenario& scenario, std::vector<FlowSpec> flows) {
  PlanningProblem problem = scenario.problem;
  problem.flows = std::move(flows);
  problem.validate();
  return problem;
}

}  // namespace nptsn
