// The ADS design scenario (Section VI-B): planning the network of an
// autonomous driving system (Jo et al., ref [31]) — 12 end stations, up to
// 4 switches, complete connection graph (54 optional links: every ES-switch
// and switch-switch pair; no direct ES-ES connections).
//
// The original flow set is not available (as in the paper); ads_flows()
// generates 12 TT flows — two per safety-related application for 6 of the 7
// applications, with vehicle state estimation consuming other applications'
// data and contributing none.
#pragma once

#include "scenarios/scenario.hpp"

namespace nptsn {

inline constexpr int kAdsEndStations = 12;
inline constexpr int kAdsSwitches = 4;

// End-station roles, in node-id order.
enum AdsStation : NodeId {
  kFrontCamera = 0,
  kLidar = 1,
  kRadar = 2,
  kGpsIns = 3,
  kV2xModem = 4,
  kUltrasonic = 5,
  kPerceptionEcu = 6,
  kPlanningEcu = 7,
  kControlEcu = 8,
  kActuatorEcu = 9,
  kHmiDisplay = 10,
  kGateway = 11,
};

Scenario make_ads();

// The 12 application flows (2 per application for 6 applications).
std::vector<FlowSpec> ads_flows();

}  // namespace nptsn
