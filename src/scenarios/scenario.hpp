// Evaluation design scenarios (Section VI): a planning problem template plus
// (for ORION) the manually designed reference topology used as the
// "Original" baseline, and flow generators.
#pragma once

#include <string>
#include <vector>

#include "net/problem.hpp"
#include "util/rng.hpp"

namespace nptsn {

struct Scenario {
  std::string name;
  // The problem with an EMPTY flow set; install flows before planning.
  PlanningProblem problem;
  // The manually designed topology's links (empty when no reference design
  // exists, e.g. ADS). Every edge is also part of problem.connections.
  std::vector<Edge> original_links;
};

// Uniformly random periodic unicast TT flows between distinct end stations,
// period = deadline = base period (the Fig. 4 workload generator).
std::vector<FlowSpec> random_flows(const PlanningProblem& problem, int count, Rng& rng);

// Convenience: copy of the scenario's problem with the given flows installed.
PlanningProblem with_flows(const Scenario& scenario, std::vector<FlowSpec> flows);

}  // namespace nptsn
