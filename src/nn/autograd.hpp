// Reverse-mode automatic differentiation over Matrix values.
//
// A Tensor is a value-semantic handle to a node of a dynamically built
// computation graph. Operations record a backprop closure; calling
// backward() on a scalar result accumulates gradients into every reachable
// parameter (leaf tensor created with Tensor::parameter). This replaces the
// paper's PyTorch dependency — only the operations the GCN/actor-critic
// stack needs are implemented, each with an analytically derived adjoint
// (validated against finite differences in tests/nn/autograd_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nn/matrix.hpp"

namespace nptsn {

namespace detail {

struct Node {
  Matrix value;
  Matrix grad;  // allocated on first use, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this->grad into the parents' grads.
  std::function<void(Node&)> backprop;

  Matrix& ensure_grad();
};

}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  // A constant input (observation, adjacency): never receives gradient.
  static Tensor constant(Matrix value);
  // A trainable leaf (weight, bias).
  static Tensor parameter(Matrix value);

  bool defined() const { return node_ != nullptr; }
  bool requires_grad() const;

  const Matrix& value() const;
  // Direct mutation for the optimizer; only meaningful on leaves.
  Matrix& mutable_value();
  const Matrix& grad() const;
  Matrix& mutable_grad();
  void zero_grad();

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
  // Value of a 1x1 tensor.
  double item() const;

  // Backpropagates from this scalar (1x1) tensor; gradients ACCUMULATE into
  // leaves, call zero_grad (or Adam::zero_grad) between backward passes.
  void backward() const;

  // Internal: builds an op node.
  static Tensor make_op(Matrix value, std::vector<Tensor> inputs,
                        std::function<void(detail::Node&)> backprop);
  const std::shared_ptr<detail::Node>& node() const { return node_; }

 private:
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}
  std::shared_ptr<detail::Node> node_;
};

// --- differentiable operations ---------------------------------------------
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, double s);
Tensor hadamard(const Tensor& a, const Tensor& b);
// Adds a 1 x C bias row to each row of an R x C input.
Tensor add_row_broadcast(const Tensor& a, const Tensor& row);
Tensor relu(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
// Column-wise mean over rows: n x F -> 1 x F (GCN readout).
Tensor mean_rows(const Tensor& a);
Tensor sum_all(const Tensor& a);  // -> 1 x 1
Tensor concat_cols(const Tensor& a, const Tensor& b);
Tensor select(const Tensor& a, int r, int c);  // -> 1 x 1
// Elementwise clamp; gradient is zero outside [lo, hi] (PPO clipping).
Tensor clamp(const Tensor& a, double lo, double hi);
// Elementwise min; gradient routed to the smaller input (ties: a).
Tensor min2(const Tensor& a, const Tensor& b);
// Elementwise mean of same-shaped tensors (loss averaging across steps).
Tensor average(const std::vector<Tensor>& items);
// Log-softmax over a 1 x A logit row where entries with mask[i] == 0 are
// excluded (treated as -inf; they get probability 0 and zero gradient).
// At least one entry must be unmasked.
Tensor masked_log_softmax_row(const Tensor& logits, const std::vector<std::uint8_t>& mask);
Tensor transpose_op(const Tensor& a);

// --- fused / batched operations (the NN hot path, DESIGN.md §11) -------------
// One tape node for act(x W + bias): the GEMM, the bias broadcast, and the
// activation run as a single fused kernel pass, and the backward pass uses
// the transposed-GEMM kernels instead of materializing transposes.
Tensor affine_act(const Tensor& x, const Tensor& w, const Tensor& bias, Epilogue act);
// One tape node for act(a b) — the GCN propagation step A_hat Z with its
// ReLU fused into the output tile write.
Tensor matmul_act(const Tensor& a, const Tensor& b, Epilogue act);
// Batched GCN propagation over B same-sized graphs stacked vertically:
// h holds B blocks of a_hats->block_size() rows each and block g of the
// output is relu(a_hats.blocks()[g] * h_g). The adjacencies are constants
// (no gradient); h receives a_hats[g]^T grad_g per block. Staging them as a
// BlockAdjacency once and reusing the handle across layers/iterations is
// what lets the fast kernels skip re-deriving the sparsity every call.
Tensor block_matmul_relu(std::shared_ptr<const BlockAdjacency> a_hats,
                         const Tensor& h);
// Whole batched GCN layer as ONE tape node: block g of the output is
// relu(a_hats[g] * (h_g w + bias)). Equivalent bit-for-bit to
// block_matmul_relu(a_hats, affine_act(h, w, bias, kNone)) under either
// kernel family, but the full-size affine intermediate never materializes —
// each graph's affine product lives in a cache-resident scratch tile until
// its propagation consumes it.
Tensor block_gcn_fused(std::shared_ptr<const BlockAdjacency> a_hats,
                       const Tensor& h, const Tensor& w, const Tensor& bias);
// Per-block column means: (B*block_rows) x F -> B x F (batched GCN readout,
// same arithmetic per block as mean_rows).
Tensor mean_rows_blocks(const Tensor& a, int block_rows);
// Row r as a 1 x C tensor. The gradient accumulates directly into row r of
// the parent (no full-size scratch), so selecting every row of a batch
// stays O(rows x cols) total.
Tensor select_row(const Tensor& a, int r);
// Stacks B 1 x C rows into a B x C tensor (per-observation fallback path
// for encoders without a batched forward).
Tensor stack_rows(const std::vector<Tensor>& rows);
// Elementwise LeakyReLU with the given negative-side slope.
Tensor leaky_relu(const Tensor& a, double negative_slope = 0.2);
// Row-wise softmax over an n x n score matrix where only entries with
// mask.at(i, j) != 0 participate (others get probability 0). Every row must
// have at least one unmasked entry. Used by the GAT attention layer, where
// the mask is the self-looped adjacency.
Tensor masked_softmax_rows(const Tensor& scores, const Matrix& mask);

// --- numeric sentinels -------------------------------------------------------
// Read-only scans the training health supervisor runs at epoch boundaries.
// Both tolerate leaves whose gradient was never allocated (treated as zero).

// First NaN/Inf among the parameters' VALUES: (found, offending value).
std::pair<bool, double> find_non_finite_value(const std::vector<Tensor>& params);

// One pass over the parameters' accumulated GRADIENTS: flags the first
// NaN/Inf and accumulates the squared L2 norm of everything scanned so far
// (norm is only meaningful when non_finite is false).
struct GradientScan {
  bool non_finite = false;
  double bad_value = 0.0;   // the offending NaN/Inf when non_finite
  double squared_norm = 0.0;
};
GradientScan scan_gradients(const std::vector<Tensor>& params);

}  // namespace nptsn
