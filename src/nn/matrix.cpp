#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace nptsn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
  NPTSN_EXPECT(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix Matrix::from(std::initializer_list<std::initializer_list<double>> rows) {
  NPTSN_EXPECT(rows.size() > 0, "matrix literal must be non-empty");
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows.begin()->size());
  Matrix m(r, c);
  int i = 0;
  for (const auto& row : rows) {
    NPTSN_EXPECT(static_cast<int>(row.size()) == c, "ragged matrix literal");
    int j = 0;
    for (const double v : row) m.at(i, j++) = v;
    ++i;
  }
  return m;
}

double& Matrix::at(int r, int c) {
  NPTSN_EXPECT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double Matrix::at(int r, int c) const {
  NPTSN_EXPECT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

void Matrix::fill(double value) { std::ranges::fill(data_, value); }

double Matrix::sum() const {
  double total = 0.0;
  for (const double v : data_) total += v;
  return total;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (const double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::all_finite() const {
  for (const double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j order: streams through b and out rows, cache friendly for row-major.
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;  // A-hat and feature blocks are sparse
      const double* brow = b.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(b.cols());
      double* orow = out.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(out.cols());
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "add shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] += b.data()[i];
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "sub shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] -= b.data()[i];
  return out;
}

Matrix scale(const Matrix& a, double s) {
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return out;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "hadamard shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= b.data()[i];
  return out;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  NPTSN_EXPECT(row.rows() == 1 && row.cols() == a.cols(), "broadcast shape mismatch");
  Matrix out = a;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out.at(i, j) += row.at(0, j);
  }
  return out;
}

void accumulate(Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "accumulate shape mismatch");
  for (int i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

}  // namespace nptsn
