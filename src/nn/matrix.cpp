#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "nn/kernels.hpp"

namespace nptsn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
  NPTSN_EXPECT(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix::Matrix(int rows, int cols, UninitTag)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
  NPTSN_EXPECT(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix Matrix::uninitialized(int rows, int cols) {
  return Matrix(rows, cols, UninitTag{});
}

Matrix Matrix::from(std::initializer_list<std::initializer_list<double>> rows) {
  NPTSN_EXPECT(rows.size() > 0, "matrix literal must be non-empty");
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows.begin()->size());
  Matrix m(r, c);
  int i = 0;
  for (const auto& row : rows) {
    NPTSN_EXPECT(static_cast<int>(row.size()) == c, "ragged matrix literal");
    int j = 0;
    for (const double v : row) m.at(i, j++) = v;
    ++i;
  }
  return m;
}

double& Matrix::at(int r, int c) {
  NPTSN_EXPECT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double Matrix::at(int r, int c) const {
  NPTSN_EXPECT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

void Matrix::fill(double value) { std::ranges::fill(data_, value); }

double Matrix::sum() const {
  double total = 0.0;
  for (const double v : data_) total += v;
  return total;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (const double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Matrix::all_finite() const {
  for (const double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::matmul_fast(a, b, out);
  } else {
    nnk::matmul_reference(a, b, out);
  }
  return out;
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.cols() == b.cols(), "matmul_transposed shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::matmul_nt_fast(a, b, out);
  } else {
    nnk::matmul_nt_reference(a, b, out);
  }
  return out;
}

Matrix matmul_transposed_a(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.rows() == b.rows(), "matmul_transposed_a shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::matmul_tn_fast(a, b, out);
  } else {
    nnk::matmul_tn_reference(a, b, out);
  }
  return out;
}

Matrix affine(const Matrix& x, const Matrix& w, const Matrix* bias, Epilogue act) {
  NPTSN_EXPECT(x.cols() == w.rows(), "affine shape mismatch");
  NPTSN_EXPECT(bias == nullptr || (bias->rows() == 1 && bias->cols() == w.cols()),
               "affine bias shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::affine_fast(x, w, bias, act, out);
  } else {
    nnk::affine_reference(x, w, bias, act, out);
  }
  return out;
}

Matrix matmul_epilogue(const Matrix& a, const Matrix& b, Epilogue act) {
  NPTSN_EXPECT(a.cols() == b.rows(), "matmul_epilogue shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::affine_fast(a, b, nullptr, act, out);
  } else {
    nnk::affine_reference(a, b, nullptr, act, out);
  }
  return out;
}

BlockAdjacency::BlockAdjacency(std::vector<Matrix> blocks)
    : blocks_(std::move(blocks)) {
  NPTSN_EXPECT(!blocks_.empty(), "BlockAdjacency needs at least one block");
  n_ = blocks_.front().rows();
  NPTSN_EXPECT(n_ > 0, "BlockAdjacency needs non-empty blocks");
  std::size_t nnz = 0;
  for (const Matrix& b : blocks_) {
    NPTSN_EXPECT(b.rows() == n_ && b.cols() == n_,
                 "BlockAdjacency blocks must all be square and same-size");
    for (int e = 0; e < b.size(); ++e) nnz += b.data()[e] != 0.0;
  }
  row_ptr_.reserve(static_cast<std::size_t>(count()) * n_ + 1);
  cols_.reserve(nnz);
  vals_.reserve(nnz);
  row_ptr_.push_back(0);
  for (const Matrix& b : blocks_) {
    for (int r = 0; r < n_; ++r) {
      const double* row = b.data() + static_cast<std::size_t>(r) * n_;
      for (int c = 0; c < n_; ++c) {
        if (row[c] == 0.0) continue;
        cols_.push_back(c);
        vals_.push_back(row[c]);
      }
      row_ptr_.push_back(cols_.size());
    }
  }
}

namespace {

void check_block_shapes(const BlockAdjacency& adj, const Matrix& h, const char* what) {
  NPTSN_EXPECT(h.rows() == adj.block_size() * adj.count(),
               std::string(what) + " stacked rows do not match the block count");
}

}  // namespace

Matrix block_diag_matmul(const BlockAdjacency& adj, const Matrix& h, Epilogue act) {
  check_block_shapes(adj, h, "block_diag_matmul");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::block_affine_fast(adj, h, act, out);
  } else {
    nnk::block_affine_reference(adj, h, act, out);
  }
  return out;
}

Matrix block_diag_matmul_tn(const BlockAdjacency& adj, const Matrix& delta) {
  check_block_shapes(adj, delta, "block_diag_matmul_tn");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::block_matmul_tn_fast(adj, delta, out);
  } else {
    nnk::block_matmul_tn_reference(adj, delta, out);
  }
  return out;
}

Matrix block_diag_gcn(const BlockAdjacency& adj, const Matrix& h,
                      const Matrix& w, const Matrix& bias) {
  check_block_shapes(adj, h, "block_diag_gcn");
  NPTSN_EXPECT(h.cols() == w.rows(), "block_diag_gcn affine shape mismatch");
  NPTSN_EXPECT(bias.rows() == 1 && bias.cols() == w.cols(),
               "block_diag_gcn bias shape mismatch");
  Matrix out;
  if (nn_kernel() == NnKernel::kFast) {
    nnk::block_gcn_fast(adj, h, w, bias, out);
  } else {
    nnk::block_gcn_reference(adj, h, w, bias, out);
  }
  return out;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "add shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] += b.data()[i];
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "sub shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] -= b.data()[i];
  return out;
}

Matrix scale(const Matrix& a, double s) {
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return out;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "hadamard shape mismatch");
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= b.data()[i];
  return out;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  NPTSN_EXPECT(row.rows() == 1 && row.cols() == a.cols(), "broadcast shape mismatch");
  Matrix out = a;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out.at(i, j) += row.at(0, j);
  }
  return out;
}

void accumulate(Matrix& a, const Matrix& b) {
  NPTSN_EXPECT(a.same_shape(b), "accumulate shape mismatch");
  for (int i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

}  // namespace nptsn
