#include "nn/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

#include "util/thread_pool.hpp"

namespace nptsn {
namespace {

// Micro-tile geometry. kMr rows of the output are accumulated at once so
// every loaded B row is reused kMr times; kNr output columns stay in a local
// accumulator block the compiler keeps in vector registers. Both are small
// enough that the 4 x 32 block (1 KiB) lives on the stack.
constexpr int kMr = 4;
constexpr int kNr = 32;
// Dot-product micro-tile for the A * B^T kernel: 4 x 8 independent scalar
// accumulator chains saturate the FMA ports without reassociating any sum.
constexpr int kNrDot = 8;
// Parallel-path task granularity: output rows per task, fixed so the work
// partition (and therefore every result bit) is thread-count independent.
constexpr int kRowsPerTask = 32;
// Below this many multiply-adds the fork/join overhead dominates; stay serial.
constexpr std::int64_t kParallelFlopsMin = 1 << 21;

std::atomic<int> g_kernel{static_cast<int>(NnKernel::kFast)};
std::atomic<int> g_threads{1};

// The shared pool for the parallel path. Guarded by a mutex; a caller that
// cannot take the lock (e.g. concurrent rollout workers both hitting a large
// GEMM) falls back to the serial path, which produces identical bits.
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // sized to g_threads, rebuilt on change

double apply_epilogue(double v, Epilogue act) {
  switch (act) {
    case Epilogue::kNone: return v;
    case Epilogue::kRelu: return v > 0.0 ? v : 0.0;
    case Epilogue::kTanh: return std::tanh(v);
  }
  return v;
}

// Runs task(0..chunks-1) on the shared pool; false = caller must run serially.
bool try_parallel(int chunks, const std::function<void(int)>& task) {
  if (chunks < 2) return false;
  std::unique_lock<std::mutex> lock(g_pool_mutex, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  const int threads = g_threads.load(std::memory_order_relaxed);
  if (threads <= 1) return false;
  if (!g_pool || g_pool->size() != threads) {
    g_pool = std::make_unique<ThreadPool>(threads);
  }
  g_pool->parallel_for(chunks, task);
  return true;
}

bool want_parallel(std::int64_t m, std::int64_t n, std::int64_t k) {
  if (g_threads.load(std::memory_order_relaxed) <= 1) return false;
  return 2 * m * n * k >= kParallelFlopsMin && m > kRowsPerTask;
}

// Vector lane type for the register micro-kernels, sized to the widest ISA
// this translation unit is compiled for (AVX-512 or AVX2 under
// NPTSN_KERNEL_SIMD, SSE2 otherwise). Every lane is an ordinary IEEE
// mul-then-add (the TU is built with -ffp-contract=off) and lanes are
// independent output COLUMNS — the per-element reduction stays one chain
// over ascending k — so results are bit-identical at every vector width.
#if defined(__AVX512F__)
typedef double vnd __attribute__((vector_size(64)));
constexpr int kLanes = 8;
#else
typedef double vnd __attribute__((vector_size(32)));
constexpr int kLanes = 4;
#endif

inline vnd loadv(const double* p) {
  vnd v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void storev(double* p, vnd v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline vnd broadcastv(double s) {
  vnd v;
  for (int l = 0; l < kLanes; ++l) v[l] = s;
  return v;
}

// EVERY multiply-accumulate of the fast family goes through these two
// helpers, and nowhere else (the TU is built with -ffp-contract=off, so the
// compiler cannot contract — or fail to contract — anything on its own).
// That uniformity is the determinism story: whichever loop shape touches an
// output element (register micro-tile, edge tile, sparse row, any vector
// width, any thread count), its reduction is the identical chain of
// fma(a_k, b_k, acc) over ascending k, so every strategy produces the same
// bits. Where the hardware has FMA this roughly doubles dense GEMM
// throughput over separate mul+add; fast-vs-reference then differs by the
// contraction rounding only, inside the documented 1e-12 envelope (the
// reference family keeps the original mul-then-add bits as ground truth).
// Zero-skip stays legal too: fma(+/-0, b, acc) returns acc exactly for
// finite b, and an accumulator that starts at +0.0 can never become -0.0.
inline double fmadd(double a, double b, double acc) {
#if defined(__FMA__)
  return __builtin_fma(a, b, acc);
#else
  return a * b + acc;
#endif
}

inline vnd fmaddv(vnd a, vnd b, vnd acc) {
#if defined(__FMA__)
  vnd r;
  for (int l = 0; l < kLanes; ++l) r[l] = __builtin_fma(a[l], b[l], acc[l]);
  return r;
#else
  return a * b + acc;
#endif
}

// Register-resident column width of the full-tile micro-kernels: a kMr x
// kNrReg f64 accumulator block is 8 vector registers (ymm under AVX2, zmm
// under AVX-512), leaving room for the B-row loads and the broadcast A
// element.
constexpr int kNrReg = 2 * kLanes;

// Full-tile micro-kernel: an MR x 8 output block whose accumulators live in
// vector registers for the whole k loop (explicit vector locals defeat the
// compiler's urge to keep the tile in stack memory). Branchless on purpose:
// fma(0, b, acc) returns acc exactly, so including or skipping zero terms
// produces identical bits — which is what makes the sparse/dense strategy
// dispatch below legal in the first place (see fmadd above).
template <int MR>
void affine_microkernel(const double* pa, const double* pb, int cols_k, int cols_n,
                        int i0, int j0, const double* pbias, Epilogue act, double* po) {
  vnd acc[MR][2];
  for (int r = 0; r < MR; ++r) acc[r][0] = acc[r][1] = broadcastv(0.0);
  for (int k = 0; k < cols_k; ++k) {
    const double* brow = pb + static_cast<std::size_t>(k) * cols_n + j0;
    const vnd b0 = loadv(brow);
    const vnd b1 = loadv(brow + kLanes);
    for (int r = 0; r < MR; ++r) {
      const vnd a = broadcastv(pa[static_cast<std::size_t>(i0 + r) * cols_k + k]);
      acc[r][0] = fmaddv(a, b0, acc[r][0]);
      acc[r][1] = fmaddv(a, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    double* orow = po + static_cast<std::size_t>(i0 + r) * cols_n + j0;
    double tile[kNrReg];
    storev(tile, acc[r][0]);
    storev(tile + kLanes, acc[r][1]);
    for (int j = 0; j < kNrReg; ++j) {
      const double v = pbias ? tile[j] + pbias[j0 + j] : tile[j];
      orow[j] = apply_epilogue(v, act);
    }
  }
}

// Single-vector-wide variant for the column remainder: a full kLanes-wide
// tile that doesn't fill two vectors. Same chain per element as the two-wide
// kernel, so mixing the two along a row is bit-transparent.
template <int MR>
void affine_microkernel_v1(const double* pa, const double* pb, int cols_k, int cols_n,
                           int i0, int j0, const double* pbias, Epilogue act,
                           double* po) {
  vnd acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = broadcastv(0.0);
  for (int k = 0; k < cols_k; ++k) {
    const vnd b0 = loadv(pb + static_cast<std::size_t>(k) * cols_n + j0);
    for (int r = 0; r < MR; ++r) {
      const vnd a = broadcastv(pa[static_cast<std::size_t>(i0 + r) * cols_k + k]);
      acc[r] = fmaddv(a, b0, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    double* orow = po + static_cast<std::size_t>(i0 + r) * cols_n + j0;
    double tile[kLanes];
    storev(tile, acc[r]);
    for (int j = 0; j < kLanes; ++j) {
      const double v = pbias ? tile[j] + pbias[j0 + j] : tile[j];
      orow[j] = apply_epilogue(v, act);
    }
  }
}

// Sparse-block path: one AXPY over the full output row per nonzero A
// element, like the reference kernel. For the GCN inputs (A-hat, the
// observation feature blocks) most rows carry a handful of nonzeros, and the
// tiled path would re-scan the whole A block once per column tile just to
// find them. Bit-identical to the tiled path: per output element the sum is
// still one accumulator over ascending k, and dropped zero terms are no-ops
// (see affine_microkernel).
// The row sweeps are kept to the minimum the chain allows: the FIRST nonzero
// initializes the row directly (fmadd(a, b, +0.0) is the exact expression
// the zero-filled version would compute) and the LAST nonzero carries the
// bias/activation epilogue with it, so a row with nnz nonzeros costs nnz
// sweeps instead of nnz + 2. For A-hat rows (a handful of neighbors) and
// observation feature rows (mostly one or two nonzeros) that is the
// difference between being store-bound and being nnz-bound.
void affine_rows_sparse(const double* pa, const double* pb, int cols_k, int cols_n,
                        const double* pbias, Epilogue act, double* po, int i_begin,
                        int i_end) {
  for (int i = i_begin; i < i_end; ++i) {
    double* orow = po + static_cast<std::size_t>(i) * cols_n;
    const double* arow = pa + static_cast<std::size_t>(i) * cols_k;
    int k_first = 0;
    while (k_first < cols_k && arow[k_first] == 0.0) ++k_first;
    if (k_first == cols_k) {
      // Empty row. 0.0 + pbias[j] (not bare pbias[j]): keeps the bits of the
      // accumulate-into-zeros formulation even for a -0.0 bias entry.
      for (int j = 0; j < cols_n; ++j) {
        orow[j] = apply_epilogue(pbias ? 0.0 + pbias[j] : 0.0, act);
      }
      continue;
    }
    int k_last = cols_k - 1;
    while (arow[k_last] == 0.0) --k_last;
    if (k_first == k_last) {
      const double aik = arow[k_first];
      const double* brow = pb + static_cast<std::size_t>(k_first) * cols_n;
      for (int j = 0; j < cols_n; ++j) {
        const double acc = fmadd(aik, brow[j], 0.0);
        orow[j] = apply_epilogue(pbias ? acc + pbias[j] : acc, act);
      }
      continue;
    }
    {
      const double aik = arow[k_first];
      const double* brow = pb + static_cast<std::size_t>(k_first) * cols_n;
      for (int j = 0; j < cols_n; ++j) orow[j] = fmadd(aik, brow[j], 0.0);
    }
    for (int k = k_first + 1; k < k_last; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = pb + static_cast<std::size_t>(k) * cols_n;
      for (int j = 0; j < cols_n; ++j) orow[j] = fmadd(aik, brow[j], orow[j]);
    }
    {
      const double aik = arow[k_last];
      const double* brow = pb + static_cast<std::size_t>(k_last) * cols_n;
      for (int j = 0; j < cols_n; ++j) {
        const double acc = fmadd(aik, brow[j], orow[j]);
        orow[j] = apply_epilogue(pbias ? acc + pbias[j] : acc, act);
      }
    }
  }
}

// Density threshold (nonzeros / elements) below which a row block takes the
// sparse path. Pure performance knob: both paths produce identical bits.
constexpr double kSparseDensityMax = 0.25;

// Rows [i_begin, i_end) of out = act(a * b + bias). The accumulation order
// of every output element is a single chain over ascending k. Raw-pointer
// interface so the block-diagonal batched kernels can address sub-blocks of
// a stacked matrix without copying them out first.
void affine_rows(const double* pa, int cols_k, const double* pb, int cols_n,
                 const double* pbias, Epilogue act, double* po, int i_begin,
                 int i_end) {
  for (int i0 = i_begin; i0 < i_end; i0 += kMr) {
    const int mi = std::min(kMr, i_end - i0);
    // One cheap scan decides the strategy for this row block.
    int nnz = 0;
    const double* block = pa + static_cast<std::size_t>(i0) * cols_k;
    for (int e = 0; e < mi * cols_k; ++e) nnz += block[e] != 0.0;
    if (nnz < kSparseDensityMax * mi * cols_k) {
      affine_rows_sparse(pa, pb, cols_k, cols_n, pbias, act, po, i0, i0 + mi);
      continue;
    }
    // Register tiles for every row count — the MR template covers partial row
    // blocks too, so only the sub-vector column remainder falls through to
    // the general path below.
    int j0 = 0;
    switch (mi) {
      case 4:
        for (; j0 + kNrReg <= cols_n; j0 += kNrReg)
          affine_microkernel<4>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        for (; j0 + kLanes <= cols_n; j0 += kLanes)
          affine_microkernel_v1<4>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        break;
      case 3:
        for (; j0 + kNrReg <= cols_n; j0 += kNrReg)
          affine_microkernel<3>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        for (; j0 + kLanes <= cols_n; j0 += kLanes)
          affine_microkernel_v1<3>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        break;
      case 2:
        for (; j0 + kNrReg <= cols_n; j0 += kNrReg)
          affine_microkernel<2>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        for (; j0 + kLanes <= cols_n; j0 += kLanes)
          affine_microkernel_v1<2>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        break;
      case 1:
        for (; j0 + kNrReg <= cols_n; j0 += kNrReg)
          affine_microkernel<1>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        for (; j0 + kLanes <= cols_n; j0 += kLanes)
          affine_microkernel_v1<1>(pa, pb, cols_k, cols_n, i0, j0, pbias, act, po);
        break;
      default:
        break;
    }
    // Sub-vector column remainder: general bounds.
    for (; j0 < cols_n; j0 += kNr) {
      const int nj = std::min(kNr, cols_n - j0);
      double acc[kMr][kNr];
      for (int r = 0; r < mi; ++r) {
        for (int j = 0; j < nj; ++j) acc[r][j] = 0.0;
      }
      for (int k = 0; k < cols_k; ++k) {
        const double* brow = pb + static_cast<std::size_t>(k) * cols_n + j0;
        for (int r = 0; r < mi; ++r) {
          const double ark = pa[static_cast<std::size_t>(i0 + r) * cols_k + k];
          double* accr = acc[r];
          for (int j = 0; j < nj; ++j) accr[j] = fmadd(ark, brow[j], accr[j]);
        }
      }
      for (int r = 0; r < mi; ++r) {
        double* orow = po + static_cast<std::size_t>(i0 + r) * cols_n + j0;
        for (int j = 0; j < nj; ++j) {
          const double v = pbias ? acc[r][j] + pbias[j0 + j] : acc[r][j];
          orow[j] = apply_epilogue(v, act);
        }
      }
    }
  }
}

// Rows [i_begin, i_end) of out = a * b^T (b row-major N x K).
void matmul_nt_rows(const Matrix& a, const Matrix& b, Matrix& out, int i_begin,
                    int i_end) {
  const int cols_k = a.cols();
  const int rows_n = b.rows();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (int i0 = i_begin; i0 < i_end; i0 += kMr) {
    const int mi = std::min(kMr, i_end - i0);
    for (int j0 = 0; j0 < rows_n; j0 += kNrDot) {
      const int nj = std::min(kNrDot, rows_n - j0);
      double acc[kMr][kNrDot];
      for (int r = 0; r < mi; ++r) {
        for (int j = 0; j < nj; ++j) acc[r][j] = 0.0;
      }
      for (int k = 0; k < cols_k; ++k) {
        double avals[kMr];
        double bvals[kNrDot];
        for (int r = 0; r < mi; ++r) {
          avals[r] = pa[static_cast<std::size_t>(i0 + r) * cols_k + k];
        }
        for (int j = 0; j < nj; ++j) {
          bvals[j] = pb[static_cast<std::size_t>(j0 + j) * cols_k + k];
        }
        for (int r = 0; r < mi; ++r) {
          for (int j = 0; j < nj; ++j) acc[r][j] = fmadd(avals[r], bvals[j], acc[r][j]);
        }
      }
      for (int r = 0; r < mi; ++r) {
        double* orow = po + static_cast<std::size_t>(i0 + r) * rows_n + j0;
        for (int j = 0; j < nj; ++j) orow[j] = acc[r][j];
      }
    }
  }
}

// Full-tile micro-kernel for out = a^T * b; same registerization and
// bit-preservation argument as affine_microkernel.
template <int MR>
void tn_microkernel(const double* pa, const double* pb, int rows_k, int cols_m,
                    int cols_n, int i0, int j0, double* po) {
  vnd acc[MR][2];
  for (int r = 0; r < MR; ++r) acc[r][0] = acc[r][1] = broadcastv(0.0);
  for (int k = 0; k < rows_k; ++k) {
    const double* arow = pa + static_cast<std::size_t>(k) * cols_m + i0;
    const double* brow = pb + static_cast<std::size_t>(k) * cols_n + j0;
    const vnd b0 = loadv(brow);
    const vnd b1 = loadv(brow + kLanes);
    for (int r = 0; r < MR; ++r) {
      const vnd a = broadcastv(arow[r]);
      acc[r][0] = fmaddv(a, b0, acc[r][0]);
      acc[r][1] = fmaddv(a, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    double* orow = po + static_cast<std::size_t>(i0 + r) * cols_n + j0;
    storev(orow, acc[r][0]);
    storev(orow + kLanes, acc[r][1]);
  }
}

// Single-vector-wide column-remainder variant (see affine_microkernel_v1).
template <int MR>
void tn_microkernel_v1(const double* pa, const double* pb, int rows_k, int cols_m,
                       int cols_n, int i0, int j0, double* po) {
  vnd acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = broadcastv(0.0);
  for (int k = 0; k < rows_k; ++k) {
    const double* arow = pa + static_cast<std::size_t>(k) * cols_m + i0;
    const vnd b0 = loadv(pb + static_cast<std::size_t>(k) * cols_n + j0);
    for (int r = 0; r < MR; ++r) {
      acc[r] = fmaddv(broadcastv(arow[r]), b0, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    storev(po + static_cast<std::size_t>(i0 + r) * cols_n + j0, acc[r]);
  }
}

// Rows [i_begin, i_end) of out = a^T * b (a row-major K x M; out M x N).
// Raw-pointer interface for the same reason as affine_rows.
void matmul_tn_rows(const double* pa, int rows_k, int cols_m, const double* pb,
                    int cols_n, double* po, int i_begin, int i_end) {
  for (int i0 = i_begin; i0 < i_end; i0 += kMr) {
    const int mi = std::min(kMr, i_end - i0);
    int j0_reg = 0;
    switch (mi) {
      case 4:
        for (; j0_reg + kNrReg <= cols_n; j0_reg += kNrReg)
          tn_microkernel<4>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        for (; j0_reg + kLanes <= cols_n; j0_reg += kLanes)
          tn_microkernel_v1<4>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        break;
      case 3:
        for (; j0_reg + kNrReg <= cols_n; j0_reg += kNrReg)
          tn_microkernel<3>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        for (; j0_reg + kLanes <= cols_n; j0_reg += kLanes)
          tn_microkernel_v1<3>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        break;
      case 2:
        for (; j0_reg + kNrReg <= cols_n; j0_reg += kNrReg)
          tn_microkernel<2>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        for (; j0_reg + kLanes <= cols_n; j0_reg += kLanes)
          tn_microkernel_v1<2>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        break;
      case 1:
        for (; j0_reg + kNrReg <= cols_n; j0_reg += kNrReg)
          tn_microkernel<1>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        for (; j0_reg + kLanes <= cols_n; j0_reg += kLanes)
          tn_microkernel_v1<1>(pa, pb, rows_k, cols_m, cols_n, i0, j0_reg, po);
        break;
      default:
        break;
    }
    for (int j0 = j0_reg; j0 < cols_n; j0 += kNr) {
      const int nj = std::min(kNr, cols_n - j0);
      double acc[kMr][kNr];
      for (int r = 0; r < mi; ++r) {
        for (int j = 0; j < nj; ++j) acc[r][j] = 0.0;
      }
      for (int k = 0; k < rows_k; ++k) {
        const double* arow = pa + static_cast<std::size_t>(k) * cols_m + i0;
        const double* brow = pb + static_cast<std::size_t>(k) * cols_n + j0;
        for (int r = 0; r < mi; ++r) {
          const double ark = arow[r];
          if (ark == 0.0) continue;  // zero-skip; bit-preserving (see affine_rows)
          double* accr = acc[r];
          for (int j = 0; j < nj; ++j) accr[j] = fmadd(ark, brow[j], accr[j]);
        }
      }
      for (int r = 0; r < mi; ++r) {
        double* orow = po + static_cast<std::size_t>(i0 + r) * cols_n + j0;
        for (int j = 0; j < nj; ++j) orow[j] = acc[r][j];
      }
    }
  }
}

// Partitions rows [0, total) into kRowsPerTask chunks and runs `rows` over
// them, in parallel when the shape is large enough and the pool is free.
template <typename RowsFn>
void run_rows(int total, std::int64_t m, std::int64_t n, std::int64_t k,
              const RowsFn& rows) {
  if (total == 0) return;
  if (want_parallel(m, n, k)) {
    const int chunks = (total + kRowsPerTask - 1) / kRowsPerTask;
    const bool ran = try_parallel(chunks, [&](int c) {
      const int begin = c * kRowsPerTask;
      rows(begin, std::min(begin + kRowsPerTask, total));
    });
    if (ran) return;
  }
  rows(0, total);
}

}  // namespace

void set_nn_kernel(NnKernel kernel) {
  g_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

NnKernel nn_kernel() {
  return static_cast<NnKernel>(g_kernel.load(std::memory_order_relaxed));
}

void set_nn_kernel_threads(int threads) {
  NPTSN_EXPECT(threads >= 1, "nn kernel thread count must be positive");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_threads.store(threads, std::memory_order_relaxed);
  if (g_pool && g_pool->size() != threads) g_pool.reset();
}

int nn_kernel_threads() { return g_threads.load(std::memory_order_relaxed); }

namespace nnk {

void matmul_reference(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix(a.rows(), b.cols());
  // i-k-j order: streams through b and out rows, cache friendly for row-major.
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;  // A-hat and feature blocks are sparse
      const double* brow = b.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(b.cols());
      double* orow = out.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(out.cols());
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_nt_reference(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += a.at(i, k) * b.at(j, k);
      out.at(i, j) = sum;
    }
  }
}

void matmul_tn_reference(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix(a.cols(), b.cols());
  // k outer: streams rows of a and b, accumulates rank-1 updates into out.
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      double* orow = out.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(out.cols());
      const double* brow = b.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(b.cols());
      for (int j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
}

void affine_reference(const Matrix& a, const Matrix& b, const Matrix* bias,
                      Epilogue act, Matrix& out) {
  matmul_reference(a, b, out);
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      double v = out.at(i, j);
      if (bias) v += bias->at(0, j);
      out.at(i, j) = apply_epilogue(v, act);
    }
  }
}

void matmul_fast(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix::uninitialized(a.rows(), b.cols());
  run_rows(a.rows(), a.rows(), b.cols(), a.cols(), [&](int begin, int end) {
    affine_rows(a.data(), a.cols(), b.data(), b.cols(), nullptr, Epilogue::kNone,
                out.data(), begin, end);
  });
}

void matmul_nt_fast(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix::uninitialized(a.rows(), b.rows());
  run_rows(a.rows(), a.rows(), b.rows(), a.cols(), [&](int begin, int end) {
    matmul_nt_rows(a, b, out, begin, end);
  });
}

void matmul_tn_fast(const Matrix& a, const Matrix& b, Matrix& out) {
  out = Matrix::uninitialized(a.cols(), b.cols());
  run_rows(a.cols(), a.cols(), b.cols(), a.rows(), [&](int begin, int end) {
    matmul_tn_rows(a.data(), a.rows(), a.cols(), b.data(), b.cols(), out.data(),
                   begin, end);
  });
}

void affine_fast(const Matrix& a, const Matrix& b, const Matrix* bias,
                 Epilogue act, Matrix& out) {
  out = Matrix::uninitialized(a.rows(), b.cols());
  run_rows(a.rows(), a.rows(), b.cols(), a.cols(), [&](int begin, int end) {
    affine_rows(a.data(), a.cols(), b.data(), b.cols(),
                bias ? bias->data() : nullptr, act, out.data(), begin, end);
  });
}

// Propagation of one block via the staged CSR index: out_g = act(adj_g *
// src), no bias (adjacency products never carry one). Per output element the
// chain is the same single accumulator over ascending k the dense-scan
// sparse path walks — the CSR just skips the rescans — with the first/last
// nonzero carrying the init and epilogue sweeps (see affine_rows_sparse).
void propagate_rows_csr(const BlockAdjacency& adj, int g, const double* psrc,
                        int cols_n, Epilogue act, double* po) {
  const int n = adj.block_size();
  const int* cols = adj.csr_cols();
  const double* vals = adj.csr_vals();
  for (int i = 0; i < n; ++i) {
    double* orow = po + static_cast<std::size_t>(i) * cols_n;
    std::size_t t = adj.row_begin(g, i);
    const std::size_t t_end = adj.row_end(g, i);
    if (t == t_end) {
      for (int j = 0; j < cols_n; ++j) orow[j] = apply_epilogue(0.0, act);
      continue;
    }
    if (t_end - t == 1) {
      const double a = vals[t];
      const double* brow = psrc + static_cast<std::size_t>(cols[t]) * cols_n;
      for (int j = 0; j < cols_n; ++j) {
        orow[j] = apply_epilogue(fmadd(a, brow[j], 0.0), act);
      }
      continue;
    }
    {
      const double a = vals[t];
      const double* brow = psrc + static_cast<std::size_t>(cols[t]) * cols_n;
      for (int j = 0; j < cols_n; ++j) orow[j] = fmadd(a, brow[j], 0.0);
    }
    for (++t; t + 1 < t_end; ++t) {
      const double a = vals[t];
      const double* brow = psrc + static_cast<std::size_t>(cols[t]) * cols_n;
      for (int j = 0; j < cols_n; ++j) orow[j] = fmadd(a, brow[j], orow[j]);
    }
    {
      const double a = vals[t];
      const double* brow = psrc + static_cast<std::size_t>(cols[t]) * cols_n;
      for (int j = 0; j < cols_n; ++j) {
        orow[j] = apply_epilogue(fmadd(a, brow[j], orow[j]), act);
      }
    }
  }
}

void block_affine_reference(const BlockAdjacency& adj, const Matrix& h,
                            Epilogue act, Matrix& out) {
  const std::vector<Matrix>& blocks = adj.blocks();
  const int n = blocks.front().rows();
  const int cols_n = h.cols();
  out = Matrix(h.rows(), cols_n);
  for (std::size_t g = 0; g < blocks.size(); ++g) {
    const double* pa = blocks[g].data();
    const double* ph = h.data() + g * static_cast<std::size_t>(n) * cols_n;
    double* po = out.data() + g * static_cast<std::size_t>(n) * cols_n;
    // Same i-k-j zero-skip loop as matmul_reference, addressed into the
    // stacked block instead of a copied-out one — identical operations in
    // identical order, so reference-family results are unchanged bitwise.
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        const double aik = pa[static_cast<std::size_t>(i) * n + k];
        if (aik == 0.0) continue;
        const double* hrow = ph + static_cast<std::size_t>(k) * cols_n;
        double* orow = po + static_cast<std::size_t>(i) * cols_n;
        for (int j = 0; j < cols_n; ++j) orow[j] += aik * hrow[j];
      }
    }
    for (int i = 0; i < n * cols_n; ++i) po[i] = apply_epilogue(po[i], act);
  }
}

void block_affine_fast(const BlockAdjacency& adj, const Matrix& h,
                       Epilogue act, Matrix& out) {
  const int n = adj.block_size();
  const int cols_n = h.cols();
  const int count = adj.count();
  out = Matrix::uninitialized(h.rows(), cols_n);
  const auto one = [&](int g) {
    propagate_rows_csr(adj, g, h.data() + static_cast<std::size_t>(g) * n * cols_n,
                       cols_n, act,
                       out.data() + static_cast<std::size_t>(g) * n * cols_n);
  };
  // One task per graph: the partition is fixed by the batch itself, so the
  // result is bit-identical at every thread count (as with run_rows).
  if (want_parallel(h.rows(), cols_n, n) && try_parallel(count, one)) return;
  for (int g = 0; g < count; ++g) one(g);
}

void block_matmul_tn_reference(const BlockAdjacency& adj, const Matrix& delta,
                               Matrix& out) {
  const std::vector<Matrix>& blocks = adj.blocks();
  const int n = blocks.front().rows();
  const int cols_n = delta.cols();
  out = Matrix(delta.rows(), cols_n);
  for (std::size_t g = 0; g < blocks.size(); ++g) {
    const double* pa = blocks[g].data();
    const double* pd = delta.data() + g * static_cast<std::size_t>(n) * cols_n;
    double* po = out.data() + g * static_cast<std::size_t>(n) * cols_n;
    // k-outer rank-1 updates, as in matmul_tn_reference.
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        const double aki = pa[static_cast<std::size_t>(k) * n + i];
        if (aki == 0.0) continue;
        const double* drow = pd + static_cast<std::size_t>(k) * cols_n;
        double* orow = po + static_cast<std::size_t>(i) * cols_n;
        for (int j = 0; j < cols_n; ++j) orow[j] += aki * drow[j];
      }
    }
  }
}

void block_gcn_reference(const BlockAdjacency& adj, const Matrix& h,
                         const Matrix& w, const Matrix& bias, Matrix& out) {
  const std::vector<Matrix>& blocks = adj.blocks();
  const int n = blocks.front().rows();
  const int cols_k = h.cols();
  const int cols_n = w.cols();
  out = Matrix(h.rows(), cols_n);
  Matrix z(n, cols_n);
  for (std::size_t g = 0; g < blocks.size(); ++g) {
    const double* ph = h.data() + g * static_cast<std::size_t>(n) * cols_k;
    const double* pa = blocks[g].data();
    double* po = out.data() + g * static_cast<std::size_t>(n) * cols_n;
    double* pz = z.data();
    // z_g = h_g * w + bias, the same i-k-j accumulation the unfused
    // affine_reference performs on the stacked matrix — the per-element
    // reduction order is row-local, so splitting the rows by graph changes
    // nothing bitwise.
    for (int i = 0; i < n * cols_n; ++i) pz[i] = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < cols_k; ++k) {
        const double hik = ph[static_cast<std::size_t>(i) * cols_k + k];
        if (hik == 0.0) continue;
        const double* wrow = w.data() + static_cast<std::size_t>(k) * cols_n;
        double* zrow = pz + static_cast<std::size_t>(i) * cols_n;
        for (int j = 0; j < cols_n; ++j) zrow[j] += hik * wrow[j];
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < cols_n; ++j) {
        pz[static_cast<std::size_t>(i) * cols_n + j] += bias.data()[j];
      }
    }
    // out_g = relu(blocks[g] * z_g), as in block_affine_reference.
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        const double aik = pa[static_cast<std::size_t>(i) * n + k];
        if (aik == 0.0) continue;
        const double* zrow = pz + static_cast<std::size_t>(k) * cols_n;
        double* orow = po + static_cast<std::size_t>(i) * cols_n;
        for (int j = 0; j < cols_n; ++j) orow[j] += aik * zrow[j];
      }
    }
    for (int i = 0; i < n * cols_n; ++i) {
      po[i] = apply_epilogue(po[i], Epilogue::kRelu);
    }
  }
}

void block_gcn_fast(const BlockAdjacency& adj, const Matrix& h,
                    const Matrix& w, const Matrix& bias, Matrix& out) {
  const int n = adj.block_size();
  const int cols_k = h.cols();
  const int cols_n = w.cols();
  const int count = adj.count();
  out = Matrix::uninitialized(h.rows(), cols_n);
  const auto one = [&](int g) {
    // The scratch tile is small (n x out doubles) and written immediately
    // before it is read, so it stays in cache; a per-task instance keeps the
    // parallel path race-free without changing any bits.
    Matrix z = Matrix::uninitialized(n, cols_n);
    affine_rows(h.data() + static_cast<std::size_t>(g) * n * cols_k, cols_k,
                w.data(), cols_n, bias.data(), Epilogue::kNone, z.data(), 0, n);
    propagate_rows_csr(adj, g, z.data(), cols_n, Epilogue::kRelu,
                       out.data() + static_cast<std::size_t>(g) * n * cols_n);
  };
  if (want_parallel(h.rows(), cols_n, cols_k + n) && try_parallel(count, one)) return;
  for (int g = 0; g < count; ++g) one(g);
}

void block_matmul_tn_fast(const BlockAdjacency& adj, const Matrix& delta,
                          Matrix& out) {
  const std::vector<Matrix>& blocks = adj.blocks();
  const int n = adj.block_size();
  const int cols_n = delta.cols();
  const int count = adj.count();
  out = Matrix::uninitialized(delta.rows(), cols_n);
  const auto one = [&](int g) {
    matmul_tn_rows(blocks[static_cast<std::size_t>(g)].data(), n, n,
                   delta.data() + static_cast<std::size_t>(g) * n * cols_n, cols_n,
                   out.data() + static_cast<std::size_t>(g) * n * cols_n, 0, n);
  };
  if (want_parallel(delta.rows(), cols_n, n) && try_parallel(count, one)) return;
  for (int g = 0; g < count; ++g) one(g);
}

}  // namespace nnk
}  // namespace nptsn
