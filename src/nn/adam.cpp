#include "nn/adam.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace nptsn {

Adam::Adam(std::vector<Tensor> parameters, Options options)
    : parameters_(std::move(parameters)), options_(options) {
  NPTSN_EXPECT(!parameters_.empty(), "optimizer needs at least one parameter");
  NPTSN_EXPECT(options_.learning_rate > 0.0, "learning rate must be positive");
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    NPTSN_EXPECT(p.requires_grad(), "optimizer parameters must require grad");
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::zero_grad() {
  for (Tensor& p : parameters_) p.zero_grad();
}

void Adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    Matrix& value = parameters_[i].mutable_value();
    const Matrix& grad = parameters_[i].mutable_grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int j = 0; j < value.size(); ++j) {
      const double g = grad.data()[j];
      m.data()[j] = options_.beta1 * m.data()[j] + (1.0 - options_.beta1) * g;
      v.data()[j] = options_.beta2 * v.data()[j] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m.data()[j] / bias1;
      const double v_hat = v.data()[j] / bias2;
      value.data()[j] -= options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

Adam::State Adam::export_state() const {
  State state;
  state.m = m_;
  state.v = v_;
  state.step_count = step_count_;
  return state;
}

void Adam::import_state(const State& state) {
  NPTSN_EXPECT(state.m.size() == parameters_.size() && state.v.size() == parameters_.size(),
               "optimizer state parameter count mismatch");
  NPTSN_EXPECT(state.step_count >= 0, "optimizer step count must be non-negative");
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    NPTSN_EXPECT(state.m[i].same_shape(m_[i]) && state.v[i].same_shape(v_[i]),
                 "optimizer state shape mismatch");
  }
  m_ = state.m;
  v_ = state.v;
  step_count_ = state.step_count;
}

}  // namespace nptsn
