// Cross-session cache of staged BlockAdjacency forms (DESIGN.md §13).
//
// Staging a batch adjacency (dense block copies + the CSR index the blocked
// GCN propagation reads) is pure preprocessing: the staged form is a
// deterministic function of the block contents alone. Within one PPO update
// ActorCritic::stage_batch already stages once and reuses across head
// iterations; this cache extends the reuse across updates and across
// SESSIONS — a planner service replaying a previously seen problem walks the
// same topology prefixes and re-stages byte-identical adjacency batches
// every epoch.
//
// Exactness: a probe hashes the block contents, then VERIFIES a hit by
// comparing every dimension and every double bit pattern against the cached
// object's own dense blocks before handing it out. A verified-equal staged
// form is indistinguishable from a fresh one (the CSR index is a
// deterministic function of the blocks), so batched forwards stay
// bit-identical with the cache on or off. Hash collisions with different
// content are counted and treated as misses.
//
// Thread-safe (one mutex — staging hits are rare enough per second that
// sharding would buy nothing) and bounded by a byte budget over the staged
// forms' estimated resident size. Derived state: never checkpointed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/matrix.hpp"
#include "util/lru_store.hpp"

namespace nptsn {

class AdjacencyStageCache {
 public:
  explicit AdjacencyStageCache(std::size_t max_bytes = std::size_t{64} << 20);

  // Returns the staged form of `blocks`: a verified cache hit, or a freshly
  // staged (and admitted) BlockAdjacency. The returned object is immutable
  // and shared — callers keep it alive independently of eviction.
  std::shared_ptr<const BlockAdjacency> stage(std::vector<Matrix> blocks);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t collisions = 0;  // hash matched, content differed
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::uint64_t collisions_ = 0;
  LruStore<std::uint64_t, std::shared_ptr<const BlockAdjacency>> store_;
};

}  // namespace nptsn
