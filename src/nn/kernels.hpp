// Throughput kernels for the NN hot path (DESIGN.md §11).
//
// Two interchangeable kernel families sit behind the free functions of
// matrix.hpp:
//
//   kReference  the original naive loops — the ground truth every fast
//               kernel is differential-tested against, and the kernel the
//               bit-identity/checkpoint suites pin their goldens to.
//   kFast       register-blocked, cache-tiled GEMM with fused bias +
//               activation epilogues and an optional ThreadPool-parallel
//               path for large shapes.
//
// Determinism contract: every fast kernel accumulates each output element
// with a SINGLE accumulator over ascending k. Tiling only reorders which
// elements are computed when, never the reduction order within an element,
// and the parallel path partitions output rows into fixed-size chunks that
// are independent of the thread count. Fast results are therefore
// bit-identical run-to-run and across thread counts (tested in
// tests/nn/kernels_test.cpp); fast-vs-reference may differ by FMA
// contraction only, bounded at 1e-12 relative in the differential suite.
#pragma once

#include "nn/matrix.hpp"

namespace nptsn::nnk {

// All kernels overwrite `out` (resizing it to the result shape); `out` must
// not alias an input. Shape checks live in the matrix.hpp dispatchers.

// --- reference family (naive loops, the retained ground truth) --------------
void matmul_reference(const Matrix& a, const Matrix& b, Matrix& out);
// out = a * b^T
void matmul_nt_reference(const Matrix& a, const Matrix& b, Matrix& out);
// out = a^T * b
void matmul_tn_reference(const Matrix& a, const Matrix& b, Matrix& out);
// out = act(a * b + bias); bias is a 1 x N row broadcast or nullptr.
void affine_reference(const Matrix& a, const Matrix& b, const Matrix* bias,
                      Epilogue act, Matrix& out);

// --- fast family (register-blocked, cache-tiled, optional parallel) ----------
void matmul_fast(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_nt_fast(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_tn_fast(const Matrix& a, const Matrix& b, Matrix& out);
void affine_fast(const Matrix& a, const Matrix& b, const Matrix* bias,
                 Epilogue act, Matrix& out);

// --- block-diagonal batched GEMM (the GCN propagation step) -----------------
// h stacks one n x C block per graph; out row block g is act(blocks[g] * h_g)
// (forward) or blocks[g]^T * delta_g (backward). Operating on the stacked
// matrix in place is what these buy: the per-graph copy-out/copy-back and the
// per-call allocations of the naive formulation are pure overhead at GCN
// sizes. The adjacencies arrive as a staged BlockAdjacency: the fast forward
// kernels walk its CSR index (built once, reused across layers, heads, and
// PPO iterations), the reference and backward kernels read the retained
// dense blocks. Dispatchers: block_diag_matmul / block_diag_matmul_tn.
void block_affine_reference(const BlockAdjacency& adj, const Matrix& h,
                            Epilogue act, Matrix& out);
void block_affine_fast(const BlockAdjacency& adj, const Matrix& h,
                       Epilogue act, Matrix& out);
void block_matmul_tn_reference(const BlockAdjacency& adj, const Matrix& delta,
                               Matrix& out);
void block_matmul_tn_fast(const BlockAdjacency& adj, const Matrix& delta,
                          Matrix& out);
// Whole fused GCN layer, relu(blocks[g] * (h_g * w + bias)) per row block.
// The affine product for graph g lands in an n x out scratch tile that stays
// cache-resident until the propagation consumes it, so the full-size
// intermediate (B n) x out matrix of the two-op formulation never exists.
void block_gcn_reference(const BlockAdjacency& adj, const Matrix& h,
                         const Matrix& w, const Matrix& bias, Matrix& out);
void block_gcn_fast(const BlockAdjacency& adj, const Matrix& h,
                    const Matrix& w, const Matrix& bias, Matrix& out);

}  // namespace nptsn::nnk
