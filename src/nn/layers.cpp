#include "nn/layers.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace nptsn {
namespace {

// Xavier/Glorot uniform initialization.
Matrix init_weight(int in_features, int out_features, Rng& rng) {
  NPTSN_EXPECT(in_features > 0 && out_features > 0, "layer dimensions must be positive");
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  Matrix w(in_features, out_features);
  for (int i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-bound, bound);
  return w;
}

}  // namespace

Linear::Linear(int in_features, int out_features, Rng& rng)
    : weight_(Tensor::parameter(init_weight(in_features, out_features, rng))),
      bias_(Tensor::parameter(Matrix(1, out_features))) {}

Tensor Linear::forward(const Tensor& x) const {
  return forward_act(x, Epilogue::kNone);
}

Tensor Linear::forward_act(const Tensor& x, Epilogue act) const {
  NPTSN_EXPECT(x.cols() == in_features(), "linear input width mismatch");
  return affine_act(x, weight_, bias_, act);
}

void Linear::collect_parameters(std::vector<Tensor>& out) const {
  out.push_back(weight_);
  out.push_back(bias_);
}

GcnLayer::GcnLayer(int in_features, int out_features, Rng& rng)
    : lin_(in_features, out_features, rng) {}

Tensor GcnLayer::forward(const Tensor& a_hat, const Tensor& h) const {
  NPTSN_EXPECT(a_hat.rows() == a_hat.cols() && a_hat.rows() == h.rows(),
               "adjacency/feature shape mismatch");
  return matmul_act(a_hat, lin_.forward(h), Epilogue::kRelu);
}

Tensor GcnLayer::forward_batched(const std::shared_ptr<const BlockAdjacency>& a_hats,
                                 const Tensor& h) const {
  // Fused affine + propagation + ReLU: bit-identical to
  // block_matmul_relu(a_hats, lin_.forward(h)) but without materializing the
  // stacked affine intermediate.
  return block_gcn_fused(a_hats, h, lin_.weight(), lin_.bias());
}

void GcnLayer::collect_parameters(std::vector<Tensor>& out) const {
  lin_.collect_parameters(out);
}

Matrix normalized_adjacency(const Matrix& adjacency) {
  NPTSN_EXPECT(adjacency.rows() == adjacency.cols(), "adjacency must be square");
  const int n = adjacency.rows();
  Matrix a = adjacency;
  for (int i = 0; i < n; ++i) a.at(i, i) = 1.0;  // self loops

  std::vector<double> inv_sqrt_degree(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double degree = 0.0;
    for (int j = 0; j < n; ++j) {
      NPTSN_EXPECT(a.at(i, j) == 0.0 || a.at(i, j) == 1.0, "adjacency must be 0/1");
      degree += a.at(i, j);
    }
    inv_sqrt_degree[static_cast<std::size_t>(i)] = 1.0 / std::sqrt(degree);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(i, j) *= inv_sqrt_degree[static_cast<std::size_t>(i)] *
                    inv_sqrt_degree[static_cast<std::size_t>(j)];
    }
  }
  return a;
}

GatLayer::GatLayer(int in_features, int out_features, Rng& rng)
    : lin_(in_features, out_features, rng),
      attn_src_(Tensor::parameter(init_weight(out_features, 1, rng))),
      attn_dst_(Tensor::parameter(init_weight(out_features, 1, rng))) {}

Tensor GatLayer::forward(const Matrix& neighborhood, const Tensor& h) const {
  NPTSN_EXPECT(neighborhood.rows() == neighborhood.cols() &&
                   neighborhood.rows() == h.rows(),
               "neighborhood/feature shape mismatch");
  const int n = h.rows();
  const Tensor wh = lin_.forward(h);                       // n x out
  const Tensor src = matmul(wh, attn_src_);                // n x 1
  const Tensor dst = matmul(wh, attn_dst_);                // n x 1
  const Tensor ones_row = Tensor::constant(Matrix(1, n, 1.0));
  const Tensor ones_col = Tensor::constant(Matrix(n, 1, 1.0));
  // scores_ij = src_i + dst_j via rank-one broadcasts.
  const Tensor scores =
      leaky_relu(add(matmul(src, ones_row), matmul(ones_col, transpose_op(dst))));
  const Tensor attention = masked_softmax_rows(scores, neighborhood);
  return relu(matmul(attention, wh));
}

void GatLayer::collect_parameters(std::vector<Tensor>& out) const {
  lin_.collect_parameters(out);
  out.push_back(attn_src_);
  out.push_back(attn_dst_);
}

Mlp::Mlp(int in_features, const std::vector<int>& hidden, int out_features, Rng& rng) {
  int width = in_features;
  for (const int h : hidden) {
    layers_.emplace_back(width, h, rng);
    width = h;
  }
  layers_.emplace_back(width, out_features, rng);
}

Tensor Mlp::forward(Tensor x) const {
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    x = layers_[i].forward_act(x, Epilogue::kTanh);
  }
  return layers_.back().forward(x);
}

void Mlp::collect_parameters(std::vector<Tensor>& out) const {
  for (const auto& layer : layers_) layer.collect_parameters(out);
}

}  // namespace nptsn
