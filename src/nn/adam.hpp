// Adam stochastic gradient optimizer (Kingma & Ba, ref [27] of the paper).
#pragma once

#include <vector>

#include "nn/autograd.hpp"

namespace nptsn {

class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  // All tensors must be parameter leaves; held by value (shared graph nodes).
  Adam(std::vector<Tensor> parameters, Options options);

  void zero_grad();
  // One update from the currently accumulated gradients.
  void step();

  const std::vector<Tensor>& parameters() const { return parameters_; }
  double learning_rate() const { return options_.learning_rate; }
  long step_count() const { return step_count_; }

  // Zero-copy views of the moment estimates for the health supervisor's
  // NaN/Inf sentinels (export_state copies; the epoch-boundary scan must not).
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  // Complete optimizer state (moment estimates + step count), detached from
  // the parameters themselves, for checkpoint/resume. import_state validates
  // that the state matches this optimizer's parameter shapes; after
  // import_state(export_state()) the next step() is bit-identical.
  struct State {
    std::vector<Matrix> m;
    std::vector<Matrix> v;
    long step_count = 0;
  };
  State export_state() const;
  void import_state(const State& state);

 private:
  std::vector<Tensor> parameters_;
  Options options_;
  std::vector<Matrix> m_;  // first-moment estimates
  std::vector<Matrix> v_;  // second-moment estimates
  long step_count_ = 0;
};

}  // namespace nptsn
