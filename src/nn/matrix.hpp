// Dense row-major matrix of doubles — the numeric workhorse under the
// autograd tape. No BLAS, exact reproducibility. Two kernel families sit
// behind the GEMM entry points: the original naive reference loops and a
// register-blocked, cache-tiled fast family (nn/kernels.hpp); the active
// family is a process-global switch driven by NptsnConfig::nn_kernel.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "util/expect.hpp"

namespace nptsn {

// GEMM kernel family (DESIGN.md §11). kReference keeps the naive loops as
// the differential-testing ground truth; kFast is the blocked/tiled family.
// Both are deterministic run-to-run and across thread counts.
enum class NnKernel { kReference, kFast };

// Process-global kernel selection. plan() sets this from
// NptsnConfig::nn_kernel before training starts; concurrent planners in one
// process share the switch, so set it once per process.
void set_nn_kernel(NnKernel kernel);
NnKernel nn_kernel();

// Threads for the parallel fast-GEMM path (1 = always serial). The parallel
// path partitions output rows into fixed-size chunks independent of the
// thread count, so results are bit-identical at every setting.
void set_nn_kernel_threads(int threads);
int nn_kernel_threads();

// Fused epilogue applied by affine/matmul_epilogue in the same pass that
// writes the output tile.
enum class Epilogue { kNone, kRelu, kTanh };

namespace detail {

// Allocator that leaves doubles default-initialized (i.e. uninitialized)
// when the container value-constructs without arguments. Matrix uses it so
// Matrix::uninitialized can skip the zero-fill pass for outputs a kernel is
// about to overwrite completely; the ordinary constructors still fill
// explicitly, so their semantics are unchanged.
template <class T>
struct DefaultInitAllocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

}  // namespace detail

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);
  static Matrix from(std::initializer_list<std::initializer_list<double>> rows);
  // Allocates without filling — every element is indeterminate until
  // written. Only for outputs the caller overwrites in full before any read
  // (the fast GEMM kernels); everything else wants the zero-filling
  // constructor.
  static Matrix uninitialized(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  int size() const { return rows_ * cols_; }
  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& at(int r, int c);
  double at(int r, int c) const;
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value);
  double sum() const;
  // Largest absolute entry (0 for empty matrices).
  double max_abs() const;
  // True when every entry is finite (no NaN/Inf); true for empty matrices.
  // The numeric-sentinel primitive of the training health supervisor.
  bool all_finite() const;

 private:
  struct UninitTag {};
  Matrix(int rows, int cols, UninitTag);

  int rows_ = 0;
  int cols_ = 0;
  std::vector<double, detail::DefaultInitAllocator<double>> data_;
};

// A batch of same-sized square blocks (the per-graph normalized adjacencies
// of a stacked GCN batch) staged for repeated block-diagonal products. The
// constructor builds a CSR index over every block once; the fast propagation
// kernels then walk nonzeros directly instead of re-scanning the dense
// blocks on every layer, head, and PPO iteration that reuses the batch. The
// dense blocks are retained verbatim — the reference family and the backward
// kernels read them, and the CSR is ordered ascending by column within each
// row, so walking it performs the exact accumulation chain the dense scan
// performs (bit-identical under either strategy).
class BlockAdjacency {
 public:
  explicit BlockAdjacency(std::vector<Matrix> blocks);

  int block_size() const { return n_; }
  int count() const { return static_cast<int>(blocks_.size()); }
  const std::vector<Matrix>& blocks() const { return blocks_; }

  // CSR view of local row r of block g: column indices cols()[t] and values
  // vals()[t] for t in [row_begin(g, r), row_end(g, r)), ascending columns.
  std::size_t row_begin(int g, int r) const {
    return row_ptr_[static_cast<std::size_t>(g) * n_ + r];
  }
  std::size_t row_end(int g, int r) const {
    return row_ptr_[static_cast<std::size_t>(g) * n_ + r + 1];
  }
  const int* csr_cols() const { return cols_.data(); }
  const double* csr_vals() const { return vals_.data(); }

 private:
  std::vector<Matrix> blocks_;
  int n_ = 0;
  std::vector<std::size_t> row_ptr_;  // count * n + 1 entries
  std::vector<int> cols_;
  std::vector<double> vals_;
};

// Free-function kernels. All check shapes. The GEMM entry points (matmul,
// matmul_transposed, matmul_transposed_a, affine, matmul_epilogue) dispatch
// on the process-global kernel family.
Matrix matmul(const Matrix& a, const Matrix& b);
// a (M x K) * b^T with b given row-major as N x K — the gradient kernel
// grad_x = grad * W^T without materializing the transpose.
Matrix matmul_transposed(const Matrix& a, const Matrix& b);
// a^T * b with a given row-major as K x M — the gradient kernel
// grad_W = x^T * grad without materializing the transpose.
Matrix matmul_transposed_a(const Matrix& a, const Matrix& b);
// act(x * w + bias) in one pass; bias is a 1 x N row (may be null) and act
// is applied elementwise as the output tile is written.
Matrix affine(const Matrix& x, const Matrix& w, const Matrix* bias, Epilogue act);
// act(a * b) — a matmul with a fused activation epilogue.
Matrix matmul_epilogue(const Matrix& a, const Matrix& b, Epilogue act);
// Block-diagonal batched GEMM over a stacked batch (the GCN propagation
// step): h stacks one n x C row block per graph and row block g of the
// result is act(adj.blocks()[g] * h_g).
Matrix block_diag_matmul(const BlockAdjacency& adj, const Matrix& h, Epilogue act);
// Backward companion: row block g of the result is blocks[g]^T * delta_g.
Matrix block_diag_matmul_tn(const BlockAdjacency& adj, const Matrix& delta);
// Fused GCN layer: row block g of the result is
// relu(blocks[g] * (h_g * w + bias)) — affine, propagation, and activation
// in one kernel call so the full-size affine intermediate never
// materializes. bias is a 1 x w.cols() row.
Matrix block_diag_gcn(const BlockAdjacency& adj, const Matrix& h,
                      const Matrix& w, const Matrix& bias);
Matrix transpose(const Matrix& a);
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double s);
Matrix hadamard(const Matrix& a, const Matrix& b);
// Adds a 1 x C row vector to every row of an R x C matrix.
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
// Accumulates b into a (in place), shapes must match.
void accumulate(Matrix& a, const Matrix& b);

}  // namespace nptsn
