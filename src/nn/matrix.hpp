// Dense row-major matrix of doubles — the numeric workhorse under the
// autograd tape. Sized for this problem (tens of nodes, hundreds of
// features): simple loops, no BLAS, exact reproducibility.
#pragma once

#include <initializer_list>
#include <vector>

#include "util/expect.hpp"

namespace nptsn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);
  static Matrix from(std::initializer_list<std::initializer_list<double>> rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  int size() const { return rows_ * cols_; }
  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& at(int r, int c);
  double at(int r, int c) const;
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value);
  double sum() const;
  // Largest absolute entry (0 for empty matrices).
  double max_abs() const;
  // True when every entry is finite (no NaN/Inf); true for empty matrices.
  // The numeric-sentinel primitive of the training health supervisor.
  bool all_finite() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// Free-function kernels. All check shapes.
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix transpose(const Matrix& a);
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double s);
Matrix hadamard(const Matrix& a, const Matrix& b);
// Adds a 1 x C row vector to every row of an R x C matrix.
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
// Accumulates b into a (in place), shapes must match.
void accumulate(Matrix& a, const Matrix& b);

}  // namespace nptsn
