// Network building blocks: Linear, the GCN layer of Eq. 4, and MLP stacks.
#pragma once

#include <memory>
#include <vector>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace nptsn {

// Fully connected layer, y = x W + b with W: in x out, b: 1 x out.
class Linear {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  // x: n x in -> n x out (bias broadcast over rows).
  Tensor forward(const Tensor& x) const;
  // act(x W + b) as one fused tape node (GEMM + bias + activation in a
  // single kernel pass); forward() is forward_act with Epilogue::kNone.
  Tensor forward_act(const Tensor& x, Epilogue act) const;

  int in_features() const { return weight_.value().rows(); }
  int out_features() const { return weight_.value().cols(); }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  void collect_parameters(std::vector<Tensor>& out) const;

 private:
  Tensor weight_;
  Tensor bias_;
};

// One graph-convolution layer (Kipf & Welling; Eq. 4 of the paper):
//   H' = sigma(A_hat H W + b),  A_hat = D^{-1/2} (A + I) D^{-1/2}
// A_hat is part of the observation and passed per forward call.
class GcnLayer {
 public:
  GcnLayer(int in_features, int out_features, Rng& rng);

  // a_hat: n x n constant; h: n x in -> relu(a_hat h W + b): n x out.
  Tensor forward(const Tensor& a_hat, const Tensor& h) const;
  // Batched forward over B same-sized graphs stacked vertically: h is
  // (B n) x in, block g propagates through a_hats.blocks()[g]. The affine
  // part runs as ONE stacked GEMM over all B graphs; only the n x n
  // adjacency products stay per-graph, driven by the staged CSR index.
  Tensor forward_batched(const std::shared_ptr<const BlockAdjacency>& a_hats,
                         const Tensor& h) const;

  void collect_parameters(std::vector<Tensor>& out) const;

 private:
  Linear lin_;
};

// Computes A_hat from a raw 0/1 adjacency matrix (self loops added here).
Matrix normalized_adjacency(const Matrix& adjacency);

// One graph-attention layer (Velickovic et al., the GAT alternative the
// paper discusses and rejects in Section IV-C — kept as an ablation):
//   e_ij   = LeakyReLU(a_src^T W h_i + a_dst^T W h_j)   for j in N(i) u {i}
//   alpha  = softmax_j(e_ij)
//   h'_i   = relu(sum_j alpha_ij W h_j)
// Single attention head; the neighborhood mask is any n x n matrix whose
// non-zero entries mark attendable pairs (A_hat works directly).
class GatLayer {
 public:
  GatLayer(int in_features, int out_features, Rng& rng);

  // neighborhood: n x n mask (non-zero = attend); h: n x in -> n x out.
  Tensor forward(const Matrix& neighborhood, const Tensor& h) const;

  void collect_parameters(std::vector<Tensor>& out) const;

 private:
  Linear lin_;
  Tensor attn_src_;  // out x 1
  Tensor attn_dst_;  // out x 1
};

// Multi-layer perceptron with tanh hidden activations and a linear head —
// the actor/critic head architecture used by SpinningUp PPO.
class Mlp {
 public:
  Mlp(int in_features, const std::vector<int>& hidden, int out_features, Rng& rng);

  Tensor forward(Tensor x) const;
  void collect_parameters(std::vector<Tensor>& out) const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace nptsn
