#include "nn/stage_cache.hpp"

#include <cstring>

namespace nptsn {
namespace {

// FNV-1a over the block dimensions and raw double bit patterns. Bit patterns
// (not values) so -0.0 / 0.0 and NaN payloads hash — and later compare —
// exactly like the content-verification pass sees them.
std::uint64_t content_hash(const std::vector<Matrix>& blocks) {
  std::uint64_t h = 1469598103934665603ull;
  const auto absorb = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  absorb(blocks.size());
  for (const Matrix& m : blocks) {
    absorb(static_cast<std::uint64_t>(m.rows()));
    absorb(static_cast<std::uint64_t>(m.cols()));
    for (std::size_t i = 0; i < m.size(); ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, m.data() + i, sizeof(bits));
      absorb(bits);
    }
  }
  return h;
}

bool content_equal(const std::vector<Matrix>& blocks, const BlockAdjacency& staged) {
  if (static_cast<std::size_t>(staged.count()) != blocks.size()) return false;
  const std::vector<Matrix>& cached = staged.blocks();
  for (std::size_t g = 0; g < blocks.size(); ++g) {
    const Matrix& a = blocks[g];
    const Matrix& b = cached[g];
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) return false;
  }
  return true;
}

// Estimated resident bytes of a staged form: the dense blocks plus a CSR
// index bounded by one (col, val, row_ptr) triple per dense entry.
std::size_t staged_cost(const BlockAdjacency& staged) {
  const std::size_t n = static_cast<std::size_t>(staged.block_size());
  const std::size_t dense = static_cast<std::size_t>(staged.count()) * n * n;
  return dense * sizeof(double) + dense * (sizeof(int) + sizeof(double)) +
         (static_cast<std::size_t>(staged.count()) * n + 1) * sizeof(std::size_t);
}

}  // namespace

AdjacencyStageCache::AdjacencyStageCache(std::size_t max_bytes) : store_(max_bytes) {}

std::shared_ptr<const BlockAdjacency> AdjacencyStageCache::stage(
    std::vector<Matrix> blocks) {
  const std::uint64_t key = content_hash(blocks);
  {
    std::lock_guard lock(mutex_);
    if (const auto* hit = store_.get(key)) {
      if (content_equal(blocks, **hit)) return *hit;
      ++collisions_;  // different content behind the same hash: miss
    }
  }
  // Stage outside the lock — the expensive part — then admit. On a racing
  // double-stage of the same content, last-writer-wins; both results are
  // content-identical, so either serves every later probe correctly.
  auto staged = std::make_shared<const BlockAdjacency>(std::move(blocks));
  std::lock_guard lock(mutex_);
  store_.put(key, staged, staged_cost(*staged));
  return staged;
}

AdjacencyStageCache::Stats AdjacencyStageCache::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{store_.hits(),      store_.misses(), collisions_,
               store_.evictions(), store_.bytes(),  store_.size()};
}

void AdjacencyStageCache::clear() {
  std::lock_guard lock(mutex_);
  store_.clear();
}

}  // namespace nptsn
