#include "nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace nptsn {

namespace detail {

Matrix& Node::ensure_grad() {
  if (grad.empty() && !value.empty()) grad = Matrix(value.rows(), value.cols());
  return grad;
}

}  // namespace detail

using detail::Node;

Tensor Tensor::constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  return Tensor(std::move(node));
}

Tensor Tensor::parameter(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Tensor(std::move(node));
}

bool Tensor::requires_grad() const { return node_ != nullptr && node_->requires_grad; }

const Matrix& Tensor::value() const {
  NPTSN_EXPECT(defined(), "tensor is empty");
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  NPTSN_EXPECT(defined(), "tensor is empty");
  return node_->value;
}

const Matrix& Tensor::grad() const {
  NPTSN_EXPECT(defined(), "tensor is empty");
  return node_->grad;
}

Matrix& Tensor::mutable_grad() {
  NPTSN_EXPECT(defined(), "tensor is empty");
  return node_->ensure_grad();
}

void Tensor::zero_grad() {
  NPTSN_EXPECT(defined(), "tensor is empty");
  node_->ensure_grad().fill(0.0);
}

double Tensor::item() const {
  NPTSN_EXPECT(value().rows() == 1 && value().cols() == 1, "item() requires a 1x1 tensor");
  return value().at(0, 0);
}

Tensor Tensor::make_op(Matrix value, std::vector<Tensor> inputs,
                       std::function<void(Node&)> backprop) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const Tensor& t : inputs) {
    NPTSN_EXPECT(t.defined(), "op input tensor is empty");
    node->requires_grad = node->requires_grad || t.node_->requires_grad;
    node->parents.push_back(t.node_);
  }
  if (node->requires_grad) node->backprop = std::move(backprop);
  return Tensor(std::move(node));
}

void Tensor::backward() const {
  NPTSN_EXPECT(defined(), "tensor is empty");
  NPTSN_EXPECT(value().rows() == 1 && value().cols() == 1,
               "backward() requires a scalar loss");
  NPTSN_EXPECT(node_->requires_grad, "loss does not depend on any parameter");

  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->ensure_grad().at(0, 0) += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backprop) node->backprop(*node);
  }
}

namespace {

// Adds `delta` into the parent's gradient when the parent participates in
// training (constants skip the work).
void add_grad(Node& parent, const Matrix& delta) {
  if (!parent.requires_grad) return;
  accumulate(parent.ensure_grad(), delta);
}

Node& parent(Node& self, std::size_t i) { return *self.parents[i]; }

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Matrix out = matmul(a.value(), b.value());
  return Tensor::make_op(std::move(out), {a, b}, [](Node& self) {
    Node& pa = parent(self, 0);
    Node& pb = parent(self, 1);
    if (pa.requires_grad) add_grad(pa, matmul_transposed(self.grad, pb.value));
    if (pb.requires_grad) add_grad(pb, matmul_transposed_a(pa.value, self.grad));
  });
}

Tensor add(const Tensor& a, const Tensor& b) {
  return Tensor::make_op(add(a.value(), b.value()), {a, b}, [](Node& self) {
    add_grad(parent(self, 0), self.grad);
    add_grad(parent(self, 1), self.grad);
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return Tensor::make_op(sub(a.value(), b.value()), {a, b}, [](Node& self) {
    add_grad(parent(self, 0), self.grad);
    add_grad(parent(self, 1), scale(self.grad, -1.0));
  });
}

Tensor scale(const Tensor& a, double s) {
  return Tensor::make_op(scale(a.value(), s), {a}, [s](Node& self) {
    add_grad(parent(self, 0), scale(self.grad, s));
  });
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  return Tensor::make_op(hadamard(a.value(), b.value()), {a, b}, [](Node& self) {
    Node& pa = parent(self, 0);
    Node& pb = parent(self, 1);
    if (pa.requires_grad) add_grad(pa, hadamard(self.grad, pb.value));
    if (pb.requires_grad) add_grad(pb, hadamard(self.grad, pa.value));
  });
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& row) {
  return Tensor::make_op(add_row_broadcast(a.value(), row.value()), {a, row}, [](Node& self) {
    add_grad(parent(self, 0), self.grad);
    Node& prow = parent(self, 1);
    if (prow.requires_grad) {
      Matrix col_sums(1, self.grad.cols());
      for (int i = 0; i < self.grad.rows(); ++i) {
        for (int j = 0; j < self.grad.cols(); ++j) {
          col_sums.at(0, j) += self.grad.at(i, j);
        }
      }
      add_grad(prow, col_sums);
    }
  });
}

Tensor relu(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::max(0.0, out.data()[i]);
  return Tensor::make_op(std::move(out), {a}, [](Node& self) {
    Matrix delta = self.grad;
    for (int i = 0; i < delta.size(); ++i) {
      if (self.value.data()[i] <= 0.0) delta.data()[i] = 0.0;
    }
    add_grad(parent(self, 0), delta);
  });
}

Tensor tanh_op(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
  return Tensor::make_op(std::move(out), {a}, [](Node& self) {
    Matrix delta = self.grad;
    for (int i = 0; i < delta.size(); ++i) {
      const double y = self.value.data()[i];
      delta.data()[i] *= (1.0 - y * y);
    }
    add_grad(parent(self, 0), delta);
  });
}

Tensor exp_op(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::exp(out.data()[i]);
  return Tensor::make_op(std::move(out), {a}, [](Node& self) {
    add_grad(parent(self, 0), hadamard(self.grad, self.value));
  });
}

Tensor mean_rows(const Tensor& a) {
  const Matrix& v = a.value();
  NPTSN_EXPECT(v.rows() >= 1, "mean_rows requires at least one row");
  Matrix out(1, v.cols());
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) out.at(0, j) += v.at(i, j);
  }
  const double inv = 1.0 / static_cast<double>(v.rows());
  for (int j = 0; j < v.cols(); ++j) out.at(0, j) *= inv;
  return Tensor::make_op(std::move(out), {a}, [inv](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    Matrix delta(pa.value.rows(), pa.value.cols());
    for (int i = 0; i < delta.rows(); ++i) {
      for (int j = 0; j < delta.cols(); ++j) delta.at(i, j) = self.grad.at(0, j) * inv;
    }
    add_grad(pa, delta);
  });
}

Tensor sum_all(const Tensor& a) {
  Matrix out(1, 1, a.value().sum());
  return Tensor::make_op(std::move(out), {a}, [](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    add_grad(pa, Matrix(pa.value.rows(), pa.value.cols(), self.grad.at(0, 0)));
  });
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  const Matrix& va = a.value();
  const Matrix& vb = b.value();
  NPTSN_EXPECT(va.rows() == vb.rows(), "concat_cols row mismatch");
  Matrix out(va.rows(), va.cols() + vb.cols());
  for (int i = 0; i < va.rows(); ++i) {
    for (int j = 0; j < va.cols(); ++j) out.at(i, j) = va.at(i, j);
    for (int j = 0; j < vb.cols(); ++j) out.at(i, va.cols() + j) = vb.at(i, j);
  }
  const int split = va.cols();
  return Tensor::make_op(std::move(out), {a, b}, [split](Node& self) {
    Node& pa = parent(self, 0);
    Node& pb = parent(self, 1);
    if (pa.requires_grad) {
      Matrix da(self.grad.rows(), split);
      for (int i = 0; i < da.rows(); ++i) {
        for (int j = 0; j < split; ++j) da.at(i, j) = self.grad.at(i, j);
      }
      add_grad(pa, da);
    }
    if (pb.requires_grad) {
      Matrix db(self.grad.rows(), self.grad.cols() - split);
      for (int i = 0; i < db.rows(); ++i) {
        for (int j = 0; j < db.cols(); ++j) db.at(i, j) = self.grad.at(i, split + j);
      }
      add_grad(pb, db);
    }
  });
}

Tensor select(const Tensor& a, int r, int c) {
  Matrix out(1, 1, a.value().at(r, c));
  return Tensor::make_op(std::move(out), {a}, [r, c](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    Matrix delta(pa.value.rows(), pa.value.cols());
    delta.at(r, c) = self.grad.at(0, 0);
    add_grad(pa, delta);
  });
}

Tensor clamp(const Tensor& a, double lo, double hi) {
  NPTSN_EXPECT(lo <= hi, "clamp requires lo <= hi");
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::clamp(out.data()[i], lo, hi);
  return Tensor::make_op(std::move(out), {a}, [lo, hi](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    Matrix delta = self.grad;
    for (int i = 0; i < delta.size(); ++i) {
      const double x = pa.value.data()[i];
      if (x < lo || x > hi) delta.data()[i] = 0.0;
    }
    add_grad(pa, delta);
  });
}

Tensor min2(const Tensor& a, const Tensor& b) {
  NPTSN_EXPECT(a.value().same_shape(b.value()), "min2 shape mismatch");
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::min(out.data()[i], b.value().data()[i]);
  return Tensor::make_op(std::move(out), {a, b}, [](Node& self) {
    Node& pa = parent(self, 0);
    Node& pb = parent(self, 1);
    Matrix da(self.grad.rows(), self.grad.cols());
    Matrix db(self.grad.rows(), self.grad.cols());
    for (int i = 0; i < self.grad.size(); ++i) {
      if (pa.value.data()[i] <= pb.value.data()[i]) {
        da.data()[i] = self.grad.data()[i];
      } else {
        db.data()[i] = self.grad.data()[i];
      }
    }
    if (pa.requires_grad) add_grad(pa, da);
    if (pb.requires_grad) add_grad(pb, db);
  });
}

Tensor average(const std::vector<Tensor>& items) {
  NPTSN_EXPECT(!items.empty(), "average of zero tensors");
  Matrix out = items.front().value();
  for (std::size_t i = 1; i < items.size(); ++i) {
    NPTSN_EXPECT(items[i].value().same_shape(out), "average shape mismatch");
    accumulate(out, items[i].value());
  }
  const double inv = 1.0 / static_cast<double>(items.size());
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= inv;
  return Tensor::make_op(std::move(out), items, [inv](Node& self) {
    const Matrix delta = scale(self.grad, inv);
    for (std::size_t i = 0; i < self.parents.size(); ++i) add_grad(*self.parents[i], delta);
  });
}

Tensor masked_log_softmax_row(const Tensor& logits, const std::vector<std::uint8_t>& mask) {
  const Matrix& x = logits.value();
  NPTSN_EXPECT(x.rows() == 1, "masked_log_softmax_row expects a 1 x A row");
  NPTSN_EXPECT(static_cast<int>(mask.size()) == x.cols(), "mask size mismatch");

  // Stable masked log-softmax.
  double max_logit = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (int j = 0; j < x.cols(); ++j) {
    if (mask[static_cast<std::size_t>(j)]) {
      max_logit = std::max(max_logit, x.at(0, j));
      any = true;
    }
  }
  NPTSN_EXPECT(any, "all actions are masked");
  double denom = 0.0;
  for (int j = 0; j < x.cols(); ++j) {
    if (mask[static_cast<std::size_t>(j)]) denom += std::exp(x.at(0, j) - max_logit);
  }
  const double log_denom = std::log(denom) + max_logit;

  constexpr double kMaskedLogProb = -1e30;
  Matrix out(1, x.cols());
  for (int j = 0; j < x.cols(); ++j) {
    out.at(0, j) = mask[static_cast<std::size_t>(j)] ? x.at(0, j) - log_denom : kMaskedLogProb;
  }
  const std::vector<std::uint8_t> mask_copy = mask;
  return Tensor::make_op(std::move(out), {logits}, [mask_copy](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    // d logp_j / d x_i = delta_ij - p_i (over unmasked entries).
    double grad_sum = 0.0;
    for (int j = 0; j < self.grad.cols(); ++j) {
      if (mask_copy[static_cast<std::size_t>(j)]) grad_sum += self.grad.at(0, j);
    }
    Matrix delta(1, self.grad.cols());
    for (int i = 0; i < delta.cols(); ++i) {
      if (!mask_copy[static_cast<std::size_t>(i)]) continue;
      const double p_i = std::exp(self.value.at(0, i));
      delta.at(0, i) = self.grad.at(0, i) - p_i * grad_sum;
    }
    add_grad(pa, delta);
  });
}

Tensor transpose_op(const Tensor& a) {
  return Tensor::make_op(transpose(a.value()), {a}, [](Node& self) {
    add_grad(parent(self, 0), transpose(self.grad));
  });
}

namespace {

// Incoming gradient gated through the fused activation's derivative,
// evaluated at the op's OUTPUT (same gating as the standalone relu/tanh
// ops: relu zeroes where the output is <= 0, tanh scales by 1 - y^2).
Matrix epilogue_delta(const Matrix& grad, const Matrix& out, Epilogue act) {
  if (act == Epilogue::kNone) return grad;
  Matrix delta = grad;
  if (act == Epilogue::kRelu) {
    for (int i = 0; i < delta.size(); ++i) {
      if (out.data()[i] <= 0.0) delta.data()[i] = 0.0;
    }
  } else {
    for (int i = 0; i < delta.size(); ++i) {
      const double y = out.data()[i];
      delta.data()[i] *= (1.0 - y * y);
    }
  }
  return delta;
}

// Column sums of grad accumulated directly into a 1 x C parent gradient.
void add_grad_col_sums(Node& parent_node, const Matrix& grad) {
  if (!parent_node.requires_grad) return;
  Matrix& g = parent_node.ensure_grad();
  for (int i = 0; i < grad.rows(); ++i) {
    for (int j = 0; j < grad.cols(); ++j) g.at(0, j) += grad.at(i, j);
  }
}

}  // namespace

Tensor affine_act(const Tensor& x, const Tensor& w, const Tensor& bias, Epilogue act) {
  Matrix out = affine(x.value(), w.value(), &bias.value(), act);
  return Tensor::make_op(std::move(out), {x, w, bias}, [act](Node& self) {
    Node& px = parent(self, 0);
    Node& pw = parent(self, 1);
    Node& pb = parent(self, 2);
    const Matrix delta = epilogue_delta(self.grad, self.value, act);
    if (px.requires_grad) add_grad(px, matmul_transposed(delta, pw.value));
    if (pw.requires_grad) add_grad(pw, matmul_transposed_a(px.value, delta));
    add_grad_col_sums(pb, delta);
  });
}

Tensor matmul_act(const Tensor& a, const Tensor& b, Epilogue act) {
  Matrix out = matmul_epilogue(a.value(), b.value(), act);
  return Tensor::make_op(std::move(out), {a, b}, [act](Node& self) {
    Node& pa = parent(self, 0);
    Node& pb = parent(self, 1);
    const Matrix delta = epilogue_delta(self.grad, self.value, act);
    if (pa.requires_grad) add_grad(pa, matmul_transposed(delta, pb.value));
    if (pb.requires_grad) add_grad(pb, matmul_transposed_a(pa.value, delta));
  });
}

Tensor block_matmul_relu(std::shared_ptr<const BlockAdjacency> a_hats,
                         const Tensor& h) {
  NPTSN_EXPECT(a_hats != nullptr, "block_matmul_relu needs adjacencies");
  // Forward and backward both run on the stacked matrix in place — the
  // block-diagonal kernels address each graph's row block directly instead
  // of copying it out, multiplying, and pasting the product back.
  Matrix out = block_diag_matmul(*a_hats, h.value(), Epilogue::kRelu);
  return Tensor::make_op(std::move(out), {h}, [a_hats](Node& self) {
    Node& ph = parent(self, 0);
    if (!ph.requires_grad) return;
    const Matrix delta = epilogue_delta(self.grad, self.value, Epilogue::kRelu);
    add_grad(ph, block_diag_matmul_tn(*a_hats, delta));
  });
}

Tensor block_gcn_fused(std::shared_ptr<const BlockAdjacency> a_hats,
                       const Tensor& h, const Tensor& w, const Tensor& bias) {
  NPTSN_EXPECT(a_hats != nullptr, "block_gcn_fused needs adjacencies");
  Matrix out = block_diag_gcn(*a_hats, h.value(), w.value(), bias.value());
  return Tensor::make_op(std::move(out), {h, w, bias}, [a_hats](Node& self) {
    Node& ph = parent(self, 0);
    Node& pw = parent(self, 1);
    Node& pb = parent(self, 2);
    // Same chain the unfused affine + propagation pair walks: relu mask,
    // back through the adjacency blocks, then the affine gradients.
    const Matrix delta_out = epilogue_delta(self.grad, self.value, Epilogue::kRelu);
    const Matrix delta_z = block_diag_matmul_tn(*a_hats, delta_out);
    if (ph.requires_grad) add_grad(ph, matmul_transposed(delta_z, pw.value));
    if (pw.requires_grad) add_grad(pw, matmul_transposed_a(ph.value, delta_z));
    add_grad_col_sums(pb, delta_z);
  });
}

Tensor mean_rows_blocks(const Tensor& a, int block_rows) {
  const Matrix& v = a.value();
  NPTSN_EXPECT(block_rows >= 1, "mean_rows_blocks needs positive block size");
  NPTSN_EXPECT(v.rows() % block_rows == 0, "rows are not a whole number of blocks");
  const int blocks = v.rows() / block_rows;
  const double inv = 1.0 / static_cast<double>(block_rows);
  const int cols = v.cols();
  Matrix out(blocks, cols);
  // Raw-pointer loops: .at() bounds checks stay on in release builds and
  // this readout runs once per batched forward over the whole stacked
  // matrix. Summation order (ascending i per column) is unchanged.
  for (int g = 0; g < blocks; ++g) {
    double* orow = out.data() + static_cast<std::size_t>(g) * cols;
    for (int i = 0; i < block_rows; ++i) {
      const double* vrow =
          v.data() + (static_cast<std::size_t>(g) * block_rows + i) * cols;
      for (int j = 0; j < cols; ++j) orow[j] += vrow[j];
    }
    for (int j = 0; j < cols; ++j) orow[j] *= inv;
  }
  return Tensor::make_op(std::move(out), {a}, [block_rows, inv](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    const int cols = pa.value.cols();
    Matrix delta(pa.value.rows(), pa.value.cols());
    for (int i = 0; i < delta.rows(); ++i) {
      const double* grow =
          self.grad.data() + static_cast<std::size_t>(i / block_rows) * cols;
      double* drow = delta.data() + static_cast<std::size_t>(i) * cols;
      for (int j = 0; j < cols; ++j) drow[j] = grow[j] * inv;
    }
    add_grad(pa, delta);
  });
}

Tensor select_row(const Tensor& a, int r) {
  const Matrix& v = a.value();
  NPTSN_EXPECT(r >= 0 && r < v.rows(), "select_row index out of range");
  Matrix out(1, v.cols());
  for (int j = 0; j < v.cols(); ++j) out.at(0, j) = v.at(r, j);
  return Tensor::make_op(std::move(out), {a}, [r](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    // Accumulate straight into row r — no full-size scratch matrix, so
    // selecting all B rows of a batch costs O(B x C), not O(B^2 x C).
    Matrix& g = pa.ensure_grad();
    for (int j = 0; j < self.grad.cols(); ++j) g.at(r, j) += self.grad.at(0, j);
  });
}

Tensor stack_rows(const std::vector<Tensor>& rows) {
  NPTSN_EXPECT(!rows.empty(), "stack_rows of zero tensors");
  const int cols = rows.front().value().cols();
  Matrix out(static_cast<int>(rows.size()), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Matrix& v = rows[i].value();
    NPTSN_EXPECT(v.rows() == 1 && v.cols() == cols, "stack_rows shape mismatch");
    for (int j = 0; j < cols; ++j) out.at(static_cast<int>(i), j) = v.at(0, j);
  }
  return Tensor::make_op(std::move(out), rows, [](Node& self) {
    for (std::size_t i = 0; i < self.parents.size(); ++i) {
      Node& p = *self.parents[i];
      if (!p.requires_grad) continue;
      Matrix& g = p.ensure_grad();
      for (int j = 0; j < self.grad.cols(); ++j) {
        g.at(0, j) += self.grad.at(static_cast<int>(i), j);
      }
    }
  });
}

Tensor leaky_relu(const Tensor& a, double negative_slope) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] *= negative_slope;
  }
  return Tensor::make_op(std::move(out), {a}, [negative_slope](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    Matrix delta = self.grad;
    for (int i = 0; i < delta.size(); ++i) {
      if (pa.value.data()[i] < 0.0) delta.data()[i] *= negative_slope;
    }
    add_grad(pa, delta);
  });
}

Tensor masked_softmax_rows(const Tensor& scores, const Matrix& mask) {
  const Matrix& x = scores.value();
  NPTSN_EXPECT(x.same_shape(mask), "scores/mask shape mismatch");
  Matrix out(x.rows(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    double max_score = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask.at(i, j) != 0.0) {
        max_score = std::max(max_score, x.at(i, j));
        any = true;
      }
    }
    NPTSN_EXPECT(any, "masked_softmax_rows: fully masked row " + std::to_string(i));
    double denom = 0.0;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask.at(i, j) != 0.0) {
        out.at(i, j) = std::exp(x.at(i, j) - max_score);
        denom += out.at(i, j);
      }
    }
    for (int j = 0; j < x.cols(); ++j) out.at(i, j) /= denom;
  }
  const Matrix mask_copy = mask;
  return Tensor::make_op(std::move(out), {scores}, [mask_copy](Node& self) {
    Node& pa = parent(self, 0);
    if (!pa.requires_grad) return;
    // Per row: d y_j / d x_i = y_j (delta_ij - y_i) over unmasked entries.
    Matrix delta(self.value.rows(), self.value.cols());
    for (int r = 0; r < self.value.rows(); ++r) {
      double dot = 0.0;
      for (int j = 0; j < self.value.cols(); ++j) {
        if (mask_copy.at(r, j) != 0.0) dot += self.grad.at(r, j) * self.value.at(r, j);
      }
      for (int i = 0; i < self.value.cols(); ++i) {
        if (mask_copy.at(r, i) == 0.0) continue;
        delta.at(r, i) = self.value.at(r, i) * (self.grad.at(r, i) - dot);
      }
    }
    add_grad(pa, delta);
  });
}

std::pair<bool, double> find_non_finite_value(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    const Matrix& m = p.value();
    for (int i = 0; i < m.size(); ++i) {
      const double x = m.data()[i];
      if (!std::isfinite(x)) return {true, x};
    }
  }
  return {false, 0.0};
}

GradientScan scan_gradients(const std::vector<Tensor>& params) {
  GradientScan scan;
  for (const Tensor& p : params) {
    // grad() is the raw (possibly never-allocated, hence empty) gradient
    // matrix; an empty gradient contributes zero to the norm.
    const Matrix& g = p.grad();
    for (int i = 0; i < g.size(); ++i) {
      const double x = g.data()[i];
      if (!std::isfinite(x)) {
        scan.non_finite = true;
        scan.bad_value = x;
        return scan;
      }
      scan.squared_norm += x * x;
    }
  }
  return scan;
}

}  // namespace nptsn
