// Path queries over Graph: Dijkstra shortest path, BFS hop distance,
// connectivity, and greedy node-disjoint path extraction (TRH baseline).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace nptsn {

// A path is the node sequence [source, ..., destination].
using Path = std::vector<NodeId>;

// Sum of edge lengths along a path; throws if an edge is missing.
double path_length(const Graph& g, const Path& path);

// Optional transit filter: nodes marked 0 may appear in a path only as an
// endpoint (used to stop flows from being relayed through end stations).
using TransitFilter = std::vector<char>;

// Dijkstra by edge length with deterministic (smallest-id) tie-breaking.
// Returns std::nullopt when t is unreachable or either endpoint is inactive.
std::optional<Path> shortest_path(const Graph& g, NodeId s, NodeId t,
                                  const TransitFilter* can_transit = nullptr);

// Unweighted BFS distance in hops; -1 if unreachable.
int hop_distance(const Graph& g, NodeId s, NodeId t);

bool connected(const Graph& g, NodeId s, NodeId t);

// Extracts up to k paths from s to t that share no intermediate node, by
// repeated BFS + removal (the breadth-first strategy of the TRH topology
// synthesis heuristic, ref [4] of the paper). Endpoints may be shared.
std::vector<Path> disjoint_paths(const Graph& g, NodeId s, NodeId t, int k,
                                 const TransitFilter* can_transit = nullptr);

}  // namespace nptsn
