// Undirected weighted graph over a fixed vertex set.
//
// This is the common substrate for the connection graph Gc, the planned
// topology Gt, failure scenarios Gf (as node/edge removals), and the residual
// networks the recovery NBF routes on. Vertices are dense ids [0, n); a
// removed vertex stays allocated but inactive so that ids remain stable
// across subgraph operations — the RL observation encoding depends on ids
// being positionally stable.
//
// Neighbor sets are ordered (std::map) so every traversal is deterministic;
// reproducible tie-breaking in Dijkstra/Yen is required for seeded runs.
#pragma once

#include <map>
#include <vector>

#include "util/expect.hpp"

namespace nptsn {

using NodeId = int;

struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double length = 1.0;
};

// Normalized (u < v) undirected edge identity, usable as a map key.
struct EdgeKey {
  NodeId a;
  NodeId b;

  EdgeKey(NodeId u, NodeId v) : a(u < v ? u : v), b(u < v ? v : u) {}
  friend auto operator<=>(const EdgeKey&, const EdgeKey&) = default;
};

class Graph {
 public:
  explicit Graph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  bool is_active(NodeId v) const;
  // Deactivates v and removes all incident edges.
  void remove_node(NodeId v);

  void add_edge(NodeId u, NodeId v, double length = 1.0);
  void remove_edge(NodeId u, NodeId v);
  bool has_edge(NodeId u, NodeId v) const;
  // Length of an existing edge; throws if absent.
  double length(NodeId u, NodeId v) const;

  int degree(NodeId v) const;
  // Ordered (neighbor -> length) view; empty for inactive nodes.
  const std::map<NodeId, double>& neighbors(NodeId v) const;

  // All edges with u < v, in (u, v) lexicographic order.
  std::vector<Edge> edges() const;

  void check_node(NodeId v) const;

 private:
  std::vector<std::map<NodeId, double>> adjacency_;
  std::vector<bool> active_;
  int num_edges_ = 0;
};

}  // namespace nptsn
