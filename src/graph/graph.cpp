#include "graph/graph.hpp"

#include <string>

namespace nptsn {

Graph::Graph(int num_nodes)
    : adjacency_(static_cast<std::size_t>(num_nodes)),
      active_(static_cast<std::size_t>(num_nodes), true) {
  NPTSN_EXPECT(num_nodes >= 0, "graph size must be non-negative");
}

void Graph::check_node(NodeId v) const {
  NPTSN_EXPECT(v >= 0 && v < num_nodes(), "node id out of range: " + std::to_string(v));
}

bool Graph::is_active(NodeId v) const {
  check_node(v);
  return active_[static_cast<std::size_t>(v)];
}

void Graph::remove_node(NodeId v) {
  check_node(v);
  if (!active_[static_cast<std::size_t>(v)]) return;
  // Detach from all neighbors first.
  for (const auto& [nb, len] : adjacency_[static_cast<std::size_t>(v)]) {
    (void)len;
    adjacency_[static_cast<std::size_t>(nb)].erase(v);
    --num_edges_;
  }
  adjacency_[static_cast<std::size_t>(v)].clear();
  active_[static_cast<std::size_t>(v)] = false;
}

void Graph::add_edge(NodeId u, NodeId v, double length) {
  check_node(u);
  check_node(v);
  NPTSN_EXPECT(u != v, "self loops are not allowed");
  NPTSN_EXPECT(is_active(u) && is_active(v), "cannot connect inactive nodes");
  NPTSN_EXPECT(length > 0.0, "edge length must be positive");
  if (has_edge(u, v)) return;  // idempotent: keep the original length
  adjacency_[static_cast<std::size_t>(u)].emplace(v, length);
  adjacency_[static_cast<std::size_t>(v)].emplace(u, length);
  ++num_edges_;
}

void Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  const auto erased = adjacency_[static_cast<std::size_t>(u)].erase(v);
  adjacency_[static_cast<std::size_t>(v)].erase(u);
  if (erased > 0) --num_edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return adjacency_[static_cast<std::size_t>(u)].contains(v);
}

double Graph::length(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& nbs = adjacency_[static_cast<std::size_t>(u)];
  const auto it = nbs.find(v);
  NPTSN_EXPECT(it != nbs.end(), "edge does not exist");
  return it->second;
}

int Graph::degree(NodeId v) const {
  check_node(v);
  return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

const std::map<NodeId, double>& Graph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[static_cast<std::size_t>(v)];
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(static_cast<std::size_t>(num_edges_));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, len] : adjacency_[static_cast<std::size_t>(u)]) {
      if (u < v) result.push_back({u, v, len});
    }
  }
  return result;
}

}  // namespace nptsn
