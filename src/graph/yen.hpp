// Yen's K shortest loopless paths (Yen, Management Science 1971) — the path
// generator used by the Survival-Oriented Action Generator (Alg. 1 line 5).
#pragma once

#include <vector>

#include "graph/paths.hpp"

namespace nptsn {

// Returns up to k loopless paths from s to t ordered by increasing length
// (ties broken lexicographically by node sequence, deterministically).
// Fewer than k paths are returned when the graph does not contain them.
// can_transit has shortest_path() semantics (nullptr = all nodes relay).
std::vector<Path> k_shortest_paths(const Graph& g, NodeId s, NodeId t, int k,
                                   const TransitFilter* can_transit = nullptr);

}  // namespace nptsn
