#include "graph/yen.hpp"

#include <algorithm>
#include <set>

namespace nptsn {
namespace {

// Candidate ordering: by length, then by node sequence for determinism.
struct Candidate {
  double length;
  Path path;

  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.path < b.path;
  }
};

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId s, NodeId t, int k,
                                   const TransitFilter* can_transit) {
  NPTSN_EXPECT(k >= 0, "k must be non-negative");
  std::vector<Path> accepted;
  if (k == 0) return accepted;

  const auto first = shortest_path(g, s, t, can_transit);
  if (!first) return accepted;
  accepted.push_back(*first);

  std::set<Candidate> candidates;
  std::set<Path> known;  // accepted ∪ candidates, to avoid duplicates
  known.insert(*first);

  while (static_cast<int>(accepted.size()) < k) {
    const Path& prev = accepted.back();
    // Each node of the previous accepted path (except the destination) is a
    // spur node; the prefix up to it is the root path.
    for (std::size_t spur_idx = 0; spur_idx + 1 < prev.size(); ++spur_idx) {
      const NodeId spur = prev[spur_idx];
      const Path root(prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(spur_idx) + 1);

      Graph work = g;
      // Remove edges that would recreate an already-known path sharing this
      // root prefix.
      for (const Path& p : accepted) {
        if (p.size() > spur_idx + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          work.remove_edge(p[spur_idx], p[spur_idx + 1]);
        }
      }
      // Remove root nodes (except the spur itself) to keep paths loopless.
      for (std::size_t i = 0; i + 1 <= spur_idx; ++i) work.remove_node(root[i]);

      // A spur from a non-transit node would relay through it, so skip it
      // unless it is the path's source.
      if (spur_idx > 0 && can_transit != nullptr &&
          !(*can_transit)[static_cast<std::size_t>(spur)]) {
        continue;
      }
      const auto spur_path = shortest_path(work, spur, t, can_transit);
      if (!spur_path) continue;

      Path total = root;
      total.insert(total.end(), spur_path->begin() + 1, spur_path->end());
      if (known.contains(total)) continue;
      known.insert(total);
      candidates.insert({path_length(g, total), std::move(total)});
    }

    if (candidates.empty()) break;
    accepted.push_back(candidates.begin()->path);
    candidates.erase(candidates.begin());
  }
  return accepted;
}

}  // namespace nptsn
