#include "graph/paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace nptsn {

double path_length(const Graph& g, const Path& path) {
  NPTSN_EXPECT(!path.empty(), "path must be non-empty");
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += g.length(path[i], path[i + 1]);
  }
  return total;
}

std::optional<Path> shortest_path(const Graph& g, NodeId s, NodeId t,
                                  const TransitFilter* can_transit) {
  g.check_node(s);
  g.check_node(t);
  NPTSN_EXPECT(can_transit == nullptr ||
                   can_transit->size() == static_cast<std::size_t>(g.num_nodes()),
               "transit filter size must match the graph");
  if (!g.is_active(s) || !g.is_active(t)) return std::nullopt;
  if (s == t) return Path{s};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> prev(n, -1);
  // (distance, node): the node id participates in ordering, so ties are
  // broken deterministically toward lower ids.
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(s)] = 0.0;
  heap.emplace(0.0, s);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == t) break;
    // A non-transit node may terminate a path but never relay one.
    if (u != s && can_transit != nullptr && !(*can_transit)[static_cast<std::size_t>(u)]) {
      continue;
    }
    for (const auto& [v, len] : g.neighbors(u)) {
      const double nd = d + len;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        prev[static_cast<std::size_t>(v)] = u;
        heap.emplace(nd, v);
      }
    }
  }

  if (dist[static_cast<std::size_t>(t)] == kInf) return std::nullopt;
  Path path;
  for (NodeId v = t; v != -1; v = prev[static_cast<std::size_t>(v)]) path.push_back(v);
  std::ranges::reverse(path);
  return path;
}

int hop_distance(const Graph& g, NodeId s, NodeId t) {
  g.check_node(s);
  g.check_node(t);
  if (!g.is_active(s) || !g.is_active(t)) return -1;
  if (s == t) return 0;
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> queue;
  dist[static_cast<std::size_t>(s)] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const auto& [v, len] : g.neighbors(u)) {
      (void)len;
      if (dist[static_cast<std::size_t>(v)] == -1) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        if (v == t) return dist[static_cast<std::size_t>(v)];
        queue.push(v);
      }
    }
  }
  return -1;
}

bool connected(const Graph& g, NodeId s, NodeId t) { return hop_distance(g, s, t) >= 0; }

std::vector<Path> disjoint_paths(const Graph& g, NodeId s, NodeId t, int k,
                                 const TransitFilter* can_transit) {
  NPTSN_EXPECT(k >= 0, "k must be non-negative");
  std::vector<Path> result;
  Graph residual = g;
  for (int i = 0; i < k; ++i) {
    const auto path = shortest_path(residual, s, t, can_transit);
    if (!path) break;
    result.push_back(*path);
    // Remove intermediate nodes so later paths cannot reuse them.
    for (std::size_t j = 1; j + 1 < path->size(); ++j) {
      residual.remove_node((*path)[j]);
    }
    // Guard the degenerate single-edge path: remove the direct edge instead.
    if (path->size() == 2) residual.remove_edge(s, t);
  }
  return result;
}

}  // namespace nptsn
