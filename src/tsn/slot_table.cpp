#include "tsn/slot_table.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace nptsn {

SlotTable::SlotTable(int slots_per_base) : slots_(slots_per_base) {
  NPTSN_EXPECT(slots_per_base >= 1, "need at least one slot per base period");
}

void SlotTable::check_slot(int slot) const {
  NPTSN_EXPECT(slot >= 0 && slot < slots_, "slot index out of range");
}

std::vector<bool>& SlotTable::row(NodeId from, NodeId to) {
  auto [it, inserted] = table_.try_emplace({from, to});
  if (inserted) it->second.assign(static_cast<std::size_t>(slots_), false);
  return it->second;
}

bool SlotTable::is_free(NodeId from, NodeId to, int slot, int repetitions, int stride) const {
  check_slot(slot);
  NPTSN_EXPECT(repetitions >= 1, "repetitions must be >= 1");
  const auto it = table_.find({from, to});
  if (it == table_.end()) return true;
  for (int k = 0; k < repetitions; ++k) {
    const int s = (slot + k * stride) % slots_;
    if (it->second[static_cast<std::size_t>(s)]) return false;
  }
  return true;
}

void SlotTable::reserve(NodeId from, NodeId to, int slot, int repetitions, int stride) {
  NPTSN_EXPECT(is_free(from, to, slot, repetitions, stride), "slot already reserved");
  auto& bits = row(from, to);
  for (int k = 0; k < repetitions; ++k) {
    bits[static_cast<std::size_t>((slot + k * stride) % slots_)] = true;
  }
}

void SlotTable::release(NodeId from, NodeId to, int slot, int repetitions, int stride) {
  check_slot(slot);
  auto& bits = row(from, to);
  for (int k = 0; k < repetitions; ++k) {
    const auto s = static_cast<std::size_t>((slot + k * stride) % slots_);
    NPTSN_EXPECT(bits[s], "releasing a slot that was not reserved");
    bits[s] = false;
  }
}

int SlotTable::occupancy(NodeId from, NodeId to) const {
  const auto it = table_.find({from, to});
  if (it == table_.end()) return 0;
  return static_cast<int>(std::ranges::count(it->second, true));
}

}  // namespace nptsn
