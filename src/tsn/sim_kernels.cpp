#include "tsn/sim_kernels.hpp"

#include <atomic>
#include <bit>

namespace nptsn {

namespace {
std::atomic<TsnKernel> g_tsn_kernel{TsnKernel::kFast};
}  // namespace

void set_tsn_kernel(TsnKernel kernel) {
  g_tsn_kernel.store(kernel, std::memory_order_relaxed);
}

TsnKernel tsn_kernel() { return g_tsn_kernel.load(std::memory_order_relaxed); }

namespace tsk {

bool reach_reference(const std::uint64_t* const* rows, int words,
                     const std::uint64_t* alive, const std::uint64_t* transit,
                     int src, int dst, std::uint64_t* visited,
                     std::uint64_t* frontier, std::uint64_t* next) {
  if (src == dst) return true;
  const int n = words * kWordBits;
  for (int w = 0; w < words; ++w) visited[w] = frontier[w] = 0;
  set_bit(visited, src);
  set_bit(frontier, src);
  while (true) {
    for (int w = 0; w < words; ++w) next[w] = 0;
    for (int u = 0; u < n; ++u) {
      if (!test_bit(frontier, u)) continue;
      if (u != src && !test_bit(transit, u)) continue;
      for (int v = 0; v < n; ++v) {
        if (!test_bit(rows[u], v)) continue;
        if (!test_bit(alive, v) || test_bit(visited, v)) continue;
        set_bit(next, v);
      }
    }
    bool any = false;
    for (int w = 0; w < words; ++w) {
      visited[w] |= next[w];
      if (next[w] != 0) any = true;
    }
    if (test_bit(visited, dst)) return true;
    if (!any) return false;
    for (int w = 0; w < words; ++w) frontier[w] = next[w];
  }
}

bool reach_fast(const std::uint64_t* const* rows, int words,
                const std::uint64_t* alive, const std::uint64_t* transit,
                int src, int dst, std::uint64_t* visited, std::uint64_t* frontier,
                std::uint64_t* next) {
  if (src == dst) return true;
  for (int w = 0; w < words; ++w) visited[w] = frontier[w] = 0;
  set_bit(visited, src);
  set_bit(frontier, src);
  while (true) {
    for (int w = 0; w < words; ++w) next[w] = 0;
    for (int w = 0; w < words; ++w) {
      // Expand only src and transit-capable frontier nodes, word-OR'ing
      // whole adjacency rows at a time.
      std::uint64_t bits = frontier[w] & transit[w];
      if (w == src / kWordBits) bits |= frontier[w] & (std::uint64_t{1} << (src % kWordBits));
      while (bits != 0) {
        const int u = w * kWordBits + std::countr_zero(bits);
        bits &= bits - 1;
        const std::uint64_t* row = rows[u];
        for (int x = 0; x < words; ++x) next[x] |= row[x];
      }
    }
    bool any = false;
    for (int w = 0; w < words; ++w) {
      next[w] &= alive[w] & ~visited[w];
      visited[w] |= next[w];
      if (next[w] != 0) any = true;
    }
    if (test_bit(visited, dst)) return true;
    if (!any) return false;
    for (int w = 0; w < words; ++w) frontier[w] = next[w];
  }
}

std::uint64_t fold_occupancy_reference(std::uint64_t row, int stride, int repetitions) {
  std::uint64_t fold = 0;
  for (int s = 0; s < stride; ++s) {
    for (int k = 0; k < repetitions; ++k) {
      if ((row >> (s + k * stride)) & 1u) {
        fold |= std::uint64_t{1} << s;
        break;
      }
    }
  }
  return fold;
}

std::uint64_t fold_occupancy_fast(std::uint64_t row, int stride, int repetitions) {
  std::uint64_t fold = 0;
  for (int k = 0; k < repetitions; ++k) fold |= row >> (k * stride);
  return fold & low_mask(stride);
}

int nowait_start_reference(const std::uint64_t* folds, int hops, int deadline_slots) {
  for (int start = 0; start + hops <= deadline_slots; ++start) {
    bool free = true;
    for (int i = 0; i < hops && free; ++i) {
      free = ((folds[i] >> (start + i)) & 1u) == 0;
    }
    if (free) return start;
  }
  return -1;
}

int nowait_start_fast(const std::uint64_t* folds, int hops, int deadline_slots) {
  if (hops > deadline_slots) return -1;
  std::uint64_t blocked = 0;
  for (int i = 0; i < hops; ++i) blocked |= folds[i] >> i;
  const std::uint64_t candidates = ~blocked & low_mask(deadline_slots - hops + 1);
  if (candidates == 0) return -1;
  return std::countr_zero(candidates);
}

int earliest_free_reference(std::uint64_t fold, int from, int deadline_slots) {
  for (int s = from; s < deadline_slots; ++s) {
    if (((fold >> s) & 1u) == 0) return s;
  }
  return -1;
}

int earliest_free_fast(std::uint64_t fold, int from, int deadline_slots) {
  if (from >= deadline_slots) return -1;
  const std::uint64_t avail = ~fold & low_mask(deadline_slots) & ~low_mask(from);
  if (avail == 0) return -1;
  return std::countr_zero(avail);
}

}  // namespace tsk

}  // namespace nptsn
