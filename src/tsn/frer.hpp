// Frame Replication and Elimination for Reliability (IEEE 802.1CB) static
// scheduling, used by the TRH baseline: every flow is replicated over a set
// of pre-planned disjoint paths and all replicas are scheduled together on
// the static topology. There is no run-time recovery; reliability comes
// from the ASIL-decomposed redundant paths.
#pragma once

#include <vector>

#include "net/problem.hpp"
#include "tsn/scheduler.hpp"

namespace nptsn {

// The redundant paths assigned to one flow (same order as problem.flows).
using FrerPlan = std::vector<std::vector<Path>>;

struct FrerScheduleResult {
  // One assignment per replica per flow; empty when !schedulable.
  std::vector<std::vector<FlowAssignment>> assignments;
  bool schedulable = false;
  // Index of the first flow that failed (-1 when schedulable).
  int first_failed_flow = -1;
};

// Greedily schedules every replica of every flow. All replicas of all flows
// must fit simultaneously — TRH checks schedulability only after topology
// synthesis (Section VI-A), which is why it degrades with load.
FrerScheduleResult schedule_frer(const PlanningProblem& problem, const FrerPlan& plan);

}  // namespace nptsn
