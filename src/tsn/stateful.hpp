// Stateful recovery mechanisms and their statelessization (Section II-B).
//
// The general NBF is stateful:
//     Φs : Gt, Gf, B, FS, FI  ->  FI', ER
// — recovery starts from the CURRENT flow state FI and typically only
// re-schedules the flows the failure disrupted (cheaper at run time, e.g.
// refs [7], [9] of the paper). Verifying a stateful NBF under multi-point
// consecutive failures is exponential in the failure order (n! orderings),
// so NPTSN requires statelessness. The paper's fix, reproduced here: derive
// a stateless NBF by always recovering from the initial flow state FI0,
//     Φ(Gt, Gf, B, FS) = Φs(Gt, Gf, B, FS, FI0(Gt)).
// Single-point failures behave identically; multi-point failures may
// reconfigure more flows than a truly incremental controller would.
#pragma once

#include "tsn/recovery.hpp"

namespace nptsn {

class StatefulNbf {
 public:
  virtual ~StatefulNbf() = default;

  // Re-establishes the problem's flows on Gt minus the failed components,
  // starting from the pre-failure flow state `current`. Must be
  // deterministic in (topology, scenario, current).
  virtual NbfResult recover(const Topology& topology, const FailureScenario& scenario,
                            const FlowState& current) const = 0;

  // FI0: the initial flow state on the intact topology (offline schedule).
  virtual NbfResult initial_state(const Topology& topology) const = 0;
};

// Incremental run-time recovery in the style of ref [9]: flows whose path
// is untouched by the failure keep their assignment (and their slots);
// disrupted flows are re-routed over the residual network and greedily
// re-scheduled around the surviving reservations.
class IncrementalRecovery final : public StatefulNbf {
 public:
  explicit IncrementalRecovery(int path_candidates = 3,
                               TtDiscipline discipline = TtDiscipline::kNoWait);

  NbfResult recover(const Topology& topology, const FailureScenario& scenario,
                    const FlowState& current) const override;
  NbfResult initial_state(const Topology& topology) const override;

  int path_candidates() const { return path_candidates_; }

 private:
  int path_candidates_;
  TtDiscipline discipline_;
};

// The paper's statelessization: wraps any StatefulNbf into a StatelessNbf by
// recovering from FI0 every time. The wrapped mechanism must outlive the
// adapter.
class StatelessAdapter final : public StatelessNbf {
 public:
  explicit StatelessAdapter(const StatefulNbf& inner) : inner_(&inner) {}

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override;

 private:
  const StatefulNbf* inner_;
};

// True when `assignment` uses no failed component (its links all exist in
// the residual graph).
bool assignment_survives(const FlowAssignment& assignment, const Graph& residual);

}  // namespace nptsn
