// The stateless Network Behavior Function (NBF) abstraction and the default
// heuristic run-time recovery mechanism.
//
// Paper, Section II-B: the stateless NBF is
//     Φ : Gt, Gf, B, FS  ->  FI', ER
// i.e. the flow state after recovery depends only on the topology and the
// failure scenario, never on the pre-failure flow state. ER is the set of
// (source, destination) end-station pairs whose bandwidth/timing guarantee
// could not be re-established; ER = ∅ means the recovery succeeded. For an
// empty failure the result is the initial flow state FI0.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "tsn/scheduler.hpp"

namespace nptsn {

// Sorted, deduplicated list of unrecovered (source, destination) pairs.
using ErrorSet = std::vector<std::pair<NodeId, NodeId>>;

struct NbfResult {
  FlowState state;  // FI'
  ErrorSet errors;  // ER

  bool ok() const { return errors.empty(); }
};

// A staged NBF session: per-topology precomputation (packed adjacency, CSR,
// flow timings, slot-table layout) done once so that repeated recover()
// calls skip the per-call Graph copy and std::map walks of the generic
// path. Sessions are BIT-identical to the staging NBF's
// recover(topology, scenario) — same flow states, same errors, same throws
// on malformed scenarios — and safe to call concurrently from multiple
// threads (each call draws a private scratch from an internal pool). The
// staged topology must outlive the session and must not be mutated while
// the session is alive.
class NbfSession {
 public:
  virtual ~NbfSession() = default;

  virtual NbfResult recover(const FailureScenario& scenario) const = 0;
};

// Interface for recovery mechanisms. Implementations must be deterministic
// pure functions of (topology, scenario) — the failure analyzer and the RL
// environment both rely on that.
class StatelessNbf {
 public:
  virtual ~StatelessNbf() = default;

  // Re-establishes all flows of topology.problem() on Gt minus the failed
  // components.
  virtual NbfResult recover(const Topology& topology,
                            const FailureScenario& scenario) const = 0;

  // Optional staged fast path. Returns nullptr when the NBF has no staged
  // implementation (the default) or the instance falls outside its
  // envelope; callers then fall back to plain recover(). Implementations
  // must keep the session bit-identical to recover() — the verification
  // engine mixes both paths freely and memoizes across them.
  virtual std::unique_ptr<NbfSession> stage(const Topology& topology) const {
    (void)topology;
    return nullptr;
  }

  // FI0 / ER0: the initial flow state (empty failure scenario).
  NbfResult initial_state(const Topology& topology) const {
    return recover(topology, FailureScenario::none());
  }
};

// The default NBF, modeled after the heuristic run-time recovery of TT
// traffic in ref [9] of the paper (Kong et al., IEEE Access 2021), made
// stateless: every flow is re-routed on the residual network over its
// shortest feasible path and greedily slot-scheduled; when the shortest
// path cannot be scheduled, the next-shortest candidates (Yen) are tried.
class HeuristicRecovery final : public StatelessNbf {
 public:
  // path_candidates: how many alternative paths to try per flow before
  // declaring it unrecoverable (>= 1). discipline defaults to the no-wait
  // TT forwarding of the reference recovery mechanism.
  explicit HeuristicRecovery(int path_candidates = 3,
                             TtDiscipline discipline = TtDiscipline::kNoWait);

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override;

  // Bitset-packed staged session (src/tsn/packed.cpp). Non-null when the
  // instance fits the packed envelope (slots_per_base <= 64, node count
  // within the packed bound) and the global tsn_kernel() is kFast;
  // otherwise nullptr and callers use the scalar reference path.
  std::unique_ptr<NbfSession> stage(const Topology& topology) const override;

 private:
  int path_candidates_;
  TtDiscipline discipline_;
};

}  // namespace nptsn
