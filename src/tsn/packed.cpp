#include "tsn/packed.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/yen.hpp"
#include "tsn/sim_kernels.hpp"
#include "util/expect.hpp"

namespace nptsn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-call working set. Distinct scratches are independent, which is what
// makes the session safe under concurrent recover() calls.
struct PackedScratch {
  // Scenario state.
  std::vector<std::uint64_t> alive;              // words
  std::vector<const std::uint64_t*> rows;        // n row pointers (base or patched)
  std::vector<std::uint64_t> patched;            // copies of failed-link endpoint rows
  std::vector<std::int32_t> dead_eids;           // sorted failed directed-edge ids
  std::optional<Graph> residual;                 // lazy, Yen fallback only

  // Reachability scratch.
  std::vector<std::uint64_t> visited, frontier, next;

  // Dijkstra scratch.
  std::vector<double> dist;
  std::vector<NodeId> prev;
  std::vector<std::pair<double, NodeId>> heap;

  // Slot-table scratch: one occupancy word per directed edge, reset via the
  // touched list instead of a full clear.
  std::vector<std::uint64_t> slot_rows;
  std::vector<std::int32_t> touched;

  // Per-path scratch.
  std::vector<std::int32_t> hop_eids;
  std::vector<std::uint64_t> folds;
};

class PackedRecoverySession final : public NbfSession {
 public:
  PackedRecoverySession(const Topology& topology, int path_candidates,
                        TtDiscipline discipline)
      : topology_(&topology),
        problem_(&topology.problem()),
        path_candidates_(path_candidates),
        discipline_(discipline) {
    const Graph& gt = topology.graph();
    n_ = gt.num_nodes();
    words_ = tsk::words_for(n_);
    slots_ = problem_->tsn.slots_per_base;

    adj_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(words_), 0);
    alive_base_.assign(static_cast<std::size_t>(words_), 0);
    transit_.assign(static_cast<std::size_t>(words_), 0);
    eid_lookup_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1);
    row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);

    can_transit_.assign(static_cast<std::size_t>(n_), 1);
    for (NodeId v = 0; v < problem_->num_end_stations; ++v) {
      can_transit_[static_cast<std::size_t>(v)] = 0;
    }

    for (NodeId v = 0; v < n_; ++v) {
      if (gt.is_active(v)) tsk::set_bit(alive_base_.data(), v);
      if (can_transit_[static_cast<std::size_t>(v)] != 0) tsk::set_bit(transit_.data(), v);
      row_ptr_[static_cast<std::size_t>(v)] = static_cast<int>(nbr_.size());
      for (const auto& [nb, len] : gt.neighbors(v)) {
        tsk::set_bit(&adj_[static_cast<std::size_t>(v) * static_cast<std::size_t>(words_)],
                     nb);
        eid_lookup_[static_cast<std::size_t>(v) * static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(nb)] = static_cast<std::int32_t>(nbr_.size());
        nbr_.push_back(nb);
        len_.push_back(len);
      }
    }
    row_ptr_[static_cast<std::size_t>(n_)] = static_cast<int>(nbr_.size());
    num_eids_ = static_cast<int>(nbr_.size());

    timings_.reserve(problem_->flows.size());
    for (const FlowSpec& flow : problem_->flows) {
      timings_.push_back(FlowTiming::of(*problem_, flow));
    }
  }

  NbfResult recover(const FailureScenario& scenario) const override {
    std::unique_ptr<PackedScratch> scratch = acquire();
    PackedScratch& s = *scratch;
    prepare(s, scenario);

    NbfResult result;
    result.state.resize(problem_->flows.size());
    for (std::size_t i = 0; i < problem_->flows.size(); ++i) {
      const FlowSpec& flow = problem_->flows[i];
      const FlowTiming& timing = timings_[i];
      bool placed = false;
      if (tsk::test_bit(s.alive.data(), flow.source) &&
          tsk::test_bit(s.alive.data(), flow.destination) &&
          tsk::reach_fast(s.rows.data(), words_, s.alive.data(), transit_.data(),
                          flow.source, flow.destination, s.visited.data(),
                          s.frontier.data(), s.next.data())) {
        const Path sp = dijkstra(s, flow.source, flow.destination);
        std::vector<int> slots;
        if (schedule(s, sp, timing, slots)) {
          result.state[i] = FlowAssignment{sp, std::move(slots)};
          placed = true;
        } else if (path_candidates_ > 1) {
          const auto candidates =
              k_shortest_paths(residual_graph(s, scenario), flow.source, flow.destination,
                               path_candidates_, &can_transit_);
          for (std::size_t c = 1; c < candidates.size() && !placed; ++c) {
            if (schedule(s, candidates[c], timing, slots)) {
              result.state[i] = FlowAssignment{candidates[c], std::move(slots)};
              placed = true;
            }
          }
        }
      }
      if (!placed) result.errors.emplace_back(flow.source, flow.destination);
    }

    std::ranges::sort(result.errors);
    result.errors.erase(std::unique(result.errors.begin(), result.errors.end()),
                        result.errors.end());
    release(std::move(scratch));
    return result;
  }

 private:
  std::unique_ptr<PackedScratch> acquire() const {
    {
      const std::lock_guard<std::mutex> lock(pool_mutex_);
      if (!pool_.empty()) {
        std::unique_ptr<PackedScratch> s = std::move(pool_.back());
        pool_.pop_back();
        return s;
      }
    }
    auto s = std::make_unique<PackedScratch>();
    s->alive.resize(static_cast<std::size_t>(words_));
    s->rows.resize(static_cast<std::size_t>(n_));
    s->visited.resize(static_cast<std::size_t>(words_));
    s->frontier.resize(static_cast<std::size_t>(words_));
    s->next.resize(static_cast<std::size_t>(words_));
    s->dist.resize(static_cast<std::size_t>(n_));
    s->prev.resize(static_cast<std::size_t>(n_));
    s->slot_rows.assign(static_cast<std::size_t>(num_eids_), 0);
    return s;
  }

  void release(std::unique_ptr<PackedScratch> s) const {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.push_back(std::move(s));
  }

  // Applies the scenario to the scratch: alive mask, patched adjacency rows
  // for failed-link endpoints, dead directed-edge ids, clean slot table.
  // Mirrors Topology::residual()'s validation so malformed scenarios fail
  // the same way as the scalar path.
  void prepare(PackedScratch& s, const FailureScenario& scenario) const {
    for (const std::int32_t eid : s.touched) s.slot_rows[static_cast<std::size_t>(eid)] = 0;
    s.touched.clear();
    s.residual.reset();

    std::copy(alive_base_.begin(), alive_base_.end(), s.alive.begin());
    for (const NodeId v : scenario.failed_switches) {
      NPTSN_EXPECT(topology_->has_switch(v) || problem_->is_end_station(v),
                   "failed node is not part of the topology");
      NPTSN_EXPECT(v >= 0 && v < n_, "node id out of range: " + std::to_string(v));
      tsk::clear_bit(s.alive.data(), v);
    }

    for (NodeId v = 0; v < n_; ++v) {
      s.rows[static_cast<std::size_t>(v)] =
          &adj_[static_cast<std::size_t>(v) * static_cast<std::size_t>(words_)];
    }
    s.dead_eids.clear();
    s.patched.resize(2 * scenario.failed_links.size() * static_cast<std::size_t>(words_));
    std::size_t used = 0;
    for (const EdgeKey& link : scenario.failed_links) {
      NPTSN_EXPECT(link.a >= 0 && link.a < n_, "node id out of range: " + std::to_string(link.a));
      NPTSN_EXPECT(link.b >= 0 && link.b < n_, "node id out of range: " + std::to_string(link.b));
      const std::int32_t e1 = eid_of(link.a, link.b);
      if (e1 < 0) continue;  // not a planned link (removed with a failed node upstream)
      s.dead_eids.push_back(e1);
      s.dead_eids.push_back(eid_of(link.b, link.a));
      patch_row(s, used, link.a, link.b);
      patch_row(s, used, link.b, link.a);
    }
    std::ranges::sort(s.dead_eids);
  }

  // Clears bit `v` from node `u`'s adjacency row, copying the row into the
  // scratch's patch area on first touch (base rows are shared and const).
  void patch_row(PackedScratch& s, std::size_t& used, NodeId u, NodeId v) const {
    const std::uint64_t* row = s.rows[static_cast<std::size_t>(u)];
    std::uint64_t* target;
    if (row >= s.patched.data() && row < s.patched.data() + s.patched.size()) {
      target = const_cast<std::uint64_t*>(row);  // already patched this call
    } else {
      target = s.patched.data() + used;
      used += static_cast<std::size_t>(words_);
      std::copy(row, row + words_, target);
      s.rows[static_cast<std::size_t>(u)] = target;
    }
    tsk::clear_bit(target, v);
  }

  std::int32_t eid_of(NodeId from, NodeId to) const {
    return eid_lookup_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                       static_cast<std::size_t>(to)];
  }

  // Exact replica of graph/paths.cpp shortest_path() over the CSR view:
  // same heap discipline (std::greater on (distance, node)), same strict
  // relaxation, same ascending neighbor order — bit-identical paths. The
  // caller has already established that `t` is reachable (reach_fast), so
  // this always finds a path.
  Path dijkstra(PackedScratch& s, NodeId src, NodeId dst) const {
    if (src == dst) return Path{src};
    std::fill(s.dist.begin(), s.dist.end(), kInf);
    std::fill(s.prev.begin(), s.prev.end(), NodeId{-1});
    s.heap.clear();
    s.dist[static_cast<std::size_t>(src)] = 0.0;
    s.heap.emplace_back(0.0, src);
    const bool check_dead = !s.dead_eids.empty();
    while (!s.heap.empty()) {
      std::ranges::pop_heap(s.heap, std::greater<>());
      const auto [d, u] = s.heap.back();
      s.heap.pop_back();
      if (d > s.dist[static_cast<std::size_t>(u)]) continue;
      if (u == dst) break;
      if (u != src && can_transit_[static_cast<std::size_t>(u)] == 0) continue;
      const int end = row_ptr_[static_cast<std::size_t>(u) + 1];
      for (int idx = row_ptr_[static_cast<std::size_t>(u)]; idx < end; ++idx) {
        const NodeId v = nbr_[static_cast<std::size_t>(idx)];
        if (!tsk::test_bit(s.alive.data(), v)) continue;
        if (check_dead && std::ranges::binary_search(s.dead_eids, idx)) continue;
        const double nd = d + len_[static_cast<std::size_t>(idx)];
        if (nd < s.dist[static_cast<std::size_t>(v)]) {
          s.dist[static_cast<std::size_t>(v)] = nd;
          s.prev[static_cast<std::size_t>(v)] = u;
          s.heap.emplace_back(nd, v);
          std::ranges::push_heap(s.heap, std::greater<>());
        }
      }
    }
    NPTSN_ASSERT(s.dist[static_cast<std::size_t>(dst)] != kInf,
                 "packed dijkstra: destination unreachable after reach guard");
    Path path;
    for (NodeId v = dst; v != -1; v = s.prev[static_cast<std::size_t>(v)]) path.push_back(v);
    std::ranges::reverse(path);
    return path;
  }

  // schedule_on_path() over the packed slot rows; identical search order and
  // reservations for both disciplines.
  bool schedule(PackedScratch& s, const Path& path, const FlowTiming& timing,
                std::vector<int>& slots_out) const {
    NPTSN_EXPECT(path.size() >= 2, "path must contain at least one link");
    const int hops = static_cast<int>(path.size()) - 1;
    s.hop_eids.resize(static_cast<std::size_t>(hops));
    s.folds.resize(static_cast<std::size_t>(hops));
    for (int i = 0; i < hops; ++i) {
      const std::int32_t eid =
          eid_of(path[static_cast<std::size_t>(i)], path[static_cast<std::size_t>(i) + 1]);
      NPTSN_ASSERT(eid >= 0, "packed schedule: path uses an unknown link");
      s.hop_eids[static_cast<std::size_t>(i)] = eid;
      s.folds[static_cast<std::size_t>(i)] = tsk::fold_occupancy_fast(
          s.slot_rows[static_cast<std::size_t>(eid)], timing.period_slots,
          timing.repetitions);
    }
    if (discipline_ == TtDiscipline::kNoWait) {
      const int start = tsk::nowait_start_fast(s.folds.data(), hops, timing.deadline_slots);
      if (start < 0) return false;
      slots_out.resize(static_cast<std::size_t>(hops));
      for (int i = 0; i < hops; ++i) {
        slots_out[static_cast<std::size_t>(i)] = start + i;
        reserve(s, s.hop_eids[static_cast<std::size_t>(i)], start + i, timing);
      }
      return true;
    }
    slots_out.clear();
    int earliest = 0;
    for (int i = 0; i < hops; ++i) {
      const int chosen = tsk::earliest_free_fast(s.folds[static_cast<std::size_t>(i)],
                                                 earliest, timing.deadline_slots);
      if (chosen < 0) {
        for (int j = 0; j < i; ++j) {
          release_slots(s, s.hop_eids[static_cast<std::size_t>(j)],
                        slots_out[static_cast<std::size_t>(j)], timing);
        }
        return false;
      }
      reserve(s, s.hop_eids[static_cast<std::size_t>(i)], chosen, timing);
      slots_out.push_back(chosen);
      earliest = chosen + 1;
    }
    return true;
  }

  void reserve(PackedScratch& s, std::int32_t eid, int slot, const FlowTiming& timing) const {
    std::uint64_t& row = s.slot_rows[static_cast<std::size_t>(eid)];
    if (row == 0) s.touched.push_back(eid);
    for (int k = 0; k < timing.repetitions; ++k) {
      row |= std::uint64_t{1} << ((slot + k * timing.period_slots) % slots_);
    }
  }

  void release_slots(PackedScratch& s, std::int32_t eid, int slot,
                     const FlowTiming& timing) const {
    std::uint64_t& row = s.slot_rows[static_cast<std::size_t>(eid)];
    for (int k = 0; k < timing.repetitions; ++k) {
      row &= ~(std::uint64_t{1} << ((slot + k * timing.period_slots) % slots_));
    }
  }

  const Graph& residual_graph(PackedScratch& s, const FailureScenario& scenario) const {
    if (!s.residual) s.residual = topology_->residual(scenario);
    return *s.residual;
  }

  const Topology* topology_;
  const PlanningProblem* problem_;
  int path_candidates_;
  TtDiscipline discipline_;

  int n_ = 0;
  int words_ = 0;
  int num_eids_ = 0;
  int slots_ = 0;
  std::vector<std::uint64_t> adj_;        // n * words adjacency bit-rows
  std::vector<std::uint64_t> alive_base_; // active nodes of Gt
  std::vector<std::uint64_t> transit_;    // transit-capable nodes
  std::vector<int> row_ptr_;              // CSR offsets
  std::vector<NodeId> nbr_;               // CSR neighbors, ascending per node
  std::vector<double> len_;               // CSR edge lengths
  std::vector<std::int32_t> eid_lookup_;  // dense (from, to) -> directed eid
  TransitFilter can_transit_;
  std::vector<FlowTiming> timings_;

  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<PackedScratch>> pool_;
};

}  // namespace

std::unique_ptr<NbfSession> make_packed_recovery_session(const Topology& topology,
                                                         int path_candidates,
                                                         TtDiscipline discipline) {
  const PlanningProblem& problem = topology.problem();
  if (topology.graph().num_nodes() > kPackedMaxNodes) return nullptr;
  if (problem.tsn.slots_per_base > tsk::kWordBits) return nullptr;
  return std::make_unique<PackedRecoverySession>(topology, path_candidates, discipline);
}

std::unique_ptr<NbfSession> HeuristicRecovery::stage(const Topology& topology) const {
  if (tsn_kernel() != TsnKernel::kFast) return nullptr;
  return make_packed_recovery_session(topology, path_candidates_, discipline_);
}

}  // namespace nptsn
