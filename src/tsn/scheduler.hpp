// Greedy TT flow scheduling over TAS slots.
//
// A flow assignment is a path plus one slot per hop for the flow's first
// frame of the base period; the remaining frames repeat at the period stride.
// The schedule is feasible when slots strictly increase along the path (the
// frame is forwarded hop by hop), every slot falls inside the flow's own
// period window, and the delivery slot meets the deadline.
#pragma once

#include <optional>
#include <vector>

#include "graph/paths.hpp"
#include "net/problem.hpp"
#include "tsn/slot_table.hpp"

namespace nptsn {

struct FlowAssignment {
  Path path;               // [source, ..., destination]
  std::vector<int> slots;  // slots[i]: slot for link (path[i] -> path[i+1])
};

// Flow states FI: one optional assignment per flow of the problem, in flow
// order; nullopt means the flow is not placed.
using FlowState = std::vector<std::optional<FlowAssignment>>;

// Scheduling context derived from the problem's TSN config and one flow.
struct FlowTiming {
  int repetitions = 1;    // frames per base period
  int period_slots = 1;   // stride between repetitions (S / repetitions)
  int deadline_slots = 1; // delivery must end by this slot within the period

  static FlowTiming of(const PlanningProblem& problem, const FlowSpec& flow);
};

// TT forwarding discipline.
//  kNoWait: the frame is forwarded in the immediately following slot at
//    every hop (slots[i] = start + i) — the classic zero-queuing TT
//    assumption and the discipline of the run-time recovery mechanism the
//    paper builds on (ref [9]); contention anywhere on the chain fails it.
//  kStoreAndForward: frames may wait in the egress queue; every hop takes
//    the earliest free slot after the previous hop.
enum class TtDiscipline {
  kNoWait,
  kStoreAndForward,
};

// Greedy assignment of `flow` along `path` in `table` under the given
// discipline. On success reserves the slots and returns the per-hop slots;
// on failure leaves the table untouched and returns nullopt.
std::optional<std::vector<int>> schedule_on_path(
    SlotTable& table, const Path& path, const FlowTiming& timing,
    TtDiscipline discipline = TtDiscipline::kStoreAndForward);

// Releases a previously scheduled assignment.
void unschedule(SlotTable& table, const FlowAssignment& assignment,
                const FlowTiming& timing);

}  // namespace nptsn
