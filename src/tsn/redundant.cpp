#include "tsn/redundant.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace nptsn {

RedundantRecovery::RedundantRecovery(int replicas, TtDiscipline discipline)
    : replicas_(replicas), discipline_(discipline) {
  NPTSN_EXPECT(replicas >= 1, "need at least one replica");
}

RedundantRecovery::InstanceResult RedundantRecovery::recover_instances(
    const Topology& topology, const FailureScenario& scenario) const {
  const PlanningProblem& problem = topology.problem();
  const Graph residual = topology.residual(scenario);

  TransitFilter can_transit(static_cast<std::size_t>(problem.num_nodes()), 1);
  for (NodeId v = 0; v < problem.num_end_stations; ++v) {
    can_transit[static_cast<std::size_t>(v)] = 0;
  }

  InstanceResult result;
  result.instances.resize(problem.flows.size());
  SlotTable table(problem.tsn.slots_per_base);

  for (std::size_t i = 0; i < problem.flows.size(); ++i) {
    const FlowSpec& flow = problem.flows[i];
    const FlowTiming timing = FlowTiming::of(problem, flow);
    const auto paths =
        disjoint_paths(residual, flow.source, flow.destination, replicas_, &can_transit);
    for (const Path& path : paths) {
      if (auto slots = schedule_on_path(table, path, timing, discipline_)) {
        result.instances[i].push_back(FlowAssignment{path, std::move(*slots)});
      }
    }
    // Error only when ALL redundant instances failed.
    if (result.instances[i].empty()) {
      result.errors.emplace_back(flow.source, flow.destination);
    }
  }

  std::ranges::sort(result.errors);
  result.errors.erase(std::unique(result.errors.begin(), result.errors.end()),
                      result.errors.end());
  return result;
}

NbfResult RedundantRecovery::recover(const Topology& topology,
                                     const FailureScenario& scenario) const {
  InstanceResult instances = recover_instances(topology, scenario);
  NbfResult result;
  result.state.resize(instances.instances.size());
  for (std::size_t i = 0; i < instances.instances.size(); ++i) {
    if (!instances.instances[i].empty()) {
      result.state[i] = std::move(instances.instances[i].front());
    }
  }
  result.errors = std::move(instances.errors);
  return result;
}

}  // namespace nptsn
