// Bitset-packed staged implementation of HeuristicRecovery — the production
// fast path behind StatelessNbf::stage().
//
// Staging precomputes, once per topology: packed adjacency bit-rows, a CSR
// view with per-directed-edge ids, the dense (from, to) -> edge-id lookup,
// the transit mask, and every flow's FlowTiming. Each recover() then runs
// entirely on flat arrays — a word-parallel reachability guard
// (tsk::reach_fast), the exact Dijkstra of graph/paths.cpp over the CSR,
// and single-word slot-occupancy kernels instead of the std::map SlotTable.
// Results are bit-identical to HeuristicRecovery::recover(); the scalar
// path stays in the tree as the bit-frozen ground truth and the Yen
// fallback (rare) still materializes a residual Graph and calls the shared
// k_shortest_paths.
#pragma once

#include <memory>

#include "net/topology.hpp"
#include "tsn/recovery.hpp"

namespace nptsn {

// Packed envelope: instances with more nodes use the scalar path (the dense
// edge-id lookup is n^2); in-vehicle networks are far below this.
inline constexpr int kPackedMaxNodes = 1024;

// Builds a packed session for the topology, or nullptr when the instance is
// outside the packed envelope (num_nodes > kPackedMaxNodes or
// slots_per_base > 64). path_candidates / discipline have
// HeuristicRecovery's semantics.
std::unique_ptr<NbfSession> make_packed_recovery_session(const Topology& topology,
                                                         int path_candidates,
                                                         TtDiscipline discipline);

}  // namespace nptsn
