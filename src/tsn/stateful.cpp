#include "tsn/stateful.hpp"

#include <algorithm>

#include "graph/yen.hpp"
#include "util/expect.hpp"

namespace nptsn {

bool assignment_survives(const FlowAssignment& assignment, const Graph& residual) {
  for (std::size_t i = 0; i + 1 < assignment.path.size(); ++i) {
    if (!residual.has_edge(assignment.path[i], assignment.path[i + 1])) return false;
  }
  return true;
}

IncrementalRecovery::IncrementalRecovery(int path_candidates, TtDiscipline discipline)
    : path_candidates_(path_candidates), discipline_(discipline) {
  NPTSN_EXPECT(path_candidates >= 1, "need at least one path candidate");
}

NbfResult IncrementalRecovery::initial_state(const Topology& topology) const {
  // The offline schedule: recover everything from an empty flow state.
  return recover(topology, FailureScenario::none(),
                 FlowState(topology.problem().flows.size()));
}

NbfResult IncrementalRecovery::recover(const Topology& topology,
                                       const FailureScenario& scenario,
                                       const FlowState& current) const {
  const PlanningProblem& problem = topology.problem();
  NPTSN_EXPECT(current.size() == problem.flows.size(),
               "flow state arity does not match the problem");
  const Graph residual = topology.residual(scenario);

  TransitFilter can_transit(static_cast<std::size_t>(problem.num_nodes()), 1);
  for (NodeId v = 0; v < problem.num_end_stations; ++v) {
    can_transit[static_cast<std::size_t>(v)] = 0;
  }

  NbfResult result;
  result.state.resize(problem.flows.size());
  SlotTable table(problem.tsn.slots_per_base);

  // Pass 1: keep every assignment the failure did not disturb, re-reserving
  // its slots (the run-time controller leaves those flows alone).
  for (std::size_t i = 0; i < problem.flows.size(); ++i) {
    if (!current[i] || !assignment_survives(*current[i], residual)) continue;
    const FlowTiming timing = FlowTiming::of(problem, problem.flows[i]);
    const auto& a = *current[i];
    for (std::size_t h = 0; h + 1 < a.path.size(); ++h) {
      table.reserve(a.path[h], a.path[h + 1], a.slots[h], timing.repetitions,
                    timing.period_slots);
    }
    result.state[i] = a;
  }

  // Pass 2: re-route and re-schedule the disrupted flows around the
  // surviving reservations.
  for (std::size_t i = 0; i < problem.flows.size(); ++i) {
    if (result.state[i]) continue;
    const FlowSpec& flow = problem.flows[i];
    const FlowTiming timing = FlowTiming::of(problem, flow);

    bool placed = false;
    const auto candidates = k_shortest_paths(residual, flow.source, flow.destination,
                                             path_candidates_, &can_transit);
    for (const Path& path : candidates) {
      if (auto slots = schedule_on_path(table, path, timing, discipline_)) {
        result.state[i] = FlowAssignment{path, std::move(*slots)};
        placed = true;
        break;
      }
    }
    if (!placed) result.errors.emplace_back(flow.source, flow.destination);
  }

  std::ranges::sort(result.errors);
  result.errors.erase(std::unique(result.errors.begin(), result.errors.end()),
                      result.errors.end());
  return result;
}

NbfResult StatelessAdapter::recover(const Topology& topology,
                                    const FailureScenario& scenario) const {
  // Φ(Gt, Gf) = Φs(Gt, Gf, FI0): always restart from the initial state, so
  // the outcome is independent of the failure history.
  const NbfResult initial = inner_->initial_state(topology);
  if (scenario.empty()) return initial;
  return inner_->recover(topology, scenario, initial.state);
}

}  // namespace nptsn
