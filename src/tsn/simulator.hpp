// Slot-accurate simulation of a TSSDN over one base period.
//
// The paper obtains NBFs "via network simulation" (Section II-B); this
// module closes that loop in reverse: given a topology, a failure scenario,
// and a flow state FI, it EXECUTES the TAS schedule — every flow emits its
// frames at the period boundaries, frames move hop by hop at their reserved
// slots, failed (fail-silent) components drop traffic — and reports whether
// the flow state actually delivers every frame on time, without collisions.
// The analyzer's verdicts and every recovery mechanism are validated against
// it in the test suite.
#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"
#include "tsn/scheduler.hpp"

namespace nptsn {

struct SimulationReport {
  // True when every frame of every placed flow reached its destination
  // within its deadline and no two frames contended for a slot.
  bool ok = false;

  int frames_injected = 0;
  int frames_delivered = 0;
  int frames_dropped = 0;   // hit a failed link/switch (fail-silent loss)
  int frames_late = 0;      // delivered after the deadline
  int collisions = 0;       // two frames on one directed link in one slot
  int worst_latency_slots = 0;

  // Human-readable description of each violation, for diagnostics.
  std::vector<std::string> violations;
};

// Simulates one base period of `state` on `topology` under `scenario`.
// Flows whose state entry is nullopt are skipped (they are already reported
// by the NBF's error set). Malformed assignments (paths off the topology,
// slot/hop arity mismatches, non-causal slot orders) are violations, not
// exceptions: the simulator's job is to catch them.
SimulationReport simulate(const Topology& topology, const FailureScenario& scenario,
                          const FlowState& state);

}  // namespace nptsn
