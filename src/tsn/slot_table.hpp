// Per-directed-link time-slot occupancy of the Time-Aware Shaper schedule.
//
// The base period is divided into S uniform slots; one slot on one directed
// link carries one TT frame (links have uniform bandwidth, Section II-A).
// A flow with r frames per base period reserves r evenly spaced slots
// {s + k*(S/r)} on each link it traverses.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace nptsn {

class SlotTable {
 public:
  explicit SlotTable(int slots_per_base);

  int slots_per_base() const { return slots_; }

  // True if slot `slot + k * stride` is free on directed link (from -> to)
  // for all k in [0, repetitions).
  bool is_free(NodeId from, NodeId to, int slot, int repetitions = 1, int stride = 0) const;

  // Reserves those slots; requires them to be free.
  void reserve(NodeId from, NodeId to, int slot, int repetitions = 1, int stride = 0);

  // Releases those slots; requires them to be reserved.
  void release(NodeId from, NodeId to, int slot, int repetitions = 1, int stride = 0);

  // Number of reserved slots on a directed link (0 if never touched).
  int occupancy(NodeId from, NodeId to) const;

 private:
  void check_slot(int slot) const;
  std::vector<bool>& row(NodeId from, NodeId to);

  int slots_;
  std::map<std::pair<NodeId, NodeId>, std::vector<bool>> table_;
};

}  // namespace nptsn
