// SWAR kernel family for the packed TSN fast path (simulator, slot tables,
// packed NBF sessions), following the src/nn/kernels pattern: every kernel
// ships as a `_reference` / `_fast` pair with identical semantics. The
// reference member is the bit-frozen scalar ground truth; the fast member is
// the word-parallel production implementation. All decisions these kernels
// make are integer/bit decisions, so the pair is BIT-identical on every
// platform — selecting a kernel never changes a verdict, a schedule, or a
// cache key (unlike the nn kernels, no float-summation caveat applies).
//
// The global TsnKernel selector mirrors set_nn_kernel(): it picks which
// member the packed call sites dispatch to, and whether staged packed NBF
// sessions are used at all (kReference keeps the scalar std::map code paths
// as ground truth).
#pragma once

#include <cstdint>

namespace nptsn {

enum class TsnKernel { kReference, kFast };

// Process-global kernel selection (thread-safe; default kFast).
void set_tsn_kernel(TsnKernel kernel);
TsnKernel tsn_kernel();

// Word-level primitives. Bit i of word w addresses entity w * 64 + i.
namespace tsk {

inline constexpr int kWordBits = 64;

inline int words_for(int bits) { return (bits + kWordBits - 1) / kWordBits; }

inline bool test_bit(const std::uint64_t* words, int i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1u;
}

inline void set_bit(std::uint64_t* words, int i) {
  words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

inline void clear_bit(std::uint64_t* words, int i) {
  words[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

// Mask selecting bits [0, b); b may be >= 64 (full mask).
inline std::uint64_t low_mask(int b) {
  return b >= kWordBits ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
}

// --- Reachability closure ----------------------------------------------
//
// BFS over a packed adjacency with shortest_path()'s transit semantics:
// expansion happens only from `src` and from nodes whose `transit` bit is
// set; every discovered node is masked by `alive`. Returns true iff `dst`
// is reached. `rows[u]` points to the `words`-word adjacency row of node u
// (callers patch rows of failed-link endpoints); `visited`, `frontier`,
// and `next` are caller-provided `words`-word scratch. Requires `src`
// alive; src == dst returns true.
bool reach_reference(const std::uint64_t* const* rows, int words,
                     const std::uint64_t* alive, const std::uint64_t* transit,
                     int src, int dst, std::uint64_t* visited,
                     std::uint64_t* frontier, std::uint64_t* next);
bool reach_fast(const std::uint64_t* const* rows, int words,
                const std::uint64_t* alive, const std::uint64_t* transit,
                int src, int dst, std::uint64_t* visited, std::uint64_t* frontier,
                std::uint64_t* next);

// --- Slot-table occupancy (single-word envelope: slots_per_base <= 64) ---
//
// Folds the repetition strides of one directed-link slot row into the flow's
// period window: bit s (s in [0, stride)) of the result is set iff any slot
// {s + k * stride} for k in [0, repetitions) is occupied in `row`. Requires
// repetitions * stride <= 64 and all row bits below repetitions * stride.
std::uint64_t fold_occupancy_reference(std::uint64_t row, int stride, int repetitions);
std::uint64_t fold_occupancy_fast(std::uint64_t row, int stride, int repetitions);

// Earliest no-wait chain start: smallest `start` with start + hops <=
// deadline_slots such that bit (start + i) of folds[i] is clear for every
// hop i; -1 when no such start exists. Exactly schedule_no_wait()'s search.
int nowait_start_reference(const std::uint64_t* folds, int hops, int deadline_slots);
int nowait_start_fast(const std::uint64_t* folds, int hops, int deadline_slots);

// Earliest free slot s in [from, deadline_slots) of a folded occupancy;
// -1 when the window is exhausted. Exactly the store-and-forward scan.
int earliest_free_reference(std::uint64_t fold, int from, int deadline_slots);
int earliest_free_fast(std::uint64_t fold, int from, int deadline_slots);

}  // namespace tsk

}  // namespace nptsn
