#include "tsn/frer.hpp"

#include "util/expect.hpp"

namespace nptsn {

FrerScheduleResult schedule_frer(const PlanningProblem& problem, const FrerPlan& plan) {
  NPTSN_EXPECT(plan.size() == problem.flows.size(),
               "plan must assign paths to every flow");

  SlotTable table(problem.tsn.slots_per_base);
  FrerScheduleResult result;
  result.assignments.resize(plan.size());

  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FlowSpec& flow = problem.flows[i];
    const FlowTiming timing = FlowTiming::of(problem, flow);
    NPTSN_EXPECT(!plan[i].empty(), "flow has no replica path");

    for (const Path& path : plan[i]) {
      NPTSN_EXPECT(path.front() == flow.source && path.back() == flow.destination,
                   "replica path endpoints must match the flow");
      auto slots = schedule_on_path(table, path, timing);
      if (!slots) {
        result.schedulable = false;
        result.first_failed_flow = static_cast<int>(i);
        result.assignments.clear();
        return result;
      }
      result.assignments[i].push_back(FlowAssignment{path, std::move(*slots)});
    }
  }
  result.schedulable = true;
  return result;
}

}  // namespace nptsn
