#include "tsn/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace nptsn {

FlowTiming FlowTiming::of(const PlanningProblem& problem, const FlowSpec& flow) {
  FlowTiming t;
  t.repetitions = problem.frames_per_base(flow);
  NPTSN_EXPECT(problem.tsn.slots_per_base % t.repetitions == 0,
               "flow period must span a whole number of slots");
  t.period_slots = problem.tsn.slots_per_base / t.repetitions;
  const double slot_us =
      problem.tsn.base_period_us / static_cast<double>(problem.tsn.slots_per_base);
  t.deadline_slots = static_cast<int>(std::floor(flow.deadline_us / slot_us + 1e-9));
  t.deadline_slots = std::min(t.deadline_slots, t.period_slots);
  NPTSN_EXPECT(t.deadline_slots >= 1, "deadline shorter than one slot");
  return t;
}

namespace {

// No-wait: find the earliest start so that every hop's slot (start + i) is
// free; the whole chain reserves atomically or not at all.
std::optional<std::vector<int>> schedule_no_wait(SlotTable& table, const Path& path,
                                                 const FlowTiming& timing) {
  const int hops = static_cast<int>(path.size()) - 1;
  for (int start = 0; start + hops <= timing.deadline_slots; ++start) {
    bool free = true;
    for (int i = 0; i < hops && free; ++i) {
      free = table.is_free(path[static_cast<std::size_t>(i)],
                           path[static_cast<std::size_t>(i) + 1], start + i,
                           timing.repetitions, timing.period_slots);
    }
    if (!free) continue;
    std::vector<int> slots(static_cast<std::size_t>(hops));
    for (int i = 0; i < hops; ++i) {
      slots[static_cast<std::size_t>(i)] = start + i;
      table.reserve(path[static_cast<std::size_t>(i)],
                    path[static_cast<std::size_t>(i) + 1], start + i, timing.repetitions,
                    timing.period_slots);
    }
    return slots;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<int>> schedule_on_path(SlotTable& table, const Path& path,
                                                 const FlowTiming& timing,
                                                 TtDiscipline discipline) {
  NPTSN_EXPECT(path.size() >= 2, "path must contain at least one link");
  if (discipline == TtDiscipline::kNoWait) return schedule_no_wait(table, path, timing);
  const auto hops = path.size() - 1;
  std::vector<int> slots;
  slots.reserve(hops);

  int earliest = 0;  // next hop must transmit at or after this slot
  for (std::size_t i = 0; i < hops; ++i) {
    int chosen = -1;
    // The frame must be delivered (last hop finished) before the deadline,
    // and every hop inside the flow's own period window.
    for (int s = earliest; s < timing.deadline_slots; ++s) {
      if (table.is_free(path[i], path[i + 1], s, timing.repetitions, timing.period_slots)) {
        chosen = s;
        break;
      }
    }
    if (chosen < 0) {
      // Roll back reservations made so far.
      for (std::size_t j = 0; j < slots.size(); ++j) {
        table.release(path[j], path[j + 1], slots[j], timing.repetitions,
                      timing.period_slots);
      }
      return std::nullopt;
    }
    table.reserve(path[i], path[i + 1], chosen, timing.repetitions, timing.period_slots);
    slots.push_back(chosen);
    earliest = chosen + 1;  // store-and-forward: next hop strictly later
  }
  return slots;
}

void unschedule(SlotTable& table, const FlowAssignment& assignment, const FlowTiming& timing) {
  NPTSN_EXPECT(assignment.path.size() == assignment.slots.size() + 1,
               "assignment path/slots arity mismatch");
  for (std::size_t i = 0; i < assignment.slots.size(); ++i) {
    table.release(assignment.path[i], assignment.path[i + 1], assignment.slots[i],
                  timing.repetitions, timing.period_slots);
  }
}

}  // namespace nptsn
