// Flow-level redundancy recovery (Section V, last paragraph): every flow is
// re-established over up to `replicas` node-disjoint paths (FRER-style
// seamless redundancy maintained THROUGH recovery, as in ref [7]); the NBF
// reports an error only when NO instance of a flow can be established.
// Used with FailureAnalyzer::Options::flow_level_redundancy, which widens
// the failure enumeration from switches to all topology nodes.
#pragma once

#include "tsn/recovery.hpp"

namespace nptsn {

class RedundantRecovery final : public StatelessNbf {
 public:
  explicit RedundantRecovery(int replicas = 2,
                             TtDiscipline discipline = TtDiscipline::kNoWait);

  // Full per-flow instance sets (NbfResult::state keeps the primary one).
  struct InstanceResult {
    std::vector<std::vector<FlowAssignment>> instances;
    ErrorSet errors;
  };
  InstanceResult recover_instances(const Topology& topology,
                                   const FailureScenario& scenario) const;

  NbfResult recover(const Topology& topology,
                    const FailureScenario& scenario) const override;

  int replicas() const { return replicas_; }

 private:
  int replicas_;
  TtDiscipline discipline_;
};

}  // namespace nptsn
