#include "tsn/recovery.hpp"

#include <algorithm>

#include "graph/yen.hpp"
#include "util/expect.hpp"

namespace nptsn {

HeuristicRecovery::HeuristicRecovery(int path_candidates, TtDiscipline discipline)
    : path_candidates_(path_candidates), discipline_(discipline) {
  NPTSN_EXPECT(path_candidates >= 1, "need at least one path candidate");
}

NbfResult HeuristicRecovery::recover(const Topology& topology,
                                     const FailureScenario& scenario) const {
  const PlanningProblem& problem = topology.problem();
  const Graph residual = topology.residual(scenario);

  // End stations terminate flows but never relay them.
  TransitFilter can_transit(static_cast<std::size_t>(problem.num_nodes()), 1);
  for (NodeId v = 0; v < problem.num_end_stations; ++v) {
    can_transit[static_cast<std::size_t>(v)] = 0;
  }

  SlotTable table(problem.tsn.slots_per_base);
  NbfResult result;
  result.state.resize(problem.flows.size());

  for (std::size_t i = 0; i < problem.flows.size(); ++i) {
    const FlowSpec& flow = problem.flows[i];
    const FlowTiming timing = FlowTiming::of(problem, flow);

    bool placed = false;
    // Cheap common case first: the single shortest path. Only fall back to
    // Yen's k-shortest enumeration when its schedule is infeasible.
    if (const auto sp = shortest_path(residual, flow.source, flow.destination, &can_transit)) {
      if (auto slots = schedule_on_path(table, *sp, timing, discipline_)) {
        result.state[i] = FlowAssignment{*sp, std::move(*slots)};
        placed = true;
      } else if (path_candidates_ > 1) {
        const auto candidates = k_shortest_paths(residual, flow.source, flow.destination,
                                                 path_candidates_, &can_transit);
        for (std::size_t c = 1; c < candidates.size() && !placed; ++c) {
          if (auto alt = schedule_on_path(table, candidates[c], timing, discipline_)) {
            result.state[i] = FlowAssignment{candidates[c], std::move(*alt)};
            placed = true;
          }
        }
      }
    }
    if (!placed) result.errors.emplace_back(flow.source, flow.destination);
  }

  std::ranges::sort(result.errors);
  result.errors.erase(std::unique(result.errors.begin(), result.errors.end()),
                      result.errors.end());
  return result;
}

}  // namespace nptsn
