#include "tsn/simulator.hpp"
#include <algorithm>

#include <map>
#include <sstream>

#include "util/expect.hpp"

namespace nptsn {
namespace {

struct Frame {
  std::size_t flow = 0;
  int repetition = 0;
  std::size_t next_hop = 0;  // index into the assignment's slot list
  int release_slot = 0;
  bool dropped = false;
  bool delivered = false;
  int delivery_slot = -1;
};

std::string frame_tag(const Frame& frame) {
  std::ostringstream os;
  os << "flow " << frame.flow << " frame " << frame.repetition;
  return os.str();
}

}  // namespace

SimulationReport simulate(const Topology& topology, const FailureScenario& scenario,
                          const FlowState& state) {
  const PlanningProblem& problem = topology.problem();
  NPTSN_EXPECT(state.size() == problem.flows.size(),
               "flow state arity does not match the problem");
  const Graph residual = topology.residual(scenario);
  const int slots = problem.tsn.slots_per_base;

  SimulationReport report;
  auto violation = [&](const std::string& message) { report.violations.push_back(message); };

  // Static validation + frame creation.
  std::vector<Frame> frames;
  for (std::size_t f = 0; f < state.size(); ++f) {
    if (!state[f]) continue;
    const FlowAssignment& a = *state[f];
    const FlowSpec& flow = problem.flows[f];
    const FlowTiming timing = FlowTiming::of(problem, flow);

    if (a.path.size() < 2 || a.slots.size() + 1 != a.path.size()) {
      violation("flow " + std::to_string(f) + ": malformed assignment");
      continue;
    }
    if (a.path.front() != flow.source || a.path.back() != flow.destination) {
      violation("flow " + std::to_string(f) + ": path endpoints do not match the flow");
      continue;
    }
    bool causal = true;
    for (std::size_t h = 0; h < a.slots.size(); ++h) {
      if (a.slots[h] < 0 || a.slots[h] >= slots) {
        violation("flow " + std::to_string(f) + ": slot out of range");
        causal = false;
        break;
      }
      if (h > 0 && a.slots[h] <= a.slots[h - 1]) {
        violation("flow " + std::to_string(f) + ": non-causal slot order");
        causal = false;
        break;
      }
    }
    if (!causal) continue;
    // A hop beyond the flow's period window would collide with the next
    // frame's schedule.
    if (a.slots.back() >= timing.period_slots) {
      violation("flow " + std::to_string(f) + ": schedule exceeds the period window");
      continue;
    }

    for (int rep = 0; rep < timing.repetitions; ++rep) {
      Frame frame;
      frame.flow = f;
      frame.repetition = rep;
      frame.release_slot = rep * timing.period_slots;
      frames.push_back(frame);
      ++report.frames_injected;
    }
  }

  // Execute slot by slot. At slot s, a frame whose next hop is reserved at
  // (slots[h] + repetition * period) transmits over (path[h] -> path[h+1]).
  std::map<std::pair<NodeId, NodeId>, const Frame*> wire;  // per-slot occupancy
  for (int s = 0; s < slots; ++s) {
    wire.clear();
    for (Frame& frame : frames) {
      if (frame.dropped || frame.delivered) continue;
      const FlowAssignment& a = *state[frame.flow];
      const FlowTiming timing = FlowTiming::of(problem, problem.flows[frame.flow]);
      if (frame.next_hop >= a.slots.size()) continue;
      const int due = a.slots[frame.next_hop] + frame.repetition * timing.period_slots;
      if (due != s) continue;

      const NodeId from = a.path[frame.next_hop];
      const NodeId to = a.path[frame.next_hop + 1];
      // Fail-silent loss: transmitting over a failed link or through a
      // failed node silently drops the frame.
      if (!residual.has_edge(from, to)) {
        frame.dropped = true;
        ++report.frames_dropped;
        violation(frame_tag(frame) + ": dropped on failed link (" +
                  std::to_string(from) + ", " + std::to_string(to) + ")");
        continue;
      }
      // TAS exclusivity: one frame per directed link per slot.
      const auto [it, inserted] = wire.try_emplace({from, to}, &frame);
      if (!inserted) {
        ++report.collisions;
        violation(frame_tag(frame) + ": collides with " + frame_tag(*it->second) +
                  " on link (" + std::to_string(from) + ", " + std::to_string(to) +
                  ") at slot " + std::to_string(s));
        frame.dropped = true;
        ++report.frames_dropped;
        continue;
      }

      ++frame.next_hop;
      if (frame.next_hop == a.slots.size()) {
        frame.delivered = true;
        frame.delivery_slot = s;
        ++report.frames_delivered;
        const FlowTiming t = FlowTiming::of(problem, problem.flows[frame.flow]);
        const int latency = s - frame.release_slot + 1;
        report.worst_latency_slots = std::max(report.worst_latency_slots, latency);
        if (latency > t.deadline_slots) {
          ++report.frames_late;
          violation(frame_tag(frame) + ": delivered after the deadline (latency " +
                    std::to_string(latency) + " slots)");
        }
      }
    }
  }

  for (const Frame& frame : frames) {
    if (!frame.delivered && !frame.dropped) {
      violation(frame_tag(frame) + ": stranded mid-path at the end of the base period");
    }
  }

  report.ok = report.violations.empty() && report.frames_delivered == report.frames_injected;
  return report;
}

}  // namespace nptsn
