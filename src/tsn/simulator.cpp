#include "tsn/simulator.hpp"
#include <algorithm>

#include <map>
#include <sstream>

#include "tsn/packed.hpp"
#include "tsn/sim_kernels.hpp"
#include "util/expect.hpp"

namespace nptsn {
namespace {

struct Frame {
  std::size_t flow = 0;
  int repetition = 0;
  std::size_t next_hop = 0;  // index into the assignment's slot list
  int release_slot = 0;
  bool dropped = false;
  bool delivered = false;
  int delivery_slot = -1;
};

std::string frame_tag(const Frame& frame) {
  std::ostringstream os;
  os << "flow " << frame.flow << " frame " << frame.repetition;
  return os.str();
}

// Scalar reference executor: materialized residual Graph, per-slot frame
// rescan, std::map wire occupancy. Bit-frozen ground truth for the packed
// executor below.
void execute_reference(const Topology& topology, const FailureScenario& scenario,
                       const FlowState& state, std::vector<Frame>& frames,
                       SimulationReport& report) {
  const PlanningProblem& problem = topology.problem();
  const Graph residual = topology.residual(scenario);
  const int slots = problem.tsn.slots_per_base;
  auto violation = [&](const std::string& message) { report.violations.push_back(message); };

  // Execute slot by slot. At slot s, a frame whose next hop is reserved at
  // (slots[h] + repetition * period) transmits over (path[h] -> path[h+1]).
  std::map<std::pair<NodeId, NodeId>, const Frame*> wire;  // per-slot occupancy
  for (int s = 0; s < slots; ++s) {
    wire.clear();
    for (Frame& frame : frames) {
      if (frame.dropped || frame.delivered) continue;
      const FlowAssignment& a = *state[frame.flow];
      const FlowTiming timing = FlowTiming::of(problem, problem.flows[frame.flow]);
      if (frame.next_hop >= a.slots.size()) continue;
      const int due = a.slots[frame.next_hop] + frame.repetition * timing.period_slots;
      if (due != s) continue;

      const NodeId from = a.path[frame.next_hop];
      const NodeId to = a.path[frame.next_hop + 1];
      // Fail-silent loss: transmitting over a failed link or through a
      // failed node silently drops the frame.
      if (!residual.has_edge(from, to)) {
        frame.dropped = true;
        ++report.frames_dropped;
        violation(frame_tag(frame) + ": dropped on failed link (" +
                  std::to_string(from) + ", " + std::to_string(to) + ")");
        continue;
      }
      // TAS exclusivity: one frame per directed link per slot.
      const auto [it, inserted] = wire.try_emplace({from, to}, &frame);
      if (!inserted) {
        ++report.collisions;
        violation(frame_tag(frame) + ": collides with " + frame_tag(*it->second) +
                  " on link (" + std::to_string(from) + ", " + std::to_string(to) +
                  ") at slot " + std::to_string(s));
        frame.dropped = true;
        ++report.frames_dropped;
        continue;
      }

      ++frame.next_hop;
      if (frame.next_hop == a.slots.size()) {
        frame.delivered = true;
        frame.delivery_slot = s;
        ++report.frames_delivered;
        const FlowTiming t = FlowTiming::of(problem, problem.flows[frame.flow]);
        const int latency = s - frame.release_slot + 1;
        report.worst_latency_slots = std::max(report.worst_latency_slots, latency);
        if (latency > t.deadline_slots) {
          ++report.frames_late;
          violation(frame_tag(frame) + ": delivered after the deadline (latency " +
                    std::to_string(latency) + " slots)");
        }
      }
    }
  }
}

// Packed executor (TsnKernel::kFast): event-bucketed hop schedule instead of
// the per-slot frame rescan, epoch-stamped per-directed-edge wire occupancy
// instead of the std::map, and an alive-mask/edge-id residual test instead
// of the materialized Graph copy. Violations, counters, and throws are
// byte-identical to execute_reference (frames iterate in frame order within
// each slot bucket because buckets are filled frames-outer).
void execute_packed(const Topology& topology, const FailureScenario& scenario,
                    const FlowState& state, std::vector<Frame>& frames,
                    SimulationReport& report) {
  const PlanningProblem& problem = topology.problem();
  const Graph& gt = topology.graph();
  const int n = gt.num_nodes();
  const int slots = problem.tsn.slots_per_base;
  auto violation = [&](const std::string& message) { report.violations.push_back(message); };

  // Mirror Topology::residual()'s scenario validation (same messages, same
  // order) without copying the graph.
  const int words = tsk::words_for(n);
  std::vector<std::uint64_t> alive(static_cast<std::size_t>(words), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (gt.is_active(v)) tsk::set_bit(alive.data(), v);
  }
  for (const NodeId v : scenario.failed_switches) {
    NPTSN_EXPECT(topology.has_switch(v) || problem.is_end_station(v),
                 "failed node is not part of the topology");
    NPTSN_EXPECT(v >= 0 && v < n, "node id out of range: " + std::to_string(v));
    tsk::clear_bit(alive.data(), v);
  }
  std::vector<std::int32_t> eid_lookup(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
  std::int32_t num_eids = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [nb, len] : gt.neighbors(v)) {
      (void)len;
      eid_lookup[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(nb)] = num_eids++;
    }
  }
  std::vector<char> dead_eid(static_cast<std::size_t>(num_eids), 0);
  for (const auto& link : scenario.failed_links) {
    NPTSN_EXPECT(link.a >= 0 && link.a < n, "node id out of range: " + std::to_string(link.a));
    NPTSN_EXPECT(link.b >= 0 && link.b < n, "node id out of range: " + std::to_string(link.b));
    const std::int32_t e1 = eid_lookup[static_cast<std::size_t>(link.a) *
                                           static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(link.b)];
    if (e1 < 0) continue;
    dead_eid[static_cast<std::size_t>(e1)] = 1;
    const std::int32_t e2 = eid_lookup[static_cast<std::size_t>(link.b) *
                                           static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(link.a)];
    dead_eid[static_cast<std::size_t>(e2)] = 1;
  }

  // Event buckets: every hop's due slot is known statically. Filled
  // frames-outer so each bucket preserves frame order; a frame never has
  // two hops due in the same slot (slots strictly increase).
  std::vector<FlowTiming> timings(problem.flows.size());
  std::vector<char> have_timing(problem.flows.size(), 0);
  std::vector<int> bucket_count(static_cast<std::size_t>(slots) + 1, 0);
  for (const Frame& frame : frames) {
    const FlowAssignment& a = *state[frame.flow];
    if (have_timing[frame.flow] == 0) {
      timings[frame.flow] = FlowTiming::of(problem, problem.flows[frame.flow]);
      have_timing[frame.flow] = 1;
    }
    for (const int slot : a.slots) {
      ++bucket_count[static_cast<std::size_t>(
          slot + frame.repetition * timings[frame.flow].period_slots)];
    }
  }
  std::vector<int> bucket_start(static_cast<std::size_t>(slots) + 1, 0);
  for (int s = 0; s < slots; ++s) bucket_start[s + 1] = bucket_start[s] + bucket_count[s];
  std::vector<std::pair<std::int32_t, std::int32_t>> events(  // (frame, hop)
      static_cast<std::size_t>(bucket_start[static_cast<std::size_t>(slots)]));
  std::vector<int> cursor(bucket_start.begin(), bucket_start.end());
  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const FlowAssignment& a = *state[frames[fi].flow];
    const int period = timings[frames[fi].flow].period_slots;
    for (std::size_t h = 0; h < a.slots.size(); ++h) {
      const int due = a.slots[h] + frames[fi].repetition * period;
      events[static_cast<std::size_t>(cursor[static_cast<std::size_t>(due)]++)] = {
          static_cast<std::int32_t>(fi), static_cast<std::int32_t>(h)};
    }
  }

  // Epoch-stamped wire occupancy: wire_slot[eid] == s marks the directed
  // edge as used in slot s (no per-slot clear).
  std::vector<int> wire_slot(static_cast<std::size_t>(num_eids), -1);
  std::vector<std::int32_t> wire_owner(static_cast<std::size_t>(num_eids), -1);
  for (int s = 0; s < slots; ++s) {
    for (int e = bucket_start[s]; e < bucket_start[s + 1]; ++e) {
      Frame& frame = frames[static_cast<std::size_t>(events[static_cast<std::size_t>(e)].first)];
      const std::size_t h = static_cast<std::size_t>(events[static_cast<std::size_t>(e)].second);
      if (frame.dropped || frame.delivered) continue;
      if (frame.next_hop != h) continue;  // an earlier hop was not reached yet
      const FlowAssignment& a = *state[frame.flow];

      const NodeId from = a.path[h];
      const NodeId to = a.path[h + 1];
      NPTSN_EXPECT(from >= 0 && from < n, "node id out of range: " + std::to_string(from));
      NPTSN_EXPECT(to >= 0 && to < n, "node id out of range: " + std::to_string(to));
      const std::int32_t eid = eid_lookup[static_cast<std::size_t>(from) *
                                              static_cast<std::size_t>(n) +
                                          static_cast<std::size_t>(to)];
      const bool edge_alive = eid >= 0 && dead_eid[static_cast<std::size_t>(eid)] == 0 &&
                              tsk::test_bit(alive.data(), from) &&
                              tsk::test_bit(alive.data(), to);
      if (!edge_alive) {
        frame.dropped = true;
        ++report.frames_dropped;
        violation(frame_tag(frame) + ": dropped on failed link (" +
                  std::to_string(from) + ", " + std::to_string(to) + ")");
        continue;
      }
      if (wire_slot[static_cast<std::size_t>(eid)] == s) {
        ++report.collisions;
        violation(frame_tag(frame) + ": collides with " +
                  frame_tag(frames[static_cast<std::size_t>(
                      wire_owner[static_cast<std::size_t>(eid)])]) +
                  " on link (" + std::to_string(from) + ", " + std::to_string(to) +
                  ") at slot " + std::to_string(s));
        frame.dropped = true;
        ++report.frames_dropped;
        continue;
      }
      wire_slot[static_cast<std::size_t>(eid)] = s;
      wire_owner[static_cast<std::size_t>(eid)] =
          events[static_cast<std::size_t>(e)].first;

      ++frame.next_hop;
      if (frame.next_hop == a.slots.size()) {
        frame.delivered = true;
        frame.delivery_slot = s;
        ++report.frames_delivered;
        const int latency = s - frame.release_slot + 1;
        report.worst_latency_slots = std::max(report.worst_latency_slots, latency);
        if (latency > timings[frame.flow].deadline_slots) {
          ++report.frames_late;
          violation(frame_tag(frame) + ": delivered after the deadline (latency " +
                    std::to_string(latency) + " slots)");
        }
      }
    }
  }
}

}  // namespace

SimulationReport simulate(const Topology& topology, const FailureScenario& scenario,
                          const FlowState& state) {
  const PlanningProblem& problem = topology.problem();
  NPTSN_EXPECT(state.size() == problem.flows.size(),
               "flow state arity does not match the problem");
  const int slots = problem.tsn.slots_per_base;

  SimulationReport report;
  auto violation = [&](const std::string& message) { report.violations.push_back(message); };

  // Static validation + frame creation (shared by both executors).
  std::vector<Frame> frames;
  for (std::size_t f = 0; f < state.size(); ++f) {
    if (!state[f]) continue;
    const FlowAssignment& a = *state[f];
    const FlowSpec& flow = problem.flows[f];
    const FlowTiming timing = FlowTiming::of(problem, flow);

    if (a.path.size() < 2 || a.slots.size() + 1 != a.path.size()) {
      violation("flow " + std::to_string(f) + ": malformed assignment");
      continue;
    }
    if (a.path.front() != flow.source || a.path.back() != flow.destination) {
      violation("flow " + std::to_string(f) + ": path endpoints do not match the flow");
      continue;
    }
    bool causal = true;
    for (std::size_t h = 0; h < a.slots.size(); ++h) {
      if (a.slots[h] < 0 || a.slots[h] >= slots) {
        violation("flow " + std::to_string(f) + ": slot out of range");
        causal = false;
        break;
      }
      if (h > 0 && a.slots[h] <= a.slots[h - 1]) {
        violation("flow " + std::to_string(f) + ": non-causal slot order");
        causal = false;
        break;
      }
    }
    if (!causal) continue;
    // A hop beyond the flow's period window would collide with the next
    // frame's schedule.
    if (a.slots.back() >= timing.period_slots) {
      violation("flow " + std::to_string(f) + ": schedule exceeds the period window");
      continue;
    }

    for (int rep = 0; rep < timing.repetitions; ++rep) {
      Frame frame;
      frame.flow = f;
      frame.repetition = rep;
      frame.release_slot = rep * timing.period_slots;
      frames.push_back(frame);
      ++report.frames_injected;
    }
  }

  if (tsn_kernel() == TsnKernel::kFast &&
      topology.graph().num_nodes() <= kPackedMaxNodes) {
    execute_packed(topology, scenario, state, frames, report);
  } else {
    execute_reference(topology, scenario, state, frames, report);
  }

  for (const Frame& frame : frames) {
    if (!frame.delivered && !frame.dropped) {
      violation(frame_tag(frame) + ": stranded mid-path at the end of the base period");
    }
  }

  report.ok = report.violations.empty() && report.frames_delivered == report.frames_injected;
  return report;
}

}  // namespace nptsn
