// Byte-budgeted LRU store: the bounded container under every cross-problem
// cache of the planner service (engine verdict/outcome sharing, staged
// adjacency reuse, warm-start policy weights).
//
// Design constraints, in order:
//   - bounded by an explicit byte budget, not an entry count — the entries
//     the service caches range from a 30-byte NBF verdict to a multi-MB
//     parameter blob, so "N entries" bounds nothing;
//   - heterogeneous lookups (a transparent comparator), because the hot
//     probes arrive as borrowed-key views that must not allocate;
//   - values live at stable addresses across get/put (node-based storage),
//     so a caller holding its lock may copy out of the returned pointer
//     without a second lookup.
//
// The store itself is NOT thread-safe: every cache that shares one across
// sessions wraps it in its own mutex (see analysis/engine_cache.hpp). That
// split keeps the eviction policy testable without threads and lets each
// wrapper pick its own sharding.
//
// Eviction is least-recently-used (get and put both refresh recency) and
// runs inside put until the budget holds again. An entry whose own cost
// exceeds the whole budget is refused outright — admitting it would evict
// the entire store for a value that can never be resident.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace nptsn {

template <typename Key, typename Value, typename Less = std::less<Key>>
class LruStore {
 public:
  // `max_bytes` bounds the sum of caller-declared entry costs plus
  // `entry_overhead` per entry (an estimate of the key + bookkeeping bytes
  // the caller's cost function does not see).
  explicit LruStore(std::size_t max_bytes, std::size_t entry_overhead = 64)
      : max_bytes_(max_bytes), entry_overhead_(entry_overhead) {}

  // Returns the entry's value (address stable until the next put/clear) and
  // marks it most-recently-used; nullptr on a miss. Accepts any key type the
  // transparent comparator can order against Key.
  template <typename K>
  Value* get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second.pos);
    return &it->second.value;
  }

  // Inserts or overwrites; `cost` is the caller's estimate of the value's
  // resident bytes. Evicts least-recently-used entries until the budget
  // holds. Oversized entries (cost + overhead > budget) are not admitted.
  void put(Key key, Value value, std::size_t cost) {
    const std::size_t charged = cost + entry_overhead_;
    if (charged > max_bytes_) {
      ++rejected_;
      return;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second.cost;
      it->second.value = std::move(value);
      it->second.cost = charged;
      bytes_ += charged;
      order_.splice(order_.begin(), order_, it->second.pos);
    } else {
      auto [slot, inserted] = index_.emplace(std::move(key), Entry{});
      order_.push_front(&slot->first);
      slot->second.value = std::move(value);
      slot->second.cost = charged;
      slot->second.pos = order_.begin();
      bytes_ += charged;
    }
    while (bytes_ > max_bytes_ && order_.size() > 1) evict_one();
  }

  void clear() {
    index_.clear();
    order_.clear();
    bytes_ = 0;
  }

  std::size_t size() const { return index_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  struct Entry {
    Value value{};
    std::size_t cost = 0;
    typename std::list<const Key*>::iterator pos;
  };

  void evict_one() {
    const Key* victim = order_.back();
    order_.pop_back();
    const auto it = index_.find(*victim);
    bytes_ -= it->second.cost;
    index_.erase(it);
    ++evictions_;
  }

  std::size_t max_bytes_;
  std::size_t entry_overhead_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;

  // Keys live in the map; the recency list borrows them (std::map nodes are
  // address-stable across inserts and erases of other keys).
  std::map<Key, Entry, Less> index_;
  std::list<const Key*> order_;  // front = most recent
};

}  // namespace nptsn
