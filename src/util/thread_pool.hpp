// Small fixed-size thread pool used for parallel rollout collection and
// data-parallel gradient computation (the paper parallelizes Algorithm 2
// over 8 MPI ranks; we reproduce the scheme with shared-memory workers).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nptsn {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Runs tasks(0), ..., tasks(n-1) across the pool and blocks until all
  // complete. Exceptions are aggregated deterministically: every task runs
  // to completion (or failure), then the exception of the LOWEST-INDEX
  // failed task is rethrown — never a scheduling-dependent race winner.
  void parallel_for(int n, const std::function<void(int)>& task);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace nptsn
