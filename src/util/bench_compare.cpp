#include "util/bench_compare.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/expect.hpp"

namespace nptsn {

double JsonValue::number() const {
  NPTSN_EXPECT(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

bool JsonValue::boolean() const {
  NPTSN_EXPECT(type_ == Type::kBool, "JSON value is not a boolean");
  return bool_;
}

const std::string& JsonValue::string() const {
  NPTSN_EXPECT(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  NPTSN_EXPECT(type_ == Type::kArray, "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  NPTSN_EXPECT(type_ == Type::kObject, "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  NPTSN_EXPECT(type_ == Type::kObject, "JSON value is not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue j;
  j.type_ = Type::kArray;
  j.array_ = std::move(items);
  return j;
}

JsonValue JsonValue::make_object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue j;
  j.type_ = Type::kObject;
  j.object_ = std::move(members);
  return j;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("malformed JSON at offset " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect_char(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect_char('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      std::string key = parse_string();
      expect_char(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect_char('[');
    std::vector<JsonValue> items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          // Bench documents are pure ASCII; \uXXXX is accepted but mapped
          // to '?' rather than dragging in UTF-8 encoding.
          case 'u':
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            pos_ += 4;
            out.push_back('?');
            break;
          default: fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) fail("expected a number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) fail("truncated exponent");
    }
    return JsonValue::make_number(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Is this leaf key one of the machine-normalized metrics the gate tracks?
bool is_tracked_key(const std::string& key) {
  return starts_with(key, "speedup") || starts_with(key, "latency_") ||
         key == "overhead_percent";
}

// Normalized "time" for a tracked metric: larger means slower.
double normalized_time(const std::string& key, double value) {
  if (starts_with(key, "speedup")) {
    NPTSN_EXPECT(value > 0.0, "speedup metric must be positive: " + key);
    return 1.0 / value;
  }
  if (starts_with(key, "latency_")) {
    // Already a normalized latency ratio: lower is better, the value IS the
    // relative time.
    NPTSN_EXPECT(value > 0.0, "latency metric must be positive: " + key);
    return value;
  }
  // overhead_percent: 0 -> 1x, 30 -> 1.3x, -5 -> 0.95x.
  const double t = 1.0 + value / 100.0;
  NPTSN_EXPECT(t > 0.0, "overhead_percent below -100: " + key);
  return t;
}

void collect(const JsonValue& v, const std::string& path,
             std::map<std::string, double>& out) {
  if (v.is_object()) {
    for (const auto& [key, child] : v.members()) {
      const std::string child_path = path.empty() ? key : path + "/" + key;
      if (child.is_number() && is_tracked_key(key)) {
        out[child_path] = child.number();
      } else {
        collect(child, child_path, out);
      }
    }
    return;
  }
  if (v.is_array()) {
    const auto& items = v.array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::string segment = std::to_string(i);
      if (items[i].is_object()) {
        if (const JsonValue* name = items[i].find("name"); name && name->is_string()) {
          segment = name->string();
        }
      }
      collect(items[i], path.empty() ? segment : path + "/" + segment, out);
    }
  }
}

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::map<std::string, double> tracked_metrics(const JsonValue& doc) {
  std::map<std::string, double> out;
  collect(doc, "", out);
  return out;
}

BenchComparison compare_bench_results(const JsonValue& baseline, const JsonValue& fresh,
                                      double threshold) {
  NPTSN_EXPECT(threshold >= 1.0, "threshold is a slowdown ratio, must be >= 1");
  const std::map<std::string, double> base = tracked_metrics(baseline);
  const std::map<std::string, double> now = tracked_metrics(fresh);

  BenchComparison result;
  for (const auto& [metric, base_value] : base) {
    const auto it = now.find(metric);
    if (it == now.end()) {
      result.missing.push_back(metric);
      continue;
    }
    ++result.compared;
    const std::string leaf = metric.substr(metric.rfind('/') + 1);
    const double slowdown =
        normalized_time(leaf, it->second) / normalized_time(leaf, base_value);
    if (slowdown > threshold) {
      result.regressions.push_back({metric, base_value, it->second, slowdown});
    }
  }
  return result;
}

}  // namespace nptsn
